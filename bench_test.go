package forecache

// One testing.B benchmark per table and figure of the paper's evaluation,
// so `go test -bench=.` regenerates every experiment end to end (on a
// smaller world than `forecache bench`, to keep iterations affordable).
// The printed artifacts themselves come from cmd/forecache bench; these
// benchmarks measure the cost of producing them and assert they still run.

import (
	"io"
	"testing"

	"forecache/internal/backend"
	"forecache/internal/eval"
	"forecache/internal/phase"
	"forecache/internal/prefetch"
	"forecache/internal/sig"
	"forecache/internal/trace"
)

// benchHarness returns a harness over the shared test world, restricted to
// the first n users to bound fold counts.
func benchHarness(b *testing.B, users int) *eval.Harness {
	ds, traces := testWorld(b)
	var subset []*Trace
	for _, tr := range traces {
		if tr.User < users {
			subset = append(subset, tr)
		}
	}
	h := ds.Harness(subset)
	h.MaxTrainRequests = 300
	return h
}

func BenchmarkTable1PhaseFeatures(b *testing.B) {
	h := benchHarness(b, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, features := range [][]int{{2}, nil} { // zoom-only and all six
			if _, err := h.EvalPhaseLOO(features, "bench"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig8MoveAndPhaseDistributions(b *testing.B) {
	h := benchHarness(b, 18)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.RenderFig8(io.Discard, h.Traces)
		eval.RenderFig8Users(io.Discard, h.Traces)
	}
}

func BenchmarkFig9ZoomProfile(b *testing.B) {
	h := benchHarness(b, 18)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.RenderFig9(io.Discard, h.Traces[0], h.Pyr.NumLevels())
	}
}

func BenchmarkFig10aActionModels(b *testing.B) {
	h := benchHarness(b, 6)
	ks := []int{1, 5, 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.EvalModelLOO("markov3", eval.ABFactory(3), ks); err != nil {
			b.Fatal(err)
		}
		if _, err := h.EvalModelLOO("momentum", eval.MomentumFactory(), ks); err != nil {
			b.Fatal(err)
		}
		if _, err := h.EvalModelLOO("hotspot", eval.HotspotFactory(8, 3), ks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10bSignatures(b *testing.B) {
	h := benchHarness(b, 6)
	ks := []int{1, 5, 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, s := range sig.AllNames() {
			if _, err := h.EvalModelLOO("sb:"+s, h.SBFactory(s), ks); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig10cHybridVsBest(b *testing.B) {
	h := benchHarness(b, 4)
	ks := []int{1, 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.EvalHybridLOO(eval.HybridSpec{}, ks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11HybridVsExisting(b *testing.B) {
	h := benchHarness(b, 4)
	ks := []int{5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.EvalHybridLOO(eval.HybridSpec{}, ks); err != nil {
			b.Fatal(err)
		}
		if _, err := h.EvalModelLOO("momentum", eval.MomentumFactory(), ks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12LatencyRegression(b *testing.B) {
	h := benchHarness(b, 3)
	lm := backend.DefaultLatency()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runs, err := h.RunEngineLOO("momentum",
			eval.SingleEngineSetup(eval.MomentumFactory()), []int{1, 5}, lm)
		if err != nil {
			b.Fatal(err)
		}
		eval.RenderFig12(io.Discard, runs)
	}
}

func BenchmarkFig13ResponseTimes(b *testing.B) {
	h := benchHarness(b, 3)
	lm := backend.DefaultLatency()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.RunEngineLOO("hybrid",
			h.HybridEngineSetup(eval.HybridSpec{}), []int{5}, lm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarkovOrderSweep(b *testing.B) {
	h := benchHarness(b, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for n := 2; n <= 5; n++ {
			if _, err := h.EvalModelLOO("ab", eval.ABFactory(n), []int{5}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAblationAllocationPolicies(b *testing.B) {
	h := benchHarness(b, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.EvalHybridLOO(eval.HybridSpec{Name: "orig", UseOriginalPolicy: true}, []int{5}); err != nil {
			b.Fatal(err)
		}
	}
}

// Component-level benchmarks: the pieces the per-request path is made of.

func BenchmarkWorldBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildWorld(WorldConfig{Seed: 1, Size: 128, TileSize: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudySimulation(b *testing.B) {
	ds, _ := testWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds.SimulateStudy(int64(i))
	}
}

func BenchmarkMiddlewareRequestPath(b *testing.B) {
	ds, traces := testWorld(b)
	mw, err := ds.NewMiddleware(traces, MiddlewareConfig{K: 5})
	if err != nil {
		b.Fatal(err)
	}
	walk := []Coord{{}, {Level: 1, Y: 0, X: 0}, {Level: 2, Y: 0, X: 0}, {Level: 1, Y: 0, X: 0}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mw.Reset()
		for _, c := range walk {
			if _, err := mw.Request(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPhaseClassifierTraining(b *testing.B) {
	_, traces := testWorld(b)
	reqs := phase.Requests(traces)
	if len(reqs) > 400 {
		reqs = reqs[:400]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phase.Train(reqs, phase.TrainConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceSerialization(b *testing.B) {
	_, traces := testWorld(b)
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trace.SaveDir(dir, traces[:6]); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.LoadDir(dir); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduler(b *testing.B) {
	ds, _ := testWorld(b)
	db := backend.NewDBMS(ds.Pyramid, backend.DefaultLatency(), nil)
	sched := prefetch.NewScheduler(db, prefetch.Config{Workers: 8, QueuePerSession: 64})
	defer sched.Close()
	// Four sessions repeatedly submit overlapping 8-tile batches — the
	// multi-user shape the scheduler exists for (fairness + coalescing).
	const sessions = 4
	batches := make([][]prefetch.Request, sessions)
	for s := range batches {
		for i := 0; i < 8; i++ {
			c := Coord{Level: 3, Y: (s + i) % 8, X: i}
			batches[s] = append(batches[s], prefetch.Request{Coord: c, Score: float64(i)})
		}
	}
	ids := []string{"s0", "s1", "s2", "s3"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := range batches {
			sched.Submit(ids[s], batches[s])
		}
		sched.Drain()
	}
}
