package trace

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadFileRejectsCorruptJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte("{this is not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Error("corrupt trace file should fail to load")
	}
}

func TestLoadDirStopsOnCorruptFile(t *testing.T) {
	dir := t.TempDir()
	good := &Trace{User: 1, Task: 1, Requests: []Request{{Move: None}}}
	if err := good.SaveFile(filepath.Join(dir, "a_good.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "z_bad.json"), []byte("]["), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Error("LoadDir should report the corrupt file")
	}
}

func TestLoadDirEmpty(t *testing.T) {
	traces, err := LoadDir(t.TempDir())
	if err != nil {
		t.Fatalf("empty dir: %v", err)
	}
	if len(traces) != 0 {
		t.Errorf("traces = %d, want 0", len(traces))
	}
}

func TestSaveFileCreatesParents(t *testing.T) {
	dir := t.TempDir()
	tr := &Trace{User: 3, Task: 2}
	nested := filepath.Join(dir, "a", "b", "t.json")
	if err := tr.SaveFile(nested); err != nil {
		t.Fatalf("SaveFile nested: %v", err)
	}
	if _, err := os.Stat(nested); err != nil {
		t.Errorf("file not created: %v", err)
	}
}
