// Package trace defines ForeCache's interaction model: the moves a user can
// make in the browsing interface, tile requests, session histories, and
// recorded user traces (paper §1.1, §4.1).
//
// The interface supports exactly nine moves (paper §5.2.2): panning in four
// directions, zooming out, and zooming into one of the four quadrants of
// the current tile. Each move is an incremental change from the current
// tile — there is no "jumping" (paper §2.2).
package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"forecache/internal/tile"
)

// Move is one interface action.
type Move int

// The nine interface moves, plus None for a session's first request.
const (
	None Move = iota - 1 // session start; not a real move
	PanUp
	PanDown
	PanLeft
	PanRight
	ZoomOut
	ZoomInNW
	ZoomInNE
	ZoomInSW
	ZoomInSE
)

// NumMoves is the size of the real move alphabet (excluding None).
const NumMoves = 9

// AllMoves returns the nine real moves in canonical order.
func AllMoves() []Move {
	return []Move{PanUp, PanDown, PanLeft, PanRight, ZoomOut, ZoomInNW, ZoomInNE, ZoomInSW, ZoomInSE}
}

var moveNames = map[Move]string{
	None: "none", PanUp: "up", PanDown: "down", PanLeft: "left", PanRight: "right",
	ZoomOut: "out", ZoomInNW: "in-nw", ZoomInNE: "in-ne", ZoomInSW: "in-sw", ZoomInSE: "in-se",
}

// String returns the move's wire name (also the Markov chain symbol).
func (m Move) String() string {
	if s, ok := moveNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Move(%d)", int(m))
}

// ParseMove inverts String.
func ParseMove(s string) (Move, error) {
	for m, name := range moveNames {
		if name == s {
			return m, nil
		}
	}
	return None, fmt.Errorf("trace: unknown move %q", s)
}

// IsPan reports whether the move is one of the four pans.
func (m Move) IsPan() bool { return m >= PanUp && m <= PanRight }

// IsZoomIn reports whether the move zooms into a quadrant.
func (m Move) IsZoomIn() bool { return m >= ZoomInNW && m <= ZoomInSE }

// IsZoomOut reports whether the move zooms out one level.
func (m Move) IsZoomOut() bool { return m == ZoomOut }

// Quadrant returns the zoom-in quadrant of the move; it panics for
// non-zoom-in moves (guard with IsZoomIn).
func (m Move) Quadrant() tile.Quadrant {
	switch m {
	case ZoomInNW:
		return tile.NW
	case ZoomInNE:
		return tile.NE
	case ZoomInSW:
		return tile.SW
	case ZoomInSE:
		return tile.SE
	}
	panic(fmt.Sprintf("trace: %v is not a zoom-in move", m))
}

// Apply returns the coordinate reached by taking the move from c, without
// bounds checking (use tile.Pyramid.Contains to validate).
func Apply(c tile.Coord, m Move) tile.Coord {
	switch m {
	case PanUp:
		return c.Pan(-1, 0)
	case PanDown:
		return c.Pan(1, 0)
	case PanLeft:
		return c.Pan(0, -1)
	case PanRight:
		return c.Pan(0, 1)
	case ZoomOut:
		return c.Parent()
	case ZoomInNW, ZoomInNE, ZoomInSW, ZoomInSE:
		return c.Child(m.Quadrant())
	}
	return c
}

// MoveBetween infers the move that leads from one coordinate to the other,
// returning ok=false when the step is not a single legal move.
func MoveBetween(from, to tile.Coord) (Move, bool) {
	for _, m := range AllMoves() {
		if Apply(from, m) == to {
			// Zooming out of the root maps to the root itself; reject the
			// degenerate self-transition.
			if m == ZoomOut && from.Level == 0 {
				continue
			}
			return m, true
		}
	}
	return None, false
}

// Request is one tile request: the tile retrieved and the move that
// produced it (None for the first request of a session).
type Request struct {
	Coord tile.Coord `json:"coord"`
	Move  Move       `json:"move"`
	// Phase is the ground-truth analysis phase label when known (attached
	// by the study simulator or by hand labeling); PhaseUnknown otherwise.
	Phase Phase `json:"phase"`
}

// Phase is the user's analysis phase at the time of a request (paper
// §4.2.1). It lives here, next to Request, because labeled requests are
// part of the trace data model; the phase package holds the classifier.
type Phase int

// The three analysis phases plus an unknown marker.
const (
	PhaseUnknown Phase = iota
	Foraging
	Navigation
	Sensemaking
)

// AllPhases returns the three real phases in canonical order.
func AllPhases() []Phase { return []Phase{Foraging, Navigation, Sensemaking} }

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case Foraging:
		return "Foraging"
	case Navigation:
		return "Navigation"
	case Sensemaking:
		return "Sensemaking"
	case PhaseUnknown:
		return "Unknown"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// ParsePhase inverts Phase.String; snapshot restore uses it to key
// persisted per-phase tables by name instead of by raw integer.
func ParsePhase(s string) (Phase, error) {
	for _, p := range []Phase{PhaseUnknown, Foraging, Navigation, Sensemaking} {
		if p.String() == s {
			return p, nil
		}
	}
	return PhaseUnknown, fmt.Errorf("trace: unknown phase %q", s)
}

// Trace is one recorded user session: an ordered list of tile requests for
// a single user completing a single task (paper §4.1's U_j).
type Trace struct {
	User     int       `json:"user"`
	Task     int       `json:"task"`
	Requests []Request `json:"requests"`
}

// Moves returns the move sequence of the trace (Algorithm 2's
// GetMoveSequence), skipping the leading None.
func (t *Trace) Moves() []string {
	out := make([]string, 0, len(t.Requests))
	for _, r := range t.Requests {
		if r.Move == None {
			continue
		}
		out = append(out, r.Move.String())
	}
	return out
}

// MoveCounts tallies pans, zoom-ins and zoom-outs, the quantities behind
// the paper's Figure 8 move-distribution plots.
func (t *Trace) MoveCounts() (pans, zoomIns, zoomOuts int) {
	for _, r := range t.Requests {
		switch {
		case r.Move.IsPan():
			pans++
		case r.Move.IsZoomIn():
			zoomIns++
		case r.Move.IsZoomOut():
			zoomOuts++
		}
	}
	return pans, zoomIns, zoomOuts
}

// History is the sliding window of the user's last n requests, maintained
// by the cache manager and consumed by the prediction engine (paper §4.1).
type History struct {
	cap  int
	reqs []Request
}

// NewHistory returns a history window holding the last n requests.
func NewHistory(n int) *History {
	if n < 1 {
		n = 1
	}
	return &History{cap: n}
}

// Push appends a request, evicting the oldest past capacity.
func (h *History) Push(r Request) {
	h.reqs = append(h.reqs, r)
	if len(h.reqs) > h.cap {
		h.reqs = h.reqs[len(h.reqs)-h.cap:]
	}
}

// Len returns the number of retained requests.
func (h *History) Len() int { return len(h.reqs) }

// Cap returns the window capacity n.
func (h *History) Cap() int { return h.cap }

// Last returns the most recent request and ok=false when empty.
func (h *History) Last() (Request, bool) {
	if len(h.reqs) == 0 {
		return Request{Move: None}, false
	}
	return h.reqs[len(h.reqs)-1], true
}

// Requests returns the retained requests, oldest first.
func (h *History) Requests() []Request { return append([]Request(nil), h.reqs...) }

// MoveSymbols returns the retained moves as Markov chain symbols, oldest
// first, excluding None.
func (h *History) MoveSymbols() []string {
	out := make([]string, 0, len(h.reqs))
	for _, r := range h.reqs {
		if r.Move == None {
			continue
		}
		out = append(out, r.Move.String())
	}
	return out
}

// Reset clears the window.
func (h *History) Reset() { h.reqs = h.reqs[:0] }

// SaveFile writes the trace as JSON.
func (t *Trace) SaveFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(t, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadFile reads a trace written by SaveFile.
func LoadFile(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Trace
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("trace: decode %s: %w", path, err)
	}
	return &t, nil
}

// SaveDir writes each trace as "u<user>_t<task>.json" under dir.
func SaveDir(dir string, traces []*Trace) error {
	for _, t := range traces {
		path := filepath.Join(dir, fmt.Sprintf("u%02d_t%d.json", t.User, t.Task))
		if err := t.SaveFile(path); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir reads every "*.json" trace under dir, sorted by filename.
func LoadDir(dir string) ([]*Trace, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	var out []*Trace
	for _, path := range matches {
		t, err := LoadFile(path)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
