package trace

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzTraceRoundTrip drives the trace JSON codec (the tracegen/LoadDir
// wire format) with arbitrary bytes. Run continuously with:
//
//	go test ./internal/trace -run '^$' -fuzz '^FuzzTraceRoundTrip$' -fuzztime 10s
//
// Properties checked: no panic on any input, and every trace that decodes
// round-trips exactly — encode(decode(x)) decodes to the same value, so a
// saved trace can never silently mutate across a save/load cycle.
func FuzzTraceRoundTrip(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"user":1,"task":2,"requests":[]}`,
		`{"user":3,"task":1,"requests":[{"coord":{"level":1,"y":0,"x":1},"move":3,"phase":1}]}`,
		`{"user":-1,"task":999999999,"requests":[{"coord":{"level":-5,"y":-5,"x":-5},"move":-1,"phase":3}]}`,
		`{"requests":[{"move":99,"phase":-7}]}`,     // out-of-range enums survive
		`{"user":1.5}`,                              // non-integer: reject
		`{"requests":null}`,                         // null slice
		`{"requests":[null]}`,                       // null element
		`[1,2,3]`,                                   // wrong shape
		`{"user":1,"unknown_field":{"nested":[1]}}`, // unknown fields ignored
		``,
		`{"user":`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var tr Trace
		if err := json.Unmarshal(data, &tr); err != nil {
			return // not a trace: fine, just must not panic
		}
		b, err := json.Marshal(&tr)
		if err != nil {
			t.Fatalf("decoded trace failed to re-encode: %v", err)
		}
		var tr2 Trace
		if err := json.Unmarshal(b, &tr2); err != nil {
			t.Fatalf("re-encoded trace %s failed to decode: %v", b, err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("round trip mutated the trace:\n  first  %+v\n  second %+v", tr, tr2)
		}
		// The derived accessors must tolerate whatever decoded, including
		// out-of-range moves and phases.
		_ = tr.Moves()
		tr.MoveCounts()
	})
}
