package trace

import (
	"testing"
	"testing/quick"

	"forecache/internal/tile"
)

func TestMoveStringsRoundTrip(t *testing.T) {
	for _, m := range AllMoves() {
		got, err := ParseMove(m.String())
		if err != nil {
			t.Fatalf("ParseMove(%q): %v", m.String(), err)
		}
		if got != m {
			t.Errorf("round trip %v -> %q -> %v", m, m.String(), got)
		}
	}
	if _, err := ParseMove("sideways"); err == nil {
		t.Error("unknown move name should fail")
	}
}

func TestNineMoves(t *testing.T) {
	if len(AllMoves()) != NumMoves {
		t.Fatalf("AllMoves = %d, want %d", len(AllMoves()), NumMoves)
	}
	pans, ins, outs := 0, 0, 0
	for _, m := range AllMoves() {
		switch {
		case m.IsPan():
			pans++
		case m.IsZoomIn():
			ins++
		case m.IsZoomOut():
			outs++
		}
	}
	if pans != 4 || ins != 4 || outs != 1 {
		t.Errorf("move taxonomy: %d pans, %d zoom-ins, %d zoom-outs", pans, ins, outs)
	}
}

func TestApplyGeometry(t *testing.T) {
	c := tile.Coord{Level: 2, Y: 1, X: 1}
	cases := []struct {
		m    Move
		want tile.Coord
	}{
		{PanUp, tile.Coord{Level: 2, Y: 0, X: 1}},
		{PanDown, tile.Coord{Level: 2, Y: 2, X: 1}},
		{PanLeft, tile.Coord{Level: 2, Y: 1, X: 0}},
		{PanRight, tile.Coord{Level: 2, Y: 1, X: 2}},
		{ZoomOut, tile.Coord{Level: 1, Y: 0, X: 0}},
		{ZoomInNW, tile.Coord{Level: 3, Y: 2, X: 2}},
		{ZoomInSE, tile.Coord{Level: 3, Y: 3, X: 3}},
	}
	for _, tc := range cases {
		if got := Apply(c, tc.m); got != tc.want {
			t.Errorf("Apply(%v, %v) = %v, want %v", c, tc.m, got, tc.want)
		}
	}
}

func TestMoveBetweenInvertsApply(t *testing.T) {
	f := func(level uint8, y, x uint16, mRaw uint8) bool {
		l := int(level%5) + 1
		side := 1 << l
		c := tile.Coord{Level: l, Y: int(y) % side, X: int(x) % side}
		m := AllMoves()[int(mRaw)%NumMoves]
		to := Apply(c, m)
		got, ok := MoveBetween(c, to)
		return ok && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestMoveBetweenRejectsJumps(t *testing.T) {
	from := tile.Coord{Level: 2, Y: 0, X: 0}
	to := tile.Coord{Level: 2, Y: 3, X: 3}
	if _, ok := MoveBetween(from, to); ok {
		t.Error("jump should not map to a move")
	}
	// Zoom-out at the root is degenerate.
	root := tile.Coord{Level: 0, Y: 0, X: 0}
	if _, ok := MoveBetween(root, root); ok {
		t.Error("root self-transition should not map to a move")
	}
}

func TestTraceMovesSkipsNone(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Move: None},
		{Move: ZoomInNW},
		{Move: PanRight},
	}}
	got := tr.Moves()
	if len(got) != 2 || got[0] != "in-nw" || got[1] != "right" {
		t.Errorf("Moves = %v", got)
	}
}

func TestMoveCounts(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Move: None}, {Move: ZoomInNW}, {Move: ZoomInSE},
		{Move: PanLeft}, {Move: ZoomOut},
	}}
	pans, ins, outs := tr.MoveCounts()
	if pans != 1 || ins != 2 || outs != 1 {
		t.Errorf("counts = %d,%d,%d", pans, ins, outs)
	}
}

func TestHistoryWindow(t *testing.T) {
	h := NewHistory(3)
	if _, ok := h.Last(); ok {
		t.Error("empty history should have no last request")
	}
	for i := 0; i < 5; i++ {
		h.Push(Request{Coord: tile.Coord{Level: i}, Move: PanRight})
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	last, ok := h.Last()
	if !ok || last.Coord.Level != 4 {
		t.Errorf("Last = %+v", last)
	}
	reqs := h.Requests()
	if reqs[0].Coord.Level != 2 {
		t.Errorf("oldest retained = %+v, want level 2", reqs[0])
	}
	h.Reset()
	if h.Len() != 0 {
		t.Error("Reset should empty the history")
	}
}

func TestHistoryMoveSymbols(t *testing.T) {
	h := NewHistory(4)
	h.Push(Request{Move: None})
	h.Push(Request{Move: PanUp})
	h.Push(Request{Move: ZoomOut})
	got := h.MoveSymbols()
	if len(got) != 2 || got[0] != "up" || got[1] != "out" {
		t.Errorf("MoveSymbols = %v", got)
	}
}

func TestHistoryMinCapacity(t *testing.T) {
	h := NewHistory(0)
	if h.Cap() != 1 {
		t.Errorf("Cap = %d, want clamped to 1", h.Cap())
	}
}

func TestPhaseStrings(t *testing.T) {
	if Foraging.String() != "Foraging" || Navigation.String() != "Navigation" ||
		Sensemaking.String() != "Sensemaking" || PhaseUnknown.String() != "Unknown" {
		t.Error("phase names wrong")
	}
	if len(AllPhases()) != 3 {
		t.Error("AllPhases should list the three real phases")
	}
}

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	traces := []*Trace{
		{User: 1, Task: 1, Requests: []Request{
			{Coord: tile.Coord{Level: 0}, Move: None, Phase: Foraging},
			{Coord: tile.Coord{Level: 1, Y: 1, X: 0}, Move: ZoomInSW, Phase: Navigation},
		}},
		{User: 2, Task: 3, Requests: []Request{
			{Coord: tile.Coord{Level: 0}, Move: None, Phase: Foraging},
		}},
	}
	if err := SaveDir(dir, traces); err != nil {
		t.Fatalf("SaveDir: %v", err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d traces", len(got))
	}
	if got[0].User != 1 || got[0].Requests[1].Move != ZoomInSW || got[0].Requests[1].Phase != Navigation {
		t.Errorf("round trip = %+v", got[0])
	}
	if _, err := LoadFile(dir + "/nope.json"); err == nil {
		t.Error("missing file should fail")
	}
}
