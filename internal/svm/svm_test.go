package svm

import (
	"math"
	"math/rand"
	"testing"
)

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Error("empty training set should fail")
	}
	if _, err := Train([][]float64{{1}}, []int{0, 1}, Config{}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Train([][]float64{{1}, {2, 3}}, []int{0, 1}, Config{}); err == nil {
		t.Error("ragged rows should fail")
	}
	if _, err := Train([][]float64{{1}, {2}}, []int{0, 0}, Config{}); err == nil {
		t.Error("single class should fail")
	}
}

func TestLinearlySeparable(t *testing.T) {
	var x [][]float64
	var y []int
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		x = append(x, []float64{rng.Float64() + 2, rng.Float64() + 2})
		y = append(y, 1)
		x = append(x, []float64{rng.Float64() - 3, rng.Float64() - 3})
		y = append(y, 0)
	}
	cls, err := Train(x, y, Config{Seed: 7})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	correct := 0
	for i := range x {
		if cls.Predict(x[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.95 {
		t.Errorf("training accuracy = %v, want >= 0.95", acc)
	}
	if cls.Predict([]float64{3, 3}) != 1 || cls.Predict([]float64{-4, -4}) != 0 {
		t.Error("misclassifies far-field points")
	}
}

func TestXORNeedsRBF(t *testing.T) {
	// XOR is not linearly separable; the RBF kernel must solve it.
	var x [][]float64
	var y []int
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		for _, q := range [][3]float64{{0, 0, 0}, {1, 1, 0}, {0, 1, 1}, {1, 0, 1}} {
			x = append(x, []float64{q[0] + 0.08*rng.NormFloat64(), q[1] + 0.08*rng.NormFloat64()})
			y = append(y, int(q[2]))
		}
	}
	cls, err := Train(x, y, Config{Gamma: 4, C: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if cls.Predict(x[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.9 {
		t.Errorf("XOR accuracy = %v, want >= 0.9", acc)
	}
}

func TestThreeClassesOneVsOne(t *testing.T) {
	var x [][]float64
	var y []int
	rng := rand.New(rand.NewSource(5))
	centers := [][2]float64{{0, 0}, {5, 0}, {0, 5}}
	for c, ctr := range centers {
		for i := 0; i < 30; i++ {
			x = append(x, []float64{ctr[0] + 0.4*rng.NormFloat64(), ctr[1] + 0.4*rng.NormFloat64()})
			y = append(y, c)
		}
	}
	cls, err := Train(x, y, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if cls.NumMachines() != 3 {
		t.Errorf("NumMachines = %d, want 3 (one per pair)", cls.NumMachines())
	}
	if got := cls.Classes(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("Classes = %v", got)
	}
	for c, ctr := range centers {
		if got := cls.Predict([]float64{ctr[0], ctr[1]}); got != c {
			t.Errorf("center %v predicted as %d, want %d", ctr, got, c)
		}
	}
}

func TestPredictScoreVotes(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 0.2}, {5, 5}, {5, 5.2}, {-5, 5}, {-5, 5.2}}
	y := []int{0, 0, 1, 1, 2, 2}
	cls, err := Train(x, y, Config{Gamma: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	label, votes := cls.PredictScore([]float64{5, 5})
	if label != 1 {
		t.Errorf("label = %d, want 1", label)
	}
	total := 0.0
	for _, v := range votes {
		total += v
	}
	if total != 3 { // 3 pairwise machines each cast one vote
		t.Errorf("total votes = %v, want 3", total)
	}
}

func TestStandardizationHandlesConstantFeature(t *testing.T) {
	// Second feature is constant; scale must not divide by zero.
	x := [][]float64{{0, 7}, {0.1, 7}, {5, 7}, {5.1, 7}}
	y := []int{0, 0, 1, 1}
	cls, err := Train(x, y, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := cls.Predict([]float64{5, 7}); got != 1 {
		t.Errorf("Predict = %d, want 1", got)
	}
	for _, v := range cls.standardize([]float64{1, 7}) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("standardize produced %v", v)
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	x := [][]float64{{0, 0}, {1, 0}, {0, 1}, {4, 4}, {5, 4}, {4, 5}}
	y := []int{0, 0, 0, 1, 1, 1}
	a, err := Train(x, y, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(x, y, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{2.4, 2.6}
	la, va := a.PredictScore(probe)
	lb, vb := b.PredictScore(probe)
	if la != lb {
		t.Fatal("labels differ across identical training runs")
	}
	for k, v := range va {
		if vb[k] != v {
			t.Fatal("votes differ across identical training runs")
		}
	}
}

func TestKernels(t *testing.T) {
	lin := Linear()
	if got := lin([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Errorf("linear = %v, want 11", got)
	}
	rbf := RBF(1)
	if got := rbf([]float64{1, 1}, []float64{1, 1}); got != 1 {
		t.Errorf("rbf self = %v, want 1", got)
	}
	if got := rbf([]float64{0, 0}, []float64{10, 10}); got > 1e-10 {
		t.Errorf("rbf far = %v, want near 0", got)
	}
}

func BenchmarkTrain3Class(b *testing.B) {
	var x [][]float64
	var y []int
	rng := rand.New(rand.NewSource(5))
	for c := 0; c < 3; c++ {
		for i := 0; i < 50; i++ {
			x = append(x, []float64{float64(c)*4 + rng.NormFloat64(), rng.NormFloat64()})
			y = append(y, c)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, y, Config{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	var x [][]float64
	var y []int
	rng := rand.New(rand.NewSource(5))
	for c := 0; c < 3; c++ {
		for i := 0; i < 50; i++ {
			x = append(x, []float64{float64(c)*4 + rng.NormFloat64(), rng.NormFloat64()})
			y = append(y, c)
		}
	}
	cls, err := Train(x, y, Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	probe := []float64{4, 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls.Predict(probe)
	}
}
