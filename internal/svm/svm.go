// Package svm implements a multi-class support vector machine with an RBF
// kernel, trained by sequential minimal optimization (SMO). It replaces the
// LibSVM library the paper uses for its analysis-phase classifier
// (paper §4.2.2): a multi-class SVM with an RBF kernel over small feature
// vectors.
//
// Binary machines are trained with Platt's simplified SMO; multi-class
// classification uses one-vs-one voting with decision-value tie-breaking,
// the same scheme LibSVM uses. Features are standardized (zero mean, unit
// variance) from the training set.
package svm

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Kernel computes the kernel product of two feature vectors.
type Kernel func(a, b []float64) float64

// RBF returns the Gaussian radial basis kernel exp(-gamma * ||a-b||²),
// the kernel the paper's classifier uses.
func RBF(gamma float64) Kernel {
	return func(a, b []float64) float64 {
		d := 0.0
		for i := range a {
			diff := a[i] - b[i]
			d += diff * diff
		}
		return math.Exp(-gamma * d)
	}
}

// Linear returns the plain dot-product kernel.
func Linear() Kernel {
	return func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
}

// Config controls training.
type Config struct {
	// C is the soft-margin penalty. Defaults to 1.
	C float64
	// Gamma is the RBF kernel width. Defaults to 1/dims.
	Gamma float64
	// Tol is the KKT violation tolerance. Defaults to 1e-3.
	Tol float64
	// MaxPasses is the number of full passes without alpha changes that
	// terminates SMO. Defaults to 5.
	MaxPasses int
	// MaxIter bounds total SMO iterations. Defaults to 2000.
	MaxIter int
	// Seed drives the deterministic partner-selection shuffle.
	Seed int64
}

func (c Config) withDefaults(dims int) Config {
	if c.C <= 0 {
		c.C = 1
	}
	if c.Gamma <= 0 {
		c.Gamma = 1 / float64(dims)
	}
	if c.Tol <= 0 {
		c.Tol = 1e-3
	}
	if c.MaxPasses <= 0 {
		c.MaxPasses = 5
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 2000
	}
	return c
}

// binary is one trained two-class machine over standardized features.
type binary struct {
	classA, classB int // classA is the +1 label, classB the -1 label
	alphas         []float64
	b              float64
	x              [][]float64
	y              []float64
}

func (m *binary) decision(kernel Kernel, x []float64) float64 {
	s := -m.b
	for i := range m.x {
		if m.alphas[i] == 0 {
			continue
		}
		s += m.alphas[i] * m.y[i] * kernel(m.x[i], x)
	}
	return s
}

// Classifier is a trained multi-class SVM.
type Classifier struct {
	classes  []int
	machines []*binary
	kernel   Kernel
	mean     []float64
	scale    []float64
}

// Train fits a one-vs-one multi-class SVM on rows X with integer labels y.
func Train(x [][]float64, y []int, cfg Config) (*Classifier, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("svm: need matching non-empty X (%d) and y (%d)", len(x), len(y))
	}
	dims := len(x[0])
	for i, row := range x {
		if len(row) != dims {
			return nil, fmt.Errorf("svm: row %d has %d features, want %d", i, len(row), dims)
		}
	}
	cfg = cfg.withDefaults(dims)

	cls := &Classifier{kernel: RBF(cfg.Gamma)}
	cls.mean, cls.scale = standardizer(x)
	xs := make([][]float64, len(x))
	for i, row := range x {
		xs[i] = cls.standardize(row)
	}

	seen := map[int]bool{}
	for _, label := range y {
		if !seen[label] {
			seen[label] = true
			cls.classes = append(cls.classes, label)
		}
	}
	sort.Ints(cls.classes)
	if len(cls.classes) < 2 {
		return nil, fmt.Errorf("svm: need at least 2 classes, got %d", len(cls.classes))
	}

	for i := 0; i < len(cls.classes); i++ {
		for j := i + 1; j < len(cls.classes); j++ {
			a, b := cls.classes[i], cls.classes[j]
			var subX [][]float64
			var subY []float64
			for k, label := range y {
				switch label {
				case a:
					subX = append(subX, xs[k])
					subY = append(subY, 1)
				case b:
					subX = append(subX, xs[k])
					subY = append(subY, -1)
				}
			}
			m := trainBinary(subX, subY, cls.kernel, cfg)
			m.classA, m.classB = a, b
			cls.machines = append(cls.machines, m)
		}
	}
	return cls, nil
}

// standardizer computes per-feature mean and scale (stddev, or 1 for
// constant features).
func standardizer(x [][]float64) (mean, scale []float64) {
	dims := len(x[0])
	mean = make([]float64, dims)
	scale = make([]float64, dims)
	for _, row := range x {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(x))
	}
	for _, row := range x {
		for j, v := range row {
			d := v - mean[j]
			scale[j] += d * d
		}
	}
	for j := range scale {
		scale[j] = math.Sqrt(scale[j] / float64(len(x)))
		if scale[j] == 0 {
			scale[j] = 1
		}
	}
	return mean, scale
}

func (c *Classifier) standardize(row []float64) []float64 {
	out := make([]float64, len(row))
	for j := range row {
		if j >= len(c.mean) {
			break
		}
		out[j] = (row[j] - c.mean[j]) / c.scale[j]
	}
	return out
}

// trainBinary runs simplified SMO (Platt / CS229 variant) on ±1 labels.
func trainBinary(x [][]float64, y []float64, kernel Kernel, cfg Config) *binary {
	n := len(x)
	m := &binary{alphas: make([]float64, n), x: x, y: y}
	if n == 0 {
		return m
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
	// Cache the kernel matrix: training sets here are small (hundreds of
	// requests), so O(n²) memory is the right trade.
	gram := make([][]float64, n)
	for i := range gram {
		gram[i] = make([]float64, n)
		for j := range gram[i] {
			gram[i][j] = kernel(x[i], x[j])
		}
	}
	f := func(i int) float64 {
		s := -m.b
		for k := 0; k < n; k++ {
			if m.alphas[k] != 0 {
				s += m.alphas[k] * y[k] * gram[k][i]
			}
		}
		return s
	}

	passes, iters := 0, 0
	for passes < cfg.MaxPasses && iters < cfg.MaxIter {
		iters++
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - y[i]
			if !((y[i]*ei < -cfg.Tol && m.alphas[i] < cfg.C) || (y[i]*ei > cfg.Tol && m.alphas[i] > 0)) {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := f(j) - y[j]
			ai, aj := m.alphas[i], m.alphas[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(cfg.C, cfg.C+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-cfg.C)
				hi = math.Min(cfg.C, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*gram[i][j] - gram[i][i] - gram[j][j]
			if eta >= 0 {
				continue
			}
			ajNew := aj - y[j]*(ei-ej)/eta
			if ajNew > hi {
				ajNew = hi
			} else if ajNew < lo {
				ajNew = lo
			}
			if math.Abs(ajNew-aj) < 1e-5 {
				continue
			}
			aiNew := ai + y[i]*y[j]*(aj-ajNew)
			b1 := m.b + ei + y[i]*(aiNew-ai)*gram[i][i] + y[j]*(ajNew-aj)*gram[i][j]
			b2 := m.b + ej + y[i]*(aiNew-ai)*gram[i][j] + y[j]*(ajNew-aj)*gram[j][j]
			switch {
			case aiNew > 0 && aiNew < cfg.C:
				m.b = b1
			case ajNew > 0 && ajNew < cfg.C:
				m.b = b2
			default:
				m.b = (b1 + b2) / 2
			}
			m.alphas[i], m.alphas[j] = aiNew, ajNew
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}
	return m
}

// Predict returns the predicted class label for the feature vector.
func (c *Classifier) Predict(row []float64) int {
	label, _ := c.PredictScore(row)
	return label
}

// PredictScore returns the predicted label plus the per-class vote tally
// from the one-vs-one machines.
func (c *Classifier) PredictScore(row []float64) (int, map[int]float64) {
	x := c.standardize(row)
	votes := make(map[int]float64, len(c.classes))
	margins := make(map[int]float64, len(c.classes))
	for _, m := range c.machines {
		d := m.decision(c.kernel, x)
		if d >= 0 {
			votes[m.classA]++
			margins[m.classA] += d
		} else {
			votes[m.classB]++
			margins[m.classB] -= d
		}
	}
	best := c.classes[0]
	for _, cl := range c.classes[1:] {
		if votes[cl] > votes[best] ||
			(votes[cl] == votes[best] && margins[cl] > margins[best]) {
			best = cl
		}
	}
	return best, votes
}

// Classes returns the sorted class labels seen at training time.
func (c *Classifier) Classes() []int { return append([]int(nil), c.classes...) }

// NumMachines returns the number of pairwise binary machines.
func (c *Classifier) NumMachines() int { return len(c.machines) }
