package backend

import (
	"container/list"
	"sync"
	"sync/atomic"

	"forecache/internal/tile"
)

// Store is what the prediction engine needs from a tile back end. *DBMS
// implements it directly; SharedPool wraps a DBMS with a cross-session
// tile pool — the multi-user optimization the paper lists as future work
// (§6.2: "how to share data between users exploring the same dataset").
type Store interface {
	// Fetch retrieves a tile on the user-facing path, charging latency.
	Fetch(c tile.Coord) (*tile.Tile, error)
	// FetchQuiet retrieves a tile off the response path (prefetching).
	FetchQuiet(c tile.Coord) (*tile.Tile, error)
	// Latency reports the hit/miss service times.
	Latency() LatencyModel
	// Pyramid exposes the tile geometry for candidate generation.
	Pyramid() *tile.Pyramid
}

// SharedStats counts cross-session pool activity.
type SharedStats struct {
	// PoolHits are fetches answered from the shared pool (another
	// session's work was reused).
	PoolHits int
	// DBMSFetches went through to the DBMS.
	DBMSFetches int
	// Evicted tiles were dropped by the pool's LRU.
	Evicted int
}

// SharedPool is a bounded read-through LRU of tiles shared by every
// session of one middleware deployment. When several analysts browse the
// same dataset, popular tiles (continental overviews, famous mountain
// ranges) are fetched from the DBMS once and reused: a pool hit on the
// user-facing path costs the hit latency instead of a full DBMS round
// trip. It is safe for concurrent use.
type SharedPool struct {
	db       *DBMS
	capacity int

	mu  sync.Mutex
	lru *list.List // of *tile.Tile, front = most recent
	idx map[tile.Coord]*list.Element

	// The stats counters are atomic so Stats() never contends with the
	// LRU lock taken on every fetch.
	poolHits    atomic.Int64
	dbmsFetches atomic.Int64
	evicted     atomic.Int64
}

// NewSharedPool wraps the DBMS with a pool holding up to capacity tiles.
func NewSharedPool(db *DBMS, capacity int) *SharedPool {
	if capacity < 1 {
		capacity = 1
	}
	return &SharedPool{
		db:       db,
		capacity: capacity,
		lru:      list.New(),
		idx:      make(map[tile.Coord]*list.Element),
	}
}

// Fetch serves the user-facing path: pool hits cost the hit latency, pool
// misses go to the DBMS (miss latency) and populate the pool.
func (p *SharedPool) Fetch(c tile.Coord) (*tile.Tile, error) {
	if t := p.lookup(c); t != nil {
		if clock := p.db.Clock(); clock != nil {
			clock.Sleep(p.db.Latency().Hit)
		}
		return t, nil
	}
	t, err := p.db.Fetch(c)
	if err != nil {
		return nil, err
	}
	p.insert(t)
	return t, nil
}

// FetchQuiet serves prefetching: no latency is charged either way, but the
// pool still deduplicates DBMS work across sessions.
func (p *SharedPool) FetchQuiet(c tile.Coord) (*tile.Tile, error) {
	if t := p.lookup(c); t != nil {
		return t, nil
	}
	t, err := p.db.FetchQuiet(c)
	if err != nil {
		return nil, err
	}
	p.insert(t)
	return t, nil
}

// Latency reports the wrapped DBMS's latency model.
func (p *SharedPool) Latency() LatencyModel { return p.db.Latency() }

// Pyramid exposes the wrapped DBMS's pyramid.
func (p *SharedPool) Pyramid() *tile.Pyramid { return p.db.Pyramid() }

// Stats snapshots the pool counters.
func (p *SharedPool) Stats() SharedStats {
	return SharedStats{
		PoolHits:    int(p.poolHits.Load()),
		DBMSFetches: int(p.dbmsFetches.Load()),
		Evicted:     int(p.evicted.Load()),
	}
}

// Len returns the number of pooled tiles.
func (p *SharedPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

func (p *SharedPool) lookup(c tile.Coord) *tile.Tile {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.idx[c]; ok {
		p.lru.MoveToFront(el)
		p.poolHits.Add(1)
		return el.Value.(*tile.Tile)
	}
	return nil
}

func (p *SharedPool) insert(t *tile.Tile) {
	p.dbmsFetches.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.idx[t.Coord]; ok {
		p.lru.MoveToFront(el)
		return
	}
	p.idx[t.Coord] = p.lru.PushFront(t)
	for p.lru.Len() > p.capacity {
		back := p.lru.Back()
		p.lru.Remove(back)
		delete(p.idx, back.Value.(*tile.Tile).Coord)
		p.evicted.Add(1)
	}
}
