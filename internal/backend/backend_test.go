package backend

import (
	"testing"
	"time"

	"forecache/internal/array"
	"forecache/internal/tile"
)

func buildPyramid(t *testing.T) *tile.Pyramid {
	t.Helper()
	a := array.NewZero(array.Schema{
		Name:  "RAW",
		Attrs: []string{"v"},
		Dims:  [2]array.Dim{{Name: "lat", Size: 32}, {Name: "lon", Size: 32}},
	})
	p, err := tile.Build(a, tile.Params{TileSize: 8, Agg: array.AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSimClockAccumulates(t *testing.T) {
	var c SimClock
	c.Sleep(time.Second)
	c.Sleep(500 * time.Millisecond)
	if got := c.Elapsed(); got != 1500*time.Millisecond {
		t.Errorf("Elapsed = %v", got)
	}
	c.Reset()
	if c.Elapsed() != 0 {
		t.Error("Reset should zero the clock")
	}
}

func TestDefaultLatencyMatchesPaper(t *testing.T) {
	l := DefaultLatency()
	if l.Hit != 19500*time.Microsecond {
		t.Errorf("Hit = %v, want 19.5ms", l.Hit)
	}
	if l.Miss != 984*time.Millisecond {
		t.Errorf("Miss = %v, want 984ms", l.Miss)
	}
}

func TestFetchChargesMissLatency(t *testing.T) {
	pyr := buildPyramid(t)
	clock := &SimClock{}
	db := NewDBMS(pyr, DefaultLatency(), clock)
	if _, err := db.Fetch(tile.Coord{Level: 0, Y: 0, X: 0}); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if got := clock.Elapsed(); got != 984*time.Millisecond {
		t.Errorf("elapsed = %v, want 984ms", got)
	}
	if db.Queries() != 1 {
		t.Errorf("Queries = %d", db.Queries())
	}
}

func TestFetchQuietSkipsLatency(t *testing.T) {
	pyr := buildPyramid(t)
	clock := &SimClock{}
	db := NewDBMS(pyr, DefaultLatency(), clock)
	if _, err := db.FetchQuiet(tile.Coord{Level: 1, Y: 1, X: 1}); err != nil {
		t.Fatalf("FetchQuiet: %v", err)
	}
	if clock.Elapsed() != 0 {
		t.Errorf("prefetch charged latency: %v", clock.Elapsed())
	}
	if db.Queries() != 1 {
		t.Errorf("Queries = %d", db.Queries())
	}
}

func TestFetchUnknownTile(t *testing.T) {
	pyr := buildPyramid(t)
	db := NewDBMS(pyr, DefaultLatency(), nil)
	if _, err := db.Fetch(tile.Coord{Level: 9, Y: 0, X: 0}); err == nil {
		t.Error("fetch outside the pyramid should fail")
	}
	if db.Queries() != 0 {
		t.Error("failed fetch should not count as a query")
	}
}

func TestNilClockIsSafe(t *testing.T) {
	pyr := buildPyramid(t)
	db := NewDBMS(pyr, DefaultLatency(), nil)
	if _, err := db.Fetch(tile.Coord{Level: 0, Y: 0, X: 0}); err != nil {
		t.Fatalf("Fetch with nil clock: %v", err)
	}
	if db.Pyramid() != pyr {
		t.Error("Pyramid accessor broken")
	}
	if db.Latency() != DefaultLatency() {
		t.Error("Latency accessor broken")
	}
}

func TestRealClockSleeps(t *testing.T) {
	var c RealClock
	start := time.Now()
	c.Sleep(5 * time.Millisecond)
	if wall := time.Since(start); wall < 4*time.Millisecond {
		t.Errorf("RealClock slept only %v", wall)
	}
	if c.Elapsed() < 5*time.Millisecond {
		t.Errorf("Elapsed = %v", c.Elapsed())
	}
}
