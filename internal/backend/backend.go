// Package backend adapts the array DBMS to the middleware: it fetches
// tiles from the materialized pyramid and models the latency difference
// between a middleware cache hit and a round trip to the DBMS.
//
// The paper measures 19.5 ms to serve a tile on a cache hit and 984.0 ms
// on a cache miss (SciDB query, §5.5); those are the defaults here. A
// virtual clock lets experiments accumulate simulated time deterministically
// instead of sleeping.
package backend

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"forecache/internal/tile"
)

// LatencyModel holds the paper's measured per-request service times.
type LatencyModel struct {
	// Hit is the middleware service time when the tile is in the cache.
	Hit time.Duration
	// Miss is the service time when the tile must be fetched from the DBMS.
	Miss time.Duration
}

// DefaultLatency returns the paper's measured constants: 19.5 ms per hit
// and 984.0 ms per miss (§5.5).
func DefaultLatency() LatencyModel {
	return LatencyModel{Hit: 19500 * time.Microsecond, Miss: 984 * time.Millisecond}
}

// Clock abstracts waiting so experiments can simulate latency.
type Clock interface {
	// Sleep waits for d (or just accounts for it).
	Sleep(d time.Duration)
	// Elapsed returns total time slept through this clock.
	Elapsed() time.Duration
}

// SimClock accumulates sleeps without waiting; safe for concurrent use.
type SimClock struct {
	mu      sync.Mutex
	elapsed time.Duration
}

// Sleep adds d to the simulated elapsed time.
func (c *SimClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.elapsed += d
	c.mu.Unlock()
}

// Elapsed returns the accumulated simulated time.
func (c *SimClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elapsed
}

// Reset zeroes the accumulated time.
func (c *SimClock) Reset() {
	c.mu.Lock()
	c.elapsed = 0
	c.mu.Unlock()
}

// RealClock sleeps on the wall clock.
type RealClock struct {
	mu      sync.Mutex
	elapsed time.Duration
}

// Sleep waits for d on the wall clock.
func (c *RealClock) Sleep(d time.Duration) {
	time.Sleep(d)
	c.mu.Lock()
	c.elapsed += d
	c.mu.Unlock()
}

// Elapsed returns total wall time slept through this clock.
func (c *RealClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elapsed
}

// DBMS fetches tiles from the materialized pyramid, charging the miss
// latency per fetch. It stands in for the SciDB instance of Figure 5.
type DBMS struct {
	pyr     *tile.Pyramid
	latency LatencyModel
	clock   Clock

	// queries is atomic: every fetch — including the cross-shard coalesced
	// path — bumps it, and a mutex held just for a counter serializes all
	// concurrent fetchers.
	queries atomic.Int64
}

// NewDBMS wraps a pyramid. A nil clock disables latency accounting.
func NewDBMS(pyr *tile.Pyramid, latency LatencyModel, clock Clock) *DBMS {
	return &DBMS{pyr: pyr, latency: latency, clock: clock}
}

// Fetch retrieves a tile from the DBMS, charging the miss latency.
func (d *DBMS) Fetch(c tile.Coord) (*tile.Tile, error) {
	t, err := d.pyr.Tile(c)
	if err != nil {
		return nil, fmt.Errorf("backend: %w", err)
	}
	d.queries.Add(1)
	if d.clock != nil {
		d.clock.Sleep(d.latency.Miss)
	}
	return t, nil
}

// FetchQuiet retrieves a tile without charging latency — used by the
// prefetcher, whose DBMS work happens while the user is thinking (step 1
// of the paper's browsing cycle) and therefore off the response path.
func (d *DBMS) FetchQuiet(c tile.Coord) (*tile.Tile, error) {
	t, err := d.pyr.Tile(c)
	if err != nil {
		return nil, fmt.Errorf("backend: %w", err)
	}
	d.queries.Add(1)
	return t, nil
}

// Queries returns the number of DBMS fetches issued.
func (d *DBMS) Queries() int {
	return int(d.queries.Load())
}

// Latency returns the configured latency model.
func (d *DBMS) Latency() LatencyModel { return d.latency }

// Clock returns the DBMS's latency clock (nil when accounting is off).
func (d *DBMS) Clock() Clock { return d.clock }

// Pyramid exposes the underlying pyramid (the tile source for
// recommenders).
func (d *DBMS) Pyramid() *tile.Pyramid { return d.pyr }
