package backend

import (
	"sync"
	"testing"
	"time"

	"forecache/internal/tile"
)

func TestSharedPoolDeduplicatesAcrossSessions(t *testing.T) {
	pyr := buildPyramid(t)
	clock := &SimClock{}
	db := NewDBMS(pyr, DefaultLatency(), clock)
	pool := NewSharedPool(db, 8)

	root := tile.Coord{}
	// Session A misses: full DBMS round trip.
	if _, err := pool.Fetch(root); err != nil {
		t.Fatal(err)
	}
	if got := clock.Elapsed(); got != 984*time.Millisecond {
		t.Fatalf("first fetch elapsed = %v", got)
	}
	// Session B asks for the same tile: pool hit, hit latency only.
	if _, err := pool.Fetch(root); err != nil {
		t.Fatal(err)
	}
	if got := clock.Elapsed(); got != 984*time.Millisecond+19500*time.Microsecond {
		t.Fatalf("second fetch elapsed = %v, want one miss + one hit", got)
	}
	st := pool.Stats()
	if st.PoolHits != 1 || st.DBMSFetches != 1 {
		t.Errorf("stats = %+v", st)
	}
	if db.Queries() != 1 {
		t.Errorf("DBMS queries = %d, want 1 (deduplicated)", db.Queries())
	}
}

func TestSharedPoolQuietPathPopulates(t *testing.T) {
	pyr := buildPyramid(t)
	db := NewDBMS(pyr, DefaultLatency(), &SimClock{})
	pool := NewSharedPool(db, 4)
	c := tile.Coord{Level: 1, Y: 1, X: 0}
	if _, err := pool.FetchQuiet(c); err != nil { // one session prefetches
		t.Fatal(err)
	}
	if _, err := pool.Fetch(c); err != nil { // another session requests
		t.Fatal(err)
	}
	if db.Queries() != 1 {
		t.Errorf("queries = %d, want 1: prefetch should feed other sessions", db.Queries())
	}
}

func TestSharedPoolEvicts(t *testing.T) {
	pyr := buildPyramid(t)
	db := NewDBMS(pyr, DefaultLatency(), nil)
	pool := NewSharedPool(db, 2)
	coords := []tile.Coord{
		{Level: 1, Y: 0, X: 0}, {Level: 1, Y: 0, X: 1}, {Level: 1, Y: 1, X: 0},
	}
	for _, c := range coords {
		if _, err := pool.FetchQuiet(c); err != nil {
			t.Fatal(err)
		}
	}
	if pool.Len() != 2 {
		t.Errorf("Len = %d, want 2", pool.Len())
	}
	if pool.Stats().Evicted != 1 {
		t.Errorf("Evicted = %d, want 1", pool.Stats().Evicted)
	}
	// The oldest (first) coord was evicted; refetching hits the DBMS again.
	before := db.Queries()
	if _, err := pool.FetchQuiet(coords[0]); err != nil {
		t.Fatal(err)
	}
	if db.Queries() != before+1 {
		t.Error("evicted tile should require a fresh DBMS fetch")
	}
}

func TestSharedPoolErrorsPassThrough(t *testing.T) {
	pyr := buildPyramid(t)
	pool := NewSharedPool(NewDBMS(pyr, DefaultLatency(), nil), 4)
	if _, err := pool.Fetch(tile.Coord{Level: 42}); err == nil {
		t.Error("invalid coordinate should fail")
	}
	if _, err := pool.FetchQuiet(tile.Coord{Level: 42}); err == nil {
		t.Error("invalid coordinate should fail on the quiet path too")
	}
}

func TestSharedPoolConcurrent(t *testing.T) {
	pyr := buildPyramid(t)
	db := NewDBMS(pyr, DefaultLatency(), &SimClock{})
	pool := NewSharedPool(db, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c := tile.Coord{Level: 2, Y: (g + i) % 4, X: i % 4}
				if _, err := pool.Fetch(c); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := pool.Stats()
	if st.PoolHits+st.DBMSFetches < 800 {
		t.Errorf("stats undercount concurrent fetches: %+v", st)
	}
}

// The Store interface must be satisfied by both back ends.
var (
	_ Store = (*DBMS)(nil)
	_ Store = (*SharedPool)(nil)
)
