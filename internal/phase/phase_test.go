package phase

import (
	"math/rand"
	"testing"

	"forecache/internal/tile"
	"forecache/internal/trace"
)

func TestFeaturesVector(t *testing.T) {
	r := trace.Request{Coord: tile.Coord{Level: 3, Y: 5, X: 7}, Move: trace.PanLeft}
	f := Features(r)
	want := []float64{7, 5, 3, 1, 0, 0}
	for i := range want {
		if f[i] != want[i] {
			t.Errorf("feature %s = %v, want %v", FeatureNames[i], f[i], want[i])
		}
	}
	r.Move = trace.ZoomInNE
	f = Features(r)
	if f[3] != 0 || f[4] != 1 || f[5] != 0 {
		t.Errorf("zoom-in flags = %v", f[3:])
	}
	r.Move = trace.ZoomOut
	f = Features(r)
	if f[5] != 1 {
		t.Errorf("zoom-out flag = %v", f[5])
	}
}

func TestLabelRules(t *testing.T) {
	cfg := LabelerConfig{Levels: 9} // coarse <= 3, detailed >= 6
	cases := []struct {
		level int
		move  trace.Move
		want  trace.Phase
	}{
		{0, trace.None, trace.Foraging},
		{2, trace.PanRight, trace.Foraging},
		{3, trace.ZoomInNW, trace.Foraging},
		{4, trace.ZoomInNW, trace.Navigation},
		{5, trace.PanLeft, trace.Navigation},
		{6, trace.PanLeft, trace.Sensemaking},
		{8, trace.PanUp, trace.Sensemaking},
		{8, trace.ZoomOut, trace.Navigation},
		{7, trace.ZoomInSE, trace.Navigation},
	}
	for _, tc := range cases {
		r := trace.Request{Coord: tile.Coord{Level: tc.level}, Move: tc.move}
		if got := Label(r, cfg); got != tc.want {
			t.Errorf("Label(level=%d, %v) = %v, want %v", tc.level, tc.move, got, tc.want)
		}
	}
}

func TestLabelTraceInPlace(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		{Coord: tile.Coord{Level: 0}, Move: trace.None},
		{Coord: tile.Coord{Level: 8, Y: 1}, Move: trace.PanDown},
	}}
	LabelTrace(tr, LabelerConfig{Levels: 9})
	if tr.Requests[0].Phase != trace.Foraging || tr.Requests[1].Phase != trace.Sensemaking {
		t.Errorf("labels = %v, %v", tr.Requests[0].Phase, tr.Requests[1].Phase)
	}
}

// synthReqs builds a labeled request set whose phases follow the labeler's
// own rules, so a working classifier must reach high accuracy.
func synthReqs(n int, seed int64) []trace.Request {
	rng := rand.New(rand.NewSource(seed))
	cfg := LabelerConfig{Levels: 9}
	moves := trace.AllMoves()
	var out []trace.Request
	for i := 0; i < n; i++ {
		level := rng.Intn(9)
		side := 1 << level
		r := trace.Request{
			Coord: tile.Coord{Level: level, Y: rng.Intn(side), X: rng.Intn(side)},
			Move:  moves[rng.Intn(len(moves))],
		}
		r.Phase = Label(r, cfg)
		out = append(out, r)
	}
	return out
}

func TestTrainPredictRoundTrip(t *testing.T) {
	reqs := synthReqs(400, 1)
	cls, err := Train(reqs, TrainConfig{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if acc := cls.Accuracy(reqs); acc < 0.8 {
		t.Errorf("training-set accuracy = %v, want >= 0.8", acc)
	}
}

func TestGeneralizationToHeldOut(t *testing.T) {
	train := synthReqs(600, 2)
	test := synthReqs(200, 3)
	cls, err := Train(train, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := cls.Accuracy(test); acc < 0.7 {
		t.Errorf("held-out accuracy = %v, want >= 0.7", acc)
	}
}

func TestSingleFeatureClassifier(t *testing.T) {
	reqs := synthReqs(400, 4)
	// Zoom level alone (feature 2) separates the phases reasonably well —
	// Table 1 reports 0.696 for it, the best single feature.
	zoomOnly, err := Train(reqs, TrainConfig{Features: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	accZoom := zoomOnly.Accuracy(reqs)
	if accZoom < 0.55 {
		t.Errorf("zoom-only accuracy = %v, want >= 0.55", accZoom)
	}
	full, err := Train(reqs, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if accFull := full.Accuracy(reqs); accFull < accZoom {
		t.Errorf("full features (%v) should not underperform zoom-only (%v)", accFull, accZoom)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, TrainConfig{}); err == nil {
		t.Error("no labeled requests should fail")
	}
	unlabeled := []trace.Request{{Coord: tile.Coord{Level: 1}}}
	if _, err := Train(unlabeled, TrainConfig{}); err == nil {
		t.Error("all-unlabeled requests should fail")
	}
	if _, err := Train(synthReqs(10, 1), TrainConfig{Features: []int{99}}); err == nil {
		t.Error("bad feature index should fail")
	}
}

func TestAccuracySkipsUnlabeled(t *testing.T) {
	reqs := synthReqs(100, 5)
	cls, err := Train(reqs, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mixed := append([]trace.Request{{Coord: tile.Coord{Level: 0}}}, reqs...) // first has PhaseUnknown
	if cls.Accuracy(mixed) == 0 {
		t.Error("unlabeled request should be skipped, not zero the accuracy")
	}
	if cls.Accuracy(nil) != 0 {
		t.Error("empty evaluation set should score 0")
	}
}

func TestRequestsFlattens(t *testing.T) {
	traces := []*trace.Trace{
		{Requests: make([]trace.Request, 3)},
		{Requests: make([]trace.Request, 2)},
	}
	if got := len(Requests(traces)); got != 5 {
		t.Errorf("Requests = %d, want 5", got)
	}
}

func BenchmarkTrainPhaseClassifier(b *testing.B) {
	reqs := synthReqs(500, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(reqs, TrainConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
