// Package phase implements ForeCache's analysis-phase model: feature
// extraction per Table 1, a rule-based reference labeler standing in for
// the paper's hand labeling, and the SVM classifier that predicts the
// user's current phase from her recent requests (paper §4.2).
//
// The three phases (defined in package trace, next to the labeled request
// type) are:
//
//	Foraging     scanning coarse zoom levels for interesting regions
//	Sensemaking  comparing neighboring tiles at detailed zoom levels
//	Navigation   zooming between the coarse and detailed levels
package phase

import (
	"fmt"

	"forecache/internal/svm"
	"forecache/internal/trace"
)

// FeatureNames lists the six Table 1 features in vector order.
var FeatureNames = []string{
	"x-position", "y-position", "zoom-level",
	"pan-flag", "zoom-in-flag", "zoom-out-flag",
}

// NumFeatures is the full feature vector length.
const NumFeatures = 6

// Features computes the Table 1 feature vector for a request: the tile's
// X and Y positions (in tiles), its zoom level, and three move flags
// describing how the user arrived there.
func Features(r trace.Request) []float64 {
	f := make([]float64, NumFeatures)
	f[0] = float64(r.Coord.X)
	f[1] = float64(r.Coord.Y)
	f[2] = float64(r.Coord.Level)
	if r.Move.IsPan() {
		f[3] = 1
	}
	if r.Move.IsZoomIn() {
		f[4] = 1
	}
	if r.Move.IsZoomOut() {
		f[5] = 1
	}
	return f
}

// LabelerConfig parameterizes the rule-based reference labeler. Zoom
// levels are split into coarse / middle / detailed bands by fractions of
// the pyramid depth.
type LabelerConfig struct {
	// Levels is the pyramid's zoom-level count.
	Levels int
	// CoarseFrac bounds the Foraging band: levels < CoarseFrac*(Levels-1)
	// are coarse. Defaults to 0.4.
	CoarseFrac float64
	// DetailFrac bounds the Sensemaking band: levels >=
	// DetailFrac*(Levels-1) are detailed. Defaults to 0.75.
	DetailFrac float64
}

func (c LabelerConfig) withDefaults() LabelerConfig {
	if c.CoarseFrac <= 0 {
		c.CoarseFrac = 0.4
	}
	if c.DetailFrac <= 0 {
		c.DetailFrac = 0.75
	}
	return c
}

// coarseMax returns the highest level still considered coarse.
func (c LabelerConfig) coarseMax() int {
	return int(c.CoarseFrac * float64(c.Levels-1))
}

// detailMin returns the lowest level considered detailed.
func (c LabelerConfig) detailMin() int {
	m := int(c.DetailFrac * float64(c.Levels-1))
	if m <= c.coarseMax() {
		m = c.coarseMax() + 1
	}
	return m
}

// Label assigns an analysis phase to a single request with the rule set we
// used in place of the paper's hand labeling:
//
//   - requests at coarse levels are Foraging (the user is scanning for
//     regions of interest);
//   - pans at detailed levels are Sensemaking (comparing neighbors);
//   - everything else — zoom chains and mid-level travel — is Navigation.
func Label(r trace.Request, cfg LabelerConfig) trace.Phase {
	cfg = cfg.withDefaults()
	switch {
	case r.Coord.Level <= cfg.coarseMax():
		return trace.Foraging
	case r.Coord.Level >= cfg.detailMin() && (r.Move.IsPan() || r.Move == trace.None):
		return trace.Sensemaking
	default:
		return trace.Navigation
	}
}

// LabelTrace labels every request of the trace in place and returns it.
func LabelTrace(t *trace.Trace, cfg LabelerConfig) *trace.Trace {
	for i := range t.Requests {
		t.Requests[i].Phase = Label(t.Requests[i], cfg)
	}
	return t
}

// Classifier predicts the user's current analysis phase from a request's
// features with a multi-class RBF-kernel SVM (paper §4.2.2). A Classifier
// may be restricted to a subset of the Table 1 features, which is how the
// per-feature accuracy column of Table 1 is reproduced.
//
// A trained Classifier is immutable — Predict and Accuracy only read the
// fitted SVM — so one instance is safe for concurrent use and is meant to
// be trained once and shared by every session engine of a deployment.
type Classifier struct {
	svm      *svm.Classifier
	features []int // indices into the full feature vector
}

// TrainConfig controls classifier training.
type TrainConfig struct {
	// Features selects feature indices (into FeatureNames); nil means all.
	Features []int
	// SVM overrides the underlying SVM configuration.
	SVM svm.Config
}

// Train fits the phase classifier on labeled requests (Phase must be set
// on every request; unlabeled requests are skipped).
func Train(reqs []trace.Request, cfg TrainConfig) (*Classifier, error) {
	features := cfg.Features
	if len(features) == 0 {
		features = make([]int, NumFeatures)
		for i := range features {
			features[i] = i
		}
	}
	for _, fi := range features {
		if fi < 0 || fi >= NumFeatures {
			return nil, fmt.Errorf("phase: feature index %d outside [0,%d)", fi, NumFeatures)
		}
	}
	var x [][]float64
	var y []int
	for _, r := range reqs {
		if r.Phase == trace.PhaseUnknown {
			continue
		}
		full := Features(r)
		row := make([]float64, len(features))
		for i, fi := range features {
			row[i] = full[fi]
		}
		x = append(x, row)
		y = append(y, int(r.Phase))
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("phase: no labeled requests to train on")
	}
	m, err := svm.Train(x, y, cfg.SVM)
	if err != nil {
		return nil, fmt.Errorf("phase: %w", err)
	}
	return &Classifier{svm: m, features: features}, nil
}

// Predict returns the predicted phase for a request.
func (c *Classifier) Predict(r trace.Request) trace.Phase {
	full := Features(r)
	row := make([]float64, len(c.features))
	for i, fi := range c.features {
		row[i] = full[fi]
	}
	return trace.Phase(c.svm.Predict(row))
}

// Accuracy scores the classifier against labeled requests, returning the
// fraction predicted correctly (unlabeled requests are skipped).
func (c *Classifier) Accuracy(reqs []trace.Request) float64 {
	correct, total := 0, 0
	for _, r := range reqs {
		if r.Phase == trace.PhaseUnknown {
			continue
		}
		total++
		if c.Predict(r) == r.Phase {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Requests flattens traces into one labeled request list, the training
// currency of this package.
func Requests(traces []*trace.Trace) []trace.Request {
	var out []trace.Request
	for _, t := range traces {
		out = append(out, t.Requests...)
	}
	return out
}
