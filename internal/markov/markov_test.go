package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadOrder(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("order 0 should fail")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative order should fail")
	}
}

func TestTrainedChainPrefersObservedTransition(t *testing.T) {
	c, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	// "after three lefts comes a fourth left" appears repeatedly.
	var seqs [][]string
	for i := 0; i < 10; i++ {
		seqs = append(seqs, []string{"left", "left", "left", "left", "up"})
	}
	seqs = append(seqs, []string{"left", "left", "left", "down"})
	c.Train(seqs)
	ctx := []string{"left", "left", "left"}
	pLeft := c.Prob(ctx, "left")
	pDown := c.Prob(ctx, "down")
	pUp := c.Prob(ctx, "up")
	if !(pLeft > pDown && pDown > 0 && pUp > 0) {
		t.Errorf("P(left)=%v P(down)=%v P(up)=%v", pLeft, pDown, pUp)
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	c, _ := New(2)
	rng := rand.New(rand.NewSource(3))
	vocab := []string{"a", "b", "c", "d"}
	var seqs [][]string
	for i := 0; i < 20; i++ {
		seq := make([]string, 30)
		for j := range seq {
			seq[j] = vocab[rng.Intn(len(vocab))]
		}
		seqs = append(seqs, seq)
	}
	c.Train(seqs)
	contexts := [][]string{
		{"a", "b"}, {"c", "c"}, {"d", "a"},
		{"a"},           // shorter than order
		{"b", "c", "d"}, // longer than order
		{},              // empty
	}
	for _, ctx := range contexts {
		sum := 0.0
		for _, s := range vocab {
			sum += c.Prob(ctx, s)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("context %v: probabilities sum to %v", ctx, sum)
		}
	}
}

func TestUnseenContextBacksOff(t *testing.T) {
	c, _ := New(3)
	c.Train([][]string{{"a", "a", "a", "b", "b", "b", "b"}})
	// Context never observed: must still produce a proper distribution.
	p := c.Prob([]string{"b", "a", "b"}, "b")
	if p <= 0 || p >= 1 {
		t.Errorf("backoff probability = %v, want in (0,1)", p)
	}
	// Unseen symbol-in-context gets smoothed nonzero mass.
	if p := c.Prob([]string{"a", "a", "a"}, "a"); p <= 0 {
		t.Errorf("smoothed unseen transition = %v, want > 0", p)
	}
}

func TestKneserNeyContinuationEffect(t *testing.T) {
	// "b" follows many different contexts; "c" follows only one, with a
	// higher raw count. Under an unseen context the continuation-based
	// unigram should favor the versatile "b" (the classic "San Francisco"
	// effect that distinguishes KN from simple add-one smoothing).
	c, _ := New(2)
	seqs := [][]string{
		{"a", "a", "b"}, {"a", "d", "b"}, {"a", "e", "b"}, {"a", "f", "b"},
		{"g", "g", "c"}, {"g", "g", "c"}, {"g", "g", "c"}, {"g", "g", "c"},
		{"g", "g", "c"}, {"g", "g", "c"},
	}
	c.Train(seqs)
	ctx := []string{"zz", "zz"} // fully unseen context
	pb := c.Prob(ctx, "b")
	pc := c.Prob(ctx, "c")
	if !(pb > pc) {
		t.Errorf("continuation: P(b)=%v should exceed P(c)=%v under unseen context", pb, pc)
	}
}

func TestPredictRankedAndDeterministic(t *testing.T) {
	build := func() []Prediction {
		c, _ := New(3)
		c.Train([][]string{
			{"in", "in", "in", "in", "out"},
			{"in", "in", "in", "in"},
			{"out", "out", "out", "out"},
		})
		return c.Predict([]string{"in", "in", "in"})
	}
	a := build()
	b := build()
	if len(a) == 0 || a[0].Symbol != "in" {
		t.Fatalf("top prediction = %+v, want 'in'", a)
	}
	for i := 1; i < len(a); i++ {
		if a[i].P > a[i-1].P {
			t.Fatalf("predictions not sorted: %+v", a)
		}
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Predict not deterministic")
		}
	}
}

func TestObserveThenFinishTraining(t *testing.T) {
	c, _ := New(2)
	c.Observe([]string{"x", "y", "z", "x", "y", "z"})
	c.FinishTraining()
	if p := c.Prob([]string{"x", "y"}, "z"); p < 0.5 {
		t.Errorf("P(z | x,y) = %v, want dominant", p)
	}
}

func TestUntrainedChain(t *testing.T) {
	c, _ := New(3)
	if p := c.Prob([]string{"a", "b", "c"}, "d"); p != 0 {
		t.Errorf("untrained chain prob = %v, want 0", p)
	}
	if preds := c.Predict([]string{"a"}); len(preds) != 0 {
		t.Errorf("untrained chain predictions = %v", preds)
	}
}

func TestStateCount(t *testing.T) {
	c, _ := New(2)
	c.Train([][]string{{"a", "b", "c", "a", "b"}})
	// States observed: (a,b)->c, (b,c)->a, (c,a)->b => 3 distinct.
	if got := c.StateCount(); got != 3 {
		t.Errorf("StateCount = %d, want 3", got)
	}
}

func TestHigherOrderCapturesLongerPatterns(t *testing.T) {
	// The pattern "a a b -> x" vs "b a b -> y" is invisible to order 1
	// (context "b" is ambiguous) but separable at order 3.
	seqs := [][]string{}
	for i := 0; i < 10; i++ {
		seqs = append(seqs, []string{"a", "a", "b", "x"})
		seqs = append(seqs, []string{"b", "a", "b", "y"})
	}
	c3, _ := New(3)
	c3.Train(seqs)
	c1, _ := New(1)
	c1.Train(seqs)
	p3 := c3.Prob([]string{"a", "a", "b"}, "x")
	p1 := c1.Prob([]string{"b"}, "x")
	if !(p3 > p1) {
		t.Errorf("order-3 P(x)=%v should exceed order-1 P(x)=%v", p3, p1)
	}
	if p3 < 0.6 {
		t.Errorf("order-3 should be confident, got %v", p3)
	}
}

// Property: for random corpora, all probabilities are valid and the
// distribution over the vocabulary sums to 1 in every observed context.
func TestProbDistributionProperty(t *testing.T) {
	vocab := []string{"u", "d", "l", "r", "o", "i"}
	f := func(seed int64, orderRaw uint8) bool {
		order := int(orderRaw%4) + 1
		rng := rand.New(rand.NewSource(seed))
		c, err := New(order)
		if err != nil {
			return false
		}
		var seqs [][]string
		for i := 0; i < 5; i++ {
			seq := make([]string, 12+rng.Intn(10))
			for j := range seq {
				seq[j] = vocab[rng.Intn(len(vocab))]
			}
			seqs = append(seqs, seq)
		}
		c.Train(seqs)
		ctx := make([]string, order)
		for j := range ctx {
			ctx[j] = vocab[rng.Intn(len(vocab))]
		}
		sum := 0.0
		for _, s := range c.Vocab() {
			p := c.Prob(ctx, s)
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTrainOrder3(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vocab := []string{"u", "d", "l", "r", "o", "inw", "ine", "isw", "ise"}
	var seqs [][]string
	for i := 0; i < 54; i++ {
		seq := make([]string, 30)
		for j := range seq {
			seq[j] = vocab[rng.Intn(len(vocab))]
		}
		seqs = append(seqs, seq)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, _ := New(3)
		c.Train(seqs)
	}
}

func BenchmarkPredict(b *testing.B) {
	c, _ := New(3)
	rng := rand.New(rand.NewSource(1))
	vocab := []string{"u", "d", "l", "r", "o", "inw", "ine", "isw", "ise"}
	var seqs [][]string
	for i := 0; i < 54; i++ {
		seq := make([]string, 30)
		for j := range seq {
			seq[j] = vocab[rng.Intn(len(vocab))]
		}
		seqs = append(seqs, seq)
	}
	c.Train(seqs)
	ctx := []string{"u", "u", "u"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Predict(ctx)
	}
}
