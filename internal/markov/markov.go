// Package markov implements the n-th-order Markov chain behind ForeCache's
// Actions-Based recommender (paper §4.3.2, Algorithm 2).
//
// States are length-n sequences of interface moves; transitions are the
// move taken next. Transition frequencies are learned from user traces and
// smoothed with interpolated Kneser–Ney (Chen & Goodman), the smoothing
// method the paper applies via the BerkeleyLM library. Symbols are opaque
// strings so the chain is reusable for any discrete action alphabet.
package markov

import (
	"fmt"
	"sort"
	"strings"
)

// discount is the Kneser–Ney absolute-discount constant. 0.75 is the
// standard default from the language-modeling literature.
const discount = 0.75

// Prediction pairs a symbol with its smoothed probability.
type Prediction struct {
	Symbol string
	P      float64
}

// Chain is an n-th-order Markov chain with Kneser–Ney smoothing. It must be
// built with New and trained with Train/Observe before use. After training
// finishes, Prob/Predict/Vocab only read the count tables, so a trained
// chain may be shared across goroutines (train once per deployment, not
// per session); training itself is not concurrency-safe.
type Chain struct {
	order int
	vocab map[string]bool

	// counts[k] maps a length-k context (joined with '\x1f') to the raw (for
	// k == order) or continuation (for k < order) counts of next symbols.
	counts []map[string]map[string]float64
	// totals[k][ctx] caches the sum over counts[k][ctx].
	totals []map[string]float64
}

// New returns an untrained chain of the given order (context length).
// Order must be at least 1.
func New(order int) (*Chain, error) {
	if order < 1 {
		return nil, fmt.Errorf("markov: order must be >= 1, got %d", order)
	}
	c := &Chain{
		order:  order,
		vocab:  make(map[string]bool),
		counts: make([]map[string]map[string]float64, order+1),
		totals: make([]map[string]float64, order+1),
	}
	for k := range c.counts {
		c.counts[k] = make(map[string]map[string]float64)
		c.totals[k] = make(map[string]float64)
	}
	return c, nil
}

// Order returns the chain's context length n.
func (c *Chain) Order() int { return c.order }

// Vocab returns the known symbols in sorted order.
func (c *Chain) Vocab() []string {
	out := make([]string, 0, len(c.vocab))
	for s := range c.vocab {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func key(ctx []string) string { return strings.Join(ctx, "\x1f") }

// Train processes a set of traces, each an ordered sequence of moves,
// implementing Algorithm 2: every length-n subsequence is a state and the
// following move increments that state's transition counter.
func (c *Chain) Train(seqs [][]string) {
	for _, seq := range seqs {
		c.Observe(seq)
	}
	c.rebuildContinuations()
}

// Observe incorporates a single trace. Callers streaming observations one
// trace at a time should call FinishTraining afterwards (Train does both).
func (c *Chain) Observe(seq []string) {
	for _, s := range seq {
		c.vocab[s] = true
	}
	n := c.order
	for i := n; i < len(seq); i++ {
		ctx := seq[i-n : i]
		next := seq[i]
		c.bump(n, key(ctx), next, 1)
	}
}

// FinishTraining recomputes the lower-order continuation counts. It must be
// called after the last Observe (Train calls it automatically).
func (c *Chain) FinishTraining() { c.rebuildContinuations() }

func (c *Chain) bump(k int, ctx, next string, delta float64) {
	m := c.counts[k][ctx]
	if m == nil {
		m = make(map[string]float64)
		c.counts[k][ctx] = m
	}
	m[next] += delta
	c.totals[k][ctx] += delta
}

// rebuildContinuations fills orders 0..n-1 with Kneser–Ney continuation
// counts: the count of a (ctx, w) pair at order k is the number of distinct
// symbols u such that the (u·ctx, w) transition was seen at order k+1.
func (c *Chain) rebuildContinuations() {
	for k := c.order - 1; k >= 0; k-- {
		c.counts[k] = make(map[string]map[string]float64)
		c.totals[k] = make(map[string]float64)
		for ctx, dist := range c.counts[k+1] {
			// Drop the oldest symbol (the first) to get the shorter context.
			var shorter string
			if i := strings.IndexByte(ctx, '\x1f'); i >= 0 {
				shorter = ctx[i+1:]
			} else {
				shorter = ""
			}
			for w, cnt := range dist {
				if cnt > 0 {
					c.bump(k, shorter, w, 1)
				}
			}
		}
	}
}

// Prob returns the interpolated Kneser–Ney probability of next following
// the given context. Contexts longer than the order use only the most
// recent n symbols; shorter contexts back off from their own length.
func (c *Chain) Prob(ctx []string, next string) float64 {
	if len(c.vocab) == 0 {
		return 0
	}
	k := len(ctx)
	if k > c.order {
		ctx = ctx[len(ctx)-c.order:]
		k = c.order
	}
	return c.probAt(k, ctx, next)
}

func (c *Chain) probAt(k int, ctx []string, next string) float64 {
	if k < 0 {
		return 1 / float64(len(c.vocab))
	}
	ck := key(ctx)
	total := c.totals[k][ck]
	var shorter []string
	if len(ctx) > 0 {
		shorter = ctx[1:]
	}
	if total == 0 {
		return c.probAt(k-1, shorter, next)
	}
	dist := c.counts[k][ck]
	cnt := dist[next]
	distinct := float64(len(dist))
	p := 0.0
	if cnt > discount {
		p = (cnt - discount) / total
	}
	lambda := discount * distinct / total
	return p + lambda*c.probAt(k-1, shorter, next)
}

// Predict returns every known symbol ranked by probability given the
// context, highest first. Ties break alphabetically for determinism.
func (c *Chain) Predict(ctx []string) []Prediction {
	vocab := c.Vocab()
	out := make([]Prediction, 0, len(vocab))
	for _, s := range vocab {
		out = append(out, Prediction{Symbol: s, P: c.Prob(ctx, s)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		return out[i].Symbol < out[j].Symbol
	})
	return out
}

// StateCount returns the number of distinct length-n states observed,
// useful for inspecting model size (the paper's Markov2..Markov10 sweep).
func (c *Chain) StateCount() int { return len(c.counts[c.order]) }
