// Package push is the server-push delivery layer of the middleware
// (Khameleon-style continuous prefetch): instead of parking every
// prefetched tile in the server-side cache and waiting for the client to
// ask, a session with an attached stream has completed fetches framed and
// written down one long-lived HTTP response, so the tile is already
// client-side when the pan that wants it happens.
//
// The package has two halves:
//
//   - the wire format (this file): SSE-compatible frames carrying the tile
//     payload plus its coord/model/score attribution, decodable by the Go
//     client and greppable by curl;
//   - the Registry (registry.go): the per-session stream table the server
//     and the prefetch scheduler share — attach/supersede/detach
//     lifecycle, bounded per-stream frame buffers, per-session drain-rate
//     measurement (the scheduler's bandwidth-aware admission term), and
//     push-to-consume lead-time tracking.
package push

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"forecache/internal/tile"
)

// Frame types.
const (
	// FrameTile carries one prefetched tile and its attribution.
	FrameTile = "tile"
	// FrameHeartbeat keeps the stream's intermediaries from timing an idle
	// connection out; it carries no tile.
	FrameHeartbeat = "heartbeat"
)

// Frame is one unit of the push stream: a tile with its scheduling
// attribution, or a heartbeat.
type Frame struct {
	// Type is FrameTile or FrameHeartbeat.
	Type string `json:"type"`
	// Session is the stream's session id (echoed so a frame is
	// self-describing in logs and captures).
	Session string `json:"session,omitempty"`
	// Seq is the stream-local frame sequence number, assigned at enqueue.
	Seq uint64 `json:"seq"`
	// Model is the recommender whose prediction asked for the tile.
	Model string `json:"model,omitempty"`
	// Score is that recommender's confidence for the tile.
	Score float64 `json:"score,omitempty"`
	// Backfill marks frames replayed from the server-side cache when a
	// dropped stream re-attaches (as opposed to freshly completed fetches).
	Backfill bool `json:"backfill,omitempty"`
	// Coord addresses the tile (zero for heartbeats).
	Coord tile.Coord `json:"coord"`
	// Tile is the payload (nil for heartbeats).
	Tile *tile.Tile `json:"tile,omitempty"`
	// Payload, when set, is the tile's already-encoded JSON body — the same
	// bytes the /tile endpoint serves, shared through the deployment's
	// encoded-payload cache. Encode splices it into the "tile" field
	// verbatim instead of re-marshaling Tile, so a tile pushed to N
	// attached streams is encoded once, not N times. It is never a wire
	// field of its own, and Decode leaves it nil (populating Tile).
	Payload json.RawMessage `json:"-"`
}

// wireFrame is Frame's wire shape when a pre-encoded payload is spliced
// in: identical fields, but the "tile" value is raw bytes.
type wireFrame struct {
	Type     string          `json:"type"`
	Session  string          `json:"session,omitempty"`
	Seq      uint64          `json:"seq"`
	Model    string          `json:"model,omitempty"`
	Score    float64         `json:"score,omitempty"`
	Backfill bool            `json:"backfill,omitempty"`
	Coord    tile.Coord      `json:"coord"`
	Tile     json.RawMessage `json:"tile,omitempty"`
}

// Encode writes f as one SSE event — "event: <type>", "data: <json>", and
// a terminating blank line — returning the number of bytes written. The
// JSON line carries every field (session ids, model names and coords with
// hostile characters are JSON-escaped onto a single line), so the event
// name never needs escaping: it is one of the two fixed constants, and
// anything else is rejected here rather than corrupting the stream.
func Encode(w io.Writer, f Frame) (int, error) {
	switch f.Type {
	case FrameTile, FrameHeartbeat:
	default:
		return 0, fmt.Errorf("push: unknown frame type %q", f.Type)
	}
	var data []byte
	var err error
	if f.Type == FrameTile && len(f.Payload) > 0 {
		// json.Marshal compacts the RawMessage onto the single data line
		// (the cached body carries a trailing newline), so the SSE framing
		// holds regardless of how the payload was produced.
		data, err = json.Marshal(wireFrame{
			Type: f.Type, Session: f.Session, Seq: f.Seq, Model: f.Model,
			Score: f.Score, Backfill: f.Backfill, Coord: f.Coord, Tile: f.Payload,
		})
	} else {
		data, err = json.Marshal(f)
	}
	if err != nil {
		return 0, fmt.Errorf("push: encode frame: %w", err)
	}
	return fmt.Fprintf(w, "event: %s\ndata: %s\n\n", f.Type, data)
}

// Decode reads the next frame off the stream. It tolerates SSE comment
// lines (": ...") and unknown fields, returns io.EOF at a clean end of
// stream, and fails on data lines that do not parse — a framing error is
// a reason to drop and re-attach the stream, not to guess.
func Decode(r *bufio.Reader) (Frame, error) {
	var f Frame
	var haveData bool
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			if err == io.EOF && strings.TrimSpace(line) == "" && !haveData {
				return Frame{}, io.EOF
			}
			return Frame{}, fmt.Errorf("push: read frame: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if haveData {
				return f, nil
			}
			// Leading blank lines between events are legal SSE; skip.
		case strings.HasPrefix(line, ":"):
			// SSE comment; ignore.
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[len("data: "):]), &f); err != nil {
				return Frame{}, fmt.Errorf("push: decode frame: %w", err)
			}
			haveData = true
		default:
			// event:/id:/retry: lines carry no payload we need — the type is
			// inside the JSON — but keep scanning to the blank terminator.
		}
	}
}
