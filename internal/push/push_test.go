package push

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"forecache/internal/obs"
	"forecache/internal/tile"
)

func testTile(c tile.Coord) *tile.Tile {
	return &tile.Tile{
		Coord: c,
		Size:  2,
		Attrs: []string{"v"},
		Data:  [][]float64{{1.5, -2.25, 0, 4}},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Type: FrameHeartbeat, Session: "s", Seq: 7},
		{
			Type: FrameTile, Session: "plain", Seq: 1, Model: "markov",
			Score: 0.75, Coord: tile.Coord{Level: 2, Y: 3, X: 1},
			Tile: testTile(tile.Coord{Level: 2, Y: 3, X: 1}),
		},
		{
			// Hostile session/model strings: newlines, SSE field syntax,
			// quotes, NULs — all must survive as JSON escapes on one line.
			Type:    FrameTile,
			Session: "evil\nevent: tile\ndata: {}\r\n\"'\x00",
			Seq:     math.MaxUint64,
			Model:   "m\no\rd\"el\x00",
			Score:   -1.25,
			Coord:   tile.Coord{Level: -9, Y: math.MaxInt32, X: math.MinInt32},
			Tile:    testTile(tile.Coord{Level: -9, Y: math.MaxInt32, X: math.MinInt32}),
			// Backfill marker must round-trip too.
			Backfill: true,
		},
	}
	var buf bytes.Buffer
	for _, f := range cases {
		if _, err := Encode(&buf, f); err != nil {
			t.Fatalf("Encode(%+v): %v", f, err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, want := range cases {
		got, err := Decode(r)
		if err != nil {
			t.Fatalf("Decode frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Session != want.Session || got.Seq != want.Seq ||
			got.Model != want.Model || got.Score != want.Score ||
			got.Backfill != want.Backfill || got.Coord != want.Coord {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		if (got.Tile == nil) != (want.Tile == nil) {
			t.Fatalf("frame %d: tile presence mismatch", i)
		}
		if got.Tile != nil {
			if got.Tile.Coord != want.Tile.Coord || got.Tile.Size != want.Tile.Size {
				t.Fatalf("frame %d: tile mismatch: got %+v want %+v", i, got.Tile, want.Tile)
			}
			if len(got.Tile.Data) != 1 || len(got.Tile.Data[0]) != 4 ||
				got.Tile.Data[0][1] != -2.25 {
				t.Fatalf("frame %d: tile data corrupted: %+v", i, got.Tile.Data)
			}
		}
	}
	if _, err := Decode(r); err != io.EOF {
		t.Fatalf("Decode at end of stream: got %v, want io.EOF", err)
	}
}

func TestEncodeRejectsUnknownType(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Encode(&buf, Frame{Type: "exploit\n\nevent: tile"}); err == nil {
		t.Fatal("Encode accepted an unknown frame type")
	}
	if buf.Len() != 0 {
		t.Fatalf("Encode wrote %d bytes for a rejected frame", buf.Len())
	}
}

func TestEncodeSingleLineData(t *testing.T) {
	var buf bytes.Buffer
	f := Frame{Type: FrameTile, Session: "a\nb", Model: "c\rd", Coord: tile.Coord{Level: 1}}
	if _, err := Encode(&buf, f); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Count(s, "\n") != 3 {
		t.Fatalf("encoded frame not exactly 3 newlines (event, data, blank):\n%q", s)
	}
	if !strings.HasPrefix(s, "event: tile\ndata: ") || !strings.HasSuffix(s, "\n\n") {
		t.Fatalf("bad SSE framing: %q", s)
	}
}

func TestDecodeToleratesCommentsAndCRLF(t *testing.T) {
	raw := ": keepalive\r\n\r\nevent: tile\r\nid: 9\r\ndata: {\"type\":\"tile\",\"seq\":3,\"coord\":{\"level\":1,\"y\":2,\"x\":3}}\r\n\r\n"
	f, err := Decode(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Seq != 3 || f.Coord != (tile.Coord{Level: 1, Y: 2, X: 3}) {
		t.Fatalf("got %+v", f)
	}
}

func TestDecodeRejectsBadJSON(t *testing.T) {
	raw := "event: tile\ndata: {not json\n\n"
	if _, err := Decode(bufio.NewReader(strings.NewReader(raw))); err == nil {
		t.Fatal("Decode accepted malformed JSON")
	}
}

func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	Encode(&buf, Frame{Type: FrameTile, Session: "s", Seq: 1, Coord: tile.Coord{Level: 1}})
	f.Add(buf.String())
	f.Add(": comment\n\n")
	f.Add("data: {\"type\":\"tile\"}\n\n")
	f.Fuzz(func(t *testing.T, s string) {
		r := bufio.NewReader(strings.NewReader(s))
		for i := 0; i < 16; i++ {
			if _, err := Decode(r); err != nil {
				return
			}
		}
	})
}

func TestRegistryAttachSupersede(t *testing.T) {
	r := NewRegistry(Config{})
	a := r.Attach("s")
	if a == nil {
		t.Fatal("Attach returned nil on an open registry")
	}
	b := r.Attach("s")
	select {
	case <-a.Done():
	default:
		t.Fatal("superseded stream not closed")
	}
	select {
	case <-b.Done():
		t.Fatal("fresh stream already closed")
	default:
	}
	if got := r.Stats(); got.Open != 1 || got.Opened != 2 {
		t.Fatalf("stats after supersede: %+v", got)
	}
	// Pushes land on the new stream only.
	c := tile.Coord{Level: 1, Y: 1, X: 1}
	if !r.Push("s", "m", c, 0.5, testTile(c)) {
		t.Fatal("Push to attached session failed")
	}
	select {
	case f := <-b.Frames():
		if f.Coord != c || f.Session != "s" || f.Seq != 1 {
			t.Fatalf("frame: %+v", f)
		}
	default:
		t.Fatal("no frame on current stream")
	}
	if len(a.Frames()) != 0 {
		t.Fatal("frame landed on superseded stream")
	}
}

func TestRegistryPushUnattached(t *testing.T) {
	r := NewRegistry(Config{})
	c := tile.Coord{Level: 1}
	if r.Push("ghost", "m", c, 1, testTile(c)) {
		t.Fatal("Push to unattached session succeeded")
	}
	if got := r.Stats(); got.Pushed != 0 {
		t.Fatalf("stats counted a refused push: %+v", got)
	}
}

func TestRegistryBufferOverflowDrops(t *testing.T) {
	r := NewRegistry(Config{Buffer: 2})
	r.Attach("s")
	for i := 0; i < 3; i++ {
		c := tile.Coord{Level: 1, X: i}
		ok := r.Push("s", "m", c, 1, testTile(c))
		if want := i < 2; ok != want {
			t.Fatalf("push %d: ok=%v want %v", i, ok, want)
		}
	}
	got := r.Stats()
	if got.Pushed != 2 || got.Dropped != 1 {
		t.Fatalf("stats: %+v", got)
	}
}

func TestRegistryDetachAndRelease(t *testing.T) {
	r := NewRegistry(Config{})
	st := r.Attach("s")
	r.RecordWrite("s", 1000, 10*time.Millisecond)
	r.Detach("s")
	select {
	case <-st.Done():
	default:
		t.Fatal("Detach did not close the stream")
	}
	// Detach forgets drain state entirely.
	st2 := r.Attach("s")
	if d := r.DrainDelay("s"); d != 0 {
		t.Fatalf("drain state survived Detach: %v", d)
	}
	r.RecordWrite("s", 1000, 10*time.Millisecond)
	if d := r.DrainDelay("s"); d == 0 {
		t.Fatal("no drain delay after RecordWrite")
	}
	// Release (client drop) keeps session state for the reconnect.
	r.Release(st2)
	select {
	case <-st2.Done():
	default:
		t.Fatal("Release did not close the stream")
	}
	if d := r.DrainDelay("s"); d != 0 {
		t.Fatalf("DrainDelay nonzero with no stream attached: %v", d)
	}
	r.Attach("s")
	if d := r.DrainDelay("s"); d == 0 {
		t.Fatal("drain estimate did not survive Release + re-attach")
	}
	// A stale Release of a superseded stream must not kill the current one.
	stale := r.Attach("s2")
	_ = r.Attach("s2") // supersedes stale
	r.Release(stale)
	if got := r.Stats(); got.Open != 2 { // "s" and "s2" both still attached
		t.Fatalf("open streams: %+v", got)
	}
}

func TestRegistryCloseIdempotent(t *testing.T) {
	r := NewRegistry(Config{})
	a := r.Attach("a")
	b := r.Attach("b")
	r.Close()
	r.Close()
	for _, st := range []*Stream{a, b} {
		select {
		case <-st.Done():
		default:
			t.Fatal("Close left a stream open")
		}
	}
	if r.Attach("c") != nil {
		t.Fatal("Attach succeeded after Close")
	}
	c := tile.Coord{Level: 1}
	if r.Push("a", "m", c, 1, testTile(c)) {
		t.Fatal("Push succeeded after Close")
	}
	if got := r.Stats(); got.Open != 0 {
		t.Fatalf("stats after Close: %+v", got)
	}
}

func TestRegistryDrainDelay(t *testing.T) {
	r := NewRegistry(Config{})
	r.Attach("s")
	if d := r.DrainDelay("s"); d != 0 {
		t.Fatalf("DrainDelay before any write: %v", d)
	}
	// 1000 bytes in 10ms → 100 kB/s; avg frame 1000 B → 10ms per frame.
	r.RecordWrite("s", 1000, 10*time.Millisecond)
	d := r.DrainDelay("s")
	if d < 9*time.Millisecond || d > 11*time.Millisecond {
		t.Fatalf("DrainDelay = %v, want ~10ms", d)
	}
	// Faster writes shrink the estimate.
	for i := 0; i < 20; i++ {
		r.RecordWrite("s", 1000, time.Millisecond)
	}
	if d2 := r.DrainDelay("s"); d2 >= d {
		t.Fatalf("DrainDelay did not shrink: %v -> %v", d, d2)
	}
	if d := r.DrainDelay("nobody"); d != 0 {
		t.Fatalf("DrainDelay for unknown session: %v", d)
	}
}

func TestRegistryConsumedLead(t *testing.T) {
	now := time.Unix(100, 0)
	pipe := obs.NewPipeline(obs.Config{TraceCapacity: -1})
	r := NewRegistry(Config{Obs: pipe, Now: func() time.Time { return now }})
	r.Attach("s")
	c := tile.Coord{Level: 3, Y: 1, X: 2}
	if !r.Push("s", "m", c, 1, testTile(c)) {
		t.Fatal("push failed")
	}
	now = now.Add(250 * time.Millisecond)
	lead, ok := r.Consumed("s", c)
	if !ok || lead != 250*time.Millisecond {
		t.Fatalf("Consumed = %v, %v", lead, ok)
	}
	// Second consume of the same coord is not double counted.
	if _, ok := r.Consumed("s", c); ok {
		t.Fatal("coord consumed twice")
	}
	if _, ok := r.Consumed("s", tile.Coord{Level: 9}); ok {
		t.Fatal("never-pushed coord reported consumed")
	}
	if got := r.Stats(); got.Consumed != 1 {
		t.Fatalf("stats: %+v", got)
	}
	if n := pipe.PushLead.Snapshot().Count; n != 1 {
		t.Fatalf("PushLead observations = %d, want 1", n)
	}
}

func TestRegistryPushedAtBounded(t *testing.T) {
	r := NewRegistry(Config{Buffer: 3 * pushedAtCap})
	r.Attach("s")
	for i := 0; i < pushedAtCap+10; i++ {
		c := tile.Coord{Level: 1, X: i}
		if !r.Push("s", "m", c, 1, testTile(c)) {
			t.Fatalf("push %d failed", i)
		}
	}
	r.mu.Lock()
	n := len(r.sessions["s"].pushedAt)
	r.mu.Unlock()
	if n > pushedAtCap {
		t.Fatalf("pushedAt grew to %d, cap %d", n, pushedAtCap)
	}
	// Oldest were evicted; newest still tracked.
	if _, ok := r.Consumed("s", tile.Coord{Level: 1, X: pushedAtCap + 9}); !ok {
		t.Fatal("newest pushed coord not tracked")
	}
}

func TestRegistryBackfillCounted(t *testing.T) {
	r := NewRegistry(Config{})
	st := r.Attach("s")
	c := tile.Coord{Level: 2, Y: 1}
	if !r.Backfill(st, "m", c, testTile(c)) {
		t.Fatal("Backfill failed")
	}
	f := <-st.Frames()
	if !f.Backfill || f.Type != FrameTile {
		t.Fatalf("frame: %+v", f)
	}
	got := r.Stats()
	if got.Pushed != 1 || got.Backfilled != 1 {
		t.Fatalf("stats: %+v", got)
	}
	// Backfill onto a superseded stream is refused.
	r.Attach("s")
	if r.Backfill(st, "m", c, testTile(c)) {
		t.Fatal("Backfill onto a closed stream succeeded")
	}
}

func TestEncodePayloadMatchesLegacy(t *testing.T) {
	c := tile.Coord{Level: 2, Y: 1, X: 3}
	tl := testTile(c)
	f := Frame{Type: FrameTile, Session: "s", Seq: 5, Model: "m", Score: 0.5, Coord: c, Tile: tl}
	var legacy bytes.Buffer
	if _, err := Encode(&legacy, f); err != nil {
		t.Fatal(err)
	}
	body, err := tl.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	f.Payload = body
	var embedded bytes.Buffer
	if _, err := Encode(&embedded, f); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), embedded.Bytes()) {
		t.Fatalf("payload-embedded frame differs from legacy marshal:\nlegacy:   %q\nembedded: %q",
			legacy.Bytes(), embedded.Bytes())
	}
}

func TestRegistryPushSharesEncodedPayload(t *testing.T) {
	ec := tile.NewEncodedCache(0, nil)
	r := NewRegistry(Config{Encoded: ec})
	c := tile.Coord{Level: 2, Y: 1, X: 1}
	tl := testTile(c)
	sessions := []string{"s0", "s1", "s2"}
	streams := make([]*Stream, len(sessions))
	for i, s := range sessions {
		streams[i] = r.Attach(s)
	}
	for i, s := range sessions {
		if !r.Push(s, "m", c, 1, tl) {
			t.Fatalf("Push to %s (stream %d) failed", s, i)
		}
	}
	// Delivering one tile to N streams must encode it exactly once.
	if st := ec.Stats(); st.Misses != 1 {
		t.Fatalf("tile encoded %d times for %d streams, want 1 (stats %+v)",
			st.Misses, len(streams), st)
	}
	for i, st := range streams {
		f := <-st.Frames()
		if len(f.Payload) == 0 {
			t.Fatalf("stream %d: frame carries no cached payload", i)
		}
		var buf bytes.Buffer
		if _, err := Encode(&buf, f); err != nil {
			t.Fatalf("stream %d: Encode: %v", i, err)
		}
		got, err := Decode(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("stream %d: Decode: %v", i, err)
		}
		if got.Tile == nil || got.Tile.Coord != c || got.Tile.Data[0][1] != -2.25 {
			t.Fatalf("stream %d: decoded tile corrupted: %+v", i, got.Tile)
		}
	}
}

func TestRegistryBackfillUsesEncodedPayload(t *testing.T) {
	ec := tile.NewEncodedCache(0, nil)
	r := NewRegistry(Config{Encoded: ec})
	st := r.Attach("s")
	c := tile.Coord{Level: 2, Y: 1}
	if !r.Backfill(st, "m", c, testTile(c)) {
		t.Fatal("Backfill failed")
	}
	f := <-st.Frames()
	if len(f.Payload) == 0 {
		t.Fatal("backfill frame carries no cached payload")
	}
	if stats := ec.Stats(); stats.Misses != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	var buf bytes.Buffer
	if _, err := Encode(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Backfill || got.Tile == nil || got.Tile.Coord != c {
		t.Fatalf("decoded frame: %+v", got)
	}
}
