package push

import (
	"encoding/json"
	"sync"
	"time"

	"forecache/internal/obs"
	"forecache/internal/tile"
)

// Defaults and bounds.
const (
	// DefaultBuffer is the per-stream frame buffer: pushes beyond it are
	// dropped (the cache still holds the tile; the pull path still works).
	DefaultBuffer = 64
	// DefaultHeartbeat is the idle-stream heartbeat interval.
	DefaultHeartbeat = 15 * time.Second
	// pushedAtCap bounds the per-session pushed-coordinate tracker behind
	// the push-to-consume lead-time metric.
	pushedAtCap = 2048
	// drainAlpha is the EWMA weight of the newest drain-rate sample.
	drainAlpha = 0.3
)

// Config sizes a Registry.
type Config struct {
	// Buffer is the per-stream frame buffer capacity. Default DefaultBuffer.
	Buffer int
	// Heartbeat is how often an idle stream emits a heartbeat frame.
	// Default DefaultHeartbeat.
	Heartbeat time.Duration
	// Obs, when set, receives push-to-consume lead times (frame enqueued to
	// the tile's request arriving). Nil is a no-op.
	Obs *obs.Pipeline
	// Encoded, when set, is the deployment's encoded-payload cache: every
	// pushed frame carries the tile's memoized JSON body (Frame.Payload),
	// so a tile delivered to N attached streams — and to the /tile pull
	// path — is encoded exactly once. Nil keeps the per-frame marshal.
	Encoded *tile.EncodedCache
	// Now overrides time.Now (test seam).
	Now func() time.Time
}

// Stats snapshots registry activity since construction.
type Stats struct {
	// Open is the number of streams attached right now.
	Open int `json:"open"`
	// Opened counts stream attachments ever (reconnects included).
	Opened int `json:"opened"`
	// Pushed counts tile frames enqueued to streams (backfill included).
	Pushed int `json:"pushed"`
	// Backfilled counts the subset of Pushed replayed from the server-side
	// cache on re-attach.
	Backfilled int `json:"backfilled"`
	// Dropped counts frames lost to a full stream buffer or a detached
	// session.
	Dropped int `json:"dropped"`
	// Heartbeats counts heartbeat frames written.
	Heartbeats int `json:"heartbeats"`
	// Consumed counts pushed tiles whose session later requested them (each
	// observes one push-to-consume lead time).
	Consumed int `json:"consumed"`
	// DrainRates maps each open stream's session to its measured drain rate
	// in bytes per second (0 until the first write is recorded).
	DrainRates map[string]float64 `json:"drain_bytes_per_sec,omitempty"`
}

// sessionState is the per-session accounting that outlives one stream
// attachment: the measured drain rate (the scheduler's bandwidth term) and
// the pushed-coordinate tracker (the lead-time metric). It survives a
// client reconnect and dies with the session (Detach) or the registry.
type sessionState struct {
	bps      float64 // EWMA drained bytes per second
	avgBytes float64 // EWMA frame size in bytes
	pushedAt map[tile.Coord]time.Time
	order    []tile.Coord // FIFO bound on pushedAt
}

// Stream is one attached session stream: a bounded frame buffer the
// scheduler pushes into and the server's stream handler drains, plus a
// done channel closed when the stream is superseded, its session is
// evicted, or the registry closes.
type Stream struct {
	reg     *Registry
	session string
	frames  chan Frame
	done    chan struct{}
	closed  bool   // guarded by reg.mu
	seq     uint64 // guarded by reg.mu
}

// Frames is the buffered frame channel the stream handler drains.
func (st *Stream) Frames() <-chan Frame { return st.frames }

// Done is closed when the stream must end: superseded by a re-attach,
// session evicted, or registry closed.
func (st *Stream) Done() <-chan struct{} { return st.done }

// Session returns the stream's session id.
func (st *Stream) Session() string { return st.session }

// Registry is the deployment's push-stream table, shared by the HTTP
// server (attach/teardown, frame writing) and the prefetch scheduler
// (frame dispatch, bandwidth-aware admission). Safe for concurrent use.
type Registry struct {
	cfg Config

	mu       sync.Mutex
	streams  map[string]*Stream
	sessions map[string]*sessionState
	closed   bool

	opened, pushed, backfilled, dropped, heartbeats, consumed int
}

// NewRegistry builds a stream registry.
func NewRegistry(cfg Config) *Registry {
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultBuffer
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Registry{
		cfg:      cfg,
		streams:  make(map[string]*Stream),
		sessions: make(map[string]*sessionState),
	}
}

// HeartbeatInterval returns the configured idle-stream heartbeat cadence.
func (r *Registry) HeartbeatInterval() time.Duration { return r.cfg.Heartbeat }

// Attach registers a stream for session, superseding (and closing) any
// stream the session already has — the newest connection wins, which is
// what makes client reconnects safe. Returns nil after Close.
func (r *Registry) Attach(session string) *Stream {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	if old := r.streams[session]; old != nil {
		r.closeStreamLocked(old)
	}
	st := &Stream{
		reg:     r,
		session: session,
		frames:  make(chan Frame, r.cfg.Buffer),
		done:    make(chan struct{}),
	}
	r.streams[session] = st
	if r.sessions[session] == nil {
		r.sessions[session] = &sessionState{pushedAt: make(map[tile.Coord]time.Time)}
	}
	r.opened++
	return st
}

// Detach ends session's stream and forgets its push state entirely — the
// session-eviction path (TTL/LRU sweep, Server.Close teardown). The stream
// handler observes Done and returns.
func (r *Registry) Detach(session string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st := r.streams[session]; st != nil {
		r.closeStreamLocked(st)
		delete(r.streams, session)
	}
	delete(r.sessions, session)
}

// Release ends st if it is still the session's current stream — the
// client-dropped path. Unlike Detach it keeps the session's drain-rate and
// lead-time state, so a reconnect resumes with a warm bandwidth estimate.
func (r *Registry) Release(st *Stream) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closeStreamLocked(st)
	if r.streams[st.session] == st {
		delete(r.streams, st.session)
	}
}

// Close ends every stream and refuses further attaches and pushes.
// Idempotent; it only signals — it never waits on a stream writer, so a
// Server.Close racing a mid-write handler cannot deadlock here.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	for session, st := range r.streams {
		r.closeStreamLocked(st)
		delete(r.streams, session)
	}
	r.sessions = make(map[string]*sessionState)
}

// closeStreamLocked closes st's done channel exactly once.
func (r *Registry) closeStreamLocked(st *Stream) {
	if !st.closed {
		st.closed = true
		close(st.done)
	}
}

// Push enqueues one freshly fetched tile onto session's stream, reporting
// whether the frame was accepted (false: no stream attached, buffer full,
// or registry closed). This is the prefetch scheduler's dispatch hook
// (prefetch.PushSink); it never blocks — a slow consumer loses frames, not
// the worker pool.
func (r *Registry) Push(session, model string, c tile.Coord, score float64, t *tile.Tile) bool {
	return r.enqueue(session, Frame{
		Type: FrameTile, Model: model, Score: score, Coord: c, Tile: t,
		Payload: r.encodedPayload(c, t),
	}, false)
}

// Backfill enqueues one cached tile onto st after a re-attach, so the
// client's slot buffer recovers what the dropped stream already carried
// without re-fetching (and without touching cache outcome accounting —
// the caller reads the cache through a side-effect-free snapshot).
func (r *Registry) Backfill(st *Stream, model string, c tile.Coord, t *tile.Tile) bool {
	payload := r.encodedPayload(c, t) // encode outside the registry lock
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.streams[st.session] != st {
		// st was superseded or released; its frames belong to nobody now.
		return false
	}
	return r.enqueueLocked(st, Frame{
		Type: FrameTile, Model: model, Coord: c, Tile: t, Backfill: true,
		Payload: payload,
	}, true)
}

// encodedPayload returns t's memoized JSON body from the encoded-payload
// cache, or nil — falling back to Encode's per-frame marshal — when the
// cache is absent or the encode fails. Called before taking the registry
// lock: a first-touch encode must not stall every other stream.
func (r *Registry) encodedPayload(c tile.Coord, t *tile.Tile) json.RawMessage {
	if r.cfg.Encoded == nil || t == nil {
		return nil
	}
	p, err := r.cfg.Encoded.Get(c, tile.FormatJSON, false, t.EncodeJSON)
	if err != nil {
		return nil
	}
	return p
}

func (r *Registry) enqueue(session string, f Frame, backfill bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.enqueueLocked(r.streams[session], f, backfill)
}

func (r *Registry) enqueueLocked(st *Stream, f Frame, backfill bool) bool {
	if st == nil || st.closed || r.closed {
		return false
	}
	session := st.session
	st.seq++
	f.Seq = st.seq
	f.Session = session
	select {
	case st.frames <- f:
	default:
		r.dropped++
		return false
	}
	r.pushed++
	if backfill {
		r.backfilled++
	}
	ss := r.sessions[session]
	if _, ok := ss.pushedAt[f.Coord]; !ok {
		for len(ss.order) > 0 && len(ss.pushedAt) >= pushedAtCap {
			victim := ss.order[0]
			ss.order = ss.order[1:]
			delete(ss.pushedAt, victim)
		}
		ss.order = append(ss.order, f.Coord)
	}
	ss.pushedAt[f.Coord] = r.cfg.Now()
	return true
}

// Consumed records that session requested coordinate c: if c was pushed
// down the session's stream and not yet consumed, the push-to-consume
// lead time is observed and true is returned. The server calls this on
// every /tile request of a push-enabled deployment.
func (r *Registry) Consumed(session string, c tile.Coord) (time.Duration, bool) {
	r.mu.Lock()
	ss := r.sessions[session]
	if ss == nil {
		r.mu.Unlock()
		return 0, false
	}
	at, ok := ss.pushedAt[c]
	if !ok {
		r.mu.Unlock()
		return 0, false
	}
	delete(ss.pushedAt, c)
	r.consumed++
	lead := r.cfg.Now().Sub(at)
	obsPipe := r.cfg.Obs
	r.mu.Unlock()
	obsPipe.ObservePushLead(lead)
	return lead, true
}

// RecordWrite feeds one stream write into the session's drain-rate EWMA:
// n bytes flushed to the connection in elapsed wall time. The handler
// calls it after every frame write; the scheduler's bandwidth-aware
// admission term reads the resulting rate through DrainDelay.
func (r *Registry) RecordWrite(session string, n int, elapsed time.Duration) {
	if n <= 0 || elapsed <= 0 {
		return
	}
	rate := float64(n) / elapsed.Seconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	ss := r.sessions[session]
	if ss == nil {
		return
	}
	if ss.bps == 0 {
		ss.bps = rate
	} else {
		ss.bps = drainAlpha*rate + (1-drainAlpha)*ss.bps
	}
	if ss.avgBytes == 0 {
		ss.avgBytes = float64(n)
	} else {
		ss.avgBytes = drainAlpha*float64(n) + (1-drainAlpha)*ss.avgBytes
	}
}

// CountHeartbeat counts one heartbeat frame written by a stream handler.
func (r *Registry) CountHeartbeat() {
	r.mu.Lock()
	r.heartbeats++
	r.mu.Unlock()
}

// DrainDelay estimates how long session's connection takes to deliver one
// more tile frame: the EWMA frame size over the measured drain rate. It
// returns 0 for sessions without an attached stream or without a measured
// rate yet — the scheduler's admission term then adds nothing, exactly the
// pull-path behavior. This is prefetch.PushSink's bandwidth hook.
func (r *Registry) DrainDelay(session string) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.streams[session]
	if st == nil || st.closed {
		return 0
	}
	ss := r.sessions[session]
	if ss == nil || ss.bps <= 0 || ss.avgBytes <= 0 {
		return 0
	}
	return time.Duration(ss.avgBytes / ss.bps * float64(time.Second))
}

// Stats snapshots the registry counters plus each open stream's measured
// drain rate.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{
		Open:       len(r.streams),
		Opened:     r.opened,
		Pushed:     r.pushed,
		Backfilled: r.backfilled,
		Dropped:    r.dropped,
		Heartbeats: r.heartbeats,
		Consumed:   r.consumed,
	}
	if len(r.streams) > 0 {
		st.DrainRates = make(map[string]float64, len(r.streams))
		for session := range r.streams {
			var bps float64
			if ss := r.sessions[session]; ss != nil {
				bps = ss.bps
			}
			st.DrainRates[session] = bps
		}
	}
	return st
}
