package recommend

import (
	"fmt"

	"forecache/internal/trace"
)

// This file is the recommender registry: the single place that knows how
// each recommendation model is constructed, whether it trains on study
// traces or learns online, and which column of the default per-phase
// allocation table (§5.4.3, extended with the hotspot column) it claims.
// The facade, the HTTP server and the eval harness all build their model
// sets from registered Specs instead of hard-coding AB/SB wiring, so
// adding a recommender is a registry entry, not a surgery.

// Env is what artifact construction may draw on: the tile source (the
// pyramid) and, for trace-trained models, the training traces. TrainHook
// is the facade's test seam — Build invokes it once per trace-trained
// artifact so tests can prove a deployment trains each model exactly once.
type Env struct {
	Tiles     TileSource
	Traces    []*trace.Trace
	TrainHook func(name string)
}

// Artifact is one built (possibly trained) recommender artifact. Session
// returns the per-session Model view: a fresh mutable model for
// recommenders with per-session state (SB's ROI tracker), or the shared
// instance itself for immutable (AB) and deployment-wide (Hotspot) ones.
type Artifact interface {
	Session() Model
}

// Spec describes one recommender kind to the registry.
type Spec struct {
	// Name is the registry key and must equal the built model's Name().
	Name string
	// Trains marks trace-trained specs: Build consumes Env.Traces and the
	// deployment must supply them (online specs ignore the traces).
	Trains bool
	// Prior is the model's column of the default per-phase allocation
	// table: the number of prefetch slots it claims for phase ph out of
	// budget k. Columns are resolved in registry order, each claim clamped
	// to the budget still unclaimed; a negative claim takes the whole
	// remainder. core.NewRegistryPolicy turns the columns into an
	// AllocationPolicy.
	Prior func(ph trace.Phase, k int) int
	// Build constructs the shared artifact, once per deployment.
	Build func(env Env) (Artifact, error)
}

// PriorColumn pairs a model name with its prior claim, in registry order —
// the raw material of core.NewRegistryPolicy.
type PriorColumn struct {
	Model string
	Claim func(ph trace.Phase, k int) int
}

// Registry is an ordered, validated set of Specs.
type Registry struct {
	specs []Spec
}

// NewRegistry validates and freezes the given specs: every spec needs a
// unique non-empty name, a Build constructor and a Prior column.
func NewRegistry(specs ...Spec) (*Registry, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("recommend: registry needs at least one spec")
	}
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("recommend: spec with empty name")
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("recommend: duplicate spec %q", s.Name)
		}
		seen[s.Name] = true
		if s.Build == nil {
			return nil, fmt.Errorf("recommend: spec %q has no Build constructor", s.Name)
		}
		if s.Prior == nil {
			return nil, fmt.Errorf("recommend: spec %q has no prior column", s.Name)
		}
	}
	return &Registry{specs: append([]Spec(nil), specs...)}, nil
}

// Specs returns the registered specs in order.
func (r *Registry) Specs() []Spec { return append([]Spec(nil), r.specs...) }

// Build constructs every spec's shared artifact once — the deployment's
// single training pass over the recommenders — and returns the Set that
// stamps out per-session model sets. Trace-trained specs fail fast when
// env.Traces is empty instead of silently training on nothing.
func (r *Registry) Build(env Env) (*Set, error) {
	arts := make([]Artifact, len(r.specs))
	for i, s := range r.specs {
		if s.Trains {
			if len(env.Traces) == 0 {
				return nil, fmt.Errorf("recommend: spec %q is trace-trained but no traces were supplied", s.Name)
			}
			if env.TrainHook != nil {
				env.TrainHook(s.Name)
			}
		}
		a, err := s.Build(env)
		if err != nil {
			return nil, fmt.Errorf("recommend: build %q: %w", s.Name, err)
		}
		arts[i] = a
	}
	return &Set{specs: r.specs, arts: arts}, nil
}

// Set is a registry's built artifact bundle: the immutable, shareable
// output of one Registry.Build pass. One Set serves every session of a
// deployment — Session stamps out the cheap per-session model views while
// the trained/shared artifacts are constructed exactly once.
type Set struct {
	specs []Spec
	arts  []Artifact
}

// Session returns a fresh per-session model set, in registry order.
func (s *Set) Session() []Model {
	out := make([]Model, len(s.arts))
	for i, a := range s.arts {
		out[i] = a.Session()
	}
	return out
}

// Names returns the model names in registry order.
func (s *Set) Names() []string {
	out := make([]string, len(s.specs))
	for i, sp := range s.specs {
		out[i] = sp.Name
	}
	return out
}

// Artifact returns the named spec's built artifact (nil when absent), so
// deployments can reach shared state — e.g. the *Hotspot counter table
// they must feed with cache outcomes.
func (s *Set) Artifact(name string) Artifact {
	for i, sp := range s.specs {
		if sp.Name == name {
			return s.arts[i]
		}
	}
	return nil
}

// Hotspot returns the set's shared online hotspot model, or nil when the
// registry has no hotspot column.
func (s *Set) Hotspot() *Hotspot {
	h, _ := s.Artifact(hotspotName).(*Hotspot)
	return h
}

// Columns returns the specs' prior columns in registry order.
func (s *Set) Columns() []PriorColumn {
	out := make([]PriorColumn, len(s.specs))
	for i, sp := range s.specs {
		out[i] = PriorColumn{Model: sp.Name, Claim: sp.Prior}
	}
	return out
}

// Rest is the prior claim that takes the whole unclaimed remainder.
const Rest = -1

// hotspotName is the online hotspot model's fixed Name().
const hotspotName = "hotspot"

// sbArtifact stamps out fresh SB recommenders (the ROI tracker is mutable
// per-session state, so unlike AB the model cannot be shared).
type sbArtifact struct {
	src  TileSource
	sigs []string
}

func (a *sbArtifact) Session() Model { return NewSB(a.src, WithSignatures(a.sigs...)) }

// ABSpec registers the Actions-Based Markov recommender of the given
// order: trace-trained, immutable, shared by every session. Its default
// prior is the paper's §5.4.3 column — the first four slots in Foraging
// and Navigation, nothing in Sensemaking.
func ABSpec(order int) Spec {
	return Spec{
		Name:   "markov" + itoa(order),
		Trains: true,
		Prior: func(ph trace.Phase, k int) int {
			if ph == trace.Sensemaking {
				return 0
			}
			return 4
		},
		Build: func(env Env) (Artifact, error) {
			return NewAB(order, env.Traces)
		},
	}
}

// Session implements Artifact: a trained AB is immutable, so the shared
// instance is the per-session model.
func (m *AB) Session() Model { return m }

// SBSpec registers the Signature-Based recommender restricted to the
// named signatures: training-free, one fresh instance per session. Its
// default prior is the §5.4.3 remainder column — everything the earlier
// columns left unclaimed, which in Sensemaking is the whole budget.
func SBSpec(sigs ...string) Spec {
	name := "sb"
	if len(sigs) == 1 {
		name = "sb:" + sigs[0]
	}
	return Spec{
		Name:  name,
		Prior: func(trace.Phase, int) int { return Rest },
		Build: func(env Env) (Artifact, error) {
			if env.Tiles == nil {
				return nil, fmt.Errorf("SB needs a tile source")
			}
			return &sbArtifact{src: env.Tiles, sigs: sigs}, nil
		},
	}
}

// HotspotSpec registers the online cross-session hotspot recommender:
// training-free, one shared counter table for the whole deployment. When
// training traces are available the table is seeded with their request
// frequencies — the same ahead-of-time popularity the Doshi baseline
// fixes forever, except here it is just the starting point: live
// consumption keeps refreshing the table and the EWMA decay forgets
// seeds the population stops visiting. Its default prior claims a single
// slot in every phase once the budget reaches 3 tiles (below that the
// paper's two models keep everything).
func HotspotSpec(cfg HotspotConfig) Spec {
	return Spec{
		Name: hotspotName,
		Prior: func(ph trace.Phase, k int) int {
			if k >= 3 {
				return 1
			}
			return 0
		},
		Build: func(env Env) (Artifact, error) {
			h := NewHotspot(cfg)
			for _, tr := range env.Traces {
				for _, r := range tr.Requests {
					h.ObserveConsumption(r.Coord, r.Phase)
				}
			}
			return h, nil
		},
	}
}

// DefaultSpecs is the standard registry composition and the owner of the
// default per-phase prior table. With hotspot == nil it is exactly the
// paper's tuned §5.4.3 hybrid: AB claims min(k, 4) in Foraging and
// Navigation, SB the remainder and all of Sensemaking. With a hotspot
// config the table grows a third column: the hotspot model takes one slot
// in every phase (for k >= 3), funded by AB in Foraging/Navigation (whose
// first-4 cap becomes first-3) and by SB's monopoly in Sensemaking — at
// the headline k=5 that is AB 3 / hotspot 1 / SB 1 in Foraging and
// Navigation, and SB 4 / hotspot 1 in Sensemaking.
func DefaultSpecs(abOrder int, sbSigs []string, hotspot *HotspotConfig) []Spec {
	ab := ABSpec(abOrder)
	sb := SBSpec(sbSigs...)
	if hotspot == nil {
		return []Spec{ab, sb}
	}
	ab.Prior = func(ph trace.Phase, k int) int {
		if ph == trace.Sensemaking {
			return 0
		}
		// First-3 cap, but never so greedy that the hotspot's guaranteed
		// slot at k >= 3 is squeezed out (at k=3 AB takes 2, hotspot 1).
		if k >= 4 {
			return 3
		}
		if k == 3 {
			return 2
		}
		return k
	}
	return []Spec{ab, HotspotSpec(*hotspot), sb}
}
