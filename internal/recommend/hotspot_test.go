package recommend

import (
	"math"
	"sync"
	"testing"

	"forecache/internal/tile"
	"forecache/internal/trace"
)

// TestHotspotRankingDeterministic: consumption counts order the candidate
// ranking, and the untouched candidates tie at score 0 in coordinate
// order — the whole ranking is reproducible.
func TestHotspotRankingDeterministic(t *testing.T) {
	b := gridBounds{maxLevel: 4}
	h := NewHotspot(HotspotConfig{})
	cur := tile.Coord{Level: 2, Y: 1, X: 1}
	popular := tile.Coord{Level: 2, Y: 1, X: 2}
	warm := tile.Coord{Level: 2, Y: 0, X: 1}
	for i := 0; i < 5; i++ {
		h.ObserveConsumption(popular, trace.Foraging)
	}
	h.ObserveConsumption(warm, trace.Foraging)

	cands := Candidates(b, cur, 1)
	first := h.Predict(trace.Request{Coord: cur}, cands, nil)
	if first[0].Coord != popular {
		t.Fatalf("top candidate = %v, want the popular %v", first[0].Coord, popular)
	}
	if first[1].Coord != warm {
		t.Fatalf("second candidate = %v, want the warm %v", first[1].Coord, warm)
	}
	if first[0].Score <= first[1].Score || first[1].Score <= 0 {
		t.Fatalf("scores not ordered by consumption: %v", first[:3])
	}
	// Every untouched candidate scores 0 and the full order is stable.
	for i := 2; i < len(first); i++ {
		if first[i].Score != 0 {
			t.Errorf("cold candidate %v has score %v, want 0", first[i].Coord, first[i].Score)
		}
	}
	for i := 0; i < 20; i++ {
		again := h.Predict(trace.Request{Coord: cur}, cands, nil)
		for j := range first {
			if again[j].Coord != first[j].Coord {
				t.Fatalf("ranking not deterministic at %d: %v vs %v", j, again[j], first[j])
			}
		}
	}
}

// TestHotspotDecayForgetsStaleTiles: with a short half-life, a burst of
// newer consumption at the same level overtakes an old hotspot — the table
// tracks what is popular NOW.
func TestHotspotDecayForgetsStaleTiles(t *testing.T) {
	h := NewHotspot(HotspotConfig{HalfLife: 4})
	old := tile.Coord{Level: 3, Y: 1, X: 1}
	fresh := tile.Coord{Level: 3, Y: 2, X: 2}
	for i := 0; i < 10; i++ {
		h.ObserveConsumption(old, trace.Foraging)
	}
	if h.Share(old) <= h.Share(fresh) {
		t.Fatal("old hotspot should dominate before the shift")
	}
	for i := 0; i < 30; i++ {
		h.ObserveConsumption(fresh, trace.Foraging)
	}
	if h.Share(fresh) <= h.Share(old) {
		t.Errorf("after the shift fresh share %v should exceed stale %v",
			h.Share(fresh), h.Share(old))
	}
	// 30 observations = 7.5 half-lives: the stale share must be tiny.
	if h.Share(old) > 0.02 {
		t.Errorf("stale share %v did not decay", h.Share(old))
	}
}

// TestHotspotSharesPerLevel: shares are normalized within a zoom level, so
// a tile's score is comparable across levels with wildly different
// traffic volumes.
func TestHotspotSharesPerLevel(t *testing.T) {
	h := NewHotspot(HotspotConfig{HalfLife: 1000})
	deep := tile.Coord{Level: 4, Y: 3, X: 3}
	shallow := tile.Coord{Level: 1, Y: 0, X: 0}
	// The deep level sees 100 observations, 50 of them for our tile; the
	// shallow level sees 2, 1 of it ours. Both tiles own ~half their
	// level's recent consumption.
	for i := 0; i < 100; i++ {
		c := deep
		if i%2 == 1 {
			c = tile.Coord{Level: 4, Y: 0, X: i % 4}
		}
		h.ObserveConsumption(c, trace.Foraging)
	}
	h.ObserveConsumption(shallow, trace.Foraging)
	h.ObserveConsumption(tile.Coord{Level: 1, Y: 1, X: 1}, trace.Foraging)

	ds, ss := h.Share(deep), h.Share(shallow)
	if math.Abs(ds-0.5) > 0.05 || math.Abs(ss-0.5) > 0.05 {
		t.Errorf("shares deep=%v shallow=%v, want both ~0.5", ds, ss)
	}
	if h.Share(tile.Coord{Level: 2, Y: 0, X: 0}) != 0 {
		t.Error("level with no consumption must score 0")
	}
}

// TestHotspotModelContract: the Model interface behaves as documented —
// Observe and Reset are no-ops on the shared table.
func TestHotspotModelContract(t *testing.T) {
	h := NewHotspot(HotspotConfig{})
	if h.Name() != "hotspot" {
		t.Fatalf("Name = %q", h.Name())
	}
	c := tile.Coord{Level: 2, Y: 1, X: 1}
	h.ObserveConsumption(c, trace.Foraging)
	before := h.Share(c)
	h.Observe(trace.Request{Coord: tile.Coord{Level: 2, Y: 0, X: 0}})
	h.Reset()
	if got := h.Share(c); got != before {
		t.Errorf("Observe/Reset changed the shared table: %v -> %v", before, got)
	}
	if h.Session() != Model(h) {
		t.Error("Session must return the shared instance")
	}
}

// TestHotspotSweepBoundsTable: the stripe cap is a hard bound. With a
// short half-life the decayed-out entries go first; with an enormous
// half-life (nothing ever decays below noise) the smallest-weight live
// entries are evicted — either way the table cannot grow unboundedly,
// and the cooldown keeps the sweep off the per-update hot path.
func TestHotspotSweepBoundsTable(t *testing.T) {
	for _, halfLife := range []float64{2, 1e12} {
		h := NewHotspot(HotspotConfig{HalfLife: halfLife, Stripes: 1, MaxPerStripe: 64})
		for i := 0; i < 10000; i++ {
			h.ObserveConsumption(tile.Coord{Level: 5, Y: i / 128, X: i % 128}, trace.Foraging)
		}
		// Hard bound: cap plus the cooldown window's worth of inserts.
		if n := len(h.strs[0].w); n > 64+64/8 {
			t.Errorf("half-life %v: stripe holds %d entries, cap 64 not enforced", halfLife, n)
		}
	}
}

// TestHotspotConcurrent is the -race suite: many goroutines observe and
// predict against one shared table, the deployment's actual concurrency
// shape (every session engine feeds and reads the same instance).
func TestHotspotConcurrent(t *testing.T) {
	b := gridBounds{maxLevel: 4}
	h := NewHotspot(HotspotConfig{HalfLife: 64, Stripes: 4})
	cur := tile.Coord{Level: 2, Y: 1, X: 1}
	cands := Candidates(b, cur, 1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.ObserveConsumption(tile.Coord{Level: 2, Y: (g + i) % 4, X: i % 4}, trace.Foraging)
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				out := h.Predict(trace.Request{Coord: cur}, cands, nil)
				if len(out) != len(cands) {
					t.Errorf("predict returned %d of %d candidates", len(out), len(cands))
					return
				}
				for _, r := range out {
					if r.Score < 0 || r.Score > 1 {
						t.Errorf("share %v outside [0,1]", r.Score)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
