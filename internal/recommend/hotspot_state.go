package recommend

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"forecache/internal/tile"
)

// This file is the Hotspot model's snapshot surface (internal/persist):
// the per-level observation counters and the decayed per-tile consumption
// weights serialize so a restarted deployment ranks candidates by what the
// population was consuming before the restart, not just the training-trace
// seed. Export bounds the table with the same noise floor and per-stripe
// cap the sweep enforces, so a snapshot can never be larger than the live
// table a sweep would keep.

// HotspotStateVersion is the snapshot section format version for Hotspot
// state.
const HotspotStateVersion = 1

// hotspotState is the serialized counter table, entries sorted by
// coordinate so export→import→export round-trips byte for byte.
type hotspotState struct {
	// LevelN is the per-zoom-level observation total (the decay clock),
	// always hotspotMaxLevels long.
	LevelN []int64 `json:"level_n"`
	// Entries are the surviving per-tile weights.
	Entries []hotspotEntry `json:"entries"`
}

// hotspotEntry is one tile's raw weight: score at the clock value LastN
// (decay stays lazy, exactly as in the live table).
type hotspotEntry struct {
	Level int     `json:"level"`
	Y     int     `json:"y"`
	X     int     `json:"x"`
	Score float64 `json:"score"`
	LastN int64   `json:"last_n"`
}

// ExportState serializes the counter table. Per stripe it applies the
// sweep's own bounds — entries below the noise floor are skipped, and a
// stripe over the sweep target keeps only its highest-weight entries — so
// a long-lived deployment's snapshot stays as small as its swept table.
// Stripes are locked one at a time; concurrent observations between
// stripes land in the next snapshot.
func (h *Hotspot) ExportState() ([]byte, error) {
	st := hotspotState{LevelN: make([]int64, hotspotMaxLevels)}
	for l := range h.levelN {
		st.LevelN[l] = h.levelN[l].Load()
	}
	target := h.cfg.MaxPerStripe - h.cfg.MaxPerStripe/8
	for i := range h.strs {
		s := &h.strs[i]
		s.mu.Lock()
		live := make([]hotspotEntry, 0, len(s.w))
		for c, e := range s.w {
			eff := e.score * math.Pow(h.gamma, float64(st.LevelN[level(c)]-e.lastN))
			if eff < sweepMinWeight {
				continue
			}
			live = append(live, hotspotEntry{Level: c.Level, Y: c.Y, X: c.X, Score: e.score, LastN: e.lastN})
		}
		s.mu.Unlock()
		if len(live) > target {
			sort.Slice(live, func(i, j int) bool {
				ei, ej := entryEff(live[i], st.LevelN, h.gamma), entryEff(live[j], st.LevelN, h.gamma)
				if ei != ej {
					return ei > ej
				}
				return coordOf(live[i]).Less(coordOf(live[j]))
			})
			live = live[:target]
		}
		st.Entries = append(st.Entries, live...)
	}
	sort.Slice(st.Entries, func(i, j int) bool {
		return coordOf(st.Entries[i]).Less(coordOf(st.Entries[j]))
	})
	return json.Marshal(st)
}

func coordOf(e hotspotEntry) tile.Coord {
	return tile.Coord{Level: e.Level, Y: e.Y, X: e.X}
}

func entryEff(e hotspotEntry, levelN []int64, gamma float64) float64 {
	return e.Score * math.Pow(gamma, float64(levelN[level(coordOf(e))]-e.LastN))
}

// ImportState validates a previously exported payload and replaces the
// counter table wholesale. Entries rehash into the current stripe layout,
// so a deployment that changed HotspotConfig.Stripes still restores. On
// any validation failure the table is left untouched.
func (h *Hotspot) ImportState(raw []byte) error {
	var st hotspotState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("recommend: hotspot state: %w", err)
	}
	if len(st.LevelN) != hotspotMaxLevels {
		return fmt.Errorf("recommend: hotspot state: %d level counters, want %d", len(st.LevelN), hotspotMaxLevels)
	}
	for l, n := range st.LevelN {
		if n < 0 {
			return fmt.Errorf("recommend: hotspot state: level %d counter %d negative", l, n)
		}
	}
	seen := make(map[tile.Coord]bool, len(st.Entries))
	for _, e := range st.Entries {
		c := coordOf(e)
		if seen[c] {
			return fmt.Errorf("recommend: hotspot state: duplicate entry %v", c)
		}
		seen[c] = true
		if math.IsNaN(e.Score) || math.IsInf(e.Score, 0) || e.Score <= 0 {
			return fmt.Errorf("recommend: hotspot state: entry %v score %v", c, e.Score)
		}
		if n := st.LevelN[level(c)]; e.LastN < 0 || e.LastN > n {
			return fmt.Errorf("recommend: hotspot state: entry %v clock %d outside [0, %d]", c, e.LastN, n)
		}
	}
	// Install: reset every stripe, then rehash the entries in. Stripe locks
	// are taken one at a time — restore runs before the deployment serves,
	// so there is no concurrent observer to tear against.
	for i := range h.strs {
		s := &h.strs[i]
		s.mu.Lock()
		s.w = make(map[tile.Coord]hotEntry)
		s.sinceSweep = 0
		s.mu.Unlock()
	}
	for l := range h.levelN {
		h.levelN[l].Store(st.LevelN[l])
	}
	for _, e := range st.Entries {
		c := coordOf(e)
		s := h.stripe(c)
		s.mu.Lock()
		s.w[c] = hotEntry{score: e.Score, lastN: e.LastN}
		s.mu.Unlock()
	}
	return nil
}
