package recommend

import (
	"forecache/internal/markov"
	"forecache/internal/trace"
)

// AB is the Actions-Based recommender (paper §4.3.2): an n-th-order Markov
// chain over the user's past moves, trained on study traces with
// Kneser–Ney smoothing. It scores each candidate by the smoothed
// probability of the first move of its chain given the session history.
//
// Once trained, an AB is immutable: Observe and Reset are no-ops (session
// context comes from the history window passed to Predict) and Predict only
// reads the chain. One instance is therefore safe for concurrent use by any
// number of session engines — train once, share everywhere.
type AB struct {
	chain *markov.Chain
}

// NewAB builds an Actions-Based recommender of the given order, trained on
// the move sequences of the supplied traces (Algorithm 2).
func NewAB(order int, traces []*trace.Trace) (*AB, error) {
	chain, err := markov.New(order)
	if err != nil {
		return nil, err
	}
	seqs := make([][]string, 0, len(traces))
	for _, t := range traces {
		seqs = append(seqs, t.Moves())
	}
	chain.Train(seqs)
	return &AB{chain: chain}, nil
}

// NewABFromChain wraps an already-trained chain: the shared-model route for
// deployments that train one chain and hand it to every session.
func NewABFromChain(chain *markov.Chain) *AB { return &AB{chain: chain} }

// Chain exposes the trained Markov chain (read-only by convention): callers
// share it across recommenders instead of retraining per session.
func (m *AB) Chain() *markov.Chain { return m.chain }

// Name identifies the model, including its order (e.g. "markov3").
func (m *AB) Name() string { return "markov" + itoa(m.chain.Order()) }

// Order returns the chain's context length.
func (m *AB) Order() int { return m.chain.Order() }

// Observe is a no-op: the AB model reads its context from the history
// window passed to Predict.
func (m *AB) Observe(trace.Request) {}

// Reset is a no-op; the model is stateless between requests.
func (m *AB) Reset() {}

// Predict ranks candidates by move probability under the Markov chain.
// Multi-move candidates (d > 1) multiply the chain probabilities along
// their move chain.
func (m *AB) Predict(req trace.Request, cands []Candidate, h *trace.History) []Ranked {
	ctx := h.MoveSymbols()
	out := make([]Ranked, 0, len(cands))
	for _, c := range cands {
		p := 1.0
		chainCtx := ctx
		for _, mv := range c.Moves {
			sym := mv.String()
			p *= m.chain.Prob(chainCtx, sym)
			chainCtx = append(append([]string(nil), chainCtx...), sym)
		}
		out = append(out, Ranked{Coord: c.Coord, Score: p})
	}
	return sortRanked(out)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
