package recommend

import (
	"bytes"
	"encoding/json"
	"testing"

	"forecache/internal/tile"
	"forecache/internal/trace"
)

func trainHotspot(h *Hotspot) {
	coords := []tile.Coord{
		{Level: 2, Y: 1, X: 1}, {Level: 2, Y: 1, X: 2}, {Level: 2, Y: 3, X: 0},
		{Level: 4, Y: 7, X: 7}, {Level: 4, Y: 7, X: 8},
	}
	for i := 0; i < 200; i++ {
		h.ObserveConsumption(coords[i%len(coords)], trace.Foraging)
	}
}

func TestHotspotStateRoundTripBytes(t *testing.T) {
	h := NewHotspot(HotspotConfig{HalfLife: 64})
	trainHotspot(h)
	first, err := h.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	g := NewHotspot(HotspotConfig{HalfLife: 64})
	if err := g.ImportState(first); err != nil {
		t.Fatal(err)
	}
	second, err := g.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("export -> import -> export not byte-identical:\n%s\nvs\n%s", first, second)
	}
	for _, c := range []tile.Coord{{Level: 2, Y: 1, X: 1}, {Level: 4, Y: 7, X: 7}, {Level: 9, Y: 0, X: 0}} {
		if got, want := g.Share(c), h.Share(c); got != want {
			t.Errorf("Share(%v) = %v after restore, want %v", c, got, want)
		}
	}
}

// TestHotspotStateSurvivesRestripe: the snapshot carries raw weights, not
// stripe layout, so a deployment that changed Stripes still restores.
func TestHotspotStateSurvivesRestripe(t *testing.T) {
	h := NewHotspot(HotspotConfig{HalfLife: 64, Stripes: 16})
	trainHotspot(h)
	raw, err := h.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	g := NewHotspot(HotspotConfig{HalfLife: 64, Stripes: 3})
	if err := g.ImportState(raw); err != nil {
		t.Fatal(err)
	}
	for _, c := range []tile.Coord{{Level: 2, Y: 1, X: 1}, {Level: 2, Y: 3, X: 0}, {Level: 4, Y: 7, X: 8}} {
		if got, want := g.Share(c), h.Share(c); got != want {
			t.Errorf("Share(%v) = %v after restripe restore, want %v", c, got, want)
		}
	}
}

// TestHotspotExportDropsNoise: an entry whose decayed weight is below the
// sweep's noise floor does not make it into a snapshot.
func TestHotspotExportDropsNoise(t *testing.T) {
	h := NewHotspot(HotspotConfig{HalfLife: 1, Stripes: 1})
	stale := tile.Coord{Level: 3, Y: 0, X: 0}
	hot := tile.Coord{Level: 3, Y: 5, X: 5}
	h.ObserveConsumption(stale, trace.Foraging)
	// 12 further observations at the level decay stale's weight to
	// 0.5^12 ~= 2.4e-4, below the 1e-3 noise floor.
	for i := 0; i < 12; i++ {
		h.ObserveConsumption(hot, trace.Foraging)
	}
	raw, err := h.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	var st hotspotState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Entries) != 1 {
		t.Fatalf("exported %d entries, want only the hot tile", len(st.Entries))
	}
	if coordOf(st.Entries[0]) != hot {
		t.Errorf("survivor = %v, want %v", coordOf(st.Entries[0]), hot)
	}
}

// TestHotspotExportBoundsStripe: a stripe above the sweep target exports
// only its highest-weight entries, so snapshots of long-lived deployments
// stay bounded.
func TestHotspotExportBoundsStripe(t *testing.T) {
	h := NewHotspot(HotspotConfig{HalfLife: 1 << 20, Stripes: 1, MaxPerStripe: 16})
	// 40 tiles, observed 1..40 times: weights are distinct, the top ones
	// are the most-observed.
	for i := 0; i < 40; i++ {
		c := tile.Coord{Level: 5, Y: i, X: i}
		for j := 0; j <= i; j++ {
			h.ObserveConsumption(c, trace.Foraging)
		}
	}
	raw, err := h.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	var st hotspotState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	target := 16 - 16/8
	if len(st.Entries) != target {
		t.Fatalf("exported %d entries, want sweep target %d", len(st.Entries), target)
	}
	for _, e := range st.Entries {
		if e.Y < 40-target {
			t.Errorf("low-weight tile %v survived the export bound", coordOf(e))
		}
	}
}

func TestHotspotImportRejectsBadState(t *testing.T) {
	valid := func() hotspotState {
		st := hotspotState{LevelN: make([]int64, hotspotMaxLevels)}
		st.LevelN[2] = 10
		st.Entries = []hotspotEntry{{Level: 2, Y: 1, X: 1, Score: 2.5, LastN: 8}}
		return st
	}
	cases := []struct {
		name   string
		mutate func(*hotspotState)
	}{
		{"short level table", func(s *hotspotState) { s.LevelN = s.LevelN[:10] }},
		{"negative level counter", func(s *hotspotState) { s.LevelN[0] = -1 }},
		{"duplicate entry", func(s *hotspotState) { s.Entries = append(s.Entries, s.Entries[0]) }},
		{"zero score", func(s *hotspotState) { s.Entries[0].Score = 0 }},
		{"clock past level counter", func(s *hotspotState) { s.Entries[0].LastN = 99 }},
		{"negative clock", func(s *hotspotState) { s.Entries[0].LastN = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := valid()
			tc.mutate(&st)
			raw, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			h := NewHotspot(HotspotConfig{HalfLife: 64})
			trainHotspot(h)
			before, _ := h.ExportState()
			if err := h.ImportState(raw); err == nil {
				t.Fatal("bad state imported without error")
			}
			after, _ := h.ExportState()
			if !bytes.Equal(before, after) {
				t.Error("rejected import still mutated the table")
			}
		})
	}

	h := NewHotspot(HotspotConfig{})
	if err := h.ImportState([]byte("{not json")); err == nil {
		t.Error("malformed JSON imported without error")
	}
}
