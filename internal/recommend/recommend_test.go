package recommend

import (
	"fmt"
	"testing"

	"forecache/internal/sig"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

// gridBounds is a fake pyramid geometry: levels 0..maxLevel, 2^l tiles per
// side.
type gridBounds struct{ maxLevel int }

func (g gridBounds) Contains(c tile.Coord) bool {
	if c.Level < 0 || c.Level > g.maxLevel {
		return false
	}
	side := 1 << c.Level
	return c.Y >= 0 && c.Y < side && c.X >= 0 && c.X < side
}

func TestCandidatesInterior(t *testing.T) {
	b := gridBounds{maxLevel: 4}
	cur := tile.Coord{Level: 2, Y: 1, X: 1} // interior: all 9 moves legal
	cands := Candidates(b, cur, 1)
	if len(cands) != 9 {
		t.Fatalf("interior candidates = %d, want 9", len(cands))
	}
	seen := map[tile.Coord]bool{}
	for _, c := range cands {
		if len(c.Moves) != 1 {
			t.Errorf("candidate %v has chain %v, want length 1", c.Coord, c.Moves)
		}
		seen[c.Coord] = true
	}
	if len(seen) != 9 {
		t.Errorf("duplicate candidates: %v", seen)
	}
}

func TestCandidatesRoot(t *testing.T) {
	b := gridBounds{maxLevel: 4}
	cands := Candidates(b, tile.Coord{Level: 0, Y: 0, X: 0}, 1)
	// Root: no pans (side 1), no zoom-out, only the 4 zoom-ins.
	if len(cands) != 4 {
		t.Fatalf("root candidates = %d, want 4", len(cands))
	}
	for _, c := range cands {
		if !c.FirstMove().IsZoomIn() {
			t.Errorf("root candidate via %v", c.FirstMove())
		}
	}
}

func TestCandidatesCornerAndDeepest(t *testing.T) {
	b := gridBounds{maxLevel: 2}
	// Deepest-level corner: pans down/right, zoom-out; no zoom-ins.
	cands := Candidates(b, tile.Coord{Level: 2, Y: 0, X: 0}, 1)
	if len(cands) != 3 {
		t.Fatalf("corner candidates = %d, want 3 (two pans + zoom-out)", len(cands))
	}
}

func TestCandidatesDepth2(t *testing.T) {
	b := gridBounds{maxLevel: 4}
	cur := tile.Coord{Level: 2, Y: 1, X: 1}
	d1 := Candidates(b, cur, 1)
	d2 := Candidates(b, cur, 2)
	if len(d2) <= len(d1) {
		t.Fatalf("d=2 yields %d candidates, d=1 yields %d", len(d2), len(d1))
	}
	// d=2 must include a two-pan tile, with a chain of length 2, and must
	// not include the current tile.
	want := tile.Coord{Level: 2, Y: 1, X: 3}
	found := false
	for _, c := range d2 {
		if c.Coord == cur {
			t.Error("candidates must exclude the current tile")
		}
		if c.Coord == want {
			found = true
			if len(c.Moves) != 2 {
				t.Errorf("chain to %v = %v, want length 2", want, c.Moves)
			}
		}
	}
	if !found {
		t.Errorf("two-right tile %v missing from d=2 candidates", want)
	}
}

func zoomChainTrace(n int) *trace.Trace {
	tr := &trace.Trace{User: 1, Task: 1}
	c := tile.Coord{Level: 0, Y: 0, X: 0}
	tr.Requests = append(tr.Requests, trace.Request{Coord: c, Move: trace.None})
	for i := 0; i < n; i++ {
		c = trace.Apply(c, trace.ZoomInNW)
		tr.Requests = append(tr.Requests, trace.Request{Coord: c, Move: trace.ZoomInNW})
	}
	return tr
}

func TestABPredictsRepeatedZoomChain(t *testing.T) {
	var traces []*trace.Trace
	for i := 0; i < 6; i++ {
		traces = append(traces, zoomChainTrace(5))
	}
	ab, err := NewAB(3, traces)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Name() != "markov3" || ab.Order() != 3 {
		t.Errorf("Name/Order = %s/%d", ab.Name(), ab.Order())
	}
	h := trace.NewHistory(3)
	cur := tile.Coord{Level: 0, Y: 0, X: 0}
	for i := 0; i < 3; i++ {
		cur = trace.Apply(cur, trace.ZoomInNW)
		h.Push(trace.Request{Coord: cur, Move: trace.ZoomInNW})
	}
	req := trace.Request{Coord: cur, Move: trace.ZoomInNW}
	cands := Candidates(gridBounds{maxLevel: 6}, cur, 1)
	ranked := ab.Predict(req, cands, h)
	if ranked[0].Coord != cur.Child(tile.NW) {
		t.Errorf("top AB prediction = %v, want NW child %v", ranked[0].Coord, cur.Child(tile.NW))
	}
}

func TestMomentumRepeatsPreviousMove(t *testing.T) {
	m := NewMomentum()
	if m.Name() != "momentum" {
		t.Errorf("Name = %s", m.Name())
	}
	cur := tile.Coord{Level: 3, Y: 4, X: 4}
	req := trace.Request{Coord: cur, Move: trace.PanRight}
	cands := Candidates(gridBounds{maxLevel: 5}, cur, 1)
	ranked := m.Predict(req, cands, trace.NewHistory(3))
	if want := cur.Pan(0, 1); ranked[0].Coord != want {
		t.Errorf("top momentum prediction = %v, want %v", ranked[0].Coord, want)
	}
	if ranked[0].Score != 0.9 {
		t.Errorf("momentum top score = %v, want 0.9", ranked[0].Score)
	}
	if ranked[1].Score != 0.0125 {
		t.Errorf("momentum runner-up score = %v, want 0.0125", ranked[1].Score)
	}
}

func TestMomentumFirstRequest(t *testing.T) {
	m := NewMomentum()
	cur := tile.Coord{Level: 2, Y: 1, X: 1}
	req := trace.Request{Coord: cur, Move: trace.None}
	ranked := m.Predict(req, Candidates(gridBounds{maxLevel: 4}, cur, 1), trace.NewHistory(3))
	for _, r := range ranked {
		if r.Score != 0.0125 {
			t.Fatalf("first-request score = %v, want uniform 0.0125", r.Score)
		}
	}
}

func TestHotspotTraining(t *testing.T) {
	hot := tile.Coord{Level: 2, Y: 2, X: 2}
	var traces []*trace.Trace
	for i := 0; i < 5; i++ {
		traces = append(traces, &trace.Trace{Requests: []trace.Request{
			{Coord: hot, Move: trace.PanRight},
			{Coord: tile.Coord{Level: 2, Y: 0, X: i % 3}, Move: trace.PanLeft},
		}})
	}
	m := NewTraceHotspot(traces, 1, 3)
	if hs := m.Hotspots(); len(hs) != 1 || hs[0] != hot {
		t.Fatalf("Hotspots = %v, want [%v]", hs, hot)
	}
}

func TestHotspotAttractsNearby(t *testing.T) {
	hot := tile.Coord{Level: 3, Y: 4, X: 6}
	traces := []*trace.Trace{{Requests: []trace.Request{
		{Coord: hot}, {Coord: hot}, {Coord: hot},
	}}}
	m := NewTraceHotspot(traces, 1, 3)
	// User two tiles left of the hotspot, just moved up (momentum says up).
	cur := tile.Coord{Level: 3, Y: 4, X: 4}
	req := trace.Request{Coord: cur, Move: trace.PanUp}
	ranked := m.Predict(req, Candidates(gridBounds{maxLevel: 5}, cur, 1), trace.NewHistory(3))
	if want := cur.Pan(0, 1); ranked[0].Coord != want {
		t.Errorf("hotspot should attract: top = %v, want %v (toward hotspot)", ranked[0].Coord, want)
	}
}

func TestHotspotFallsBackToMomentumWhenFar(t *testing.T) {
	hot := tile.Coord{Level: 4, Y: 15, X: 15}
	traces := []*trace.Trace{{Requests: []trace.Request{{Coord: hot}, {Coord: hot}}}}
	m := NewTraceHotspot(traces, 1, 2)
	cur := tile.Coord{Level: 4, Y: 1, X: 1}
	req := trace.Request{Coord: cur, Move: trace.PanDown}
	rankedHot := m.Predict(req, Candidates(gridBounds{maxLevel: 5}, cur, 1), trace.NewHistory(3))
	rankedMom := NewMomentum().Predict(req, Candidates(gridBounds{maxLevel: 5}, cur, 1), trace.NewHistory(3))
	if rankedHot[0].Coord != rankedMom[0].Coord {
		t.Errorf("far from hotspots, Hotspot (%v) should match Momentum (%v)",
			rankedHot[0].Coord, rankedMom[0].Coord)
	}
}

func TestROITrackerAlgorithm1(t *testing.T) {
	var tr ROITracker
	a := tile.Coord{Level: 3, Y: 2, X: 2}
	b := a.Pan(0, 1)
	c := b.Pan(1, 0)
	tr.Update(trace.Request{Coord: a, Move: trace.ZoomInNW}) // zoom-in: start temp
	tr.Update(trace.Request{Coord: b, Move: trace.PanRight}) // pan: extend temp
	tr.Update(trace.Request{Coord: c, Move: trace.PanDown})  // pan: extend temp
	if roi := tr.ROI(); len(roi) != 0 {
		t.Fatalf("ROI before zoom-out = %v, want empty", roi)
	}
	tr.Update(trace.Request{Coord: c.Parent(), Move: trace.ZoomOut}) // commit
	roi := tr.ROI()
	if len(roi) != 3 || roi[0] != a || roi[1] != b || roi[2] != c {
		t.Fatalf("ROI = %v, want [%v %v %v]", roi, a, b, c)
	}
	// A zoom-out without a preceding zoom-in must not clobber the ROI.
	tr.Update(trace.Request{Coord: c.Parent().Parent(), Move: trace.ZoomOut})
	if len(tr.ROI()) != 3 {
		t.Error("stray zoom-out overwrote the ROI")
	}
	// A new zoom-in starts a fresh temp ROI.
	d := tile.Coord{Level: 2, Y: 0, X: 0}
	tr.Update(trace.Request{Coord: d, Move: trace.ZoomInSE})
	tr.Update(trace.Request{Coord: d.Parent(), Move: trace.ZoomOut})
	if roi := tr.ROI(); len(roi) != 1 || roi[0] != d {
		t.Fatalf("second ROI = %v, want [%v]", roi, d)
	}
	tr.Reset()
	if len(tr.ROI()) != 0 {
		t.Error("Reset should clear the ROI")
	}
}

// fakeSource serves tiles with canned signatures.
type fakeSource struct {
	sigs map[tile.Coord]map[string][]float64
}

func (f *fakeSource) Tile(c tile.Coord) (*tile.Tile, error) {
	s, ok := f.sigs[c]
	if !ok {
		return nil, fmt.Errorf("no tile %v", c)
	}
	return &tile.Tile{Coord: c, Size: 1, Attrs: []string{"v"},
		Data: [][]float64{{0}}, Signatures: s}, nil
}

func TestSBRanksSimilarTilesFirst(t *testing.T) {
	snowy := map[string][]float64{sig.NameHistogram: {0, 0, 1}}
	bare := map[string][]float64{sig.NameHistogram: {1, 0, 0}}
	cur := tile.Coord{Level: 3, Y: 4, X: 4}
	right := cur.Pan(0, 1)
	left := cur.Pan(0, -1)
	src := &fakeSource{sigs: map[tile.Coord]map[string][]float64{
		cur:   snowy,
		right: snowy, // visually similar to the ROI
		left:  bare,  // different
	}}
	sb := NewSB(src, WithSignatures(sig.NameHistogram))
	if sb.Name() != "sb:histogram" {
		t.Errorf("Name = %s", sb.Name())
	}
	// Build an ROI = {cur} via zoom-in then zoom-out.
	sb.Observe(trace.Request{Coord: cur, Move: trace.ZoomInNW})
	sb.Observe(trace.Request{Coord: cur.Parent(), Move: trace.ZoomOut})
	req := trace.Request{Coord: cur, Move: trace.PanUp}
	cands := []Candidate{
		{Coord: right, Moves: []trace.Move{trace.PanRight}},
		{Coord: left, Moves: []trace.Move{trace.PanLeft}},
	}
	ranked := sb.Predict(req, cands, trace.NewHistory(3))
	if ranked[0].Coord != right {
		t.Errorf("SB top = %v, want the visually similar %v", ranked[0].Coord, right)
	}
}

func TestSBManhattanPenalty(t *testing.T) {
	same := map[string][]float64{sig.NameHistogram: {0.4, 0.6}}
	slightlyOff := map[string][]float64{sig.NameHistogram: {0.5, 0.5}}
	cur := tile.Coord{Level: 3, Y: 4, X: 4}
	near := cur.Pan(0, 1)          // manhattan 1 from ROI
	far := cur.Pan(0, 2).Pan(2, 0) // manhattan 4 from ROI
	src := &fakeSource{sigs: map[tile.Coord]map[string][]float64{
		cur:  same,
		near: slightlyOff, // small signature distance, near
		far:  same,        // zero signature distance, far
	}}
	sb := NewSB(src, WithSignatures(sig.NameHistogram))
	sb.Observe(trace.Request{Coord: cur, Move: trace.ZoomInNW})
	sb.Observe(trace.Request{Coord: cur.Parent(), Move: trace.ZoomOut})
	req := trace.Request{Coord: cur, Move: trace.PanUp}
	cands := []Candidate{
		{Coord: near, Moves: []trace.Move{trace.PanRight}},
		{Coord: far, Moves: []trace.Move{trace.PanRight, trace.PanRight}},
	}
	ranked := sb.Predict(req, cands, trace.NewHistory(3))
	// Zero signature distance stays zero regardless of the multiplicative
	// penalty, so the identical-but-far tile still wins; the penalty's
	// effect is visible in the score magnitudes instead.
	if ranked[0].Coord != far {
		t.Logf("ranking = %+v", ranked)
	}
	if ranked[0].Score < ranked[1].Score {
		t.Errorf("ranking not sorted: %+v", ranked)
	}
}

func TestSBFallsBackToCurrentTile(t *testing.T) {
	snowy := map[string][]float64{sig.NameHistogram: {0, 1}}
	bare := map[string][]float64{sig.NameHistogram: {1, 0}}
	cur := tile.Coord{Level: 2, Y: 1, X: 1}
	src := &fakeSource{sigs: map[tile.Coord]map[string][]float64{
		cur:            snowy,
		cur.Pan(0, 1):  snowy,
		cur.Pan(0, -1): bare,
	}}
	sb := NewSB(src, WithSignatures(sig.NameHistogram))
	// No Observe calls: no ROI yet.
	req := trace.Request{Coord: cur, Move: trace.None}
	cands := []Candidate{
		{Coord: cur.Pan(0, 1), Moves: []trace.Move{trace.PanRight}},
		{Coord: cur.Pan(0, -1), Moves: []trace.Move{trace.PanLeft}},
	}
	ranked := sb.Predict(req, cands, trace.NewHistory(3))
	if ranked[0].Coord != cur.Pan(0, 1) {
		t.Errorf("fallback ROI: top = %v, want the similar right tile", ranked[0].Coord)
	}
}

func TestSBMissingTilesDegradeGracefully(t *testing.T) {
	src := &fakeSource{sigs: map[tile.Coord]map[string][]float64{}}
	sb := NewSB(src)
	cur := tile.Coord{Level: 1, Y: 0, X: 0}
	cands := []Candidate{{Coord: cur.Pan(0, 1), Moves: []trace.Move{trace.PanRight}}}
	ranked := sb.Predict(trace.Request{Coord: cur}, cands, trace.NewHistory(3))
	if len(ranked) != 1 {
		t.Fatalf("ranked = %v", ranked)
	}
}

func TestTopKAndContains(t *testing.T) {
	r := []Ranked{
		{Coord: tile.Coord{Level: 1}, Score: 3},
		{Coord: tile.Coord{Level: 2}, Score: 2},
		{Coord: tile.Coord{Level: 3}, Score: 1},
	}
	if got := TopK(append([]Ranked(nil), r...), 2); len(got) != 2 {
		t.Errorf("TopK = %v", got)
	}
	if got := TopK(append([]Ranked(nil), r...), -1); len(got) != 0 {
		t.Errorf("TopK(-1) = %v", got)
	}
	if !Contains(r, 2, tile.Coord{Level: 2}) {
		t.Error("Contains should find coord within k")
	}
	if Contains(r, 2, tile.Coord{Level: 3}) {
		t.Error("Contains must respect k")
	}
}

func BenchmarkCandidatesD1(b *testing.B) {
	bounds := gridBounds{maxLevel: 8}
	cur := tile.Coord{Level: 5, Y: 10, X: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Candidates(bounds, cur, 1)
	}
}

func BenchmarkABPredict(b *testing.B) {
	var traces []*trace.Trace
	for i := 0; i < 10; i++ {
		traces = append(traces, zoomChainTrace(6))
	}
	ab, err := NewAB(3, traces)
	if err != nil {
		b.Fatal(err)
	}
	cur := tile.Coord{Level: 3, Y: 3, X: 3}
	h := trace.NewHistory(3)
	h.Push(trace.Request{Coord: cur, Move: trace.ZoomInNW})
	cands := Candidates(gridBounds{maxLevel: 6}, cur, 1)
	req := trace.Request{Coord: cur, Move: trace.ZoomInNW}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ab.Predict(req, cands, h)
	}
}
