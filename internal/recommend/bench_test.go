package recommend

import (
	"testing"

	"forecache/internal/tile"
	"forecache/internal/trace"
)

// benchHotspot builds a warmed table: 512 tiles at the candidate level
// plus traffic on two neighbor levels.
func benchHotspot() *Hotspot {
	h := NewHotspot(HotspotConfig{})
	for i := 0; i < 2048; i++ {
		h.ObserveConsumption(tile.Coord{Level: 3, Y: i % 8, X: (i / 8) % 8}, trace.Foraging)
		if i%4 == 0 {
			h.ObserveConsumption(tile.Coord{Level: 2, Y: i % 4, X: i % 8}, trace.Navigation)
		}
	}
	return h
}

// BenchmarkHotspotPredict measures the per-request cost of ranking the
// d=1 candidate set against the shared table: the price every session
// pays per request once the hotspot model holds prefetch slots.
func BenchmarkHotspotPredict(b *testing.B) {
	h := benchHotspot()
	cur := tile.Coord{Level: 3, Y: 4, X: 4}
	cands := Candidates(gridBounds{maxLevel: 5}, cur, 1)
	req := trace.Request{Coord: cur}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Predict(req, cands, nil)
	}
}

// BenchmarkHotspotObserve measures one consumption update: the per-hit
// cost the engines' outcome drain adds with the hotspot registered.
func BenchmarkHotspotObserve(b *testing.B) {
	h := benchHotspot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ObserveConsumption(tile.Coord{Level: 3, Y: i % 16, X: i % 32}, trace.Foraging)
	}
}

// BenchmarkHotspotObserveParallel is the contended shape: every session
// engine of a deployment feeds the same lock-striped table.
func BenchmarkHotspotObserveParallel(b *testing.B) {
	h := benchHotspot()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.ObserveConsumption(tile.Coord{Level: 3, Y: i % 16, X: i % 32}, trace.Foraging)
			i++
		}
	})
}

// BenchmarkRegistryBuild measures the deployment's one-time construction
// pass over the 3-spec registry (Markov training on 16 short traces,
// hotspot seeding, SB stamp) — the cost NewServer pays once and sessions
// never do.
func BenchmarkRegistryBuild(b *testing.B) {
	traces := make([]*trace.Trace, 0, 16)
	base := registryTraces()
	for i := 0; len(traces) < 16; i++ {
		traces = append(traces, base[i%len(base)])
	}
	specs := DefaultSpecs(3, []string{"sift"}, &HotspotConfig{})
	reg, err := NewRegistry(specs...)
	if err != nil {
		b.Fatal(err)
	}
	env := Env{Tiles: &fakeSource{}, Traces: traces}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Build(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistrySession measures stamping one session's model set out
// of a built Set: the per-session construction cost, which must stay O(1)
// in deployment size.
func BenchmarkRegistrySession(b *testing.B) {
	reg, err := NewRegistry(DefaultSpecs(3, []string{"sift"}, &HotspotConfig{})...)
	if err != nil {
		b.Fatal(err)
	}
	set, err := reg.Build(Env{Tiles: &fakeSource{}, Traces: registryTraces()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if models := set.Session(); len(models) != 3 {
			b.Fatal("bad session set")
		}
	}
}
