package recommend

import (
	"math"

	"forecache/internal/sig"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

// ROITracker maintains the user's most recent region of interest with the
// heuristic of Algorithm 1: an ROI is the set of tiles visited between a
// zoom-in and the following zoom-out (one zoom-in, zero or more pans, one
// zoom-out).
type ROITracker struct {
	inFlag bool
	temp   []tile.Coord
	roi    []tile.Coord
}

// Update processes one user request, mirroring Algorithm 1 line by line.
func (t *ROITracker) Update(req trace.Request) {
	switch {
	case req.Move.IsZoomIn():
		t.inFlag = true
		t.temp = []tile.Coord{req.Coord}
	case req.Move.IsZoomOut():
		if t.inFlag {
			t.roi = t.temp
			t.inFlag = false
			t.temp = nil
		}
	case t.inFlag:
		t.temp = append(t.temp, req.Coord)
	}
}

// ROI returns the user's last completed region of interest (may be empty).
func (t *ROITracker) ROI() []tile.Coord { return append([]tile.Coord(nil), t.roi...) }

// Reset clears all tracker state for a new session.
func (t *ROITracker) Reset() { *t = ROITracker{} }

// TileSource resolves coordinates to materialized tiles carrying
// signatures. *tile.Pyramid implements it.
type TileSource interface {
	Tile(c tile.Coord) (*tile.Tile, error)
}

// SB is the Signature-Based recommender (paper §4.3.3): it ranks candidate
// tiles by visual similarity to the user's most recent region of interest,
// using the tile signatures computed at pyramid-build time and the distance
// combination of Algorithm 3.
type SB struct {
	src     TileSource
	sigs    []string
	weights []float64
	tracker ROITracker

	// physicalDivision applies Algorithm 3's line 13 division by the
	// physical distance exactly as printed in the technical report. The
	// printed form rewards distant candidates, contradicting the stated
	// intent of penalizing physical distance (which line 8's 2^(manhattan-1)
	// multiplier already does), so it defaults to off; the ablation bench
	// measures both.
	physicalDivision bool
}

// SBOption configures the SB recommender.
type SBOption func(*SB)

// WithSignatures restricts the recommender to the named signatures (the
// per-signature accuracy experiment of Figure 10b uses one at a time).
func WithSignatures(names ...string) SBOption {
	return func(s *SB) { s.sigs = names }
}

// WithWeights sets the per-signature weights of the ℓ2 combination, in the
// same order as the signature names. Default is equal weights (paper:
// "All signatures are assigned equal weight by default").
func WithWeights(w ...float64) SBOption {
	return func(s *SB) { s.weights = w }
}

// WithPhysicalDivision enables the literal line-13 division (see the field
// comment); used by the ablation bench.
func WithPhysicalDivision() SBOption {
	return func(s *SB) { s.physicalDivision = true }
}

// NewSB builds a Signature-Based recommender over the tile source.
func NewSB(src TileSource, opts ...SBOption) *SB {
	s := &SB{src: src, sigs: sig.AllNames()}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Name identifies the model ("sb" for the full signature set, or
// "sb:<signature>" when restricted to one).
func (s *SB) Name() string {
	if len(s.sigs) == 1 {
		return "sb:" + s.sigs[0]
	}
	return "sb"
}

// Observe updates the ROI tracker with the user's actual request.
func (s *SB) Observe(req trace.Request) { s.tracker.Update(req) }

// Reset clears the per-session ROI state.
func (s *SB) Reset() { s.tracker.Reset() }

// Predict implements Algorithm 3. Candidates are ranked by ascending total
// visual distance to the ROI tiles; Ranked.Score is the negated distance so
// that, like every other model, higher scores mean more likely.
func (s *SB) Predict(req trace.Request, cands []Candidate, h *trace.History) []Ranked {
	roi := s.tracker.roi
	if len(roi) == 0 {
		// No completed ROI yet: fall back to the current tile as the
		// reference for "what the user has requested in the past".
		roi = []tile.Coord{req.Coord}
	}
	roiTiles := make([]*tile.Tile, 0, len(roi))
	for _, c := range roi {
		if t, err := s.src.Tile(c); err == nil {
			roiTiles = append(roiTiles, t)
		}
	}
	out := make([]Ranked, 0, len(cands))
	if len(roiTiles) == 0 {
		for _, c := range cands {
			out = append(out, Ranked{Coord: c.Coord})
		}
		return sortRanked(out)
	}

	type pair struct {
		cand  int
		roi   int
		dists []float64 // per signature, after the physical penalty
	}
	var pairs []pair
	maxD := make([]float64, len(s.sigs))
	for i := range maxD {
		maxD[i] = 1 // Algorithm 3 line 2: d_MAX starts at 1
	}
	candTiles := make([]*tile.Tile, len(cands))
	for ci, c := range cands {
		t, err := s.src.Tile(c.Coord)
		if err != nil {
			continue
		}
		candTiles[ci] = t
		for ri, rt := range roiTiles {
			p := pair{cand: ci, roi: ri, dists: make([]float64, len(s.sigs))}
			manh := c.Coord.ManhattanTo(rt.Coord)
			penalty := math.Pow(2, float64(manh-1)) // line 8's 2^(dmanh-1)
			for si, name := range s.sigs {
				sa := t.Signatures[name]
				sb := rt.Signatures[name]
				if sa == nil || sb == nil {
					continue
				}
				d := penalty * sig.ChiSquared(sa, sb)
				p.dists[si] = d
				if d > maxD[si] {
					maxD[si] = d
				}
			}
			pairs = append(pairs, p)
		}
	}

	// Lines 10-13: normalize per signature, then combine with the weighted
	// ℓ2 norm; lines 14-15: sum pair distances per candidate.
	total := make([]float64, len(cands))
	counted := make([]bool, len(cands))
	for _, p := range pairs {
		norm := make([]float64, len(p.dists))
		for si, d := range p.dists {
			norm[si] = d / maxD[si]
		}
		dAB := sig.WeightedL2(norm, s.weights)
		if s.physicalDivision {
			if phys := cands[p.cand].Coord.ManhattanTo(roiTiles[p.roi].Coord); phys > 0 {
				dAB /= float64(phys)
			}
		}
		total[p.cand] += dAB
		counted[p.cand] = true
	}
	for ci, c := range cands {
		score := math.Inf(-1)
		if counted[ci] {
			score = -total[ci]
		}
		out = append(out, Ranked{Coord: c.Coord, Score: score})
	}
	return sortRanked(out)
}
