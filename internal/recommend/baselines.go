package recommend

import (
	"sort"

	"forecache/internal/tile"
	"forecache/internal/trace"
)

// Momentum is the baseline from Doshi et al. (paper §5.2.3): the user's
// next move will match her previous move. The matching tile gets
// probability 0.9 and the eight other candidates 0.0125 each — the exact
// constants the paper uses. It is a first-order Markov chain with a
// hand-fixed transition matrix.
type Momentum struct{}

// NewMomentum returns the Momentum baseline.
func NewMomentum() *Momentum { return &Momentum{} }

// Name identifies the model.
func (m *Momentum) Name() string { return "momentum" }

// Observe is a no-op.
func (m *Momentum) Observe(trace.Request) {}

// Reset is a no-op.
func (m *Momentum) Reset() {}

// Predict assigns 0.9 to the candidate reached by repeating the previous
// move and 0.0125 to every other candidate.
func (m *Momentum) Predict(req trace.Request, cands []Candidate, h *trace.History) []Ranked {
	repeat := trace.Apply(req.Coord, req.Move)
	out := make([]Ranked, 0, len(cands))
	for _, c := range cands {
		score := 0.0125
		if req.Move != trace.None && c.Coord == repeat && len(c.Moves) == 1 {
			score = 0.9
		}
		out = append(out, Ranked{Coord: c.Coord, Score: score})
	}
	return sortRanked(out)
}

// TraceHotspot extends Momentum with awareness of popular tiles (paper
// §5.2.3, the Doshi et al. baseline): the most-requested tiles in the
// training traces become hotspots; when the user is near one, candidates
// that move her closer to it are ranked above the rest, otherwise the
// model behaves exactly like Momentum. It is trained ahead of time and
// then fixed — the online, cross-session Hotspot model (hotspot.go)
// learns the same signal continuously instead.
type TraceHotspot struct {
	momentum *Momentum
	hotspots []tile.Coord
	// radius is how near (Manhattan tiles, at the deeper of the two levels)
	// a hotspot must be to take over the ranking.
	radius int
}

// NewTraceHotspot trains the hotspot baseline: the n most-requested tiles
// in the traces become hotspots. The paper trains this "ahead of time" on
// the same study traces used for the Markov models.
func NewTraceHotspot(traces []*trace.Trace, n, radius int) *TraceHotspot {
	if n <= 0 {
		n = 8
	}
	if radius <= 0 {
		radius = 3
	}
	counts := make(map[tile.Coord]int)
	for _, t := range traces {
		for _, r := range t.Requests {
			counts[r.Coord]++
		}
	}
	coords := make([]tile.Coord, 0, len(counts))
	for c := range counts {
		coords = append(coords, c)
	}
	sort.Slice(coords, func(i, j int) bool {
		if counts[coords[i]] != counts[coords[j]] {
			return counts[coords[i]] > counts[coords[j]]
		}
		a, b := coords[i], coords[j]
		if a.Level != b.Level {
			return a.Level < b.Level
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	if len(coords) > n {
		coords = coords[:n]
	}
	return &TraceHotspot{momentum: NewMomentum(), hotspots: coords, radius: radius}
}

// Name identifies the model.
func (m *TraceHotspot) Name() string { return "hotspot" }

// Observe is a no-op.
func (m *TraceHotspot) Observe(trace.Request) {}

// Reset is a no-op.
func (m *TraceHotspot) Reset() {}

// Hotspots exposes the trained hotspot tiles (for inspection and tests).
func (m *TraceHotspot) Hotspots() []tile.Coord { return append([]tile.Coord(nil), m.hotspots...) }

// Predict behaves like Momentum unless a hotspot is within radius of the
// current tile; then candidates are re-scored by how much closer they
// bring the user to the nearest hotspot.
func (m *TraceHotspot) Predict(req trace.Request, cands []Candidate, h *trace.History) []Ranked {
	base := m.momentum.Predict(req, cands, h)
	nearest, dist := m.nearest(req.Coord)
	if dist > m.radius {
		return base
	}
	scores := make(map[tile.Coord]float64, len(base))
	for _, r := range base {
		scores[r.Coord] = r.Score
	}
	out := make([]Ranked, 0, len(base))
	for _, r := range base {
		d := r.Coord.ManhattanTo(nearest)
		// Approach bonus dominates the momentum prior; among approaching
		// tiles, closer is better.
		bonus := 0.0
		if d < dist {
			bonus = 2 + 1/float64(1+d)
		}
		out = append(out, Ranked{Coord: r.Coord, Score: scores[r.Coord] + bonus})
	}
	return sortRanked(out)
}

func (m *TraceHotspot) nearest(c tile.Coord) (tile.Coord, int) {
	best := tile.Coord{}
	bestD := 1 << 30
	for _, hc := range m.hotspots {
		if d := c.ManhattanTo(hc); d < bestD {
			best, bestD = hc, d
		}
	}
	return best, bestD
}
