package recommend

import (
	"strings"
	"testing"

	"forecache/internal/tile"
	"forecache/internal/trace"
)

// registryTraces builds a few tiny move traces so the AB spec can train.
func registryTraces() []*trace.Trace {
	var out []*trace.Trace
	for i := 0; i < 3; i++ {
		tr := &trace.Trace{}
		c := tile.Coord{}
		tr.Requests = append(tr.Requests, trace.Request{Coord: c, Move: trace.None})
		for _, q := range []tile.Quadrant{tile.NW, tile.SE} {
			c = c.Child(q)
			mv, _ := trace.MoveBetween(tr.Requests[len(tr.Requests)-1].Coord, c)
			tr.Requests = append(tr.Requests, trace.Request{Coord: c, Move: mv})
		}
		out = append(out, tr)
	}
	return out
}

func TestRegistryValidation(t *testing.T) {
	if _, err := NewRegistry(); err == nil {
		t.Error("empty registry should fail")
	}
	ab := ABSpec(3)
	dup := ABSpec(3)
	if _, err := NewRegistry(ab, dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate specs should fail, got %v", err)
	}
	anon := ab
	anon.Name = ""
	if _, err := NewRegistry(anon); err == nil {
		t.Error("empty name should fail")
	}
	noBuild := ab
	noBuild.Build = nil
	if _, err := NewRegistry(noBuild); err == nil {
		t.Error("nil Build should fail")
	}
	noPrior := ab
	noPrior.Prior = nil
	if _, err := NewRegistry(noPrior); err == nil {
		t.Error("nil Prior should fail")
	}
}

// TestRegistryBuildTrainsOnce: Build constructs each artifact exactly once
// (firing the train hook only for trace-trained specs) and Session stamps
// out fresh per-session views without touching the hook again.
func TestRegistryBuildTrainsOnce(t *testing.T) {
	reg, err := NewRegistry(DefaultSpecs(2, []string{"sift"}, &HotspotConfig{})...)
	if err != nil {
		t.Fatal(err)
	}
	var trained []string
	set, err := reg.Build(Env{
		Tiles:     &fakeSource{},
		Traces:    registryTraces(),
		TrainHook: func(name string) { trained = append(trained, name) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trained) != 1 || trained[0] != "markov2" {
		t.Fatalf("trained = %v, want exactly [markov2] (SB and hotspot are online)", trained)
	}
	if got := set.Names(); len(got) != 3 || got[0] != "markov2" || got[1] != "hotspot" || got[2] != "sb:sift" {
		t.Fatalf("names = %v", got)
	}

	s1, s2 := set.Session(), set.Session()
	if len(trained) != 1 {
		t.Fatalf("Session() trained more artifacts: %v", trained)
	}
	// AB and hotspot are shared instances; SB must be fresh per session.
	if s1[0] != s2[0] {
		t.Error("AB model should be the shared trained instance")
	}
	if s1[1] != s2[1] {
		t.Error("hotspot model should be the shared table")
	}
	if s1[2] == s2[2] {
		t.Error("SB model must be a fresh instance per session")
	}
	for i, m := range s1 {
		if m.Name() != set.Names()[i] {
			t.Errorf("model %d Name() = %q, want %q", i, m.Name(), set.Names()[i])
		}
	}
	if set.Hotspot() == nil {
		t.Error("Hotspot() should expose the shared table")
	}
}

// TestRegistryTrainRequiresTraces: a trace-trained spec without traces is
// a build error, not a silently untrained model.
func TestRegistryTrainRequiresTraces(t *testing.T) {
	reg, err := NewRegistry(DefaultSpecs(3, []string{"sift"}, nil)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Build(Env{Tiles: &fakeSource{}}); err == nil {
		t.Error("building a trace-trained spec without traces should fail")
	}
}

// TestDefaultSpecPriors pins the default prior tables: the exact §5.4.3
// hybrid for the two-model registry, and the extended three-column table
// (AB's first-4 cap yields a slot to hotspot, SB keeps the remainder and
// Sensemaking minus the hotspot slot) for the three-model one.
func TestDefaultSpecPriors(t *testing.T) {
	resolve := func(specs []Spec, ph trace.Phase, k int) map[string]int {
		out := map[string]int{}
		remaining := k
		for _, s := range specs {
			n := s.Prior(ph, k)
			if n < 0 || n > remaining {
				n = remaining
			}
			if n > 0 {
				out[s.Name] = n
				remaining -= n
			}
		}
		return out
	}
	two := DefaultSpecs(3, []string{"sift"}, nil)
	three := DefaultSpecs(3, []string{"sift"}, &HotspotConfig{})
	cases := []struct {
		specs []Spec
		ph    trace.Phase
		k     int
		want  map[string]int
	}{
		{two, trace.Foraging, 5, map[string]int{"markov3": 4, "sb:sift": 1}},
		{two, trace.Navigation, 8, map[string]int{"markov3": 4, "sb:sift": 4}},
		{two, trace.Navigation, 3, map[string]int{"markov3": 3}},
		{two, trace.Sensemaking, 5, map[string]int{"sb:sift": 5}},
		{three, trace.Foraging, 5, map[string]int{"markov3": 3, "hotspot": 1, "sb:sift": 1}},
		{three, trace.Navigation, 4, map[string]int{"markov3": 3, "hotspot": 1}},
		{three, trace.Sensemaking, 5, map[string]int{"hotspot": 1, "sb:sift": 4}},
		{three, trace.Sensemaking, 2, map[string]int{"sb:sift": 2}},
		{three, trace.Foraging, 2, map[string]int{"markov3": 2}},
		// The hotspot's k >= 3 slot survives in every phase: AB yields at
		// exactly k=3 instead of consuming the whole budget first.
		{three, trace.Foraging, 3, map[string]int{"markov3": 2, "hotspot": 1}},
		{three, trace.Navigation, 3, map[string]int{"markov3": 2, "hotspot": 1}},
		{three, trace.Sensemaking, 3, map[string]int{"hotspot": 1, "sb:sift": 2}},
	}
	for _, tc := range cases {
		got := resolve(tc.specs, tc.ph, tc.k)
		if len(got) != len(tc.want) {
			t.Errorf("%d specs, %v k=%d: %v, want %v", len(tc.specs), tc.ph, tc.k, got, tc.want)
			continue
		}
		for m, n := range tc.want {
			if got[m] != n {
				t.Errorf("%d specs, %v k=%d: %v, want %v", len(tc.specs), tc.ph, tc.k, got, tc.want)
				break
			}
		}
	}
}
