package recommend

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"forecache/internal/tile"
	"forecache/internal/trace"
)

// HotspotConfig tunes the online Hotspot recommender.
type HotspotConfig struct {
	// HalfLife is the number of consumption observations at a zoom level
	// after which an unrefreshed tile's weight halves (EWMA decay by
	// observation count, not wall clock, so replays are deterministic).
	// Default 256.
	HalfLife float64
	// Stripes is the number of independently locked shards of the counter
	// table; raise it if profiles ever show contention with very large
	// session counts. Default 16.
	Stripes int
	// MaxPerStripe bounds one stripe's table: past it, entries whose
	// decayed weight has fallen below noise are swept, so a long-running
	// deployment's table cannot grow without bound. Default 8192.
	MaxPerStripe int
}

func (c HotspotConfig) withDefaults() HotspotConfig {
	if c.HalfLife <= 0 {
		c.HalfLife = 256
	}
	if c.Stripes <= 0 {
		c.Stripes = 16
	}
	if c.MaxPerStripe <= 0 {
		c.MaxPerStripe = 8192
	}
	return c
}

// hotspotMaxLevels bounds the per-level observation counters; deeper
// coordinates clamp into the last bucket (pyramids are far shallower).
const hotspotMaxLevels = 64

// sweepMinWeight is the noise floor: entries whose decayed weight has
// fallen below it are dropped by the sweep — and by snapshot export, so a
// persisted table carries only the evidence a sweep would keep.
const sweepMinWeight = 1e-3

// hotEntry is one tile's decayed consumption weight, stored together with
// the level observation count it was last normalized at (decay is applied
// lazily: weight_effective = score * gamma^(levelN - lastN)).
type hotEntry struct {
	score float64
	lastN int64
}

// hotStripe is one lock-striped shard of the counter table. sinceSweep
// counts observations since the last sweep, so a full stripe cannot
// trigger an O(stripe) scan on every single update.
type hotStripe struct {
	mu         sync.Mutex
	w          map[tile.Coord]hotEntry
	sinceSweep int
}

// Hotspot is the online, cross-session hotspot recommender: it ranks
// candidate tiles by how often the whole deployment's sessions recently
// consumed them. Where the trace-trained TraceHotspot baseline (Doshi et
// al., paper §5.2.3) fixes its hotspots ahead of time, this model is
// training-free and population-level, in the spirit of Continuous
// Prefetch's cross-user access statistics: one shared instance is fed the
// coordinates of consumed prefetched tiles from the same cache.Outcome
// stream the FeedbackCollector drains (core.WithConsumption), and every
// session engine reads the same table.
//
// Weights are kept per zoom level and EWMA-decayed by observation count:
// each new consumption at a level multiplies every other tile's weight at
// that level by gamma = 0.5^(1/HalfLife), so the table tracks what is
// popular NOW and a dataset shift forgets old hotspots on its own. Predict
// scores a candidate by its share of the recent consumption at its level
// (0 when the level has never been consumed), which keeps scores
// comparable across zoom levels even when their traffic differs by orders
// of magnitude.
//
// The counter table is lock-striped by coordinate hash and the per-level
// counters are atomics, so Observe/ObserveConsumption/Predict are all safe
// for concurrent use by any number of session engines. Reset is a no-op by
// design: the table is deployment-wide state, and one session ending says
// nothing about what the population finds interesting.
type Hotspot struct {
	cfg    HotspotConfig
	gamma  float64
	levelN [hotspotMaxLevels]atomic.Int64
	strs   []hotStripe
}

// NewHotspot returns an empty online hotspot model.
func NewHotspot(cfg HotspotConfig) *Hotspot {
	cfg = cfg.withDefaults()
	h := &Hotspot{
		cfg:   cfg,
		gamma: math.Pow(0.5, 1/cfg.HalfLife),
		strs:  make([]hotStripe, cfg.Stripes),
	}
	for i := range h.strs {
		h.strs[i].w = make(map[tile.Coord]hotEntry)
	}
	return h
}

// Name identifies the model.
func (h *Hotspot) Name() string { return "hotspot" }

// Observe is a no-op: the model's signal is cross-session consumption,
// fed through ObserveConsumption from the cache outcome stream, not one
// session's request sequence.
func (h *Hotspot) Observe(trace.Request) {}

// Reset is a no-op: the counter table is shared, deployment-wide state.
func (h *Hotspot) Reset() {}

// Session implements recommend.Artifact: the shared instance IS the
// per-session model (all sessions read and feed one table).
func (h *Hotspot) Session() Model { return h }

// level clamps a coordinate's zoom level into the counter range.
func level(c tile.Coord) int {
	l := c.Level
	if l < 0 {
		l = 0
	}
	if l >= hotspotMaxLevels {
		l = hotspotMaxLevels - 1
	}
	return l
}

// stripe picks the shard for a coordinate.
func (h *Hotspot) stripe(c tile.Coord) *hotStripe {
	hash := uint64(c.Level)*1000003 ^ uint64(uint32(c.Y))*8191 ^ uint64(uint32(c.X))
	return &h.strs[hash%uint64(len(h.strs))]
}

// ObserveConsumption records one consumed prefetched tile (implements
// core.ConsumptionObserver): the coordinate's weight at its zoom level is
// refreshed to full strength while every other tile at that level decays
// one observation step.
func (h *Hotspot) ObserveConsumption(c tile.Coord, _ trace.Phase) {
	l := level(c)
	n := h.levelN[l].Add(1)
	s := h.stripe(c)
	s.mu.Lock()
	e := s.w[c]
	if e.score > 0 {
		e.score *= math.Pow(h.gamma, float64(n-e.lastN))
	}
	e.score++
	e.lastN = n
	s.sinceSweep++
	if len(s.w) >= h.cfg.MaxPerStripe && s.sinceSweep >= h.cfg.MaxPerStripe/8+1 {
		h.sweepLocked(s)
		s.sinceSweep = 0
	}
	s.w[c] = e
	s.mu.Unlock()
}

// sweepLocked bounds a full stripe: entries whose decayed weight has
// fallen below noise are dropped first, and if the live set alone still
// exceeds the cap, the smallest-weight entries are evicted until the
// stripe is 1/8 under it. The cap is therefore HARD (a stripe holds at
// most MaxPerStripe + MaxPerStripe/8 entries between sweeps), and the
// sinceSweep cooldown amortizes the O(stripe) scan to O(1) per update
// even when every entry is hot. Called with the stripe lock held.
func (h *Hotspot) sweepLocked(s *hotStripe) {
	type weighted struct {
		c   tile.Coord
		eff float64
	}
	var live []weighted
	for c, e := range s.w {
		eff := e.score * math.Pow(h.gamma, float64(h.levelN[level(c)].Load()-e.lastN))
		if eff < sweepMinWeight {
			delete(s.w, c)
			continue
		}
		live = append(live, weighted{c: c, eff: eff})
	}
	target := h.cfg.MaxPerStripe - h.cfg.MaxPerStripe/8
	if len(s.w) <= target {
		return
	}
	sort.Slice(live, func(i, j int) bool { return live[i].eff < live[j].eff })
	for _, w := range live[:len(s.w)-target] {
		delete(s.w, w.c)
	}
}

// weight returns a coordinate's decayed consumption weight at the current
// level count n.
func (h *Hotspot) weight(c tile.Coord, n int64) float64 {
	s := h.stripe(c)
	s.mu.Lock()
	e, ok := s.w[c]
	s.mu.Unlock()
	if !ok || e.score <= 0 {
		return 0
	}
	return e.score * math.Pow(h.gamma, float64(n-e.lastN))
}

// Share returns the coordinate's share of the recent (decayed) consumption
// at its zoom level, in [0, 1] — 0 when the level was never consumed.
// Exposed for tests and operability probes.
func (h *Hotspot) Share(c tile.Coord) float64 {
	l := level(c)
	n := h.levelN[l].Load()
	if n == 0 {
		return 0
	}
	// Total decayed weight at the level after n observations is the
	// geometric sum 1 + gamma + ... + gamma^(n-1).
	total := (1 - math.Pow(h.gamma, float64(n))) / (1 - h.gamma)
	if total <= 0 {
		return 0
	}
	share := h.weight(c, n) / total
	if share > 1 {
		share = 1 // concurrent-update slack; weights are a heuristic
	}
	return share
}

// Predict ranks candidates by their share of recent cross-session
// consumption at their zoom level; ties (including the all-zero cold
// start) fall back to deterministic coordinate order.
func (h *Hotspot) Predict(req trace.Request, cands []Candidate, hst *trace.History) []Ranked {
	out := make([]Ranked, 0, len(cands))
	for _, c := range cands {
		out = append(out, Ranked{Coord: c.Coord, Score: h.Share(c.Coord)})
	}
	return sortRanked(out)
}
