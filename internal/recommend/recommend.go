// Package recommend implements ForeCache's tile recommendation models
// (paper §4.3): the Actions-Based (AB) Markov-chain model, the
// Signature-Based (SB) visual-similarity model, and the two baselines the
// paper compares against, Momentum and Hotspot (Doshi et al.).
//
// Every model answers the same sub-problem: given the current request, a
// candidate tile set C (all tiles at most d moves away), and the session
// history H, produce an ordering of C by how likely the user is to request
// each tile next (paper §4.3's sub-problem definition).
package recommend

import (
	"sort"

	"forecache/internal/tile"
	"forecache/internal/trace"
)

// Candidate is one prediction target: a tile plus the move chain that
// reaches it from the current tile (length 1 for d=1).
type Candidate struct {
	Coord tile.Coord
	Moves []trace.Move
}

// FirstMove returns the first move of the chain.
func (c Candidate) FirstMove() trace.Move {
	if len(c.Moves) == 0 {
		return trace.None
	}
	return c.Moves[0]
}

// Bounds abstracts the pyramid geometry the candidate generator needs, so
// models are testable without building real pyramids.
type Bounds interface {
	Contains(c tile.Coord) bool
}

// Candidates enumerates every tile reachable from cur in at most d moves
// (paper §4.3.1), deduplicated to the shortest move chain, in a
// deterministic order. For d=1 this is the classic 9-candidate set: four
// pans, four zoom-in quadrants, one zoom-out, clipped at dataset borders.
func Candidates(b Bounds, cur tile.Coord, d int) []Candidate {
	type state struct {
		coord tile.Coord
		moves []trace.Move
	}
	seen := map[tile.Coord]bool{cur: true}
	frontier := []state{{coord: cur}}
	var out []Candidate
	for depth := 0; depth < d; depth++ {
		var next []state
		for _, s := range frontier {
			for _, m := range trace.AllMoves() {
				to := trace.Apply(s.coord, m)
				if to == s.coord || !b.Contains(to) || seen[to] {
					continue
				}
				seen[to] = true
				chain := append(append([]trace.Move(nil), s.moves...), m)
				next = append(next, state{coord: to, moves: chain})
				out = append(out, Candidate{Coord: to, Moves: chain})
			}
		}
		frontier = next
	}
	return out
}

// Ranked is a scored candidate; higher Score means more likely.
type Ranked struct {
	Coord tile.Coord
	Score float64
}

// Model is a tile recommendation model. Observe feeds it the user's actual
// requests (stateful models like SB track the region of interest); Predict
// ranks candidates for the next request; Reset clears per-session state.
type Model interface {
	Name() string
	Observe(req trace.Request)
	Predict(req trace.Request, cands []Candidate, h *trace.History) []Ranked
	Reset()
}

// sortRanked orders by score descending with deterministic coordinate
// tie-breaking.
func sortRanked(out []Ranked) []Ranked {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Coord.Less(out[j].Coord)
	})
	return out
}

// TopK trims a ranking to at most k entries.
func TopK(r []Ranked, k int) []Ranked {
	if k < 0 {
		k = 0
	}
	if len(r) > k {
		r = r[:k]
	}
	return r
}

// Contains reports whether the ranking's first k entries include the coord.
func Contains(r []Ranked, k int, c tile.Coord) bool {
	for i, e := range r {
		if i >= k {
			break
		}
		if e.Coord == c {
			return true
		}
	}
	return false
}
