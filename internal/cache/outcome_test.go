package cache

import (
	"fmt"
	"testing"

	"forecache/internal/tile"
	"forecache/internal/trace"
)

// drain is a test helper asserting the exact outcome set (order-sensitive).
func drain(t *testing.T, m *Manager, want []Outcome) {
	t.Helper()
	got := m.TakeOutcomes()
	if len(got) != len(want) {
		t.Fatalf("outcomes = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("outcome[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestOutcomeHitAttribution(t *testing.T) {
	m := NewManager(4)
	m.TrackOutcomes(true)
	m.SetAllocations(map[string]int{"ab": 3})
	tiles := []*tile.Tile{mkTile(2, 0, 0), mkTile(2, 0, 1), mkTile(2, 1, 0)}
	m.FillPredictions("ab", tiles, trace.Foraging)

	// Consuming the rank-1 prediction credits position 1, exactly once.
	if _, ok := m.Lookup(tiles[1].Coord); !ok {
		t.Fatal("prefetched tile should hit")
	}
	if _, ok := m.Lookup(tiles[1].Coord); !ok {
		t.Fatal("second lookup should still hit")
	}
	drain(t, m, []Outcome{{Model: "ab", Position: 1, Phase: trace.Foraging, Coord: tiles[1].Coord, Hit: true}})

	// An overall miss emits no position outcome: nothing predicted it.
	if _, ok := m.Lookup(tile.Coord{Level: 5}); ok {
		t.Fatal("absent tile should miss")
	}
	drain(t, m, nil)
}

// TestOutcomeCreditsEveryAgreeingModel: when several models predicted the
// consumed tile, each one's prediction was correct — all get hit outcomes,
// and none is later judged a miss at eviction.
func TestOutcomeCreditsEveryAgreeingModel(t *testing.T) {
	m := NewManager(4)
	m.TrackOutcomes(true)
	m.SetAllocations(map[string]int{"ab": 2, "sb": 2})
	shared := mkTile(2, 0, 0)
	m.FillPredictions("ab", []*tile.Tile{shared, mkTile(2, 0, 1)}, trace.Foraging)
	m.FillPredictions("sb", []*tile.Tile{mkTile(2, 1, 0), shared}, trace.Foraging)
	if _, ok := m.Lookup(shared.Coord); !ok {
		t.Fatal("shared prediction should hit")
	}
	got := m.TakeOutcomes()
	credited := map[string]int{}
	for _, o := range got {
		if !o.Hit {
			t.Fatalf("unexpected miss outcome %+v", o)
		}
		credited[o.Model] = o.Position
	}
	if len(got) != 2 || credited["ab"] != 0 || credited["sb"] != 1 {
		t.Fatalf("outcomes = %+v, want ab@0 and sb@1 hits", got)
	}
	// Dropping both regions now judges only the never-consumed tiles.
	m.SetAllocations(map[string]int{})
	for _, o := range m.TakeOutcomes() {
		if o.Hit || (o.Position == 0 && o.Model == "ab") || (o.Position == 1 && o.Model == "sb") {
			t.Fatalf("consumed shared tile was re-judged: %+v", o)
		}
	}
}

func TestOutcomeMissOnReplacement(t *testing.T) {
	m := NewManager(4)
	m.TrackOutcomes(true)
	m.SetAllocations(map[string]int{"ab": 2})
	a, b := mkTile(2, 0, 0), mkTile(2, 0, 1)
	m.FillPredictions("ab", []*tile.Tile{a, b}, trace.Foraging)
	if _, ok := m.Lookup(a.Coord); !ok {
		t.Fatal("a should hit")
	}
	// The next batch re-predicts nothing: a was consumed (hit already
	// recorded), b was not (miss at its position 1).
	c, d := mkTile(2, 1, 0), mkTile(2, 1, 1)
	m.FillPredictions("ab", []*tile.Tile{c, d}, trace.Foraging)
	drain(t, m, []Outcome{
		{Model: "ab", Position: 0, Phase: trace.Foraging, Coord: a.Coord, Hit: true},
		{Model: "ab", Position: 1, Phase: trace.Foraging, Coord: b.Coord, Hit: false},
	})
}

func TestOutcomeRefreshIsNotJudged(t *testing.T) {
	m := NewManager(4)
	m.TrackOutcomes(true)
	m.SetAllocations(map[string]int{"ab": 2})
	a, b := mkTile(2, 0, 0), mkTile(2, 0, 1)
	m.FillPredictions("ab", []*tile.Tile{a, b}, trace.Foraging)
	// b is re-predicted (now at rank 0): no outcome for the old instance;
	// a leaves unconsumed: miss at position 0.
	m.FillPredictions("ab", []*tile.Tile{b, mkTile(2, 1, 1)}, trace.Foraging)
	drain(t, m, []Outcome{{Model: "ab", Position: 0, Phase: trace.Foraging, Coord: a.Coord, Hit: false}})
	// Consuming b now credits its refreshed position 0.
	if _, ok := m.Lookup(b.Coord); !ok {
		t.Fatal("refreshed tile should hit")
	}
	drain(t, m, []Outcome{{Model: "ab", Position: 0, Phase: trace.Foraging, Coord: b.Coord, Hit: true}})
}

func TestOutcomeAsyncRingEviction(t *testing.T) {
	m := NewManager(4)
	m.TrackOutcomes(true)
	m.SetAllocations(map[string]int{"ab": 2})
	a, b, c := mkTile(2, 0, 0), mkTile(2, 0, 1), mkTile(2, 1, 0)
	m.InsertPrediction("ab", a, 0, trace.Foraging)
	m.InsertPrediction("ab", b, 1, trace.Foraging)
	m.InsertPrediction("ab", c, 2, trace.Foraging) // rings a out, unconsumed: miss at pos 0
	drain(t, m, []Outcome{{Model: "ab", Position: 0, Phase: trace.Foraging, Coord: a.Coord, Hit: false}})
	if _, ok := m.Lookup(c.Coord); !ok {
		t.Fatal("newest prediction should hit")
	}
	drain(t, m, []Outcome{{Model: "ab", Position: 2, Phase: trace.Foraging, Coord: c.Coord, Hit: true}})
}

func TestOutcomeAllocationLossJudged(t *testing.T) {
	m := NewManager(4)
	m.TrackOutcomes(true)
	m.SetAllocations(map[string]int{"ab": 2, "sb": 1})
	m.FillPredictions("ab", []*tile.Tile{mkTile(2, 0, 0), mkTile(2, 0, 1)}, trace.Foraging)
	m.FillPredictions("sb", []*tile.Tile{mkTile(2, 1, 0)}, trace.Foraging)
	// ab shrinks to 1 slot (rank-1 entry trimmed: miss at 1); sb loses its
	// region entirely (miss at 0).
	m.SetAllocations(map[string]int{"ab": 1})
	got := m.TakeOutcomes()
	misses := map[string]int{}
	for _, o := range got {
		if o.Hit {
			t.Fatalf("unexpected hit outcome %+v", o)
		}
		misses[fmt.Sprintf("%s@%d", o.Model, o.Position)]++
	}
	if misses["ab@1"] != 1 || misses["sb@0"] != 1 || len(got) != 2 {
		t.Fatalf("outcomes = %+v, want ab@1 and sb@0 misses", got)
	}
}

func TestOutcomeClearNotJudged(t *testing.T) {
	m := NewManager(4)
	m.TrackOutcomes(true)
	m.SetAllocations(map[string]int{"ab": 2})
	m.FillPredictions("ab", []*tile.Tile{mkTile(2, 0, 0)}, trace.Foraging)
	m.Clear()
	if got := m.TakeOutcomes(); len(got) != 0 {
		t.Fatalf("Clear must not judge predictions, got %+v", got)
	}
	if m.Len() != 0 {
		t.Fatal("Clear should empty the cache")
	}
}

// TestOutcomePhaseAttribution: an outcome carries the phase in effect when
// the tile was PREFETCHED, not when it was judged — and a refresh re-stamps
// the entry with the refreshing batch's phase.
func TestOutcomePhaseAttribution(t *testing.T) {
	m := NewManager(4)
	m.TrackOutcomes(true)
	m.SetAllocations(map[string]int{"ab": 2})
	a, b := mkTile(2, 0, 0), mkTile(2, 0, 1)
	m.FillPredictions("ab", []*tile.Tile{a, b}, trace.Sensemaking)
	// a consumed: hit attributed to Sensemaking even if the user's phase
	// changed since.
	if _, ok := m.Lookup(a.Coord); !ok {
		t.Fatal("a should hit")
	}
	// b refreshed under Navigation, then rung out by later inserts:
	// the miss is attributed to the refreshing batch's phase.
	m.FillPredictions("ab", []*tile.Tile{b}, trace.Navigation)
	m.InsertPrediction("ab", mkTile(2, 1, 0), 0, trace.Foraging)
	m.InsertPrediction("ab", mkTile(2, 1, 1), 1, trace.Foraging)
	drain(t, m, []Outcome{
		{Model: "ab", Position: 0, Phase: trace.Sensemaking, Coord: a.Coord, Hit: true},
		{Model: "ab", Position: 0, Phase: trace.Navigation, Coord: b.Coord, Hit: false},
	})
}

func TestOutcomeTrackingOffByDefault(t *testing.T) {
	m := NewManager(4)
	m.SetAllocations(map[string]int{"ab": 1})
	m.FillPredictions("ab", []*tile.Tile{mkTile(2, 0, 0)}, trace.Foraging)
	m.Lookup(tile.Coord{Level: 2})
	m.FillPredictions("ab", []*tile.Tile{mkTile(2, 1, 1)}, trace.Foraging)
	if got := m.TakeOutcomes(); got != nil {
		t.Fatalf("outcomes accumulated while disabled: %+v", got)
	}
}

func TestOutcomeBufferBounded(t *testing.T) {
	m := NewManager(4)
	m.TrackOutcomes(true)
	m.SetAllocations(map[string]int{"ab": 1})
	for i := 0; i < outcomeBufferCap+100; i++ {
		m.InsertPrediction("ab", mkTile(8, i/512, i%512), 0, trace.Foraging)
	}
	if got := len(m.TakeOutcomes()); got > outcomeBufferCap {
		t.Fatalf("outcome buffer grew to %d, cap is %d", got, outcomeBufferCap)
	}
}

// TestIndexConsistentAfterChurn cross-checks the coordinate index against a
// full region scan after a mixed workload.
func TestIndexConsistentAfterChurn(t *testing.T) {
	m := NewManager(4)
	m.SetAllocations(map[string]int{"ab": 3, "sb": 2})
	for i := 0; i < 50; i++ {
		switch i % 5 {
		case 0:
			m.FillPredictions("ab", []*tile.Tile{mkTile(3, i%8, 0), mkTile(3, i%8, 1)}, trace.Foraging)
		case 1:
			m.InsertPrediction("sb", mkTile(3, i%8, 2), i%3, trace.Foraging)
		case 2:
			m.Lookup(tile.Coord{Level: 3, Y: i % 8, X: 1})
		case 3:
			m.SetAllocations(map[string]int{"ab": 1 + i%3, "sb": 2})
		case 4:
			m.InsertRecent(mkTile(4, i, i))
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	inRegions := map[tile.Coord]int{}
	for model, region := range m.regions {
		for _, pt := range region {
			inRegions[pt.t.Coord]++
			found := false
			if e := m.byCoord[pt.t.Coord]; e != nil {
				for _, ref := range e.refs {
					if ref.model == model && ref.pt == pt {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("index missing region entry %v/%s", pt.t.Coord, model)
			}
		}
	}
	indexed, recents := 0, 0
	for c, e := range m.byCoord {
		indexed += len(e.refs)
		if e.recent != nil {
			recents++
		}
		if len(e.refs) == 0 && e.recent == nil {
			t.Errorf("index holds empty entry for %v", c)
		}
		if len(e.refs) > 0 && inRegions[c] == 0 {
			t.Errorf("index holds %v which no region holds", c)
		}
	}
	total := 0
	for _, n := range inRegions {
		total += n
	}
	if indexed != total {
		t.Errorf("index holds %d region refs, regions hold %d", indexed, total)
	}
	if recents != m.recent.Len() {
		t.Errorf("index holds %d recent refs, LRU holds %d", recents, m.recent.Len())
	}
}

// lookupScan reimplements the pre-index linear lookup (every region slice
// scanned under the lock, then one map probe for the LRU region) as the
// benchmark baseline.
func (m *Manager) lookupScan(c tile.Coord) (*tile.Tile, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, region := range m.regions {
		for _, pt := range region {
			if pt.t.Coord == c {
				return pt.t, true
			}
		}
	}
	if e := m.byCoord[c]; e != nil && e.recent != nil {
		return e.recent.Value.(*tile.Tile), true
	}
	return nil, false
}

// benchManagerN builds the hot-path fix's reference shape: n model regions
// of 8 tiles each (K=8), with production-sized tiles (16x16 float64 grids,
// ~2KB) scattered across the heap the way a long-running server's tiles
// are — the linear scan pays a pointer chase per entry.
func benchManagerN(n int) (*Manager, []tile.Coord) {
	m := NewManager(8)
	allocs := map[string]int{}
	var coords []tile.Coord
	var ballast [][]float64
	for r := 0; r < n; r++ {
		allocs[fmt.Sprintf("model%d", r)] = 8
	}
	m.SetAllocations(allocs)
	for r := 0; r < n; r++ {
		var tiles []*tile.Tile
		for i := 0; i < 8; i++ {
			tl := &tile.Tile{
				Coord: tile.Coord{Level: 5, Y: r, X: i},
				Size:  16, Attrs: []string{"v"},
				Data: [][]float64{make([]float64, 16*16)},
			}
			ballast = append(ballast, make([]float64, 4096))
			tiles = append(tiles, tl)
			coords = append(coords, tl.Coord)
		}
		m.FillPredictions(fmt.Sprintf("model%d", r), tiles, trace.Foraging)
	}
	_ = ballast
	return m, coords
}

func benchManager() (*Manager, []tile.Coord) { return benchManagerN(8) }

// BenchmarkLookupIndexed8Regions vs BenchmarkLookupScan8Regions measure the
// hot-path win of the coordinate index at K=8 regions; the miss pair is the
// worst case for the scan (every region walked end to end).
func BenchmarkLookupIndexed8Regions(b *testing.B) {
	m, coords := benchManager()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Lookup(coords[i%len(coords)])
	}
}

func BenchmarkLookupScan8Regions(b *testing.B) {
	m, coords := benchManager()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.lookupScan(coords[i%len(coords)])
	}
}

func BenchmarkLookupMissIndexed8Regions(b *testing.B) {
	m, _ := benchManager()
	miss := tile.Coord{Level: 9, Y: 9, X: 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Lookup(miss)
	}
}

func BenchmarkLookupMissScan8Regions(b *testing.B) {
	m, _ := benchManager()
	miss := tile.Coord{Level: 9, Y: 9, X: 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.lookupScan(miss)
	}
}

// The 16-region pair shows the asymptotic point: the scan is O(regions ×
// K) while the index stays flat, so the gap widens with every model a
// deployment adds.
func BenchmarkLookupMissIndexed16Regions(b *testing.B) {
	m, _ := benchManagerN(16)
	miss := tile.Coord{Level: 9, Y: 99, X: 99}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Lookup(miss)
	}
}

func BenchmarkLookupMissScan16Regions(b *testing.B) {
	m, _ := benchManagerN(16)
	miss := tile.Coord{Level: 9, Y: 99, X: 99}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.lookupScan(miss)
	}
}

// The parallel pair measures what the scan really costs a loaded server:
// the manager's mutex is shared by the request path and the scheduler's
// async deliveries, so lock hold time — not per-call latency — bounds
// throughput. The linear scan holds the lock for the whole regions walk.
func BenchmarkLookupParallelIndexed8Regions(b *testing.B) {
	m, coords := benchManager()
	miss := tile.Coord{Level: 9, Y: 9, X: 9}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%2 == 0 {
				m.Lookup(coords[i%len(coords)])
			} else {
				m.Lookup(miss)
			}
			i++
		}
	})
}

func BenchmarkLookupParallelScan8Regions(b *testing.B) {
	m, coords := benchManager()
	miss := tile.Coord{Level: 9, Y: 9, X: 9}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%2 == 0 {
				m.lookupScan(coords[i%len(coords)])
			} else {
				m.lookupScan(miss)
			}
			i++
		}
	})
}

// TestPredictionsIsObservational: Predictions (the push backfill source)
// returns the live region entries in deterministic order and touches
// nothing — no consumption marks, no outcomes, no stats — so replaying a
// session's cache down a reconnected stream can never double-count a
// prediction's fate.
func TestPredictionsIsObservational(t *testing.T) {
	m := NewManager(8)
	m.TrackOutcomes(true)
	m.SetAllocations(map[string]int{"ab": 2, "sb": 2})
	m.FillPredictions("ab", []*tile.Tile{mkTile(2, 0, 0), mkTile(2, 0, 1)}, trace.Foraging)
	m.FillPredictions("sb", []*tile.Tile{mkTile(2, 1, 0)}, trace.Foraging)

	before := m.Stats()
	first := m.Predictions()
	second := m.Predictions()
	if len(first) != 3 {
		t.Fatalf("predictions = %d entries, want 3", len(first))
	}
	// Deterministic order: model names sorted, region order within.
	for i := range first {
		if first[i].Model != second[i].Model || first[i].Tile.Coord != second[i].Tile.Coord {
			t.Fatalf("snapshot order unstable: %+v vs %+v", first[i], second[i])
		}
		if i > 0 && first[i].Model < first[i-1].Model {
			t.Fatalf("models out of order: %q before %q", first[i-1].Model, first[i].Model)
		}
	}
	if after := m.Stats(); after != before {
		t.Fatalf("Predictions moved stats: before=%+v after=%+v", before, after)
	}
	drain(t, m, nil) // no outcomes emitted

	// The snapshot did not mark anything consumed: a later real lookup
	// still credits the hit, and eviction of unconsumed entries still
	// emits its miss outcome.
	c := tile.Coord{Level: 2, Y: 0, X: 1}
	if _, ok := m.Lookup(c); !ok {
		t.Fatal("snapshotted prediction should still hit")
	}
	drain(t, m, []Outcome{{Model: "ab", Position: 1, Phase: trace.Foraging, Coord: c, Hit: true}})
}
