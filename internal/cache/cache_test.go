package cache

import (
	"sync"
	"testing"

	"forecache/internal/tile"
	"forecache/internal/trace"
)

func mkTile(level, y, x int) *tile.Tile {
	return &tile.Tile{
		Coord: tile.Coord{Level: level, Y: y, X: x},
		Size:  2, Attrs: []string{"v"},
		Data: [][]float64{{1, 2, 3, 4}},
	}
}

func TestLookupHitMissAccounting(t *testing.T) {
	m := NewManager(4)
	m.SetAllocations(map[string]int{"ab": 2})
	tl := mkTile(1, 0, 0)
	m.FillPredictions("ab", []*tile.Tile{tl}, trace.Foraging)

	if _, ok := m.Lookup(tl.Coord); !ok {
		t.Fatal("prefetched tile should hit")
	}
	if _, ok := m.Lookup(tile.Coord{Level: 3, Y: 1, X: 1}); ok {
		t.Fatal("absent tile should miss")
	}
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", st.HitRate())
	}
}

func TestHitRateEmpty(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Error("empty stats hit rate should be 0")
	}
}

func TestFillPredictionsRespectsAllocation(t *testing.T) {
	m := NewManager(2)
	m.SetAllocations(map[string]int{"ab": 2})
	tiles := []*tile.Tile{mkTile(2, 0, 0), mkTile(2, 0, 1), mkTile(2, 1, 0)}
	m.FillPredictions("ab", tiles, trace.Foraging)
	if _, ok := m.Lookup(tiles[0].Coord); !ok {
		t.Error("first prediction should be cached")
	}
	if _, ok := m.Lookup(tiles[2].Coord); ok {
		t.Error("prediction beyond the allotment must not be cached")
	}
	st := m.Stats()
	if st.Prefetched != 2 {
		t.Errorf("Prefetched = %d, want 2", st.Prefetched)
	}
}

func TestFillPredictionsUnknownModel(t *testing.T) {
	m := NewManager(2)
	m.FillPredictions("ghost", []*tile.Tile{mkTile(1, 0, 0)}, trace.Foraging)
	if m.Len() != 0 {
		t.Error("unknown model has zero allotment; nothing should be cached")
	}
}

func TestSetAllocationsTrims(t *testing.T) {
	m := NewManager(2)
	m.SetAllocations(map[string]int{"ab": 3})
	m.FillPredictions("ab", []*tile.Tile{mkTile(2, 0, 0), mkTile(2, 0, 1), mkTile(2, 1, 1)}, trace.Foraging)
	m.SetAllocations(map[string]int{"ab": 1})
	if m.Len() != 1 {
		t.Errorf("after trim Len = %d, want 1", m.Len())
	}
	m.SetAllocations(map[string]int{"sb": 4}) // ab loses its region entirely
	if m.Len() != 0 {
		t.Errorf("after removing ab, Len = %d, want 0", m.Len())
	}
	allocs := m.Allocations()
	if allocs["sb"] != 4 || len(allocs) != 1 {
		t.Errorf("Allocations = %v", allocs)
	}
}

func TestNegativeAllocationClamped(t *testing.T) {
	m := NewManager(2)
	m.SetAllocations(map[string]int{"ab": -5})
	if m.Allocations()["ab"] != 0 {
		t.Error("negative allocation should clamp to 0")
	}
}

func TestRecentLRUEviction(t *testing.T) {
	m := NewManager(2)
	a, b, c := mkTile(3, 0, 0), mkTile(3, 0, 1), mkTile(3, 0, 2)
	m.InsertRecent(a)
	m.InsertRecent(b)
	// Touch a so b becomes the LRU victim.
	if _, ok := m.Lookup(a.Coord); !ok {
		t.Fatal("a should hit")
	}
	m.InsertRecent(c)
	if m.Peek(b.Coord) {
		t.Error("b should have been evicted as least recently used")
	}
	if !m.Peek(a.Coord) || !m.Peek(c.Coord) {
		t.Error("a and c should remain")
	}
}

func TestInsertRecentDuplicate(t *testing.T) {
	m := NewManager(2)
	a := mkTile(1, 0, 0)
	m.InsertRecent(a)
	m.InsertRecent(a)
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1 after duplicate insert", m.Len())
	}
	m.InsertRecent(nil) // must not panic
}

func TestPeekDoesNotCount(t *testing.T) {
	m := NewManager(2)
	m.InsertRecent(mkTile(1, 0, 0))
	m.Peek(tile.Coord{Level: 1, Y: 0, X: 0})
	m.Peek(tile.Coord{Level: 9, Y: 0, X: 0})
	st := m.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Peek changed stats: %+v", st)
	}
}

func TestClearKeepsAllocations(t *testing.T) {
	m := NewManager(2)
	m.SetAllocations(map[string]int{"ab": 2})
	m.FillPredictions("ab", []*tile.Tile{mkTile(1, 0, 0)}, trace.Foraging)
	m.InsertRecent(mkTile(2, 0, 0))
	m.Clear()
	if m.Len() != 0 {
		t.Errorf("Len after Clear = %d", m.Len())
	}
	if m.Allocations()["ab"] != 2 {
		t.Error("Clear should keep the allocation strategy")
	}
}

func TestResetStats(t *testing.T) {
	m := NewManager(2)
	m.Lookup(tile.Coord{Level: 1})
	m.ResetStats()
	if st := m.Stats(); st.Misses != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
}

func TestMemBytes(t *testing.T) {
	m := NewManager(4)
	m.SetAllocations(map[string]int{"ab": 1})
	m.FillPredictions("ab", []*tile.Tile{mkTile(1, 0, 0)}, trace.Foraging)
	m.InsertRecent(mkTile(1, 0, 1))
	if m.MemBytes() <= 0 {
		t.Error("MemBytes should be positive")
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := NewManager(8)
	m.SetAllocations(map[string]int{"ab": 4, "sb": 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tl := mkTile(3, g, i%8)
				switch i % 4 {
				case 0:
					m.InsertRecent(tl)
				case 1:
					m.FillPredictions("ab", []*tile.Tile{tl}, trace.Foraging)
				case 2:
					m.Lookup(tl.Coord)
				default:
					m.SetAllocations(map[string]int{"ab": i % 5, "sb": 4})
				}
			}
		}(g)
	}
	wg.Wait()
	// No race (run with -race) and stats are internally consistent.
	st := m.Stats()
	if st.Hits < 0 || st.Misses < 0 {
		t.Errorf("stats = %+v", st)
	}
}

func BenchmarkLookup(b *testing.B) {
	m := NewManager(8)
	m.SetAllocations(map[string]int{"ab": 4})
	var tiles []*tile.Tile
	for i := 0; i < 4; i++ {
		tiles = append(tiles, mkTile(4, 0, i))
	}
	m.FillPredictions("ab", tiles, trace.Foraging)
	c := tiles[3].Coord
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Lookup(c)
	}
}

func TestInsertPredictionRingBehavior(t *testing.T) {
	m := NewManager(2)
	m.SetAllocations(map[string]int{"ab": 2})
	a, b, c := mkTile(2, 0, 0), mkTile(2, 0, 1), mkTile(2, 1, 0)
	m.InsertPrediction("ab", a, 0, trace.Foraging)
	m.InsertPrediction("ab", b, 1, trace.Foraging)
	if !m.Peek(a.Coord) || !m.Peek(b.Coord) {
		t.Fatal("both inserted predictions should be cached")
	}
	// A third insert evicts the oldest (a).
	m.InsertPrediction("ab", c, 2, trace.Foraging)
	if m.Peek(a.Coord) {
		t.Error("oldest prediction should have been evicted")
	}
	if !m.Peek(b.Coord) || !m.Peek(c.Coord) {
		t.Error("newest two predictions should remain")
	}
	// Re-inserting an existing coordinate refreshes, not duplicates.
	m.InsertPrediction("ab", b, 1, trace.Foraging)
	st := m.Stats()
	if st.Prefetched != 4 {
		t.Errorf("Prefetched = %d, want 4", st.Prefetched)
	}
	if st.Evicted != 1 {
		t.Errorf("Evicted = %d, want 1", st.Evicted)
	}
}

func TestInsertPredictionNoAllotment(t *testing.T) {
	m := NewManager(2)
	m.SetAllocations(map[string]int{"ab": 1})
	m.InsertPrediction("unknown", mkTile(1, 0, 0), 0, trace.Foraging)
	if m.Len() != 0 {
		t.Error("prediction for an unallocated model must be dropped")
	}
}
