package cache

import (
	"testing"
	"time"

	"forecache/internal/obs"
	"forecache/internal/trace"
)

// TestLeadTimeObserved: with a pipeline attached, the first consumption of
// a prefetched entry reports insert-to-consume lead time — exactly once,
// measured on the injected clock.
func TestLeadTimeObserved(t *testing.T) {
	p := obs.NewPipeline(obs.Config{})
	m := NewManager(4)
	m.SetObs(p)
	now := time.Unix(1000, 0)
	m.now = func() time.Time { return now }

	m.SetAllocations(map[string]int{"ab": 2})
	tl := mkTile(1, 0, 0)
	m.InsertPrediction("ab", tl, 0, trace.Foraging)

	now = now.Add(750 * time.Millisecond)
	if _, ok := m.Lookup(tl.Coord); !ok {
		t.Fatal("prefetched tile should hit")
	}
	if _, ok := m.Lookup(tl.Coord); !ok { // second hit: already consumed
		t.Fatal("tile should still hit")
	}

	snap := p.LeadTime.Snapshot()
	if snap.Count != 1 {
		t.Fatalf("lead-time observations = %d, want 1 (first consumption only)", snap.Count)
	}
	if got, want := snap.Sum, 0.75; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("lead time = %vs, want %vs", got, want)
	}
}

// TestLeadTimeMultiModelUsesOldestInsert: when several models predicted
// the tile, one lead-time sample is taken, measured from the earliest
// insert — how far ahead the prefetcher truly ran.
func TestLeadTimeMultiModelUsesOldestInsert(t *testing.T) {
	p := obs.NewPipeline(obs.Config{})
	m := NewManager(4)
	m.SetObs(p)
	now := time.Unix(1000, 0)
	m.now = func() time.Time { return now }

	m.SetAllocations(map[string]int{"ab": 2, "sb": 2})
	tl := mkTile(1, 0, 0)
	m.InsertPrediction("ab", tl, 0, trace.Foraging)
	now = now.Add(400 * time.Millisecond)
	m.InsertPrediction("sb", tl, 0, trace.Foraging)
	now = now.Add(100 * time.Millisecond)

	if _, ok := m.Lookup(tl.Coord); !ok {
		t.Fatal("tile should hit")
	}
	snap := p.LeadTime.Snapshot()
	if snap.Count != 1 {
		t.Fatalf("lead-time observations = %d, want 1", snap.Count)
	}
	if got, want := snap.Sum, 0.5; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("lead time = %vs, want %vs (oldest insert)", got, want)
	}
}

// TestLeadTimeUntrackedWithoutObs: without a pipeline no timestamps are
// stamped, and attaching one later doesn't misreport pre-attach entries.
func TestLeadTimeUntrackedWithoutObs(t *testing.T) {
	m := NewManager(4)
	m.SetAllocations(map[string]int{"ab": 2})
	tl := mkTile(1, 0, 0)
	m.InsertPrediction("ab", tl, 0, trace.Foraging)

	p := obs.NewPipeline(obs.Config{})
	m.SetObs(p) // attached after the insert: entry has no born stamp
	if _, ok := m.Lookup(tl.Coord); !ok {
		t.Fatal("tile should hit")
	}
	if got := p.LeadTime.Snapshot().Count; got != 0 {
		t.Fatalf("lead-time observations = %d, want 0 for unstamped entries", got)
	}
}
