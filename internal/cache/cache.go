// Package cache implements ForeCache's middleware tile cache manager
// (paper §3). The main-memory cache is split into regions: each
// recommendation model is allotted a limited number of tile slots for its
// predictions (the "allocation strategy", re-evaluated after every
// request), and a separate LRU region holds the last n tiles the interface
// actually requested.
package cache

import (
	"container/list"
	"sync"

	"forecache/internal/tile"
)

// Stats counts cache activity. Prediction accuracy in the paper's
// experiments is exactly this cache's hit rate (paper §5.2.2).
type Stats struct {
	Hits       int
	Misses     int
	Prefetched int
	Evicted    int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Manager is the middleware tile cache. It is safe for concurrent use.
type Manager struct {
	mu sync.Mutex

	// model regions: model name -> recently prefetched tiles, capped by the
	// allocation strategy.
	allocs  map[string]int
	regions map[string][]*tile.Tile

	// LRU region for the interface's last n requested tiles.
	recentCap int
	recent    *list.List // of *tile.Tile, front = most recent
	recentIdx map[tile.Coord]*list.Element

	stats Stats
}

// NewManager returns a cache whose LRU region retains the last recentCap
// requested tiles. Model allotments start empty; call SetAllocations.
func NewManager(recentCap int) *Manager {
	if recentCap < 1 {
		recentCap = 1
	}
	return &Manager{
		allocs:    make(map[string]int),
		regions:   make(map[string][]*tile.Tile),
		recentCap: recentCap,
		recent:    list.New(),
		recentIdx: make(map[tile.Coord]*list.Element),
	}
}

// SetAllocations installs a new allocation strategy: tile slots per model.
// Existing model regions are trimmed to the new allotments; models absent
// from the map lose their region entirely.
func (m *Manager) SetAllocations(allocs map[string]int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.allocs = make(map[string]int, len(allocs))
	for name, k := range allocs {
		if k < 0 {
			k = 0
		}
		m.allocs[name] = k
	}
	for name, region := range m.regions {
		k, ok := m.allocs[name]
		if !ok {
			m.stats.Evicted += len(region)
			delete(m.regions, name)
			continue
		}
		if len(region) > k {
			m.stats.Evicted += len(region) - k
			m.regions[name] = region[:k]
		}
	}
}

// Allocations returns a copy of the current allocation strategy.
func (m *Manager) Allocations() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int, len(m.allocs))
	for k, v := range m.allocs {
		out[k] = v
	}
	return out
}

// FillPredictions replaces a model's region with its newest ranked
// predictions, trimmed to the model's allotment. Tiles beyond the
// allotment count as evictions. Unknown models get allotment 0.
func (m *Manager) FillPredictions(model string, tiles []*tile.Tile) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := m.allocs[model]
	old := m.regions[model]
	m.stats.Evicted += len(old)
	if len(tiles) > k {
		tiles = tiles[:k]
	}
	m.regions[model] = append([]*tile.Tile(nil), tiles...)
	m.stats.Prefetched += len(tiles)
}

// InsertPrediction adds one asynchronously prefetched tile to a model's
// region, newest first, trimmed to the model's current allotment. Unlike
// FillPredictions (the synchronous path, which replaces a region with a
// whole ranked batch), tiles delivered by the prefetch scheduler arrive one
// at a time and possibly out of order; the region behaves as a small
// ring: a duplicate coordinate is refreshed in place, and tiles beyond the
// allotment fall off the old end as evictions. A model with no allotment
// drops the tile.
func (m *Manager) InsertPrediction(model string, t *tile.Tile) {
	if t == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := m.allocs[model]
	if k <= 0 {
		return
	}
	region := m.regions[model]
	out := make([]*tile.Tile, 0, len(region)+1)
	out = append(out, t)
	for _, old := range region {
		if old != nil && old.Coord != t.Coord {
			out = append(out, old)
		}
	}
	if len(out) > k {
		m.stats.Evicted += len(out) - k
		out = out[:k]
	}
	m.regions[model] = out
	m.stats.Prefetched++
}

// Lookup returns the cached tile for c from any region, counting a hit or
// miss. The model regions are checked first (prefetched tiles), then the
// recent-request LRU.
func (m *Manager) Lookup(c tile.Coord) (*tile.Tile, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, region := range m.regions {
		for _, t := range region {
			if t != nil && t.Coord == c {
				m.stats.Hits++
				return t, true
			}
		}
	}
	if el, ok := m.recentIdx[c]; ok {
		m.recent.MoveToFront(el)
		m.stats.Hits++
		return el.Value.(*tile.Tile), true
	}
	m.stats.Misses++
	return nil, false
}

// Peek reports whether c is cached without touching statistics or LRU
// order.
func (m *Manager) Peek(c tile.Coord) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, region := range m.regions {
		for _, t := range region {
			if t != nil && t.Coord == c {
				return true
			}
		}
	}
	_, ok := m.recentIdx[c]
	return ok
}

// InsertRecent records a tile the interface actually requested into the
// LRU region, evicting the least recently used past capacity.
func (m *Manager) InsertRecent(t *tile.Tile) {
	if t == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.recentIdx[t.Coord]; ok {
		m.recent.MoveToFront(el)
		el.Value = t
		return
	}
	m.recentIdx[t.Coord] = m.recent.PushFront(t)
	for m.recent.Len() > m.recentCap {
		back := m.recent.Back()
		m.recent.Remove(back)
		delete(m.recentIdx, back.Value.(*tile.Tile).Coord)
		m.stats.Evicted++
	}
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetStats zeroes the counters (e.g. between experiment phases).
func (m *Manager) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}

// Clear empties every region and the LRU (a new session), keeping the
// allocation strategy.
func (m *Manager) Clear() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.regions = make(map[string][]*tile.Tile)
	m.recent.Init()
	m.recentIdx = make(map[tile.Coord]*list.Element)
}

// MemBytes estimates the cache's current tile memory footprint.
func (m *Manager) MemBytes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for _, region := range m.regions {
		for _, t := range region {
			if t != nil {
				total += t.Bytes()
			}
		}
	}
	for el := m.recent.Front(); el != nil; el = el.Next() {
		total += el.Value.(*tile.Tile).Bytes()
	}
	return total
}

// Len returns the number of cached tiles across all regions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.recent.Len()
	for _, region := range m.regions {
		n += len(region)
	}
	return n
}
