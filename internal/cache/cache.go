// Package cache implements ForeCache's middleware tile cache manager
// (paper §3). The main-memory cache is split into regions: each
// recommendation model is allotted a limited number of tile slots for its
// predictions (the "allocation strategy", re-evaluated after every
// request), and a separate LRU region holds the last n tiles the interface
// actually requested.
//
// Lookups are O(1): one coordinate index covers every region (model
// regions and the LRU), maintained on insert and evict, replacing the
// per-request scan of every region slice that used to sit on the request
// hot path.
//
// Beyond serving lookups, the manager attributes each prefetched tile's
// fate to the model region, batch position and predicted analysis phase
// that prefetched it: a tile consumed by a later request is a hit for its
// position, a tile evicted without ever being consumed is a miss. These
// Outcomes are the raw material the prefetch scheduler's learned
// position-utility curve and the adaptive allocation policy's per-(phase,
// model) consumption rates are fit from (Khameleon fits utility from
// observed client consumption); the engine drains them per request via
// TakeOutcomes.
package cache

import (
	"container/list"
	"sort"
	"sync"
	"time"

	"forecache/internal/obs"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

// Stats counts cache activity. Prediction accuracy in the paper's
// experiments is exactly this cache's hit rate (paper §5.2.2).
type Stats struct {
	Hits       int
	Misses     int
	Prefetched int
	Evicted    int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Outcome is the fate of one prefetched tile, attributed to the model
// region that held it, the batch position (0 = the model's top-ranked
// prediction) it was prefetched at, and the analysis phase the allocation
// policy predicted when the prefetch was decided. Hit means a request
// consumed the tile; !Hit means it was evicted without ever being consumed.
// Re-prefetching a still-unconsumed coordinate refreshes the entry in place
// and emits no outcome — the old prediction instance goes unjudged and the
// new one is judged at its own position (and under the phase then in
// effect). The phase lets the feedback loop keep per-(phase, model)
// consumption tallies: the raw signal the adaptive allocation policy
// re-splits the prefetch budget from. Coord names the tile itself, so
// population-level consumers (the cross-session hotspot model) can learn
// WHICH tiles get consumed, not just whose predictions do.
type Outcome struct {
	Model    string
	Position int
	Phase    trace.Phase
	Coord    tile.Coord
	Hit      bool
}

// outcomeBufferCap bounds the pending-outcome buffer so an enabled but
// never-drained manager cannot grow without bound; past the cap the oldest
// outcomes are dropped (the curve fit is an EWMA, losing ancient samples
// is harmless).
const outcomeBufferCap = 4096

// predTile is one model-region slot: the tile plus the attribution needed
// to turn its fate into an Outcome.
type predTile struct {
	t        *tile.Tile
	pos      int         // batch rank the prefetcher assigned (0 = front-runner)
	ph       trace.Phase // predicted phase when the prefetch was decided
	consumed bool        // a request already hit this entry
	// born is the insert time, stamped only when observability is on: the
	// start of the prefetch "lead time" (insert-to-first-consumption)
	// window. Zero when untracked.
	born time.Time
}

// regionRef names one model region holding a coordinate.
type regionRef struct {
	model string
	pt    *predTile
}

// coordEntry is the index record for one coordinate: which model regions
// hold it (several models often agree on the user's next tile) and its LRU
// element when the interface recently requested it.
type coordEntry struct {
	refs   []regionRef
	recent *list.Element
}

// Manager is the middleware tile cache. It is safe for concurrent use.
type Manager struct {
	mu sync.Mutex

	// model regions: model name -> recently prefetched tiles, capped by the
	// allocation strategy, newest/highest-ranked first.
	allocs  map[string]int
	regions map[string][]*predTile

	// byCoord is the unified coordinate index over every region; Lookup and
	// Peek resolve any coordinate with one map access.
	byCoord map[tile.Coord]*coordEntry

	// LRU region for the interface's last n requested tiles.
	recentCap int
	recent    *list.List // of *tile.Tile, front = most recent

	// prefetch-outcome attribution, drained by TakeOutcomes.
	trackOutcomes bool
	outcomes      []Outcome

	// obs, when set, receives the prefetch lead time (insert to first
	// consumption) of every consumed prediction entry. now is the clock
	// used for lead-time stamps (a test seam; time.Now by default).
	obs *obs.Pipeline
	now func() time.Time

	stats Stats
}

// NewManager returns a cache whose LRU region retains the last recentCap
// requested tiles. Model allotments start empty; call SetAllocations.
func NewManager(recentCap int) *Manager {
	if recentCap < 1 {
		recentCap = 1
	}
	return &Manager{
		allocs:    make(map[string]int),
		regions:   make(map[string][]*predTile),
		byCoord:   make(map[tile.Coord]*coordEntry),
		recentCap: recentCap,
		recent:    list.New(),
		now:       time.Now,
	}
}

// SetObs attaches the observability pipeline: prediction entries get
// insert timestamps and every first consumption reports its lead time.
// Nil detaches (the default — untracked entries pay no clock reads).
func (m *Manager) SetObs(p *obs.Pipeline) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.obs = p
}

// TrackOutcomes enables (or disables) prefetch-outcome attribution. Off by
// default so deployments without utility learning pay nothing.
func (m *Manager) TrackOutcomes(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trackOutcomes = on
	if !on {
		m.outcomes = nil
	}
}

// TakeOutcomes returns and clears the prefetch outcomes accumulated since
// the last call: hits recorded at consumption, misses at eviction.
func (m *Manager) TakeOutcomes() []Outcome {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.outcomes
	m.outcomes = nil
	return out
}

// recordOutcomeLocked appends one attribution sample, bounding the buffer.
func (m *Manager) recordOutcomeLocked(o Outcome) {
	if !m.trackOutcomes {
		return
	}
	if len(m.outcomes) >= outcomeBufferCap {
		m.outcomes = m.outcomes[1:]
	}
	m.outcomes = append(m.outcomes, o)
}

// entryForLocked returns (creating) the index record for a coordinate.
func (m *Manager) entryForLocked(c tile.Coord) *coordEntry {
	e := m.byCoord[c]
	if e == nil {
		e = &coordEntry{}
		m.byCoord[c] = e
	}
	return e
}

// dropIfEmptyLocked removes an index record no region points at anymore.
func (m *Manager) dropIfEmptyLocked(c tile.Coord, e *coordEntry) {
	if len(e.refs) == 0 && e.recent == nil {
		delete(m.byCoord, c)
	}
}

// indexAddLocked points the coordinate index at a model-region entry.
func (m *Manager) indexAddLocked(model string, pt *predTile) {
	e := m.entryForLocked(pt.t.Coord)
	for i := range e.refs {
		if e.refs[i].model == model {
			e.refs[i].pt = pt
			return
		}
	}
	e.refs = append(e.refs, regionRef{model: model, pt: pt})
}

// indexRemoveLocked drops one model-region entry from the coordinate index.
func (m *Manager) indexRemoveLocked(model string, c tile.Coord) {
	e := m.byCoord[c]
	if e == nil {
		return
	}
	for i := range e.refs {
		if e.refs[i].model == model {
			e.refs = append(e.refs[:i], e.refs[i+1:]...)
			break
		}
	}
	m.dropIfEmptyLocked(c, e)
}

// evictRegionLocked accounts one region entry's eviction: index removal,
// the Evicted counter, and — for entries never consumed — a miss outcome
// for the position that prefetched them.
func (m *Manager) evictRegionLocked(model string, pt *predTile) {
	m.indexRemoveLocked(model, pt.t.Coord)
	m.stats.Evicted++
	if !pt.consumed {
		m.recordOutcomeLocked(Outcome{Model: model, Position: pt.pos, Phase: pt.ph, Coord: pt.t.Coord, Hit: false})
	}
}

// SetAllocations installs a new allocation strategy: tile slots per model.
// Existing model regions are trimmed to the new allotments; models absent
// from the map lose their region entirely.
func (m *Manager) SetAllocations(allocs map[string]int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.allocs = make(map[string]int, len(allocs))
	for name, k := range allocs {
		if k < 0 {
			k = 0
		}
		m.allocs[name] = k
	}
	for name, region := range m.regions {
		k, ok := m.allocs[name]
		if !ok {
			for _, pt := range region {
				m.evictRegionLocked(name, pt)
			}
			delete(m.regions, name)
			continue
		}
		if len(region) > k {
			for _, pt := range region[k:] {
				m.evictRegionLocked(name, pt)
			}
			m.regions[name] = region[:k]
		}
	}
}

// Allocations returns a copy of the current allocation strategy.
func (m *Manager) Allocations() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int, len(m.allocs))
	for k, v := range m.allocs {
		out[k] = v
	}
	return out
}

// FillPredictions replaces a model's region with its newest ranked
// predictions, trimmed to the model's allotment; a tile's slice index is its
// batch position and ph is the analysis phase the allocation was made under
// (both recorded as the attribution of the entry's eventual outcome). Tiles
// beyond the allotment count as evictions. Unknown models get allotment 0.
// An old entry re-predicted by the new batch is refreshed rather than
// judged: no miss outcome is emitted for it, and the new entry is a fresh
// prediction instance judged at the new position and phase.
func (m *Manager) FillPredictions(model string, tiles []*tile.Tile, ph trace.Phase) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := m.allocs[model]
	old := m.regions[model]
	if len(tiles) > k {
		tiles = tiles[:k]
	}
	incoming := make(map[tile.Coord]bool, len(tiles))
	for _, t := range tiles {
		if t != nil {
			incoming[t.Coord] = true
		}
	}
	for _, pt := range old {
		// The Evicted counter keeps the paper's accounting (a replaced
		// region is evicted wholesale), but only entries that truly leave
		// the cache — not re-predicted coordinates — are judged as misses.
		m.indexRemoveLocked(model, pt.t.Coord)
		m.stats.Evicted++
		if !pt.consumed && !incoming[pt.t.Coord] {
			m.recordOutcomeLocked(Outcome{Model: model, Position: pt.pos, Phase: pt.ph, Coord: pt.t.Coord, Hit: false})
		}
	}
	var born time.Time
	if m.obs != nil {
		born = m.now()
	}
	region := make([]*predTile, 0, len(tiles))
	seen := make(map[tile.Coord]bool, len(tiles))
	for i, t := range tiles {
		if t == nil || seen[t.Coord] {
			continue // keep the index one-entry-per-(coord, model)
		}
		seen[t.Coord] = true
		pt := &predTile{t: t, pos: i, ph: ph, born: born}
		region = append(region, pt)
		m.indexAddLocked(model, pt)
	}
	m.regions[model] = region
	m.stats.Prefetched += len(region)
}

// InsertPrediction adds one asynchronously prefetched tile to a model's
// region, newest first, trimmed to the model's current allotment. pos is
// the batch position the prefetcher ranked the tile at (0 = front-runner)
// and ph the analysis phase predicted when the batch was submitted — the
// attribution its eventual hit/miss outcome is recorded under. Unlike
// FillPredictions (the synchronous path, which replaces a region with a
// whole ranked batch), tiles delivered by the prefetch scheduler arrive one
// at a time and possibly out of order; the region behaves as a small
// ring: a duplicate coordinate is refreshed in place (the old instance goes
// unjudged), and tiles beyond the allotment fall off the old end as
// evictions. A model with no allotment drops the tile.
func (m *Manager) InsertPrediction(model string, t *tile.Tile, pos int, ph trace.Phase) {
	if t == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := m.allocs[model]
	if k <= 0 {
		return
	}
	region := m.regions[model]
	fresh := &predTile{t: t, pos: pos, ph: ph}
	if m.obs != nil {
		fresh.born = m.now()
	}
	out := make([]*predTile, 0, len(region)+1)
	out = append(out, fresh)
	for _, old := range region {
		if old.t.Coord == t.Coord {
			continue // refresh: judged afresh at the new position
		}
		out = append(out, old)
	}
	if len(out) > k {
		for _, evicted := range out[k:] {
			m.evictRegionLocked(model, evicted)
		}
		out = out[:k]
	}
	m.regions[model] = out
	m.indexAddLocked(model, fresh)
	m.stats.Prefetched++
}

// Lookup returns the cached tile for c from any region, counting a hit or
// miss: one index access resolves the model regions (checked first) and the
// recent-request LRU alike. The first consumption of a prefetched entry
// records a hit outcome for the model and batch position that prefetched
// it.
func (m *Manager) Lookup(c tile.Coord) (*tile.Tile, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := m.byCoord[c]; e != nil {
		if len(e.refs) > 0 {
			// Every model that predicted this tile gets consumption credit:
			// models often agree on the user's next tile, and judging only
			// one of them would later count the others' correct predictions
			// as misses at eviction.
			var oldestBorn time.Time
			for _, ref := range e.refs {
				if !ref.pt.consumed {
					ref.pt.consumed = true
					m.recordOutcomeLocked(Outcome{Model: ref.model, Position: ref.pt.pos, Phase: ref.pt.ph, Coord: c, Hit: true})
					if !ref.pt.born.IsZero() && (oldestBorn.IsZero() || ref.pt.born.Before(oldestBorn)) {
						oldestBorn = ref.pt.born
					}
				}
			}
			// One lead-time sample per consumption, measured from the
			// earliest insert among the newly consumed entries: how far
			// ahead of the user the prefetcher ran.
			if m.obs != nil && !oldestBorn.IsZero() {
				m.obs.ObserveLeadTime(m.now().Sub(oldestBorn))
			}
			m.stats.Hits++
			return e.refs[0].pt.t, true
		}
		if e.recent != nil {
			m.recent.MoveToFront(e.recent)
			m.stats.Hits++
			return e.recent.Value.(*tile.Tile), true
		}
	}
	m.stats.Misses++
	return nil, false
}

// Peek reports whether c is cached without touching statistics, outcomes or
// LRU order.
func (m *Manager) Peek(c tile.Coord) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byCoord[c] != nil
}

// Prediction is one live model-region entry, as exposed by Predictions.
type Prediction struct {
	// Model is the region holding the tile.
	Model string
	// Position is the batch rank the prefetcher assigned (0 = front-runner).
	Position int
	// Tile is the cached tile.
	Tile *tile.Tile
}

// Predictions snapshots every live model-region entry in deterministic
// order (model name, then region order: newest batch first). Like Peek it
// is purely observational — no consumption marks, no outcomes, no stats —
// so readers such as push-stream backfill can replay the cache's contents
// without perturbing the feedback loop that judges predictions.
func (m *Manager) Predictions() []Prediction {
	m.mu.Lock()
	defer m.mu.Unlock()
	models := make([]string, 0, len(m.regions))
	total := 0
	for model, region := range m.regions {
		if len(region) > 0 {
			models = append(models, model)
			total += len(region)
		}
	}
	sort.Strings(models)
	out := make([]Prediction, 0, total)
	for _, model := range models {
		for _, pt := range m.regions[model] {
			out = append(out, Prediction{Model: model, Position: pt.pos, Tile: pt.t})
		}
	}
	return out
}

// InsertRecent records a tile the interface actually requested into the
// LRU region, evicting the least recently used past capacity.
func (m *Manager) InsertRecent(t *tile.Tile) {
	if t == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entryForLocked(t.Coord)
	if e.recent != nil {
		m.recent.MoveToFront(e.recent)
		e.recent.Value = t
		return
	}
	e.recent = m.recent.PushFront(t)
	for m.recent.Len() > m.recentCap {
		back := m.recent.Back()
		m.recent.Remove(back)
		c := back.Value.(*tile.Tile).Coord
		if be := m.byCoord[c]; be != nil {
			be.recent = nil
			m.dropIfEmptyLocked(c, be)
		}
		m.stats.Evicted++
	}
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetStats zeroes the counters (e.g. between experiment phases).
func (m *Manager) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}

// Clear empties every region and the LRU (a new session), keeping the
// allocation strategy. Cleared prediction entries are not judged: a session
// reset says nothing about whether the predictions were good.
func (m *Manager) Clear() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.regions = make(map[string][]*predTile)
	m.byCoord = make(map[tile.Coord]*coordEntry)
	m.recent.Init()
	m.outcomes = nil
}

// MemBytes estimates the cache's current tile memory footprint.
func (m *Manager) MemBytes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for _, region := range m.regions {
		for _, pt := range region {
			total += pt.t.Bytes()
		}
	}
	for el := m.recent.Front(); el != nil; el = el.Next() {
		total += el.Value.(*tile.Tile).Bytes()
	}
	return total
}

// Len returns the number of cached tiles across all regions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.recent.Len()
	for _, region := range m.regions {
		n += len(region)
	}
	return n
}
