// Package shard is the serving tier's consistent-hash router: it maps a
// session id to one of N independent shards, and every layer that splits
// per-session state (the server's session tables, the prefetch pipeline's
// per-shard schedulers) routes through the same ring so a session's HTTP
// requests, scheduler queue and eviction bookkeeping all live on one
// shard. Sessions are independent behind the engine factory, so sharding
// the tier is a pure routing concern — this package owns that concern and
// nothing else.
//
// The ring hashes each shard onto many virtual points (FNV-1a 64) and
// routes a key to the first point at or clockwise of the key's hash.
// Virtual points keep the assignment balanced at small N and — the
// consistent-hashing property — changing the shard count moves only the
// sessions whose arc changed owner, instead of reshuffling almost every
// session the way hash(key) % N would. Within one process lifetime the
// mapping is deterministic: the same id always lands on the same shard,
// with no dependency on map iteration order, process start time or
// previous lookups.
package shard

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// vnodes is how many virtual points each shard claims on the ring. 128
// keeps the worst shard within a few percent of the mean at N <= 64 while
// the ring stays small enough that Locate's binary search is ~7 probes.
const vnodes = 128

// point is one virtual node: a position on the ring owned by a shard.
type point struct {
	hash  uint64
	shard int
}

// Ring routes keys to shards. Construct with NewRing; a Ring is immutable
// and safe for concurrent use without synchronization.
type Ring struct {
	n      int
	points []point // sorted by hash ascending
}

// NewRing builds a ring over n shards (n < 1 is treated as 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	r := &Ring{n: n}
	if n == 1 {
		return r // Locate short-circuits; no points needed
	}
	r.points = make([]point, 0, n*vnodes)
	for s := 0; s < n; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: vnodeHash(s, v), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between virtual nodes is astronomically
		// unlikely, but the tie must still break deterministically.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// vnodeHash positions virtual node v of shard s on the ring.
func vnodeHash(s, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte("shard-"))
	h.Write([]byte(strconv.Itoa(s)))
	h.Write([]byte("-vnode-"))
	h.Write([]byte(strconv.Itoa(v)))
	return mix(h.Sum64())
}

// mix is a 64-bit finalizer (MurmurHash3's fmix64). FNV-1a alone has weak
// avalanche in the high bits for short, similar inputs — exactly what
// "shard-1-vnode-7" style vnode names and sequential session ids are —
// which clusters ring positions and unbalances the shards. The finalizer
// diffuses every input bit across the whole word.
func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Shards returns the number of shards the ring routes over.
func (r *Ring) Shards() int { return r.n }

// Locate returns the shard that owns key, always in [0, Shards()). Any
// string is a valid key — empty, unicode, control bytes — and the answer
// is stable: equal keys always land on the same shard.
func (r *Ring) Locate(key string) int {
	if r.n == 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	kh := mix(h.Sum64())
	// First virtual point clockwise of the key's hash; wrap to the start
	// of the ring past the last point.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
