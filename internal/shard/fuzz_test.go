package shard

import "testing"

// FuzzShardRouting: any session id — hostile, empty, unicode, control
// bytes — must hash to a valid shard, the routing must be stable across
// calls and across ring instances, and a 1-shard ring must route
// everything to shard 0 (the pre-sharding single-table path).
func FuzzShardRouting(f *testing.F) {
	f.Add("", uint8(1))
	f.Add("default", uint8(4))
	f.Add("user-42", uint8(3))
	f.Add("日本語セッション", uint8(7))
	f.Add("\x00\xff\xfe", uint8(16))
	f.Add(`injection"}\n`, uint8(2))
	f.Fuzz(func(t *testing.T, id string, raw uint8) {
		n := int(raw%16) + 1
		r := NewRing(n)
		got := r.Locate(id)
		if got < 0 || got >= n {
			t.Fatalf("n=%d Locate(%q) = %d, out of [0,%d)", n, id, got, n)
		}
		if again := r.Locate(id); again != got {
			t.Fatalf("n=%d Locate(%q) unstable: %d then %d", n, id, got, again)
		}
		if fresh := NewRing(n).Locate(id); fresh != got {
			t.Fatalf("n=%d Locate(%q) differs on a fresh ring: %d vs %d", n, id, got, fresh)
		}
		if one := NewRing(1).Locate(id); one != 0 {
			t.Fatalf("1-shard ring routed %q to %d, want 0", id, one)
		}
	})
}
