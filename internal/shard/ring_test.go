package shard

import (
	"fmt"
	"testing"
)

func TestLocateInRangeAndStable(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 16, 64} {
		r := NewRing(n)
		if r.Shards() != n {
			t.Fatalf("Shards() = %d, want %d", r.Shards(), n)
		}
		for i := 0; i < 1000; i++ {
			key := fmt.Sprintf("session-%d", i)
			got := r.Locate(key)
			if got < 0 || got >= n {
				t.Fatalf("n=%d Locate(%q) = %d, out of range", n, key, got)
			}
			if again := r.Locate(key); again != got {
				t.Fatalf("n=%d Locate(%q) unstable: %d then %d", n, key, got, again)
			}
			// A fresh ring over the same N answers identically: routing is a
			// pure function of (key, N), never of ring construction history.
			if fresh := NewRing(n).Locate(key); fresh != got {
				t.Fatalf("n=%d Locate(%q) differs across rings: %d vs %d", n, key, got, fresh)
			}
		}
	}
}

func TestSingleShardAlwaysZero(t *testing.T) {
	r := NewRing(1)
	for _, key := range []string{"", "default", "user-42", "\x00\xff", "日本語", "a b\nc"} {
		if got := r.Locate(key); got != 0 {
			t.Errorf("Locate(%q) = %d, want 0 on a 1-shard ring", key, got)
		}
	}
	if got := NewRing(0).Locate("x"); got != 0 {
		t.Errorf("NewRing(0).Locate = %d, want 0 (clamped to one shard)", got)
	}
	if got := NewRing(-3).Shards(); got != 1 {
		t.Errorf("NewRing(-3).Shards() = %d, want 1", got)
	}
}

// TestBalance: virtual nodes keep the assignment roughly uniform — no
// shard may own a wildly disproportionate share of 10k distinct sessions.
func TestBalance(t *testing.T) {
	const keys = 10000
	for _, n := range []int{2, 4, 8} {
		r := NewRing(n)
		counts := make([]int, n)
		for i := 0; i < keys; i++ {
			counts[r.Locate(fmt.Sprintf("user-%d", i))]++
		}
		mean := keys / n
		for s, c := range counts {
			if c < mean/2 || c > mean*2 {
				t.Errorf("n=%d shard %d owns %d of %d keys (mean %d): unbalanced", n, s, c, keys, mean)
			}
		}
	}
}

// TestConsistency: growing the ring by one shard must move only a bounded
// fraction of sessions — the property that distinguishes a consistent-hash
// ring from hash(key) % N, which reshuffles nearly everything.
func TestConsistency(t *testing.T) {
	const keys = 10000
	r4, r5 := NewRing(4), NewRing(5)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("user-%d", i)
		if r4.Locate(key) != r5.Locate(key) {
			moved++
		}
	}
	// Ideal is 1/5 of keys; allow slack for vnode variance. hash%N would
	// move ~80%.
	if moved > keys*2/5 {
		t.Errorf("4->5 shards moved %d of %d keys, want <= %d (consistent hashing)", moved, keys, keys*2/5)
	}
}

func BenchmarkLocate(b *testing.B) {
	r := NewRing(8)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("session-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Locate(keys[i%len(keys)])
	}
}
