// Package persist gives the deployment's learned state a life beyond the
// process: versioned, checksummed, crash-safe snapshot and restore of the
// small EWMA tables the closed loops fit online (the position-utility
// curve and per-(phase, model) allocation rates, the adaptive allocation
// shares, the cross-session hotspot counters). Without it every deploy or
// crash pays the full warmup tax the paper's offline-trained models were
// meant to avoid; Kyrix and Continuous Prefetch both assume long-lived
// server-side state, and this package is what makes that assumption
// survivable in production.
//
// The design is deliberately conservative:
//
//   - One snapshot file holds one section per state family, each with its
//     own format version and CRC32 checksum over the payload bytes. A
//     section that fails to decode — wrong version, bad checksum, invalid
//     contents — falls back to cold start for THAT family only and logs a
//     warning; it never fails the other families and never crashes the
//     server. Unknown extra sections (a newer binary's state) are ignored.
//   - Writes are atomic: payload to a temp file, fsync, rename over the
//     snapshot path, fsync the directory. A crash mid-write leaves the
//     previous snapshot intact; Restore sweeps orphaned temp files so a
//     crash loop cannot accumulate them, and a temp file is never read as
//     a snapshot.
//   - Saves run on an interval ticker in their own goroutine and once more
//     from Close, so the request path never carries a disk write. Each
//     family's Export snapshots its tables under the owner's own lock.
package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FileName is the snapshot's name inside the state directory.
const FileName = "snapshot.json"

// fileVersion is the envelope format version. Sections carry their own
// versions; this one only changes if the envelope shape itself does.
const fileVersion = 1

// fileMagic identifies a forecache snapshot.
const fileMagic = "forecache-snapshot"

// Restore results per family, surfaced under /stats so operators (and the
// CI warm-restart check) can tell a restored deployment from a cold one.
const (
	ResultRestored = "restored"
	ResultCold     = "cold"
)

// Family is one snapshotted state owner: Export serializes its learned
// tables (under the owner's lock) and Import replaces them, validating
// first — an Import error means the family keeps its cold-start state.
type Family struct {
	// Name keys the family's section in the snapshot file.
	Name string
	// Version is the family's payload format version. A snapshot section
	// with a different version is not decoded (cold start for the family).
	Version int
	// Export returns the family's current state as self-contained bytes.
	Export func() ([]byte, error)
	// Import validates and installs previously exported state.
	Import func([]byte) error
}

// Config tunes a Store.
type Config struct {
	// Dir is the state directory; created on the first save if missing.
	Dir string
	// Interval is the background save cadence. 0 means the 30s default;
	// negative disables the ticker (Close still writes a final snapshot).
	Interval time.Duration
	// Logger receives restore/save warnings. nil logs nothing.
	Logger *slog.Logger

	clock func() time.Time // test seam; nil means time.Now
}

// DefaultInterval is the background snapshot cadence when Config.Interval
// is zero. The tables are tiny (a few KB), so the cost of a save is one
// fsync; half a minute bounds how much learning a crash can lose.
const DefaultInterval = 30 * time.Second

// Status is a point-in-time view of the store for /stats and /metrics.
type Status struct {
	// Path is the snapshot file location.
	Path string `json:"path"`
	// Families maps each registered family to its restore result:
	// "restored", or "cold (reason)".
	Families map[string]string `json:"families"`
	// Restored counts families whose state came from the snapshot.
	Restored int `json:"restored"`
	// Saves and Failures count save attempts since construction.
	Saves    int `json:"saves"`
	Failures int `json:"failures"`
	// LastResult is "ok", "error: ...", or "" before the first attempt.
	LastResult string `json:"last_result,omitempty"`
	// LastSaveUnix is the wall time of the last successful save (0 = none).
	LastSaveUnix int64 `json:"last_save_unix,omitempty"`
	// AgeSeconds is the age of the last successful save, -1 before one.
	AgeSeconds float64 `json:"age_seconds"`
	// LastBytes is the size of the last successful snapshot write;
	// BytesTotal accumulates over the store's lifetime.
	LastBytes  int   `json:"last_bytes"`
	BytesTotal int64 `json:"bytes_total"`
}

// Store snapshots a fixed set of state families into one file.
type Store struct {
	dir      string
	path     string
	families []Family
	interval time.Duration
	logger   *slog.Logger
	now      func() time.Time

	mu        sync.Mutex
	restored  map[string]string
	saves     int
	failures  int
	lastErr   error
	attempted bool
	lastSave  time.Time
	lastBytes int
	bytesTot  int64
	started   bool
	closed    bool
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewStore builds a store over the given families. It neither reads nor
// writes anything yet: call Restore once before serving, Start to begin
// interval saves, Close for the final snapshot.
func NewStore(cfg Config, families ...Family) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("persist: empty state directory")
	}
	if len(families) == 0 {
		return nil, errors.New("persist: no state families registered")
	}
	seen := make(map[string]bool, len(families))
	for _, f := range families {
		if f.Name == "" {
			return nil, errors.New("persist: family with empty name")
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("persist: duplicate family %q", f.Name)
		}
		seen[f.Name] = true
		if f.Export == nil || f.Import == nil {
			return nil, fmt.Errorf("persist: family %q needs both Export and Import", f.Name)
		}
	}
	interval := cfg.Interval
	if interval == 0 {
		interval = DefaultInterval
	}
	now := cfg.clock
	if now == nil {
		now = time.Now
	}
	restored := make(map[string]string, len(families))
	for _, f := range families {
		restored[f.Name] = ResultCold + " (not restored yet)"
	}
	return &Store{
		dir:      cfg.Dir,
		path:     filepath.Join(cfg.Dir, FileName),
		families: append([]Family(nil), families...),
		interval: interval,
		logger:   cfg.Logger,
		now:      now,
		restored: restored,
		done:     make(chan struct{}),
	}, nil
}

// Path returns the snapshot file location.
func (s *Store) Path() string { return s.path }

// envelope is the on-disk file shape.
type envelope struct {
	Magic       string    `json:"magic"`
	Version     int       `json:"version"`
	CreatedUnix int64     `json:"created_unix"`
	Sections    []section `json:"sections"`
}

// section is one family's serialized state. CRC32 (IEEE) covers exactly
// the payload bytes, so a section corrupted in place is detected even when
// the file as a whole still parses.
type section struct {
	Name    string          `json:"name"`
	Version int             `json:"version"`
	CRC32   uint32          `json:"crc32"`
	Payload json.RawMessage `json:"payload"`
}

// Restore sweeps orphaned temp files, reads the snapshot if one exists and
// imports each family's section. Every failure mode — no snapshot, an
// unreadable envelope, a damaged or version-skewed section — degrades to
// cold start (for the file or the single family respectively) with a
// warning; Restore never returns an error and never panics on hostile
// input. Call it once, before the first session is built.
func (s *Store) Restore() map[string]string {
	s.sweepTempFiles()
	cold := func(reason string) map[string]string {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, f := range s.families {
			s.restored[f.Name] = fmt.Sprintf("%s (%s)", ResultCold, reason)
		}
		return copyMap(s.restored)
	}
	raw, err := os.ReadFile(s.path)
	if errors.Is(err, fs.ErrNotExist) {
		return cold("no snapshot")
	}
	if err != nil {
		s.warn("snapshot unreadable; cold start", "path", s.path, "err", err)
		return cold("unreadable: " + err.Error())
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		s.warn("snapshot corrupt; cold start", "path", s.path, "err", err)
		return cold("corrupt envelope")
	}
	if env.Magic != fileMagic {
		s.warn("snapshot has wrong magic; cold start", "path", s.path, "magic", env.Magic)
		return cold("wrong magic")
	}
	if env.Version != fileVersion {
		s.warn("snapshot has unknown file version; cold start", "path", s.path, "version", env.Version)
		return cold(fmt.Sprintf("file version %d", env.Version))
	}
	byName := make(map[string]section, len(env.Sections))
	for _, sec := range env.Sections {
		byName[sec.Name] = sec
	}
	known := make(map[string]bool, len(s.families))
	results := make(map[string]string, len(s.families))
	for _, f := range s.families {
		known[f.Name] = true
		results[f.Name] = s.restoreFamily(f, byName)
	}
	for name := range byName {
		if !known[name] {
			s.warn("snapshot carries unknown section; ignored", "section", name)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, r := range results {
		s.restored[name] = r
	}
	return copyMap(s.restored)
}

// restoreFamily imports one family's section, reporting the result.
func (s *Store) restoreFamily(f Family, byName map[string]section) string {
	sec, ok := byName[f.Name]
	if !ok {
		return ResultCold + " (no section)"
	}
	if sec.Version != f.Version {
		s.warn("snapshot section version mismatch; cold start for family",
			"family", f.Name, "got", sec.Version, "want", f.Version)
		return fmt.Sprintf("%s (section version %d, want %d)", ResultCold, sec.Version, f.Version)
	}
	if crc := crc32.ChecksumIEEE(sec.Payload); crc != sec.CRC32 {
		s.warn("snapshot section checksum mismatch; cold start for family", "family", f.Name)
		return ResultCold + " (checksum mismatch)"
	}
	if err := f.Import(sec.Payload); err != nil {
		s.warn("snapshot section rejected; cold start for family", "family", f.Name, "err", err)
		return ResultCold + " (rejected: " + err.Error() + ")"
	}
	return ResultRestored
}

// sweepTempFiles removes temp files a crashed save left behind, so a crash
// loop cannot accumulate them and a partial write is never mistaken for a
// snapshot (the snapshot path only ever receives complete, renamed files).
func (s *Store) sweepTempFiles() {
	orphans, _ := filepath.Glob(filepath.Join(s.dir, "*.tmp"))
	for _, o := range orphans {
		if err := os.Remove(o); err == nil {
			s.warn("removed orphaned snapshot temp file", "path", o)
		}
	}
}

// Start launches the interval save loop (no-op when the interval is
// negative). Safe to call once; saves run until Close.
func (s *Store) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed || s.interval <= 0 {
		return
	}
	s.started = true
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := s.Save(); err != nil {
					s.warn("background snapshot failed", "err", err)
				}
			case <-s.done:
				return
			}
		}
	}()
}

// Save exports every family and atomically replaces the snapshot file:
// temp file, fsync, rename, directory fsync. A crash at any point leaves
// either the old snapshot or the new one, never a partial file at the
// snapshot path. Safe for concurrent use (saves serialize on the store
// lock; Export snapshots under each owner's lock).
func (s *Store) Save() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveLocked()
}

func (s *Store) saveLocked() error {
	err := s.writeSnapshot()
	s.attempted = true
	s.lastErr = err
	if err != nil {
		s.failures++
		return err
	}
	s.saves++
	s.lastSave = s.now()
	return nil
}

func (s *Store) writeSnapshot() error {
	env := envelope{Magic: fileMagic, Version: fileVersion, CreatedUnix: s.now().Unix()}
	for _, f := range s.families {
		payload, err := f.Export()
		if err != nil {
			return fmt.Errorf("persist: export %q: %w", f.Name, err)
		}
		env.Sections = append(env.Sections, section{
			Name:    f.Name,
			Version: f.Version,
			CRC32:   crc32.ChecksumIEEE(payload),
			Payload: payload,
		})
	}
	raw, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("persist: encode snapshot: %w", err)
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmp := s.path + ".tmp"
	if err := writeFileSync(tmp, raw); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: install snapshot: %w", err)
	}
	syncDir(s.dir)
	s.lastBytes = len(raw)
	s.bytesTot += int64(len(raw))
	return nil
}

// writeFileSync writes data and fsyncs before closing, so the rename that
// follows never installs a file whose contents are still in flight.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so the rename itself is durable. Best-effort:
// some filesystems refuse directory fsync, and losing the rename in a
// power cut just means restoring the previous snapshot.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	_ = d.Sync()
}

// Close stops the interval loop and writes one final snapshot, so learned
// state survives a graceful shutdown without waiting out the ticker.
// Idempotent: only the first call saves; later calls return the last
// save's result.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		err := s.lastErr
		s.mu.Unlock()
		return err
	}
	s.closed = true
	close(s.done)
	s.mu.Unlock()
	s.wg.Wait() // the ticker goroutine may be mid-Save; let it finish
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveLocked()
}

// Status snapshots the store's bookkeeping under one lock hold.
func (s *Store) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Path:       s.path,
		Families:   copyMap(s.restored),
		Saves:      s.saves,
		Failures:   s.failures,
		LastBytes:  s.lastBytes,
		BytesTotal: s.bytesTot,
		AgeSeconds: -1,
	}
	for _, r := range s.restored {
		if r == ResultRestored {
			st.Restored++
		}
	}
	if s.attempted {
		if s.lastErr != nil {
			st.LastResult = "error: " + s.lastErr.Error()
		} else {
			st.LastResult = "ok"
		}
	}
	if !s.lastSave.IsZero() {
		st.LastSaveUnix = s.lastSave.Unix()
		st.AgeSeconds = s.now().Sub(s.lastSave).Seconds()
	}
	return st
}

func (s *Store) warn(msg string, args ...any) {
	if s.logger != nil {
		s.logger.Warn(msg, args...)
	}
}

func copyMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
