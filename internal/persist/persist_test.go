package persist

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeState is a trivially serializable family backing for store tests.
type fakeState struct {
	mu    sync.Mutex
	name  string
	value map[string]int
	fail  bool // Export returns an error when set
}

func (f *fakeState) family(version int) Family {
	return Family{
		Name:    f.name,
		Version: version,
		Export: func() ([]byte, error) {
			f.mu.Lock()
			defer f.mu.Unlock()
			if f.fail {
				return nil, fmt.Errorf("export boom")
			}
			return json.Marshal(f.value)
		},
		Import: func(raw []byte) error {
			var v map[string]int
			if err := json.Unmarshal(raw, &v); err != nil {
				return err
			}
			for _, n := range v {
				if n < 0 {
					return fmt.Errorf("negative value")
				}
			}
			f.mu.Lock()
			defer f.mu.Unlock()
			f.value = v
			return nil
		},
	}
}

func newStore(t *testing.T, dir string, fams ...Family) *Store {
	t.Helper()
	st, err := NewStore(Config{Dir: dir, Interval: -1}, fams...)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a := &fakeState{name: "alpha", value: map[string]int{"x": 3, "y": 9}}
	b := &fakeState{name: "beta", value: map[string]int{"z": 1}}
	st := newStore(t, dir, a.family(1), b.family(2))
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}

	a2 := &fakeState{name: "alpha", value: map[string]int{}}
	b2 := &fakeState{name: "beta", value: map[string]int{}}
	st2 := newStore(t, dir, a2.family(1), b2.family(2))
	results := st2.Restore()
	for fam, r := range results {
		if r != ResultRestored {
			t.Errorf("family %s: %s, want restored", fam, r)
		}
	}
	if a2.value["x"] != 3 || a2.value["y"] != 9 || b2.value["z"] != 1 {
		t.Errorf("restored values wrong: %v %v", a2.value, b2.value)
	}
	status := st2.Status()
	if status.Restored != 2 {
		t.Errorf("Restored = %d, want 2", status.Restored)
	}
}

func TestRestoreNoSnapshotIsCold(t *testing.T) {
	a := &fakeState{name: "alpha", value: map[string]int{"x": 1}}
	st := newStore(t, t.TempDir(), a.family(1))
	results := st.Restore()
	if !strings.HasPrefix(results["alpha"], ResultCold) {
		t.Errorf("restore with no snapshot = %q, want cold", results["alpha"])
	}
	if a.value["x"] != 1 {
		t.Error("cold restore must not touch live state")
	}
	if got := st.Status().Restored; got != 0 {
		t.Errorf("Restored = %d, want 0", got)
	}
}

// TestRestoreCorruptionMatrix damages a valid snapshot in every way the
// issue names and asserts each damaged family cold-starts without a panic
// while intact families still restore.
func TestRestoreCorruptionMatrix(t *testing.T) {
	writeSnapshot := func(t *testing.T, dir string) {
		a := &fakeState{name: "alpha", value: map[string]int{"x": 3}}
		b := &fakeState{name: "beta", value: map[string]int{"z": 7}}
		if err := newStore(t, dir, a.family(1), b.family(1)).Save(); err != nil {
			t.Fatal(err)
		}
	}
	path := func(dir string) string { return filepath.Join(dir, FileName) }

	t.Run("truncated file", func(t *testing.T) {
		dir := t.TempDir()
		writeSnapshot(t, dir)
		raw, err := os.ReadFile(path(dir))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path(dir), raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		a := &fakeState{name: "alpha", value: map[string]int{"live": 1}}
		results := newStore(t, dir, a.family(1)).Restore()
		if !strings.HasPrefix(results["alpha"], ResultCold) {
			t.Errorf("truncated snapshot restored: %q", results["alpha"])
		}
		if a.value["live"] != 1 {
			t.Error("truncated snapshot must leave live state untouched")
		}
	})

	t.Run("empty file", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(path(dir), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		a := &fakeState{name: "alpha"}
		results := newStore(t, dir, a.family(1)).Restore()
		if !strings.HasPrefix(results["alpha"], ResultCold) {
			t.Errorf("empty snapshot restored: %q", results["alpha"])
		}
	})

	t.Run("bad checksum damages only its family", func(t *testing.T) {
		dir := t.TempDir()
		writeSnapshot(t, dir)
		var env envelope
		raw, _ := os.ReadFile(path(dir))
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatal(err)
		}
		for i := range env.Sections {
			if env.Sections[i].Name == "alpha" {
				env.Sections[i].Payload = json.RawMessage(`{"x":9999}`) // CRC now stale
			}
		}
		out, _ := json.Marshal(env)
		if err := os.WriteFile(path(dir), out, 0o644); err != nil {
			t.Fatal(err)
		}
		a := &fakeState{name: "alpha", value: map[string]int{}}
		b := &fakeState{name: "beta", value: map[string]int{}}
		results := newStore(t, dir, a.family(1), b.family(1)).Restore()
		if !strings.Contains(results["alpha"], "checksum") {
			t.Errorf("alpha = %q, want checksum cold start", results["alpha"])
		}
		if results["beta"] != ResultRestored {
			t.Errorf("beta = %q, want restored", results["beta"])
		}
		if len(a.value) != 0 || b.value["z"] != 7 {
			t.Errorf("state after mixed restore: %v %v", a.value, b.value)
		}
	})

	t.Run("wrong section version", func(t *testing.T) {
		dir := t.TempDir()
		writeSnapshot(t, dir) // sections at version 1
		a := &fakeState{name: "alpha"}
		b := &fakeState{name: "beta"}
		results := newStore(t, dir, a.family(2), b.family(1)).Restore()
		if !strings.Contains(results["alpha"], "version") {
			t.Errorf("alpha = %q, want version cold start", results["alpha"])
		}
		if results["beta"] != ResultRestored {
			t.Errorf("beta = %q, want restored", results["beta"])
		}
	})

	t.Run("unknown extra section ignored", func(t *testing.T) {
		dir := t.TempDir()
		writeSnapshot(t, dir) // alpha + beta on disk
		a := &fakeState{name: "alpha"}
		results := newStore(t, dir, a.family(1)).Restore() // beta unknown now
		if results["alpha"] != ResultRestored {
			t.Errorf("alpha = %q, want restored despite unknown sibling", results["alpha"])
		}
		if _, ok := results["beta"]; ok {
			t.Error("unknown section must not appear in results")
		}
	})

	t.Run("import rejection cold-starts only its family", func(t *testing.T) {
		dir := t.TempDir()
		a := &fakeState{name: "alpha", value: map[string]int{"x": -5}} // invalid on import
		b := &fakeState{name: "beta", value: map[string]int{"z": 2}}
		if err := newStore(t, dir, a.family(1), b.family(1)).Save(); err != nil {
			t.Fatal(err)
		}
		a2 := &fakeState{name: "alpha", value: map[string]int{}}
		b2 := &fakeState{name: "beta", value: map[string]int{}}
		results := newStore(t, dir, a2.family(1), b2.family(1)).Restore()
		if !strings.Contains(results["alpha"], "rejected") {
			t.Errorf("alpha = %q, want import rejection", results["alpha"])
		}
		if results["beta"] != ResultRestored {
			t.Errorf("beta = %q, want restored", results["beta"])
		}
	})

	t.Run("wrong magic", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(path(dir), []byte(`{"magic":"other","version":1}`), 0o644); err != nil {
			t.Fatal(err)
		}
		a := &fakeState{name: "alpha"}
		results := newStore(t, dir, a.family(1)).Restore()
		if !strings.HasPrefix(results["alpha"], ResultCold) {
			t.Errorf("wrong-magic snapshot restored: %q", results["alpha"])
		}
	})
}

// TestCrashMidWriteLeavesNoTempFiles simulates a save dying mid-write: the
// orphaned temp file must be swept at the next startup, must never be read
// as a snapshot, and the previous intact snapshot must still restore.
func TestCrashMidWriteLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	a := &fakeState{name: "alpha", value: map[string]int{"x": 42}}
	if err := newStore(t, dir, a.family(1)).Save(); err != nil {
		t.Fatal(err)
	}
	// The crash: a partial, garbage temp file next to the good snapshot.
	tmp := filepath.Join(dir, FileName+".tmp")
	if err := os.WriteFile(tmp, []byte(`{"magic":"forecache-snap`), 0o644); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(dir, "stray.tmp")
	if err := os.WriteFile(other, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	a2 := &fakeState{name: "alpha", value: map[string]int{}}
	results := newStore(t, dir, a2.family(1)).Restore()
	if results["alpha"] != ResultRestored {
		t.Errorf("alpha = %q, want restored from the intact snapshot", results["alpha"])
	}
	if a2.value["x"] != 42 {
		t.Errorf("restored value %v, want the intact snapshot's 42", a2.value)
	}
	for _, p := range []string{tmp, other} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived startup", p)
		}
	}
}

// TestCrashMidWriteWithoutSnapshot: first-ever save dies mid-write. The
// orphan is swept and the family cold-starts; the partial file is never
// parsed.
func TestCrashMidWriteWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, FileName+".tmp")
	if err := os.WriteFile(tmp, []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	a := &fakeState{name: "alpha", value: map[string]int{"live": 1}}
	results := newStore(t, dir, a.family(1)).Restore()
	if !strings.HasPrefix(results["alpha"], ResultCold) {
		t.Errorf("alpha = %q, want cold", results["alpha"])
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("orphan temp file survived startup")
	}
}

func TestSaveFailureIsReportedAndRecovers(t *testing.T) {
	dir := t.TempDir()
	a := &fakeState{name: "alpha", value: map[string]int{"x": 1}, fail: true}
	st := newStore(t, dir, a.family(1))
	if err := st.Save(); err == nil {
		t.Fatal("save with failing export should error")
	}
	status := st.Status()
	if status.Failures != 1 || status.Saves != 0 {
		t.Errorf("failures=%d saves=%d, want 1/0", status.Failures, status.Saves)
	}
	if !strings.HasPrefix(status.LastResult, "error:") {
		t.Errorf("LastResult = %q, want error", status.LastResult)
	}
	if _, err := os.Stat(st.Path()); !os.IsNotExist(err) {
		t.Error("failed save must not install a snapshot")
	}
	// Exports heal; the next save succeeds and the status flips.
	a.mu.Lock()
	a.fail = false
	a.mu.Unlock()
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	status = st.Status()
	if status.LastResult != "ok" || status.Saves != 1 {
		t.Errorf("after recovery: %+v", status)
	}
	if status.LastBytes <= 0 || status.BytesTotal != int64(status.LastBytes) {
		t.Errorf("byte accounting: %+v", status)
	}
}

func TestIntervalTickerSaves(t *testing.T) {
	dir := t.TempDir()
	a := &fakeState{name: "alpha", value: map[string]int{"x": 1}}
	st, err := NewStore(Config{Dir: dir, Interval: 5 * time.Millisecond}, a.family(1))
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(st.Path()); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ticker never wrote a snapshot")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Status().Saves < 1 {
		t.Errorf("saves = %d, want >= 1", st.Status().Saves)
	}
}

func TestCloseWritesFinalSnapshotAndIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	a := &fakeState{name: "alpha", value: map[string]int{"x": 1}}
	st := newStore(t, dir, a.family(1)) // negative interval: no ticker
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(st.Path()); err != nil {
		t.Fatalf("Close did not write a final snapshot: %v", err)
	}
	saves := st.Status().Saves
	if saves != 1 {
		t.Errorf("saves = %d, want 1", saves)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Status().Saves != saves {
		t.Error("second Close must not save again")
	}
}

func TestStatusAge(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	a := &fakeState{name: "alpha", value: map[string]int{}}
	st, err := NewStore(Config{Dir: dir, Interval: -1, clock: func() time.Time { return now }}, a.family(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Status().AgeSeconds; got != -1 {
		t.Errorf("age before any save = %v, want -1", got)
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	now = now.Add(90 * time.Second)
	status := st.Status()
	if status.AgeSeconds != 90 {
		t.Errorf("age = %v, want 90", status.AgeSeconds)
	}
	if status.LastSaveUnix != 1000 {
		t.Errorf("last save = %d, want 1000", status.LastSaveUnix)
	}
}

func TestNewStoreValidation(t *testing.T) {
	a := &fakeState{name: "alpha"}
	cases := []struct {
		name string
		cfg  Config
		fams []Family
	}{
		{"empty dir", Config{}, []Family{a.family(1)}},
		{"no families", Config{Dir: "x"}, nil},
		{"empty family name", Config{Dir: "x"}, []Family{{Name: "", Export: a.family(1).Export, Import: a.family(1).Import}}},
		{"duplicate family", Config{Dir: "x"}, []Family{a.family(1), a.family(1)}},
		{"nil export", Config{Dir: "x"}, []Family{{Name: "a", Import: a.family(1).Import}}},
	}
	for _, tc := range cases {
		if _, err := NewStore(tc.cfg, tc.fams...); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// TestSectionCRCMatchesPayload pins the checksum contract: the CRC32 in a
// section covers exactly the payload bytes as they appear in the file.
func TestSectionCRCMatchesPayload(t *testing.T) {
	dir := t.TempDir()
	a := &fakeState{name: "alpha", value: map[string]int{"x": 3}}
	st := newStore(t, dir, a.family(1))
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(st.Path())
	if err != nil {
		t.Fatal(err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Sections) != 1 {
		t.Fatalf("sections = %d, want 1", len(env.Sections))
	}
	sec := env.Sections[0]
	if got := crc32.ChecksumIEEE(sec.Payload); got != sec.CRC32 {
		t.Errorf("crc over payload bytes = %d, file says %d", got, sec.CRC32)
	}
}
