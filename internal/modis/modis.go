// Package modis synthesizes a NASA-MODIS-like satellite imagery dataset and
// computes the NDSI snow index through the array engine, standing in for the
// 10 TB MODIS archive used in the paper's user study.
//
// The paper's experiments depend on two properties of the data, both of
// which the generator reproduces:
//
//  1. High-NDSI (snow) pixels cluster along mountain ranges — the study's
//     regions of interest were the Rocky Mountains (Task 1), the Swiss Alps
//     (Task 2) and the Andes (Task 3). The generator lays ridged-noise
//     mountain masses along configurable ridgelines at analogous positions.
//  2. Tiles along a zoom path into a range share visual features across
//     zoom levels (multi-scale self-similarity), which fractal noise gives
//     us for free.
//
// The raw data is produced as two reflectance arrays, SVIS (visible light)
// and SSWIR (short-wave infrared), exactly the two MODIS bands the NDSI
// needs. NDSI = (VIS − SWIR) / (VIS + SWIR), computed cell-wise by a UDF
// through the paper's Query 1. Like the study dataset, the result carries
// four attributes: average, minimum, and maximum NDSI over the simulated
// one-week window, plus a land/sea mask.
package modis

import (
	"fmt"
	"math"

	"forecache/internal/array"
)

// Range describes one synthetic mountain range: a ridgeline segment in
// normalized (row, col) coordinates plus a half-width, also normalized.
type Range struct {
	Name           string
	R0, C0, R1, C1 float64 // ridgeline endpoints, fractions of the grid
	Width          float64 // Gaussian half-width, fraction of the grid
	SnowLine       float64 // elevation above which snow persists, 0..1
}

// Continent is an elliptical landmass in normalized coordinates.
type Continent struct {
	Name    string
	CenterR float64
	CenterC float64
	RadiusR float64
	RadiusC float64
}

// Config controls dataset synthesis. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	Seed int64
	Size int // raw grid is Size x Size cells
	Days int // simulated days in the observation window (>=1)

	Ranges     []Range
	Continents []Continent
}

// DefaultConfig returns the world used throughout the experiments: three
// primary mountain ranges at positions analogous to the study's Rockies,
// Alps and Andes, two distractor ranges, and six continental landmasses.
func DefaultConfig(seed int64, size int) Config {
	return Config{
		Seed: seed,
		Size: size,
		Days: 3,
		Ranges: []Range{
			{Name: "rockies", R0: 0.22, C0: 0.14, R1: 0.40, C1: 0.21, Width: 0.045, SnowLine: 0.42},
			{Name: "alps", R0: 0.285, C0: 0.515, R1: 0.305, C1: 0.565, Width: 0.028, SnowLine: 0.48},
			{Name: "andes", R0: 0.58, C0: 0.305, R1: 0.82, C1: 0.285, Width: 0.030, SnowLine: 0.45},
			{Name: "himalaya", R0: 0.33, C0: 0.70, R1: 0.36, C1: 0.78, Width: 0.035, SnowLine: 0.40},
			{Name: "caucasus", R0: 0.30, C0: 0.60, R1: 0.315, C1: 0.64, Width: 0.02, SnowLine: 0.55},
		},
		Continents: []Continent{
			{Name: "north-america", CenterR: 0.28, CenterC: 0.20, RadiusR: 0.17, RadiusC: 0.16},
			{Name: "south-america", CenterR: 0.68, CenterC: 0.32, RadiusR: 0.18, RadiusC: 0.10},
			{Name: "europe", CenterR: 0.27, CenterC: 0.54, RadiusR: 0.09, RadiusC: 0.08},
			{Name: "africa", CenterR: 0.52, CenterC: 0.55, RadiusR: 0.16, RadiusC: 0.11},
			{Name: "asia", CenterR: 0.30, CenterC: 0.72, RadiusR: 0.14, RadiusC: 0.17},
			{Name: "australia", CenterR: 0.72, CenterC: 0.82, RadiusR: 0.08, RadiusC: 0.09},
		},
	}
}

// Dataset holds the synthesized raw band arrays for one day window plus the
// static land/sea mask.
type Dataset struct {
	Config Config
	// VIS[d] and SWIR[d] are the band arrays for day d.
	VIS  []*array.Array
	SWIR []*array.Array
	Mask *array.Array // 1 = land, 0 = sea
}

// Generate synthesizes the raw reflectance bands.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("modis: size must be positive, got %d", cfg.Size)
	}
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	ds := &Dataset{Config: cfg}
	n := cfg.Size

	mkSchema := func(name string) array.Schema {
		return array.Schema{
			Name:  name,
			Attrs: []string{"reflectance"},
			Dims: [2]array.Dim{
				{Name: "latitude", Size: n},
				{Name: "longitude", Size: n},
			},
		}
	}
	ds.Mask = array.NewZero(array.Schema{
		Name:  "MASK",
		Attrs: []string{"mask"},
		Dims: [2]array.Dim{
			{Name: "latitude", Size: n},
			{Name: "longitude", Size: n},
		},
	})
	maskData, err := ds.Mask.AttrData("mask")
	if err != nil {
		return nil, err
	}

	// Static per-cell fields: land mask, elevation, base snow probability.
	elev := make([]float64, n*n)
	for r := 0; r < n; r++ {
		pr := (float64(r) + 0.5) / float64(n)
		for c := 0; c < n; c++ {
			pc := (float64(c) + 0.5) / float64(n)
			i := r*n + c
			if cfg.isLand(pr, pc) {
				maskData[i] = 1
			}
			elev[i] = cfg.elevation(pr, pc)
		}
	}

	for day := 0; day < cfg.Days; day++ {
		vis := array.NewZero(mkSchema(fmt.Sprintf("SVIS_day%d", day)))
		swir := array.NewZero(mkSchema(fmt.Sprintf("SSWIR_day%d", day)))
		visData, err := vis.AttrData("reflectance")
		if err != nil {
			return nil, err
		}
		swirData, err := swir.AttrData("reflectance")
		if err != nil {
			return nil, err
		}
		daySeed := cfg.Seed + int64(day+1)*7919
		for r := 0; r < n; r++ {
			pr := (float64(r) + 0.5) / float64(n)
			for c := 0; c < n; c++ {
				pc := (float64(c) + 0.5) / float64(n)
				i := r*n + c
				if maskData[i] == 0 {
					// Ocean: dark in VIS, moderately bright in SWIR -> NDSI well
					// below zero. The study filtered these with the mask.
					visData[i] = 0.04 + 0.02*fbm(pc*40, pr*40, daySeed+11, 2, 2, 0.5)
					swirData[i] = 0.10 + 0.03*fbm(pc*40, pr*40, daySeed+13, 2, 2, 0.5)
					continue
				}
				snow := cfg.snowCover(pr, pc, elev[i], daySeed)
				// Snow is bright in the visible band and dark in short-wave
				// infrared; bare land is the reverse (Rittger et al.).
				visNoise := 0.05 * (fbm(pc*90, pr*90, daySeed+17, 3, 2.2, 0.5) - 0.5)
				swirNoise := 0.04 * (fbm(pc*90, pr*90, daySeed+19, 3, 2.2, 0.5) - 0.5)
				visData[i] = clamp01(0.18 + 0.62*snow + visNoise)
				swirData[i] = clamp01(0.42 - 0.36*snow + swirNoise)
			}
		}
		ds.VIS = append(ds.VIS, vis)
		ds.SWIR = append(ds.SWIR, swir)
	}
	return ds, nil
}

// isLand reports whether normalized point (pr, pc) is on a continent. The
// coastline is roughened with low-frequency noise.
func (cfg Config) isLand(pr, pc float64) bool {
	for _, ct := range cfg.Continents {
		dr := (pr - ct.CenterR) / ct.RadiusR
		dc := (pc - ct.CenterC) / ct.RadiusC
		d := dr*dr + dc*dc
		edge := 1 + 0.35*(fbm(pc*12, pr*12, cfg.Seed+int64(len(ct.Name)), 3, 2, 0.5)-0.5)
		if d < edge {
			return true
		}
	}
	return false
}

// elevation returns terrain height in [0,1]: ridged noise shaped by the
// distance to the nearest mountain ridgeline, plus gentle continental
// relief so lowlands are not perfectly flat.
func (cfg Config) elevation(pr, pc float64) float64 {
	base := 0.12 * fbm(pc*6, pr*6, cfg.Seed+101, 3, 2, 0.5)
	best := 0.0
	for ri, rg := range cfg.Ranges {
		d := segDist(pr, pc, rg.R0, rg.C0, rg.R1, rg.C1)
		mass := math.Exp(-(d * d) / (2 * rg.Width * rg.Width))
		if mass < 1e-4 {
			continue
		}
		relief := 0.55 + 0.45*ridged(pc*48, pr*48, cfg.Seed+int64(ri+1)*31337, 4)
		if v := mass * relief; v > best {
			best = v
		}
	}
	return clamp01(base + best)
}

// snowCover maps elevation and day-varying weather noise to snow fraction.
func (cfg Config) snowCover(pr, pc, elev float64, daySeed int64) float64 {
	// Latitude term: polar margins accumulate snow regardless of elevation,
	// matching the bright caps visible in real MODIS NDSI composites.
	polar := 0.0
	if pr < 0.09 {
		polar = (0.09 - pr) / 0.09
	} else if pr > 0.93 {
		polar = (pr - 0.93) / 0.07
	}
	weather := 0.12 * (fbm(pc*25, pr*25, daySeed+23, 3, 2, 0.5) - 0.5)
	snowLine := 0.45
	for _, rg := range cfg.Ranges {
		d := segDist(pr, pc, rg.R0, rg.C0, rg.R1, rg.C1)
		if d < rg.Width*3 {
			snowLine = rg.SnowLine
			break
		}
	}
	s := (elev-snowLine)/0.18 + weather + polar*1.5
	return clamp01(s)
}

// LoadInto stores the raw band arrays and mask into the database under the
// names the paper's pipeline expects (SVIS_day<i>, SSWIR_day<i>, MASK) and
// registers the ndsi_func UDF.
func (d *Dataset) LoadInto(db *array.Database) {
	for i := range d.VIS {
		db.Store(fmt.Sprintf("SVIS_day%d", i), d.VIS[i])
		db.Store(fmt.Sprintf("SSWIR_day%d", i), d.SWIR[i])
	}
	db.Store("MASK", d.Mask)
	db.RegisterUDF("ndsi_func", NDSIFunc)
}

// NDSIFunc is the Normalized Difference Snow Index UDF:
// (visible − short-wave infrared) / (visible + short-wave infrared).
func NDSIFunc(args []float64) float64 {
	vis, swir := args[0], args[1]
	den := vis + swir
	if den == 0 {
		return 0
	}
	return (vis - swir) / den
}

// BuildNDSI runs the paper's Query 1 once per simulated day and folds the
// per-day NDSI values into a single array with the study dataset's four
// attributes: ndsi_avg, ndsi_min, ndsi_max and mask. The result is stored
// in the database as "NDSI" and returned.
func BuildNDSI(db *array.Database, days int) (*array.Array, error) {
	if days <= 0 {
		return nil, fmt.Errorf("modis: days must be positive, got %d", days)
	}
	var daily []*array.Array
	for day := 0; day < days; day++ {
		// Query 1 from the paper, per day window.
		q := fmt.Sprintf(
			"store(apply(join(SVIS_day%d, SSWIR_day%d), ndsi, ndsi_func(SVIS_day%d.reflectance, SSWIR_day%d.reflectance)), NDSI_day%d)",
			day, day, day, day, day)
		out, err := db.Query(q)
		if err != nil {
			return nil, fmt.Errorf("modis: day %d NDSI: %w", day, err)
		}
		proj, err := out.Project("ndsi")
		if err != nil {
			return nil, err
		}
		daily = append(daily, proj)
	}
	mask, err := db.Get("MASK")
	if err != nil {
		return nil, err
	}

	n0 := daily[0].Rows()
	n1 := daily[0].Cols()
	result := array.NewZero(array.Schema{
		Name:  "NDSI",
		Attrs: []string{"ndsi_avg", "ndsi_min", "ndsi_max", "mask"},
		Dims: [2]array.Dim{
			{Name: "latitude", Size: n0},
			{Name: "longitude", Size: n1},
		},
	})
	avg, _ := result.AttrData("ndsi_avg")
	mn, _ := result.AttrData("ndsi_min")
	mx, _ := result.AttrData("ndsi_max")
	outMask, _ := result.AttrData("mask")
	srcMask, err := mask.AttrData("mask")
	if err != nil {
		return nil, err
	}
	cells := n0 * n1
	dayData := make([][]float64, len(daily))
	for i, d := range daily {
		if d.Rows() != n0 || d.Cols() != n1 {
			return nil, fmt.Errorf("modis: day %d shape mismatch", i)
		}
		if dayData[i], err = d.AttrData("ndsi"); err != nil {
			return nil, err
		}
	}
	for c := 0; c < cells; c++ {
		lo, hi, sum := math.Inf(1), math.Inf(-1), 0.0
		cnt := 0
		for _, dd := range dayData {
			v := dd[c]
			if math.IsNaN(v) {
				continue
			}
			cnt++
			sum += v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if cnt == 0 {
			avg[c], mn[c], mx[c] = math.NaN(), math.NaN(), math.NaN()
		} else {
			avg[c], mn[c], mx[c] = sum/float64(cnt), lo, hi
		}
		outMask[c] = srcMask[c]
	}
	db.Store("NDSI", result)
	// Free the per-day intermediates like the paper's pipeline would.
	for day := range daily {
		db.Remove(fmt.Sprintf("NDSI_day%d", day))
	}
	return db.Get("NDSI")
}

// BuildWorld is the one-call convenience used by examples and experiments:
// it generates the dataset, loads it, and materializes the NDSI array.
func BuildWorld(db *array.Database, seed int64, size int) (*array.Array, error) {
	cfg := DefaultConfig(seed, size)
	ds, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	ds.LoadInto(db)
	return BuildNDSI(db, cfg.Days)
}

// StudyRegions exposes the three task regions (normalized bounding boxes)
// corresponding to the paper's browsing tasks, so the study simulator and
// examples can aim users at the right parts of the world.
func StudyRegions() map[string][4]float64 {
	return map[string][4]float64{
		// r0, c0, r1, c1 fractions: region the task text names.
		"task1-us":            {0.16, 0.08, 0.46, 0.30}, // continental United States
		"task2-europe":        {0.22, 0.48, 0.38, 0.62}, // western Europe
		"task3-south-america": {0.52, 0.24, 0.88, 0.40},
	}
}
