package modis

import (
	"math"
	"testing"
	"testing/quick"

	"forecache/internal/array"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(42, 64)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	av, _ := a.VIS[0].AttrData("reflectance")
	bv, _ := b.VIS[0].AttrData("reflectance")
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("cell %d differs across runs: %v vs %v", i, av[i], bv[i])
		}
	}
}

func TestGenerateSeedChangesField(t *testing.T) {
	a, err := Generate(DefaultConfig(1, 32))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(2, 32))
	if err != nil {
		t.Fatal(err)
	}
	av, _ := a.VIS[0].AttrData("reflectance")
	bv, _ := b.VIS[0].AttrData("reflectance")
	same := 0
	for i := range av {
		if av[i] == bv[i] {
			same++
		}
	}
	if same == len(av) {
		t.Error("different seeds produced identical fields")
	}
}

func TestGenerateRejectsBadSize(t *testing.T) {
	if _, err := Generate(Config{Size: 0}); err == nil {
		t.Error("Generate with size 0 should fail")
	}
}

func TestReflectanceInRange(t *testing.T) {
	ds, err := Generate(DefaultConfig(7, 64))
	if err != nil {
		t.Fatal(err)
	}
	for day := range ds.VIS {
		for _, arr := range []*array.Array{ds.VIS[day], ds.SWIR[day]} {
			data, _ := arr.AttrData("reflectance")
			for i, v := range data {
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("day %d cell %d reflectance %v out of [0,1]", day, i, v)
				}
			}
		}
	}
}

func TestBuildNDSIShapeAndAttrs(t *testing.T) {
	db := array.NewDatabase()
	ndsi, err := BuildWorld(db, 5, 64)
	if err != nil {
		t.Fatalf("BuildWorld: %v", err)
	}
	want := []string{"ndsi_avg", "ndsi_min", "ndsi_max", "mask"}
	got := ndsi.Schema().Attrs
	if len(got) != len(want) {
		t.Fatalf("attrs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("attrs = %v, want %v", got, want)
		}
	}
	if ndsi.Rows() != 64 || ndsi.Cols() != 64 {
		t.Errorf("shape = %dx%d, want 64x64", ndsi.Rows(), ndsi.Cols())
	}
}

func TestNDSIBoundsAndOrdering(t *testing.T) {
	db := array.NewDatabase()
	ndsi, err := BuildWorld(db, 11, 96)
	if err != nil {
		t.Fatal(err)
	}
	avg, _ := ndsi.AttrData("ndsi_avg")
	mn, _ := ndsi.AttrData("ndsi_min")
	mx, _ := ndsi.AttrData("ndsi_max")
	for i := range avg {
		if math.IsNaN(avg[i]) {
			continue
		}
		if avg[i] < -1-1e-9 || avg[i] > 1+1e-9 {
			t.Fatalf("ndsi_avg[%d] = %v outside [-1,1]", i, avg[i])
		}
		if !(mn[i] <= avg[i]+1e-12 && avg[i] <= mx[i]+1e-12) {
			t.Fatalf("ordering violated at %d: min=%v avg=%v max=%v", i, mn[i], avg[i], mx[i])
		}
	}
}

func TestMountainRangesAreSnowy(t *testing.T) {
	db := array.NewDatabase()
	size := 128
	ndsi, err := BuildWorld(db, 3, size)
	if err != nil {
		t.Fatal(err)
	}
	avg, _ := ndsi.AttrData("ndsi_avg")

	meanOver := func(r0, c0, r1, c1 float64) float64 {
		sum, n := 0.0, 0
		for r := int(r0 * float64(size)); r < int(r1*float64(size)); r++ {
			for c := int(c0 * float64(size)); c < int(c1*float64(size)); c++ {
				v := avg[r*size+c]
				if !math.IsNaN(v) {
					sum += v
					n++
				}
			}
		}
		if n == 0 {
			return math.NaN()
		}
		return sum / float64(n)
	}

	for _, rg := range DefaultConfig(3, size).Ranges[:3] { // rockies, alps, andes
		cr, cc := (rg.R0+rg.R1)/2, (rg.C0+rg.C1)/2
		w := rg.Width
		core := meanOver(cr-w, cc-w, cr+w, cc+w)
		// A lowland patch on the same continent but away from any range.
		lowland := meanOver(0.50, 0.52, 0.54, 0.56) // central Africa: land, no range
		if !(core > lowland) {
			t.Errorf("%s core NDSI %.3f should exceed lowland %.3f", rg.Name, core, lowland)
		}
		if core < 0 {
			t.Errorf("%s core NDSI %.3f should be positive (snowy)", rg.Name, core)
		}
	}
}

func TestOceanHasNegativeNDSIAndMaskZero(t *testing.T) {
	db := array.NewDatabase()
	size := 96
	ndsi, err := BuildWorld(db, 9, size)
	if err != nil {
		t.Fatal(err)
	}
	avg, _ := ndsi.AttrData("ndsi_avg")
	mask, _ := ndsi.AttrData("mask")
	// Mid-Pacific analogue: far from every continent ellipse.
	r, c := int(0.5*float64(size)), int(0.02*float64(size))
	i := r*size + c
	if mask[i] != 0 {
		t.Fatalf("open-ocean mask = %v, want 0", mask[i])
	}
	if avg[i] >= 0 {
		t.Errorf("ocean NDSI = %v, want negative", avg[i])
	}
	// Mask must be binary everywhere.
	for i, m := range mask {
		if m != 0 && m != 1 {
			t.Fatalf("mask[%d] = %v, want 0 or 1", i, m)
		}
	}
}

func TestBuildNDSIRejectsBadDays(t *testing.T) {
	db := array.NewDatabase()
	if _, err := BuildNDSI(db, 0); err == nil {
		t.Error("BuildNDSI(0 days) should fail")
	}
}

func TestNDSIFuncProperties(t *testing.T) {
	if got := NDSIFunc([]float64{0, 0}); got != 0 {
		t.Errorf("NDSI(0,0) = %v, want 0 (guarded division)", got)
	}
	f := func(vis, swir float64) bool {
		vis, swir = math.Abs(vis), math.Abs(swir)
		if vis+swir == 0 {
			return NDSIFunc([]float64{vis, swir}) == 0
		}
		v := NDSIFunc([]float64{vis, swir})
		return v >= -1-1e-9 && v <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Snowy pixel (bright VIS, dark SWIR) must score higher than bare rock.
	snow := NDSIFunc([]float64{0.8, 0.05})
	rock := NDSIFunc([]float64{0.2, 0.5})
	if snow <= rock {
		t.Errorf("snow NDSI %v should exceed rock %v", snow, rock)
	}
}

func TestStudyRegionsCoverRanges(t *testing.T) {
	regions := StudyRegions()
	cfg := DefaultConfig(0, 64)
	contains := func(box [4]float64, pr, pc float64) bool {
		return pr >= box[0] && pr <= box[2] && pc >= box[1] && pc <= box[3]
	}
	checks := []struct {
		region string
		rng    string
	}{
		{"task1-us", "rockies"},
		{"task2-europe", "alps"},
		{"task3-south-america", "andes"},
	}
	for _, chk := range checks {
		box, ok := regions[chk.region]
		if !ok {
			t.Fatalf("missing region %q", chk.region)
		}
		found := false
		for _, rg := range cfg.Ranges {
			if rg.Name == chk.rng {
				mr, mc := (rg.R0+rg.R1)/2, (rg.C0+rg.C1)/2
				found = contains(box, mr, mc)
			}
		}
		if !found {
			t.Errorf("region %q does not contain range %q midpoint", chk.region, chk.rng)
		}
	}
}

func BenchmarkGenerate128(b *testing.B) {
	cfg := DefaultConfig(1, 128)
	cfg.Days = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
