package modis

import "math"

// Deterministic coherent noise used to synthesize reflectance fields.
// hash-based value noise with bilinear interpolation and smoothstep easing,
// combined into fractal Brownian motion (fbm) and a ridged variant for
// mountainous terrain. Everything is a pure function of (seed, x, y) so the
// dataset is reproducible bit-for-bit.

// hash2 maps lattice coordinates and a seed to a pseudo-random float in [0,1).
func hash2(ix, iy int64, seed int64) float64 {
	h := uint64(ix)*0x9E3779B185EBCA87 ^ uint64(iy)*0xC2B2AE3D27D4EB4F ^ uint64(seed)*0x165667B19E3779F9
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	h *= 0xC4CEB9FE1A85EC53
	h ^= h >> 33
	return float64(h>>11) / float64(1<<53)
}

func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// valueNoise evaluates single-octave value noise at (x, y) in lattice units.
func valueNoise(x, y float64, seed int64) float64 {
	x0, y0 := math.Floor(x), math.Floor(y)
	ix, iy := int64(x0), int64(y0)
	fx, fy := smoothstep(x-x0), smoothstep(y-y0)
	v00 := hash2(ix, iy, seed)
	v10 := hash2(ix+1, iy, seed)
	v01 := hash2(ix, iy+1, seed)
	v11 := hash2(ix+1, iy+1, seed)
	top := v00 + (v10-v00)*fx
	bot := v01 + (v11-v01)*fx
	return top + (bot-top)*fy
}

// fbm sums octaves of value noise, normalized to [0,1].
func fbm(x, y float64, seed int64, octaves int, lacunarity, gain float64) float64 {
	sum, amp, norm := 0.0, 1.0, 0.0
	freq := 1.0
	for o := 0; o < octaves; o++ {
		sum += amp * valueNoise(x*freq, y*freq, seed+int64(o)*1315423911)
		norm += amp
		amp *= gain
		freq *= lacunarity
	}
	return sum / norm
}

// ridged produces ridge-like fractal noise in [0,1]: sharp crests where the
// underlying noise crosses 0.5, which reads as mountain ridgelines.
func ridged(x, y float64, seed int64, octaves int) float64 {
	sum, amp, norm := 0.0, 1.0, 0.0
	freq := 1.0
	for o := 0; o < octaves; o++ {
		v := valueNoise(x*freq, y*freq, seed+int64(o)*2654435761)
		r := 1 - math.Abs(2*v-1) // fold around the midline
		sum += amp * r * r
		norm += amp
		amp *= 0.5
		freq *= 2.1
	}
	return sum / norm
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// segDist returns the distance from point p to the segment a-b, with all
// points given as (row, col) pairs in normalized [0,1] coordinates.
func segDist(pr, pc, ar, ac, br, bc float64) float64 {
	dr, dc := br-ar, bc-ac
	l2 := dr*dr + dc*dc
	if l2 == 0 {
		return math.Hypot(pr-ar, pc-ac)
	}
	t := ((pr-ar)*dr + (pc-ac)*dc) / l2
	t = clamp01(t)
	return math.Hypot(pr-(ar+t*dr), pc-(ac+t*dc))
}
