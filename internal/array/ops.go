package array

import (
	"fmt"
	"math"
)

// UDF is a cell-wise user-defined function: it receives one value per input
// attribute (in the order given at the call site) and returns the output
// cell value. The paper's NDSI snow index is expressed as a UDF.
type UDF func(args []float64) float64

// Apply evaluates a UDF cell-wise over the named input attributes and
// returns a new array that contains all original attributes plus the result
// stored under newAttr, mirroring SciDB's apply() operator.
func (a *Array) Apply(newAttr string, fn UDF, inAttrs ...string) (*Array, error) {
	idx := make([]int, len(inAttrs))
	for i, name := range inAttrs {
		j := a.schema.AttrIndex(name)
		if j < 0 {
			return nil, fmt.Errorf("%w: %q in %s", ErrNoAttr, name, a.schema.Name)
		}
		idx[i] = j
	}
	if a.schema.AttrIndex(newAttr) >= 0 {
		return nil, fmt.Errorf("array: attribute %q already exists in %s", newAttr, a.schema.Name)
	}
	out := &Array{
		schema: Schema{
			Name:  a.schema.Name,
			Attrs: append(append([]string(nil), a.schema.Attrs...), newAttr),
			Dims:  a.schema.Dims,
		},
		data: append(append([][]float64(nil), a.data...), nil),
	}
	n := a.NumCells()
	res := make([]float64, n)
	args := make([]float64, len(idx))
	for c := 0; c < n; c++ {
		empty := false
		for i, j := range idx {
			v := a.data[j][c]
			if math.IsNaN(v) {
				empty = true
				break
			}
			args[i] = v
		}
		if empty {
			res[c] = math.NaN()
			continue
		}
		res[c] = fn(args)
	}
	out.data[len(out.data)-1] = res
	return out, nil
}

// Join performs SciDB's implicit equi-join on dimensions: both arrays must
// have identical dimension extents; the result carries the attributes of
// both inputs. Attribute name collisions are disambiguated by prefixing the
// right array's name ("B.reflectance" style flattened to "B_reflectance").
func Join(a, b *Array) (*Array, error) {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return nil, fmt.Errorf("%w: join %s with %s", ErrShape, a.schema, b.schema)
	}
	attrs := append([]string(nil), a.schema.Attrs...)
	data := append([][]float64(nil), a.data...)
	for i, name := range b.schema.Attrs {
		out := name
		if a.schema.AttrIndex(name) >= 0 {
			out = b.schema.Name + "_" + name
		}
		attrs = append(attrs, out)
		data = append(data, b.data[i])
	}
	return &Array{
		schema: Schema{Name: a.schema.Name, Attrs: attrs, Dims: a.schema.Dims},
		data:   data,
	}, nil
}

// Agg identifies a windowed aggregation function for Regrid.
type Agg int

// Supported aggregation functions.
const (
	AggAvg Agg = iota
	AggSum
	AggMin
	AggMax
	AggCount
)

// ParseAgg maps an AFL aggregate name ("avg", "sum", ...) to an Agg.
func ParseAgg(name string) (Agg, error) {
	switch name {
	case "avg":
		return AggAvg, nil
	case "sum":
		return AggSum, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "count":
		return AggCount, nil
	}
	return 0, fmt.Errorf("array: unknown aggregate %q", name)
}

// String returns the AFL name of the aggregate.
func (g Agg) String() string {
	switch g {
	case AggAvg:
		return "avg"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	}
	return "agg?"
}

// Regrid aggregates non-overlapping j0 x j1 windows of every attribute into
// single cells, producing an array of size ceil(rows/j0) x ceil(cols/j1).
// This is the paper's materialized-view builder: aggregation parameters
// (j0, j1) control how much detail the resulting zoom level retains
// (Figure 3 shows a 16x16 array regridded with (2,2) into 8x8). NaN cells
// are treated as empty and excluded; a window with no valid cells yields NaN
// (0 for count).
func (a *Array) Regrid(j0, j1 int, agg Agg) (*Array, error) {
	if j0 <= 0 || j1 <= 0 {
		return nil, fmt.Errorf("array: regrid intervals must be positive, got (%d,%d)", j0, j1)
	}
	outRows := (a.Rows() + j0 - 1) / j0
	outCols := (a.Cols() + j1 - 1) / j1
	out := &Array{
		schema: Schema{
			Name:  a.schema.Name,
			Attrs: append([]string(nil), a.schema.Attrs...),
			Dims: [2]Dim{
				{Name: a.schema.Dims[0].Name, Size: outRows},
				{Name: a.schema.Dims[1].Name, Size: outCols},
			},
		},
		data: make([][]float64, len(a.data)),
	}
	for ai, src := range a.data {
		dst := make([]float64, outRows*outCols)
		for or := 0; or < outRows; or++ {
			r0, r1 := or*j0, min((or+1)*j0, a.Rows())
			for oc := 0; oc < outCols; oc++ {
				c0, c1 := oc*j1, min((oc+1)*j1, a.Cols())
				dst[or*outCols+oc] = aggregateWindow(src, a.Cols(), r0, r1, c0, c1, agg)
			}
		}
		out.data[ai] = dst
	}
	return out, nil
}

func aggregateWindow(src []float64, cols, r0, r1, c0, c1 int, agg Agg) float64 {
	var sum, mn, mx float64
	mn, mx = math.Inf(1), math.Inf(-1)
	n := 0
	for r := r0; r < r1; r++ {
		base := r * cols
		for c := c0; c < c1; c++ {
			v := src[base+c]
			if math.IsNaN(v) {
				continue
			}
			n++
			sum += v
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
	}
	if agg == AggCount {
		return float64(n)
	}
	if n == 0 {
		return math.NaN()
	}
	switch agg {
	case AggAvg:
		return sum / float64(n)
	case AggSum:
		return sum
	case AggMin:
		return mn
	case AggMax:
		return mx
	}
	return math.NaN()
}

// Subarray returns the rectangular region [r0,r1) x [c0,c1) as a new array.
// Regions extending past the array edge are clipped; the result keeps the
// requested size with NaN padding so tiles at dataset borders stay uniform.
func (a *Array) Subarray(r0, c0, r1, c1 int) (*Array, error) {
	if r1 <= r0 || c1 <= c0 {
		return nil, fmt.Errorf("array: empty subarray [%d,%d)x[%d,%d)", r0, r1, c0, c1)
	}
	rows, cols := r1-r0, c1-c0
	out := New(Schema{
		Name:  a.schema.Name,
		Attrs: append([]string(nil), a.schema.Attrs...),
		Dims: [2]Dim{
			{Name: a.schema.Dims[0].Name, Size: rows},
			{Name: a.schema.Dims[1].Name, Size: cols},
		},
	})
	for ai := range a.data {
		src, dst := a.data[ai], out.data[ai]
		for r := 0; r < rows; r++ {
			sr := r0 + r
			if sr < 0 || sr >= a.Rows() {
				continue
			}
			for c := 0; c < cols; c++ {
				sc := c0 + c
				if sc < 0 || sc >= a.Cols() {
					continue
				}
				dst[r*cols+c] = src[sr*a.Cols()+sc]
			}
		}
	}
	return out, nil
}

// Project returns a new array retaining only the named attributes.
func (a *Array) Project(attrs ...string) (*Array, error) {
	out := &Array{
		schema: Schema{Name: a.schema.Name, Dims: a.schema.Dims},
	}
	for _, name := range attrs {
		i := a.schema.AttrIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("%w: %q in %s", ErrNoAttr, name, a.schema.Name)
		}
		out.schema.Attrs = append(out.schema.Attrs, name)
		out.data = append(out.data, a.data[i])
	}
	return out, nil
}

// Stats summarizes one attribute: count of non-empty cells, mean, standard
// deviation, minimum and maximum. It underlies the Normal tile signature.
type Stats struct {
	Count    int
	Mean     float64
	Stddev   float64
	Min, Max float64
}

// AttrStats computes Stats for the named attribute.
func (a *Array) AttrStats(attr string) (Stats, error) {
	src, err := a.AttrData(attr)
	if err != nil {
		return Stats{}, err
	}
	var s Stats
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	var sum, sq float64
	for _, v := range src {
		if math.IsNaN(v) {
			continue
		}
		s.Count++
		sum += v
		sq += v * v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	if s.Count == 0 {
		return Stats{Min: math.NaN(), Max: math.NaN(), Mean: math.NaN(), Stddev: math.NaN()}, nil
	}
	s.Mean = sum / float64(s.Count)
	variance := sq/float64(s.Count) - s.Mean*s.Mean
	if variance < 0 {
		variance = 0
	}
	s.Stddev = math.Sqrt(variance)
	return s, nil
}
