package array

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// This file implements a small subset of SciDB's Array Functional Language
// (AFL), sufficient to express the paper's tile-build pipeline, including
// Query 1 verbatim:
//
//	store(
//	  apply(
//	    join(SVIS, SSWIR),
//	    ndsi,
//	    ndsi_func(SVIS.reflectance, SSWIR.reflectance)
//	  ),
//	  NDSI
//	)
//
// Supported operators:
//
//	scan(NAME)                         read a stored array (bare names also scan)
//	join(expr, expr)                   equi-join on dimensions
//	apply(expr, attr, udf(args...))    cell-wise UDF producing a new attribute
//	regrid(expr, j0, j1, agg(attr))    windowed aggregation over every attribute
//	                                   (agg selects attrs first when given)
//	subarray(expr, r0, c0, r1, c1)     rectangular slice
//	project(expr, attr, ...)           keep only the named attributes
//	store(expr, NAME)                  bind the result in the database
//
// UDF argument references may be qualified ("SVIS.reflectance") or bare
// ("reflectance"); qualification follows SciDB in resolving collisions after
// a join, where the right-hand array's attributes are stored prefixed.

// Query parses and executes an AFL expression against the database,
// returning the resulting array (which, for store(...), is also bound).
func (db *Database) Query(afl string) (*Array, error) {
	p := &aflParser{src: afl}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("array: parse %q: %w", afl, err)
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("array: trailing input at byte %d of %q", p.pos, afl)
	}
	return db.eval(expr)
}

// aflNode is a parsed AFL expression tree node.
type aflNode struct {
	op   string // "scan", "join", "apply", "regrid", "subarray", "project", "store"
	name string // array name (scan/store), attribute name (apply), agg name (regrid)
	udf  string // UDF name for apply
	args []string
	ints []int
	kids []*aflNode
}

// maxAFLDepth caps expression nesting. The recursive-descent parser (and
// the recursive evaluator behind it) consume one stack frame per nesting
// level, so an adversarial query like strings.Repeat("join(", 1e5)+"A"
// would otherwise blow the goroutine stack; real pipelines (Query 1 is
// depth 4) never come close.
const maxAFLDepth = 128

type aflParser struct {
	src   string
	pos   int
	depth int
}

func (p *aflParser) skipSpace() {
	for p.pos < len(p.src) {
		r := p.src[p.pos]
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			p.pos++
			continue
		}
		break
	}
}

func (p *aflParser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *aflParser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return fmt.Errorf("expected %q at byte %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}

func (p *aflParser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isIdentRune(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("expected identifier at byte %d", p.pos)
	}
	return p.src[start:p.pos], nil
}

func (p *aflParser) integer() (int, error) {
	p.skipSpace()
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, fmt.Errorf("expected integer at byte %d", p.pos)
	}
	return strconv.Atoi(p.src[start:p.pos])
}

// parseExpr parses either an operator call or a bare array name (scan).
func (p *aflParser) parseExpr() (*aflNode, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxAFLDepth {
		return nil, fmt.Errorf("expression nested deeper than %d levels at byte %d", maxAFLDepth, p.pos)
	}
	id, err := p.ident()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.peek() != '(' {
		return &aflNode{op: "scan", name: id}, nil // bare name
	}
	switch strings.ToLower(id) {
	case "scan":
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &aflNode{op: "scan", name: name}, nil
	case "join":
		p.pos++
		left, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		right, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &aflNode{op: "join", kids: []*aflNode{left, right}}, nil
	case "apply":
		p.pos++
		in, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		udf, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var args []string
		for {
			arg, err := p.ident()
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
			p.skipSpace()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &aflNode{op: "apply", name: attr, udf: udf, args: args, kids: []*aflNode{in}}, nil
	case "regrid":
		p.pos++
		in, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		j0, err := p.integer()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		j1, err := p.integer()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		agg, err := p.ident()
		if err != nil {
			return nil, err
		}
		node := &aflNode{op: "regrid", name: agg, ints: []int{j0, j1}, kids: []*aflNode{in}}
		p.skipSpace()
		if p.peek() == '(' { // optional agg(attr) form
			p.pos++
			attr, err := p.ident()
			if err != nil {
				return nil, err
			}
			node.args = []string{attr}
			if err := p.expect(')'); err != nil {
				return nil, err
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return node, nil
	case "subarray":
		p.pos++
		in, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		coords := make([]int, 4)
		for i := range coords {
			if err := p.expect(','); err != nil {
				return nil, err
			}
			v, err := p.integer()
			if err != nil {
				return nil, err
			}
			coords[i] = v
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &aflNode{op: "subarray", ints: coords, kids: []*aflNode{in}}, nil
	case "project":
		p.pos++
		in, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		var attrs []string
		for {
			p.skipSpace()
			if p.peek() != ',' {
				break
			}
			p.pos++
			attr, err := p.ident()
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, attr)
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if len(attrs) == 0 {
			return nil, fmt.Errorf("project needs at least one attribute")
		}
		return &aflNode{op: "project", args: attrs, kids: []*aflNode{in}}, nil
	case "store":
		p.pos++
		in, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &aflNode{op: "store", name: name, kids: []*aflNode{in}}, nil
	default:
		return nil, fmt.Errorf("unknown operator %q", id)
	}
}

func (db *Database) eval(n *aflNode) (*Array, error) {
	switch n.op {
	case "scan":
		return db.Get(n.name)
	case "join":
		left, err := db.eval(n.kids[0])
		if err != nil {
			return nil, err
		}
		right, err := db.eval(n.kids[1])
		if err != nil {
			return nil, err
		}
		return Join(left, right)
	case "apply":
		in, err := db.eval(n.kids[0])
		if err != nil {
			return nil, err
		}
		fn, err := db.UDF(n.udf)
		if err != nil {
			return nil, err
		}
		attrs := make([]string, len(n.args))
		for i, ref := range n.args {
			attrs[i] = resolveAttrRef(in, ref)
		}
		return in.Apply(n.name, fn, attrs...)
	case "regrid":
		in, err := db.eval(n.kids[0])
		if err != nil {
			return nil, err
		}
		if len(n.args) == 1 {
			in, err = in.Project(resolveAttrRef(in, n.args[0]))
			if err != nil {
				return nil, err
			}
		}
		agg, err := ParseAgg(n.name)
		if err != nil {
			return nil, err
		}
		return in.Regrid(n.ints[0], n.ints[1], agg)
	case "subarray":
		in, err := db.eval(n.kids[0])
		if err != nil {
			return nil, err
		}
		return in.Subarray(n.ints[0], n.ints[1], n.ints[2], n.ints[3])
	case "project":
		in, err := db.eval(n.kids[0])
		if err != nil {
			return nil, err
		}
		attrs := make([]string, len(n.args))
		for i, ref := range n.args {
			attrs[i] = resolveAttrRef(in, ref)
		}
		return in.Project(attrs...)
	case "store":
		in, err := db.eval(n.kids[0])
		if err != nil {
			return nil, err
		}
		db.Store(n.name, in)
		return db.Get(n.name)
	}
	return nil, fmt.Errorf("array: unknown node %q", n.op)
}

// resolveAttrRef maps an AFL attribute reference to the attribute name that
// actually exists in the array: "A.x" resolves to "x" if unambiguous, or to
// "A_x" when a join stored the right-hand array's attribute prefixed.
func resolveAttrRef(a *Array, ref string) string {
	if a.Schema().AttrIndex(ref) >= 0 {
		return ref
	}
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		owner, attr := ref[:i], ref[i+1:]
		prefixed := owner + "_" + attr
		if a.Schema().AttrIndex(prefixed) >= 0 {
			return prefixed
		}
		if a.Schema().AttrIndex(attr) >= 0 {
			return attr
		}
	}
	return ref // let the operator report ErrNoAttr with the original spelling
}
