// Package array implements a small, SciDB-like dense array engine.
//
// ForeCache (the paper this repository reproduces) uses SciDB as its back-end
// DBMS: multi-attribute dense arrays addressed by integer dimensions, with
// windowed aggregation to build zoom levels, equi-joins on dimensions, and
// user-defined functions applied cell-wise (the NDSI snow index is computed
// this way, see the paper's Query 1). This package implements exactly that
// operator surface over chunked two-dimensional arrays:
//
//   - multi-attribute dense 2-D arrays with named dimensions
//   - cell-wise Apply of registered UDFs
//   - implicit dimension equi-Join
//   - windowed Regrid aggregation (avg, sum, min, max, count)
//   - Subarray slicing
//   - a Database of named arrays with binary disk persistence
//   - a small AFL-style query language (scan/join/apply/regrid/subarray/store)
//
// Cells hold float64 values; NaN marks an empty cell and is skipped by
// aggregates, matching SciDB's treatment of empty cells.
package array

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape reports an operation whose operand shapes are incompatible.
var ErrShape = errors.New("array: incompatible shapes")

// ErrNoAttr reports a reference to an attribute that does not exist.
var ErrNoAttr = errors.New("array: no such attribute")

// Dim describes one array dimension: a name and its extent in cells.
type Dim struct {
	Name string
	Size int
}

// Schema describes an array: its name, attributes and two dimensions.
// Dimension 0 is the slower-varying (row / latitude) axis and dimension 1
// the faster-varying (column / longitude) axis; storage is row-major.
type Schema struct {
	Name  string
	Attrs []string
	Dims  [2]Dim
}

// String renders the schema in SciDB's conventional form, e.g.
// "NDSI<ndsi,mask>[latitude=1024,longitude=1024]".
func (s Schema) String() string {
	attrs := ""
	for i, a := range s.Attrs {
		if i > 0 {
			attrs += ","
		}
		attrs += a
	}
	return fmt.Sprintf("%s<%s>[%s=%d,%s=%d]",
		s.Name, attrs, s.Dims[0].Name, s.Dims[0].Size, s.Dims[1].Name, s.Dims[1].Size)
}

// Rows returns the extent of dimension 0.
func (s Schema) Rows() int { return s.Dims[0].Size }

// Cols returns the extent of dimension 1.
func (s Schema) Cols() int { return s.Dims[1].Size }

// AttrIndex returns the position of attribute name, or -1 if absent.
func (s Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// Array is a dense two-dimensional, multi-attribute array. Each attribute is
// stored as a contiguous row-major float64 slice. The zero value is not
// usable; construct arrays with New.
type Array struct {
	schema Schema
	data   [][]float64 // data[attr][row*cols+col]
}

// New returns an empty (all-NaN) array with the given schema.
func New(schema Schema) *Array {
	n := schema.Rows() * schema.Cols()
	data := make([][]float64, len(schema.Attrs))
	for i := range data {
		col := make([]float64, n)
		for j := range col {
			col[j] = math.NaN()
		}
		data[i] = col
	}
	return &Array{schema: schema, data: data}
}

// NewZero returns an array with every cell of every attribute set to zero,
// which is convenient for bulk loads that will overwrite all cells anyway.
func NewZero(schema Schema) *Array {
	n := schema.Rows() * schema.Cols()
	data := make([][]float64, len(schema.Attrs))
	for i := range data {
		data[i] = make([]float64, n)
	}
	return &Array{schema: schema, data: data}
}

// Schema returns the array's schema.
func (a *Array) Schema() Schema { return a.schema }

// Rows returns the extent of dimension 0.
func (a *Array) Rows() int { return a.schema.Rows() }

// Cols returns the extent of dimension 1.
func (a *Array) Cols() int { return a.schema.Cols() }

// NumCells returns the number of cells per attribute.
func (a *Array) NumCells() int { return a.Rows() * a.Cols() }

// Get returns the value of attribute attr at (row, col). It panics if the
// coordinates are out of range and returns an error only for unknown
// attributes, mirroring slice indexing semantics for the hot path.
func (a *Array) Get(attr string, row, col int) (float64, error) {
	i := a.schema.AttrIndex(attr)
	if i < 0 {
		return 0, fmt.Errorf("%w: %q in %s", ErrNoAttr, attr, a.schema.Name)
	}
	return a.data[i][row*a.Cols()+col], nil
}

// Set assigns the value of attribute attr at (row, col).
func (a *Array) Set(attr string, row, col int, v float64) error {
	i := a.schema.AttrIndex(attr)
	if i < 0 {
		return fmt.Errorf("%w: %q in %s", ErrNoAttr, attr, a.schema.Name)
	}
	a.data[i][row*a.Cols()+col] = v
	return nil
}

// AttrData returns the raw row-major backing slice for an attribute. The
// caller must not resize it; mutating cells through it is allowed and is the
// fast path used by bulk loaders.
func (a *Array) AttrData(attr string) ([]float64, error) {
	i := a.schema.AttrIndex(attr)
	if i < 0 {
		return nil, fmt.Errorf("%w: %q in %s", ErrNoAttr, attr, a.schema.Name)
	}
	return a.data[i], nil
}

// Clone returns a deep copy of the array.
func (a *Array) Clone() *Array {
	out := &Array{schema: a.schema, data: make([][]float64, len(a.data))}
	out.schema.Attrs = append([]string(nil), a.schema.Attrs...)
	for i, col := range a.data {
		out.data[i] = append([]float64(nil), col...)
	}
	return out
}

// Rename returns the same array under a new name (shallow; shares storage).
func (a *Array) Rename(name string) *Array {
	out := *a
	out.schema.Name = name
	return &out
}

// MemBytes reports the approximate heap footprint of the array's cell data.
func (a *Array) MemBytes() int {
	return len(a.data) * a.NumCells() * 8
}
