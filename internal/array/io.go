package array

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Binary persistence for arrays. The format is chunked so large arrays
// stream without loading twice, mirroring SciDB's chunked storage layout:
//
//	magic "FCAR" | version u32 | name | nattrs u32 | attr names
//	| dim0 name | dim0 size u64 | dim1 name | dim1 size u64
//	| chunkRows u32 | chunkCols u32
//	| for each attr, for each chunk row-major: cells as float64 LE
//
// Strings are u32 length-prefixed UTF-8.

const (
	ioMagic   = "FCAR"
	ioVersion = 1
	// DefaultChunkRows and DefaultChunkCols set the on-disk chunk shape.
	DefaultChunkRows = 256
	DefaultChunkCols = 256
)

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("array: corrupt string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// WriteTo streams the array in chunked binary form.
func (a *Array) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &countWriter{w: bw}
	if _, err := cw.Write([]byte(ioMagic)); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(ioVersion)); err != nil {
		return cw.n, err
	}
	if err := writeString(cw, a.schema.Name); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(a.schema.Attrs))); err != nil {
		return cw.n, err
	}
	for _, attr := range a.schema.Attrs {
		if err := writeString(cw, attr); err != nil {
			return cw.n, err
		}
	}
	for _, d := range a.schema.Dims {
		if err := writeString(cw, d.Name); err != nil {
			return cw.n, err
		}
		if err := binary.Write(cw, binary.LittleEndian, uint64(d.Size)); err != nil {
			return cw.n, err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(DefaultChunkRows)); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(DefaultChunkCols)); err != nil {
		return cw.n, err
	}
	buf := make([]byte, 8)
	for _, col := range a.data {
		for r0 := 0; r0 < a.Rows(); r0 += DefaultChunkRows {
			r1 := min(r0+DefaultChunkRows, a.Rows())
			for c0 := 0; c0 < a.Cols(); c0 += DefaultChunkCols {
				c1 := min(c0+DefaultChunkCols, a.Cols())
				for r := r0; r < r1; r++ {
					base := r * a.Cols()
					for c := c0; c < c1; c++ {
						binary.LittleEndian.PutUint64(buf, math.Float64bits(col[base+c]))
						if _, err := cw.Write(buf); err != nil {
							return cw.n, err
						}
					}
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom reconstructs an array previously written with WriteTo.
func ReadFrom(r io.Reader) (*Array, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != ioMagic {
		return nil, fmt.Errorf("array: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != ioVersion {
		return nil, fmt.Errorf("array: unsupported version %d", version)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	var nattrs uint32
	if err := binary.Read(br, binary.LittleEndian, &nattrs); err != nil {
		return nil, err
	}
	if nattrs > 1<<16 {
		return nil, fmt.Errorf("array: corrupt attribute count %d", nattrs)
	}
	attrs := make([]string, nattrs)
	for i := range attrs {
		if attrs[i], err = readString(br); err != nil {
			return nil, err
		}
	}
	var dims [2]Dim
	for i := range dims {
		if dims[i].Name, err = readString(br); err != nil {
			return nil, err
		}
		var size uint64
		if err := binary.Read(br, binary.LittleEndian, &size); err != nil {
			return nil, err
		}
		if size > 1<<32 {
			return nil, fmt.Errorf("array: corrupt dimension size %d", size)
		}
		dims[i].Size = int(size)
	}
	var chunkRows, chunkCols uint32
	if err := binary.Read(br, binary.LittleEndian, &chunkRows); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &chunkCols); err != nil {
		return nil, err
	}
	if chunkRows == 0 || chunkCols == 0 {
		return nil, fmt.Errorf("array: corrupt chunk shape %dx%d", chunkRows, chunkCols)
	}
	a := NewZero(Schema{Name: name, Attrs: attrs, Dims: dims})
	buf := make([]byte, 8)
	for _, col := range a.data {
		for r0 := 0; r0 < a.Rows(); r0 += int(chunkRows) {
			r1 := min(r0+int(chunkRows), a.Rows())
			for c0 := 0; c0 < a.Cols(); c0 += int(chunkCols) {
				c1 := min(c0+int(chunkCols), a.Cols())
				for r := r0; r < r1; r++ {
					base := r * a.Cols()
					for c := c0; c < c1; c++ {
						if _, err := io.ReadFull(br, buf); err != nil {
							return nil, err
						}
						col[base+c] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
					}
				}
			}
		}
	}
	return a, nil
}

// SaveFile writes the array to path, creating parent directories.
func (a *Array) SaveFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := a.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads an array previously written with SaveFile.
func LoadFile(path string) (*Array, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}

// SaveDir persists every array in the database under dir, one file per
// array named "<name>.fcar".
func (db *Database) SaveDir(dir string) error {
	for _, name := range db.Names() {
		a, err := db.Get(name)
		if err != nil {
			return err
		}
		if err := a.SaveFile(filepath.Join(dir, name+".fcar")); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir loads every "*.fcar" file in dir into the database.
func (db *Database) LoadDir(dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, "*.fcar"))
	if err != nil {
		return err
	}
	for _, path := range matches {
		a, err := LoadFile(path)
		if err != nil {
			return fmt.Errorf("array: load %s: %w", path, err)
		}
		db.Store(a.Schema().Name, a)
	}
	return nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
