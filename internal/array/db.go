package array

import (
	"fmt"
	"sort"
	"sync"
)

// Database is a catalog of named arrays plus a registry of UDFs, playing the
// role of the SciDB instance in the paper's architecture. It is safe for
// concurrent use.
type Database struct {
	mu     sync.RWMutex
	arrays map[string]*Array
	udfs   map[string]UDF
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		arrays: make(map[string]*Array),
		udfs:   make(map[string]UDF),
	}
}

// Store registers an array under name, replacing any previous binding.
func (db *Database) Store(name string, a *Array) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.arrays[name] = a.Rename(name)
}

// Get returns the array bound to name.
func (db *Database) Get(name string) (*Array, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	a, ok := db.arrays[name]
	if !ok {
		return nil, fmt.Errorf("array: no array named %q", name)
	}
	return a, nil
}

// Remove drops the array bound to name. Removing an absent name is a no-op.
func (db *Database) Remove(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.arrays, name)
}

// Names lists the stored array names in sorted order.
func (db *Database) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.arrays))
	for n := range db.arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterUDF makes fn callable from AFL queries under the given name,
// the equivalent of loading a user-defined function plugin into SciDB.
func (db *Database) RegisterUDF(name string, fn UDF) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.udfs[name] = fn
}

// UDF looks up a registered user-defined function.
func (db *Database) UDF(name string) (UDF, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	fn, ok := db.udfs[name]
	if !ok {
		return nil, fmt.Errorf("array: no UDF named %q", name)
	}
	return fn, nil
}
