package array

import (
	"strings"
	"testing"
)

// fuzzDB builds a tiny database with two joinable arrays and a UDF, enough
// surface for every AFL operator to execute, not just parse.
func fuzzDB() *Database {
	db := NewDatabase()
	mk := func(name string) *Array {
		a := NewZero(Schema{Name: name, Attrs: []string{"v"},
			Dims: [2]Dim{{Name: "r", Size: 4}, {Name: "c", Size: 4}}})
		data, _ := a.AttrData("v")
		for i := range data {
			data[i] = float64(i)
		}
		return a
	}
	db.Store("A", mk("A"))
	db.Store("B", mk("B"))
	db.RegisterUDF("f", func(args []float64) float64 {
		s := 0.0
		for _, v := range args {
			s += v
		}
		return s
	})
	return db
}

// TestQueryDepthLimit is the regression test for the unbounded
// recursive-descent parser: a 10k-deep nesting used to grow one goroutine
// stack frame per level (risking stack exhaustion on deeper inputs); it
// must now fail fast with a parse error, and legitimate nesting below the
// cap must still parse.
func TestQueryDepthLimit(t *testing.T) {
	db := fuzzDB()
	deep := strings.Repeat("join(", 10_000) + "A"
	if _, err := db.Query(deep); err == nil {
		t.Fatal("10k-deep nesting should be rejected")
	} else if !strings.Contains(err.Error(), "nested deeper") {
		t.Fatalf("10k-deep nesting failed with %v, want the depth error", err)
	}
	// Unclosed nesting just past the cap is rejected by depth, not by a
	// later syntax error, so the recursion really is bounded.
	past := strings.Repeat("join(", maxAFLDepth+1) + "A"
	if _, err := db.Query(past); err == nil || !strings.Contains(err.Error(), "nested deeper") {
		t.Fatalf("cap+1 nesting: err = %v, want the depth error", err)
	}
	// Real queries sit far below the cap: depth 20 works end to end.
	q := "project(A, v)"
	for i := 0; i < 19; i++ {
		q = "subarray(" + q + ", 0, 0, 4, 4)"
	}
	if _, err := db.Query(q); err != nil {
		t.Fatalf("depth-20 query should parse and run: %v", err)
	}
}

// FuzzAFLQuery drives the full AFL pipeline (parse + eval) with arbitrary
// query strings. Run continuously with:
//
//	go test ./internal/array -run '^$' -fuzz '^FuzzAFLQuery$' -fuzztime 10s
//
// Properties checked: no panic, no stack exhaustion (the depth cap), and
// store() results remain retrievable when a query succeeds.
func FuzzAFLQuery(f *testing.F) {
	seeds := []string{
		"A",
		"scan(A)",
		"join(A, B)",
		"apply(join(A, B), s, f(A.v, B.v))",
		"store(apply(join(A, B), ndsi, f(A.v, B.v)), NDSI)", // Query 1's shape
		"regrid(A, 2, 2, avg)",
		"regrid(A, 2, 2, avg(v))",
		"subarray(A, 0, 0, 3, 3)",
		"subarray(A, -1, -1, 99, 99)",
		"project(scan(A), v)",
		"project(A, v, v)",
		"  store( scan( A ) , C )  ",
		"store(A,)",          // missing name
		"join(A,",            // truncated
		"regrid(A, 2, 2, f(", // truncated agg form
		"f()(",
		strings.Repeat("join(", 40) + "A" + strings.Repeat(", B)", 40),
		strings.Repeat("store(", 300) + "A", // past the depth cap
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		db := fuzzDB() // fresh per input: store() must not leak across runs
		out, err := db.Query(q)
		if err != nil {
			return
		}
		if out == nil {
			t.Fatalf("Query(%q) returned nil array and nil error", q)
		}
	})
}
