package array

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func mkArray(t *testing.T, name string, rows, cols int, fill func(r, c int) float64) *Array {
	t.Helper()
	a := NewZero(Schema{
		Name:  name,
		Attrs: []string{"v"},
		Dims:  [2]Dim{{Name: "lat", Size: rows}, {Name: "lon", Size: cols}},
	})
	data, err := a.AttrData("v")
	if err != nil {
		t.Fatalf("AttrData: %v", err)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			data[r*cols+c] = fill(r, c)
		}
	}
	return a
}

func TestNewIsAllNaN(t *testing.T) {
	a := New(Schema{Name: "A", Attrs: []string{"x", "y"}, Dims: [2]Dim{{"r", 3}, {"c", 4}}})
	for _, attr := range []string{"x", "y"} {
		for r := 0; r < 3; r++ {
			for c := 0; c < 4; c++ {
				v, err := a.Get(attr, r, c)
				if err != nil {
					t.Fatalf("Get: %v", err)
				}
				if !math.IsNaN(v) {
					t.Fatalf("cell (%d,%d) of %s = %v, want NaN", r, c, attr, v)
				}
			}
		}
	}
}

func TestSchemaString(t *testing.T) {
	s := Schema{Name: "NDSI", Attrs: []string{"ndsi", "mask"}, Dims: [2]Dim{{"latitude", 8}, {"longitude", 16}}}
	got := s.String()
	want := "NDSI<ndsi,mask>[latitude=8,longitude=16]"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestGetSetRoundTrip(t *testing.T) {
	a := New(Schema{Name: "A", Attrs: []string{"v"}, Dims: [2]Dim{{"r", 4}, {"c", 4}}})
	if err := a.Set("v", 2, 3, 7.5); err != nil {
		t.Fatalf("Set: %v", err)
	}
	v, err := a.Get("v", 2, 3)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if v != 7.5 {
		t.Errorf("Get = %v, want 7.5", v)
	}
	if _, err := a.Get("missing", 0, 0); err == nil {
		t.Error("Get on missing attribute should fail")
	}
	if err := a.Set("missing", 0, 0, 1); err == nil {
		t.Error("Set on missing attribute should fail")
	}
}

func TestApplyNDSI(t *testing.T) {
	vis := mkArray(t, "SVIS", 4, 4, func(r, c int) float64 { return float64(r + c + 1) })
	swir := mkArray(t, "SSWIR", 4, 4, func(r, c int) float64 { return 1 })
	joined, err := Join(vis, swir)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	ndsi := func(args []float64) float64 { return (args[0] - args[1]) / (args[0] + args[1]) }
	out, err := joined.Apply("ndsi", ndsi, "v", "SSWIR_v")
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	got, err := out.Get("ndsi", 1, 2)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	want := (4.0 - 1.0) / (4.0 + 1.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ndsi(1,2) = %v, want %v", got, want)
	}
}

func TestApplyPropagatesNaN(t *testing.T) {
	a := mkArray(t, "A", 2, 2, func(r, c int) float64 { return 1 })
	if err := a.Set("v", 0, 1, math.NaN()); err != nil {
		t.Fatal(err)
	}
	out, err := a.Apply("twice", func(args []float64) float64 { return 2 * args[0] }, "v")
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	v, _ := out.Get("twice", 0, 1)
	if !math.IsNaN(v) {
		t.Errorf("empty input cell should stay empty, got %v", v)
	}
	v, _ = out.Get("twice", 1, 1)
	if v != 2 {
		t.Errorf("valid cell = %v, want 2", v)
	}
}

func TestApplyDuplicateAttrFails(t *testing.T) {
	a := mkArray(t, "A", 2, 2, func(r, c int) float64 { return 1 })
	if _, err := a.Apply("v", func(args []float64) float64 { return 0 }, "v"); err == nil {
		t.Error("Apply with an existing output attribute should fail")
	}
}

func TestJoinShapeMismatch(t *testing.T) {
	a := mkArray(t, "A", 2, 2, func(r, c int) float64 { return 1 })
	b := mkArray(t, "B", 2, 3, func(r, c int) float64 { return 1 })
	if _, err := Join(a, b); err == nil {
		t.Error("Join with mismatched shapes should fail")
	}
}

func TestJoinDisambiguatesAttrNames(t *testing.T) {
	a := mkArray(t, "A", 2, 2, func(r, c int) float64 { return 1 })
	b := mkArray(t, "B", 2, 2, func(r, c int) float64 { return 2 })
	j, err := Join(a, b)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if j.Schema().AttrIndex("v") < 0 || j.Schema().AttrIndex("B_v") < 0 {
		t.Fatalf("join attrs = %v, want [v B_v]", j.Schema().Attrs)
	}
	left, _ := j.Get("v", 0, 0)
	right, _ := j.Get("B_v", 0, 0)
	if left != 1 || right != 2 {
		t.Errorf("joined values = %v,%v want 1,2", left, right)
	}
}

func TestRegridAvgMatchesPaperFigure3(t *testing.T) {
	// A 16x16 array regridded with aggregation parameters (2,2) must become
	// 8x8, each output cell the average of a 2x2 window.
	a := mkArray(t, "A", 16, 16, func(r, c int) float64 { return float64(r*16 + c) })
	out, err := a.Regrid(2, 2, AggAvg)
	if err != nil {
		t.Fatalf("Regrid: %v", err)
	}
	if out.Rows() != 8 || out.Cols() != 8 {
		t.Fatalf("regrid shape = %dx%d, want 8x8", out.Rows(), out.Cols())
	}
	// Window at output (0,0) covers inputs {0,1,16,17} -> mean 8.5.
	v, _ := out.Get("v", 0, 0)
	if v != 8.5 {
		t.Errorf("regrid(0,0) = %v, want 8.5", v)
	}
}

func TestRegridAggregates(t *testing.T) {
	a := mkArray(t, "A", 2, 2, func(r, c int) float64 { return float64(r*2 + c + 1) }) // 1..4
	cases := []struct {
		agg  Agg
		want float64
	}{
		{AggAvg, 2.5}, {AggSum, 10}, {AggMin, 1}, {AggMax, 4}, {AggCount, 4},
	}
	for _, tc := range cases {
		out, err := a.Regrid(2, 2, tc.agg)
		if err != nil {
			t.Fatalf("Regrid(%v): %v", tc.agg, err)
		}
		v, _ := out.Get("v", 0, 0)
		if v != tc.want {
			t.Errorf("%v = %v, want %v", tc.agg, v, tc.want)
		}
	}
}

func TestRegridSkipsNaN(t *testing.T) {
	a := mkArray(t, "A", 2, 2, func(r, c int) float64 { return 4 })
	if err := a.Set("v", 0, 0, math.NaN()); err != nil {
		t.Fatal(err)
	}
	out, err := a.Regrid(2, 2, AggAvg)
	if err != nil {
		t.Fatalf("Regrid: %v", err)
	}
	v, _ := out.Get("v", 0, 0)
	if v != 4 {
		t.Errorf("avg skipping NaN = %v, want 4", v)
	}
	cnt, err := a.Regrid(2, 2, AggCount)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := cnt.Get("v", 0, 0)
	if c != 3 {
		t.Errorf("count skipping NaN = %v, want 3", c)
	}
}

func TestRegridAllNaNWindow(t *testing.T) {
	a := New(Schema{Name: "A", Attrs: []string{"v"}, Dims: [2]Dim{{"r", 2}, {"c", 2}}})
	out, err := a.Regrid(2, 2, AggAvg)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := out.Get("v", 0, 0)
	if !math.IsNaN(v) {
		t.Errorf("all-empty window avg = %v, want NaN", v)
	}
}

func TestRegridRejectsBadIntervals(t *testing.T) {
	a := mkArray(t, "A", 2, 2, func(r, c int) float64 { return 1 })
	if _, err := a.Regrid(0, 2, AggAvg); err == nil {
		t.Error("Regrid(0,2) should fail")
	}
}

func TestSubarrayClipsAndPads(t *testing.T) {
	a := mkArray(t, "A", 4, 4, func(r, c int) float64 { return float64(r*4 + c) })
	sub, err := a.Subarray(2, 2, 6, 6) // extends past the edge
	if err != nil {
		t.Fatalf("Subarray: %v", err)
	}
	if sub.Rows() != 4 || sub.Cols() != 4 {
		t.Fatalf("subarray shape = %dx%d, want 4x4", sub.Rows(), sub.Cols())
	}
	v, _ := sub.Get("v", 0, 0)
	if v != 10 {
		t.Errorf("sub(0,0) = %v, want 10", v)
	}
	v, _ = sub.Get("v", 3, 3)
	if !math.IsNaN(v) {
		t.Errorf("out-of-range cell = %v, want NaN padding", v)
	}
}

func TestSubarrayEmptyFails(t *testing.T) {
	a := mkArray(t, "A", 4, 4, func(r, c int) float64 { return 0 })
	if _, err := a.Subarray(2, 2, 2, 4); err == nil {
		t.Error("empty subarray should fail")
	}
}

func TestProject(t *testing.T) {
	a := NewZero(Schema{Name: "A", Attrs: []string{"x", "y"}, Dims: [2]Dim{{"r", 2}, {"c", 2}}})
	p, err := a.Project("y")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if len(p.Schema().Attrs) != 1 || p.Schema().Attrs[0] != "y" {
		t.Errorf("projected attrs = %v, want [y]", p.Schema().Attrs)
	}
	if _, err := a.Project("z"); err == nil {
		t.Error("Project on missing attribute should fail")
	}
}

func TestAttrStats(t *testing.T) {
	a := mkArray(t, "A", 2, 2, func(r, c int) float64 { return float64(r*2 + c) }) // 0,1,2,3
	s, err := a.AttrStats("v")
	if err != nil {
		t.Fatalf("AttrStats: %v", err)
	}
	if s.Count != 4 || s.Mean != 1.5 || s.Min != 0 || s.Max != 3 {
		t.Errorf("stats = %+v", s)
	}
	wantStd := math.Sqrt(1.25)
	if math.Abs(s.Stddev-wantStd) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.Stddev, wantStd)
	}
}

func TestAttrStatsEmpty(t *testing.T) {
	a := New(Schema{Name: "A", Attrs: []string{"v"}, Dims: [2]Dim{{"r", 2}, {"c", 2}}})
	s, err := a.AttrStats("v")
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 0 || !math.IsNaN(s.Mean) {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestDatabaseStoreGetRemove(t *testing.T) {
	db := NewDatabase()
	a := mkArray(t, "A", 2, 2, func(r, c int) float64 { return 1 })
	db.Store("A", a)
	got, err := db.Get("A")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.Schema().Name != "A" {
		t.Errorf("stored name = %q", got.Schema().Name)
	}
	if _, err := db.Get("B"); err == nil {
		t.Error("Get on missing array should fail")
	}
	db.Remove("A")
	if _, err := db.Get("A"); err == nil {
		t.Error("Get after Remove should fail")
	}
}

func TestQueryPaperQuery1(t *testing.T) {
	// The paper's Query 1: store(apply(join(SVIS,SSWIR), ndsi,
	// ndsi_func(SVIS.reflectance, SSWIR.reflectance)), NDSI).
	db := NewDatabase()
	mk := func(name string, base float64) *Array {
		a := NewZero(Schema{Name: name, Attrs: []string{"reflectance"},
			Dims: [2]Dim{{"latitude", 4}, {"longitude", 4}}})
		data, _ := a.AttrData("reflectance")
		for i := range data {
			data[i] = base + float64(i)
		}
		return a
	}
	db.Store("SVIS", mk("SVIS", 10))
	db.Store("SSWIR", mk("SSWIR", 2))
	db.RegisterUDF("ndsi_func", func(args []float64) float64 {
		return (args[0] - args[1]) / (args[0] + args[1])
	})
	out, err := db.Query(`
		store(
			apply(
				join(SVIS, SSWIR),
				ndsi,
				ndsi_func(SVIS.reflectance, SSWIR.reflectance)
			),
			NDSI
		)`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if out.Schema().AttrIndex("ndsi") < 0 {
		t.Fatalf("result attrs = %v, want ndsi present", out.Schema().Attrs)
	}
	v, _ := out.Get("ndsi", 0, 0)
	want := (10.0 - 2.0) / (10.0 + 2.0)
	if math.Abs(v-want) > 1e-12 {
		t.Errorf("ndsi(0,0) = %v, want %v", v, want)
	}
	if _, err := db.Get("NDSI"); err != nil {
		t.Errorf("store() should bind NDSI: %v", err)
	}
}

func TestQueryRegridSubarrayProject(t *testing.T) {
	db := NewDatabase()
	db.Store("A", mkArray(t, "A", 8, 8, func(r, c int) float64 { return float64(r*8 + c) }))
	out, err := db.Query("regrid(A, 2, 2, avg)")
	if err != nil {
		t.Fatalf("regrid query: %v", err)
	}
	if out.Rows() != 4 || out.Cols() != 4 {
		t.Fatalf("regrid result %dx%d, want 4x4", out.Rows(), out.Cols())
	}
	out, err = db.Query("subarray(A, 0, 0, 2, 3)")
	if err != nil {
		t.Fatalf("subarray query: %v", err)
	}
	if out.Rows() != 2 || out.Cols() != 3 {
		t.Fatalf("subarray result %dx%d, want 2x3", out.Rows(), out.Cols())
	}
	out, err = db.Query("project(scan(A), v)")
	if err != nil {
		t.Fatalf("project query: %v", err)
	}
	if len(out.Schema().Attrs) != 1 {
		t.Fatalf("project attrs = %v", out.Schema().Attrs)
	}
}

func TestQueryErrors(t *testing.T) {
	db := NewDatabase()
	db.Store("A", mkArray(t, "A", 2, 2, func(r, c int) float64 { return 0 }))
	for _, q := range []string{
		"",                     // empty
		"frobnicate(A)",        // unknown operator
		"scan(A) extra",        // trailing input
		"scan(Missing)",        // unknown array
		"join(A)",              // arity
		"apply(A, x, nope(v))", // unknown UDF
		"regrid(A, 2, 2, zzz)", // unknown aggregate
	} {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewZero(Schema{Name: "RT", Attrs: []string{"x", "y"},
		Dims: [2]Dim{{"lat", 37}, {"lon", 61}}}) // deliberately not chunk-aligned
	for _, attr := range []string{"x", "y"} {
		data, _ := a.AttrData(attr)
		for i := range data {
			if rng.Intn(10) == 0 {
				data[i] = math.NaN()
			} else {
				data[i] = rng.NormFloat64()
			}
		}
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	b, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if b.Schema().String() != a.Schema().String() {
		t.Fatalf("schema mismatch: %v vs %v", b.Schema(), a.Schema())
	}
	for _, attr := range []string{"x", "y"} {
		ad, _ := a.AttrData(attr)
		bd, _ := b.AttrData(attr)
		for i := range ad {
			if ad[i] != bd[i] && !(math.IsNaN(ad[i]) && math.IsNaN(bd[i])) {
				t.Fatalf("cell %d of %s: %v != %v", i, attr, ad[i], bd[i])
			}
		}
	}
}

func TestIOFileAndDir(t *testing.T) {
	dir := t.TempDir()
	db := NewDatabase()
	db.Store("A", mkArray(t, "A", 4, 4, func(r, c int) float64 { return float64(r + c) }))
	db.Store("B", mkArray(t, "B", 2, 2, func(r, c int) float64 { return 1 }))
	if err := db.SaveDir(dir); err != nil {
		t.Fatalf("SaveDir: %v", err)
	}
	db2 := NewDatabase()
	if err := db2.LoadDir(dir); err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if got := db2.Names(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("Names = %v", got)
	}
	a2, err := db2.Get("A")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := a2.Get("v", 3, 3)
	if v != 6 {
		t.Errorf("loaded cell = %v, want 6", v)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.fcar")); err == nil {
		t.Error("LoadFile on missing path should fail")
	}
}

func TestReadFromRejectsCorrupt(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
}

// Property: for any array contents, regrid with (1,1) and avg is identity.
func TestRegridIdentityProperty(t *testing.T) {
	f := func(vals [16]float64) bool {
		a := mkArrayQuick(vals[:], 4, 4)
		out, err := a.Regrid(1, 1, AggAvg)
		if err != nil {
			return false
		}
		ad, _ := a.AttrData("v")
		od, _ := out.AttrData("v")
		for i := range ad {
			if ad[i] != od[i] && !(math.IsNaN(ad[i]) && math.IsNaN(od[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: regrid sum of the count aggregate is preserved under nesting:
// count(regrid 4x4) == count(regrid 2x2 then 2x2).
func TestRegridCountCompositionProperty(t *testing.T) {
	f := func(vals [64]float64, drop uint8) bool {
		vs := append([]float64(nil), vals[:]...)
		vs[int(drop)%64] = math.NaN()
		a := mkArrayQuick(vs, 8, 8)
		direct, err := a.Regrid(4, 4, AggCount)
		if err != nil {
			return false
		}
		step1, err := a.Regrid(2, 2, AggCount)
		if err != nil {
			return false
		}
		step2, err := step1.Regrid(2, 2, AggSum)
		if err != nil {
			return false
		}
		dd, _ := direct.AttrData("v")
		sd, _ := step2.AttrData("v")
		for i := range dd {
			if dd[i] != sd[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: IO round trip preserves every cell bit pattern (modulo NaN).
func TestIORoundTripProperty(t *testing.T) {
	f := func(vals [24]float64) bool {
		a := mkArrayQuick(vals[:], 4, 6)
		var buf bytes.Buffer
		if _, err := a.WriteTo(&buf); err != nil {
			return false
		}
		b, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		ad, _ := a.AttrData("v")
		bd, _ := b.AttrData("v")
		for i := range ad {
			if ad[i] != bd[i] && !(math.IsNaN(ad[i]) && math.IsNaN(bd[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func mkArrayQuick(vals []float64, rows, cols int) *Array {
	a := NewZero(Schema{Name: "Q", Attrs: []string{"v"},
		Dims: [2]Dim{{"r", rows}, {"c", cols}}})
	data, _ := a.AttrData("v")
	copy(data, vals)
	return a
}

func BenchmarkRegridAvg(b *testing.B) {
	a := NewZero(Schema{Name: "B", Attrs: []string{"v"},
		Dims: [2]Dim{{"r", 512}, {"c", 512}}})
	data, _ := a.AttrData("v")
	for i := range data {
		data[i] = float64(i % 97)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Regrid(2, 2, AggAvg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryParseEval(b *testing.B) {
	db := NewDatabase()
	a := NewZero(Schema{Name: "A", Attrs: []string{"v"},
		Dims: [2]Dim{{"r", 64}, {"c", 64}}})
	db.Store("A", a)
	db.RegisterUDF("id", func(args []float64) float64 { return args[0] })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("regrid(apply(scan(A), w, id(v)), 2, 2, avg)"); err != nil {
			b.Fatal(err)
		}
	}
}
