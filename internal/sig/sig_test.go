package sig

import (
	"math"
	"testing"
	"testing/quick"

	"forecache/internal/tile"
)

func mkTile(size int, fn func(y, x int) float64) *tile.Tile {
	data := make([]float64, size*size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			data[y*size+x] = fn(y, x)
		}
	}
	return &tile.Tile{
		Coord: tile.Coord{Level: 1, Y: 0, X: 0},
		Size:  size,
		Attrs: []string{"v"},
		Data:  [][]float64{data},
	}
}

func blobTile(size, cy, cx int, amp float64) *tile.Tile {
	return mkTile(size, func(y, x int) float64 {
		dy, dx := float64(y-cy), float64(x-cx)
		return amp * math.Exp(-(dy*dy+dx*dx)/18)
	})
}

func testComputer() *Computer {
	cfg := DefaultConfig("v")
	cfg.ValueMin, cfg.ValueMax = 0, 1
	cfg.Words = 8
	cfg.DenseStride = 4
	return NewComputer(cfg)
}

func TestNormalSignature(t *testing.T) {
	c := testComputer()
	tl := mkTile(8, func(y, x int) float64 { return 0.5 })
	sg := c.Normal(tl)
	if len(sg) != 2 {
		t.Fatalf("normal len = %d", len(sg))
	}
	if math.Abs(sg[0]-0.5) > 1e-9 || sg[1] != 0 {
		t.Errorf("normal of constant 0.5 tile = %v, want [0.5 0]", sg)
	}
}

func TestNormalEmptyTile(t *testing.T) {
	c := testComputer()
	tl := mkTile(8, func(y, x int) float64 { return math.NaN() })
	sg := c.Normal(tl)
	if sg[0] != 0 || sg[1] != 0 {
		t.Errorf("normal of empty tile = %v, want zeros", sg)
	}
}

func TestNormalMissingAttr(t *testing.T) {
	cfg := DefaultConfig("missing")
	c := NewComputer(cfg)
	tl := mkTile(8, func(y, x int) float64 { return 1 })
	if sg := c.Normal(tl); sg[0] != 0 || sg[1] != 0 {
		t.Errorf("normal with missing attr = %v", sg)
	}
}

func TestHistogramSumsToOneAndBins(t *testing.T) {
	c := testComputer()
	tl := mkTile(4, func(y, x int) float64 {
		if y < 2 {
			return 0.01 // lowest bin
		}
		return 0.99 // highest bin
	})
	h := c.Histogram(tl)
	if len(h) != c.Config().HistBins {
		t.Fatalf("hist len = %d", len(h))
	}
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("hist sum = %v, want 1", sum)
	}
	if h[0] != 0.5 || h[len(h)-1] != 0.5 {
		t.Errorf("hist = %v, want mass split between first and last bins", h)
	}
}

func TestHistogramSkipsNaNAndClampsOutliers(t *testing.T) {
	c := testComputer()
	tl := mkTile(2, func(y, x int) float64 {
		switch {
		case y == 0 && x == 0:
			return math.NaN()
		case y == 0 && x == 1:
			return -5 // below range -> clamped to bin 0
		default:
			return 7 // above range -> clamped to last bin
		}
	})
	h := c.Histogram(tl)
	if math.Abs(h[0]-1.0/3) > 1e-9 || math.Abs(h[len(h)-1]-2.0/3) > 1e-9 {
		t.Errorf("hist = %v", h)
	}
}

func TestChiSquaredProperties(t *testing.T) {
	a := []float64{0.5, 0.5, 0}
	b := []float64{0, 0.5, 0.5}
	if d := ChiSquared(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	if d1, d2 := ChiSquared(a, b), ChiSquared(b, a); math.Abs(d1-d2) > 1e-12 {
		t.Errorf("asymmetric: %v vs %v", d1, d2)
	}
	// Signatures are histogram-shaped: nonnegative and bounded. Map the
	// generated values into [0,1] like normalizeSum would.
	f := func(xs, ys [8]float64) bool {
		a := make([]float64, 8)
		b := make([]float64, 8)
		for i := range a {
			a[i] = math.Abs(math.Mod(xs[i], 1))
			b[i] = math.Abs(math.Mod(ys[i], 1))
			if math.IsNaN(a[i]) {
				a[i] = 0
			}
			if math.IsNaN(b[i]) {
				b[i] = 0
			}
		}
		d := ChiSquared(a, b)
		return d >= 0 && !math.IsNaN(d) && math.Abs(d-ChiSquared(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChiSquaredLengthMismatch(t *testing.T) {
	d := ChiSquared([]float64{1}, []float64{1, 0.4})
	if math.Abs(d-0.2) > 1e-12 {
		t.Errorf("mismatched length distance = %v, want 0.2", d)
	}
}

func TestWeightedL2(t *testing.T) {
	d := WeightedL2([]float64{3, 4}, nil)
	if d != 5 {
		t.Errorf("unweighted = %v, want 5", d)
	}
	d = WeightedL2([]float64{3, 4}, []float64{1, 0})
	if d != 3 {
		t.Errorf("weighted = %v, want 3", d)
	}
}

func TestDetectKeypointsFindsBlob(t *testing.T) {
	tl := blobTile(32, 16, 16, 1)
	c := testComputer()
	g := c.normalizeGrid(tl)
	kps := detectKeypoints(g, 32, 10)
	if len(kps) == 0 {
		t.Fatal("no keypoints on a strong blob")
	}
	// Strongest keypoint should be near the blob center.
	if d := math.Hypot(float64(kps[0].y-16), float64(kps[0].x-16)); d > 6 {
		t.Errorf("strongest keypoint at (%d,%d), far from blob center", kps[0].y, kps[0].x)
	}
}

func TestDetectKeypointsFlatTileFallback(t *testing.T) {
	tl := mkTile(32, func(y, x int) float64 { return 0.5 })
	c := testComputer()
	kps := detectKeypoints(c.normalizeGrid(tl), 32, 10)
	// A featureless tile has no DoG extrema; the detector falls back to
	// the five structural keypoints so the histogram stays comparable.
	if len(kps) != 5 {
		t.Fatalf("flat tile produced %d keypoints, want 5 structural fallbacks", len(kps))
	}
	if kps[0].response != 0 {
		t.Error("fallback keypoints carry no DoG response")
	}
}

func TestDetectKeypointsTinyTile(t *testing.T) {
	if kps := detectKeypoints(make([]float64, 16), 4, 10); kps != nil {
		t.Errorf("tiny tile should yield nil keypoints, got %v", kps)
	}
}

func TestDescriptorNormalized(t *testing.T) {
	tl := blobTile(32, 12, 20, 1)
	c := testComputer()
	g := c.normalizeGrid(tl)
	d := describePatch(g, 32, 12, 20)
	if len(d) != descriptorSize {
		t.Fatalf("descriptor len = %d, want %d", len(d), descriptorSize)
	}
	norm := 0.0
	for _, v := range d {
		if v < 0 {
			t.Fatalf("negative descriptor entry %v", v)
		}
		norm += v * v
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-9 {
		t.Errorf("descriptor L2 norm = %v, want 1", math.Sqrt(norm))
	}
}

func TestDescriptorFlatPatchIsZero(t *testing.T) {
	g := make([]float64, 32*32)
	d := describePatch(g, 32, 16, 16)
	for i, v := range d {
		if v != 0 {
			t.Fatalf("flat patch descriptor[%d] = %v", i, v)
		}
	}
}

func TestCodebookAssignNearest(t *testing.T) {
	cb := &Codebook{Centroids: [][]float64{{0, 0}, {1, 1}}}
	if w := cb.Assign([]float64{0.1, 0.1}); w != 0 {
		t.Errorf("assign = %d, want 0", w)
	}
	if w := cb.Assign([]float64{0.9, 0.9}); w != 1 {
		t.Errorf("assign = %d, want 1", w)
	}
}

func TestTrainCodebookDeterministic(t *testing.T) {
	descs := [][]float64{{0, 0}, {0, 0.1}, {1, 1}, {1, 0.9}, {0.5, 0.5}}
	a := TrainCodebook(descs, 2, 42)
	b := TrainCodebook(descs, 2, 42)
	for i := range a.Centroids {
		for j := range a.Centroids[i] {
			if a.Centroids[i][j] != b.Centroids[i][j] {
				t.Fatal("codebook training not deterministic")
			}
		}
	}
}

func TestTrainCodebookSeparatesClusters(t *testing.T) {
	var descs [][]float64
	for i := 0; i < 20; i++ {
		descs = append(descs, []float64{0 + float64(i%3)*0.01, 0})
		descs = append(descs, []float64{1 - float64(i%3)*0.01, 1})
	}
	cb := TrainCodebook(descs, 2, 7)
	a := cb.Assign([]float64{0, 0})
	b := cb.Assign([]float64{1, 1})
	if a == b {
		t.Error("two well-separated clusters mapped to the same word")
	}
}

func TestTrainCodebookEmptyInput(t *testing.T) {
	cb := TrainCodebook(nil, 4, 1)
	if cb.K() != 4 {
		t.Fatalf("K = %d, want 4", cb.K())
	}
	if w := cb.Assign(make([]float64, descriptorSize)); w != 0 {
		t.Errorf("assign on zero codebook = %d", w)
	}
}

func TestComputeWithoutCodebook(t *testing.T) {
	c := testComputer()
	out := c.Compute(blobTile(32, 16, 16, 1))
	if _, ok := out[NameNormal]; !ok {
		t.Error("missing normal signature")
	}
	if _, ok := out[NameSIFT]; ok {
		t.Error("sift emitted without a trained codebook")
	}
}

func TestComputeAllFour(t *testing.T) {
	c := testComputer()
	train := []*tile.Tile{
		blobTile(32, 8, 8, 1), blobTile(32, 20, 20, 0.8),
		mkTile(32, func(y, x int) float64 { return float64(x) / 32 }),
	}
	c.TrainCodebook(train)
	if !c.CodebookTrained() {
		t.Fatal("codebook not trained")
	}
	out := c.Compute(blobTile(32, 16, 16, 1))
	for _, name := range AllNames() {
		if _, ok := out[name]; !ok {
			t.Errorf("missing signature %q", name)
		}
	}
	if len(out[NameDenseSIFT]) != 4*c.Config().Words {
		t.Errorf("densesift len = %d, want %d", len(out[NameDenseSIFT]), 4*c.Config().Words)
	}
}

// Semantic check behind Figure 10b: SIFT must consider two different tiles
// that both contain a blob landmark more similar than a blob tile vs a
// featureless gradient tile.
func TestSIFTMatchesLandmarks(t *testing.T) {
	c := testComputer()
	blobA := blobTile(32, 10, 10, 1)
	blobB := blobTile(32, 22, 18, 0.9)
	flat := mkTile(32, func(y, x int) float64 { return 0.3 + 0.001*float64(x) })
	c.TrainCodebook([]*tile.Tile{blobA, blobB, flat})
	sa := c.SIFT(blobA, nil)
	sb := c.SIFT(blobB, nil)
	sf := c.SIFT(flat, nil)
	dSimilar := ChiSquared(sa, sb)
	dDifferent := ChiSquared(sa, sf)
	if !(dSimilar < dDifferent) {
		t.Errorf("sift: blob-blob distance %v should be < blob-flat %v", dSimilar, dDifferent)
	}
}

// DenseSIFT is position sensitive: the same landmark in opposite corners
// should be farther apart under densesift than under plain sift (relative
// to each signature's own scale). This is the mechanism the paper gives
// for DenseSIFT underperforming on MODIS (§5.4.2).
func TestDenseSIFTIsPositionSensitive(t *testing.T) {
	c := testComputer()
	nw := blobTile(32, 7, 7, 1)
	se := blobTile(32, 25, 25, 1)
	c.TrainCodebook([]*tile.Tile{nw, se})
	dense := ChiSquared(c.DenseSIFT(nw, nil), c.DenseSIFT(se, nil))
	sparse := ChiSquared(c.SIFT(nw, nil), c.SIFT(se, nil))
	if !(dense > sparse) {
		t.Errorf("densesift distance %v should exceed sift distance %v for moved landmark", dense, sparse)
	}
}

func TestSignatureDeterminism(t *testing.T) {
	mk := func() map[string][]float64 {
		c := testComputer()
		tiles := []*tile.Tile{blobTile(32, 10, 10, 1), blobTile(32, 20, 20, 1)}
		c.TrainCodebook(tiles)
		return c.Compute(tiles[0])
	}
	a, b := mk(), mk()
	for name, av := range a {
		bv := b[name]
		if len(av) != len(bv) {
			t.Fatalf("%s length differs", name)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("%s[%d] differs across identical runs", name, i)
			}
		}
	}
}

func BenchmarkSIFTSignature(b *testing.B) {
	c := testComputer()
	tiles := []*tile.Tile{blobTile(64, 20, 20, 1), blobTile(64, 40, 44, 0.8)}
	c.TrainCodebook(tiles)
	tl := blobTile(64, 32, 32, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SIFT(tl, nil)
	}
}

func BenchmarkChiSquared(b *testing.B) {
	x := make([]float64, 96)
	y := make([]float64, 96)
	for i := range x {
		x[i] = float64(i) / 96
		y[i] = float64(95-i) / 96
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ChiSquared(x, y)
	}
}
