package sig

import (
	"math"
	"math/rand"
)

// Codebook is a set of k visual-word centroids in descriptor space, trained
// with k-means (k-means++ seeding, Lloyd iterations). It quantizes SIFT
// descriptors into word indices for bag-of-visual-words histograms.
type Codebook struct {
	Centroids [][]float64
}

// K returns the number of visual words.
func (cb *Codebook) K() int { return len(cb.Centroids) }

// Assign returns the index of the centroid nearest to desc (squared
// Euclidean distance). An empty codebook assigns everything to word 0.
func (cb *Codebook) Assign(desc []float64) int {
	best, bestD := 0, math.Inf(1)
	for i, c := range cb.Centroids {
		d := sqDist(desc, c)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// TrainCodebook clusters the descriptors into k centroids. Training is
// deterministic for a fixed seed. When fewer than k distinct descriptors
// exist the codebook still has k centroids (duplicates are tolerated; they
// simply never win assignments). A nil/empty descriptor set produces a
// codebook of k zero vectors so downstream code stays total.
func TrainCodebook(descs [][]float64, k int, seed int64) *Codebook {
	if k <= 0 {
		k = 1
	}
	cb := &Codebook{Centroids: make([][]float64, k)}
	if len(descs) == 0 {
		for i := range cb.Centroids {
			cb.Centroids[i] = make([]float64, descriptorSize)
		}
		return cb
	}
	rng := rand.New(rand.NewSource(seed))
	dim := len(descs[0])

	// k-means++ seeding.
	first := rng.Intn(len(descs))
	cb.Centroids[0] = append([]float64(nil), descs[first]...)
	minD := make([]float64, len(descs))
	for i := range minD {
		minD[i] = sqDist(descs[i], cb.Centroids[0])
	}
	for c := 1; c < k; c++ {
		total := 0.0
		for _, d := range minD {
			total += d
		}
		var idx int
		if total <= 0 {
			idx = rng.Intn(len(descs))
		} else {
			target := rng.Float64() * total
			acc := 0.0
			for i, d := range minD {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
		}
		cb.Centroids[c] = append([]float64(nil), descs[idx]...)
		for i := range minD {
			if d := sqDist(descs[i], cb.Centroids[c]); d < minD[i] {
				minD[i] = d
			}
		}
	}

	// Lloyd iterations.
	assign := make([]int, len(descs))
	for iter := 0; iter < 20; iter++ {
		changed := false
		for i, d := range descs {
			a := cb.Assign(d)
			if a != assign[i] {
				assign[i] = a
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for i := range sums {
			sums[i] = make([]float64, dim)
		}
		for i, d := range descs {
			a := assign[i]
			counts[a]++
			for j, v := range d {
				sums[a][j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the descriptor farthest from
				// its centroid, the standard fix for collapsed clusters.
				far, farD := 0, -1.0
				for i, d := range descs {
					if dd := sqDist(d, cb.Centroids[assign[i]]); dd > farD {
						far, farD = i, dd
					}
				}
				cb.Centroids[c] = append([]float64(nil), descs[far]...)
				continue
			}
			for j := range sums[c] {
				sums[c][j] /= float64(counts[c])
			}
			cb.Centroids[c] = sums[c]
		}
	}
	return cb
}

func sqDist(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := 0.0
	for i := 0; i < n; i++ {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return d
}
