package sig

import (
	"math"

	"forecache/internal/tile"
)

// Extended signatures from the paper's future-work section (§6.2): "other
// features may be more appropriate for different datasets. For example,
// counting outliers or computing linear correlations may work well for
// prefetching time series data." Both produce histogram-shaped vectors so
// the Chi-Squared distance and Algorithm 3 apply unchanged, which is
// exactly the extension contract §4.3.3 describes.
const (
	// NameOutlier is the outlier-profile signature.
	NameOutlier = "outlier"
	// NameTrend is the linear-trend signature.
	NameTrend = "trend"
)

// ExtendedNames lists the future-work signatures (not part of the paper's
// evaluated four; see AllNames).
func ExtendedNames() []string { return []string{NameOutlier, NameTrend} }

// Outlier computes the outlier-profile signature: the fraction of cells
// beyond 1, 2 and 3 standard deviations of the tile mean, on each side.
// Tiles whose interesting content is "a few extreme spikes" (heart-rate
// episodes, sensor faults) match under this signature even when their
// bulk distributions differ.
func (c *Computer) Outlier(t *tile.Tile) []float64 {
	out := make([]float64, 6) // [>+1σ, >+2σ, >+3σ, <-1σ, <-2σ, <-3σ]
	mean, std, _, _, n, err := t.Stats(c.cfg.Attr)
	if err != nil || n == 0 || std == 0 {
		return out
	}
	g, err := t.Grid(c.cfg.Attr)
	if err != nil {
		return out
	}
	for _, v := range g {
		if math.IsNaN(v) {
			continue
		}
		z := (v - mean) / std
		switch {
		case z > 3:
			out[0]++
			out[1]++
			out[2]++
		case z > 2:
			out[0]++
			out[1]++
		case z > 1:
			out[0]++
		case z < -3:
			out[3]++
			out[4]++
			out[5]++
		case z < -2:
			out[3]++
			out[4]++
		case z < -1:
			out[3]++
		}
	}
	for i := range out {
		out[i] /= float64(n)
	}
	return out
}

// Trend computes the linear-trend signature: least-squares slopes of the
// tile's row means (vertical trend) and column means (horizontal trend),
// each folded into a small histogram [strong-down, down, flat, up,
// strong-up] so two tiles "rising the same way" match. Slopes are
// normalized by the attribute's value range per tile width.
func (c *Computer) Trend(t *tile.Tile) []float64 {
	out := make([]float64, 10) // two 5-bin direction histograms
	g, err := t.Grid(c.cfg.Attr)
	if err != nil || t.Size == 0 {
		return out
	}
	span := c.cfg.ValueMax - c.cfg.ValueMin
	rowSlope := axisSlope(g, t.Size, true) / span * float64(t.Size)
	colSlope := axisSlope(g, t.Size, false) / span * float64(t.Size)
	out[trendBin(rowSlope)] = 1
	out[5+trendBin(colSlope)] = 1
	return out
}

// axisSlope fits the per-row (or per-column) means against their index.
func axisSlope(g []float64, size int, rows bool) float64 {
	var xs, ys []float64
	for i := 0; i < size; i++ {
		sum, n := 0.0, 0
		for j := 0; j < size; j++ {
			var v float64
			if rows {
				v = g[i*size+j]
			} else {
				v = g[j*size+i]
			}
			if math.IsNaN(v) {
				continue
			}
			sum += v
			n++
		}
		if n == 0 {
			continue
		}
		xs = append(xs, float64(i))
		ys = append(ys, sum/float64(n))
	}
	if len(xs) < 2 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(len(xs)), sy/float64(len(ys))
	var sxx, sxy float64
	for i := range xs {
		sxx += (xs[i] - mx) * (xs[i] - mx)
		sxy += (xs[i] - mx) * (ys[i] - my)
	}
	if sxx == 0 {
		return 0
	}
	return sxy / sxx
}

func trendBin(slope float64) int {
	switch {
	case slope < -0.5:
		return 0
	case slope < -0.05:
		return 1
	case slope <= 0.05:
		return 2
	case slope <= 0.5:
		return 3
	default:
		return 4
	}
}

// ComputeExtended returns the paper's four signatures plus the extended
// toolbox ones, for datasets where outliers or trends drive navigation.
func (c *Computer) ComputeExtended(t *tile.Tile) map[string][]float64 {
	out := c.Compute(t)
	out[NameOutlier] = c.Outlier(t)
	out[NameTrend] = c.Trend(t)
	return out
}
