// Package sig computes tile signatures: compact numerical representations
// of a data tile used by the Signature-Based recommender to find visually
// similar tiles (paper §4.3.3, Table 2).
//
// Four signatures are implemented, matching Table 2:
//
//	normal     mean and standard deviation of the tile's cells
//	histogram  1-D histogram of cell values with fixed bins
//	sift       bag-of-visual-words histogram over SIFT keypoint descriptors
//	densesift  spatially pooled bag-of-visual-words over a dense descriptor
//	           grid (captures landmarks *and* their positions)
//
// All four produce histogram-shaped vectors, so the Chi-Squared distance
// applies to each (paper §4.3.3). The SIFT variants quantize descriptors
// against a k-means codebook trained on the pyramid's own tiles, replacing
// the paper's OpenCV + external features pipeline.
package sig

import (
	"math"

	"forecache/internal/tile"
)

// Signature names, used as keys in tile.Tile.Signatures.
const (
	NameNormal    = "normal"
	NameHistogram = "histogram"
	NameSIFT      = "sift"
	NameDenseSIFT = "densesift"
)

// AllNames lists every signature in canonical order.
func AllNames() []string {
	return []string{NameNormal, NameHistogram, NameSIFT, NameDenseSIFT}
}

// Config parameterizes signature computation for one attribute.
type Config struct {
	// Attr is the tile attribute the signatures describe (e.g. "ndsi_avg").
	Attr string
	// ValueMin and ValueMax bound the attribute's values; histograms and
	// normalizations use this range. For NDSI the range is [-1, 1].
	ValueMin, ValueMax float64
	// HistBins is the 1-D histogram's bin count.
	HistBins int
	// Codebook size (visual word count) for SIFT and DenseSIFT.
	Words int
	// MaxKeypoints caps SIFT keypoints per tile (strongest first).
	MaxKeypoints int
	// DenseStride is the cell stride of the DenseSIFT sampling grid.
	DenseStride int
	// Seed drives the deterministic k-means codebook training.
	Seed int64
}

// DefaultConfig returns the configuration used by the experiments for the
// NDSI dataset.
func DefaultConfig(attr string) Config {
	return Config{
		Attr:         attr,
		ValueMin:     -1,
		ValueMax:     1,
		HistBins:     16,
		Words:        24,
		MaxKeypoints: 48,
		DenseStride:  8,
		Seed:         1,
	}
}

// Computer computes all four signatures for tiles. The SIFT codebook must
// be trained (TrainCodebook) before Compute produces the two SIFT-family
// signatures; until then Compute returns only normal and histogram.
type Computer struct {
	cfg      Config
	codebook *Codebook
}

// NewComputer returns a Computer for the given configuration.
func NewComputer(cfg Config) *Computer {
	if cfg.HistBins <= 0 {
		cfg.HistBins = 16
	}
	if cfg.Words <= 0 {
		cfg.Words = 24
	}
	if cfg.MaxKeypoints <= 0 {
		cfg.MaxKeypoints = 48
	}
	if cfg.DenseStride <= 0 {
		cfg.DenseStride = 8
	}
	if cfg.ValueMax <= cfg.ValueMin {
		cfg.ValueMin, cfg.ValueMax = 0, 1
	}
	return &Computer{cfg: cfg}
}

// Config returns the computer's configuration.
func (c *Computer) Config() Config { return c.cfg }

// TrainCodebook extracts SIFT descriptors from the given training tiles and
// clusters them into the visual-word codebook. It must be called before
// Compute can emit sift/densesift signatures. Training is deterministic
// for a fixed Config.Seed.
func (c *Computer) TrainCodebook(tiles []*tile.Tile) {
	var descs [][]float64
	for _, t := range tiles {
		g := c.normalizeGrid(t)
		if g == nil {
			continue
		}
		kps := detectKeypoints(g, t.Size, c.cfg.MaxKeypoints)
		for _, kp := range kps {
			descs = append(descs, describePatch(g, t.Size, kp.y, kp.x))
		}
		// Include a sparse sample of dense descriptors so the codebook also
		// covers textureless regions that keypoint detection skips.
		for y := c.cfg.DenseStride / 2; y < t.Size; y += c.cfg.DenseStride * 2 {
			for x := c.cfg.DenseStride / 2; x < t.Size; x += c.cfg.DenseStride * 2 {
				descs = append(descs, describePatch(g, t.Size, y, x))
			}
		}
	}
	c.codebook = TrainCodebook(descs, c.cfg.Words, c.cfg.Seed)
}

// CodebookTrained reports whether the SIFT codebook is available.
func (c *Computer) CodebookTrained() bool { return c.codebook != nil }

// Compute returns the signature vectors for the tile, keyed by signature
// name. It is compatible with tile.MetadataFunc via:
//
//	Params{Metadata: computer.Compute}
func (c *Computer) Compute(t *tile.Tile) map[string][]float64 {
	out := make(map[string][]float64, 4)
	out[NameNormal] = c.Normal(t)
	out[NameHistogram] = c.Histogram(t)
	if c.codebook != nil {
		g := c.normalizeGrid(t)
		out[NameSIFT] = c.SIFT(t, g)
		out[NameDenseSIFT] = c.DenseSIFT(t, g)
	}
	return out
}

// Normal computes the normal-distribution signature: the mean and standard
// deviation of the tile's cells, normalized into [0,1] by the value range
// so the Chi-Squared distance remains well defined.
func (c *Computer) Normal(t *tile.Tile) []float64 {
	mean, std, _, _, n, err := t.Stats(c.cfg.Attr)
	span := c.cfg.ValueMax - c.cfg.ValueMin
	if err != nil || n == 0 {
		return []float64{0, 0}
	}
	return []float64{
		clamp01((mean - c.cfg.ValueMin) / span),
		clamp01(std / span),
	}
}

// Histogram computes the 1-D histogram signature: HistBins equal-width bins
// over [ValueMin, ValueMax], normalized to sum to 1 (empty tiles produce
// the zero vector).
func (c *Computer) Histogram(t *tile.Tile) []float64 {
	h := make([]float64, c.cfg.HistBins)
	g, err := t.Grid(c.cfg.Attr)
	if err != nil {
		return h
	}
	span := c.cfg.ValueMax - c.cfg.ValueMin
	n := 0
	for _, v := range g {
		if math.IsNaN(v) {
			continue
		}
		b := int((v - c.cfg.ValueMin) / span * float64(c.cfg.HistBins))
		if b < 0 {
			b = 0
		}
		if b >= c.cfg.HistBins {
			b = c.cfg.HistBins - 1
		}
		h[b]++
		n++
	}
	if n > 0 {
		for i := range h {
			h[i] /= float64(n)
		}
	}
	return h
}

// SIFT computes the bag-of-visual-words histogram over detected keypoint
// descriptors. grid may be nil, in which case it is recomputed.
func (c *Computer) SIFT(t *tile.Tile, grid []float64) []float64 {
	h := make([]float64, c.cfg.Words)
	if c.codebook == nil {
		return h
	}
	if grid == nil {
		grid = c.normalizeGrid(t)
	}
	if grid == nil {
		return h
	}
	kps := detectKeypoints(grid, t.Size, c.cfg.MaxKeypoints)
	for _, kp := range kps {
		w := c.codebook.Assign(describePatch(grid, t.Size, kp.y, kp.x))
		h[w]++
	}
	normalizeSum(h)
	return h
}

// DenseSIFT computes descriptors on a dense grid and pools the quantized
// words into 2x2 spatial quadrant histograms, concatenated. Unlike SIFT it
// therefore encodes *where* landmarks sit in the tile, which is why it
// matches whole images rather than local regions (paper §5.4.2).
func (c *Computer) DenseSIFT(t *tile.Tile, grid []float64) []float64 {
	k := c.cfg.Words
	h := make([]float64, 4*k)
	if c.codebook == nil {
		return h
	}
	if grid == nil {
		grid = c.normalizeGrid(t)
	}
	if grid == nil {
		return h
	}
	half := t.Size / 2
	for y := c.cfg.DenseStride / 2; y < t.Size; y += c.cfg.DenseStride {
		for x := c.cfg.DenseStride / 2; x < t.Size; x += c.cfg.DenseStride {
			w := c.codebook.Assign(describePatch(grid, t.Size, y, x))
			quad := 0
			if y >= half {
				quad += 2
			}
			if x >= half {
				quad++
			}
			h[quad*k+w]++
		}
	}
	normalizeSum(h)
	return h
}

// normalizeGrid maps the tile's attribute grid into [0,1] with NaN -> 0.
// Returns nil when the attribute is missing.
func (c *Computer) normalizeGrid(t *tile.Tile) []float64 {
	g, err := t.Grid(c.cfg.Attr)
	if err != nil {
		return nil
	}
	span := c.cfg.ValueMax - c.cfg.ValueMin
	out := make([]float64, len(g))
	for i, v := range g {
		if math.IsNaN(v) {
			out[i] = 0
			continue
		}
		out[i] = clamp01((v - c.cfg.ValueMin) / span)
	}
	return out
}

func normalizeSum(h []float64) {
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	if sum == 0 {
		return
	}
	for i := range h {
		h[i] /= sum
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ChiSquared returns the Chi-Squared distance between two histogram-shaped
// vectors: ½ Σ (aᵢ−bᵢ)² / (aᵢ+bᵢ), skipping zero-mass bins. Vectors of
// different lengths compare at the shorter length (extra bins count as
// full mass difference).
func ChiSquared(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := 0.0
	for i := 0; i < n; i++ {
		s := a[i] + b[i]
		if s <= 0 {
			continue
		}
		diff := a[i] - b[i]
		d += diff * diff / s
	}
	for i := n; i < len(a); i++ {
		d += a[i]
	}
	for i := n; i < len(b); i++ {
		d += b[i]
	}
	return d / 2
}

// WeightedL2 combines per-signature distances into a single measure:
// sqrt(Σ wᵢ dᵢ²), the ℓ2weighted form of paper §4.3.3. A nil weight slice
// means equal weights of 1.
func WeightedL2(dists, weights []float64) float64 {
	sum := 0.0
	for i, d := range dists {
		w := 1.0
		if weights != nil && i < len(weights) {
			w = weights[i]
		}
		sum += w * d * d
	}
	return math.Sqrt(sum)
}
