package sig

import (
	"math"
	"sort"
)

// Simplified SIFT for data-tile heatmaps.
//
// The paper uses OpenCV's SIFT to find visual "landmarks" (clusters of
// orange snow pixels in their NDSI heatmaps) and compare them across tiles.
// This implementation keeps the parts of SIFT that matter for that use:
//
//   - a Gaussian scale space and difference-of-Gaussians (DoG) extrema
//     detector to locate blob-like landmarks at multiple scales;
//   - 4x4x8 gradient-orientation descriptors (the classic 128-d layout)
//     around each keypoint, L2-normalized with the standard 0.2 clamp.
//
// We omit sub-pixel refinement and dominant-orientation rotation: tiles are
// axis-aligned heatmaps rendered in a fixed frame, so upright descriptors
// are both sufficient and cheaper. Descriptors are quantized against a
// k-means codebook into bag-of-visual-words histograms (see sig.go).

const (
	dogScales       = 4     // gaussian images per octave
	baseSigma       = 1.2   // first gaussian sigma (tuned for small tiles)
	contrastThresh  = 0.006 // minimum |DoG| response for a keypoint
	descriptorCells = 4     // descriptor is 4x4 cells
	descriptorBins  = 8     // orientation bins per cell
	descriptorSize  = descriptorCells * descriptorCells * descriptorBins
)

type keypoint struct {
	y, x     int
	response float64
}

// gaussianKernel returns a normalized 1-D Gaussian kernel for sigma.
func gaussianKernel(sigma float64) []float64 {
	radius := int(math.Ceil(3 * sigma))
	if radius < 1 {
		radius = 1
	}
	k := make([]float64, 2*radius+1)
	sum := 0.0
	for i := range k {
		d := float64(i - radius)
		k[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// blur applies a separable Gaussian with edge clamping.
func blur(src []float64, size int, sigma float64) []float64 {
	k := gaussianKernel(sigma)
	radius := len(k) / 2
	tmp := make([]float64, len(src))
	dst := make([]float64, len(src))
	// Horizontal pass.
	for y := 0; y < size; y++ {
		row := y * size
		for x := 0; x < size; x++ {
			acc := 0.0
			for i, w := range k {
				sx := x + i - radius
				if sx < 0 {
					sx = 0
				} else if sx >= size {
					sx = size - 1
				}
				acc += w * src[row+sx]
			}
			tmp[row+x] = acc
		}
	}
	// Vertical pass.
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			acc := 0.0
			for i, w := range k {
				sy := y + i - radius
				if sy < 0 {
					sy = 0
				} else if sy >= size {
					sy = size - 1
				}
				acc += w * tmp[sy*size+x]
			}
			dst[y*size+x] = acc
		}
	}
	return dst
}

// detectKeypoints finds up to maxKP DoG extrema in the grid (values in
// [0,1], row-major size x size), strongest responses first.
func detectKeypoints(grid []float64, size, maxKP int) []keypoint {
	if size < 8 {
		return nil
	}
	// Build the Gaussian stack and DoG layers.
	gauss := make([][]float64, dogScales)
	sigma := baseSigma
	for s := 0; s < dogScales; s++ {
		gauss[s] = blur(grid, size, sigma)
		sigma *= math.Sqrt2
	}
	dog := make([][]float64, dogScales-1)
	for s := 0; s < dogScales-1; s++ {
		d := make([]float64, len(grid))
		for i := range d {
			d[i] = gauss[s+1][i] - gauss[s][i]
		}
		dog[s] = d
	}
	var kps []keypoint
	// Interior 3x3x3 extrema across the middle DoG layers.
	for s := 1; s < len(dog)-1; s++ {
		for y := 1; y < size-1; y++ {
			for x := 1; x < size-1; x++ {
				v := dog[s][y*size+x]
				if math.Abs(v) < contrastThresh {
					continue
				}
				if isExtremum(dog, size, s, y, x, v) {
					kps = append(kps, keypoint{y: y, x: x, response: math.Abs(v)})
				}
			}
		}
	}
	sort.Slice(kps, func(i, j int) bool {
		if kps[i].response != kps[j].response {
			return kps[i].response > kps[j].response
		}
		if kps[i].y != kps[j].y {
			return kps[i].y < kps[j].y
		}
		return kps[i].x < kps[j].x
	})
	if len(kps) > maxKP {
		kps = kps[:maxKP]
	}
	if len(kps) == 0 {
		// Small or low-contrast tiles can have no DoG extrema at all. Fall
		// back to five structural keypoints (center + quadrant centers) so
		// the tile still gets a non-degenerate bag-of-words fingerprint —
		// an empty histogram would make every candidate look identical.
		q := size / 4
		kps = []keypoint{
			{y: size / 2, x: size / 2},
			{y: q, x: q}, {y: q, x: 3 * q},
			{y: 3 * q, x: q}, {y: 3 * q, x: 3 * q},
		}
	}
	return kps
}

func isExtremum(dog [][]float64, size, s, y, x int, v float64) bool {
	isMax, isMin := true, true
	for ds := -1; ds <= 1; ds++ {
		layer := dog[s+ds]
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if ds == 0 && dy == 0 && dx == 0 {
					continue
				}
				n := layer[(y+dy)*size+(x+dx)]
				if n >= v {
					isMax = false
				}
				if n <= v {
					isMin = false
				}
				if !isMax && !isMin {
					return false
				}
			}
		}
	}
	return isMax || isMin
}

// describePatch computes the upright 128-d SIFT descriptor of the 16x16
// patch centered at (cy, cx): gradient orientation histograms over a 4x4
// cell grid, Gaussian-weighted by distance from the center, L2-normalized
// with the standard 0.2 clamp and renormalization.
func describePatch(grid []float64, size, cy, cx int) []float64 {
	desc := make([]float64, descriptorSize)
	const patch = 16
	half := patch / 2
	cell := patch / descriptorCells
	sigma := float64(half)
	at := func(y, x int) float64 {
		if y < 0 {
			y = 0
		} else if y >= size {
			y = size - 1
		}
		if x < 0 {
			x = 0
		} else if x >= size {
			x = size - 1
		}
		return grid[y*size+x]
	}
	for dy := -half; dy < half; dy++ {
		for dx := -half; dx < half; dx++ {
			y, x := cy+dy, cx+dx
			gy := at(y+1, x) - at(y-1, x)
			gx := at(y, x+1) - at(y, x-1)
			mag := math.Hypot(gx, gy)
			if mag == 0 {
				continue
			}
			theta := math.Atan2(gy, gx) // [-pi, pi]
			bin := int((theta + math.Pi) / (2 * math.Pi) * descriptorBins)
			if bin >= descriptorBins {
				bin = descriptorBins - 1
			}
			w := math.Exp(-(float64(dy*dy) + float64(dx*dx)) / (2 * sigma * sigma))
			cr := (dy + half) / cell
			cc := (dx + half) / cell
			desc[(cr*descriptorCells+cc)*descriptorBins+bin] += w * mag
		}
	}
	// L2 normalize, clamp at 0.2, renormalize (standard SIFT illumination
	// robustness step).
	norm := 0.0
	for _, v := range desc {
		norm += v * v
	}
	if norm == 0 {
		return desc
	}
	norm = math.Sqrt(norm)
	for i := range desc {
		desc[i] /= norm
		if desc[i] > 0.2 {
			desc[i] = 0.2
		}
	}
	norm = 0
	for _, v := range desc {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	for i := range desc {
		desc[i] /= norm
	}
	return desc
}
