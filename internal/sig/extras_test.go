package sig

import (
	"math"
	"testing"

	"forecache/internal/tile"
)

func TestOutlierSignature(t *testing.T) {
	c := testComputer()
	// Mostly-flat tile with a handful of extreme spikes.
	tl := mkTile(16, func(y, x int) float64 {
		if y == 0 && x < 2 {
			return 1.0 // spikes
		}
		return 0.1 + 0.001*float64(x) // slight variation so stddev > 0
	})
	sg := c.Outlier(tl)
	if len(sg) != 6 {
		t.Fatalf("outlier len = %d", len(sg))
	}
	if sg[0] <= 0 {
		t.Errorf("spiky tile should have positive +1σ fraction: %v", sg)
	}
	// Flat tile: all zeros (stddev 0 guard).
	flat := mkTile(16, func(y, x int) float64 { return 0.5 })
	for i, v := range c.Outlier(flat) {
		if v != 0 {
			t.Errorf("flat tile outlier[%d] = %v", i, v)
		}
	}
	// Monotone fractions: >1σ >= >2σ >= >3σ.
	if !(sg[0] >= sg[1] && sg[1] >= sg[2]) {
		t.Errorf("upper tail fractions not monotone: %v", sg)
	}
}

func TestOutlierDistinguishesSpikyFromSmooth(t *testing.T) {
	c := testComputer()
	spiky := mkTile(16, func(y, x int) float64 {
		if (y*16+x)%37 == 0 {
			return 1
		}
		return 0.2 + 0.002*float64(y)
	})
	smooth := mkTile(16, func(y, x int) float64 { return 0.2 + 0.02*float64(y)/16 })
	spiky2 := mkTile(16, func(y, x int) float64 {
		if (y*16+x)%41 == 0 {
			return 0.95
		}
		return 0.25 + 0.002*float64(y)
	})
	dSame := ChiSquared(c.Outlier(spiky), c.Outlier(spiky2))
	dDiff := ChiSquared(c.Outlier(spiky), c.Outlier(smooth))
	if !(dSame < dDiff) {
		t.Errorf("outlier: spiky-spiky %v should be closer than spiky-smooth %v", dSame, dDiff)
	}
}

func TestTrendSignature(t *testing.T) {
	c := testComputer()
	rising := mkTile(16, func(y, x int) float64 { return float64(x) / 16 })
	falling := mkTile(16, func(y, x int) float64 { return 1 - float64(x)/16 })
	flat := mkTile(16, func(y, x int) float64 { return 0.5 })

	sr := c.Trend(rising)
	sf := c.Trend(falling)
	sl := c.Trend(flat)
	if len(sr) != 10 {
		t.Fatalf("trend len = %d", len(sr))
	}
	// Rising along x: the column-axis histogram (second half) should mark
	// an "up" bin; falling the "down" side; flat the middle.
	if sr[5+3]+sr[5+4] == 0 {
		t.Errorf("rising tile trend = %v, want an up bin set", sr)
	}
	if sf[5+0]+sf[5+1] == 0 {
		t.Errorf("falling tile trend = %v, want a down bin set", sf)
	}
	if sl[5+2] != 1 || sl[2] != 1 {
		t.Errorf("flat tile trend = %v, want flat bins", sl)
	}
	// Same-direction tiles match better than opposite ones.
	rising2 := mkTile(16, func(y, x int) float64 { return 0.1 + 0.8*float64(x)/16 })
	if d1, d2 := ChiSquared(sr, c.Trend(rising2)), ChiSquared(sr, sf); !(d1 < d2) {
		t.Errorf("trend: rising-rising %v should beat rising-falling %v", d1, d2)
	}
}

func TestTrendHandlesNaNColumns(t *testing.T) {
	c := testComputer()
	tl := mkTile(16, func(y, x int) float64 {
		if x%2 == 0 {
			return math.NaN()
		}
		return float64(y) / 16
	})
	sg := c.Trend(tl)
	sum := 0.0
	for _, v := range sg {
		if math.IsNaN(v) {
			t.Fatal("trend produced NaN")
		}
		sum += v
	}
	if sum != 2 { // one bin per axis
		t.Errorf("trend bins sum = %v, want 2", sum)
	}
}

func TestComputeExtended(t *testing.T) {
	c := testComputer()
	c.TrainCodebook([]*tile.Tile{blobTile(32, 8, 8, 1)})
	out := c.ComputeExtended(blobTile(32, 16, 16, 1))
	for _, name := range append(AllNames(), ExtendedNames()...) {
		if _, ok := out[name]; !ok {
			t.Errorf("extended compute missing %q", name)
		}
	}
}
