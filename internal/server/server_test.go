package server

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"forecache/internal/array"
	"forecache/internal/backend"
	"forecache/internal/client"
	"forecache/internal/core"
	"forecache/internal/prefetch"
	"forecache/internal/recommend"
	"forecache/internal/tile"
)

func testPyramid(t testing.TB) *tile.Pyramid {
	t.Helper()
	a := array.NewZero(array.Schema{
		Name:  "RAW",
		Attrs: []string{"v"},
		Dims:  [2]array.Dim{{Name: "lat", Size: 32}, {Name: "lon", Size: 32}},
	})
	data, _ := a.AttrData("v")
	for i := range data {
		data[i] = float64(i % 7)
	}
	pyr, err := tile.Build(a, tile.Params{TileSize: 8, Agg: array.AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	return pyr
}

func testServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	pyr := testPyramid(t)
	factory := func(session string) (*core.Engine, error) {
		db := backend.NewDBMS(pyr, backend.DefaultLatency(), nil)
		m := recommend.NewMomentum()
		return core.NewEngine(db, nil, core.SinglePolicy{Model: m.Name()},
			[]recommend.Model{m}, core.Config{K: 4})
	}
	srv := New(Meta{Levels: pyr.NumLevels(), TileSize: pyr.TileSize(), Attrs: pyr.Attrs()}, factory, opts...)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, ts
}

func TestMetaEndpoint(t *testing.T) {
	_, ts := testServer(t)
	c := client.New(ts.URL, "")
	meta, err := c.Meta()
	if err != nil {
		t.Fatalf("Meta: %v", err)
	}
	if meta.Levels != 3 || meta.TileSize != 8 || len(meta.Attrs) != 1 {
		t.Errorf("meta = %+v", meta)
	}
}

func TestTileRoundTripAndTelemetry(t *testing.T) {
	_, ts := testServer(t)
	c := client.New(ts.URL, "u1")
	root := tile.Coord{}
	tl, info, err := c.Tile(root)
	if err != nil {
		t.Fatalf("Tile: %v", err)
	}
	if tl.Coord != root || tl.Size != 8 {
		t.Errorf("tile = %+v", tl)
	}
	if info.Hit {
		t.Error("first request should be a miss")
	}
	if info.Latency <= 0 {
		t.Errorf("latency telemetry = %v", info.Latency)
	}
	// Pan is illegal from the root (side 1), but zooming in works; with a
	// momentum model and K=4 every 1-move candidate from the root is
	// fetched (root has only 4 candidates), so the zoom-in hits.
	child := root.Child(tile.NW)
	_, info2, err := c.Tile(child)
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Hit {
		t.Error("prefetched child should hit")
	}
}

func TestJumpRejectedWith400(t *testing.T) {
	_, ts := testServer(t)
	c := client.New(ts.URL, "u2")
	if _, _, err := c.Tile(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Tile(tile.Coord{Level: 2, Y: 3, X: 3}); err == nil {
		t.Error("jump should be rejected")
	}
}

func TestBadQuery(t *testing.T) {
	_, ts := testServer(t)
	resp, err := ts.Client().Get(ts.URL + "/tile?level=zero&y=0&x=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/tile?y=0&x=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("missing level: status = %d, want 400", resp.StatusCode)
	}
}

func TestSessionsAreIsolated(t *testing.T) {
	srv, ts := testServer(t)
	a := client.New(ts.URL, "alice")
	b := client.New(ts.URL, "bob")
	if _, _, err := a.Tile(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Tile(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	if srv.Sessions() != 2 {
		t.Errorf("sessions = %d, want 2", srv.Sessions())
	}
	// Alice's position must not constrain Bob: Bob can zoom while Alice
	// already zoomed elsewhere.
	if _, _, err := a.Tile(tile.Coord{Level: 1, Y: 0, X: 0}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Tile(tile.Coord{Level: 1, Y: 1, X: 1}); err != nil {
		t.Fatalf("bob blocked by alice's session: %v", err)
	}
}

func TestResetAndStats(t *testing.T) {
	_, ts := testServer(t)
	c := client.New(ts.URL, "u3")
	if _, _, err := c.Tile(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	cacheStats, ok := stats["cache"].(map[string]any)
	if !ok {
		t.Fatalf("stats = %v, want nested cache block", stats)
	}
	if cacheStats["Misses"].(float64) != 1 {
		t.Errorf("stats = %v", stats)
	}
	if stats["sessions"].(float64) < 1 {
		t.Errorf("sessions = %v", stats["sessions"])
	}
	if err := c.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	stats, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["cache"].(map[string]any)["Misses"].(float64) != 0 {
		t.Errorf("stats after reset = %v", stats)
	}
}

func TestSessionLRUCap(t *testing.T) {
	srv, ts := testServer(t, WithSessionLimit(2))
	for _, id := range []string{"a", "b", "c"} {
		c := client.New(ts.URL, id)
		if _, _, err := c.Tile(tile.Coord{}); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Sessions() != 2 {
		t.Errorf("sessions = %d, want 2 (LRU cap)", srv.Sessions())
	}
	if srv.Evicted() != 1 {
		t.Errorf("evicted = %d, want 1", srv.Evicted())
	}
	// "a" was evicted: only "b" and "c" survive. (If "a" returns, the
	// server builds a fresh engine for it — history and cache start over.)
	aAlive := srv.hasSession("a")
	bAlive := srv.hasSession("b")
	cAlive := srv.hasSession("c")
	if aAlive || !bAlive || !cAlive {
		t.Errorf("alive sessions a=%v b=%v c=%v, want only b and c", aAlive, bAlive, cAlive)
	}
}

func TestSessionTTLEviction(t *testing.T) {
	srv, ts := testServer(t, WithSessionTTL(time.Minute))
	clock := time.Unix(1000, 0)
	srv.now = func() time.Time { return clock }

	a := client.New(ts.URL, "a")
	if _, _, err := a.Tile(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	// Ten seconds later "b" arrives: "a" is still fresh.
	clock = clock.Add(10 * time.Second)
	b := client.New(ts.URL, "b")
	if _, _, err := b.Tile(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	if srv.Sessions() != 2 {
		t.Fatalf("sessions = %d, want 2", srv.Sessions())
	}
	// Two minutes later any access sweeps both idle sessions.
	clock = clock.Add(2 * time.Minute)
	c := client.New(ts.URL, "c")
	if _, _, err := c.Tile(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	if srv.Sessions() != 1 {
		t.Errorf("sessions = %d, want 1 (a and b expired)", srv.Sessions())
	}
	if srv.Evicted() != 2 {
		t.Errorf("evicted = %d, want 2", srv.Evicted())
	}
}

// TestTTLRefreshOnAccess: activity keeps a session alive past the TTL.
func TestTTLRefreshOnAccess(t *testing.T) {
	srv, ts := testServer(t, WithSessionTTL(time.Minute))
	clock := time.Unix(1000, 0)
	srv.now = func() time.Time { return clock }

	a := client.New(ts.URL, "a")
	cur := tile.Coord{}
	if _, _, err := a.Tile(cur); err != nil {
		t.Fatal(err)
	}
	for i, next := range []tile.Coord{cur.Child(tile.NW), cur.Child(tile.NW).Child(tile.SE), cur.Child(tile.NW)} {
		clock = clock.Add(45 * time.Second) // never idle a full minute
		if _, _, err := a.Tile(next); err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
	}
	if srv.Sessions() != 1 || srv.Evicted() != 0 {
		t.Errorf("sessions = %d evicted = %d, want 1 and 0", srv.Sessions(), srv.Evicted())
	}
}

// asyncTestServer wires a shared DBMS + scheduler, the deployment shape the
// facade's NewServer produces in async mode.
func asyncTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server, *prefetch.Scheduler) {
	t.Helper()
	pyr := testPyramid(t)
	db := backend.NewDBMS(pyr, backend.DefaultLatency(), nil)
	sched := prefetch.NewScheduler(db, prefetch.Config{Workers: 2})
	factory := func(session string) (*core.Engine, error) {
		m := recommend.NewMomentum()
		return core.NewEngine(db, nil, core.SinglePolicy{Model: m.Name()},
			[]recommend.Model{m}, core.Config{K: 4},
			core.WithScheduler(sched, session))
	}
	srv := New(Meta{Levels: pyr.NumLevels(), TileSize: pyr.TileSize(), Attrs: pyr.Attrs()},
		factory, append(opts, WithScheduler(sched))...)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, ts, sched
}

func TestAsyncServerServesAndReportsSchedulerStats(t *testing.T) {
	srv, ts, sched := asyncTestServer(t)
	c := client.New(ts.URL, "u1")
	if _, _, err := c.Tile(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	sched.Drain() // let the submitted batch land in the cache
	_, info, err := c.Tile(tile.Coord{}.Child(tile.NW))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Hit {
		t.Error("asynchronously prefetched child should hit")
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	schedStats, ok := stats["scheduler"].(map[string]any)
	if !ok {
		t.Fatalf("stats = %v, want scheduler block", stats)
	}
	if schedStats["Completed"].(float64) < 4 {
		t.Errorf("scheduler stats = %v, want >= 4 completed", schedStats)
	}
	if srv.Scheduler() != sched {
		t.Error("Scheduler() should return the attached scheduler")
	}
}

// TestEvictionCancelsScheduledPrefetch: evicting a session drops its
// scheduler state.
func TestEvictionCancelsScheduledPrefetch(t *testing.T) {
	_, ts, sched := asyncTestServer(t, WithSessionLimit(1))
	a := client.New(ts.URL, "a")
	if _, _, err := a.Tile(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	b := client.New(ts.URL, "b") // evicts "a"
	if _, _, err := b.Tile(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	sched.Drain()
	if st := sched.Stats(); st.Sessions > 1 {
		t.Errorf("scheduler still tracks %d sessions after eviction, want <= 1", st.Sessions)
	}
}

// TestStatsAndResetDoNotCreateSessions: read-only probes with unknown
// session ids must not spend a factory run or evict live sessions.
func TestStatsAndResetDoNotCreateSessions(t *testing.T) {
	srv, ts := testServer(t, WithSessionLimit(1))
	a := client.New(ts.URL, "analyst")
	if _, _, err := a.Tile(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		probe := client.New(ts.URL, fmt.Sprintf("probe-%d", i))
		stats, err := probe.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if _, hasCache := stats["cache"]; hasCache {
			t.Errorf("unknown session %d got a cache block: %v", i, stats)
		}
		if err := probe.Reset(); err != nil {
			t.Fatalf("reset of unknown session should be a 204 no-op: %v", err)
		}
	}
	if srv.Sessions() != 1 || srv.Evicted() != 0 {
		t.Errorf("sessions = %d evicted = %d after probes, want 1 and 0",
			srv.Sessions(), srv.Evicted())
	}
	// The analyst's session survived and still has its history.
	if _, _, err := a.Tile(tile.Coord{}.Child(tile.NW)); err != nil {
		t.Fatalf("analyst session was disturbed: %v", err)
	}
}
