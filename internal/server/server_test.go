package server

import (
	"net/http/httptest"
	"testing"

	"forecache/internal/array"
	"forecache/internal/backend"
	"forecache/internal/client"
	"forecache/internal/core"
	"forecache/internal/recommend"
	"forecache/internal/tile"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	a := array.NewZero(array.Schema{
		Name:  "RAW",
		Attrs: []string{"v"},
		Dims:  [2]array.Dim{{Name: "lat", Size: 32}, {Name: "lon", Size: 32}},
	})
	data, _ := a.AttrData("v")
	for i := range data {
		data[i] = float64(i % 7)
	}
	pyr, err := tile.Build(a, tile.Params{TileSize: 8, Agg: array.AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	factory := func() (*core.Engine, error) {
		db := backend.NewDBMS(pyr, backend.DefaultLatency(), nil)
		m := recommend.NewMomentum()
		return core.NewEngine(db, nil, core.SinglePolicy{Model: m.Name()},
			[]recommend.Model{m}, core.Config{K: 4})
	}
	srv := New(Meta{Levels: pyr.NumLevels(), TileSize: pyr.TileSize(), Attrs: pyr.Attrs()}, factory)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestMetaEndpoint(t *testing.T) {
	_, ts := testServer(t)
	c := client.New(ts.URL, "")
	meta, err := c.Meta()
	if err != nil {
		t.Fatalf("Meta: %v", err)
	}
	if meta.Levels != 3 || meta.TileSize != 8 || len(meta.Attrs) != 1 {
		t.Errorf("meta = %+v", meta)
	}
}

func TestTileRoundTripAndTelemetry(t *testing.T) {
	_, ts := testServer(t)
	c := client.New(ts.URL, "u1")
	root := tile.Coord{}
	tl, info, err := c.Tile(root)
	if err != nil {
		t.Fatalf("Tile: %v", err)
	}
	if tl.Coord != root || tl.Size != 8 {
		t.Errorf("tile = %+v", tl)
	}
	if info.Hit {
		t.Error("first request should be a miss")
	}
	if info.Latency <= 0 {
		t.Errorf("latency telemetry = %v", info.Latency)
	}
	// Pan is illegal from the root (side 1), but zooming in works; with a
	// momentum model and K=4 every 1-move candidate from the root is
	// fetched (root has only 4 candidates), so the zoom-in hits.
	child := root.Child(tile.NW)
	_, info2, err := c.Tile(child)
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Hit {
		t.Error("prefetched child should hit")
	}
}

func TestJumpRejectedWith400(t *testing.T) {
	_, ts := testServer(t)
	c := client.New(ts.URL, "u2")
	if _, _, err := c.Tile(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Tile(tile.Coord{Level: 2, Y: 3, X: 3}); err == nil {
		t.Error("jump should be rejected")
	}
}

func TestBadQuery(t *testing.T) {
	_, ts := testServer(t)
	resp, err := ts.Client().Get(ts.URL + "/tile?level=zero&y=0&x=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/tile?y=0&x=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("missing level: status = %d, want 400", resp.StatusCode)
	}
}

func TestSessionsAreIsolated(t *testing.T) {
	srv, ts := testServer(t)
	a := client.New(ts.URL, "alice")
	b := client.New(ts.URL, "bob")
	if _, _, err := a.Tile(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Tile(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	if srv.Sessions() != 2 {
		t.Errorf("sessions = %d, want 2", srv.Sessions())
	}
	// Alice's position must not constrain Bob: Bob can zoom while Alice
	// already zoomed elsewhere.
	if _, _, err := a.Tile(tile.Coord{Level: 1, Y: 0, X: 0}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Tile(tile.Coord{Level: 1, Y: 1, X: 1}); err != nil {
		t.Fatalf("bob blocked by alice's session: %v", err)
	}
}

func TestResetAndStats(t *testing.T) {
	_, ts := testServer(t)
	c := client.New(ts.URL, "u3")
	if _, _, err := c.Tile(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["Misses"].(float64) != 1 {
		t.Errorf("stats = %v", stats)
	}
	if err := c.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	stats, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["Misses"].(float64) != 0 {
		t.Errorf("stats after reset = %v", stats)
	}
}
