package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"forecache/internal/cache"
	"forecache/internal/core"
	"forecache/internal/obs"
	"forecache/internal/prefetch"
)

// This file implements the dependency-free Prometheus text-format
// /metrics endpoint (enabled with WithMetrics): the operability surface
// Kyrix argues production-scale interactive viz needs. It exposes the
// whole closed scheduling loop — queue/shed/coalesce counters, global and
// per-session backpressure, aggregate cache hit rates, and the learned
// position-utility curve — in the exposition format every Prometheus
// scraper understands (version 0.0.4), without importing a client
// library.

// promContentType is the Prometheus text exposition content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promWriter accumulates one exposition payload. Metric families are
// written atomically: HELP, TYPE, then every sample of the family.
type promWriter struct {
	b strings.Builder
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatValue renders a sample value; Prometheus accepts Go's shortest
// float representation (and +Inf/-Inf/NaN spellings).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sample is one labeled measurement within a family.
type sample struct {
	labels string // pre-rendered {k="v",...}, or ""
	value  float64
}

// labels renders a label set in deterministic (sorted) order.
func labels(kv map[string]string) string {
	if len(kv) == 0 {
		return ""
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf(`%s="%s"`, k, escapeLabel(kv[k]))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// family writes one metric family: help/type header plus samples.
func (w *promWriter) family(name, help, typ string, samples ...sample) {
	fmt.Fprintf(&w.b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(&w.b, "# TYPE %s %s\n", name, typ)
	for _, s := range samples {
		fmt.Fprintf(&w.b, "%s%s %s\n", name, s.labels, formatValue(s.value))
	}
}

func (w *promWriter) gauge(name, help string, v float64) {
	w.family(name, help, "gauge", sample{value: v})
}
func (w *promWriter) counter(name, help string, v float64) {
	w.family(name, help, "counter", sample{value: v})
}

// histSeries is one labeled histogram within a family (e.g. one outcome
// of the request-latency histogram).
type histSeries struct {
	labels map[string]string // without "le"; may be nil
	snap   obs.HistogramSnapshot
}

// histogramFamily writes one histogram family in exposition form: per
// series, a cumulative _bucket sample per bound plus +Inf, then _sum and
// _count. Each series' snapshot is internally consistent (+Inf == count),
// so the payload always passes the strict validator.
func (w *promWriter) histogramFamily(name, help string, series ...histSeries) {
	fmt.Fprintf(&w.b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(&w.b, "# TYPE %s histogram\n", name)
	for _, s := range series {
		for i, bound := range s.snap.Bounds {
			w.histBucket(name, s.labels, formatValue(bound), s.snap.Cumulative[i])
		}
		w.histBucket(name, s.labels, "+Inf", s.snap.Count)
		fmt.Fprintf(&w.b, "%s_sum%s %s\n", name, labels(s.labels), formatValue(s.snap.Sum))
		fmt.Fprintf(&w.b, "%s_count%s %d\n", name, labels(s.labels), s.snap.Count)
	}
}

// histBucket writes one _bucket sample with the le label merged in.
func (w *promWriter) histBucket(name string, base map[string]string, le string, count uint64) {
	kv := make(map[string]string, len(base)+1)
	for k, v := range base {
		kv[k] = v
	}
	kv["le"] = le
	fmt.Fprintf(&w.b, "%s_bucket%s %d\n", name, labels(kv), count)
}

// handleMetrics renders the exposition payload. Per-shard fields are each
// snapshotted under one hold of that shard's lock and the totals are
// computed from the same snapshots (so forecache_sessions always equals
// the sum of the forecache_shard_sessions series in one scrape), engine
// cache stats are read outside the shard locks (each engine locks only
// its own cache), and the scheduler contributes its internally-consistent
// Stats snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var (
		sessions, evicted int
		agg               cache.Stats // departed sessions' totals keep the counters monotone
		engines           []*core.Engine
	)
	shardSessions := make([]int, len(s.shards))
	shardEvicted := make([]int, len(s.shards))
	for i, sh := range s.shards {
		n, ev, retired, engs := sh.snapshot()
		shardSessions[i], shardEvicted[i] = n, ev
		sessions += n
		evicted += ev
		agg.Hits += retired.Hits
		agg.Misses += retired.Misses
		agg.Prefetched += retired.Prefetched
		agg.Evicted += retired.Evicted
		engines = append(engines, engs...)
	}
	closed := s.closed.Load()

	for _, eng := range engines {
		cs := eng.CacheStats()
		agg.Hits += cs.Hits
		agg.Misses += cs.Misses
		agg.Prefetched += cs.Prefetched
		agg.Evicted += cs.Evicted
	}

	pw := &promWriter{}
	pw.gauge("forecache_sessions", "Live sessions with engine state.", float64(sessions))
	pw.counter("forecache_sessions_evicted_total", "Sessions evicted by the TTL or LRU cap.", float64(evicted))
	pw.gauge("forecache_server_closed", "1 after Close, 0 while serving.", boolValue(closed))
	pw.gauge("forecache_shards", "Session-tier shards behind the consistent-hash router.", float64(len(s.shards)))
	shardSess := make([]sample, len(s.shards))
	shardEv := make([]sample, len(s.shards))
	for i := range s.shards {
		l := labels(map[string]string{"shard": strconv.Itoa(i)})
		shardSess[i] = sample{labels: l, value: float64(shardSessions[i])}
		shardEv[i] = sample{labels: l, value: float64(shardEvicted[i])}
	}
	pw.family("forecache_shard_sessions", "Live sessions per session-tier shard; sums to forecache_sessions within one scrape.", "gauge", shardSess...)
	pw.family("forecache_shard_sessions_evicted_total", "Sessions evicted per session-tier shard (TTL or LRU cap).", "counter", shardEv...)

	pw.counter("forecache_cache_hits_total", "Tile requests served from a middleware cache, summed over all sessions ever (live and retired).", float64(agg.Hits))
	pw.counter("forecache_cache_misses_total", "Tile requests that fell through to the DBMS, summed over all sessions ever.", float64(agg.Misses))
	pw.counter("forecache_cache_prefetched_total", "Tiles inserted into prediction regions, summed over all sessions ever.", float64(agg.Prefetched))
	pw.counter("forecache_cache_evicted_total", "Tiles evicted from session caches, summed over all sessions ever.", float64(agg.Evicted))
	pw.gauge("forecache_cache_hit_ratio", "Lifetime cache hit rate (prediction accuracy, paper 5.2.2).", agg.HitRate())

	if s.sched != nil {
		st := s.sched.Stats()
		pw.counter("forecache_prefetch_queued_total", "Prefetch entries accepted into the scheduler queue.", float64(st.Queued))
		pw.counter("forecache_prefetch_dropped_total", "Prefetch entries rejected at submission.", float64(st.Dropped))
		pw.counter("forecache_prefetch_shed_total", "Queued entries evicted by global admission control.", float64(st.Shed))
		pw.counter("forecache_prefetch_cancelled_total", "Queued entries superseded by a newer batch or session eviction.", float64(st.Cancelled))
		pw.counter("forecache_prefetch_coalesced_total", "Entries that shared another entry's DBMS fetch (single-flight).", float64(st.Coalesced))
		pw.counter("forecache_prefetch_completed_total", "Entries whose tile was fetched and delivered.", float64(st.Completed))
		pw.counter("forecache_prefetch_errors_total", "Entries whose DBMS fetch failed.", float64(st.Errors))
		pw.gauge("forecache_prefetch_pending", "Entries queued right now across all sessions.", float64(st.Pending))
		pw.gauge("forecache_prefetch_peak_pending", "High-water mark of the pending queue.", float64(st.PeakPending))
		pw.gauge("forecache_prefetch_inflight", "DBMS fetches running right now.", float64(st.Inflight))
		pw.gauge("forecache_prefetch_pressure", "Global queue saturation in [0,1]; AdaptiveK engines shrink on it.", st.Pressure)
		pw.gauge("forecache_prefetch_queue_latency_seconds", "Mean time entries spent queued before their fetch was issued.", st.AvgQueueLatency.Seconds())

		depthSamples := make([]sample, 0, len(st.QueueDepths))
		pressureSamples := make([]sample, 0, len(st.SessionPressures))
		ids := make([]string, 0, len(st.QueueDepths))
		for id := range st.QueueDepths {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			l := labels(map[string]string{"session": id})
			depthSamples = append(depthSamples, sample{labels: l, value: float64(st.QueueDepths[id])})
			pressureSamples = append(pressureSamples, sample{labels: l, value: st.SessionPressures[id]})
		}
		pw.family("forecache_prefetch_session_queue_depth", "Live queued entries per session.", "gauge", depthSamples...)
		pw.family("forecache_prefetch_session_pressure", "Per-session fair-share backpressure in [0,1]; FairShare engines shrink on it.", "gauge", pressureSamples...)

		// A sharded pipeline additionally exposes per-shard series: the
		// deployment totals above are the sums of these within one scrape
		// (both come from the same kind of per-shard snapshots).
		if sharded, ok := s.sched.(interface{ ShardStats() []prefetch.Stats }); ok {
			per := sharded.ShardStats()
			pw.counter("forecache_prefetch_cross_shard_coalesced_total",
				"Worker fetches that joined another shard's in-flight DBMS fetch (deployment-wide single-flight).", float64(st.CrossShardCoalesced))
			queuedS := make([]sample, len(per))
			completedS := make([]sample, len(per))
			pendingS := make([]sample, len(per))
			pressureS := make([]sample, len(per))
			for i, shst := range per {
				l := labels(map[string]string{"shard": strconv.Itoa(i)})
				queuedS[i] = sample{labels: l, value: float64(shst.Queued)}
				completedS[i] = sample{labels: l, value: float64(shst.Completed)}
				pendingS[i] = sample{labels: l, value: float64(shst.Pending)}
				pressureS[i] = sample{labels: l, value: shst.Pressure}
			}
			pw.family("forecache_prefetch_shard_queued_total", "Prefetch entries accepted per scheduler shard.", "counter", queuedS...)
			pw.family("forecache_prefetch_shard_completed_total", "Entries fetched and delivered per scheduler shard.", "counter", completedS...)
			pw.family("forecache_prefetch_shard_pending", "Entries queued right now per scheduler shard.", "gauge", pendingS...)
			pw.family("forecache_prefetch_shard_pressure", "Queue saturation per scheduler shard in [0,1].", "gauge", pressureS...)
		}

		if st.UtilityCurve != nil {
			curveSamples := make([]sample, len(st.UtilityCurve))
			for pos, f := range st.UtilityCurve {
				curveSamples[pos] = sample{
					labels: labels(map[string]string{"position": strconv.Itoa(pos)}),
					value:  f,
				}
			}
			pw.family("forecache_utility_position_factor",
				"Effective position-decay curve: learned consumption rate of each batch position relative to position 0 (static 0.85^p until warmed up).",
				"gauge", curveSamples...)
			pw.counter("forecache_utility_observations_total", "Cache outcomes the utility curve was fit from.", float64(st.UtilityObservations))
		}
	}

	if s.push != nil {
		st := s.push.Stats()
		pw.gauge("forecache_push_streams", "Push streams attached right now.", float64(st.Open))
		pw.counter("forecache_push_streams_opened_total", "Push stream attachments ever (reconnects included).", float64(st.Opened))
		pw.counter("forecache_push_tiles_total", "Tile frames enqueued onto push streams (backfill included).", float64(st.Pushed))
		pw.counter("forecache_push_backfill_total", "Tile frames replayed from the server-side cache on stream re-attach.", float64(st.Backfilled))
		pw.counter("forecache_push_dropped_total", "Push frames lost to a full stream buffer or a detached session.", float64(st.Dropped))
		pw.counter("forecache_push_heartbeats_total", "Heartbeat frames written on idle push streams.", float64(st.Heartbeats))
		pw.counter("forecache_push_consumed_total", "Pushed tiles whose session later requested them.", float64(st.Consumed))
		drainIDs := make([]string, 0, len(st.DrainRates))
		for id := range st.DrainRates {
			drainIDs = append(drainIDs, id)
		}
		sort.Strings(drainIDs)
		drainSamples := make([]sample, len(drainIDs))
		for i, id := range drainIDs {
			drainSamples[i] = sample{
				labels: labels(map[string]string{"session": id}),
				value:  st.DrainRates[id],
			}
		}
		pw.family("forecache_push_drain_bytes_per_second",
			"Measured per-session stream drain rate (EWMA); the scheduler's bandwidth-aware admission term divides by it.",
			"gauge", drainSamples...)
	}

	if s.encoded != nil {
		st := s.encoded.Stats()
		pw.counter("forecache_tile_encode_cache_hits_total", "Tile payload requests served from the encoded-payload cache (or coalesced onto an in-flight encode).", float64(st.Hits))
		pw.counter("forecache_tile_encode_misses_total", "Tile payload encodings actually performed (encoded-cache misses).", float64(st.Misses))
		pw.counter("forecache_tile_encoded_cache_evicted_total", "Encoded payloads dropped by the cache's byte-budget LRU.", float64(st.Evicted))
		pw.gauge("forecache_tile_encoded_cache_entries", "Encoded payloads resident in the cache.", float64(st.Entries))
		pw.gauge("forecache_tile_encoded_cache_bytes", "Bytes of encoded payloads resident in the cache (budget accounting, bookkeeping overhead included).", float64(st.Bytes))
		if s.obs != nil {
			pw.histogramFamily("forecache_tile_encode_duration_seconds",
				"Wall time of tile payload encodings (JSON or binary); with the encoded cache on, only misses encode.",
				histSeries{snap: s.obs.TileEncode.Snapshot()})
			pw.histogramFamily("forecache_tile_response_bytes",
				"Size of /tile response payloads as written: post content negotiation, post compression.",
				histSeries{snap: s.obs.TileBytes.Snapshot()})
		}
	}

	if s.obs != nil {
		if s.push != nil {
			pw.histogramFamily("forecache_push_lead_time_seconds",
				"Push-to-consume lead time: tile frame enqueued onto a session's stream to that tile's request arriving.",
				histSeries{snap: s.obs.PushLead.Snapshot()})
		}
		pw.histogramFamily("forecache_request_duration_seconds",
			"End-to-end /tile request latency by outcome: hit (served from a middleware cache), miss (synchronous DBMS fetch), shed (refused before a tile was served).",
			histSeries{labels: map[string]string{"outcome": obs.OutcomeHit}, snap: s.obs.RequestHit.Snapshot()},
			histSeries{labels: map[string]string{"outcome": obs.OutcomeMiss}, snap: s.obs.RequestMiss.Snapshot()},
			histSeries{labels: map[string]string{"outcome": obs.OutcomeShed}, snap: s.obs.RequestShed.Snapshot()},
		)
		pw.histogramFamily("forecache_prefetch_queue_wait_seconds",
			"Time prefetch entries sat queued in the scheduler before their DBMS fetch was issued (or joined another's).",
			histSeries{snap: s.obs.QueueWait.Snapshot()})
		pw.histogramFamily("forecache_backend_fetch_duration_seconds",
			"Wall time of DBMS tile fetches, on the response path (sync misses) and off it (prefetches).",
			histSeries{snap: s.obs.BackendFetch.Snapshot()})
		pw.histogramFamily("forecache_prefetch_lead_time_seconds",
			"Prefetch lead time: cache insert of a prefetched tile to its first consumption by a request.",
			histSeries{snap: s.obs.LeadTime.Snapshot()})
	}

	if s.alloc != nil {
		// The Shares snapshot is taken under one policy lock hold, so within
		// one scrape every phase's shares sum to 1 even while reallocations
		// race the scrape. Samples are emitted in sorted (phase, model)
		// order so consecutive scrapes list the same series identically.
		shares := s.alloc.Shares()
		type phaseRow struct {
			name    string
			byModel map[string]float64
		}
		rows := make([]phaseRow, 0, len(shares))
		for ph, byModel := range shares {
			rows = append(rows, phaseRow{name: ph.String(), byModel: byModel})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
		var allocSamples []sample
		for _, row := range rows {
			models := make([]string, 0, len(row.byModel))
			for m := range row.byModel {
				models = append(models, m)
			}
			sort.Strings(models)
			for _, m := range models {
				allocSamples = append(allocSamples, sample{
					labels: labels(map[string]string{"phase": row.name, "model": m}),
					value:  row.byModel[m],
				})
			}
		}
		pw.family("forecache_allocation_share",
			"Current prefetch-budget share per (phase, model) under the adaptive allocation policy (the static table's split until the phase warms up); each phase's shares sum to 1.",
			"gauge", allocSamples...)
	}

	if s.persist != nil {
		st := s.persist.Status()
		pw.gauge("forecache_snapshot_age_seconds",
			"Age of the last successful learned-state snapshot; -1 before the first save.", st.AgeSeconds)
		pw.gauge("forecache_snapshot_last_result",
			"1 when the most recent snapshot save succeeded, 0 when it failed or none ran yet.",
			boolValue(st.LastResult == "ok"))
		pw.counter("forecache_snapshot_saves_total", "Successful learned-state snapshot writes.", float64(st.Saves))
		pw.counter("forecache_snapshot_failures_total", "Failed learned-state snapshot writes.", float64(st.Failures))
		pw.counter("forecache_snapshot_bytes_written_total", "Snapshot bytes written over the server's lifetime.", float64(st.BytesTotal))
		pw.gauge("forecache_snapshot_restored_families",
			"State families restored from the snapshot at startup (0 = cold start).", float64(st.Restored))
	}

	w.Header().Set("Content-Type", promContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = fmt.Fprint(w, pw.b.String())
}

func boolValue(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
