// Package server exposes the ForeCache middleware over HTTP: the tile API
// the client-side visualizer talks to (Figure 5's front-end boundary).
// Each browser session gets its own prediction engine, history and cache,
// keyed by a session identifier.
//
// The session tier is sharded: session state (the engine table, the
// LRU/TTL recency list, the retired-stats baseline) lives in N
// independent shards, each behind its own mutex, and a consistent-hash
// ring keyed on session id routes every request to its session's home
// shard. The Server itself is a thin router — it owns only the immutable
// config, the mux and the ring — so one shard's TTL sweep or table scan
// never blocks requests routed to another shard. The default is one
// shard, which behaves exactly like the pre-sharding single-table server.
//
// Session state is bounded: an LRU cap and an idle TTL evict stale
// sessions so long-running deployments don't leak one engine per session
// id forever. When the deployment routes prefetching through a shared
// prefetch pipeline, the server surfaces its stats and cancels an evicted
// session's queued fetches; WithMetrics additionally exposes the full
// scheduling loop (counters, per-session backpressure, cache hit rates,
// the learned utility curve, per-shard series) as Prometheus text under
// GET /metrics.
package server

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"net/url"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"forecache/internal/cache"
	"forecache/internal/core"
	"forecache/internal/obs"
	"forecache/internal/persist"
	"forecache/internal/prefetch"
	"forecache/internal/push"
	"forecache/internal/shard"
	"forecache/internal/tile"
)

// ErrClosed is returned for requests that need an engine after Close.
var ErrClosed = errors.New("server: closed")

// Meta describes the served dataset to clients.
type Meta struct {
	Levels   int      `json:"levels"`
	TileSize int      `json:"tileSize"`
	Attrs    []string `json:"attrs"`
}

// EngineFactory builds a fresh prediction engine for a new session. The
// session id lets the factory register the engine with a shared prefetch
// scheduler.
type EngineFactory func(session string) (*core.Engine, error)

// Option customizes a Server.
type Option func(*Server)

// WithShards splits the session tier into n independent shards behind a
// consistent-hash router keyed on session id: each shard owns its own
// session table, recency list, TTL sweep and retired-stats baseline under
// its own mutex, so session churn in one shard never contends with
// requests routed to another. n <= 1 keeps the single-shard layout, which
// behaves identically to the pre-sharding server.
func WithShards(n int) Option {
	return func(s *Server) { s.nshards = n }
}

// WithSessionLimit caps live sessions at n across the whole server; with
// multiple shards each shard caps at ceil(n / shards), so the fleet total
// never exceeds n by more than the rounding slack. The least recently
// used session of the arriving session's shard is evicted when the shard
// would exceed its cap. n <= 0 means unlimited.
func WithSessionLimit(n int) Option {
	return func(s *Server) { s.maxSessions = n }
}

// WithSessionTTL evicts sessions idle for longer than ttl (checked lazily
// on access, per shard). ttl <= 0 disables expiry.
func WithSessionTTL(ttl time.Duration) Option {
	return func(s *Server) { s.ttl = ttl }
}

// WithScheduler attaches the deployment's shared prefetch pipeline — the
// single-lock *prefetch.Scheduler or the consistent-hash
// *prefetch.ShardedScheduler: its stats appear under /stats, evicted
// sessions' queued fetches are cancelled, and Close shuts it down.
func WithScheduler(sched prefetch.Pipeline) Option {
	return func(s *Server) { s.sched = sched }
}

// WithMetrics registers a dependency-free Prometheus text-format GET
// /metrics endpoint exposing server, cache and prefetch-pipeline telemetry
// (including per-session backpressure, per-shard session and scheduler
// series, the learned utility curve and the adaptive allocation shares
// when the deployment has them).
func WithMetrics() Option {
	return func(s *Server) { s.metrics = true }
}

// WithAllocation attaches the deployment's shared feedback-driven
// allocation policy so its learned per-(phase, model) budget shares appear
// under /stats ("allocation") and /metrics (forecache_allocation_share).
func WithAllocation(p *core.AdaptivePolicy) Option {
	return func(s *Server) { s.alloc = p }
}

// WithEncodedTiles attaches the deployment-wide encoded-payload cache and
// turns on /tile content negotiation: "Accept: application/x-forecache-tile"
// selects the binary codec, "Accept-Encoding: gzip" compresses the payload
// with pooled writers, and every encoding is memoized per (coord, format,
// compression) — an immutable tile is encoded once and served N times as
// cached bytes. Without this option /tile keeps the legacy per-request
// JSON marshal, byte for byte.
func WithEncodedTiles(ec *tile.EncodedCache) Option {
	return func(s *Server) { s.encoded = ec }
}

// WithObs attaches the deployment's observability pipeline: every /tile
// request gets a trace (id returned as X-Trace-ID, span breakdown
// retained in the pipeline's ring buffer, request latency fed to the
// outcome-split histogram), /metrics additionally exports the latency
// histogram families, and — when the pipeline keeps a trace buffer —
// GET /debug/traces serves the slowest retained traces. Nil is a no-op.
func WithObs(p *obs.Pipeline) Option {
	return func(s *Server) { s.obs = p }
}

// WithPersist attaches the deployment's snapshot store: Close writes one
// final snapshot after the scheduler stops (so a graceful shutdown never
// loses learned state to the interval ticker's timing), and the store's
// status — restore results per family, snapshot age, last result, bytes
// written — appears under /stats ("snapshot") and /metrics
// (forecache_snapshot_*).
func WithPersist(st *persist.Store) Option {
	return func(s *Server) { s.persist = st }
}

// WithPprof mounts net/http/pprof's profiling handlers under
// /debug/pprof/ (opt-in: profiling endpoints expose internals and cost
// CPU, so they are off unless a deployment asks).
func WithPprof() Option {
	return func(s *Server) { s.pprofOn = true }
}

// session is one live engine plus its eviction bookkeeping.
type session struct {
	id       string
	eng      *core.Engine
	el       *list.Element // position in the recency list
	lastSeen time.Time
}

// sessionShard is one independent slice of the session tier: a session
// table, its recency list and the eviction/retired-stats bookkeeping, all
// behind one shard-local mutex. Every mutable per-session field the
// pre-sharding Server kept under its single lock lives here now; the
// Server above it holds only immutable routing state.
type sessionShard struct {
	srv *Server // immutable config back-pointer (ttl, caps, clock, sched)

	mu       sync.Mutex
	sessions map[string]*session
	recency  *list.List // of *session, front = most recently used
	evicted  int
	// retired accumulates the cache counters of sessions that left the
	// table (eviction or Close), so the /metrics cache counters are
	// monotone over the server's lifetime — a Prometheus counter must
	// never decrease just because a session aged out.
	retired cache.Stats
	closed  bool
}

// Server is the HTTP middleware front door: a thin consistent-hash router
// over N session shards. Create with New, then mount via Handler (it
// implements http.Handler). All mutable session state lives in the
// shards; the Server owns only the mux, the ring and immutable config.
type Server struct {
	meta        Meta
	factory     EngineFactory
	mux         *http.ServeMux
	sched       prefetch.Pipeline
	alloc       *core.AdaptivePolicy
	persist     *persist.Store
	push        *push.Registry     // nil => pull-only deployment
	encoded     *tile.EncodedCache // nil => legacy per-request JSON marshal
	metrics     bool
	obs         *obs.Pipeline // nil => untraced
	pprofOn     bool
	maxSessions int
	ttl         time.Duration
	now         func() time.Time // test hook
	start       time.Time        // construction time, for /stats uptime
	nshards     int
	perShardCap int // ceil(maxSessions / nshards); 0 = unlimited
	ring        *shard.Ring
	shards      []*sessionShard
	closed      atomic.Bool
}

// New builds a server for a pyramid-backed middleware.
func New(meta Meta, factory EngineFactory, opts ...Option) *Server {
	s := &Server{
		meta:    meta,
		factory: factory,
		mux:     http.NewServeMux(),
		now:     time.Now,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.nshards < 1 {
		s.nshards = 1
	}
	if s.maxSessions > 0 {
		s.perShardCap = (s.maxSessions + s.nshards - 1) / s.nshards
	}
	s.ring = shard.NewRing(s.nshards)
	s.shards = make([]*sessionShard, s.nshards)
	for i := range s.shards {
		s.shards[i] = &sessionShard{srv: s, sessions: make(map[string]*session), recency: list.New()}
	}
	s.start = s.now()
	s.mux.HandleFunc("GET /meta", s.handleMeta)
	s.mux.HandleFunc("GET /tile", s.handleTile)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /reset", s.handleReset)
	if s.push != nil {
		s.mux.HandleFunc("GET /stream", s.handleStream)
	}
	if s.metrics {
		s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if s.obs != nil && s.obs.Traces != nil {
		s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	}
	if s.pprofOn {
		// pprof.Index routes named profiles (heap, goroutine, ...) by path
		// suffix, so the subtree pattern covers them all.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// shardFor returns the session id's home shard.
func (s *Server) shardFor(id string) *sessionShard { return s.shards[s.ring.Locate(id)] }

// NumShards returns how many session shards the router fans out over.
func (s *Server) NumShards() int { return s.nshards }

// Close releases server resources. It is idempotent and safe to call
// concurrently with in-flight requests: each shard's session table is
// torn down under that shard's lock (later tile requests get ErrClosed /
// 503 and /stats keeps answering with server-wide telemetry), every
// engine is detached so pending deliveries are dropped, the shared
// scheduler, if any, is shut down after cancelling all queued prefetches,
// and finally the snapshot store, if any, writes the deployment's learned
// state to disk one last time — after the scheduler stops, so the
// snapshot sees the last outcomes the worker pool delivered.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		if s.push != nil {
			s.push.Close() // idempotent; re-signals any straggling streams
		}
		if s.sched != nil {
			s.sched.Close() // idempotent; lets double-Close still stop workers
		}
		if s.persist != nil {
			s.persist.Close()
		}
		return
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.closed = true
		closing := make([]*session, 0, len(sh.sessions))
		for _, sess := range sh.sessions {
			closing = append(closing, sess)
			sh.retireStatsLocked(sess)
		}
		sh.sessions = make(map[string]*session)
		sh.recency.Init()
		sh.mu.Unlock()
		s.releaseSessions(closing)
	}
	if s.push != nil {
		// Signal every remaining stream handler to return (sessions created
		// mid-Close may have attached after their shard drained). Close only
		// closes done channels — it never waits on a handler mid-write, so
		// it cannot deadlock against a stalled stream.
		s.push.Close()
	}
	if s.sched != nil {
		s.sched.Close()
	}
	if s.persist != nil {
		s.persist.Close()
	}
}

// sessionID extracts the request's session id ("default" when absent).
func sessionID(r *http.Request) string {
	if id := r.URL.Query().Get("session"); id != "" {
		return id
	}
	return "default"
}

// session returns (creating on demand) the engine for the request's
// session id; the id defaults to "default" so single-user tools need no
// bookkeeping. Expired and over-cap sessions of the id's home shard are
// evicted here, on access — a sweep only ever holds its own shard's lock,
// so it cannot stall requests routed to other shards.
func (s *Server) session(r *http.Request) (*core.Engine, error) {
	id := sessionID(r)
	sh := s.shardFor(id)
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return nil, ErrClosed
	}
	now := s.now()
	evicted := sh.sweepLocked(now)
	if sess, ok := sh.sessions[id]; ok {
		sess.lastSeen = now
		sh.recency.MoveToFront(sess.el)
		sh.mu.Unlock()
		s.releaseSessions(evicted)
		return sess.eng, nil
	}
	sh.mu.Unlock()
	s.releaseSessions(evicted)

	// Build the engine outside the lock: assembling one can mean training
	// models, and stalling every other session on it would serialize the
	// shard.
	eng, err := s.factory(id)
	if err != nil {
		return nil, err
	}

	sh.mu.Lock()
	if sh.closed {
		// Close won the race while the engine was being built: discard it
		// before it can register with the (stopping) scheduler.
		sh.mu.Unlock()
		eng.DetachScheduler()
		return nil, ErrClosed
	}
	if sess, ok := sh.sessions[id]; ok {
		// A concurrent request created this session first; use its engine
		// and discard ours (it never submitted anything to the scheduler).
		sess.lastSeen = s.now()
		sh.recency.MoveToFront(sess.el)
		sh.mu.Unlock()
		eng.DetachScheduler()
		return sess.eng, nil
	}
	sess := &session{id: id, eng: eng, lastSeen: s.now()}
	sess.el = sh.recency.PushFront(sess)
	sh.sessions[id] = sess
	evicted = nil
	for s.perShardCap > 0 && len(sh.sessions) > s.perShardCap {
		evicted = append(evicted, sh.evictLocked(sh.recency.Back().Value.(*session)))
	}
	sh.mu.Unlock()
	s.releaseSessions(evicted)
	return eng, nil
}

// peekSession returns the request's existing engine without creating one —
// read-only endpoints (/stats) and idempotent ones (/reset) must not spend
// a factory run, and at the session cap must not evict a live analyst's
// session, just because a probe named an unknown id.
func (s *Server) peekSession(r *http.Request) (*core.Engine, bool) {
	sh := s.shardFor(sessionID(r))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sess, ok := sh.sessions[sessionID(r)]
	if !ok {
		return nil, false
	}
	return sess.eng, true
}

// hasSession reports whether id currently has a live engine (test hook).
func (s *Server) hasSession(id string) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.sessions[id]
	return ok
}

// sweepLocked removes every session idle past the TTL from this shard's
// tables and returns them for release. It scans only this shard, under
// this shard's lock: a sweep here cannot block another shard's requests.
func (sh *sessionShard) sweepLocked(now time.Time) []*session {
	if sh.srv.ttl <= 0 {
		return nil
	}
	var evicted []*session
	for sh.recency.Len() > 0 {
		oldest := sh.recency.Back().Value.(*session)
		if now.Sub(oldest.lastSeen) <= sh.srv.ttl {
			break
		}
		evicted = append(evicted, sh.evictLocked(oldest))
	}
	return evicted
}

// evictLocked unlinks a session from the shard tables. The scheduler
// cleanup happens in releaseSessions, outside the shard lock: detaching
// waits out any in-flight request on the session's engine, which must not
// stall the shard.
func (sh *sessionShard) evictLocked(sess *session) *session {
	sh.recency.Remove(sess.el)
	delete(sh.sessions, sess.id)
	sh.evicted++
	sh.retireStatsLocked(sess)
	return sess
}

// retireStatsLocked folds a departing session's cache counters into the
// shard's lifetime totals. Reading the engine's cache stats under the
// shard lock is safe: the cache mutex is a leaf lock, never held while
// acquiring a shard's mu.
func (sh *sessionShard) retireStatsLocked(sess *session) {
	cs := sess.eng.CacheStats()
	sh.retired.Hits += cs.Hits
	sh.retired.Misses += cs.Misses
	sh.retired.Prefetched += cs.Prefetched
	sh.retired.Evicted += cs.Evicted
}

// snapshotLocked reads one shard's aggregation inputs under its lock:
// session count, eviction count, the retired baseline and the live
// engines. /stats and /metrics sum these per-shard snapshots, so the
// totals they report always equal the sum of the per-shard series taken
// in the same pass.
func (sh *sessionShard) snapshot() (sessions, evicted int, retired cache.Stats, engines []*core.Engine) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	engines = make([]*core.Engine, 0, len(sh.sessions))
	for _, sess := range sh.sessions {
		engines = append(engines, sess.eng)
	}
	return len(sh.sessions), sh.evicted, sh.retired, engines
}

// releaseSessions finishes evictions outside the shard lock: the engine is
// detached first (so a request running right now cannot re-register the
// session with the scheduler after the cancel), then the session's queued
// prefetches are dropped and its push stream, if any, is torn down (the
// stream handler observes the closed done channel and returns — an evicted
// session must not leak a goroutine holding a hijackable response).
func (s *Server) releaseSessions(evicted []*session) {
	if s.sched == nil && s.push == nil {
		return
	}
	for _, sess := range evicted {
		sess.eng.DetachScheduler()
		if s.sched != nil {
			s.sched.CancelSession(sess.id)
		}
		if s.push != nil {
			s.push.Detach(sess.id)
		}
	}
}

// Sessions returns the number of live sessions across all shards.
func (s *Server) Sessions() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += len(sh.sessions)
		sh.mu.Unlock()
	}
	return total
}

// Evicted returns how many sessions have been evicted (TTL or LRU cap)
// across all shards.
func (s *Server) Evicted() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.evicted
		sh.mu.Unlock()
	}
	return total
}

// Scheduler returns the attached shared prefetch pipeline (nil when the
// deployment prefetches inline).
func (s *Server) Scheduler() prefetch.Pipeline { return s.sched }

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.meta)
}

func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	// Trace the whole request (no-ops when untraced). A request refused on
	// any early-out below finishes without an outcome and is recorded as
	// shed; the engine sets hit/miss and the stage spans.
	rt := s.obs.StartTrace(sessionID(r), r.URL.RawQuery)
	defer rt.Finish()
	if id := rt.ID(); id != "" {
		w.Header().Set("X-Trace-ID", id)
	}
	endSession := rt.StartSpan("session")
	eng, err := s.session(r)
	endSession()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err)
		return
	}
	c, err := coordFromQuery(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := eng.RequestTraced(c, rt)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if s.push != nil {
		// Close the push-to-consume loop: if this tile was framed onto the
		// session's stream, its lead time (push to request) is observed now.
		s.push.Consumed(sessionID(r), c)
	}
	if resp.Hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	w.Header().Set("X-Phase", resp.Phase.String())
	w.Header().Set("X-Latency-Ms",
		strconv.FormatFloat(float64(resp.Latency)/float64(time.Millisecond), 'f', 3, 64))
	s.writeTile(w, r, c, resp.Tile)
}

// StatsResponse is the /stats payload: the session's cache counters (when
// the session exists) plus server-wide session and prefetch-pipeline
// telemetry — including the scheduler's backpressure signal, per-session
// queue depths (Scheduler.QueueDepths), the per-shard session spread and,
// for deployments with adaptive allocation, the learned per-(phase,
// model) budget shares. Asking for an unknown session returns the
// server-wide fields only — it does not create a session.
type StatsResponse struct {
	Cache    *cache.Stats `json:"cache,omitempty"`
	Sessions int          `json:"sessions"`
	Evicted  int          `json:"evicted"`
	Closed   bool         `json:"closed,omitempty"`
	// Shards is the session-tier shard count (1 = the single-table
	// layout); ShardSessions is the live-session count per shard, in
	// shard-id order, summing exactly to Sessions within this snapshot.
	Shards        int             `json:"shards"`
	ShardSessions []int           `json:"shard_sessions"`
	Pressure      float64         `json:"pressure"`
	Scheduler     *prefetch.Stats `json:"scheduler,omitempty"`
	// Push reports the push-delivery registry (open streams, pushed and
	// consumed frames, per-session drain rates). Absent on pull-only
	// deployments.
	Push *push.Stats `json:"push,omitempty"`
	// Allocation maps phase name -> model -> current smoothed budget share
	// of the deployment's shared AdaptivePolicy.
	Allocation map[string]map[string]float64 `json:"allocation,omitempty"`
	// Snapshot reports the learned-state snapshot store: per-family restore
	// results ("restored" vs "cold"), save counters and the age of the last
	// snapshot. Absent when the deployment persists nothing.
	Snapshot *persist.Status `json:"snapshot,omitempty"`
	// Uptime is seconds since the server was constructed; with GoVersion
	// and Build it lets fleet dashboards tell deployments (and deploys)
	// apart.
	Uptime    float64 `json:"uptime_seconds"`
	GoVersion string  `json:"go_version"`
	// Build carries the main module path/version and VCS stamp from
	// runtime/debug.ReadBuildInfo (absent in non-module test binaries).
	Build map[string]string `json:"build,omitempty"`
}

// buildInfoMap extracts the identifying subset of the binary's build info
// once; ReadBuildInfo walks the whole embedded blob, not worth repeating
// per /stats probe.
var buildInfoMap = sync.OnceValue(func() map[string]string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return nil
	}
	out := map[string]string{"path": bi.Path}
	if bi.Main.Version != "" {
		out["version"] = bi.Main.Version
	}
	for _, set := range bi.Settings {
		switch set.Key {
		case "vcs.revision", "vcs.time", "vcs.modified", "GOOS", "GOARCH":
			out[set.Key] = set.Value
		}
	}
	return out
})

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Aggregate the per-shard snapshots — each taken under one hold of its
	// shard's lock — then the scheduler counters under the pipeline's own
	// snapshot discipline. The reported totals are the exact sums of the
	// per-shard values read in this pass. /stats stays answerable during
	// and after Close — it reports the torn-down state instead of racing it.
	out := StatsResponse{
		Closed:        s.closed.Load(),
		Shards:        s.nshards,
		ShardSessions: make([]int, s.nshards),
		Uptime:        max(0, s.now().Sub(s.start).Seconds()),
		GoVersion:     runtime.Version(),
		Build:         buildInfoMap(),
	}
	for i, sh := range s.shards {
		sessions, evicted, _, _ := sh.snapshot()
		out.ShardSessions[i] = sessions
		out.Sessions += sessions
		out.Evicted += evicted
	}
	if eng, ok := s.peekSession(r); ok {
		cs := eng.CacheStats()
		out.Cache = &cs
	}
	if s.sched != nil {
		st := s.sched.Stats()
		out.Scheduler = &st
		out.Pressure = st.Pressure
	}
	if s.push != nil {
		st := s.push.Stats()
		out.Push = &st
	}
	if s.alloc != nil {
		shares := s.alloc.Shares()
		out.Allocation = make(map[string]map[string]float64, len(shares))
		for ph, byModel := range shares {
			out.Allocation[ph.String()] = byModel
		}
	}
	if s.persist != nil {
		st := s.persist.Status()
		out.Snapshot = &st
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	// Resetting a session that does not exist is a no-op, not a reason to
	// build an engine.
	if eng, ok := s.peekSession(r); ok {
		eng.Reset()
	}
	w.WriteHeader(http.StatusNoContent)
}

// coordFromQuery parses a tile coordinate from ?level=&y=&x=. It takes the
// parsed query values (rather than the request) so the fuzz suite can drive
// it with arbitrary inputs.
func coordFromQuery(q url.Values) (tile.Coord, error) {
	var c tile.Coord
	for _, f := range []struct {
		name string
		dst  *int
	}{{"level", &c.Level}, {"y", &c.Y}, {"x", &c.X}} {
		raw := q.Get(f.name)
		if raw == "" {
			return c, fmt.Errorf("missing query parameter %q", f.name)
		}
		v, err := strconv.Atoi(raw)
		if err != nil {
			return c, fmt.Errorf("bad %s: %w", f.name, err)
		}
		*f.dst = v
	}
	return c, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
