// Package server exposes the ForeCache middleware over HTTP: the tile API
// the client-side visualizer talks to (Figure 5's front-end boundary).
// Each browser session gets its own prediction engine, history and cache,
// keyed by a session identifier.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"forecache/internal/core"
	"forecache/internal/tile"
)

// Meta describes the served dataset to clients.
type Meta struct {
	Levels   int      `json:"levels"`
	TileSize int      `json:"tileSize"`
	Attrs    []string `json:"attrs"`
}

// EngineFactory builds a fresh prediction engine for a new session.
type EngineFactory func() (*core.Engine, error)

// Server is the HTTP middleware front door. Create with New, then mount
// via Handler (it implements http.Handler).
type Server struct {
	meta    Meta
	factory EngineFactory
	mux     *http.ServeMux

	mu       sync.Mutex
	sessions map[string]*core.Engine
}

// New builds a server for a pyramid-backed middleware.
func New(meta Meta, factory EngineFactory) *Server {
	s := &Server{
		meta:     meta,
		factory:  factory,
		mux:      http.NewServeMux(),
		sessions: make(map[string]*core.Engine),
	}
	s.mux.HandleFunc("GET /meta", s.handleMeta)
	s.mux.HandleFunc("GET /tile", s.handleTile)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /reset", s.handleReset)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// session returns (creating on demand) the engine for the request's
// session id; the id defaults to "default" so single-user tools need no
// bookkeeping.
func (s *Server) session(r *http.Request) (*core.Engine, error) {
	id := r.URL.Query().Get("session")
	if id == "" {
		id = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if eng, ok := s.sessions[id]; ok {
		return eng, nil
	}
	eng, err := s.factory()
	if err != nil {
		return nil, err
	}
	s.sessions[id] = eng
	return eng, nil
}

// Sessions returns the number of live sessions.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.meta)
}

func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	eng, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	c, err := coordFromQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := eng.Request(c)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if resp.Hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	w.Header().Set("X-Phase", resp.Phase.String())
	w.Header().Set("X-Latency-Ms",
		strconv.FormatFloat(float64(resp.Latency)/float64(time.Millisecond), 'f', 3, 64))
	writeJSON(w, http.StatusOK, resp.Tile)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	eng, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, eng.CacheStats())
}

func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	eng, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	eng.Reset()
	w.WriteHeader(http.StatusNoContent)
}

func coordFromQuery(r *http.Request) (tile.Coord, error) {
	q := r.URL.Query()
	var c tile.Coord
	for _, f := range []struct {
		name string
		dst  *int
	}{{"level", &c.Level}, {"y", &c.Y}, {"x", &c.X}} {
		raw := q.Get(f.name)
		if raw == "" {
			return c, fmt.Errorf("missing query parameter %q", f.name)
		}
		v, err := strconv.Atoi(raw)
		if err != nil {
			return c, fmt.Errorf("bad %s: %w", f.name, err)
		}
		*f.dst = v
	}
	return c, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
