// Package server exposes the ForeCache middleware over HTTP: the tile API
// the client-side visualizer talks to (Figure 5's front-end boundary).
// Each browser session gets its own prediction engine, history and cache,
// keyed by a session identifier. Session state is bounded: an LRU cap and
// an idle TTL evict stale sessions so long-running deployments don't leak
// one engine per session id forever. When the deployment routes prefetching
// through a shared prefetch.Scheduler, the server surfaces its stats and
// cancels an evicted session's queued fetches; WithMetrics additionally
// exposes the full scheduling loop (counters, per-session backpressure,
// cache hit rates, the learned utility curve) as Prometheus text under
// GET /metrics.
package server

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"net/url"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"forecache/internal/cache"
	"forecache/internal/core"
	"forecache/internal/obs"
	"forecache/internal/persist"
	"forecache/internal/prefetch"
	"forecache/internal/tile"
)

// ErrClosed is returned for requests that need an engine after Close.
var ErrClosed = errors.New("server: closed")

// Meta describes the served dataset to clients.
type Meta struct {
	Levels   int      `json:"levels"`
	TileSize int      `json:"tileSize"`
	Attrs    []string `json:"attrs"`
}

// EngineFactory builds a fresh prediction engine for a new session. The
// session id lets the factory register the engine with a shared prefetch
// scheduler.
type EngineFactory func(session string) (*core.Engine, error)

// Option customizes a Server.
type Option func(*Server)

// WithSessionLimit caps live sessions at n; the least recently used session
// is evicted when a new one would exceed the cap. n <= 0 means unlimited.
func WithSessionLimit(n int) Option {
	return func(s *Server) { s.maxSessions = n }
}

// WithSessionTTL evicts sessions idle for longer than ttl (checked lazily
// on access). ttl <= 0 disables expiry.
func WithSessionTTL(ttl time.Duration) Option {
	return func(s *Server) { s.ttl = ttl }
}

// WithScheduler attaches the deployment's shared prefetch scheduler: its
// stats appear under /stats, evicted sessions' queued fetches are
// cancelled, and Close shuts it down.
func WithScheduler(sched *prefetch.Scheduler) Option {
	return func(s *Server) { s.sched = sched }
}

// WithMetrics registers a dependency-free Prometheus text-format GET
// /metrics endpoint exposing server, cache and prefetch-pipeline telemetry
// (including per-session backpressure, the learned utility curve and the
// adaptive allocation shares when the deployment has them).
func WithMetrics() Option {
	return func(s *Server) { s.metrics = true }
}

// WithAllocation attaches the deployment's shared feedback-driven
// allocation policy so its learned per-(phase, model) budget shares appear
// under /stats ("allocation") and /metrics (forecache_allocation_share).
func WithAllocation(p *core.AdaptivePolicy) Option {
	return func(s *Server) { s.alloc = p }
}

// WithObs attaches the deployment's observability pipeline: every /tile
// request gets a trace (id returned as X-Trace-ID, span breakdown
// retained in the pipeline's ring buffer, request latency fed to the
// outcome-split histogram), /metrics additionally exports the latency
// histogram families, and — when the pipeline keeps a trace buffer —
// GET /debug/traces serves the slowest retained traces. Nil is a no-op.
func WithObs(p *obs.Pipeline) Option {
	return func(s *Server) { s.obs = p }
}

// WithPersist attaches the deployment's snapshot store: Close writes one
// final snapshot after the scheduler stops (so a graceful shutdown never
// loses learned state to the interval ticker's timing), and the store's
// status — restore results per family, snapshot age, last result, bytes
// written — appears under /stats ("snapshot") and /metrics
// (forecache_snapshot_*).
func WithPersist(st *persist.Store) Option {
	return func(s *Server) { s.persist = st }
}

// WithPprof mounts net/http/pprof's profiling handlers under
// /debug/pprof/ (opt-in: profiling endpoints expose internals and cost
// CPU, so they are off unless a deployment asks).
func WithPprof() Option {
	return func(s *Server) { s.pprofOn = true }
}

// session is one live engine plus its eviction bookkeeping.
type session struct {
	id       string
	eng      *core.Engine
	el       *list.Element // position in the recency list
	lastSeen time.Time
}

// Server is the HTTP middleware front door. Create with New, then mount
// via Handler (it implements http.Handler).
type Server struct {
	meta        Meta
	factory     EngineFactory
	mux         *http.ServeMux
	sched       *prefetch.Scheduler
	alloc       *core.AdaptivePolicy
	persist     *persist.Store
	metrics     bool
	obs         *obs.Pipeline // nil => untraced
	pprofOn     bool
	maxSessions int
	ttl         time.Duration
	now         func() time.Time // test hook
	start       time.Time        // construction time, for /stats uptime

	mu       sync.Mutex
	sessions map[string]*session
	recency  *list.List // of *session, front = most recently used
	evicted  int
	// retired accumulates the cache counters of sessions that left the
	// table (eviction or Close), so the /metrics cache counters are
	// monotone over the server's lifetime — a Prometheus counter must
	// never decrease just because a session aged out.
	retired cache.Stats
	closed  bool
}

// New builds a server for a pyramid-backed middleware.
func New(meta Meta, factory EngineFactory, opts ...Option) *Server {
	s := &Server{
		meta:     meta,
		factory:  factory,
		mux:      http.NewServeMux(),
		now:      time.Now,
		sessions: make(map[string]*session),
		recency:  list.New(),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.start = s.now()
	s.mux.HandleFunc("GET /meta", s.handleMeta)
	s.mux.HandleFunc("GET /tile", s.handleTile)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /reset", s.handleReset)
	if s.metrics {
		s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if s.obs != nil && s.obs.Traces != nil {
		s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	}
	if s.pprofOn {
		// pprof.Index routes named profiles (heap, goroutine, ...) by path
		// suffix, so the subtree pattern covers them all.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close releases server resources. It is idempotent and safe to call
// concurrently with in-flight requests: the session tables are torn down
// under the server lock (later tile requests get ErrClosed / 503 and
// /stats keeps answering with server-wide telemetry), every engine is
// detached so pending deliveries are dropped, the shared scheduler, if
// any, is shut down after cancelling all queued prefetches, and finally
// the snapshot store, if any, writes the deployment's learned state to
// disk one last time — after the scheduler stops, so the snapshot sees
// the last outcomes the worker pool delivered.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if s.sched != nil {
			s.sched.Close() // idempotent; lets double-Close still stop workers
		}
		if s.persist != nil {
			s.persist.Close()
		}
		return
	}
	s.closed = true
	closing := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		closing = append(closing, sess)
		s.retireStatsLocked(sess)
	}
	s.sessions = make(map[string]*session)
	s.recency.Init()
	s.mu.Unlock()
	s.releaseSessions(closing)
	if s.sched != nil {
		s.sched.Close()
	}
	if s.persist != nil {
		s.persist.Close()
	}
}

// sessionID extracts the request's session id ("default" when absent).
func sessionID(r *http.Request) string {
	if id := r.URL.Query().Get("session"); id != "" {
		return id
	}
	return "default"
}

// session returns (creating on demand) the engine for the request's
// session id; the id defaults to "default" so single-user tools need no
// bookkeeping. Expired and over-cap sessions are evicted here, on access.
func (s *Server) session(r *http.Request) (*core.Engine, error) {
	id := sessionID(r)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	now := s.now()
	evicted := s.sweepLocked(now)
	if sess, ok := s.sessions[id]; ok {
		sess.lastSeen = now
		s.recency.MoveToFront(sess.el)
		s.mu.Unlock()
		s.releaseSessions(evicted)
		return sess.eng, nil
	}
	s.mu.Unlock()
	s.releaseSessions(evicted)

	// Build the engine outside the lock: assembling one can mean training
	// models, and stalling every other session on it would serialize the
	// server.
	eng, err := s.factory(id)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		// Close won the race while the engine was being built: discard it
		// before it can register with the (stopping) scheduler.
		s.mu.Unlock()
		eng.DetachScheduler()
		return nil, ErrClosed
	}
	if sess, ok := s.sessions[id]; ok {
		// A concurrent request created this session first; use its engine
		// and discard ours (it never submitted anything to the scheduler).
		sess.lastSeen = s.now()
		s.recency.MoveToFront(sess.el)
		s.mu.Unlock()
		eng.DetachScheduler()
		return sess.eng, nil
	}
	sess := &session{id: id, eng: eng, lastSeen: s.now()}
	sess.el = s.recency.PushFront(sess)
	s.sessions[id] = sess
	evicted = nil
	for s.maxSessions > 0 && len(s.sessions) > s.maxSessions {
		evicted = append(evicted, s.evictLocked(s.recency.Back().Value.(*session)))
	}
	s.mu.Unlock()
	s.releaseSessions(evicted)
	return eng, nil
}

// peekSession returns the request's existing engine without creating one —
// read-only endpoints (/stats) and idempotent ones (/reset) must not spend
// a factory run, and at the session cap must not evict a live analyst's
// session, just because a probe named an unknown id.
func (s *Server) peekSession(r *http.Request) (*core.Engine, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[sessionID(r)]
	if !ok {
		return nil, false
	}
	return sess.eng, true
}

// sweepLocked removes every session idle past the TTL from the tables and
// returns them for release.
func (s *Server) sweepLocked(now time.Time) []*session {
	if s.ttl <= 0 {
		return nil
	}
	var evicted []*session
	for s.recency.Len() > 0 {
		oldest := s.recency.Back().Value.(*session)
		if now.Sub(oldest.lastSeen) <= s.ttl {
			break
		}
		evicted = append(evicted, s.evictLocked(oldest))
	}
	return evicted
}

// evictLocked unlinks a session from the server tables. The scheduler
// cleanup happens in releaseSessions, outside s.mu: detaching waits out any
// in-flight request on the session's engine, which must not stall the
// whole server.
func (s *Server) evictLocked(sess *session) *session {
	s.recency.Remove(sess.el)
	delete(s.sessions, sess.id)
	s.evicted++
	s.retireStatsLocked(sess)
	return sess
}

// retireStatsLocked folds a departing session's cache counters into the
// server's lifetime totals. Reading the engine's cache stats under the
// server lock is safe: the cache mutex is a leaf lock, never held while
// acquiring s.mu.
func (s *Server) retireStatsLocked(sess *session) {
	cs := sess.eng.CacheStats()
	s.retired.Hits += cs.Hits
	s.retired.Misses += cs.Misses
	s.retired.Prefetched += cs.Prefetched
	s.retired.Evicted += cs.Evicted
}

// releaseSessions finishes evictions outside the server lock: the engine is
// detached first (so a request running right now cannot re-register the
// session with the scheduler after the cancel), then the session's queued
// prefetches are dropped.
func (s *Server) releaseSessions(evicted []*session) {
	if s.sched == nil {
		return
	}
	for _, sess := range evicted {
		sess.eng.DetachScheduler()
		s.sched.CancelSession(sess.id)
	}
}

// Sessions returns the number of live sessions.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Evicted returns how many sessions have been evicted (TTL or LRU cap).
func (s *Server) Evicted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Scheduler returns the attached shared prefetch scheduler (nil when the
// deployment prefetches inline).
func (s *Server) Scheduler() *prefetch.Scheduler { return s.sched }

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.meta)
}

func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	// Trace the whole request (no-ops when untraced). A request refused on
	// any early-out below finishes without an outcome and is recorded as
	// shed; the engine sets hit/miss and the stage spans.
	rt := s.obs.StartTrace(sessionID(r), r.URL.RawQuery)
	defer rt.Finish()
	if id := rt.ID(); id != "" {
		w.Header().Set("X-Trace-ID", id)
	}
	endSession := rt.StartSpan("session")
	eng, err := s.session(r)
	endSession()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err)
		return
	}
	c, err := coordFromQuery(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := eng.RequestTraced(c, rt)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if resp.Hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	w.Header().Set("X-Phase", resp.Phase.String())
	w.Header().Set("X-Latency-Ms",
		strconv.FormatFloat(float64(resp.Latency)/float64(time.Millisecond), 'f', 3, 64))
	writeJSON(w, http.StatusOK, resp.Tile)
}

// StatsResponse is the /stats payload: the session's cache counters (when
// the session exists) plus server-wide session and prefetch-pipeline
// telemetry — including the scheduler's backpressure signal, per-session
// queue depths (Scheduler.QueueDepths) and, for deployments with adaptive
// allocation, the learned per-(phase, model) budget shares. Asking for an
// unknown session returns the server-wide fields only — it does not create
// a session.
type StatsResponse struct {
	Cache     *cache.Stats    `json:"cache,omitempty"`
	Sessions  int             `json:"sessions"`
	Evicted   int             `json:"evicted"`
	Closed    bool            `json:"closed,omitempty"`
	Pressure  float64         `json:"pressure"`
	Scheduler *prefetch.Stats `json:"scheduler,omitempty"`
	// Allocation maps phase name -> model -> current smoothed budget share
	// of the deployment's shared AdaptivePolicy.
	Allocation map[string]map[string]float64 `json:"allocation,omitempty"`
	// Snapshot reports the learned-state snapshot store: per-family restore
	// results ("restored" vs "cold"), save counters and the age of the last
	// snapshot. Absent when the deployment persists nothing.
	Snapshot *persist.Status `json:"snapshot,omitempty"`
	// Uptime is seconds since the server was constructed; with GoVersion
	// and Build it lets fleet dashboards tell deployments (and deploys)
	// apart.
	Uptime    float64 `json:"uptime_seconds"`
	GoVersion string  `json:"go_version"`
	// Build carries the main module path/version and VCS stamp from
	// runtime/debug.ReadBuildInfo (absent in non-module test binaries).
	Build map[string]string `json:"build,omitempty"`
}

// buildInfoMap extracts the identifying subset of the binary's build info
// once; ReadBuildInfo walks the whole embedded blob, not worth repeating
// per /stats probe.
var buildInfoMap = sync.OnceValue(func() map[string]string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return nil
	}
	out := map[string]string{"path": bi.Path}
	if bi.Main.Version != "" {
		out["version"] = bi.Main.Version
	}
	for _, set := range bi.Settings {
		switch set.Key {
		case "vcs.revision", "vcs.time", "vcs.modified", "GOOS", "GOARCH":
			out[set.Key] = set.Value
		}
	}
	return out
})

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Snapshot the server-side fields under one hold of the server lock
	// (reading them via Sessions()/Evicted() would let a concurrent Close
	// or eviction slip between the reads), then the scheduler counters
	// under one hold of the scheduler lock. /stats stays answerable during
	// and after Close — it reports the torn-down state instead of racing it.
	s.mu.Lock()
	out := StatsResponse{
		Sessions:  len(s.sessions),
		Evicted:   s.evicted,
		Closed:    s.closed,
		Uptime:    max(0, s.now().Sub(s.start).Seconds()),
		GoVersion: runtime.Version(),
		Build:     buildInfoMap(),
	}
	var eng *core.Engine
	if sess, ok := s.sessions[sessionID(r)]; ok {
		eng = sess.eng
	}
	s.mu.Unlock()
	if eng != nil {
		cs := eng.CacheStats()
		out.Cache = &cs
	}
	if s.sched != nil {
		st := s.sched.Stats()
		out.Scheduler = &st
		out.Pressure = st.Pressure
	}
	if s.alloc != nil {
		shares := s.alloc.Shares()
		out.Allocation = make(map[string]map[string]float64, len(shares))
		for ph, byModel := range shares {
			out.Allocation[ph.String()] = byModel
		}
	}
	if s.persist != nil {
		st := s.persist.Status()
		out.Snapshot = &st
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	// Resetting a session that does not exist is a no-op, not a reason to
	// build an engine.
	if eng, ok := s.peekSession(r); ok {
		eng.Reset()
	}
	w.WriteHeader(http.StatusNoContent)
}

// coordFromQuery parses a tile coordinate from ?level=&y=&x=. It takes the
// parsed query values (rather than the request) so the fuzz suite can drive
// it with arbitrary inputs.
func coordFromQuery(q url.Values) (tile.Coord, error) {
	var c tile.Coord
	for _, f := range []struct {
		name string
		dst  *int
	}{{"level", &c.Level}, {"y", &c.Y}, {"x", &c.X}} {
		raw := q.Get(f.name)
		if raw == "" {
			return c, fmt.Errorf("missing query parameter %q", f.name)
		}
		v, err := strconv.Atoi(raw)
		if err != nil {
			return c, fmt.Errorf("bad %s: %w", f.name, err)
		}
		*f.dst = v
	}
	return c, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
