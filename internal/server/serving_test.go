package server

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"forecache/internal/client"
	"forecache/internal/obs"
	"forecache/internal/push"
	"forecache/internal/tile"
)

// getTileRaw issues GET /tile?level=0&y=0&x=0 with the given headers and
// returns the response plus its full (undecoded) body. Each call must use
// a fresh session: re-requesting a session's current coordinate is not a
// legal pan/zoom move.
func getTileRaw(t *testing.T, ts *httptest.Server, session string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/tile?level=0&y=0&x=0&session="+session, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	// A non-nil Accept-Encoding disables the transport's transparent
	// gunzip, so the body below is exactly what the server wrote.
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	return resp, body
}

// TestEncodedTilesDefaultBodyMatchesLegacy: with no Accept header and no
// compression, the encoded-cache serving path must produce the exact bytes
// of the legacy json.Encoder path — replay suites diff bodies.
func TestEncodedTilesDefaultBodyMatchesLegacy(t *testing.T) {
	_, legacy := testServer(t)
	_, encoded := testServer(t, WithEncodedTiles(tile.NewEncodedCache(0, nil)))
	lr, lbody := getTileRaw(t, legacy, "l1", nil)
	er, ebody := getTileRaw(t, encoded, "e1", nil)
	if !bytes.Equal(lbody, ebody) {
		t.Fatalf("cached body differs from legacy body:\nlegacy:  %q\nencoded: %q", lbody, ebody)
	}
	if lct, ect := lr.Header.Get("Content-Type"), er.Header.Get("Content-Type"); lct != ect {
		t.Fatalf("content type drifted: legacy %q, encoded %q", lct, ect)
	}
	if enc := er.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("unsolicited Content-Encoding %q", enc)
	}
}

// TestTileBinaryNegotiation: Accept: application/x-forecache-tile selects
// the binary codec, and the decoded tile carries the same payload as the
// JSON rendering (proved by re-encoding it to the canonical JSON body).
func TestTileBinaryNegotiation(t *testing.T) {
	ec := tile.NewEncodedCache(0, nil)
	_, ts := testServer(t, WithEncodedTiles(ec))
	_, plain := getTileRaw(t, ts, "b0", nil)
	resp, body := getTileRaw(t, ts, "b1", map[string]string{"Accept": tile.BinaryContentType})
	if ct := resp.Header.Get("Content-Type"); ct != tile.BinaryContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, tile.BinaryContentType)
	}
	if vary := resp.Header.Values("Vary"); len(vary) == 0 ||
		!strings.Contains(strings.Join(vary, ","), "Accept") {
		t.Fatalf("Vary = %q, want Accept", vary)
	}
	tl, err := tile.DecodeBinary(body)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	reJSON, err := tl.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reJSON, plain) {
		t.Fatalf("binary tile does not match JSON rendering:\njson:     %q\nvia-bin:  %q", plain, reJSON)
	}
}

// TestTileGzipNegotiation: Accept-Encoding: gzip compresses either format,
// and the decompressed bytes are exactly the plain cached body.
func TestTileGzipNegotiation(t *testing.T) {
	ec := tile.NewEncodedCache(0, nil)
	_, ts := testServer(t, WithEncodedTiles(ec))
	for _, accept := range []string{"", tile.BinaryContentType} {
		hdr := map[string]string{}
		if accept != "" {
			hdr["Accept"] = accept
		}
		_, plain := getTileRaw(t, ts, "gz-plain-"+accept, hdr)
		hdr["Accept-Encoding"] = "gzip"
		resp, packed := getTileRaw(t, ts, "gz-packed-"+accept, hdr)
		if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
			t.Fatalf("accept=%q: Content-Encoding = %q, want gzip", accept, enc)
		}
		zr, err := gzip.NewReader(bytes.NewReader(packed))
		if err != nil {
			t.Fatalf("accept=%q: %v", accept, err)
		}
		unpacked, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("accept=%q: %v", accept, err)
		}
		if !bytes.Equal(unpacked, plain) {
			t.Fatalf("accept=%q: gunzipped body differs from plain body", accept)
		}
	}
	// Explicit refusal keeps the body uncompressed.
	resp, _ := getTileRaw(t, ts, "gz-refuse", map[string]string{"Accept-Encoding": "gzip;q=0"})
	if enc := resp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("gzip;q=0 still compressed (Content-Encoding %q)", enc)
	}
}

// TestClientBinaryNegotiationEquivalence: a NegotiateBinary client gets the
// same tile as a default JSON client, and a default client is unaffected by
// the server's encoded cache.
func TestClientBinaryNegotiationEquivalence(t *testing.T) {
	_, ts := testServer(t, WithEncodedTiles(tile.NewEncodedCache(0, nil)))
	root := tile.Coord{}
	jc := client.New(ts.URL, "json")
	jt, _, err := jc.Tile(root)
	if err != nil {
		t.Fatal(err)
	}
	bc := client.New(ts.URL, "bin")
	bc.NegotiateBinary(true)
	bt, _, err := bc.Tile(root)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Coord != jt.Coord || bt.Size != jt.Size || len(bt.Data) != len(jt.Data) {
		t.Fatalf("binary tile %+v != json tile %+v", bt, jt)
	}
	for a := range jt.Data {
		for i := range jt.Data[a] {
			if bt.Data[a][i] != jt.Data[a][i] {
				t.Fatalf("attr %d cell %d: %v != %v", a, i, bt.Data[a][i], jt.Data[a][i])
			}
		}
	}
}

// TestMetricsExposeEncodedCacheFamilies: the /metrics exposition carries
// the forecache_tile_* families, passes the strict format validator, and
// the hit counter grows on repeated requests.
func TestMetricsExposeEncodedCacheFamilies(t *testing.T) {
	pipe := obs.NewPipeline(obs.Config{})
	ec := tile.NewEncodedCache(0, pipe.ObserveTileEncode)
	_, ts := testServer(t, WithEncodedTiles(ec), WithMetrics(), WithObs(pipe))
	getTileRaw(t, ts, "m0", nil)
	getTileRaw(t, ts, "m1", map[string]string{"Accept": tile.BinaryContentType})
	scrape := func() map[string]float64 {
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return validatePromText(t, string(body))
	}
	first := scrape()
	for _, name := range []string{
		"forecache_tile_encode_cache_hits_total",
		"forecache_tile_encode_misses_total",
		"forecache_tile_encoded_cache_evicted_total",
		"forecache_tile_encoded_cache_entries",
		"forecache_tile_encoded_cache_bytes",
		"forecache_tile_encode_duration_seconds_count",
		"forecache_tile_response_bytes_count",
	} {
		if _, ok := first[name]; !ok {
			t.Errorf("metric %s missing from exposition", name)
		}
	}
	if first["forecache_tile_encode_misses_total"] < 2 {
		t.Fatalf("misses = %v after two differently-negotiated requests", first["forecache_tile_encode_misses_total"])
	}
	getTileRaw(t, ts, "m2", nil) // warm repeat
	second := scrape()
	if second["forecache_tile_encode_cache_hits_total"] <= first["forecache_tile_encode_cache_hits_total"] {
		t.Fatalf("hits did not grow on a warm repeat: %v -> %v",
			first["forecache_tile_encode_cache_hits_total"], second["forecache_tile_encode_cache_hits_total"])
	}
	if second["forecache_tile_encode_misses_total"] != first["forecache_tile_encode_misses_total"] {
		t.Fatalf("warm repeat re-encoded: misses %v -> %v",
			first["forecache_tile_encode_misses_total"], second["forecache_tile_encode_misses_total"])
	}
}

// TestStreamPayloadEncodedOncePerTile: with the deployment-wide encoded
// cache wired into the push registry, re-attaching a stream (backfill
// replay) must not re-encode tiles — the encode counter is flat across
// attachments while every frame stays decodable by the updated client.
func TestStreamPayloadEncodedOncePerTile(t *testing.T) {
	ec := tile.NewEncodedCache(0, nil)
	_, ts, sched, _ := pushTestServer(t, push.Config{Encoded: ec}, WithEncodedTiles(ec))
	frames, _ := attachStream(t, ts, "u1")

	resp, err := ts.Client().Get(ts.URL + "/tile?level=0&y=0&x=0&session=u1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sched.Drain()
	f, ok := waitFrame(t, frames, 5*time.Second)
	if !ok {
		t.Fatal("stream ended before any tile frame")
	}
	if f.Tile == nil {
		t.Fatalf("tile frame not decodable: %+v", f)
	}
	baseline := ec.Stats().Misses

	// Two reconnects, each replaying the cached predictions as backfill.
	for round := 0; round < 2; round++ {
		refreshed, _ := attachStream(t, ts, "u1")
		bf, ok := waitFrame(t, refreshed, 5*time.Second)
		if !ok {
			t.Fatalf("round %d: stream ended before backfill", round)
		}
		if !bf.Backfill || bf.Tile == nil {
			t.Fatalf("round %d: backfill frame = %+v", round, bf)
		}
		if got := ec.Stats().Misses; got != baseline {
			t.Fatalf("round %d: attaching a stream re-encoded tiles: misses %d -> %d",
				round, baseline, got)
		}
	}
	if st := ec.Stats(); st.Hits == 0 {
		t.Fatalf("backfill replays never hit the encoded cache: %+v", st)
	}
}
