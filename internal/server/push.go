package server

import (
	"net/http"
	"time"

	"forecache/internal/push"
)

// streamWriteTimeout bounds each individual frame write on a push stream.
// The serve CLI deliberately runs without a global http.Server WriteTimeout
// (it would kill every long-lived stream after the deadline no matter how
// healthy); instead the stream handler arms a fresh per-write deadline via
// http.ResponseController, so only a peer that stops reading for this long
// gets its stream dropped.
const streamWriteTimeout = 30 * time.Second

// WithPush attaches the deployment's push-stream registry and mounts
// GET /stream: one long-lived SSE response per session carrying framed
// prefetched tiles (internal/push wire format), heartbeats while idle, and
// teardown on session eviction and Close. The same registry must be handed
// to the prefetch pipeline (prefetch.Config.Push) — the scheduler produces
// the frames this endpoint drains.
func WithPush(reg *push.Registry) Option {
	return func(s *Server) { s.push = reg }
}

// Push returns the attached push registry (nil on pull-only deployments).
func (s *Server) Push() *push.Registry { return s.push }

// handleStream is the long-lived per-session push response. Lifecycle:
// attach (superseding any previous stream for the session — reconnects
// win), backfill the session's live cached predictions, then drain frames
// until the stream is torn down (session evicted, registry closed, client
// gone, or a write stalls past streamWriteTimeout).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	eng, err := s.session(r)
	if err != nil {
		status := http.StatusInternalServerError
		if err == ErrClosed {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err)
		return
	}
	id := sessionID(r)
	st := s.push.Attach(id)
	if st == nil { // registry already closed
		httpError(w, http.StatusServiceUnavailable, ErrClosed)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	_ = rc.Flush()

	// write frames one SSE event with a per-write deadline and feeds the
	// observed throughput back into the session's drain-rate estimate (the
	// scheduler's bandwidth-aware admission term).
	write := func(f push.Frame) bool {
		start := time.Now()
		_ = rc.SetWriteDeadline(start.Add(streamWriteTimeout))
		n, err := push.Encode(w, f)
		if err != nil {
			return false
		}
		if err := rc.Flush(); err != nil {
			return false
		}
		s.push.RecordWrite(id, n, time.Since(start))
		return true
	}

	// Backfill: replay the prediction entries already cached for this
	// session, so a dropped-and-reattached stream recovers what the old one
	// carried without new DBMS fetches. CachedPredictions is side-effect
	// free, so the replay cannot double-count feedback outcomes.
	for _, p := range eng.CachedPredictions() {
		s.push.Backfill(st, p.Model, p.Tile.Coord, p.Tile)
	}

	hb := time.NewTicker(s.push.HeartbeatInterval())
	defer hb.Stop()
	for {
		select {
		case f := <-st.Frames():
			if !write(f) {
				s.push.Release(st)
				return
			}
		case <-hb.C:
			if !write(push.Frame{Type: push.FrameHeartbeat, Session: id}) {
				s.push.Release(st)
				return
			}
			s.push.CountHeartbeat()
		case <-st.Done():
			// Superseded, evicted, or registry closed: the closer already
			// removed the registry entry; just end the response. Never block
			// here — Close must not wait on a stream mid-write.
			return
		case <-r.Context().Done():
			s.push.Release(st)
			return
		}
	}
}
