package server

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"forecache/internal/backend"
	"forecache/internal/core"
	"forecache/internal/prefetch"
	"forecache/internal/push"
	"forecache/internal/recommend"
	"forecache/internal/tile"
)

// pushTestServer wires the full push pipeline: one registry shared by the
// scheduler (frame production) and the server (stream transport).
func pushTestServer(t *testing.T, pcfg push.Config, opts ...Option) (*Server, *httptest.Server, *prefetch.Scheduler, *push.Registry) {
	t.Helper()
	pyr := testPyramid(t)
	db := backend.NewDBMS(pyr, backend.DefaultLatency(), nil)
	reg := push.NewRegistry(pcfg)
	sched := prefetch.NewScheduler(db, prefetch.Config{Workers: 2, Push: reg})
	factory := func(session string) (*core.Engine, error) {
		m := recommend.NewMomentum()
		return core.NewEngine(db, nil, core.SinglePolicy{Model: m.Name()},
			[]recommend.Model{m}, core.Config{K: 4},
			core.WithScheduler(sched, session))
	}
	srv := New(Meta{Levels: pyr.NumLevels(), TileSize: pyr.TileSize(), Attrs: pyr.Attrs()},
		factory, append(opts, WithScheduler(sched), WithPush(reg))...)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, ts, sched, reg
}

// attachStream opens GET /stream for a session and decodes frames into the
// returned channel until the stream ends (then the channel closes).
func attachStream(t *testing.T, ts *httptest.Server, session string) (<-chan push.Frame, *http.Response) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/stream?session=" + session)
	if err != nil {
		t.Fatalf("attach stream: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("stream content type = %q", ct)
	}
	frames := make(chan push.Frame, 256)
	go func() {
		defer close(frames)
		r := bufio.NewReader(resp.Body)
		for {
			f, err := push.Decode(r)
			if err != nil {
				return
			}
			frames <- f
		}
	}()
	t.Cleanup(func() { resp.Body.Close() })
	return frames, resp
}

// waitFrame receives one frame or fails after the timeout. ok=false means
// the stream ended (channel closed).
func waitFrame(t *testing.T, frames <-chan push.Frame, timeout time.Duration) (push.Frame, bool) {
	t.Helper()
	select {
	case f, ok := <-frames:
		return f, ok
	case <-time.After(timeout):
		t.Fatal("no frame within timeout")
		return push.Frame{}, false
	}
}

// TestStreamDeliversPushedTiles: a tile request's prefetch batch is framed
// down the session's stream, and requesting a pushed coordinate closes the
// push-to-consume loop.
func TestStreamDeliversPushedTiles(t *testing.T) {
	_, ts, sched, reg := pushTestServer(t, push.Config{})
	frames, _ := attachStream(t, ts, "u1")

	resp, err := ts.Client().Get(ts.URL + "/tile?level=0&y=0&x=0&session=u1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sched.Drain() // every completed fetch's frame is enqueued once Drain returns

	f, ok := waitFrame(t, frames, 5*time.Second)
	if !ok {
		t.Fatal("stream ended before any tile frame")
	}
	if f.Type != push.FrameTile || f.Session != "u1" || f.Seq == 0 || f.Tile == nil {
		t.Fatalf("frame = %+v", f)
	}
	if f.Model == "" {
		t.Fatalf("frame missing model attribution: %+v", f)
	}
	if st := reg.Stats(); st.Open != 1 || st.Pushed < 1 {
		t.Fatalf("registry stats = %+v", st)
	}

	// Consuming the pushed coordinate records one lead-time observation.
	u := fmt.Sprintf("/tile?level=%d&y=%d&x=%d&session=u1", f.Coord.Level, f.Coord.Y, f.Coord.X)
	resp, err = ts.Client().Get(ts.URL + u)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("consume status = %d", resp.StatusCode)
	}
	if st := reg.Stats(); st.Consumed != 1 {
		t.Fatalf("Consumed = %d, want 1", st.Consumed)
	}
}

// TestStreamBackfillOnReconnect: a re-attached stream replays the
// session's live cached predictions as backfill frames, without emitting
// any new cache outcome (the feedback loop judges each prediction exactly
// once, on real consumption).
func TestStreamBackfillOnReconnect(t *testing.T) {
	srv, ts, sched, reg := pushTestServer(t, push.Config{})

	// No stream attached yet: prefetches land in the cache only.
	resp, err := ts.Client().Get(ts.URL + "/tile?level=0&y=0&x=0&session=u1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sched.Drain()
	if st := reg.Stats(); st.Pushed != 0 {
		t.Fatalf("pushed %d frames with no stream attached", st.Pushed)
	}
	eng, ok := srv.peekSession(httptest.NewRequest("GET", "/stats?session=u1", nil))
	if !ok {
		t.Fatal("session u1 missing")
	}
	cached := eng.CachedPredictions()
	if len(cached) == 0 {
		t.Fatal("no cached predictions to backfill")
	}
	before := eng.CacheStats()

	// Attach (a "reconnect" after the dropped pre-test stream): every
	// cached prediction must arrive as a backfill-marked frame.
	frames, _ := attachStream(t, ts, "u1")
	got := map[tile.Coord]bool{}
	for range cached {
		f, ok := waitFrame(t, frames, 5*time.Second)
		if !ok {
			t.Fatal("stream ended mid-backfill")
		}
		if !f.Backfill {
			t.Fatalf("expected backfill frame, got %+v", f)
		}
		got[f.Coord] = true
	}
	for _, p := range cached {
		if !got[p.Tile.Coord] {
			t.Fatalf("cached prediction %v not backfilled (got %v)", p.Tile.Coord, got)
		}
	}
	if st := reg.Stats(); st.Backfilled != len(cached) {
		t.Fatalf("Backfilled = %d, want %d", st.Backfilled, len(cached))
	}
	// The replay is observational: it must not register as consumption,
	// eviction or a fresh prefetch in the feedback loop's raw material.
	if after := eng.CacheStats(); after != before {
		t.Fatalf("backfill perturbed cache stats: before=%+v after=%+v", before, after)
	}
}

// TestStreamSupersededByReconnect: a second attach for the same session
// ends the first stream (newest connection wins).
func TestStreamSupersededByReconnect(t *testing.T) {
	_, ts, _, reg := pushTestServer(t, push.Config{})
	first, _ := attachStream(t, ts, "u1")
	second, _ := attachStream(t, ts, "u1")
	select {
	case _, ok := <-first:
		if ok {
			t.Fatal("unexpected frame on superseded stream")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("superseded stream still open")
	}
	select {
	case _, ok := <-second:
		t.Fatalf("fresh stream ended (frame=%v)", ok)
	default:
	}
	if st := reg.Stats(); st.Open != 1 || st.Opened != 2 {
		t.Fatalf("registry stats = %+v", st)
	}
}

// TestStreamHeartbeat: an idle stream emits heartbeat frames at the
// configured cadence.
func TestStreamHeartbeat(t *testing.T) {
	_, ts, _, reg := pushTestServer(t, push.Config{Heartbeat: 30 * time.Millisecond})
	frames, _ := attachStream(t, ts, "u1")
	f, ok := waitFrame(t, frames, 5*time.Second)
	if !ok {
		t.Fatal("stream ended before a heartbeat")
	}
	if f.Type != push.FrameHeartbeat {
		t.Fatalf("frame = %+v, want heartbeat", f)
	}
	if st := reg.Stats(); st.Heartbeats < 1 {
		t.Fatalf("Heartbeats = %d", st.Heartbeats)
	}
}

// TestStreamClosedOnEviction: LRU-evicting a session ends its stream (the
// handler goroutine observes the registry detach and returns, closing the
// response).
func TestStreamClosedOnEviction(t *testing.T) {
	_, ts, _, _ := pushTestServer(t, push.Config{}, WithSessionLimit(1))
	frames, _ := attachStream(t, ts, "a")
	// Creating session b evicts a (cap 1) and must tear a's stream down.
	resp, err := ts.Client().Get(ts.URL + "/tile?level=0&y=0&x=0&session=b")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case _, ok := <-frames:
		if ok {
			t.Fatal("unexpected frame on evicted session's stream")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("evicted session's stream still open")
	}
}

// TestStreamClosedOnServerClose: Close ends every open stream promptly and
// a post-Close attach is refused.
func TestStreamClosedOnServerClose(t *testing.T) {
	srv, ts, _, _ := pushTestServer(t, push.Config{})
	frames, _ := attachStream(t, ts, "a")
	srv.Close()
	select {
	case _, ok := <-frames:
		if ok {
			t.Fatal("unexpected frame after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream still open after Close")
	}
	resp, err := ts.Client().Get(ts.URL + "/stream?session=late")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close stream status = %d, want 503", resp.StatusCode)
	}
}

// TestStreamEvictionWriteCloseRace races stream attaches, tile-driven
// pushes, LRU evictions and Close under -race: every request completes,
// Close does not deadlock on a mid-write stream, and no goroutine leaks a
// stream past shutdown.
func TestStreamEvictionWriteCloseRace(t *testing.T) {
	srv, ts, _, reg := pushTestServer(t, push.Config{Heartbeat: 5 * time.Millisecond}, WithSessionLimit(2))
	start := make(chan struct{})
	var wg sync.WaitGroup
	// Stream churn: 3 session ids over a 2-session cap forces evictions.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 15; i++ {
				resp, err := ts.Client().Get(ts.URL + fmt.Sprintf("/stream?session=s%d", g))
				if err != nil {
					return // server closed mid-dial
				}
				buf := make([]byte, 512)
				resp.Body.Read(buf) // pull a little so writes interleave
				resp.Body.Close()
			}
		}(g)
	}
	// Tile traffic drives prefetch pushes and evictions.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 30; i++ {
				url := ts.URL + fmt.Sprintf("/tile?level=%d&y=0&x=0&session=s%d", i%2, g)
				resp, err := ts.Client().Get(url)
				if err != nil {
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("tile status = %d", resp.StatusCode)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(10 * time.Millisecond)
		srv.Close()
	}()
	close(start)
	wg.Wait()
	if st := reg.Stats(); st.Open != 0 {
		t.Fatalf("streams leaked past Close: %+v", st)
	}
}
