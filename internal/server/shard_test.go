package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"forecache/internal/backend"
	"forecache/internal/core"
	"forecache/internal/obs"
	"forecache/internal/prefetch"
	"forecache/internal/recommend"
)

// shardedTestServer wires the full sharded deployment shape: an N-shard
// session tier over an N-shard prefetch pipeline sharing one DBMS.
func shardedTestServer(t *testing.T, shards int, opts ...Option) (*Server, *prefetch.ShardedScheduler) {
	t.Helper()
	pyr := testPyramid(t)
	db := backend.NewDBMS(pyr, backend.DefaultLatency(), nil)
	sched := prefetch.NewShardedScheduler(db, prefetch.Config{Workers: 4, QueuePerSession: 8}, shards)
	factory := func(session string) (*core.Engine, error) {
		m := recommend.NewMomentum()
		return core.NewEngine(db, nil, core.SinglePolicy{Model: m.Name()},
			[]recommend.Model{m}, core.Config{K: 4},
			core.WithScheduler(sched.Shard(session), session))
	}
	srv := New(Meta{Levels: pyr.NumLevels(), TileSize: pyr.TileSize(), Attrs: pyr.Attrs()},
		factory, append(opts, WithShards(shards), WithScheduler(sched))...)
	t.Cleanup(srv.Close)
	return srv, sched
}

func getStats(t *testing.T, srv *Server, query string) StatsResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/stats"+query, nil))
	if rec.Code != 200 {
		t.Fatalf("/stats: %d", rec.Code)
	}
	var out StatsResponse
	if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	return out
}

// TestShardedSessionsSpread: with several shards, a fleet of sessions
// lands on more than one shard and every request still round-trips.
func TestShardedSessionsSpread(t *testing.T) {
	srv, _ := shardedTestServer(t, 4)
	for i := 0; i < 16; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET",
			fmt.Sprintf("/tile?level=0&y=0&x=0&session=spread-%d", i), nil))
		if rec.Code != 200 {
			t.Fatalf("tile for session %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	st := getStats(t, srv, "")
	if st.Shards != 4 || len(st.ShardSessions) != 4 {
		t.Fatalf("shards = %d with %d per-shard counts, want 4", st.Shards, len(st.ShardSessions))
	}
	if st.Sessions != 16 {
		t.Errorf("sessions = %d, want 16", st.Sessions)
	}
	sum, nonzero := 0, 0
	for _, n := range st.ShardSessions {
		sum += n
		if n > 0 {
			nonzero++
		}
	}
	if sum != st.Sessions {
		t.Errorf("shard_sessions sums to %d, sessions = %d", sum, st.Sessions)
	}
	if nonzero < 2 {
		t.Errorf("16 sessions landed on %d shard(s), want at least 2", nonzero)
	}
}

// TestShardSweepIsolation: the TTL sweep is per-shard — an access routed
// to one shard expires only that shard's idle sessions, so one shard's
// sweep never blocks (or even touches) another shard's table.
func TestShardSweepIsolation(t *testing.T) {
	srv, _ := shardedTestServer(t, 4, WithSessionTTL(time.Minute))
	clock := time.Unix(1000, 0)
	srv.now = func() time.Time { return clock }

	// Find two sessions on different shards, plus a third on the first's
	// shard to use as the post-expiry accessor.
	var idA, idB string
	for i := 0; i < 64 && idB == ""; i++ {
		id := fmt.Sprintf("iso-%d", i)
		if idA == "" {
			idA = id
			continue
		}
		if srv.shardFor(id) != srv.shardFor(idA) {
			idB = id
		}
	}
	if idB == "" {
		t.Fatal("64 ids all on one shard; ring is broken")
	}
	var accessor string
	for i := 0; i < 256; i++ {
		id := fmt.Sprintf("acc-%d", i)
		if srv.shardFor(id) == srv.shardFor(idA) && id != idA {
			accessor = id
			break
		}
	}
	if accessor == "" {
		t.Fatal("no second id found for idA's shard")
	}

	for _, id := range []string{idA, idB} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/tile?level=0&y=0&x=0&session="+id, nil))
		if rec.Code != 200 {
			t.Fatalf("tile %s: %d", id, rec.Code)
		}
	}

	// Both idle past the TTL; an access on idA's shard sweeps idA only.
	clock = clock.Add(2 * time.Minute)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/tile?level=0&y=0&x=0&session="+accessor, nil))
	if rec.Code != 200 {
		t.Fatalf("tile %s: %d", accessor, rec.Code)
	}
	if srv.hasSession(idA) {
		t.Errorf("expired session %s still alive after a sweep on its shard", idA)
	}
	if !srv.hasSession(idB) {
		t.Errorf("session %s on an unswept shard was evicted by another shard's sweep", idB)
	}
}

// TestCrossShardAggregationUnderChurn: while sessions churn (creation,
// eviction, tile traffic) across all shards, concurrent /stats and
// /metrics scrapes must always see (a) a strictly valid exposition body,
// (b) per-shard series that sum exactly to the deployment totals within
// the same scrape, and (c) monotone counters across scrapes. Run with
// -race this also proves the per-shard locking has no data races.
func TestCrossShardAggregationUnderChurn(t *testing.T) {
	srv, _ := shardedTestServer(t, 4, WithMetrics(), WithSessionLimit(12))

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				// More ids than the session cap, so LRU eviction churns the
				// tables (retired baselines grow) while requests land.
				id := fmt.Sprintf("churn-%d-%d", w, i%8)
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest("GET", "/tile?level=0&y=0&x=0&session="+id, nil))
			}
		}(w)
	}

	var prev map[string]float64
	monotone := []string{
		"forecache_sessions_evicted_total",
		"forecache_cache_hits_total",
		"forecache_cache_misses_total",
		"forecache_cache_prefetched_total",
		"forecache_prefetch_queued_total",
		"forecache_prefetch_completed_total",
	}
	for scrape := 0; scrape < 25; scrape++ {
		st := getStats(t, srv, "")
		sum := 0
		for _, n := range st.ShardSessions {
			sum += n
		}
		if sum != st.Sessions {
			t.Fatalf("scrape %d: /stats shard_sessions sums to %d, sessions = %d", scrape, sum, st.Sessions)
		}

		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		values := validatePromText(t, rec.Body.String())

		var shardSess, shardEvicted float64
		for k, v := range values {
			if strings.HasPrefix(k, "forecache_shard_sessions{") {
				shardSess += v
			}
			if strings.HasPrefix(k, "forecache_shard_sessions_evicted_total{") {
				shardEvicted += v
			}
		}
		if shardSess != values["forecache_sessions"] {
			t.Fatalf("scrape %d: shard sessions sum %v != forecache_sessions %v",
				scrape, shardSess, values["forecache_sessions"])
		}
		if shardEvicted != values["forecache_sessions_evicted_total"] {
			t.Fatalf("scrape %d: shard evictions sum %v != forecache_sessions_evicted_total %v",
				scrape, shardEvicted, values["forecache_sessions_evicted_total"])
		}
		if values["forecache_shards"] != 4 {
			t.Fatalf("forecache_shards = %v, want 4", values["forecache_shards"])
		}
		if prev != nil {
			for _, name := range monotone {
				if values[name] < prev[name] {
					t.Fatalf("scrape %d: %s went backwards: %v -> %v", scrape, name, prev[name], values[name])
				}
			}
		}
		prev = values
	}
	close(done)
	wg.Wait()
}

// TestShardedSchedulerSeriesExported: a sharded pipeline's per-shard
// scheduler families appear (with shard labels), pass the strict
// validator, and their queued/completed sums match the deployment totals
// once the pipeline is drained and quiescent.
func TestShardedSchedulerSeriesExported(t *testing.T) {
	srv, sched := shardedTestServer(t, 3, WithMetrics())
	for i := 0; i < 9; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET",
			fmt.Sprintf("/tile?level=0&y=0&x=0&session=series-%d", i), nil))
		if rec.Code != 200 {
			t.Fatalf("tile %d: %d", i, rec.Code)
		}
	}
	sched.Drain()

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	values := validatePromText(t, rec.Body.String())

	var queued, completed float64
	shardsSeen := 0
	for i := 0; i < 3; i++ {
		q, ok := values[fmt.Sprintf(`forecache_prefetch_shard_queued_total{shard="%d"}`, i)]
		if !ok {
			t.Fatalf("missing shard %d queued series", i)
		}
		queued += q
		completed += values[fmt.Sprintf(`forecache_prefetch_shard_completed_total{shard="%d"}`, i)]
		shardsSeen++
	}
	if shardsSeen != 3 {
		t.Fatalf("per-shard scheduler series for %d shards, want 3", shardsSeen)
	}
	if queued != values["forecache_prefetch_queued_total"] {
		t.Errorf("per-shard queued sums to %v, total %v", queued, values["forecache_prefetch_queued_total"])
	}
	if completed != values["forecache_prefetch_completed_total"] {
		t.Errorf("per-shard completed sums to %v, total %v", completed, values["forecache_prefetch_completed_total"])
	}
	if _, ok := values["forecache_prefetch_cross_shard_coalesced_total"]; !ok {
		t.Error("missing forecache_prefetch_cross_shard_coalesced_total")
	}
}

// TestSingleShardIdenticalRouting: Shards=1 (and the default) keeps every
// session on shard 0 — the pre-sharding layout — and /stats reports the
// single-shard shape.
func TestSingleShardIdenticalRouting(t *testing.T) {
	srv, ts := testServer(t)
	defer ts.Close()
	if srv.NumShards() != 1 {
		t.Fatalf("default shards = %d, want 1", srv.NumShards())
	}
	for _, id := range []string{"", "default", "alice", "ev\x00il", "日本語"} {
		if got := srv.ring.Locate(id); got != 0 {
			t.Errorf("Locate(%q) = %d on a 1-shard ring, want 0", id, got)
		}
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/tile?level=0&y=0&x=0", nil))
	if rec.Code != 200 {
		t.Fatalf("tile: %d", rec.Code)
	}
	st := getStats(t, srv, "")
	if st.Shards != 1 || len(st.ShardSessions) != 1 || st.ShardSessions[0] != st.Sessions {
		t.Errorf("single-shard stats = shards %d, shard_sessions %v, sessions %d",
			st.Shards, st.ShardSessions, st.Sessions)
	}
}

// TestShardedObsTracing: the obs pipeline stays deployment-wide — traces
// from sessions on different shards land in one buffer.
func TestShardedObsTracing(t *testing.T) {
	pyr := testPyramid(t)
	db := backend.NewDBMS(pyr, backend.DefaultLatency(), nil)
	pipe := obs.NewPipeline(obs.Config{TraceCapacity: 16})
	sched := prefetch.NewShardedScheduler(db, prefetch.Config{Workers: 4, Obs: pipe}, 4)
	factory := func(session string) (*core.Engine, error) {
		m := recommend.NewMomentum()
		return core.NewEngine(db, nil, core.SinglePolicy{Model: m.Name()},
			[]recommend.Model{m}, core.Config{K: 4},
			core.WithScheduler(sched.Shard(session), session), core.WithObs(pipe))
	}
	srv := New(Meta{Levels: pyr.NumLevels(), TileSize: pyr.TileSize(), Attrs: pyr.Attrs()},
		factory, WithShards(4), WithScheduler(sched), WithObs(pipe))
	t.Cleanup(srv.Close)

	ids := map[string]bool{}
	for i := 0; i < 8; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET",
			fmt.Sprintf("/tile?level=0&y=0&x=0&session=trace-%d", i), nil))
		if rec.Code != 200 {
			t.Fatalf("tile %d: %d", i, rec.Code)
		}
		if id := rec.Header().Get("X-Trace-ID"); id != "" {
			ids[id] = true
		}
	}
	if len(ids) != 8 {
		t.Errorf("distinct trace ids = %d, want 8", len(ids))
	}
	if got := len(pipe.Traces.Snapshot()); got != 8 {
		t.Errorf("deployment-wide trace buffer holds %d traces, want 8 across all shards", got)
	}
}
