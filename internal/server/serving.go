package server

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"forecache/internal/tile"
)

// Tile response serving: with an encoded-payload cache attached
// (WithEncodedTiles) the /tile handler negotiates the wire format from the
// request headers and answers with memoized bytes — the tile is encoded at
// most once per (format, compression) for its cache lifetime, and the
// response write is a single copy from the cached payload. Without the
// cache the legacy json.Encoder path runs unchanged.

// writeTile answers a /tile request with t's payload in the negotiated
// format. The plain-JSON rendering (no Accept header, no gzip) is
// byte-identical to the legacy writeJSON path, cached or not.
func (s *Server) writeTile(w http.ResponseWriter, r *http.Request, c tile.Coord, t *tile.Tile) {
	if s.encoded == nil {
		writeJSON(w, http.StatusOK, t)
		return
	}
	format := tile.FormatJSON
	if acceptsTileBinary(r.Header.Get("Accept")) {
		format = tile.FormatBinary
	}
	gz := acceptsGzip(r.Header.Get("Accept-Encoding"))
	payload, err := s.encodedBody(c, t, format, gz)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	h := w.Header()
	h.Add("Vary", "Accept")
	h.Add("Vary", "Accept-Encoding")
	if format == tile.FormatBinary {
		h.Set("Content-Type", tile.BinaryContentType)
	} else {
		h.Set("Content-Type", "application/json")
	}
	if gz {
		h.Set("Content-Encoding", "gzip")
	}
	h.Set("Content-Length", strconv.Itoa(len(payload)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
	s.obs.ObserveTileBytes(len(payload))
}

// encodedBody returns the cached response body for (c, format, gz),
// encoding it on first touch. The gzip variant composes through the cache:
// it compresses the cached plain body of the same format, so a warm
// deployment never re-encodes a tile just to change its compression.
func (s *Server) encodedBody(c tile.Coord, t *tile.Tile, format tile.Format, gz bool) ([]byte, error) {
	encode := func() ([]byte, error) {
		if format == tile.FormatBinary {
			return tile.EncodeBinary(t)
		}
		return t.EncodeJSON()
	}
	if !gz {
		return s.encoded.Get(c, format, false, encode)
	}
	return s.encoded.Get(c, format, true, func() ([]byte, error) {
		plain, err := s.encoded.Get(c, format, false, encode)
		if err != nil {
			return nil, err
		}
		return gzipBytes(plain)
	})
}

// acceptsTileBinary reports whether the Accept header asks for the binary
// tile codec. Exact media-type matching (with or without parameters) is
// enough here: the negotiation is a two-format switch, not a full RFC 9110
// q-value resolution — a client naming the type wants it.
func acceptsTileBinary(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mt) == tile.BinaryContentType {
			return true
		}
	}
	return false
}

// acceptsGzip reports whether the Accept-Encoding header admits gzip.
func acceptsGzip(acceptEncoding string) bool {
	for _, part := range strings.Split(acceptEncoding, ",") {
		enc, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		enc = strings.TrimSpace(enc)
		if enc != "gzip" && enc != "*" {
			continue
		}
		// "gzip;q=0" is an explicit refusal.
		if q, ok := strings.CutPrefix(strings.TrimSpace(params), "q="); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(q), 64); err == nil && v == 0 {
				continue
			}
		}
		return true
	}
	return false
}

// Pooled gzip machinery: compression runs once per cached payload, but the
// pools keep even cold-cache bursts (a fleet restart, an encoded-cache
// wipe) from allocating a ~800 KB gzip.Writer per request.
var (
	gzipWriterPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}
	gzipBufPool    = sync.Pool{New: func() any { return new(bytes.Buffer) }}
)

// gzipBytes compresses plain with a pooled writer and returns an owned
// slice (the result outlives the pooled buffer inside the encoded cache).
func gzipBytes(plain []byte) ([]byte, error) {
	buf := gzipBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	zw := gzipWriterPool.Get().(*gzip.Writer)
	zw.Reset(buf)
	_, werr := zw.Write(plain)
	cerr := zw.Close()
	gzipWriterPool.Put(zw)
	out := bytes.Clone(buf.Bytes())
	gzipBufPool.Put(buf)
	if werr != nil {
		return nil, werr
	}
	if cerr != nil {
		return nil, cerr
	}
	return out, nil
}
