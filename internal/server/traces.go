package server

import (
	"fmt"
	"net/http"
	"strconv"

	"forecache/internal/obs"
)

// TracesResponse is the GET /debug/traces payload: the ring buffer's
// bounds and the slowest retained traces, slowest first, each with its
// per-span breakdown. Trace labels (session id, target query) are
// truncated at record time, so a hostile session id cannot bloat the
// payload, and encoding/json escapes them, so it cannot break out of it.
type TracesResponse struct {
	// Capacity and Stored bound the working set: at most Capacity traces
	// are retained, Stored are present now.
	Capacity int `json:"capacity"`
	Stored   int `json:"stored"`
	// Recorded counts traces ever recorded, including since-evicted ones.
	Recorded uint64 `json:"recorded"`
	// Traces holds up to n (default 32) retained traces by descending
	// total duration.
	Traces []obs.Trace `json:"traces"`
}

// defaultTraceN is how many traces /debug/traces returns when ?n= is
// absent.
const defaultTraceN = 32

// handleTraces serves the slowest retained traces. Like /metrics and
// /stats, it answers after Close: the buffer is append-only state that
// outlives the session tables, and a scrape racing Close reads the final
// traces instead of an error.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := defaultTraceN
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad n: want a positive integer, got %q", raw))
			return
		}
		n = v
	}
	buf := s.obs.Traces
	out := TracesResponse{
		Capacity: buf.Cap(),
		Stored:   buf.Len(),
		Recorded: buf.Added(),
		Traces:   buf.Slowest(n),
	}
	if out.Traces == nil {
		out.Traces = []obs.Trace{} // an empty buffer serves [], not null
	}
	writeJSON(w, http.StatusOK, out)
}
