package server

import (
	"net/url"
	"strconv"
	"testing"
)

// FuzzCoordFromQuery drives the tile-endpoint coordinate parser with
// arbitrary query strings. Run continuously with:
//
//	go test ./internal/server -run '^$' -fuzz '^FuzzCoordFromQuery$' -fuzztime 10s
//
// Properties checked: no panic on any input; success implies all three
// parameters were present and round-trip exactly through strconv (the
// parser must never invent or truncate a coordinate).
func FuzzCoordFromQuery(f *testing.F) {
	seeds := []string{
		"level=1&y=2&x=3",
		"level=0&y=0&x=0",
		"x=3&level=1&y=2",                    // order independence
		"level=1&y=2",                        // missing x
		"level=&y=2&x=3",                     // empty value
		"level=one&y=2&x=3",                  // non-numeric
		"level=+5&y=-2&x=07",                 // Atoi quirks: sign prefixes, leading zero
		"level=99999999999999999999&y=0&x=0", // overflow
		"level=1&level=2&y=0&x=0",            // duplicate key: Get takes the first
		"level=1%00&y=0&x=0",                 // encoded NUL
		"level=1&y=0&x=0&session=a",          // extra params ignored
		"%zz",                                // invalid escape: ParseQuery fails
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return // not a parseable query: the mux never hands us one
		}
		c, err := coordFromQuery(q)
		if err != nil {
			return
		}
		for name, got := range map[string]int{"level": c.Level, "y": c.Y, "x": c.X} {
			want, err := strconv.Atoi(q.Get(name))
			if err != nil {
				t.Fatalf("coordFromQuery accepted %q=%q which strconv rejects: %v", name, q.Get(name), err)
			}
			if got != want {
				t.Fatalf("coordFromQuery %q = %d, strconv says %d (query %q)", name, got, want, raw)
			}
		}
	})
}
