package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestStatsCloseRace hammers /stats and /tile from many goroutines while
// Close tears the server down mid-flight (run with -race). Every request
// must complete — 200 for /stats, 200 or 503 for /tile — with no panic and
// no torn snapshot, and after Close the server still answers /stats with
// its server-wide fields.
func TestStatsCloseRace(t *testing.T) {
	srv, ts, sched := asyncTestServer(t)

	// Seed a few live sessions so Close has engines to detach and queued
	// prefetches to cancel.
	for _, id := range []string{"a", "b", "c"} {
		resp, err := ts.Client().Get(ts.URL + "/tile?level=0&y=0&x=0&session=" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 40; i++ {
				if g%2 == 0 {
					resp, err := ts.Client().Get(ts.URL + "/stats?session=a")
					if err != nil {
						t.Errorf("stats: %v", err)
						return
					}
					var out map[string]any
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
						t.Errorf("stats decode: %v", err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("stats status = %d", resp.StatusCode)
					}
				} else {
					// Alternate a legal zoom-in/zoom-out walk per goroutine
					// session so 400s can only mean a real protocol bug.
					url := ts.URL + fmt.Sprintf("/tile?level=%d&y=0&x=0&session=walker-%d", i%2, g)
					resp, err := ts.Client().Get(url)
					if err != nil {
						t.Errorf("tile: %v", err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
						t.Errorf("tile status = %d, want 200 or 503", resp.StatusCode)
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		srv.Close()
	}()
	close(start)
	wg.Wait()

	// Post-Close: /tile refuses with 503, /stats still answers consistently.
	resp, err := ts.Client().Get(ts.URL + "/tile?level=0&y=0&x=0&session=late")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-close tile status = %d, want 503", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !out.Closed {
		t.Error("post-close stats should report closed")
	}
	if out.Sessions != 0 {
		t.Errorf("post-close sessions = %d, want 0 (tables torn down)", out.Sessions)
	}
	if st := sched.Stats(); st.Pending != 0 {
		t.Errorf("scheduler pending = %d after Close, want 0", st.Pending)
	}
}

// TestCloseDetachesEngines: sessions evicted by Close fall back to inline
// mode, so a scheduler delivery racing the shutdown cannot repopulate them,
// and their queued prefetches are cancelled.
func TestCloseDetachesEngines(t *testing.T) {
	srv, ts, sched := asyncTestServer(t)
	resp, err := ts.Client().Get(ts.URL + "/tile?level=0&y=0&x=0&session=a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv.Close()
	if st := sched.Stats(); st.Sessions != 0 {
		t.Errorf("scheduler still tracks %d sessions after Close", st.Sessions)
	}
	if srv.Sessions() != 0 {
		t.Errorf("server still tracks %d sessions after Close", srv.Sessions())
	}
	srv.Close() // idempotent
}

// TestStatsExposesPressureAndQueueDepths: the adaptive pipeline's
// backpressure telemetry reaches /stats.
func TestStatsExposesPressureAndQueueDepths(t *testing.T) {
	_, ts, sched := asyncTestServer(t)
	resp, err := ts.Client().Get(ts.URL + "/tile?level=0&y=0&x=0&session=a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sched.Drain()

	resp, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := out["pressure"]; !ok {
		t.Error("stats missing pressure field")
	}
	schedBlock, ok := out["scheduler"].(map[string]any)
	if !ok {
		t.Fatalf("stats = %v, want scheduler block", out)
	}
	depths, ok := schedBlock["QueueDepths"].(map[string]any)
	if !ok {
		t.Fatalf("scheduler stats = %v, want QueueDepths", schedBlock)
	}
	if _, ok := depths["a"]; !ok {
		t.Errorf("QueueDepths = %v, want session a tracked", depths)
	}
}
