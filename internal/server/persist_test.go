package server

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"forecache/internal/client"
	"forecache/internal/persist"
	"forecache/internal/prefetch"
	"forecache/internal/trace"
)

// scrapeMetrics fetches /metrics directly off the handler and validates
// the exposition with the shared strict parser.
func scrapeMetrics(t *testing.T, srv *Server) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	return validatePromText(t, rec.Body.String())
}

// persistServer builds a server carrying a snapshot store over one
// FeedbackCollector family, plus the collector so tests can train it.
func persistServer(t *testing.T, dir string) (*Server, *httptest.Server, *prefetch.FeedbackCollector) {
	t.Helper()
	fc := prefetch.NewFeedbackCollector(4)
	store, err := persist.NewStore(persist.Config{Dir: dir, Interval: -1}, persist.Family{
		Name:    "feedback",
		Version: prefetch.FeedbackStateVersion,
		Export:  fc.ExportState,
		Import:  fc.ImportState,
	})
	if err != nil {
		t.Fatal(err)
	}
	store.Restore()
	store.Start()
	srv, ts := testServer(t, WithPersist(store), WithMetrics())
	return srv, ts, fc
}

// TestStatsReportsSnapshotStatus: /stats carries the snapshot block with
// per-family restore results and save bookkeeping.
func TestStatsReportsSnapshotStatus(t *testing.T) {
	dir := t.TempDir()
	_, ts, _ := persistServer(t, dir)
	c := client.New(ts.URL, "")
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := stats["snapshot"].(map[string]any)
	if !ok {
		t.Fatalf("stats = %v, want snapshot block", stats)
	}
	fams, ok := snap["families"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot = %v, want families map", snap)
	}
	if got, ok := fams["feedback"].(string); !ok || got != "cold (no snapshot)" {
		t.Errorf("feedback = %v, want cold (no snapshot)", fams["feedback"])
	}
	if snap["age_seconds"].(float64) != -1 {
		t.Errorf("age before first save = %v, want -1", snap["age_seconds"])
	}
}

// TestCloseWritesSnapshotThenRestartRestores: Server.Close flushes a final
// snapshot, and a second server booted over the same state dir reports the
// family restored in /stats.
func TestCloseWritesSnapshotThenRestartRestores(t *testing.T) {
	dir := t.TempDir()
	srv, _, fc := persistServer(t, dir)
	fc.Observe(trace.Foraging, "momentum", 0, true)
	srv.Close()
	path := filepath.Join(dir, persist.FileName)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Close did not write a snapshot: %v", err)
	}
	// Close must stay idempotent with a store attached (httptest cleanup
	// calls it again).
	srv.Close()

	_, ts2, fc2 := persistServer(t, dir)
	if fc2.Observations() != 1 {
		t.Errorf("restarted collector observations = %d, want 1", fc2.Observations())
	}
	stats, err := client.New(ts2.URL, "").Stats()
	if err != nil {
		t.Fatal(err)
	}
	snap := stats["snapshot"].(map[string]any)
	if got := snap["families"].(map[string]any)["feedback"]; got != persist.ResultRestored {
		t.Errorf("feedback after restart = %v, want %q", got, persist.ResultRestored)
	}
	if snap["restored"].(float64) != 1 {
		t.Errorf("restored count = %v, want 1", snap["restored"])
	}
}

// TestMetricsExportSnapshotFamilies: the snapshot gauges and counters ride
// the /metrics exposition and pass the strict format validator.
func TestMetricsExportSnapshotFamilies(t *testing.T) {
	dir := t.TempDir()
	srv, _, _ := persistServer(t, dir)
	values := scrapeMetrics(t, srv)
	if v, ok := values["forecache_snapshot_age_seconds"]; !ok || v != -1 {
		t.Errorf("forecache_snapshot_age_seconds = %v, %v; want -1 before first save", v, ok)
	}
	if v := values["forecache_snapshot_saves_total"]; v != 0 {
		t.Errorf("saves_total = %v, want 0", v)
	}
	if v := values["forecache_snapshot_restored_families"]; v != 0 {
		t.Errorf("restored_families = %v, want 0", v)
	}

	srv.Close()
	srv2, _, _ := persistServer(t, dir)
	values2 := scrapeMetrics(t, srv2)
	if v := values2["forecache_snapshot_restored_families"]; v != 1 {
		t.Errorf("restored_families after restart = %v, want 1", v)
	}
}
