package server

import (
	"fmt"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"forecache/internal/backend"
	"forecache/internal/core"
	"forecache/internal/prefetch"
	"forecache/internal/recommend"
	"forecache/internal/trace"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// splitSample parses a sample line into name, label block and value,
// walking the optional label block quote-aware (label VALUES may contain
// '{', '}', spaces — anything escaped per the exposition format).
func splitSample(line string) (name, labelBlock, rawValue string, ok bool) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", "", false
	}
	name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		inQuotes, escaped := false, false
		end := -1
		for j := 1; j < len(rest); j++ {
			c := rest[j]
			switch {
			case escaped:
				escaped = false
			case c == '\\' && inQuotes:
				escaped = true
			case c == '"':
				inQuotes = !inQuotes
			case c == '}' && !inQuotes:
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", "", "", false
		}
		labelBlock = rest[:end+1]
		rest = rest[end+1:]
	}
	if len(rest) < 2 || rest[0] != ' ' {
		return "", "", "", false
	}
	rawValue = rest[1:]
	if rawValue == "" || strings.ContainsAny(rawValue, " \t") {
		return "", "", "", false
	}
	return name, labelBlock, rawValue, true
}

// validatePromText is a strict Prometheus text-format (version 0.0.4)
// validator: every sample must parse, carry a valid metric name, follow a
// TYPE declaration for its family, use valid label names and properly
// quoted label values, and families must not repeat.
func validatePromText(t *testing.T, body string) map[string]float64 {
	t.Helper()
	types := map[string]string{}
	values := map[string]float64{}
	var lastFamily string
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		lineNo := ln + 1
		if line == "" {
			t.Fatalf("line %d: empty line in exposition body", lineNo)
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed HELP: %q", lineNo, line)
			}
			if _, seen := types[name]; seen {
				t.Fatalf("line %d: family %s declared twice", lineNo, name)
			}
			lastFamily = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !metricNameRe.MatchString(fields[0]) {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			if fields[1] != "counter" && fields[1] != "gauge" && fields[1] != "histogram" && fields[1] != "summary" && fields[1] != "untyped" {
				t.Fatalf("line %d: invalid type %q", lineNo, fields[1])
			}
			if fields[0] != lastFamily {
				t.Fatalf("line %d: TYPE for %s does not follow its HELP (%s)", lineNo, fields[0], lastFamily)
			}
			types[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		name, labelBlock, rawValue, ok := splitSample(line)
		if !ok || !metricNameRe.MatchString(name) {
			t.Fatalf("line %d: unparseable sample: %q", lineNo, line)
		}
		if _, ok := types[name]; !ok {
			t.Fatalf("line %d: sample %s precedes its TYPE declaration", lineNo, name)
		}
		v, err := strconv.ParseFloat(rawValue, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", lineNo, rawValue, err)
		}
		if math.IsNaN(v) {
			t.Fatalf("line %d: NaN value for %s", lineNo, name)
		}
		if types[name] == "counter" && v < 0 {
			t.Fatalf("line %d: negative counter %s = %v", lineNo, name, v)
		}
		if labelBlock != "" {
			inner := strings.TrimSuffix(strings.TrimPrefix(labelBlock, "{"), "}")
			for _, pair := range splitLabelPairs(t, inner, lineNo) {
				k, quoted, ok := strings.Cut(pair, "=")
				if !ok || !labelNameRe.MatchString(k) {
					t.Fatalf("line %d: bad label pair %q", lineNo, pair)
				}
				if len(quoted) < 2 || quoted[0] != '"' || quoted[len(quoted)-1] != '"' {
					t.Fatalf("line %d: unquoted label value %q", lineNo, quoted)
				}
				if _, err := strconv.Unquote(quoted); err != nil {
					t.Fatalf("line %d: unescaped label value %q: %v", lineNo, quoted, err)
				}
			}
		}
		values[name+labelBlock] = v
	}
	return values
}

// splitLabelPairs splits `k="v",k2="v2"` respecting escaped quotes.
func splitLabelPairs(t *testing.T, s string, lineNo int) []string {
	t.Helper()
	var pairs []string
	var cur strings.Builder
	inQuotes, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
			cur.WriteRune(r)
		case r == '\\' && inQuotes:
			escaped = true
			cur.WriteRune(r)
		case r == '"':
			inQuotes = !inQuotes
			cur.WriteRune(r)
		case r == ',' && !inQuotes:
			pairs = append(pairs, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if inQuotes {
		t.Fatalf("line %d: unterminated label quote in %q", lineNo, s)
	}
	if cur.Len() > 0 {
		pairs = append(pairs, cur.String())
	}
	return pairs
}

// metricsServer builds a server with an attached scheduler whose admission
// control uses a (cold) learned utility curve.
func metricsServer(t *testing.T) (*Server, *prefetch.Scheduler) {
	t.Helper()
	pyr := testPyramid(t)
	db := backend.NewDBMS(pyr, backend.DefaultLatency(), nil)
	fc := prefetch.NewFeedbackCollector(4)
	sched := prefetch.NewScheduler(db, prefetch.Config{
		Workers: 2, QueuePerSession: 8, GlobalQueue: 16, Utility: fc,
	})
	factory := func(session string) (*core.Engine, error) {
		m := recommend.NewMomentum()
		return core.NewEngine(db, nil, core.SinglePolicy{Model: m.Name()},
			[]recommend.Model{m}, core.Config{K: 4},
			core.WithScheduler(sched, session), core.WithFeedback(fc))
	}
	srv := New(Meta{Levels: pyr.NumLevels(), TileSize: pyr.TileSize(), Attrs: pyr.Attrs()},
		factory, WithScheduler(sched), WithMetrics())
	t.Cleanup(srv.Close)
	return srv, sched
}

func TestMetricsEndpointValidates(t *testing.T) {
	srv, sched := metricsServer(t)
	// Create sessions, including one with a hostile id for label escaping.
	for _, id := range []string{"alice", "bob", `ev"il\ses` + "\nsion`}"} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/tile?level=0&y=0&x=0&session="+escapeQuery(id), nil))
		if rec.Code != 200 {
			t.Fatalf("tile request for %q: %d %s", id, rec.Code, rec.Body)
		}
	}
	sched.Drain()

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	values := validatePromText(t, rec.Body.String())

	if values["forecache_sessions"] != 3 {
		t.Errorf("forecache_sessions = %v, want 3", values["forecache_sessions"])
	}
	for _, want := range []string{
		"forecache_cache_hits_total",
		"forecache_cache_misses_total",
		"forecache_cache_hit_ratio",
		"forecache_prefetch_queued_total",
		"forecache_prefetch_pressure",
		"forecache_utility_observations_total",
	} {
		if _, ok := values[want]; !ok {
			t.Errorf("missing metric %s", want)
		}
	}
	// Per-session families carry one sample per live session.
	depths, pressures, curvePoints := 0, 0, 0
	for k := range values {
		switch {
		case strings.HasPrefix(k, "forecache_prefetch_session_queue_depth{"):
			depths++
		case strings.HasPrefix(k, "forecache_prefetch_session_pressure{"):
			pressures++
		case strings.HasPrefix(k, "forecache_utility_position_factor{"):
			curvePoints++
		}
	}
	if depths != 3 || pressures != 3 {
		t.Errorf("per-session samples: %d depths, %d pressures, want 3 each", depths, pressures)
	}
	if curvePoints != 4 {
		t.Errorf("utility curve samples = %d, want 4 (collector positions)", curvePoints)
	}
	// The cold curve is the static base^p, exported per position.
	if got := values[`forecache_utility_position_factor{position="1"}`]; math.Abs(got-0.85) > 1e-9 {
		t.Errorf("cold curve position 1 = %v, want 0.85", got)
	}
}

// TestMetricsCountersSurviveEviction: the *_total cache counters are
// lifetime totals — evicting a session folds its counts into the retired
// baseline instead of making a Prometheus counter go backwards.
func TestMetricsCountersSurviveEviction(t *testing.T) {
	srv, _ := testServer(t, WithMetrics(), WithSessionLimit(1))
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	// Session a accumulates one miss (and prefetches).
	if rec := get("/tile?level=0&y=0&x=0&session=a"); rec.Code != 200 {
		t.Fatalf("tile: %d", rec.Code)
	}
	before := validatePromText(t, get("/metrics").Body.String())
	if before["forecache_cache_misses_total"] < 1 {
		t.Fatalf("expected at least one miss before eviction, got %v", before["forecache_cache_misses_total"])
	}
	// Session b evicts a (limit 1). The totals must not decrease.
	if rec := get("/tile?level=0&y=0&x=0&session=b"); rec.Code != 200 {
		t.Fatalf("tile: %d", rec.Code)
	}
	after := validatePromText(t, get("/metrics").Body.String())
	if after["forecache_sessions_evicted_total"] != 1 {
		t.Fatalf("evicted = %v, want 1", after["forecache_sessions_evicted_total"])
	}
	for _, name := range []string{
		"forecache_cache_hits_total", "forecache_cache_misses_total",
		"forecache_cache_prefetched_total", "forecache_cache_evicted_total",
	} {
		if after[name] < before[name] {
			t.Errorf("%s went backwards across eviction: %v -> %v", name, before[name], after[name])
		}
	}
	if after["forecache_cache_misses_total"] < before["forecache_cache_misses_total"]+1 {
		t.Errorf("misses_total = %v, want >= %v (b's first miss on top of a's retired count)",
			after["forecache_cache_misses_total"], before["forecache_cache_misses_total"]+1)
	}
}

// TestMetricsAllocationShares extends the strict-format validation to the
// forecache_allocation_share family: hostile model names must escape
// cleanly, every sample must carry phase+model labels, and — because the
// Shares snapshot is taken under one policy lock hold — each scrape's
// per-phase shares must sum to exactly 1 even while reallocations and
// observations churn concurrently.
func TestMetricsAllocationShares(t *testing.T) {
	pyr := testPyramid(t)
	db := backend.NewDBMS(pyr, backend.DefaultLatency(), nil)
	fc := prefetch.NewFeedbackCollector(4)
	evil := `ev"il\mo` + "\ndel"
	base := core.OriginalPolicy{ABName: evil, SBName: "sb_ok"}
	ap, err := core.NewAdaptivePolicy(base, []string{evil, "sb_ok"}, fc,
		core.AdaptiveConfig{Floor: 0.1, MaxStep: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	factory := func(session string) (*core.Engine, error) {
		m := recommend.NewMomentum()
		return core.NewEngine(db, nil, core.SinglePolicy{Model: m.Name()},
			[]recommend.Model{m}, core.Config{K: 4})
	}
	srv := New(Meta{Levels: pyr.NumLevels(), TileSize: pyr.TileSize(), Attrs: pyr.Attrs()},
		factory, WithMetrics(), WithAllocation(ap))
	t.Cleanup(srv.Close)

	// Populate every phase's share state: two cold (prior shares) and one
	// warmed past reallocation.
	phases := []trace.Phase{trace.Foraging, trace.Navigation, trace.Sensemaking}
	for _, ph := range phases {
		ap.Allocations(ph, 4)
	}
	for i := 0; i < 100; i++ {
		fc.Observe(trace.Navigation, evil, i%4, true)
		fc.Observe(trace.Navigation, "sb_ok", i%4, i%2 == 0)
	}
	ap.Allocations(trace.Navigation, 4)

	// Concurrent churn: observations and reallocations race the scrapes.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			fc.Observe(phases[i%3], evil, i%4, i%3 == 0)
			ap.Allocations(phases[i%3], 4)
		}
	}()

	shareRe := regexp.MustCompile(`^forecache_allocation_share\{model="((?:[^"\\]|\\.)*)",phase="([^"]*)"\}$`)
	for scrape := 0; scrape < 20; scrape++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("/metrics: %d", rec.Code)
		}
		values := validatePromText(t, rec.Body.String())
		perPhase := map[string]float64{}
		models := map[string]map[string]bool{}
		for k, v := range values {
			m := shareRe.FindStringSubmatch(k)
			if m == nil {
				continue
			}
			model, err := strconv.Unquote(`"` + m[1] + `"`)
			if err != nil {
				t.Fatalf("label value %q does not unquote: %v", m[1], err)
			}
			perPhase[m[2]] += v
			if models[m[2]] == nil {
				models[m[2]] = map[string]bool{}
			}
			models[m[2]][model] = true
		}
		if len(perPhase) != 3 {
			t.Fatalf("scrape %d: allocation samples for %d phases, want 3", scrape, len(perPhase))
		}
		for ph, sum := range perPhase {
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("scrape %d: phase %s shares sum to %v, want 1 (snapshot not consistent)", scrape, ph, sum)
			}
			if !models[ph][evil] || !models[ph]["sb_ok"] {
				t.Fatalf("scrape %d: phase %s missing models: %v", scrape, ph, models[ph])
			}
		}
	}
	close(done)
	wg.Wait()

	// The exported values match the policy's own snapshot once churn stops.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	values := validatePromText(t, rec.Body.String())
	for ph, byModel := range ap.Shares() {
		for model, share := range byModel {
			key := fmt.Sprintf(`forecache_allocation_share{model="%s",phase="%s"}`,
				escapeLabel(model), ph.String())
			got, ok := values[key]
			if !ok {
				t.Errorf("missing sample %s", key)
				continue
			}
			if math.Abs(got-share) > 1e-12 {
				t.Errorf("%s = %v, want %v", key, got, share)
			}
		}
	}
}

func TestMetricsAbsentWithoutOption(t *testing.T) {
	srv, _ := testServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 404 {
		t.Errorf("/metrics without WithMetrics = %d, want 404", rec.Code)
	}
}

func TestMetricsAnswersAfterClose(t *testing.T) {
	srv, _ := metricsServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/tile?level=0&y=0&x=0", nil))
	if rec.Code != 200 {
		t.Fatalf("tile: %d", rec.Code)
	}
	srv.Close()
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics after Close = %d, want 200 (operability survives shutdown)", rec.Code)
	}
	values := validatePromText(t, rec.Body.String())
	if values["forecache_server_closed"] != 1 {
		t.Errorf("forecache_server_closed = %v after Close, want 1", values["forecache_server_closed"])
	}
	if values["forecache_sessions"] != 0 {
		t.Errorf("forecache_sessions = %v after Close, want 0", values["forecache_sessions"])
	}
}

func escapeQuery(s string) string {
	var b strings.Builder
	for _, r := range []byte(s) {
		if ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9') {
			b.WriteByte(r)
		} else {
			fmt.Fprintf(&b, "%%%02X", r)
		}
	}
	return b.String()
}
