package server

import (
	"fmt"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"forecache/internal/backend"
	"forecache/internal/core"
	"forecache/internal/obs"
	"forecache/internal/prefetch"
	"forecache/internal/recommend"
	"forecache/internal/trace"
)

// validatePromText runs the shared strict Prometheus text-format
// validator (obs.ParsePromText — also the live-scrape integration check's
// engine) and fails the test on any format or histogram-consistency
// violation.
func validatePromText(t *testing.T, body string) map[string]float64 {
	t.Helper()
	values, err := obs.ParsePromText(body)
	if err != nil {
		t.Fatalf("exposition body rejected: %v", err)
	}
	return values
}

// metricsServer builds a server with an attached scheduler whose admission
// control uses a (cold) learned utility curve, plus a full observability
// pipeline so the histogram families are exported.
func metricsServer(t *testing.T) (*Server, *prefetch.Scheduler) {
	t.Helper()
	pyr := testPyramid(t)
	db := backend.NewDBMS(pyr, backend.DefaultLatency(), nil)
	fc := prefetch.NewFeedbackCollector(4)
	pipe := obs.NewPipeline(obs.Config{})
	sched := prefetch.NewScheduler(db, prefetch.Config{
		Workers: 2, QueuePerSession: 8, GlobalQueue: 16, Utility: fc, Obs: pipe,
	})
	factory := func(session string) (*core.Engine, error) {
		m := recommend.NewMomentum()
		return core.NewEngine(db, nil, core.SinglePolicy{Model: m.Name()},
			[]recommend.Model{m}, core.Config{K: 4},
			core.WithScheduler(sched, session), core.WithFeedback(fc), core.WithObs(pipe))
	}
	srv := New(Meta{Levels: pyr.NumLevels(), TileSize: pyr.TileSize(), Attrs: pyr.Attrs()},
		factory, WithScheduler(sched), WithMetrics(), WithObs(pipe))
	t.Cleanup(srv.Close)
	return srv, sched
}

func TestMetricsEndpointValidates(t *testing.T) {
	srv, sched := metricsServer(t)
	// Create sessions, including one with a hostile id for label escaping.
	for _, id := range []string{"alice", "bob", `ev"il\ses` + "\nsion`}"} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/tile?level=0&y=0&x=0&session="+escapeQuery(id), nil))
		if rec.Code != 200 {
			t.Fatalf("tile request for %q: %d %s", id, rec.Code, rec.Body)
		}
	}
	sched.Drain()

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	values := validatePromText(t, rec.Body.String())

	if values["forecache_sessions"] != 3 {
		t.Errorf("forecache_sessions = %v, want 3", values["forecache_sessions"])
	}
	for _, want := range []string{
		"forecache_cache_hits_total",
		"forecache_cache_misses_total",
		"forecache_cache_hit_ratio",
		"forecache_prefetch_queued_total",
		"forecache_prefetch_pressure",
		"forecache_utility_observations_total",
	} {
		if _, ok := values[want]; !ok {
			t.Errorf("missing metric %s", want)
		}
	}
	// Per-session families carry one sample per live session.
	depths, pressures, curvePoints := 0, 0, 0
	for k := range values {
		switch {
		case strings.HasPrefix(k, "forecache_prefetch_session_queue_depth{"):
			depths++
		case strings.HasPrefix(k, "forecache_prefetch_session_pressure{"):
			pressures++
		case strings.HasPrefix(k, "forecache_utility_position_factor{"):
			curvePoints++
		}
	}
	if depths != 3 || pressures != 3 {
		t.Errorf("per-session samples: %d depths, %d pressures, want 3 each", depths, pressures)
	}
	if curvePoints != 4 {
		t.Errorf("utility curve samples = %d, want 4 (collector positions)", curvePoints)
	}
	// The four histogram families are exported and already passed the
	// validator's histogram-consistency checks above; pin their contents.
	if got := values[`forecache_request_duration_seconds_count{outcome="miss"}`]; got != 3 {
		t.Errorf("request-duration miss count = %v, want 3 (three cold-cache /tile requests)", got)
	}
	for _, key := range []string{
		`forecache_request_duration_seconds_bucket{le="+Inf",outcome="hit"}`,
		`forecache_request_duration_seconds_count{outcome="shed"}`,
		`forecache_prefetch_queue_wait_seconds_count`,
		`forecache_backend_fetch_duration_seconds_count`,
		`forecache_prefetch_lead_time_seconds_count`,
	} {
		if _, ok := values[key]; !ok {
			t.Errorf("missing histogram sample %s", key)
		}
	}
	if values[`forecache_prefetch_queue_wait_seconds_count`] < 1 {
		t.Error("queue-wait histogram empty after a drained prefetch batch")
	}
	if values[`forecache_backend_fetch_duration_seconds_count`] < 1 {
		t.Error("backend-fetch histogram empty after prefetch fetches")
	}
	// The cold curve is the static base^p, exported per position.
	if got := values[`forecache_utility_position_factor{position="1"}`]; math.Abs(got-0.85) > 1e-9 {
		t.Errorf("cold curve position 1 = %v, want 0.85", got)
	}
}

// TestMetricsCountersSurviveEviction: the *_total cache counters are
// lifetime totals — evicting a session folds its counts into the retired
// baseline instead of making a Prometheus counter go backwards.
func TestMetricsCountersSurviveEviction(t *testing.T) {
	srv, _ := testServer(t, WithMetrics(), WithSessionLimit(1))
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	// Session a accumulates one miss (and prefetches).
	if rec := get("/tile?level=0&y=0&x=0&session=a"); rec.Code != 200 {
		t.Fatalf("tile: %d", rec.Code)
	}
	before := validatePromText(t, get("/metrics").Body.String())
	if before["forecache_cache_misses_total"] < 1 {
		t.Fatalf("expected at least one miss before eviction, got %v", before["forecache_cache_misses_total"])
	}
	// Session b evicts a (limit 1). The totals must not decrease.
	if rec := get("/tile?level=0&y=0&x=0&session=b"); rec.Code != 200 {
		t.Fatalf("tile: %d", rec.Code)
	}
	after := validatePromText(t, get("/metrics").Body.String())
	if after["forecache_sessions_evicted_total"] != 1 {
		t.Fatalf("evicted = %v, want 1", after["forecache_sessions_evicted_total"])
	}
	for _, name := range []string{
		"forecache_cache_hits_total", "forecache_cache_misses_total",
		"forecache_cache_prefetched_total", "forecache_cache_evicted_total",
	} {
		if after[name] < before[name] {
			t.Errorf("%s went backwards across eviction: %v -> %v", name, before[name], after[name])
		}
	}
	if after["forecache_cache_misses_total"] < before["forecache_cache_misses_total"]+1 {
		t.Errorf("misses_total = %v, want >= %v (b's first miss on top of a's retired count)",
			after["forecache_cache_misses_total"], before["forecache_cache_misses_total"]+1)
	}
}

// TestMetricsAllocationShares extends the strict-format validation to the
// forecache_allocation_share family: hostile model names must escape
// cleanly, every sample must carry phase+model labels, and — because the
// Shares snapshot is taken under one policy lock hold — each scrape's
// per-phase shares must sum to exactly 1 even while reallocations and
// observations churn concurrently.
func TestMetricsAllocationShares(t *testing.T) {
	pyr := testPyramid(t)
	db := backend.NewDBMS(pyr, backend.DefaultLatency(), nil)
	fc := prefetch.NewFeedbackCollector(4)
	evil := `ev"il\mo` + "\ndel"
	base := core.OriginalPolicy{ABName: evil, SBName: "sb_ok"}
	ap, err := core.NewAdaptivePolicy(base, []string{evil, "sb_ok"}, fc,
		core.AdaptiveConfig{Floor: 0.1, MaxStep: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	factory := func(session string) (*core.Engine, error) {
		m := recommend.NewMomentum()
		return core.NewEngine(db, nil, core.SinglePolicy{Model: m.Name()},
			[]recommend.Model{m}, core.Config{K: 4})
	}
	srv := New(Meta{Levels: pyr.NumLevels(), TileSize: pyr.TileSize(), Attrs: pyr.Attrs()},
		factory, WithMetrics(), WithAllocation(ap))
	t.Cleanup(srv.Close)

	// Populate every phase's share state: two cold (prior shares) and one
	// warmed past reallocation.
	phases := []trace.Phase{trace.Foraging, trace.Navigation, trace.Sensemaking}
	for _, ph := range phases {
		ap.Allocations(ph, 4)
	}
	for i := 0; i < 100; i++ {
		fc.Observe(trace.Navigation, evil, i%4, true)
		fc.Observe(trace.Navigation, "sb_ok", i%4, i%2 == 0)
	}
	ap.Allocations(trace.Navigation, 4)

	// Concurrent churn: observations and reallocations race the scrapes.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			fc.Observe(phases[i%3], evil, i%4, i%3 == 0)
			ap.Allocations(phases[i%3], 4)
		}
	}()

	shareRe := regexp.MustCompile(`^forecache_allocation_share\{model="((?:[^"\\]|\\.)*)",phase="([^"]*)"\}$`)
	for scrape := 0; scrape < 20; scrape++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("/metrics: %d", rec.Code)
		}
		values := validatePromText(t, rec.Body.String())
		perPhase := map[string]float64{}
		models := map[string]map[string]bool{}
		for k, v := range values {
			m := shareRe.FindStringSubmatch(k)
			if m == nil {
				continue
			}
			model, err := strconv.Unquote(`"` + m[1] + `"`)
			if err != nil {
				t.Fatalf("label value %q does not unquote: %v", m[1], err)
			}
			perPhase[m[2]] += v
			if models[m[2]] == nil {
				models[m[2]] = map[string]bool{}
			}
			models[m[2]][model] = true
		}
		if len(perPhase) != 3 {
			t.Fatalf("scrape %d: allocation samples for %d phases, want 3", scrape, len(perPhase))
		}
		for ph, sum := range perPhase {
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("scrape %d: phase %s shares sum to %v, want 1 (snapshot not consistent)", scrape, ph, sum)
			}
			if !models[ph][evil] || !models[ph]["sb_ok"] {
				t.Fatalf("scrape %d: phase %s missing models: %v", scrape, ph, models[ph])
			}
		}
	}
	close(done)
	wg.Wait()

	// The exported values match the policy's own snapshot once churn stops.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	values := validatePromText(t, rec.Body.String())
	for ph, byModel := range ap.Shares() {
		for model, share := range byModel {
			key := fmt.Sprintf(`forecache_allocation_share{model="%s",phase="%s"}`,
				escapeLabel(model), ph.String())
			got, ok := values[key]
			if !ok {
				t.Errorf("missing sample %s", key)
				continue
			}
			if math.Abs(got-share) > 1e-12 {
				t.Errorf("%s = %v, want %v", key, got, share)
			}
		}
	}
}

func TestMetricsAbsentWithoutOption(t *testing.T) {
	srv, _ := testServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 404 {
		t.Errorf("/metrics without WithMetrics = %d, want 404", rec.Code)
	}
}

func TestMetricsAnswersAfterClose(t *testing.T) {
	srv, _ := metricsServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/tile?level=0&y=0&x=0", nil))
	if rec.Code != 200 {
		t.Fatalf("tile: %d", rec.Code)
	}
	srv.Close()
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics after Close = %d, want 200 (operability survives shutdown)", rec.Code)
	}
	values := validatePromText(t, rec.Body.String())
	if values["forecache_server_closed"] != 1 {
		t.Errorf("forecache_server_closed = %v after Close, want 1", values["forecache_server_closed"])
	}
	if values["forecache_sessions"] != 0 {
		t.Errorf("forecache_sessions = %v after Close, want 0", values["forecache_sessions"])
	}
}

func escapeQuery(s string) string {
	var b strings.Builder
	for _, r := range []byte(s) {
		if ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9') {
			b.WriteByte(r)
		} else {
			fmt.Fprintf(&b, "%%%02X", r)
		}
	}
	return b.String()
}
