package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"forecache/internal/backend"
	"forecache/internal/core"
	"forecache/internal/obs"
	"forecache/internal/recommend"
	"forecache/internal/tile"
)

// slowStore delays user-facing fetches so a request's wall time is
// dominated by the backend — the scenario /debug/traces must attribute.
type slowStore struct {
	backend.Store
	delay time.Duration
}

func (s *slowStore) Fetch(c tile.Coord) (*tile.Tile, error) {
	time.Sleep(s.delay)
	return s.Store.Fetch(c)
}

// tracedServer builds a synchronous-prefetch server with tracing on.
func tracedServer(t *testing.T, store backend.Store, opts ...Option) (*Server, *obs.Pipeline) {
	t.Helper()
	pipe := obs.NewPipeline(obs.Config{TraceCapacity: 16})
	factory := func(session string) (*core.Engine, error) {
		m := recommend.NewMomentum()
		return core.NewEngine(store, nil, core.SinglePolicy{Model: m.Name()},
			[]recommend.Model{m}, core.Config{K: 2}, core.WithObs(pipe))
	}
	pyr := store.Pyramid()
	srv := New(Meta{Levels: pyr.NumLevels(), TileSize: pyr.TileSize(), Attrs: pyr.Attrs()},
		factory, append([]Option{WithObs(pipe), WithMetrics()}, opts...)...)
	t.Cleanup(srv.Close)
	return srv, pipe
}

func get(t *testing.T, srv *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// TestSlowBackendAttribution drives a request whose backend fetch
// dominates its wall time and checks /debug/traces says so: the
// backend_fetch span must account for at least 90% of the trace. Run
// under -race in CI, this also exercises tracing against the detector.
func TestSlowBackendAttribution(t *testing.T) {
	pyr := testPyramid(t)
	store := &slowStore{
		Store: backend.NewDBMS(pyr, backend.DefaultLatency(), nil),
		delay: 50 * time.Millisecond,
	}
	srv, _ := tracedServer(t, store)

	rec := get(t, srv, "/tile?level=0&y=0&x=0")
	if rec.Code != 200 {
		t.Fatalf("tile: %d %s", rec.Code, rec.Body)
	}
	traceID := rec.Header().Get("X-Trace-ID")
	if traceID == "" {
		t.Fatal("traced request carried no X-Trace-ID header")
	}

	rec = get(t, srv, "/debug/traces?n=5")
	if rec.Code != 200 {
		t.Fatalf("/debug/traces: %d", rec.Code)
	}
	var out TracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Capacity != 16 || out.Stored < 1 {
		t.Fatalf("buffer shape: %+v", out)
	}
	var tr *obs.Trace
	for i := range out.Traces {
		if out.Traces[i].ID == traceID {
			tr = &out.Traces[i]
		}
	}
	if tr == nil {
		t.Fatalf("trace %s not in /debug/traces", traceID)
	}
	if tr.Outcome != obs.OutcomeMiss {
		t.Fatalf("outcome = %q, want miss", tr.Outcome)
	}
	var backendNS int64
	for _, sp := range tr.Spans {
		if sp.Name == "backend_fetch" {
			backendNS = sp.DurNS
		}
	}
	if backendNS == 0 {
		t.Fatalf("no backend_fetch span in %+v", tr.Spans)
	}
	// Only the user-facing Fetch is slow (prefetch uses FetchQuiet), so
	// the backend-fetch span must dominate the request end to end.
	if frac := float64(backendNS) / float64(tr.DurNS); frac < 0.9 {
		t.Errorf("backend_fetch = %.1f%% of wall time, want >= 90%% (span %v of %v)",
			frac*100, time.Duration(backendNS), time.Duration(tr.DurNS))
	}
}

// TestTracesSlowestOrderAndN: /debug/traces returns descending durations
// and honors ?n=.
func TestTracesSlowestOrderAndN(t *testing.T) {
	pyr := testPyramid(t)
	srv, _ := tracedServer(t, backend.NewDBMS(pyr, backend.DefaultLatency(), nil))
	// Pan back and forth (requests must be one move apart).
	for i, x := range []int{0, 1, 0, 1} {
		if rec := get(t, srv, fmt.Sprintf("/tile?level=1&y=0&x=%d", x)); rec.Code != 200 {
			t.Fatalf("tile %d: %d", i, rec.Code)
		}
	}
	rec := get(t, srv, "/debug/traces?n=2")
	var out TracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 2 || out.Stored != 4 || out.Recorded != 4 {
		t.Fatalf("n=2 returned %d traces (stored %d, recorded %d)", len(out.Traces), out.Stored, out.Recorded)
	}
	if out.Traces[0].DurNS < out.Traces[1].DurNS {
		t.Errorf("traces not slowest-first: %d then %d", out.Traces[0].DurNS, out.Traces[1].DurNS)
	}
	if rec := get(t, srv, "/debug/traces?n=zero"); rec.Code != 400 {
		t.Errorf("bad n = %d, want 400", rec.Code)
	}
	if rec := get(t, srv, "/debug/traces?n=-1"); rec.Code != 400 {
		t.Errorf("negative n = %d, want 400", rec.Code)
	}
}

// TestTracesRecordShedOutcomes: refused requests (bad query, closed
// server) finish as shed and are visible in the buffer.
func TestTracesRecordShedOutcomes(t *testing.T) {
	pyr := testPyramid(t)
	srv, pipe := tracedServer(t, backend.NewDBMS(pyr, backend.DefaultLatency(), nil))
	if rec := get(t, srv, "/tile?level=broken"); rec.Code != 400 {
		t.Fatalf("bad query = %d, want 400", rec.Code)
	}
	traces := pipe.Traces.Snapshot()
	if len(traces) != 1 || traces[0].Outcome != obs.OutcomeShed {
		t.Fatalf("shed request not recorded: %+v", traces)
	}
	if got := pipe.RequestShed.Snapshot().Count; got != 1 {
		t.Errorf("shed histogram count = %d, want 1", got)
	}
}

// TestTracesAbsentWithoutObs: no pipeline, no endpoint.
func TestTracesAbsentWithoutObs(t *testing.T) {
	srv, _ := testServer(t)
	if rec := get(t, srv, "/debug/traces"); rec.Code != 404 {
		t.Errorf("/debug/traces without WithObs = %d, want 404", rec.Code)
	}
}

// TestPprofOptIn: profiling handlers exist only with WithPprof.
func TestPprofOptIn(t *testing.T) {
	srv, _ := testServer(t)
	if rec := get(t, srv, "/debug/pprof/"); rec.Code != 404 {
		t.Errorf("pprof without WithPprof = %d, want 404", rec.Code)
	}
	srv2, _ := testServer(t, WithPprof())
	if rec := get(t, srv2, "/debug/pprof/"); rec.Code != 200 {
		t.Errorf("pprof index = %d, want 200", rec.Code)
	}
	if rec := get(t, srv2, "/debug/pprof/goroutine?debug=1"); rec.Code != 200 {
		t.Errorf("goroutine profile = %d, want 200", rec.Code)
	}
}

// TestObservabilitySurvivesClose pins the Close vs in-flight scrape
// contract: /debug/traces and /metrics keep answering 200 while Close
// runs and afterwards, and the final trace set is intact. The concurrent
// section runs under -race in CI.
func TestObservabilitySurvivesClose(t *testing.T) {
	pyr := testPyramid(t)
	srv, _ := tracedServer(t, backend.NewDBMS(pyr, backend.DefaultLatency(), nil))
	for i, x := range []int{0, 1, 0} { // pan moves: requests one step apart
		if rec := get(t, srv, fmt.Sprintf("/tile?level=1&y=0&x=%d", x)); rec.Code != 200 {
			t.Fatalf("tile %d: %d", i, rec.Code)
		}
	}

	// Scrapes race Close from several goroutines; none may observe an
	// error status.
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			<-start
			for i := 0; i < 25; i++ {
				rec := get(t, srv, path)
				if rec.Code != 200 {
					t.Errorf("%s during Close = %d, want 200", path, rec.Code)
					return
				}
			}
		}([]string{"/debug/traces", "/metrics"}[g%2])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		srv.Close()
	}()
	close(start)
	wg.Wait()

	// After Close: both endpoints still answer, traces intact, tile shed.
	rec := get(t, srv, "/debug/traces")
	if rec.Code != 200 {
		t.Fatalf("/debug/traces after Close = %d, want 200", rec.Code)
	}
	var out TracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Stored < 3 {
		t.Errorf("stored traces after Close = %d, want >= 3", out.Stored)
	}
	if rec := get(t, srv, "/metrics"); rec.Code != 200 {
		t.Fatalf("/metrics after Close = %d, want 200", rec.Code)
	}
	rec = get(t, srv, "/tile?level=0&y=0&x=0")
	if rec.Code != 503 {
		t.Fatalf("tile after Close = %d, want 503", rec.Code)
	}
	if rec.Header().Get("X-Trace-ID") == "" {
		t.Error("post-Close tile refusal lost its trace id")
	}
	// The refusal itself is traced as shed.
	rec = get(t, srv, "/debug/traces?n=50")
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	shed := 0
	for _, tr := range out.Traces {
		if tr.Outcome == obs.OutcomeShed {
			shed++
		}
	}
	if shed < 1 {
		t.Error("post-Close refusal missing from the trace buffer")
	}
}

// TestStatsUptimeAndBuild: the /stats fleet-dashboard fields.
func TestStatsUptimeAndBuild(t *testing.T) {
	srv, _ := testServer(t)
	rec := get(t, srv, "/stats")
	if rec.Code != 200 {
		t.Fatalf("/stats: %d", rec.Code)
	}
	var out StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Uptime < 0 {
		t.Errorf("uptime = %v, want >= 0", out.Uptime)
	}
	if !strings.HasPrefix(out.GoVersion, "go") {
		t.Errorf("go_version = %q", out.GoVersion)
	}
	if out.Build != nil && out.Build["path"] == "" {
		t.Errorf("build info present but empty path: %v", out.Build)
	}
}
