package client

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"forecache/internal/tile"
)

// These tests exercise the client's error handling against misbehaving
// servers; the happy path is covered end to end in the server package.

func TestClientSurfacesServerErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"no jumping"}`))
	}))
	defer ts.Close()
	c := New(ts.URL, "s")
	if _, _, err := c.Tile(tile.Coord{}); err == nil {
		t.Error("400 response should surface as an error")
	} else if got := err.Error(); got == "" || !contains(got, "no jumping") {
		t.Errorf("error should carry the server message, got %q", got)
	}
	if _, err := c.Meta(); err == nil {
		t.Error("Meta should fail on a 400 response")
	}
	if err := c.Reset(); err == nil {
		t.Error("Reset should fail on a 400 response")
	}
}

func TestClientHandlesNonJSONErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte("boom"))
	}))
	defer ts.Close()
	c := New(ts.URL, "")
	if _, _, err := c.Tile(tile.Coord{}); err == nil || !contains(err.Error(), "boom") {
		t.Errorf("plain-text error body should be surfaced, got %v", err)
	}
}

func TestClientHandlesGarbageTilePayload(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{not json"))
	}))
	defer ts.Close()
	c := New(ts.URL, "")
	if _, _, err := c.Tile(tile.Coord{}); err == nil {
		t.Error("garbage payload should fail decoding")
	}
}

func TestClientUnreachableServer(t *testing.T) {
	c := New("http://127.0.0.1:1", "")
	if _, _, err := c.Tile(tile.Coord{}); err == nil {
		t.Error("unreachable server should error")
	}
	if _, err := c.Stats(); err == nil {
		t.Error("Stats against unreachable server should error")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
