// Package client is the Go client for the ForeCache middleware server: the
// programmatic equivalent of the paper's browser-based visualizer. It
// issues tile requests and surfaces the middleware's cache/phase/latency
// telemetry from the response headers.
package client

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"forecache/internal/push"
	"forecache/internal/tile"
)

// Meta mirrors the server's dataset description (the wire type is defined
// on both sides to keep the client importable without the server).
type Meta struct {
	Levels   int      `json:"levels"`
	TileSize int      `json:"tileSize"`
	Attrs    []string `json:"attrs"`
}

// Client talks to one middleware server on behalf of one session.
type Client struct {
	base    string
	session string
	http    *http.Client

	// Push-stream state (see push.go). slots is the bounded client-side
	// buffer of streamed tiles, keyed by coordinate; order is its FIFO
	// eviction queue, oldest first.
	mu     sync.Mutex
	binary bool // guarded by mu; see NegotiateBinary
	stream *streamState
	slots  map[tile.Coord]push.Frame
	order  []tile.Coord
	pstats PushStats
}

// New returns a client for the server at base (e.g.
// "http://localhost:8080") using the given session id ("" = default).
func New(base, session string) *Client {
	return &Client{base: base, session: session, http: &http.Client{Timeout: 30 * time.Second}}
}

// NegotiateBinary toggles wire-format negotiation on Tile requests: when
// on, the client advertises "Accept: application/x-forecache-tile" and
// "Accept-Encoding: gzip", and decodes whatever the server grants — the
// binary codec, gzip compression, both, or plain JSON from a server
// without encoded serving (the headers are ignored there, so a mixed
// fleet is safe). Off (the default) keeps requests byte-identical to
// earlier clients.
func (c *Client) NegotiateBinary(on bool) {
	c.mu.Lock()
	c.binary = on
	c.mu.Unlock()
}

// TileInfo carries the middleware telemetry for one served tile.
type TileInfo struct {
	Hit     bool
	Phase   string
	Latency time.Duration
	// Streamed reports that the tile was already sitting in the client's
	// push-stream slot buffer when it was requested: it was available with
	// zero fetch latency before the request was even issued.
	Streamed bool
}

// Meta fetches the dataset description.
func (c *Client) Meta() (Meta, error) {
	var meta Meta
	err := c.getJSON("/meta", nil, &meta)
	return meta, err
}

// Tile requests one tile; the returned info reports whether the middleware
// had it prefetched. When a push stream is attached and the coordinate is
// sitting in the slot buffer, the slot is consumed and Streamed is set —
// but the HTTP request is still issued, so the server's view of the
// session's request history stays contiguous and each prefetch outcome is
// judged exactly once, by the server.
func (c *Client) Tile(coord tile.Coord) (*tile.Tile, TileInfo, error) {
	streamed := c.takeSlot(coord)
	q := url.Values{}
	q.Set("level", strconv.Itoa(coord.Level))
	q.Set("y", strconv.Itoa(coord.Y))
	q.Set("x", strconv.Itoa(coord.X))
	if c.session != "" {
		q.Set("session", c.session)
	}
	req, err := http.NewRequest(http.MethodGet, c.base+"/tile?"+q.Encode(), nil)
	if err != nil {
		return nil, TileInfo{}, err
	}
	c.mu.Lock()
	binary := c.binary
	c.mu.Unlock()
	if binary {
		req.Header.Set("Accept", tile.BinaryContentType)
		// Setting Accept-Encoding explicitly disables the transport's
		// transparent decompression, so decodeTileBody gunzips by hand.
		req.Header.Set("Accept-Encoding", "gzip")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, TileInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, TileInfo{}, decodeError(resp)
	}
	t, err := decodeTileBody(resp)
	if err != nil {
		return nil, TileInfo{}, err
	}
	info := TileInfo{
		Hit:      resp.Header.Get("X-Cache") == "HIT",
		Phase:    resp.Header.Get("X-Phase"),
		Streamed: streamed,
	}
	if ms, err := strconv.ParseFloat(resp.Header.Get("X-Latency-Ms"), 64); err == nil {
		info.Latency = time.Duration(ms * float64(time.Millisecond))
	}
	return t, info, nil
}

// decodeTileBody decodes a /tile response in whichever representation the
// server chose: Content-Encoding selects the decompressor, Content-Type
// the codec. Plain JSON from a legacy server flows through unchanged.
func decodeTileBody(resp *http.Response) (*tile.Tile, error) {
	body := io.Reader(resp.Body)
	if resp.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("client: gunzip tile: %w", err)
		}
		defer zr.Close()
		body = zr
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), tile.BinaryContentType) {
		raw, err := io.ReadAll(body)
		if err != nil {
			return nil, fmt.Errorf("client: read tile: %w", err)
		}
		t, err := tile.DecodeBinary(raw)
		if err != nil {
			return nil, fmt.Errorf("client: decode tile: %w", err)
		}
		return t, nil
	}
	var t tile.Tile
	if err := json.NewDecoder(body).Decode(&t); err != nil {
		return nil, fmt.Errorf("client: decode tile: %w", err)
	}
	return &t, nil
}

// Stats fetches the session's cache statistics.
func (c *Client) Stats() (map[string]any, error) {
	var out map[string]any
	err := c.getJSON("/stats", c.sessionQuery(), &out)
	return out, err
}

// Reset starts a fresh session on the server.
func (c *Client) Reset() error {
	u := c.base + "/reset"
	if q := c.sessionQuery(); q != nil {
		u += "?" + q.Encode()
	}
	resp, err := c.http.Post(u, "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return decodeError(resp)
	}
	return nil
}

func (c *Client) sessionQuery() url.Values {
	if c.session == "" {
		return nil
	}
	q := url.Values{}
	q.Set("session", c.session)
	return q
}

func (c *Client) getJSON(path string, q url.Values, dst any) error {
	u := c.base + path
	if q != nil {
		u += "?" + q.Encode()
	}
	resp, err := c.http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("client: server %d: %s", resp.StatusCode, e.Error)
	}
	return fmt.Errorf("client: server %d: %s", resp.StatusCode, body)
}
