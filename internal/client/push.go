package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"forecache/internal/push"
	"forecache/internal/tile"
)

// DefaultSlotCap bounds the client-side buffer of streamed tiles. The
// buffer is a receive-side mirror of the server's prefetch cache: small
// enough that a stale stream cannot pin unbounded memory, large enough to
// hold a few prediction batches ahead of the viewer.
const DefaultSlotCap = 64

// reattachDelay paces redial attempts after a dropped stream.
const reattachDelay = 50 * time.Millisecond

// PushStats counts client-side push-stream activity.
type PushStats struct {
	Frames     int // tile frames received (including backfills)
	Backfills  int // frames the server flagged as reconnect backfill
	Heartbeats int // idle keepalives received
	Evicted    int // slots dropped because the buffer was full
	Consumed   int // Tile() calls answered from the slot buffer
	Reattached int // successful redials after a dropped stream
	Buffered   int // slots currently held
}

// streamState is one Attach's lifetime: cancel tears the consumer down,
// done closes once the consumer goroutine has fully exited.
type streamState struct {
	cancel context.CancelFunc
	done   chan struct{}
}

// Attach opens the server's push stream for this client's session and
// consumes it in the background: every streamed tile lands in the slot
// buffer where a later Tile() call for that coordinate will find it. A
// dropped stream is redialed automatically (the server backfills the
// session's cached predictions on reconnect) until Detach is called. The
// initial dial is synchronous so deployment errors (push disabled, server
// down) surface immediately.
func (c *Client) Attach() error {
	c.mu.Lock()
	if c.stream != nil {
		c.mu.Unlock()
		return errors.New("client: push stream already attached")
	}
	ctx, cancel := context.WithCancel(context.Background())
	st := &streamState{cancel: cancel, done: make(chan struct{})}
	c.stream = st
	c.mu.Unlock()

	resp, err := c.dialStream(ctx)
	if err != nil {
		cancel()
		close(st.done)
		c.mu.Lock()
		c.stream = nil
		c.mu.Unlock()
		return err
	}
	go c.consumeStream(ctx, st, resp)
	return nil
}

// Detach stops the background stream consumer and waits for it to exit.
// The slot buffer keeps its contents: already-delivered tiles stay
// consumable. Detaching an unattached client is a no-op.
func (c *Client) Detach() {
	c.mu.Lock()
	st := c.stream
	c.stream = nil
	c.mu.Unlock()
	if st == nil {
		return
	}
	st.cancel()
	<-st.done
}

// PushStats returns a snapshot of the stream counters.
func (c *Client) PushStats() PushStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.pstats
	st.Buffered = len(c.slots)
	return st
}

// dialStream opens one long-lived /stream response. It uses a dedicated
// http.Client: the regular one carries a global Timeout that would kill a
// healthy stream after 30s.
func (c *Client) dialStream(ctx context.Context) (*http.Response, error) {
	u := c.base + "/stream"
	if c.session != "" {
		u += "?session=" + url.QueryEscape(c.session)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		return nil, fmt.Errorf("client: /stream content type %q", ct)
	}
	return resp, nil
}

// consumeStream decodes frames until the stream drops, then redials until
// Detach cancels the context.
func (c *Client) consumeStream(ctx context.Context, st *streamState, resp *http.Response) {
	defer close(st.done)
	for {
		r := bufio.NewReader(resp.Body)
		for {
			f, err := push.Decode(r)
			if err != nil {
				break
			}
			c.storeFrame(f)
		}
		resp.Body.Close()
		// Redial until it sticks or the client detaches.
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(reattachDelay):
			}
			next, err := c.dialStream(ctx)
			if err == nil {
				resp = next
				c.mu.Lock()
				c.pstats.Reattached++
				c.mu.Unlock()
				break
			}
			if ctx.Err() != nil {
				return
			}
		}
	}
}

// storeFrame files one decoded frame into the slot buffer. Newest wins:
// a repeated coordinate supersedes the old slot in place (and refreshes
// its eviction recency); at capacity the oldest slot is dropped.
func (c *Client) storeFrame(f push.Frame) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f.Type == push.FrameHeartbeat {
		c.pstats.Heartbeats++
		return
	}
	if f.Type != push.FrameTile || f.Tile == nil {
		return
	}
	if c.slots == nil {
		c.slots = make(map[tile.Coord]push.Frame)
	}
	if _, ok := c.slots[f.Coord]; ok {
		c.dropOrderLocked(f.Coord)
	} else if len(c.slots) >= DefaultSlotCap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.slots, oldest)
		c.pstats.Evicted++
	}
	c.slots[f.Coord] = f
	c.order = append(c.order, f.Coord)
	c.pstats.Frames++
	if f.Backfill {
		c.pstats.Backfills++
	}
}

// takeSlot consumes the buffered slot for a coordinate, if any.
func (c *Client) takeSlot(coord tile.Coord) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.slots[coord]; !ok {
		return false
	}
	delete(c.slots, coord)
	c.dropOrderLocked(coord)
	c.pstats.Consumed++
	return true
}

func (c *Client) dropOrderLocked(coord tile.Coord) {
	for i, o := range c.order {
		if o == coord {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}
