package client

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"forecache/internal/push"
	"forecache/internal/tile"
)

// waitFor polls cond until it holds or the test deadline budget runs out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// pushServer builds a fake middleware: /tile serves a JSON tile for any
// coordinate, /stream hands the connection to stream (which runs until it
// returns; connections are numbered from 1).
func pushServer(t *testing.T, stream func(n int, w http.ResponseWriter, r *http.Request)) *httptest.Server {
	t.Helper()
	var conns atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/tile", func(w http.ResponseWriter, r *http.Request) {
		lvl, _ := strconv.Atoi(r.URL.Query().Get("level"))
		y, _ := strconv.Atoi(r.URL.Query().Get("y"))
		x, _ := strconv.Atoi(r.URL.Query().Get("x"))
		w.Header().Set("X-Cache", "HIT")
		_ = json.NewEncoder(w).Encode(tile.Tile{Coord: tile.Coord{Level: lvl, Y: y, X: x}, Size: 1})
	})
	mux.HandleFunc("/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		stream(int(conns.Add(1)), w, r)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func frameFor(c tile.Coord, backfill bool) push.Frame {
	return push.Frame{
		Type: push.FrameTile, Session: "s", Model: "m", Score: 1, Backfill: backfill,
		Coord: c, Tile: &tile.Tile{Coord: c, Size: 1},
	}
}

// TestClientStreamedTile: a streamed tile lands in the slot buffer, the
// next request for its coordinate consumes the slot exactly once, and
// heartbeats are counted without occupying slots.
func TestClientStreamedTile(t *testing.T) {
	c1 := tile.Coord{Level: 1, Y: 0, X: 1}
	ts := pushServer(t, func(n int, w http.ResponseWriter, r *http.Request) {
		_, _ = push.Encode(w, frameFor(c1, false))
		_, _ = push.Encode(w, push.Frame{Type: push.FrameHeartbeat, Session: "s"})
		w.(http.Flusher).Flush()
		<-r.Context().Done()
	})
	c := New(ts.URL, "s")
	if err := c.Attach(); err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	waitFor(t, "frame+heartbeat", func() bool {
		st := c.PushStats()
		return st.Frames == 1 && st.Heartbeats == 1
	})
	if st := c.PushStats(); st.Buffered != 1 {
		t.Fatalf("stats = %+v, want 1 buffered slot", st)
	}
	_, info, err := c.Tile(c1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Streamed || !info.Hit {
		t.Fatalf("info = %+v, want Streamed+Hit", info)
	}
	// The slot was consumed: the same coordinate is a plain fetch now.
	if _, info, err = c.Tile(c1); err != nil || info.Streamed {
		t.Fatalf("second request: info=%+v err=%v, want un-streamed", info, err)
	}
	if st := c.PushStats(); st.Consumed != 1 || st.Buffered != 0 {
		t.Fatalf("stats = %+v, want exactly one consumption", st)
	}
}

// TestClientSlotSupersedeAndCap: newest frame for a coordinate supersedes
// its slot in place, and the buffer evicts oldest-first at capacity.
func TestClientSlotSupersedeAndCap(t *testing.T) {
	c := New("http://unused", "s")
	dup := tile.Coord{Level: 7, Y: 7, X: 7}
	c.storeFrame(frameFor(dup, false))
	super := frameFor(dup, false)
	super.Score = 9
	c.storeFrame(super)
	if st := c.PushStats(); st.Frames != 2 || st.Buffered != 1 || st.Evicted != 0 {
		t.Fatalf("supersede stats = %+v", st)
	}
	c.mu.Lock()
	if got := c.slots[dup].Score; got != 9 {
		c.mu.Unlock()
		t.Fatalf("slot score = %v, newest frame must win", got)
	}
	c.mu.Unlock()

	// Fill to capacity and one past it: the oldest slot (dup, stored
	// first) is the one evicted.
	for i := 0; len(c.slots) < DefaultSlotCap; i++ {
		c.storeFrame(frameFor(tile.Coord{Level: 8, X: i}, false))
	}
	c.storeFrame(frameFor(tile.Coord{Level: 9}, false))
	st := c.PushStats()
	if st.Buffered != DefaultSlotCap || st.Evicted != 1 {
		t.Fatalf("cap stats = %+v", st)
	}
	if c.takeSlot(dup) {
		t.Fatal("oldest slot should have been evicted at capacity")
	}
}

// TestClientReconnectBackfill: when the stream drops, the client redials
// and the server's backfill frames repopulate the slot buffer.
func TestClientReconnectBackfill(t *testing.T) {
	c1 := tile.Coord{Level: 1, X: 1}
	ts := pushServer(t, func(n int, w http.ResponseWriter, r *http.Request) {
		if n == 1 {
			return // drop the first connection immediately
		}
		_, _ = push.Encode(w, frameFor(c1, true))
		w.(http.Flusher).Flush()
		<-r.Context().Done()
	})
	c := New(ts.URL, "s")
	if err := c.Attach(); err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	waitFor(t, "reconnect backfill", func() bool {
		st := c.PushStats()
		return st.Reattached >= 1 && st.Backfills == 1
	})
	if !c.takeSlot(c1) {
		t.Fatal("backfilled tile missing from slot buffer")
	}
}

// TestClientAttachLifecycle: attach errors surface synchronously, double
// attach is refused, and Detach is idempotent and stops the redial loop.
func TestClientAttachLifecycle(t *testing.T) {
	down := New("http://127.0.0.1:1", "s")
	if err := down.Attach(); err == nil {
		t.Fatal("attach to an unreachable server should error")
	}
	down.Detach() // no-op after failed attach

	notFound := httptest.NewServer(http.NotFoundHandler())
	defer notFound.Close()
	if err := New(notFound.URL, "s").Attach(); err == nil {
		t.Fatal("attach against a pull-only server should error")
	}

	ts := pushServer(t, func(n int, w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	})
	c := New(ts.URL, "s")
	if err := c.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(); err == nil {
		t.Fatal("double attach should error")
	}
	done := make(chan struct{})
	go func() { c.Detach(); c.Detach(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Detach did not return")
	}
	if err := c.Attach(); err != nil {
		t.Fatalf("re-attach after Detach: %v", err)
	}
	c.Detach()
}
