// Package study simulates the paper's user study (§5.3): 18 domain
// scientists each completing three snow-cover search tasks over the NDSI
// dataset, producing 54 request traces.
//
// We cannot rerun the human study, so a persona-driven agent reproduces its
// *aggregate* behaviour, which is what the prediction experiments consume:
//
//   - the three-phase structure (forage at coarse levels, navigate down,
//     make sense of neighboring tiles at detailed levels; Figure 9's
//     sawtooth of zoom level over time);
//   - the move mixture per task (zooming in dominates; pans and zoom-outs
//     roughly balanced in Tasks 1–2, pan-heavy in Task 3; Figure 8a);
//   - user grouping into pan-heavy / zoom-heavy / balanced behavioural
//     clusters (Figures 8c–8e).
//
// Agents are data-driven: they aim at high-NDSI mountain tiles inside each
// task's named region, just as the study participants visually chased
// orange snow clusters. Every request carries its generative ground-truth
// analysis phase, replacing the paper's hand labeling.
package study

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"forecache/internal/modis"
	"forecache/internal/sig"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

// Task is one search task: find NumTargets tiles at TargetLevel inside
// Region whose mean NDSI meets Threshold (paper §5.3.3).
type Task struct {
	ID          int
	Name        string
	Region      [4]float64 // normalized r0, c0, r1, c1 world box
	TargetLevel int
	Threshold   float64
	NumTargets  int
	// ForageScale scales how much coarse-level scanning users need: the
	// paper observed less foraging in Tasks 2 and 3 because those regions'
	// ranges sit closer together (§5.3.4).
	ForageScale float64
	// PanAffinity scales how long users keep panning at the detail level
	// before relocating; the paper observed that Task 3's users "clearly
	// favored panning more than zooming out" (§5.3.4).
	PanAffinity float64
}

// Persona captures one behavioural cluster from Figures 8c–8e.
type Persona struct {
	Name string
	// PanBias is the tendency to keep panning at the detail level rather
	// than zooming out to relocate.
	PanBias float64
	// AscendLevels is how far the user zooms out when relocating.
	AscendLevels int
	// Patience is how many consecutive non-qualifying tiles the user
	// tolerates at the detail level before relocating from above.
	Patience int
	// Noise is the chance of a random exploratory move.
	Noise float64
}

// Personas returns the three behavioural clusters. The 18 study users are
// spread across them (7 pan-heavy, 6 zoom-heavy, 5 balanced).
func Personas() []Persona {
	return []Persona{
		{Name: "panner", PanBias: 0.9, AscendLevels: 1, Patience: 7, Noise: 0.06},
		{Name: "zoomer", PanBias: 0.3, AscendLevels: 3, Patience: 2, Noise: 0.05},
		{Name: "balanced", PanBias: 0.6, AscendLevels: 2, Patience: 4, Noise: 0.08},
	}
}

// PersonaFor maps a user index (0-based) to its persona, reproducing the
// cluster sizes seen in the study figures.
func PersonaFor(user int) Persona {
	ps := Personas()
	switch {
	case user < 7:
		return ps[0]
	case user < 13:
		return ps[1]
	default:
		return ps[2]
	}
}

// NumUsers is the study's participant count.
const NumUsers = 18

// Tasks maps the paper's three browsing tasks onto a pyramid with the
// given number of zoom levels. Thresholds are calibrated from the data so
// each task has enough qualifying tiles (the paper hand-picked NDSI
// cutoffs of "highest", 0.5 and 0.25 for its 9-level dataset).
func Tasks(pyr *tile.Pyramid, attr string) []Task {
	deepest := pyr.NumLevels() - 1
	// The paper's tasks sit at zoom 6 (Tasks 1, 3) and 8 (Task 2) of a
	// 9-level dataset; on an L-level pyramid that maps to deepest-1 and
	// deepest.
	mid := deepest - 1
	if mid < 1 {
		mid = deepest
	}
	regions := modis.StudyRegions()
	tasks := []Task{
		{ID: 1, Name: "US snow at mid depth", Region: regions["task1-us"],
			TargetLevel: mid, NumTargets: 4, ForageScale: 1.0, PanAffinity: 1.0},
		{ID: 2, Name: "Europe snow at full depth", Region: regions["task2-europe"],
			TargetLevel: deepest, NumTargets: 4, ForageScale: 0.6, PanAffinity: 1.2},
		{ID: 3, Name: "South America snow at mid depth", Region: regions["task3-south-america"],
			TargetLevel: mid, NumTargets: 4, ForageScale: 0.5, PanAffinity: 2.5},
	}
	for i := range tasks {
		tasks[i].Threshold = calibrateThreshold(pyr, attr, tasks[i])
	}
	return tasks
}

// calibrateThreshold picks the NDSI cutoff so that roughly the top 2% of
// in-region tiles qualify, but at least twice the task's target count.
func calibrateThreshold(pyr *tile.Pyramid, attr string, t Task) float64 {
	var means []float64
	side := pyr.Side(t.TargetLevel)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			c := tile.Coord{Level: t.TargetLevel, Y: y, X: x}
			if regionOverlap(c, t.Region) <= 0 {
				continue
			}
			if m, ok := tileMean(pyr, attr, c); ok {
				means = append(means, m)
			}
		}
	}
	if len(means) == 0 {
		return 0
	}
	sort.Float64s(means)
	// Qualify just above the task's target count so the user has to hunt:
	// the paper's cutoffs ("highest NDSI", >= 0.5, > 0.25) similarly left
	// only a handful of qualifying tiles per region.
	idx := len(means) - (t.NumTargets + 1)
	q := int(float64(len(means)) * 0.97)
	if q < idx {
		idx = q
	}
	if idx < 0 {
		idx = 0
	}
	return means[idx]
}

// tileBox returns the tile's normalized world box (r0, c0, r1, c1).
func tileBox(c tile.Coord) [4]float64 {
	side := float64(int(1) << c.Level)
	return [4]float64{
		float64(c.Y) / side, float64(c.X) / side,
		float64(c.Y+1) / side, float64(c.X+1) / side,
	}
}

// regionOverlap returns the fraction of the tile's area inside the region.
func regionOverlap(c tile.Coord, region [4]float64) float64 {
	b := tileBox(c)
	dr := math.Min(b[2], region[2]) - math.Max(b[0], region[0])
	dc := math.Min(b[3], region[3]) - math.Max(b[1], region[1])
	if dr <= 0 || dc <= 0 {
		return 0
	}
	area := (b[2] - b[0]) * (b[3] - b[1])
	return dr * dc / area
}

func tileMean(pyr *tile.Pyramid, attr string, c tile.Coord) (float64, bool) {
	t, err := pyr.Tile(c)
	if err != nil {
		return 0, false
	}
	mean, _, _, _, n, err := t.Stats(attr)
	if err != nil || n == 0 {
		return 0, false
	}
	return mean, true
}

// Simulator generates study traces over a pyramid.
type Simulator struct {
	pyr  *tile.Pyramid
	attr string
	// meanCache memoizes per-tile NDSI means.
	meanCache map[tile.Coord]float64
	// clusterCache memoizes per-tile snow-cluster scores.
	clusterCache map[tile.Coord]float64
}

// NewSimulator returns a simulator reading the named attribute (usually
// "ndsi_avg").
func NewSimulator(pyr *tile.Pyramid, attr string) *Simulator {
	return &Simulator{
		pyr:          pyr,
		attr:         attr,
		meanCache:    make(map[tile.Coord]float64),
		clusterCache: make(map[tile.Coord]float64),
	}
}

func (s *Simulator) mean(c tile.Coord) float64 {
	if v, ok := s.meanCache[c]; ok {
		return v
	}
	v, ok := tileMean(s.pyr, s.attr, c)
	if !ok {
		v = -1
	}
	s.meanCache[c] = v
	return v
}

// clusterScore measures how much of the tile is covered by *clustered*
// snow pixels: cells above the snow cutoff whose neighborhood is also
// snowy. This is the visual criterion the paper's participants used —
// they searched for "large clusters of orange pixels" (§4.3.3), not for
// high tile averages; two tiles with the same mean NDSI read very
// differently when one is a solid mass and the other is speckle.
func (s *Simulator) clusterScore(c tile.Coord) float64 {
	if v, ok := s.clusterCache[c]; ok {
		return v
	}
	score := -1.0
	if t, err := s.pyr.Tile(c); err == nil {
		if g, err := t.Grid(s.attr); err == nil {
			const snow = 0.15
			size := t.Size
			clustered := 0
			at := func(y, x int) float64 {
				if y < 0 || y >= size || x < 0 || x >= size {
					return -1
				}
				return g[y*size+x]
			}
			for y := 0; y < size; y++ {
				for x := 0; x < size; x++ {
					if at(y, x) <= snow {
						continue
					}
					n := 0
					if at(y-1, x) > snow {
						n++
					}
					if at(y+1, x) > snow {
						n++
					}
					if at(y, x-1) > snow {
						n++
					}
					if at(y, x+1) > snow {
						n++
					}
					if n >= 2 {
						clustered++
					}
				}
			}
			score = float64(clustered) / float64(size*size)
		}
	}
	s.clusterCache[c] = score
	return score
}

// visualSimilarity returns how alike two tiles look, in [0,1], using the
// tiles' SIFT landmark signatures when the pyramid carries them and the
// cluster scores otherwise. This drives Sensemaking pans: participants
// moved toward tiles that looked like the region they were studying.
func (s *Simulator) visualSimilarity(a, b tile.Coord) float64 {
	ta, errA := s.pyr.Tile(a)
	tb, errB := s.pyr.Tile(b)
	if errA == nil && errB == nil {
		sa := ta.Signatures[sig.NameSIFT]
		sb := tb.Signatures[sig.NameSIFT]
		if sa != nil && sb != nil {
			d := sig.ChiSquared(sa, sb)
			if d > 1 {
				d = 1
			}
			return 1 - d
		}
	}
	// No signatures on this pyramid: compare cluster scores instead.
	da := s.clusterScore(a) - s.clusterScore(b)
	if da < 0 {
		da = -da
	}
	return 1 - math.Min(da*4, 1)
}

// score rates a tile as a navigation target for the task: region overlap
// times snowiness (shifted into [0,2] so overlap dominates off-region).
func (s *Simulator) score(c tile.Coord, task Task) float64 {
	ov := regionOverlap(c, task.Region)
	if ov <= 0 {
		return 0
	}
	return ov * (s.mean(c) + 1)
}

// exhaustedFraction reports how much of the target-level area under c the
// user has already inspected — the "I've been there" memory that keeps
// participants from re-diving into picked-over regions.
func (s *Simulator) exhaustedFraction(c tile.Coord, targetLevel int, exhausted map[tile.Coord]bool) float64 {
	if c.Level > targetLevel {
		return 0
	}
	shift := targetLevel - c.Level
	side := 1 << shift
	total, done := 0, 0
	for dy := 0; dy < side; dy++ {
		for dx := 0; dx < side; dx++ {
			total++
			if exhausted[tile.Coord{Level: targetLevel, Y: c.Y<<shift + dy, X: c.X<<shift + dx}] {
				done++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(done) / float64(total)
}

// RunStudy simulates the full study: NumUsers users × the three tasks,
// returning 54 traces with ground-truth phase labels. Deterministic for a
// fixed seed.
func (s *Simulator) RunStudy(seed int64) []*trace.Trace {
	tasks := Tasks(s.pyr, s.attr)
	var out []*trace.Trace
	for user := 0; user < NumUsers; user++ {
		for _, task := range tasks {
			out = append(out, s.Run(user, task, PersonaFor(user), seed+int64(user)*1000+int64(task.ID)))
		}
	}
	return out
}

// simMode is the agent's internal state-machine mode.
type simMode int

const (
	modeForage simMode = iota
	modeDescend
	modeSense
	modeAscend
)

// Run simulates one user completing one task. The trace ends when the user
// has found the task's target tiles or after a safety cap of requests.
func (s *Simulator) Run(user int, task Task, persona Persona, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{User: user, Task: task.ID}
	// Per-user directional idiosyncrasy: at a fork between equally snowy
	// neighbors, different participants turn different ways. Without this
	// the simulated crowd is unrealistically homogeneous and cross-user
	// Markov models look far better than the paper reports.
	userRng := rand.New(rand.NewSource(int64(user)*7907 + 13))
	var dirBias [4]float64
	for i := range dirBias {
		dirBias[i] = userRng.Float64() * 0.45
	}
	cur := tile.Coord{Level: 0, Y: 0, X: 0}
	found := make(map[tile.Coord]bool)
	visited := make(map[tile.Coord]bool)
	exhausted := make(map[tile.Coord]bool) // deep tiles already inspected

	mode := modeForage
	forageBudget := 1 + int(task.ForageScale*float64(1+rng.Intn(3)))
	coarseMax := task.TargetLevel / 2
	if coarseMax < 1 {
		coarseMax = 1
	}
	lastMove := trace.None
	missStreak := 0

	// labelFor assigns the generative ground-truth phase: Sensemaking is
	// detail-level neighbor comparison; the coarse band is Foraging;
	// everything in between is Navigation travel.
	labelFor := func(mode simMode, level int) trace.Phase {
		switch {
		case mode == modeSense:
			return trace.Sensemaking
		case level <= coarseMax:
			return trace.Foraging
		default:
			return trace.Navigation
		}
	}
	record := func(m trace.Move, ph trace.Phase) {
		tr.Requests = append(tr.Requests, trace.Request{Coord: cur, Move: m, Phase: ph})
		visited[cur] = true
		lastMove = m
	}
	record(trace.None, trace.Foraging)

	const maxRequests = 140
	for len(tr.Requests) < maxRequests && len(found) < task.NumTargets {
		switch mode {
		case modeForage:
			// A user stranded over a part of the world that cannot reach
			// the task region by descending climbs back up first.
			if cur.Level >= 1 && s.score(cur, task) <= 0 && regionOverlap(cur, task.Region) <= 0 {
				mode = modeAscend
				continue
			}
			// Scan the current level for the brightest region-overlapping
			// neighbor before committing to a descent.
			if forageBudget > 0 && cur.Level >= 1 && rng.Float64() > persona.Noise {
				if next, mv, ok := s.bestPan(cur, task, visited); ok {
					forageBudget--
					cur = next
					record(mv, labelFor(modeForage, cur.Level))
					continue
				}
			}
			forageBudget = 0
			mode = modeDescend
		case modeDescend:
			// Zoom toward the most promising unexhausted quadrant.
			if cur.Level >= task.TargetLevel {
				mode = modeSense
				continue
			}
			child, mv := s.bestChild(cur, task, exhausted, rng, persona.Noise)
			cur = child
			record(mv, labelFor(modeDescend, cur.Level))
		case modeSense:
			// At the target level: inspect the current tile, then pan to
			// the most promising unvisited neighbor or give up locally.
			exhausted[cur] = true
			if s.mean(cur) >= task.Threshold && regionOverlap(cur, task.Region) > 0 {
				found[cur] = true
				missStreak = 0
				if len(found) >= task.NumTargets {
					continue
				}
			} else {
				missStreak++
			}
			next, mv, ok := s.bestSensePan(cur, task, exhausted, lastMove, dirBias, rng)
			// Personas diverge here: patient pan-heavy users keep walking
			// the neighborhood through dry spells; zoom-heavy users
			// relocate from above after a couple of misses.
			patience := int(float64(persona.Patience)*task.PanAffinity + 0.5)
			keepPanning := ok && missStreak < patience &&
				(s.mean(next) >= task.Threshold || rng.Float64() < persona.PanBias)
			if keepPanning {
				cur = next
				record(mv, trace.Sensemaking)
				continue
			}
			missStreak = 0
			mode = modeAscend
		case modeAscend:
			// Relocate: zoom out persona.AscendLevels (at least back above
			// the detail band), then forage again from there.
			target := cur.Level - persona.AscendLevels
			if target < 0 {
				target = 0
			}
			for cur.Level > target && len(tr.Requests) < maxRequests {
				cur = cur.Parent()
				record(trace.ZoomOut, labelFor(modeAscend, cur.Level))
			}
			s.markExhaustedSubtrees(task, exhausted)
			mode = modeForage
			forageBudget = int(task.ForageScale * float64(1+rng.Intn(2)))
		}
	}
	return tr
}

// bestPan returns the highest-scoring unvisited pan neighbor, if any beats
// staying put.
func (s *Simulator) bestPan(cur tile.Coord, task Task, visited map[tile.Coord]bool) (tile.Coord, trace.Move, bool) {
	type option struct {
		coord tile.Coord
		move  trace.Move
		score float64
	}
	var best *option
	for _, mv := range []trace.Move{trace.PanUp, trace.PanDown, trace.PanLeft, trace.PanRight} {
		to := trace.Apply(cur, mv)
		if !s.pyr.Contains(to) || visited[to] {
			continue
		}
		sc := s.score(to, task)
		if best == nil || sc > best.score {
			best = &option{coord: to, move: mv, score: sc}
		}
	}
	if best == nil || best.score <= s.score(cur, task)*0.9 {
		return tile.Coord{}, trace.None, false
	}
	return best.coord, best.move, true
}

// bestChild picks the zoom-in quadrant with the highest task score among
// unexhausted children. With probability noise the user explores a random
// quadrant instead, which is what keeps traces from being perfectly
// predictable.
func (s *Simulator) bestChild(cur tile.Coord, task Task, exhausted map[tile.Coord]bool, rng *rand.Rand, noise float64) (tile.Coord, trace.Move) {
	moves := []trace.Move{trace.ZoomInNW, trace.ZoomInNE, trace.ZoomInSW, trace.ZoomInSE}
	if rng.Float64() < noise {
		// Exploratory zoom: random, but only among children that can still
		// reach the task region — users do not dive into the open ocean.
		var viable []trace.Move
		for _, mv := range moves {
			if s.score(trace.Apply(cur, mv), task) > 0 {
				viable = append(viable, mv)
			}
		}
		if len(viable) > 0 {
			mv := viable[rng.Intn(len(viable))]
			return trace.Apply(cur, mv), mv
		}
	}
	bestMove := moves[0]
	bestCoord := trace.Apply(cur, bestMove)
	bestScore := -1.0
	for _, mv := range moves {
		to := trace.Apply(cur, mv)
		if !s.pyr.Contains(to) {
			continue
		}
		sc := s.score(to, task) + rng.Float64()*0.01
		// Discount by how much of the detail level under this quadrant
		// has already been inspected, so re-descents aim at fresh area.
		sc *= 1 - 0.95*s.exhaustedFraction(to, task.TargetLevel, exhausted)
		if sc > bestScore {
			bestScore, bestMove, bestCoord = sc, mv, to
		}
	}
	return bestCoord, bestMove
}

// bestSensePan returns the most promising unexhausted neighbor at the
// detail level. Continuing the previous pan direction gets a small bonus:
// study participants scanned along ridgelines rather than oscillating.
func (s *Simulator) bestSensePan(cur tile.Coord, task Task, exhausted map[tile.Coord]bool, lastMove trace.Move, dirBias [4]float64, rng *rand.Rand) (tile.Coord, trace.Move, bool) {
	var bestCoord tile.Coord
	var bestMove trace.Move
	bestScore := -10.0
	for _, mv := range []trace.Move{trace.PanUp, trace.PanDown, trace.PanLeft, trace.PanRight} {
		to := trace.Apply(cur, mv)
		if !s.pyr.Contains(to) || exhausted[to] {
			continue
		}
		if regionOverlap(to, task.Region) <= 0 {
			continue
		}
		// Visual appeal: similarity to what the user is looking at
		// (§4.3.3's premise — Sensemaking compares neighbors against the
		// pattern just studied), plus clustered snow, the raw mean, the
		// user's directional habit, and some direction persistence.
		sc := 2*s.visualSimilarity(cur, to) +
			0.5*s.clusterScore(to) +
			0.2*s.mean(to) +
			dirBias[int(mv-trace.PanUp)] +
			0.35*rng.NormFloat64() // human decisions are noisy; without
			// this, every simulated user turns the same way at the same
			// fork and move-history models look implausibly clairvoyant
		if mv == lastMove {
			sc += 0.1
		}
		if sc > bestScore {
			bestScore, bestMove, bestCoord = sc, mv, to
		}
	}
	if bestScore <= -10 {
		return tile.Coord{}, trace.None, false
	}
	return bestCoord, bestMove, true
}

// markExhaustedSubtrees propagates exhaustion upward: a coarse tile whose
// four children are all exhausted is itself exhausted, so foraging aims
// elsewhere.
func (s *Simulator) markExhaustedSubtrees(task Task, exhausted map[tile.Coord]bool) {
	for level := task.TargetLevel - 1; level >= 1; level-- {
		side := 1 << level
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				c := tile.Coord{Level: level, Y: y, X: x}
				if exhausted[c] {
					continue
				}
				all := true
				for _, q := range []tile.Quadrant{tile.NW, tile.NE, tile.SW, tile.SE} {
					if !exhausted[c.Child(q)] {
						all = false
						break
					}
				}
				if all {
					exhausted[c] = true
				}
			}
		}
	}
}

// Summary aggregates a trace set the way Figure 8 does.
type Summary struct {
	Task      int
	Traces    int
	Requests  int
	PanFrac   float64
	InFrac    float64
	OutFrac   float64
	PhaseFrac map[trace.Phase]float64
}

// Summarize computes per-task move and phase mixtures across traces.
func Summarize(traces []*trace.Trace) []Summary {
	byTask := make(map[int][]*trace.Trace)
	for _, t := range traces {
		byTask[t.Task] = append(byTask[t.Task], t)
	}
	var tasks []int
	for id := range byTask {
		tasks = append(tasks, id)
	}
	sort.Ints(tasks)
	var out []Summary
	for _, id := range tasks {
		sm := Summary{Task: id, PhaseFrac: make(map[trace.Phase]float64)}
		moves := 0
		for _, t := range byTask[id] {
			sm.Traces++
			sm.Requests += len(t.Requests)
			pans, ins, outs := t.MoveCounts()
			moves += pans + ins + outs
			sm.PanFrac += float64(pans)
			sm.InFrac += float64(ins)
			sm.OutFrac += float64(outs)
			for _, r := range t.Requests {
				sm.PhaseFrac[r.Phase]++
			}
		}
		if moves > 0 {
			sm.PanFrac /= float64(moves)
			sm.InFrac /= float64(moves)
			sm.OutFrac /= float64(moves)
		}
		if sm.Requests > 0 {
			for ph := range sm.PhaseFrac {
				sm.PhaseFrac[ph] /= float64(sm.Requests)
			}
		}
		out = append(out, sm)
	}
	return out
}

// String renders a summary row.
func (s Summary) String() string {
	return fmt.Sprintf("task %d: %d traces, %d requests, pan %.2f in %.2f out %.2f | F %.2f N %.2f S %.2f",
		s.Task, s.Traces, s.Requests, s.PanFrac, s.InFrac, s.OutFrac,
		s.PhaseFrac[trace.Foraging], s.PhaseFrac[trace.Navigation], s.PhaseFrac[trace.Sensemaking])
}
