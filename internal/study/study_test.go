package study

import (
	"sync"
	"testing"

	"forecache/internal/array"
	"forecache/internal/modis"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

var (
	pyrOnce sync.Once
	pyrMem  *tile.Pyramid
)

// worldPyramid builds a small study world once and shares it across tests.
func worldPyramid(t *testing.T) *tile.Pyramid {
	t.Helper()
	pyrOnce.Do(func() {
		db := array.NewDatabase()
		ndsi, err := modis.BuildWorld(db, 42, 256)
		if err != nil {
			t.Fatalf("BuildWorld: %v", err)
		}
		pyrMem, err = tile.Build(ndsi, tile.Params{TileSize: 16, Agg: array.AggAvg})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
	})
	if pyrMem == nil {
		t.Fatal("world pyramid unavailable")
	}
	return pyrMem
}

func TestTasksCalibration(t *testing.T) {
	pyr := worldPyramid(t)
	tasks := Tasks(pyr, "ndsi_avg")
	if len(tasks) != 3 {
		t.Fatalf("tasks = %d, want 3", len(tasks))
	}
	for _, task := range tasks {
		if task.TargetLevel < 1 || task.TargetLevel >= pyr.NumLevels() {
			t.Errorf("task %d target level %d outside pyramid", task.ID, task.TargetLevel)
		}
		if task.NumTargets != 4 {
			t.Errorf("task %d targets = %d, want 4 (paper)", task.ID, task.NumTargets)
		}
		// The calibrated threshold must be attainable by at least
		// NumTargets tiles in the region.
		qualifying := 0
		side := pyr.Side(task.TargetLevel)
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				c := tile.Coord{Level: task.TargetLevel, Y: y, X: x}
				if regionOverlap(c, task.Region) <= 0 {
					continue
				}
				if m, ok := tileMean(pyr, "ndsi_avg", c); ok && m >= task.Threshold {
					qualifying++
				}
			}
		}
		if qualifying < task.NumTargets {
			t.Errorf("task %d: only %d qualifying tiles for threshold %.3f",
				task.ID, qualifying, task.Threshold)
		}
	}
}

func TestRegionOverlap(t *testing.T) {
	region := [4]float64{0, 0, 0.5, 0.5}
	full := tile.Coord{Level: 2, Y: 0, X: 0} // covers [0,0.25)x[0,0.25)
	if ov := regionOverlap(full, region); ov != 1 {
		t.Errorf("contained tile overlap = %v, want 1", ov)
	}
	outside := tile.Coord{Level: 2, Y: 3, X: 3}
	if ov := regionOverlap(outside, region); ov != 0 {
		t.Errorf("outside tile overlap = %v, want 0", ov)
	}
	root := tile.Coord{Level: 0, Y: 0, X: 0}
	if ov := regionOverlap(root, region); ov != 0.25 {
		t.Errorf("root overlap = %v, want 0.25", ov)
	}
}

func TestRunStudyShape(t *testing.T) {
	pyr := worldPyramid(t)
	sim := NewSimulator(pyr, "ndsi_avg")
	traces := sim.RunStudy(7)
	if len(traces) != NumUsers*3 {
		t.Fatalf("traces = %d, want %d", len(traces), NumUsers*3)
	}
	for _, tr := range traces {
		if len(tr.Requests) < 5 {
			t.Errorf("user %d task %d: only %d requests", tr.User, tr.Task, len(tr.Requests))
		}
		first := tr.Requests[0]
		if first.Move != trace.None || first.Coord != (tile.Coord{}) {
			t.Errorf("trace must start at the root with no move, got %+v", first)
		}
	}
}

// Every consecutive request pair must be connected by the recorded move —
// the paper's "no jumping" interface rule (§2.2).
func TestTracesAreIncremental(t *testing.T) {
	pyr := worldPyramid(t)
	sim := NewSimulator(pyr, "ndsi_avg")
	for _, tr := range sim.RunStudy(11) {
		for i := 1; i < len(tr.Requests); i++ {
			prev, cur := tr.Requests[i-1], tr.Requests[i]
			if cur.Move == trace.None {
				t.Fatalf("user %d task %d req %d: None move mid-trace", tr.User, tr.Task, i)
			}
			if got := trace.Apply(prev.Coord, cur.Move); got != cur.Coord {
				t.Fatalf("user %d task %d req %d: %v + %v = %v, trace says %v",
					tr.User, tr.Task, i, prev.Coord, cur.Move, got, cur.Coord)
			}
			if !pyr.Contains(cur.Coord) {
				t.Fatalf("request outside pyramid: %v", cur.Coord)
			}
		}
	}
}

func TestStudyMoveMixtureMatchesFigure8a(t *testing.T) {
	pyr := worldPyramid(t)
	sim := NewSimulator(pyr, "ndsi_avg")
	traces := sim.RunStudy(3)
	summaries := Summarize(traces)
	if len(summaries) != 3 {
		t.Fatalf("summaries = %d", len(summaries))
	}
	for _, sm := range summaries {
		// Figure 8a: zooming in dominates in every task.
		if !(sm.InFrac > sm.PanFrac && sm.InFrac > sm.OutFrac) {
			t.Errorf("task %d: zoom-in fraction %.2f should dominate (pan %.2f out %.2f)",
				sm.Task, sm.InFrac, sm.PanFrac, sm.OutFrac)
		}
		if sm.PanFrac == 0 || sm.OutFrac == 0 {
			t.Errorf("task %d: degenerate move mixture %+v", sm.Task, sm)
		}
	}
}

func TestStudyPhasesAllPresent(t *testing.T) {
	pyr := worldPyramid(t)
	sim := NewSimulator(pyr, "ndsi_avg")
	traces := sim.RunStudy(5)
	counts := map[trace.Phase]int{}
	for _, tr := range traces {
		for _, r := range tr.Requests {
			counts[r.Phase]++
		}
	}
	for _, ph := range trace.AllPhases() {
		if counts[ph] == 0 {
			t.Errorf("phase %v never occurs in the study", ph)
		}
	}
	if counts[trace.PhaseUnknown] != 0 {
		t.Errorf("%d requests lack ground-truth phases", counts[trace.PhaseUnknown])
	}
}

func TestStudyDeterministic(t *testing.T) {
	pyr := worldPyramid(t)
	a := NewSimulator(pyr, "ndsi_avg").RunStudy(9)
	b := NewSimulator(pyr, "ndsi_avg").RunStudy(9)
	for i := range a {
		if len(a[i].Requests) != len(b[i].Requests) {
			t.Fatalf("trace %d lengths differ", i)
		}
		for j := range a[i].Requests {
			if a[i].Requests[j] != b[i].Requests[j] {
				t.Fatalf("trace %d request %d differs", i, j)
			}
		}
	}
}

func TestPersonaAssignment(t *testing.T) {
	counts := map[string]int{}
	for u := 0; u < NumUsers; u++ {
		counts[PersonaFor(u).Name]++
	}
	if counts["panner"] != 7 || counts["zoomer"] != 6 || counts["balanced"] != 5 {
		t.Errorf("persona split = %v, want 7/6/5", counts)
	}
}

func TestPersonasDiffer(t *testing.T) {
	pyr := worldPyramid(t)
	sim := NewSimulator(pyr, "ndsi_avg")
	task := Tasks(pyr, "ndsi_avg")[0]
	panner := sim.Run(0, task, Personas()[0], 123)
	zoomer := sim.Run(1, task, Personas()[1], 123)
	pPan, _, pOut := panner.MoveCounts()
	zPan, _, zOut := zoomer.MoveCounts()
	pRatio := float64(pPan+1) / float64(pOut+1)
	zRatio := float64(zPan+1) / float64(zOut+1)
	if pRatio <= zRatio {
		t.Errorf("panner pan/out ratio %.2f should exceed zoomer's %.2f", pRatio, zRatio)
	}
}

func TestSummarizeString(t *testing.T) {
	pyr := worldPyramid(t)
	sim := NewSimulator(pyr, "ndsi_avg")
	traces := sim.RunStudy(2)[:6]
	for _, sm := range Summarize(traces) {
		if sm.String() == "" {
			t.Error("empty summary string")
		}
	}
}

func BenchmarkRunStudy(b *testing.B) {
	db := array.NewDatabase()
	ndsi, err := modis.BuildWorld(db, 42, 128)
	if err != nil {
		b.Fatal(err)
	}
	pyr, err := tile.Build(ndsi, tile.Params{TileSize: 16, Agg: array.AggAvg})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewSimulator(pyr, "ndsi_avg").RunStudy(int64(i))
	}
}
