package eval

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"forecache/internal/array"
	"forecache/internal/backend"
	"forecache/internal/modis"
	"forecache/internal/sig"
	"forecache/internal/study"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

var (
	fixOnce   sync.Once
	fixPyr    *tile.Pyramid
	fixTraces []*trace.Trace
)

// fixture builds a small signed-up world + study traces shared by all
// eval tests: 256-cell raw grid, 5 zoom levels, full signatures, 54 traces.
func fixture(t testing.TB) (*tile.Pyramid, []*trace.Trace) {
	fixOnce.Do(func() {
		db := array.NewDatabase()
		ndsi, err := modis.BuildWorld(db, 42, 256)
		if err != nil {
			t.Fatalf("BuildWorld: %v", err)
		}
		pyr, err := tile.Build(ndsi, tile.Params{TileSize: 16, Agg: array.AggAvg})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		comp := sig.NewComputer(sig.DefaultConfig("ndsi_avg"))
		comp.TrainCodebook(pyr.SampleTiles(60))
		pyr.ComputeMetadata(comp.Compute)
		fixPyr = pyr
		fixTraces = study.NewSimulator(pyr, "ndsi_avg").RunStudy(7)
	})
	if fixPyr == nil {
		t.Fatal("fixture unavailable")
	}
	return fixPyr, fixTraces
}

func harness(t testing.TB) *Harness {
	pyr, traces := fixture(t)
	return &Harness{Pyr: pyr, Attr: "ndsi_avg", Traces: traces, MaxTrainRequests: 400}
}

// subsetUsers keeps only traces from the first n users, shrinking LOO folds
// for expensive tests.
func subsetUsers(traces []*trace.Trace, n int) []*trace.Trace {
	var out []*trace.Trace
	for _, tr := range traces {
		if tr.User < n {
			out = append(out, tr)
		}
	}
	return out
}

func TestTableAccumulateAndMerge(t *testing.T) {
	a := NewTable()
	a.Add("m", 2, trace.Navigation, true)
	a.Add("m", 2, trace.Navigation, false)
	p := a.Get("m", 2, trace.Navigation)
	if p.Hits != 1 || p.Total != 2 || p.Accuracy() != 0.5 {
		t.Errorf("point = %+v", p)
	}
	// Overall row accumulates automatically.
	if o := a.Get("m", 2, trace.PhaseUnknown); o.Total != 2 {
		t.Errorf("overall = %+v", o)
	}
	b := NewTable()
	b.Add("m", 2, trace.Navigation, true)
	a.Merge(b)
	if got := a.Get("m", 2, trace.Navigation); got.Hits != 2 || got.Total != 3 {
		t.Errorf("merged = %+v", got)
	}
	if len(a.Points()) == 0 {
		t.Error("Points should list cells")
	}
	if empty := a.Get("x", 1, trace.Foraging); empty.Accuracy() != 0 {
		t.Error("missing cell should score 0")
	}
}

func TestFitKnownLine(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{961.33, 951.94, 942.55, 933.16} // 961.33 - 9.39x
	reg := Fit(x, y)
	if math.Abs(reg.Slope+9.39) > 1e-9 || math.Abs(reg.Intercept-961.33) > 1e-9 {
		t.Errorf("fit = %+v", reg)
	}
	if math.Abs(reg.R2-1) > 1e-12 {
		t.Errorf("R2 = %v", reg.R2)
	}
	if r := Fit([]float64{1}, []float64{2}); r.N != 1 || r.Slope != 0 {
		t.Errorf("degenerate fit = %+v", r)
	}
	if r := Fit([]float64{2, 2}, []float64{1, 3}); r.Slope != 0 {
		t.Errorf("vertical fit = %+v", r)
	}
}

func TestLatencyConversion(t *testing.T) {
	lm := backend.DefaultLatency()
	if got := Latency(1, lm); got != lm.Hit {
		t.Errorf("perfect accuracy latency = %v", got)
	}
	if got := Latency(0, lm); got != lm.Miss {
		t.Errorf("zero accuracy latency = %v", got)
	}
	mid := Latency(0.5, lm)
	if mid <= lm.Hit || mid >= lm.Miss {
		t.Errorf("mid latency = %v", mid)
	}
}

func TestEvalMomentumLOO(t *testing.T) {
	h := harness(t)
	ks := []int{1, 2, 4, 8}
	table, err := h.EvalModelLOO("momentum", MomentumFactory(), ks)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, k := range ks {
		p := table.Get("momentum", k, trace.PhaseUnknown)
		if p.Total == 0 {
			t.Fatalf("k=%d has no measurements", k)
		}
		acc := p.Accuracy()
		if acc < 0 || acc > 1 {
			t.Fatalf("accuracy %v outside [0,1]", acc)
		}
		// Accuracy is monotone in k: the top-k list only grows.
		if acc < prev-1e-12 {
			t.Fatalf("accuracy not monotone in k: %v after %v", acc, prev)
		}
		prev = acc
	}
}

// The core Figure 10a claim: the trained Markov3 AB model beats Momentum
// and Hotspot in the Navigation phase.
func TestABBeatsBaselinesInNavigation(t *testing.T) {
	h := harness(t)
	ks := []int{1, 3, 5}
	ab, err := h.EvalModelLOO("markov3", ABFactory(3), ks)
	if err != nil {
		t.Fatal(err)
	}
	mom, err := h.EvalModelLOO("momentum", MomentumFactory(), ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		abAcc := ab.Get("markov3", k, trace.Navigation).Accuracy()
		momAcc := mom.Get("momentum", k, trace.Navigation).Accuracy()
		if abAcc < momAcc {
			t.Errorf("k=%d: markov3 navigation %.3f below momentum %.3f", k, abAcc, momAcc)
		}
	}
}

// The Figure 10b claim that matters downstream: the SB model with SIFT
// predicts Sensemaking pans better than chance and the signature set runs.
func TestSBSignaturesEvaluate(t *testing.T) {
	h := harness(t)
	ks := []int{2, 4}
	for _, name := range sig.AllNames() {
		table, err := h.EvalModelLOO("sb:"+name, h.SBFactory(name), ks)
		if err != nil {
			t.Fatalf("sb:%s: %v", name, err)
		}
		p := table.Get("sb:"+name, 4, trace.Sensemaking)
		if p.Total == 0 {
			t.Fatalf("sb:%s has no sensemaking measurements", name)
		}
		if acc := p.Accuracy(); acc <= 0 {
			t.Errorf("sb:%s sensemaking accuracy = %v, want > 0", name, acc)
		}
	}
}

func TestEvalPhaseLOO(t *testing.T) {
	h := harness(t)
	h.Traces = subsetUsers(h.Traces, 6)
	res, err := h.EvalPhaseLOO(nil, "all features")
	if err != nil {
		t.Fatal(err)
	}
	if res.Total == 0 {
		t.Fatal("no phase measurements")
	}
	if acc := res.Accuracy(); acc < 0.6 {
		t.Errorf("phase LOO accuracy = %.3f, want >= 0.6 (paper: 0.82)", acc)
	}
	zoom, err := h.EvalPhaseLOO([]int{2}, "zoom level")
	if err != nil {
		t.Fatal(err)
	}
	// A single feature has a much lower ceiling (at the detail level the
	// zoom level cannot separate Sensemaking pans from Navigation zooms);
	// the full vector must beat it.
	if zoom.Accuracy() <= 0.2 {
		t.Errorf("zoom-only accuracy = %.3f, want nontrivial", zoom.Accuracy())
	}
	if res.Accuracy() < zoom.Accuracy() {
		t.Errorf("full features (%.3f) should beat zoom-only (%.3f)", res.Accuracy(), zoom.Accuracy())
	}
}

func TestEvalHybridLOO(t *testing.T) {
	h := harness(t)
	h.Traces = subsetUsers(h.Traces, 6)
	ks := []int{1, 5}
	hyb, err := h.EvalHybridLOO(HybridSpec{}, ks)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		p := hyb.Get("hybrid", k, trace.PhaseUnknown)
		if p.Total == 0 {
			t.Fatalf("hybrid k=%d unmeasured", k)
		}
	}
	// Larger k must not hurt.
	if hyb.Get("hybrid", 5, trace.PhaseUnknown).Accuracy() <
		hyb.Get("hybrid", 1, trace.PhaseUnknown).Accuracy()-1e-12 {
		t.Error("hybrid accuracy should be monotone in k")
	}
}

func TestHybridOraclePhases(t *testing.T) {
	h := harness(t)
	h.Traces = subsetUsers(h.Traces, 4)
	hyb, err := h.EvalHybridLOO(HybridSpec{Name: "oracle", OraclePhases: true}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if hyb.Get("oracle", 4, trace.PhaseUnknown).Total == 0 {
		t.Fatal("oracle hybrid unmeasured")
	}
}

func TestRunEngineLOO(t *testing.T) {
	h := harness(t)
	h.Traces = subsetUsers(h.Traces, 4)
	lm := backend.DefaultLatency()
	runs, err := h.RunEngineLOO("momentum", SingleEngineSetup(MomentumFactory()), []int{1, 4}, lm)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d", len(runs))
	}
	for _, r := range runs {
		if r.Requests == 0 {
			t.Fatalf("k=%d replayed no requests", r.K)
		}
		if r.HitRate < 0 || r.HitRate > 1 {
			t.Fatalf("hit rate %v", r.HitRate)
		}
		if r.AvgLatency < lm.Hit || r.AvgLatency > lm.Miss {
			t.Fatalf("avg latency %v outside [hit, miss]", r.AvgLatency)
		}
		// The engine's average latency must equal the accuracy-latency
		// line of Figure 12 by construction.
		want := Latency(r.HitRate, lm)
		if diff := r.AvgLatency - want; diff > time.Millisecond || diff < -time.Millisecond {
			t.Errorf("latency %v deviates from line %v", r.AvgLatency, want)
		}
	}
	if runs[1].HitRate < runs[0].HitRate-1e-12 {
		t.Error("hit rate should not shrink with larger k")
	}
}

func TestRenderers(t *testing.T) {
	h := harness(t)
	var buf bytes.Buffer

	RenderTable1(&buf, []PhaseResult{{Label: "zoom", Correct: 7, Total: 10}})
	if !strings.Contains(buf.String(), "0.700") {
		t.Error("Table1 missing accuracy")
	}

	buf.Reset()
	RenderFig8(&buf, h.Traces)
	if !strings.Contains(buf.String(), "task") {
		t.Error("Fig8 output empty")
	}

	buf.Reset()
	RenderFig8Users(&buf, h.Traces)
	if !strings.Contains(buf.String(), "user") {
		t.Error("Fig8Users output empty")
	}

	buf.Reset()
	RenderFig9(&buf, h.Traces[0], h.Pyr.NumLevels())
	if !strings.Contains(buf.String(), "L0") {
		t.Error("Fig9 output missing level rows")
	}

	buf.Reset()
	tbl := NewTable()
	tbl.Add("m", 1, trace.Foraging, true)
	RenderAccuracyByPhase(&buf, "Figure X", tbl, []string{"m"}, []int{1})
	if !strings.Contains(buf.String(), "Foraging") {
		t.Error("accuracy renderer missing phases")
	}

	buf.Reset()
	runs := []EngineRun{
		{Model: "a", K: 1, HitRate: 0.2, AvgLatency: Latency(0.2, backend.DefaultLatency())},
		{Model: "a", K: 2, HitRate: 0.6, AvgLatency: Latency(0.6, backend.DefaultLatency())},
	}
	reg := RenderFig12(&buf, runs)
	if reg.N != 2 || !strings.Contains(buf.String(), "linear fit") {
		t.Errorf("Fig12 = %+v", reg)
	}
	// The constructed points sit exactly on the latency line.
	if math.Abs(reg.Slope-(-9.645)) > 0.01 {
		t.Errorf("slope = %v, want about -9.645 ms per accuracy %%", reg.Slope)
	}

	buf.Reset()
	RenderFig13(&buf, runs, []string{"a"}, []int{1, 2})
	if !strings.Contains(buf.String(), "k") {
		t.Error("Fig13 empty")
	}

	buf.Reset()
	RenderHeadline(&buf, runs[1], runs[0], runs[0], backend.DefaultLatency().Miss)
	if !strings.Contains(buf.String(), "improvement") {
		t.Error("headline missing improvements")
	}
}

func BenchmarkEvalMomentumLOO(b *testing.B) {
	h := harness(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.EvalModelLOO("momentum", MomentumFactory(), []int{5}); err != nil {
			b.Fatal(err)
		}
	}
}
