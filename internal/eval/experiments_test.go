package eval

import (
	"bytes"
	"strings"
	"testing"
)

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 14 {
		t.Fatalf("registry has %d experiments, want >= 14 (every table+figure+ablations)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.Name == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate experiment name %q", e.Name)
		}
		seen[e.Name] = true
	}
	for _, want := range []string{
		"table1", "fig8", "fig9", "fig10a", "fig10b", "fig10c",
		"fig11", "fig12", "fig13", "markov-order",
	} {
		if !seen[want] {
			t.Errorf("registry missing %q", want)
		}
	}
	if _, ok := Lookup("fig9"); !ok {
		t.Error("Lookup(fig9) failed")
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup of unknown name should fail")
	}
}

func TestKSweepIsPaperRange(t *testing.T) {
	ks := KSweep()
	if len(ks) != 8 || ks[0] != 1 || ks[7] != 8 {
		t.Errorf("KSweep = %v, want 1..8 (§5.2.2)", ks)
	}
}

// Cheap experiments run end to end against the shared fixture.
func TestCheapExperimentsRun(t *testing.T) {
	h := harness(t)
	h.Traces = subsetUsers(h.Traces, 4)
	for _, name := range []string{"fig8", "fig8-users", "fig9", "ablation-d"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("missing experiment %s", name)
		}
		var buf bytes.Buffer
		if err := e.Run(&buf, h); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
}

func TestFig10aExperimentOutput(t *testing.T) {
	h := harness(t)
	h.Traces = subsetUsers(h.Traces, 4)
	e, _ := Lookup("fig10a")
	var buf bytes.Buffer
	if err := e.Run(&buf, h); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"markov3", "momentum", "hotspot", "Navigation"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig10a output missing %q", want)
		}
	}
}

func TestMarkovOrderExperiment(t *testing.T) {
	h := harness(t)
	h.Traces = subsetUsers(h.Traces, 3)
	e, _ := Lookup("markov-order")
	var buf bytes.Buffer
	if err := e.Run(&buf, h); err != nil {
		t.Fatal(err)
	}
	// Must have one row per order 2..10.
	for _, n := range []string{"  2 ", "  10"} {
		if !strings.Contains(buf.String(), strings.TrimRight(n, " ")) {
			t.Errorf("markov-order output missing order %s", n)
		}
	}
}

func TestSBAblationExperiment(t *testing.T) {
	h := harness(t)
	h.Traces = subsetUsers(h.Traces, 3)
	e, _ := Lookup("ablation-sb")
	var buf bytes.Buffer
	if err := e.Run(&buf, h); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sb:sift/div") {
		t.Error("ablation output missing division variant")
	}
}
