package eval

import (
	"fmt"
	"io"
	"sort"

	"forecache/internal/backend"
	"forecache/internal/phase"
	"forecache/internal/sig"
	"forecache/internal/trace"
)

// Experiment is one reproducible artifact from the paper's evaluation: it
// runs against a harness and writes a plain-text table to w.
type Experiment struct {
	Name  string
	Paper string // which table/figure of the paper this regenerates
	Run   func(w io.Writer, h *Harness) error
}

// KSweep is the fetch sizes the paper sweeps (§5.2.2: k = 1..8).
func KSweep() []int { return []int{1, 2, 3, 4, 5, 6, 7, 8} }

// Experiments returns the full registry, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{Name: "table1", Paper: "Table 1 + §5.4.1", Run: runTable1},
		{Name: "fig8", Paper: "Figure 8a/8b", Run: runFig8},
		{Name: "fig8-users", Paper: "Figure 8c-8e", Run: runFig8Users},
		{Name: "fig9", Paper: "Figure 9", Run: runFig9},
		{Name: "fig10a", Paper: "Figure 10a", Run: runFig10a},
		{Name: "fig10b", Paper: "Figure 10b", Run: runFig10b},
		{Name: "fig10c", Paper: "Figure 10c", Run: runFig10c},
		{Name: "fig11", Paper: "Figure 11", Run: runFig11},
		{Name: "fig12", Paper: "Figure 12", Run: runFig12},
		{Name: "fig13", Paper: "Figure 13 + §5.5", Run: runFig13},
		{Name: "markov-order", Paper: "§5.4.2 ablation (n = 2..10)", Run: runMarkovOrder},
		{Name: "ablation-policy", Paper: "§4.4 vs §5.4.3 allocation strategies", Run: runPolicyAblation},
		{Name: "ablation-sb", Paper: "SB distance-term ablation (Algorithm 3)", Run: runSBAblation},
		{Name: "ablation-d", Paper: "§5.2.2 prefetch distance d > 1", Run: runDistanceAblation},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, h *Harness) error {
	for _, e := range Experiments() {
		fmt.Fprintf(w, "\n=== %s (%s) ===\n", e.Name, e.Paper)
		if err := e.Run(w, h); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
	}
	return nil
}

func runTable1(w io.Writer, h *Harness) error {
	rows := make([]PhaseResult, 0, phase.NumFeatures+1)
	for i, name := range phase.FeatureNames {
		r, err := h.EvalPhaseLOO([]int{i}, name)
		if err != nil {
			return err
		}
		rows = append(rows, r)
	}
	all, err := h.EvalPhaseLOO(nil, "all six (overall)")
	if err != nil {
		return err
	}
	rows = append(rows, all)
	RenderTable1(w, rows)
	fmt.Fprintf(w, "  paper: x 0.676, y 0.692, zoom 0.696, pan 0.580, zoom-in 0.556, zoom-out 0.448; overall 0.82\n")
	return nil
}

func runFig8(w io.Writer, h *Harness) error {
	RenderFig8(w, h.Traces)
	fmt.Fprintln(w, "  paper shape: zoom-in dominates every task; Foraging share drops for tasks 2-3")
	return nil
}

func runFig8Users(w io.Writer, h *Harness) error {
	RenderFig8Users(w, h.Traces)
	return nil
}

func runFig9(w io.Writer, h *Harness) error {
	// The paper plots participant 2 on task 2. Our user numbering is
	// arbitrary, so show the task-2 trace with the clearest sawtooth (most
	// zoom-direction changes), which is the behaviour Figure 9 documents.
	var best *trace.Trace
	bestChanges := -1
	for _, tr := range h.Traces {
		if tr.Task != 2 {
			continue
		}
		changes, dir := 0, 0
		for i := 1; i < len(tr.Requests); i++ {
			d := tr.Requests[i].Coord.Level - tr.Requests[i-1].Coord.Level
			if d != 0 && ((d > 0) != (dir > 0) || dir == 0) {
				changes++
				dir = d
			}
		}
		if changes > bestChanges {
			best, bestChanges = tr, changes
		}
	}
	if best == nil {
		return fmt.Errorf("no task-2 traces")
	}
	RenderFig9(w, best, h.Pyr.NumLevels())
	fmt.Fprintln(w, "  paper shape: sawtooth between coarse (Foraging) and detailed (Sensemaking) levels")
	return nil
}

func runFig10a(w io.Writer, h *Harness) error {
	ks := KSweep()
	table := NewTable()
	for _, spec := range []struct {
		name    string
		factory ModelFactory
	}{
		{"markov3", ABFactory(3)},
		{"momentum", MomentumFactory()},
		{"hotspot", HotspotFactory(8, 3)},
	} {
		t, err := h.EvalModelLOO(spec.name, spec.factory, ks)
		if err != nil {
			return err
		}
		table.Merge(t)
	}
	RenderAccuracyByPhase(w, "Figure 10a: AB (markov3) vs existing models, accuracy by phase and k",
		table, []string{"markov3", "momentum", "hotspot"}, ks)
	fmt.Fprintln(w, "  paper shape: markov3 matches the baselines in Foraging/Sensemaking and wins Navigation at every k")
	return nil
}

func runFig10b(w io.Writer, h *Harness) error {
	ks := KSweep()
	table := NewTable()
	var names []string
	for _, s := range sig.AllNames() {
		name := "sb:" + s
		names = append(names, name)
		t, err := h.EvalModelLOO(name, h.SBFactory(s), ks)
		if err != nil {
			return err
		}
		table.Merge(t)
	}
	RenderAccuracyByPhase(w, "Figure 10b: the four tile signatures, accuracy by phase and k",
		table, names, ks)
	fmt.Fprintln(w, "  paper shape: SIFT gives the best overall accuracy; DenseSIFT trails it")
	return nil
}

func runFig10c(w io.Writer, h *Harness) error {
	ks := KSweep()
	table, err := h.EvalHybridLOO(HybridSpec{}, ks)
	if err != nil {
		return err
	}
	for _, spec := range []struct {
		name    string
		factory ModelFactory
	}{
		{"markov3", ABFactory(3)},
		{"sb:sift", h.SBFactory(sig.NameSIFT)},
	} {
		t, err := h.EvalModelLOO(spec.name, spec.factory, ks)
		if err != nil {
			return err
		}
		table.Merge(t)
	}
	RenderAccuracyByPhase(w, "Figure 10c: final two-level engine vs its best individual models",
		table, []string{"hybrid", "markov3", "sb:sift"}, ks)
	fmt.Fprintln(w, "  paper shape: hybrid matches the best model per phase, beating both overall")
	return nil
}

func runFig11(w io.Writer, h *Harness) error {
	ks := KSweep()
	table, err := h.EvalHybridLOO(HybridSpec{}, ks)
	if err != nil {
		return err
	}
	for _, spec := range []struct {
		name    string
		factory ModelFactory
	}{
		{"momentum", MomentumFactory()},
		{"hotspot", HotspotFactory(8, 3)},
	} {
		t, err := h.EvalModelLOO(spec.name, spec.factory, ks)
		if err != nil {
			return err
		}
		table.Merge(t)
	}
	RenderAccuracyByPhase(w, "Figure 11: final engine vs existing techniques, accuracy by phase and k",
		table, []string{"hybrid", "momentum", "hotspot"}, ks)
	fmt.Fprintln(w, "  paper shape: up to 25% better in Navigation, 10-18% better in Sensemaking")
	return nil
}

// engineRunsAll performs the engine replays shared by Figures 12/13.
func engineRunsAll(h *Harness, ks []int) ([]EngineRun, error) {
	lm := backend.DefaultLatency()
	var all []EngineRun
	for _, spec := range []struct {
		name  string
		setup EngineSetup
	}{
		{"momentum", SingleEngineSetup(MomentumFactory())},
		{"hotspot", SingleEngineSetup(HotspotFactory(8, 3))},
		{"markov3", SingleEngineSetup(ABFactory(3))},
		{"sb:sift", SingleEngineSetup(h.SBFactory(sig.NameSIFT))},
		{"hybrid", h.HybridEngineSetup(HybridSpec{})},
	} {
		runs, err := h.RunEngineLOO(spec.name, spec.setup, ks, lm)
		if err != nil {
			return nil, err
		}
		all = append(all, runs...)
	}
	return all, nil
}

func runFig12(w io.Writer, h *Harness) error {
	runs, err := engineRunsAll(h, []int{1, 3, 5, 8})
	if err != nil {
		return err
	}
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].HitRate < runs[j].HitRate })
	RenderFig12(w, runs)
	return nil
}

func runFig13(w io.Writer, h *Harness) error {
	ks := KSweep()
	lm := backend.DefaultLatency()
	var all []EngineRun
	byModel := map[string][]EngineRun{}
	for _, spec := range []struct {
		name  string
		setup EngineSetup
	}{
		{"hybrid", h.HybridEngineSetup(HybridSpec{})},
		{"momentum", SingleEngineSetup(MomentumFactory())},
		{"hotspot", SingleEngineSetup(HotspotFactory(8, 3))},
	} {
		runs, err := h.RunEngineLOO(spec.name, spec.setup, ks, lm)
		if err != nil {
			return err
		}
		all = append(all, runs...)
		byModel[spec.name] = runs
	}
	RenderFig13(w, all, []string{"hybrid", "momentum", "hotspot"}, ks)
	fmt.Fprintln(w, "  paper shape: hybrid cuts response times by >50% for k >= 5")
	at := func(model string, k int) EngineRun {
		for _, r := range byModel[model] {
			if r.K == k {
				return r
			}
		}
		return EngineRun{}
	}
	RenderHeadline(w, at("hybrid", 5), at("momentum", 5), at("hotspot", 5), lm.Miss)
	return nil
}

func runMarkovOrder(w io.Writer, h *Harness) error {
	ks := []int{1, 3, 5}
	fmt.Fprintln(w, "Markov order sweep (§5.4.2): overall accuracy per order n")
	fmt.Fprintf(w, "  %-4s", "n")
	for _, k := range ks {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("k=%d", k))
	}
	fmt.Fprintln(w)
	for n := 2; n <= 10; n++ {
		name := fmt.Sprintf("markov%d", n)
		t, err := h.EvalModelLOO(name, ABFactory(n), ks)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-4d", n)
		for _, k := range ks {
			fmt.Fprintf(w, " %8.3f", t.Get(name, k, trace.PhaseUnknown).Accuracy())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "  paper shape: n=2 worse; negligible gains beyond n=3")
	return nil
}

func runPolicyAblation(w io.Writer, h *Harness) error {
	ks := []int{2, 5, 8}
	hybrid, err := h.EvalHybridLOO(HybridSpec{Name: "tuned"}, ks)
	if err != nil {
		return err
	}
	original, err := h.EvalHybridLOO(HybridSpec{Name: "original", UseOriginalPolicy: true}, ks)
	if err != nil {
		return err
	}
	oracle, err := h.EvalHybridLOO(HybridSpec{Name: "oracle", OraclePhases: true}, ks)
	if err != nil {
		return err
	}
	hybrid.Merge(original)
	hybrid.Merge(oracle)
	RenderAccuracyByPhase(w, "Allocation-strategy ablation: tuned §5.4.3 vs original §4.4 vs oracle phases",
		hybrid, []string{"tuned", "original", "oracle"}, ks)
	return nil
}

func runSBAblation(w io.Writer, h *Harness) error {
	ks := []int{2, 5, 8}
	table := NewTable()
	specs := []struct {
		name    string
		factory ModelFactory
	}{
		{"sb:all", h.SBFactory(sig.AllNames()...)},
		{"sb:sift", h.SBFactory(sig.NameSIFT)},
		{"sb:sift/div", h.SBDivFactory(sig.NameSIFT)},
	}
	for _, spec := range specs {
		t, err := h.EvalModelLOO(spec.name, spec.factory, ks)
		if err != nil {
			return err
		}
		table.Merge(t)
	}
	RenderAccuracyByPhase(w, "SB ablation: all signatures vs SIFT-only vs literal Alg. 3 line-13 division",
		table, []string{"sb:all", "sb:sift", "sb:sift/div"}, ks)
	return nil
}

func runDistanceAblation(w io.Writer, h *Harness) error {
	ks := []int{4, 8}
	fmt.Fprintln(w, "Prefetch distance ablation (paper leaves d>1 as future work)")
	for _, d := range []int{1, 2} {
		hh := *h
		hh.D = d
		t, err := hh.EvalModelLOO("markov3", ABFactory(3), ks)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  d=%d:", d)
		for _, k := range ks {
			fmt.Fprintf(w, "  k=%d %.3f", k, t.Get("markov3", k, trace.PhaseUnknown).Accuracy())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "  paper observation (§5.2.2): predicting beyond one move ahead did not improve accuracy")
	return nil
}
