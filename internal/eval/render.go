package eval

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"forecache/internal/study"
	"forecache/internal/trace"
)

// Renderers for the paper's tables and figures. Each prints a plain-text
// reproduction of one artifact; EXPERIMENTS.md records the paper's
// published values next to these outputs.

// RenderTable1 prints the per-feature phase-classifier accuracies
// (Table 1) plus the overall six-feature accuracy (§5.4.1, 82%).
func RenderTable1(w io.Writer, rows []PhaseResult) {
	fmt.Fprintln(w, "Table 1: SVM phase classifier accuracy per input feature (LOO-CV)")
	fmt.Fprintf(w, "  %-22s %s\n", "feature", "accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-22s %.3f\n", r.Label, r.Accuracy())
	}
}

// RenderFig8 prints the move and phase distributions per task (Figures 8a
// and 8b).
func RenderFig8(w io.Writer, traces []*trace.Trace) {
	fmt.Fprintln(w, "Figure 8a/8b: move and phase distribution per task (averaged over users)")
	fmt.Fprintf(w, "  %-6s %8s %8s %8s | %9s %11s %12s %9s\n",
		"task", "pan", "zoom-in", "zoom-out", "Foraging", "Navigation", "Sensemaking", "requests")
	for _, s := range study.Summarize(traces) {
		fmt.Fprintf(w, "  %-6d %8.3f %8.3f %8.3f | %9.3f %11.3f %12.3f %9d\n",
			s.Task, s.PanFrac, s.InFrac, s.OutFrac,
			s.PhaseFrac[trace.Foraging], s.PhaseFrac[trace.Navigation], s.PhaseFrac[trace.Sensemaking],
			s.Requests)
	}
}

// RenderFig8Users prints each user's move mix per task (Figures 8c-8e),
// grouping users with similar distributions.
func RenderFig8Users(w io.Writer, traces []*trace.Trace) {
	byTask := map[int][]*trace.Trace{}
	for _, t := range traces {
		byTask[t.Task] = append(byTask[t.Task], t)
	}
	var tasks []int
	for id := range byTask {
		tasks = append(tasks, id)
	}
	sort.Ints(tasks)
	for _, id := range tasks {
		fmt.Fprintf(w, "Figure 8%c: per-user move mix, task %d (pan/in/out)\n", 'b'+id, id)
		ts := byTask[id]
		sort.Slice(ts, func(i, j int) bool {
			pi, ii, oi := ts[i].MoveCounts()
			pj, ij, oj := ts[j].MoveCounts()
			fi := float64(pi) / float64(pi+ii+oi+1)
			fj := float64(pj) / float64(pj+ij+oj+1)
			return fi > fj
		})
		for _, t := range ts {
			p, in, out := t.MoveCounts()
			total := p + in + out
			if total == 0 {
				total = 1
			}
			fmt.Fprintf(w, "  user %2d: %5.2f %5.2f %5.2f  %s\n",
				t.User, float64(p)/float64(total), float64(in)/float64(total), float64(out)/float64(total),
				bar(float64(p)/float64(total), 20))
		}
	}
}

// RenderFig9 prints one user's zoom level per request — the sawtooth of
// Figure 9. Coarse levels print at the top as in the paper (y-axis is
// inverted: level 0 on top).
func RenderFig9(w io.Writer, tr *trace.Trace, levels int) {
	fmt.Fprintf(w, "Figure 9: zoom level per request (user %d, task %d)\n", tr.User, tr.Task)
	for level := 0; level < levels; level++ {
		fmt.Fprintf(w, "  L%d |", level)
		for _, r := range tr.Requests {
			if r.Coord.Level == level {
				fmt.Fprint(w, "*")
			} else {
				fmt.Fprint(w, " ")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "      %s> request #\n", strings.Repeat("-", len(tr.Requests)))
}

// RenderAccuracyByPhase prints one accuracy figure (10a, 10b, 10c or 11):
// per analysis phase, one row per fetch size k, one column per model.
func RenderAccuracyByPhase(w io.Writer, title string, t *Table, models []string, ks []int) {
	fmt.Fprintln(w, title)
	phases := append([]trace.Phase{trace.PhaseUnknown}, trace.AllPhases()...)
	for _, ph := range phases {
		label := ph.String()
		if ph == trace.PhaseUnknown {
			label = "Overall"
		}
		fmt.Fprintf(w, "  [%s]\n", label)
		fmt.Fprintf(w, "  %-4s", "k")
		for _, m := range models {
			fmt.Fprintf(w, " %12s", m)
		}
		fmt.Fprintln(w)
		for _, k := range ks {
			fmt.Fprintf(w, "  %-4d", k)
			for _, m := range models {
				fmt.Fprintf(w, " %12.3f", t.Get(m, k, ph).Accuracy())
			}
			fmt.Fprintln(w)
		}
	}
}

// RenderFig12 prints the latency-vs-accuracy points and their linear fit
// (Figure 12; the paper reports slope -939.08, intercept 961.33, adjusted
// R^2 0.99985).
func RenderFig12(w io.Writer, runs []EngineRun) Regression {
	fmt.Fprintln(w, "Figure 12: average response time vs prefetch accuracy (all models, all k)")
	fmt.Fprintf(w, "  %-10s %3s %9s %12s\n", "model", "k", "accuracy", "avg latency")
	var xs, ys []float64
	for _, r := range runs {
		fmt.Fprintf(w, "  %-10s %3d %9.3f %12s\n", r.Model, r.K, r.HitRate, r.AvgLatency.Round(time.Millisecond))
		xs = append(xs, r.HitRate*100) // percent, like the paper's axis
		ys = append(ys, float64(r.AvgLatency)/float64(time.Millisecond))
	}
	reg := Fit(xs, ys)
	fmt.Fprintf(w, "  linear fit: latency(ms) = %.2f + %.2f * accuracy(%%)   R^2 = %.5f  (paper: 961.33 - 9.39*acc%%, R^2 0.99985)\n",
		reg.Intercept, reg.Slope, reg.R2)
	return reg
}

// RenderFig13 prints average prefetching response times per fetch size for
// the given models (Figure 13).
func RenderFig13(w io.Writer, runs []EngineRun, models []string, ks []int) {
	fmt.Fprintln(w, "Figure 13: average response time per fetch size k")
	index := map[string]map[int]EngineRun{}
	for _, r := range runs {
		if index[r.Model] == nil {
			index[r.Model] = map[int]EngineRun{}
		}
		index[r.Model][r.K] = r
	}
	fmt.Fprintf(w, "  %-4s", "k")
	for _, m := range models {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintln(w)
	for _, k := range ks {
		fmt.Fprintf(w, "  %-4d", k)
		for _, m := range models {
			fmt.Fprintf(w, " %12s", index[m][k].AvgLatency.Round(time.Millisecond))
		}
		fmt.Fprintln(w)
	}
}

// RenderHeadline prints the §5.5 summary comparison at k=5: hybrid vs the
// best existing prefetcher vs a traditional non-prefetching system.
func RenderHeadline(w io.Writer, hybrid, momentum, hotspot EngineRun, missLatency time.Duration) {
	fmt.Fprintln(w, "Headline (§5.5), fetch size k = 5:")
	noPrefetch := float64(missLatency)
	fmt.Fprintf(w, "  no prefetching:   %12s\n", missLatency.Round(time.Millisecond))
	fmt.Fprintf(w, "  momentum:         %12s\n", momentum.AvgLatency.Round(time.Millisecond))
	fmt.Fprintf(w, "  hotspot:          %12s\n", hotspot.AvgLatency.Round(time.Millisecond))
	fmt.Fprintf(w, "  hybrid (ours):    %12s  accuracy %.1f%%\n",
		hybrid.AvgLatency.Round(time.Millisecond), hybrid.HitRate*100)
	if hybrid.AvgLatency > 0 {
		impTrad := (noPrefetch - float64(hybrid.AvgLatency)) / float64(hybrid.AvgLatency) * 100
		best := momentum.AvgLatency
		if hotspot.AvgLatency < best {
			best = hotspot.AvgLatency
		}
		impPrefetch := (float64(best) - float64(hybrid.AvgLatency)) / float64(hybrid.AvgLatency) * 100
		fmt.Fprintf(w, "  improvement vs no-prefetch: %.0f%%  (paper: 430%%)\n", impTrad)
		fmt.Fprintf(w, "  improvement vs best existing prefetcher: %.0f%%  (paper: 88%%)\n", impPrefetch)
	}
}

func bar(frac float64, width int) string {
	n := int(frac * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}
