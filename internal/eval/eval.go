// Package eval is the experiment harness: it reproduces every table and
// figure of the paper's evaluation (§5) over traces from the study
// simulator, using leave-one-out cross-validation across users exactly as
// the paper does (§5.4).
//
// Prediction accuracy is measured as the paper defines it (§5.2.2): step
// through a request log; after each request collect each model's ranked
// predictions trimmed to its allotment k; count whether the next requested
// tile is in the list. Accuracy is attributed to the analysis phase of the
// predicted (next) request.
package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"forecache/internal/backend"
	"forecache/internal/phase"
	"forecache/internal/recommend"
	"forecache/internal/sig"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

// Harness bundles the dataset and traces an experiment runs over.
type Harness struct {
	Pyr    *tile.Pyramid
	Attr   string
	Traces []*trace.Trace
	// HistoryLen is the session history window n (default 3).
	HistoryLen int
	// D is the prediction distance in moves (default 1).
	D int
	// MaxTrainRequests caps the classifier's training set per fold for
	// bounded SMO time (deterministic subsample; default 800).
	MaxTrainRequests int
	// Seed drives deterministic subsampling.
	Seed int64
}

func (h *Harness) withDefaults() {
	if h.HistoryLen <= 0 {
		h.HistoryLen = 3
	}
	if h.D <= 0 {
		h.D = 1
	}
	if h.MaxTrainRequests <= 0 {
		h.MaxTrainRequests = 800
	}
}

// Point is one accuracy measurement cell: model x k x phase.
// Phase trace.PhaseUnknown aggregates all phases ("overall").
type Point struct {
	Model string
	K     int
	Phase trace.Phase
	Hits  int
	Total int
}

// Accuracy returns Hits/Total (0 when empty).
func (p Point) Accuracy() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.Total)
}

// Table accumulates points keyed by (model, k, phase).
type Table struct {
	points map[string]*Point
	order  []string
}

// NewTable returns an empty accuracy table.
func NewTable() *Table { return &Table{points: make(map[string]*Point)} }

func key(model string, k int, ph trace.Phase) string {
	return fmt.Sprintf("%s|%d|%d", model, k, int(ph))
}

// Add records one prediction outcome.
func (t *Table) Add(model string, k int, ph trace.Phase, hit bool) {
	for _, p := range []trace.Phase{ph, trace.PhaseUnknown} {
		kk := key(model, k, p)
		pt := t.points[kk]
		if pt == nil {
			pt = &Point{Model: model, K: k, Phase: p}
			t.points[kk] = pt
			t.order = append(t.order, kk)
		}
		pt.Total++
		if hit {
			pt.Hits++
		}
	}
}

// Get returns the accumulated point for (model, k, phase).
func (t *Table) Get(model string, k int, ph trace.Phase) Point {
	if pt, ok := t.points[key(model, k, ph)]; ok {
		return *pt
	}
	return Point{Model: model, K: k, Phase: ph}
}

// Points returns all cells in insertion order.
func (t *Table) Points() []Point {
	out := make([]Point, 0, len(t.order))
	for _, kk := range t.order {
		out = append(out, *t.points[kk])
	}
	return out
}

// Merge folds another table into this one.
func (t *Table) Merge(o *Table) {
	for _, kk := range o.order {
		src := o.points[kk]
		dst := t.points[kk]
		if dst == nil {
			cp := *src
			t.points[kk] = &cp
			t.order = append(t.order, kk)
			continue
		}
		dst.Hits += src.Hits
		dst.Total += src.Total
	}
}

// ModelFactory builds a recommendation model trained on the given traces.
// Models without a training phase ignore the argument.
type ModelFactory func(train []*trace.Trace) (recommend.Model, error)

// MomentumFactory builds the Momentum baseline.
func MomentumFactory() ModelFactory {
	return func([]*trace.Trace) (recommend.Model, error) {
		return recommend.NewMomentum(), nil
	}
}

// HotspotFactory builds the trace-trained hotspot baseline with n hotspots.
func HotspotFactory(n, radius int) ModelFactory {
	return func(train []*trace.Trace) (recommend.Model, error) {
		return recommend.NewTraceHotspot(train, n, radius), nil
	}
}

// ABFactory builds the order-n Actions-Based Markov model.
func ABFactory(order int) ModelFactory {
	return func(train []*trace.Trace) (recommend.Model, error) {
		return recommend.NewAB(order, train)
	}
}

// SBFactory builds a Signature-Based model over the harness pyramid,
// optionally restricted to specific signatures.
func (h *Harness) SBFactory(sigs ...string) ModelFactory {
	return func([]*trace.Trace) (recommend.Model, error) {
		if len(sigs) == 0 {
			return recommend.NewSB(h.Pyr), nil
		}
		return recommend.NewSB(h.Pyr, recommend.WithSignatures(sigs...)), nil
	}
}

// SBDivFactory builds the Signature-Based model with Algorithm 3's
// line-13 physical-distance division enabled exactly as printed in the
// technical report (the ablation comparing both readings of the
// algorithm).
func (h *Harness) SBDivFactory(sigs ...string) ModelFactory {
	return func([]*trace.Trace) (recommend.Model, error) {
		opts := []recommend.SBOption{recommend.WithPhysicalDivision()}
		if len(sigs) > 0 {
			opts = append(opts, recommend.WithSignatures(sigs...))
		}
		return recommend.NewSB(h.Pyr, opts...), nil
	}
}

// folds yields leave-one-user-out train/test splits (paper §5.4).
func (h *Harness) folds() [](struct {
	train, test []*trace.Trace
}) {
	users := map[int]bool{}
	for _, t := range h.Traces {
		users[t.User] = true
	}
	var ids []int
	for u := range users {
		ids = append(ids, u)
	}
	sort.Ints(ids)
	var out [](struct{ train, test []*trace.Trace })
	for _, u := range ids {
		var fold struct{ train, test []*trace.Trace }
		for _, t := range h.Traces {
			if t.User == u {
				fold.test = append(fold.test, t)
			} else {
				fold.train = append(fold.train, t)
			}
		}
		out = append(out, fold)
	}
	return out
}

// EvalModelLOO measures one model's prediction accuracy with leave-one-out
// cross-validation, for every k in ks, attributed per phase.
func (h *Harness) EvalModelLOO(name string, factory ModelFactory, ks []int) (*Table, error) {
	h.withDefaults()
	table := NewTable()
	for _, fold := range h.folds() {
		m, err := factory(fold.train)
		if err != nil {
			return nil, fmt.Errorf("eval: build %s: %w", name, err)
		}
		for _, tr := range fold.test {
			h.stepTrace(m, tr, name, ks, table)
		}
	}
	return table, nil
}

// stepTrace replays one trace against a model, tallying top-k containment.
func (h *Harness) stepTrace(m recommend.Model, tr *trace.Trace, name string, ks []int, table *Table) {
	m.Reset()
	hist := trace.NewHistory(h.HistoryLen)
	for i := 0; i+1 < len(tr.Requests); i++ {
		r, next := tr.Requests[i], tr.Requests[i+1]
		hist.Push(r)
		m.Observe(r)
		cands := recommend.Candidates(h.Pyr, r.Coord, h.D)
		ranked := m.Predict(r, cands, hist)
		for _, k := range ks {
			table.Add(name, k, next.Phase, recommend.Contains(ranked, k, next.Coord))
		}
	}
}

// HybridSpec configures the two-level engine evaluation.
type HybridSpec struct {
	// Name labels the rows (default "hybrid").
	Name string
	// ABOrder is the Markov order (paper: 3).
	ABOrder int
	// SBSigs restricts the SB model's signatures (paper: SIFT only).
	SBSigs []string
	// ABFirst is how many slots AB fills before SB (paper: 4).
	ABFirst int
	// UseOriginalPolicy switches to the pre-tuning §4.4 allocation
	// strategy (ablation).
	UseOriginalPolicy bool
	// OraclePhases uses ground-truth phase labels instead of the trained
	// classifier (ablation isolating classifier error).
	OraclePhases bool
}

// EvalHybridLOO measures the full two-level prediction engine: per fold it
// trains the phase classifier and the AB chain on 17 users and replays the
// held-out user's traces, combining AB and SB rankings per the allocation
// policy (§5.4.3).
func (h *Harness) EvalHybridLOO(spec HybridSpec, ks []int) (*Table, error) {
	h.withDefaults()
	if spec.Name == "" {
		spec.Name = "hybrid"
	}
	if spec.ABOrder <= 0 {
		spec.ABOrder = 3
	}
	if spec.ABFirst <= 0 {
		spec.ABFirst = 4
	}
	if len(spec.SBSigs) == 0 {
		spec.SBSigs = []string{sig.NameSIFT}
	}
	table := NewTable()
	for _, fold := range h.folds() {
		ab, err := recommend.NewAB(spec.ABOrder, fold.train)
		if err != nil {
			return nil, err
		}
		sb := recommend.NewSB(h.Pyr, recommend.WithSignatures(spec.SBSigs...))
		var cls *phase.Classifier
		if !spec.OraclePhases {
			cls, err = phase.Train(h.sampleRequests(fold.train), phase.TrainConfig{})
			if err != nil {
				return nil, fmt.Errorf("eval: phase classifier: %w", err)
			}
		}
		for _, tr := range fold.test {
			h.stepHybrid(spec, ab, sb, cls, tr, ks, table)
		}
	}
	return table, nil
}

func (h *Harness) stepHybrid(spec HybridSpec, ab, sb recommend.Model, cls *phase.Classifier, tr *trace.Trace, ks []int, table *Table) {
	ab.Reset()
	sb.Reset()
	hist := trace.NewHistory(h.HistoryLen)
	for i := 0; i+1 < len(tr.Requests); i++ {
		r, next := tr.Requests[i], tr.Requests[i+1]
		hist.Push(r)
		ab.Observe(r)
		sb.Observe(r)
		ph := r.Phase
		if cls != nil {
			ph = cls.Predict(r)
		}
		cands := recommend.Candidates(h.Pyr, r.Coord, h.D)
		abRank := ab.Predict(r, cands, hist)
		sbRank := sb.Predict(r, cands, hist)
		for _, k := range ks {
			var abK, sbK int
			if ph == trace.Sensemaking {
				sbK = k
			} else if spec.UseOriginalPolicy && ph == trace.Navigation {
				abK = k
			} else if spec.UseOriginalPolicy { // Foraging under §4.4
				sbK = k / 2
				abK = k - sbK
			} else { // §5.4.3 hybrid
				abK = spec.ABFirst
				if k < abK {
					abK = k
				}
				sbK = k - abK
			}
			hit := recommend.Contains(abRank, abK, next.Coord) ||
				recommend.Contains(sbRank, sbK, next.Coord)
			table.Add(spec.Name, k, next.Phase, hit)
		}
	}
}

// sampleRequests flattens training traces into labeled requests, capped at
// MaxTrainRequests by deterministic subsampling so SVM training stays fast.
func (h *Harness) sampleRequests(traces []*trace.Trace) []trace.Request {
	reqs := phase.Requests(traces)
	if len(reqs) <= h.MaxTrainRequests {
		return reqs
	}
	rng := rand.New(rand.NewSource(h.Seed + 17))
	idx := rng.Perm(len(reqs))[:h.MaxTrainRequests]
	sort.Ints(idx)
	out := make([]trace.Request, len(idx))
	for i, j := range idx {
		out[i] = reqs[j]
	}
	return out
}

// PhaseResult reports the phase classifier's LOO accuracy for one feature
// subset (Table 1 rows and the §5.4.1 overall figure).
type PhaseResult struct {
	Features []int
	Label    string
	Correct  int
	Total    int
}

// Accuracy returns the fraction classified correctly.
func (r PhaseResult) Accuracy() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Total)
}

// EvalPhaseLOO measures the phase classifier's leave-one-out accuracy for
// a feature subset (nil = all six Table 1 features).
func (h *Harness) EvalPhaseLOO(features []int, label string) (PhaseResult, error) {
	h.withDefaults()
	res := PhaseResult{Features: features, Label: label}
	for _, fold := range h.folds() {
		cls, err := phase.Train(h.sampleRequests(fold.train), phase.TrainConfig{Features: features})
		if err != nil {
			return res, err
		}
		for _, tr := range fold.test {
			for _, r := range tr.Requests {
				if r.Phase == trace.PhaseUnknown {
					continue
				}
				res.Total++
				if cls.Predict(r) == r.Phase {
					res.Correct++
				}
			}
		}
	}
	return res, nil
}

// Latency converts a prediction accuracy into the paper's average response
// time under the hit/miss latency model (§5.5: cache hits answer in ~19.5
// ms, misses in ~984 ms, so avg = acc*hit + (1-acc)*miss).
func Latency(acc float64, lm backend.LatencyModel) time.Duration {
	return time.Duration(acc*float64(lm.Hit) + (1-acc)*float64(lm.Miss))
}

// Regression is a least-squares line fit y = Intercept + Slope*x.
type Regression struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// Fit computes the ordinary least squares fit of y on x.
func Fit(x, y []float64) Regression {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n < 2 {
		return Regression{N: n}
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Regression{N: n, Intercept: my}
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		ssRes := 0.0
		for i := 0; i < n; i++ {
			resid := y[i] - (intercept + slope*x[i])
			ssRes += resid * resid
		}
		r2 = 1 - ssRes/syy
	}
	return Regression{Slope: slope, Intercept: intercept, R2: r2, N: n}
}
