package eval

import (
	"fmt"
	"time"

	"forecache/internal/backend"
	"forecache/internal/core"
	"forecache/internal/phase"
	"forecache/internal/recommend"
	"forecache/internal/sig"
	"forecache/internal/trace"
)

// EngineRun reports one end-to-end middleware measurement: a model (or the
// full hybrid engine) at one fetch size, replayed over the held-out traces
// through the real cache manager, with the paper's latency constants.
type EngineRun struct {
	Model      string
	K          int
	HitRate    float64
	AvgLatency time.Duration
	Requests   int
}

// EngineSetup builds the per-fold pieces an engine needs.
type EngineSetup func(train []*trace.Trace) (models []recommend.Model, policy core.AllocationPolicy, cls *phase.Classifier, err error)

// SingleEngineSetup wraps a ModelFactory into an engine setup with all
// slots allocated to that model and no phase classifier.
func SingleEngineSetup(factory ModelFactory) EngineSetup {
	return func(train []*trace.Trace) ([]recommend.Model, core.AllocationPolicy, *phase.Classifier, error) {
		m, err := factory(train)
		if err != nil {
			return nil, nil, nil, err
		}
		return []recommend.Model{m}, core.SinglePolicy{Model: m.Name()}, nil, nil
	}
}

// RegistryEngineSetup builds an engine from registered recommender specs:
// the per-fold model set comes from Registry.Build over the training
// traces and the allocation policy from the registry's prior columns —
// the same construction path the production facade uses, so experiments
// measure exactly what deployments run. The optional hotspot spec gives
// the eval path the 3-way table.
func (h *Harness) RegistryEngineSetup(specs []recommend.Spec) EngineSetup {
	return func(train []*trace.Trace) ([]recommend.Model, core.AllocationPolicy, *phase.Classifier, error) {
		reg, err := recommend.NewRegistry(specs...)
		if err != nil {
			return nil, nil, nil, err
		}
		set, err := reg.Build(recommend.Env{Tiles: h.Pyr, Traces: train})
		if err != nil {
			return nil, nil, nil, err
		}
		policy, err := core.NewRegistryPolicy(set.Columns())
		if err != nil {
			return nil, nil, nil, err
		}
		cls, err := phase.Train(h.sampleRequests(train), phase.TrainConfig{})
		if err != nil {
			return nil, nil, nil, err
		}
		return set.Session(), policy, cls, nil
	}
}

// HybridEngineSetup builds the paper's full engine: AB + SB models from
// the registry, the trained phase classifier, and the §5.4.3 allocation
// policy. Spec overrides (a custom ABFirst split, the pre-tuning original
// policy) swap the policy while the model set stays registry-built.
func (h *Harness) HybridEngineSetup(spec HybridSpec) EngineSetup {
	order := spec.ABOrder
	if order <= 0 {
		order = 3
	}
	sigs := spec.SBSigs
	if len(sigs) == 0 {
		sigs = []string{sig.NameSIFT}
	}
	registry := h.RegistryEngineSetup(recommend.DefaultSpecs(order, sigs, nil))
	return func(train []*trace.Trace) ([]recommend.Model, core.AllocationPolicy, *phase.Classifier, error) {
		models, policy, cls, err := registry(train)
		if err != nil {
			return nil, nil, nil, err
		}
		abName, sbName := models[0].Name(), models[1].Name()
		if spec.ABFirst > 0 {
			policy = core.HybridPolicy{ABName: abName, SBName: sbName, ABFirst: max(spec.ABFirst, 1)}
		}
		if spec.UseOriginalPolicy {
			policy = core.OriginalPolicy{ABName: abName, SBName: sbName}
		}
		return models, policy, cls, nil
	}
}

// RunEngineLOO replays the held-out traces through a real middleware
// engine (cache manager + DBMS adapter) per fold and fetch size, returning
// hit rates and average response latency under lm. This is the measurement
// behind Figures 12 and 13 and the §5.5 headline numbers.
func (h *Harness) RunEngineLOO(name string, setup EngineSetup, ks []int, lm backend.LatencyModel) ([]EngineRun, error) {
	h.withDefaults()
	type agg struct {
		hits, misses int
	}
	sums := make(map[int]*agg, len(ks))
	for _, k := range ks {
		sums[k] = &agg{}
	}
	for _, fold := range h.folds() {
		models, policy, cls, err := setup(fold.train)
		if err != nil {
			return nil, fmt.Errorf("eval: engine setup %s: %w", name, err)
		}
		db := backend.NewDBMS(h.Pyr, lm, nil)
		for _, k := range ks {
			eng, err := core.NewEngine(db, cls, policy, models, core.Config{
				K: k, D: h.D, HistoryLen: h.HistoryLen, RecentTiles: h.RecentTiles(),
			})
			if err != nil {
				return nil, err
			}
			for _, tr := range fold.test {
				eng.Reset()
				for _, r := range tr.Requests {
					if _, err := eng.Request(r.Coord); err != nil {
						return nil, fmt.Errorf("eval: replay %s k=%d: %w", name, k, err)
					}
				}
			}
			st := eng.CacheStats()
			sums[k].hits += st.Hits
			sums[k].misses += st.Misses
		}
	}
	out := make([]EngineRun, 0, len(ks))
	for _, k := range ks {
		a := sums[k]
		total := a.hits + a.misses
		run := EngineRun{Model: name, K: k, Requests: total}
		if total > 0 {
			run.HitRate = float64(a.hits) / float64(total)
			run.AvgLatency = time.Duration(
				(float64(a.hits)*float64(lm.Hit) + float64(a.misses)*float64(lm.Miss)) / float64(total))
		}
		out = append(out, run)
	}
	return out, nil
}

// RecentTiles is the LRU region size used in engine replays. The paper
// reserves the remaining cache space for the last n requested tiles; we
// use the history window size.
func (h *Harness) RecentTiles() int { return h.HistoryLen }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
