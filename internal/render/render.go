// Package render turns data tiles into images — the server-side equivalent
// of the D3 heatmap rendering the paper's browser client performs. It is
// used by the CLI's render subcommand and by anyone who wants to *see* the
// dataset the middleware serves.
//
// Renderings are plain image.Image values encodable with the stdlib's
// image/png; color maps are tuned for the NDSI convention the paper's
// figures use (snow in warm oranges/yellows, snow-free land and ocean in
// cool greens/blues, Figure 6).
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
	"os"
	"path/filepath"

	"forecache/internal/tile"
)

// ColorMap maps a normalized value in [0,1] to a color. Values outside the
// range are clamped; NaN cells render as transparent gray.
type ColorMap func(v float64) color.RGBA

// NDSIMap mirrors the paper's snow-cover palette: high values (snow) in
// orange/yellow, low values in green fading to blue (Figure 6's caption:
// "Snow is orange to yellow, snow-free areas in green to blue").
func NDSIMap(v float64) color.RGBA {
	switch {
	case v >= 0.75: // deep snow: yellow
		return lerp(color.RGBA{255, 165, 0, 255}, color.RGBA{255, 255, 102, 255}, (v-0.75)/0.25)
	case v >= 0.5: // snow: orange
		return lerp(color.RGBA{205, 92, 0, 255}, color.RGBA{255, 165, 0, 255}, (v-0.5)/0.25)
	case v >= 0.3: // transition: green
		return lerp(color.RGBA{34, 139, 34, 255}, color.RGBA{154, 205, 50, 255}, (v-0.3)/0.2)
	default: // snow-free / water: blue
		return lerp(color.RGBA{8, 48, 107, 255}, color.RGBA{60, 120, 180, 255}, v/0.3)
	}
}

// GrayMap is a plain grayscale ramp for generic attributes.
func GrayMap(v float64) color.RGBA {
	g := uint8(clamp01(v) * 255)
	return color.RGBA{g, g, g, 255}
}

// HeatMap is a classic black-red-yellow-white heat ramp (used by the
// heart-rate example).
func HeatMap(v float64) color.RGBA {
	v = clamp01(v)
	switch {
	case v < 1.0/3:
		return lerp(color.RGBA{0, 0, 0, 255}, color.RGBA{200, 30, 30, 255}, v*3)
	case v < 2.0/3:
		return lerp(color.RGBA{200, 30, 30, 255}, color.RGBA{255, 220, 60, 255}, (v-1.0/3)*3)
	default:
		return lerp(color.RGBA{255, 220, 60, 255}, color.RGBA{255, 255, 255, 255}, (v-2.0/3)*3)
	}
}

func lerp(a, b color.RGBA, t float64) color.RGBA {
	t = clamp01(t)
	mix := func(x, y uint8) uint8 { return uint8(float64(x) + (float64(y)-float64(x))*t) }
	return color.RGBA{mix(a.R, b.R), mix(a.G, b.G), mix(a.B, b.B), 255}
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// emptyColor renders NaN (no data / padding) cells.
var emptyColor = color.RGBA{40, 40, 40, 255}

// Options configures rendering.
type Options struct {
	// Attr is the tile attribute to render.
	Attr string
	// Min and Max bound the attribute's value range for normalization
	// (NDSI: -1..1).
	Min, Max float64
	// Map is the color map; nil means NDSIMap.
	Map ColorMap
	// Scale is the integer pixel size per cell (>= 1).
	Scale int
}

func (o Options) withDefaults() Options {
	if o.Map == nil {
		o.Map = NDSIMap
	}
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.Max <= o.Min {
		o.Min, o.Max = 0, 1
	}
	return o
}

// Tile renders one data tile.
func Tile(t *tile.Tile, opts Options) (image.Image, error) {
	opts = opts.withDefaults()
	g, err := t.Grid(opts.Attr)
	if err != nil {
		return nil, err
	}
	img := image.NewRGBA(image.Rect(0, 0, t.Size*opts.Scale, t.Size*opts.Scale))
	span := opts.Max - opts.Min
	for y := 0; y < t.Size; y++ {
		for x := 0; x < t.Size; x++ {
			v := g[y*t.Size+x]
			var c color.RGBA
			if math.IsNaN(v) {
				c = emptyColor
			} else {
				c = opts.Map((v - opts.Min) / span)
			}
			fillCell(img, x, y, opts.Scale, c)
		}
	}
	return img, nil
}

// Level renders a whole zoom level as a mosaic of its tiles.
func Level(p *tile.Pyramid, level int, opts Options) (image.Image, error) {
	opts = opts.withDefaults()
	if level < 0 || level >= p.NumLevels() {
		return nil, fmt.Errorf("render: level %d outside [0,%d)", level, p.NumLevels())
	}
	side := p.Side(level)
	ts := p.TileSize()
	img := image.NewRGBA(image.Rect(0, 0, side*ts*opts.Scale, side*ts*opts.Scale))
	span := opts.Max - opts.Min
	for ty := 0; ty < side; ty++ {
		for tx := 0; tx < side; tx++ {
			t, err := p.Tile(tile.Coord{Level: level, Y: ty, X: tx})
			if err != nil {
				return nil, err
			}
			g, err := t.Grid(opts.Attr)
			if err != nil {
				return nil, err
			}
			for y := 0; y < ts; y++ {
				for x := 0; x < ts; x++ {
					v := g[y*ts+x]
					var c color.RGBA
					if math.IsNaN(v) {
						c = emptyColor
					} else {
						c = opts.Map((v - opts.Min) / span)
					}
					fillCell(img, tx*ts+x, ty*ts+y, opts.Scale, c)
				}
			}
		}
	}
	return img, nil
}

func fillCell(img *image.RGBA, x, y, scale int, c color.RGBA) {
	for dy := 0; dy < scale; dy++ {
		for dx := 0; dx < scale; dx++ {
			img.SetRGBA(x*scale+dx, y*scale+dy, c)
		}
	}
}

// SavePNG encodes the image to path, creating parent directories.
func SavePNG(path string, img image.Image) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := png.Encode(f, img); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
