package render

import (
	"image/png"
	"math"
	"os"
	"path/filepath"
	"testing"

	"forecache/internal/array"
	"forecache/internal/tile"
)

func testTile() *tile.Tile {
	data := make([]float64, 16)
	for i := range data {
		data[i] = float64(i)/15*2 - 1 // ramp over [-1, 1]
	}
	data[5] = math.NaN()
	return &tile.Tile{
		Coord: tile.Coord{Level: 1, Y: 0, X: 1},
		Size:  4, Attrs: []string{"ndsi_avg"},
		Data: [][]float64{data},
	}
}

func TestTileRendering(t *testing.T) {
	img, err := Tile(testTile(), Options{Attr: "ndsi_avg", Min: -1, Max: 1})
	if err != nil {
		t.Fatalf("Tile: %v", err)
	}
	b := img.Bounds()
	if b.Dx() != 4 || b.Dy() != 4 {
		t.Errorf("bounds = %v, want 4x4", b)
	}
	// NaN cell renders as the empty color, not a palette color.
	r, g, bl, _ := img.At(1, 1).RGBA() // cell 5 = (y1,x1)
	if r>>8 != uint32(emptyColor.R) || g>>8 != uint32(emptyColor.G) || bl>>8 != uint32(emptyColor.B) {
		t.Errorf("NaN cell color = %v", img.At(1, 1))
	}
	// Highest value should render warm (red channel dominant).
	r, g, bl, _ = img.At(3, 3).RGBA()
	if !(r > bl) {
		t.Errorf("snow cell should be warm, got r=%d g=%d b=%d", r>>8, g>>8, bl>>8)
	}
	// Lowest value should render cool (blue channel dominant).
	r, _, bl, _ = img.At(0, 0).RGBA()
	if !(bl > r) {
		t.Errorf("ocean cell should be cool, got r=%d b=%d", r>>8, bl>>8)
	}
}

func TestTileScale(t *testing.T) {
	img, err := Tile(testTile(), Options{Attr: "ndsi_avg", Min: -1, Max: 1, Scale: 3})
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 12 {
		t.Errorf("scaled bounds = %v, want 12", img.Bounds().Dx())
	}
	// All pixels of one scaled cell are identical.
	if img.At(0, 0) != img.At(2, 2) {
		t.Error("scaled cell pixels differ")
	}
}

func TestTileMissingAttr(t *testing.T) {
	if _, err := Tile(testTile(), Options{Attr: "zzz"}); err == nil {
		t.Error("missing attribute should fail")
	}
}

func TestLevelMosaic(t *testing.T) {
	a := array.NewZero(array.Schema{
		Name:  "RAW",
		Attrs: []string{"v"},
		Dims:  [2]array.Dim{{Name: "r", Size: 16}, {Name: "c", Size: 16}},
	})
	data, _ := a.AttrData("v")
	for i := range data {
		data[i] = float64(i % 16)
	}
	pyr, err := tile.Build(a, tile.Params{TileSize: 8, Agg: array.AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	img, err := Level(pyr, 1, Options{Attr: "v", Min: 0, Max: 16, Map: GrayMap})
	if err != nil {
		t.Fatalf("Level: %v", err)
	}
	if img.Bounds().Dx() != 16 {
		t.Errorf("level mosaic width = %d, want 16", img.Bounds().Dx())
	}
	if _, err := Level(pyr, 9, Options{Attr: "v"}); err == nil {
		t.Error("out-of-range level should fail")
	}
}

func TestSavePNGRoundTrip(t *testing.T) {
	img, err := Tile(testTile(), Options{Attr: "ndsi_avg", Min: -1, Max: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out", "tile.png")
	if err := SavePNG(path, img); err != nil {
		t.Fatalf("SavePNG: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	decoded, err := png.Decode(f)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if decoded.Bounds() != img.Bounds() {
		t.Errorf("decoded bounds = %v", decoded.Bounds())
	}
}

func TestColorMapsTotal(t *testing.T) {
	for _, cm := range []ColorMap{NDSIMap, GrayMap, HeatMap} {
		for _, v := range []float64{-5, 0, 0.3, 0.5, 0.75, 1, 7, math.NaN()} {
			c := cm(v)
			if c.A != 255 {
				t.Errorf("color map produced transparent pixel for %v", v)
			}
		}
	}
	// Heat ramp must be monotone in brightness.
	prev := -1
	for _, v := range []float64{0, 0.33, 0.66, 1} {
		c := HeatMap(v)
		sum := int(c.R) + int(c.G) + int(c.B)
		if sum < prev {
			t.Errorf("heat ramp not monotone at %v", v)
		}
		prev = sum
	}
}

func BenchmarkRenderLevel(b *testing.B) {
	a := array.NewZero(array.Schema{
		Name:  "RAW",
		Attrs: []string{"v"},
		Dims:  [2]array.Dim{{Name: "r", Size: 64}, {Name: "c", Size: 64}},
	})
	pyr, err := tile.Build(a, tile.Params{TileSize: 16, Agg: array.AggAvg})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Level(pyr, 2, Options{Attr: "v"}); err != nil {
			b.Fatal(err)
		}
	}
}
