package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestTraceBufferEvictionOrder pins the ring semantics: the newest
// capacity traces are retained and Snapshot returns them oldest-first.
func TestTraceBufferEvictionOrder(t *testing.T) {
	b := NewTraceBuffer(3)
	for i := 0; i < 5; i++ {
		b.Add(Trace{ID: fmt.Sprintf("t-%d", i)})
	}
	if b.Cap() != 3 || b.Len() != 3 {
		t.Fatalf("Cap/Len = %d/%d, want 3/3", b.Cap(), b.Len())
	}
	if b.Added() != 5 {
		t.Fatalf("Added = %d, want 5", b.Added())
	}
	snap := b.Snapshot()
	var ids []string
	for _, tr := range snap {
		ids = append(ids, tr.ID)
	}
	if got := strings.Join(ids, ","); got != "t-2,t-3,t-4" {
		t.Fatalf("retained %s, want t-2,t-3,t-4 (oldest evicted first)", got)
	}
}

func TestTraceBufferDefaultCapacity(t *testing.T) {
	if got := NewTraceBuffer(0).Cap(); got != DefaultTraceCapacity {
		t.Fatalf("default capacity = %d, want %d", got, DefaultTraceCapacity)
	}
}

// TestTraceBufferSlowest pins ordering: by duration descending, ties
// broken oldest-first so repeated calls return identical slices.
func TestTraceBufferSlowest(t *testing.T) {
	b := NewTraceBuffer(8)
	for i, dur := range []int64{30, 10, 30, 50, 20} {
		b.Add(Trace{ID: fmt.Sprintf("t-%d", i), DurNS: dur})
	}
	top := b.Slowest(3)
	var ids []string
	for _, tr := range top {
		ids = append(ids, tr.ID)
	}
	// 50 (t-3), then the two 30s oldest-first (t-0 before t-2).
	if got := strings.Join(ids, ","); got != "t-3,t-0,t-2" {
		t.Fatalf("Slowest(3) = %s, want t-3,t-0,t-2", got)
	}
	if got := len(b.Slowest(100)); got != 5 {
		t.Fatalf("Slowest(100) returned %d traces, want 5", got)
	}
}

// TestReqTraceNilSafe: every method on a nil trace (tracing disabled) is
// a usable no-op.
func TestReqTraceNilSafe(t *testing.T) {
	var p *Pipeline
	tr := p.StartTrace("s", "q")
	if tr != nil {
		t.Fatal("nil pipeline should produce a nil trace")
	}
	if tr.ID() != "" {
		t.Fatal("nil trace ID should be empty")
	}
	tr.SetTarget("x")
	tr.SetOutcome(OutcomeHit)
	tr.StartSpan("span")()
	tr.Finish()
	p.ObserveQueueWait(time.Second)
	p.ObserveBackendFetch(time.Second)
	p.ObserveLeadTime(time.Second)
}

func TestReqTraceSpansAndFinish(t *testing.T) {
	p := NewPipeline(Config{})
	tr := p.StartTrace("sess", "level=1&x=2&y=3")
	if tr.ID() == "" {
		t.Fatal("trace has no id")
	}
	end := tr.StartSpan("backend_fetch")
	time.Sleep(2 * time.Millisecond)
	end()
	tr.SetOutcome(OutcomeMiss)
	tr.Finish()
	tr.Finish() // idempotent: must not double-count

	if got := p.RequestMiss.Snapshot().Count; got != 1 {
		t.Fatalf("miss histogram count = %d, want 1", got)
	}
	traces := p.Traces.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("buffer has %d traces, want 1", len(traces))
	}
	rec := traces[0]
	if rec.Outcome != OutcomeMiss || rec.Session != "sess" {
		t.Fatalf("trace record = %+v", rec)
	}
	if len(rec.Spans) != 1 || rec.Spans[0].Name != "backend_fetch" {
		t.Fatalf("spans = %+v", rec.Spans)
	}
	if rec.Spans[0].DurNS <= 0 || rec.Spans[0].DurNS > rec.DurNS {
		t.Fatalf("span duration %d outside trace duration %d", rec.Spans[0].DurNS, rec.DurNS)
	}
}

func TestReqTraceDefaultsToShed(t *testing.T) {
	p := NewPipeline(Config{})
	p.StartTrace("s", "bad query").Finish()
	if got := p.RequestShed.Snapshot().Count; got != 1 {
		t.Fatalf("shed histogram count = %d, want 1", got)
	}
	if got := p.Traces.Snapshot()[0].Outcome; got != OutcomeShed {
		t.Fatalf("outcome = %q, want %q", got, OutcomeShed)
	}
}

// TestReqTraceBounded: hostile labels are truncated and the span list is
// capped, so one record's memory stays fixed.
func TestReqTraceBounded(t *testing.T) {
	p := NewPipeline(Config{})
	long := strings.Repeat("x", 10*maxLabelBytes)
	tr := p.StartTrace(long, long)
	for i := 0; i < maxSpans+10; i++ {
		tr.StartSpan("s")()
	}
	tr.Finish()
	rec := p.Traces.Snapshot()[0]
	if len(rec.Session) != maxLabelBytes || len(rec.Target) != maxLabelBytes {
		t.Fatalf("labels not truncated: session %d bytes, target %d bytes", len(rec.Session), len(rec.Target))
	}
	if len(rec.Spans) != maxSpans {
		t.Fatalf("span list grew to %d, cap is %d", len(rec.Spans), maxSpans)
	}
	if _, err := json.Marshal(rec); err != nil {
		t.Fatalf("trace record not JSON-encodable: %v", err)
	}
}

func TestReqTraceLogsWithTraceID(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "debug")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(Config{Logger: logger})
	tr := p.StartTrace("sess", "q")
	tr.SetOutcome(OutcomeHit)
	tr.Finish()
	line := buf.String()
	if !strings.Contains(line, "trace_id="+tr.ID()) || !strings.Contains(line, "outcome=hit") {
		t.Fatalf("log line missing trace fields: %q", line)
	}
}

func TestNewLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "warn")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("quiet")
	logger.Warn("loud")
	out := buf.String()
	if strings.Contains(out, "quiet") || !strings.Contains(out, "loud") {
		t.Fatalf("warn-level logger output: %q", out)
	}
	if _, err := NewLogger(&buf, "nope"); err == nil {
		t.Fatal("NewLogger accepted an unknown level")
	}
}

func TestPipelineDisabledTraceBuffer(t *testing.T) {
	p := NewPipeline(Config{TraceCapacity: -1})
	if p.Traces != nil {
		t.Fatal("negative TraceCapacity should disable the buffer")
	}
	tr := p.StartTrace("s", "q")
	tr.SetOutcome(OutcomeHit)
	tr.Finish() // histograms still work without a buffer
	if got := p.RequestHit.Snapshot().Count; got != 1 {
		t.Fatalf("hit count = %d, want 1", got)
	}
}

func BenchmarkTraceRecord(b *testing.B) {
	p := NewPipeline(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := p.StartTrace("bench", "level=1&x=2&y=3")
		tr.StartSpan("cache_lookup")()
		tr.SetOutcome(OutcomeHit)
		tr.Finish()
	}
}

func BenchmarkTraceBufferAdd(b *testing.B) {
	buf := NewTraceBuffer(DefaultTraceCapacity)
	tr := Trace{ID: "t-1", Session: "s", Target: "q", Outcome: OutcomeHit, Spans: []Span{{Name: "x"}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Add(tr)
	}
}
