package obs

import (
	"math"
	"sync"
	"testing"
)

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	if len(got) != len(want) {
		t.Fatalf("got %d bounds, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bound[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 4) },
		func() { ExpBuckets(0.001, 1, 4) },
		func() { ExpBuckets(0.001, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("ExpBuckets accepted invalid arguments")
				}
			}()
			bad()
		}()
	}
}

func TestNewHistogramRejectsNonIncreasing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram accepted non-increasing bounds")
		}
	}()
	NewHistogram([]float64{0.1, 0.1})
}

// TestHistogramBucketMath pins the le semantics: a value lands in the
// first bucket whose bound is >= the value (boundary values inclusive),
// and values above every bound land in +Inf.
func TestHistogramBucketMath(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01} { // both land in le=0.01
		h.Observe(v)
	}
	h.Observe(0.0100001) // just past the boundary: le=0.1
	h.Observe(1)         // boundary of the last finite bucket
	h.Observe(50)        // +Inf overflow

	snap := h.Snapshot()
	if len(snap.Bounds) != 3 || len(snap.Cumulative) != 4 {
		t.Fatalf("snapshot shape: %d bounds, %d cumulative", len(snap.Bounds), len(snap.Cumulative))
	}
	wantCum := []uint64{2, 3, 4, 5}
	for i, w := range wantCum {
		if snap.Cumulative[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (full: %v)", i, snap.Cumulative[i], w, snap.Cumulative)
		}
	}
	if snap.Count != 5 {
		t.Fatalf("Count = %d, want 5", snap.Count)
	}
	if snap.Cumulative[len(snap.Cumulative)-1] != snap.Count {
		t.Fatalf("+Inf bucket %d != Count %d", snap.Cumulative[len(snap.Cumulative)-1], snap.Count)
	}
	wantSum := 0.005 + 0.01 + 0.0100001 + 1 + 50
	if math.Abs(snap.Sum-wantSum) > 1e-9 {
		t.Fatalf("Sum = %v, want %v", snap.Sum, wantSum)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
}

// TestHistogramConcurrent hammers one histogram from many goroutines and
// checks no observation is lost and the snapshot invariant holds.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBuckets(1e-6, 10, 6))
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(seed*per+i) * 1e-6)
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*per {
		t.Fatalf("Count = %d, want %d", snap.Count, goroutines*per)
	}
	for i := 1; i < len(snap.Cumulative); i++ {
		if snap.Cumulative[i] < snap.Cumulative[i-1] {
			t.Fatalf("cumulative not monotone: %v", snap.Cumulative)
		}
	}
	if snap.Cumulative[len(snap.Cumulative)-1] != snap.Count {
		t.Fatalf("+Inf %d != Count %d", snap.Cumulative[len(snap.Cumulative)-1], snap.Count)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(ExpBuckets(100e-6, 2, 15))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-5)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram(ExpBuckets(100e-6, 2, 15))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) * 1e-5)
			i++
		}
	})
}
