package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a strict Prometheus text-exposition (version 0.0.4)
// parser/validator, shared by the server's unit tests and the CI
// integration check (cmd/forecache scrape) so the /metrics contract is
// enforced against a live server with exactly the rules the tests pin:
// every sample must parse, carry a valid metric name, follow its family's
// HELP+TYPE header, use valid label names and properly escaped quoted
// label values; families must not repeat; counters must be non-negative;
// and histogram families must be internally consistent (only
// _bucket/_sum/_count samples, le on every bucket, cumulative bucket
// counts, a +Inf bucket equal to _count, matching series sets).

func promMetricOK(r rune, first bool) bool {
	if r == '_' || r == ':' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') {
		return true
	}
	return !first && '0' <= r && r <= '9'
}

func isMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if !promMetricOK(r, i == 0) {
			return false
		}
	}
	return true
}

func isLabelName(s string) bool {
	return isMetricName(s) && !strings.Contains(s, ":")
}

// promSample is one parsed sample line.
type promSample struct {
	name       string
	labelBlock string            // raw, as rendered
	labels     map[string]string // unquoted values
	value      float64
	line       int
}

// splitPromSample parses one sample line into name, label block and raw
// value, walking the optional label block quote-aware (label values may
// contain '{', '}', spaces — anything escaped per the exposition format).
func splitPromSample(line string) (name, labelBlock, rawValue string, ok bool) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", "", false
	}
	name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		inQuotes, escaped := false, false
		end := -1
		for j := 1; j < len(rest); j++ {
			c := rest[j]
			switch {
			case escaped:
				escaped = false
			case c == '\\' && inQuotes:
				escaped = true
			case c == '"':
				inQuotes = !inQuotes
			case c == '}' && !inQuotes:
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", "", "", false
		}
		labelBlock = rest[:end+1]
		rest = rest[end+1:]
	}
	if len(rest) < 2 || rest[0] != ' ' {
		return "", "", "", false
	}
	rawValue = rest[1:]
	if rawValue == "" || strings.ContainsAny(rawValue, " \t") {
		return "", "", "", false
	}
	return name, labelBlock, rawValue, true
}

// splitPromLabelPairs splits `k="v",k2="v2"` respecting escaped quotes.
func splitPromLabelPairs(s string, lineNo int) ([]string, error) {
	var pairs []string
	var cur strings.Builder
	inQuotes, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
			cur.WriteRune(r)
		case r == '\\' && inQuotes:
			escaped = true
			cur.WriteRune(r)
		case r == '"':
			inQuotes = !inQuotes
			cur.WriteRune(r)
		case r == ',' && !inQuotes:
			pairs = append(pairs, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if inQuotes {
		return nil, fmt.Errorf("line %d: unterminated label quote in %q", lineNo, s)
	}
	if cur.Len() > 0 {
		pairs = append(pairs, cur.String())
	}
	return pairs, nil
}

// parseLabels validates and unquotes one label block.
func parseLabels(labelBlock string, lineNo int) (map[string]string, error) {
	out := map[string]string{}
	if labelBlock == "" {
		return out, nil
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labelBlock, "{"), "}")
	pairs, err := splitPromLabelPairs(inner, lineNo)
	if err != nil {
		return nil, err
	}
	for _, pair := range pairs {
		k, quoted, ok := strings.Cut(pair, "=")
		if !ok || !isLabelName(k) {
			return nil, fmt.Errorf("line %d: bad label pair %q", lineNo, pair)
		}
		if len(quoted) < 2 || quoted[0] != '"' || quoted[len(quoted)-1] != '"' {
			return nil, fmt.Errorf("line %d: unquoted label value %q", lineNo, quoted)
		}
		v, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, fmt.Errorf("line %d: unescaped label value %q: %v", lineNo, quoted, err)
		}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("line %d: duplicate label %q", lineNo, k)
		}
		out[k] = v
	}
	return out, nil
}

// histogramSuffix maps a histogram family's sample name to its role
// ("bucket", "sum", "count"), or "" when the name is not one of the
// family's series.
func histogramSuffix(family, name string) string {
	for _, suf := range []string{"bucket", "sum", "count"} {
		if name == family+"_"+suf {
			return suf
		}
	}
	return ""
}

// ParsePromText strictly validates a Prometheus text-format exposition
// body and returns every sample keyed by name+labelBlock. Any format
// violation — including histogram-consistency violations — returns an
// error naming the offending line.
func ParsePromText(body string) (map[string]float64, error) {
	types := map[string]string{}
	values := map[string]float64{}
	var samples []promSample
	var lastFamily string
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		lineNo := ln + 1
		if line == "" {
			return nil, fmt.Errorf("line %d: empty line in exposition body", lineNo)
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !isMetricName(name) {
				return nil, fmt.Errorf("line %d: malformed HELP: %q", lineNo, line)
			}
			if _, seen := types[name]; seen {
				return nil, fmt.Errorf("line %d: family %s declared twice", lineNo, name)
			}
			lastFamily = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !isMetricName(fields[0]) {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", lineNo, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: invalid type %q", lineNo, fields[1])
			}
			if fields[0] != lastFamily {
				return nil, fmt.Errorf("line %d: TYPE for %s does not follow its HELP (%s)", lineNo, fields[0], lastFamily)
			}
			types[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		name, labelBlock, rawValue, ok := splitPromSample(line)
		if !ok || !isMetricName(name) {
			return nil, fmt.Errorf("line %d: unparseable sample: %q", lineNo, line)
		}
		family, ftype, err := familyFor(types, name)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseFloat(rawValue, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, rawValue, err)
		}
		if math.IsNaN(v) {
			return nil, fmt.Errorf("line %d: NaN value for %s", lineNo, name)
		}
		if (ftype == "counter" || (ftype == "histogram" && name != family+"_sum")) && v < 0 {
			return nil, fmt.Errorf("line %d: negative %s sample %s = %v", lineNo, ftype, name, v)
		}
		labels, err := parseLabels(labelBlock, lineNo)
		if err != nil {
			return nil, err
		}
		key := name + labelBlock
		if _, dup := values[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		values[key] = v
		samples = append(samples, promSample{name: name, labelBlock: labelBlock, labels: labels, value: v, line: lineNo})
	}
	if err := validateHistograms(types, samples); err != nil {
		return nil, err
	}
	return values, nil
}

// familyFor resolves a sample name to its declared family: the name
// itself for scalar types, the base name for histogram _bucket/_sum/_count
// series. Samples of undeclared families are rejected.
func familyFor(types map[string]string, name string) (string, string, error) {
	if t, ok := types[name]; ok {
		if t == "histogram" {
			return "", "", fmt.Errorf("histogram family %s has a bare sample (want %s_bucket/_sum/_count)", name, name)
		}
		return name, t, nil
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base, "histogram", nil
		}
	}
	return "", "", fmt.Errorf("sample %s precedes its TYPE declaration", name)
}

// histSeriesKey renders a sample's labels minus "le" in sorted order, the
// grouping key for one histogram series.
func histSeriesKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// validateHistograms enforces per-series histogram consistency: every
// series has _sum, _count, buckets with le labels, cumulative
// (non-decreasing in le order) bucket counts, and a +Inf bucket equal to
// _count.
func validateHistograms(types map[string]string, samples []promSample) error {
	type series struct {
		buckets  []promSample
		sum      *promSample
		count    *promSample
		firstLoc int
	}
	byFamily := map[string]map[string]*series{}
	for i := range samples {
		s := samples[i]
		var family, role string
		for f, t := range types {
			if t != "histogram" {
				continue
			}
			if r := histogramSuffix(f, s.name); r != "" {
				family, role = f, r
				break
			}
		}
		if family == "" {
			continue
		}
		if byFamily[family] == nil {
			byFamily[family] = map[string]*series{}
		}
		key := histSeriesKey(s.labels)
		sr := byFamily[family][key]
		if sr == nil {
			sr = &series{firstLoc: s.line}
			byFamily[family][key] = sr
		}
		switch role {
		case "bucket":
			if _, ok := s.labels["le"]; !ok {
				return fmt.Errorf("line %d: %s_bucket sample without le label", s.line, family)
			}
			sr.buckets = append(sr.buckets, s)
		case "sum":
			sr.sum = &samples[i]
		case "count":
			sr.count = &samples[i]
		}
	}
	for family, bySeries := range byFamily {
		for key, sr := range bySeries {
			if sr.sum == nil {
				return fmt.Errorf("histogram %s series %s: missing _sum (near line %d)", family, key, sr.firstLoc)
			}
			if sr.count == nil {
				return fmt.Errorf("histogram %s series %s: missing _count (near line %d)", family, key, sr.firstLoc)
			}
			if len(sr.buckets) == 0 {
				return fmt.Errorf("histogram %s series %s: no buckets (near line %d)", family, key, sr.firstLoc)
			}
			type bkt struct {
				le float64
				v  float64
			}
			bkts := make([]bkt, 0, len(sr.buckets))
			infSeen := false
			var infVal float64
			for _, b := range sr.buckets {
				raw := b.labels["le"]
				le, err := strconv.ParseFloat(raw, 64)
				if err != nil {
					return fmt.Errorf("line %d: histogram %s bucket has unparseable le=%q", b.line, family, raw)
				}
				if math.IsInf(le, +1) {
					infSeen = true
					infVal = b.value
				}
				bkts = append(bkts, bkt{le: le, v: b.value})
			}
			if !infSeen {
				return fmt.Errorf("histogram %s series %s: missing +Inf bucket", family, key)
			}
			sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
			for i := 1; i < len(bkts); i++ {
				if bkts[i].v < bkts[i-1].v {
					return fmt.Errorf("histogram %s series %s: bucket counts not cumulative (le=%v count %v < le=%v count %v)",
						family, key, bkts[i].le, bkts[i].v, bkts[i-1].le, bkts[i-1].v)
				}
			}
			if infVal != sr.count.value {
				return fmt.Errorf("histogram %s series %s: +Inf bucket (%v) != _count (%v)", family, key, infVal, sr.count.value)
			}
		}
	}
	return nil
}
