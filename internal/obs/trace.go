package obs

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Request outcomes, the label the request-latency histogram is split by.
const (
	// OutcomeHit: the tile was served from a middleware cache.
	OutcomeHit = "hit"
	// OutcomeMiss: the tile had to be fetched from the DBMS on the
	// response path.
	OutcomeMiss = "miss"
	// OutcomeShed: the request was refused before a tile was served (bad
	// query, unknown move, server closed). The default when a trace
	// finishes without an outcome being set.
	OutcomeShed = "shed"
)

// Bounds that keep one trace record's memory fixed regardless of input:
// hostile session ids or query strings are truncated, and a pathological
// request cannot grow a span list without limit.
const (
	maxSpans      = 32
	maxLabelBytes = 128
)

// Span is one named stage of a request, as an offset from the trace start.
type Span struct {
	Name string `json:"name"`
	// StartNS is the span's start, nanoseconds after the trace started.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span's duration in nanoseconds.
	DurNS int64 `json:"duration_ns"`
}

// Trace is one completed request record: identity, attribution, outcome,
// total wall time and the per-stage span breakdown. It is a plain value —
// safe to copy, JSON-encode and retain in the ring buffer.
type Trace struct {
	ID      string    `json:"id"`
	Session string    `json:"session"`
	Target  string    `json:"target"`
	Outcome string    `json:"outcome"`
	Start   time.Time `json:"start"`
	DurNS   int64     `json:"duration_ns"`
	Spans   []Span    `json:"spans"`
}

// traceSeq numbers traces process-wide; the ID is its hex rendering.
var traceSeq atomic.Uint64

// truncateLabel bounds attacker-controlled strings before they enter the
// ring buffer.
func truncateLabel(s string) string {
	if len(s) > maxLabelBytes {
		return s[:maxLabelBytes]
	}
	return s
}

// ReqTrace is one in-progress request trace. All methods are nil-receiver
// safe, so call sites read cleanly whether tracing is enabled or not. A
// ReqTrace is used by one request goroutine at a time (the HTTP handler
// and the engine call it sequentially); it is not otherwise synchronized.
type ReqTrace struct {
	p        *Pipeline
	start    time.Time
	tr       Trace
	finished bool
}

// StartTrace begins a trace for one request. Returns nil (a usable no-op)
// when the pipeline itself is nil.
func (p *Pipeline) StartTrace(session, target string) *ReqTrace {
	if p == nil {
		return nil
	}
	now := time.Now()
	return &ReqTrace{
		p:     p,
		start: now,
		tr: Trace{
			ID:      "t-" + strconv.FormatUint(traceSeq.Add(1), 16),
			Session: truncateLabel(session),
			Target:  truncateLabel(target),
			Start:   now,
		},
	}
}

// ID returns the trace id ("" on a nil trace).
func (t *ReqTrace) ID() string {
	if t == nil {
		return ""
	}
	return t.tr.ID
}

// SetTarget replaces the trace's target (e.g. once the tile coordinate
// has parsed, replacing the raw query string).
func (t *ReqTrace) SetTarget(target string) {
	if t == nil {
		return
	}
	t.tr.Target = truncateLabel(target)
}

// SetOutcome records the request's outcome (OutcomeHit / OutcomeMiss /
// OutcomeShed). Unset at Finish means OutcomeShed: the request never got
// as far as serving a tile.
func (t *ReqTrace) SetOutcome(outcome string) {
	if t == nil {
		return
	}
	t.tr.Outcome = outcome
}

// StartSpan opens a named span and returns the closure that ends it.
// Typical use: defer tr.StartSpan("cache_lookup")(). Past maxSpans the
// span is dropped (the record stays bounded) but the closure is still
// safe to call.
func (t *ReqTrace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		if t.finished || len(t.tr.Spans) >= maxSpans {
			return
		}
		t.tr.Spans = append(t.tr.Spans, Span{
			Name:    name,
			StartNS: start.Sub(t.start).Nanoseconds(),
			DurNS:   time.Since(start).Nanoseconds(),
		})
	}
}

// Finish completes the trace: the total duration is computed, the
// request-latency histogram for the outcome is fed, the record enters the
// ring buffer, and — when the pipeline has a logger — one debug line with
// the trace id is emitted. Idempotent; nil-safe.
func (t *ReqTrace) Finish() {
	if t == nil || t.finished {
		return
	}
	t.finished = true
	d := time.Since(t.start)
	t.tr.DurNS = d.Nanoseconds()
	if t.tr.Outcome == "" {
		t.tr.Outcome = OutcomeShed
	}
	t.p.requestHistogram(t.tr.Outcome).ObserveDuration(d)
	if t.p.Traces != nil {
		t.p.Traces.Add(t.tr)
	}
	if t.p.Log != nil {
		t.p.Log.Debug("request",
			"trace_id", t.tr.ID,
			"session", t.tr.Session,
			"target", t.tr.Target,
			"outcome", t.tr.Outcome,
			"duration", d,
			"spans", len(t.tr.Spans),
		)
	}
}

// TraceBuffer is a bounded ring of completed traces: the newest capacity
// records are retained, the oldest evicted first. Memory is bounded by
// construction — capacity records, each with capped label bytes and span
// count. Safe for concurrent use.
type TraceBuffer struct {
	mu    sync.Mutex
	buf   []Trace
	next  int
	count int
	added uint64
}

// DefaultTraceCapacity is the ring size when none is configured.
const DefaultTraceCapacity = 256

// NewTraceBuffer returns a ring retaining the last capacity traces
// (DefaultTraceCapacity when capacity <= 0).
func NewTraceBuffer(capacity int) *TraceBuffer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceBuffer{buf: make([]Trace, capacity)}
}

// Add records one completed trace, evicting the oldest past capacity.
func (b *TraceBuffer) Add(tr Trace) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf[b.next] = tr
	b.next = (b.next + 1) % len(b.buf)
	if b.count < len(b.buf) {
		b.count++
	}
	b.added++
}

// Cap returns the ring capacity.
func (b *TraceBuffer) Cap() int { return len(b.buf) }

// Len returns how many traces are currently retained.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// Added returns how many traces have ever been recorded (retained or
// since evicted).
func (b *TraceBuffer) Added() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.added
}

// snapshotLocked copies the retained traces oldest-first.
func (b *TraceBuffer) snapshotLocked() []Trace {
	out := make([]Trace, 0, b.count)
	start := b.next - b.count
	if start < 0 {
		start += len(b.buf)
	}
	for i := 0; i < b.count; i++ {
		out = append(out, b.buf[(start+i)%len(b.buf)])
	}
	return out
}

// Snapshot returns the retained traces oldest-first (the eviction order).
func (b *TraceBuffer) Snapshot() []Trace {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.snapshotLocked()
}

// Slowest returns up to n retained traces ordered by total duration,
// slowest first (ties: oldest first, so the order is deterministic).
func (b *TraceBuffer) Slowest(n int) []Trace {
	b.mu.Lock()
	traces := b.snapshotLocked()
	b.mu.Unlock()
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].DurNS > traces[j].DurNS })
	if n >= 0 && n < len(traces) {
		traces = traces[:n]
	}
	return traces
}
