package obs

import (
	"strings"
	"testing"
)

const validScalarBody = `# HELP app_sessions Active sessions.
# TYPE app_sessions gauge
app_sessions 3
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{session="ev\"il\nid"} 12
app_requests_total{session="ok"} 7
`

const validHistBody = `# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{outcome="hit",le="0.001"} 2
app_latency_seconds_bucket{outcome="hit",le="0.01"} 5
app_latency_seconds_bucket{outcome="hit",le="+Inf"} 6
app_latency_seconds_sum{outcome="hit"} 0.42
app_latency_seconds_count{outcome="hit"} 6
app_latency_seconds_bucket{outcome="miss",le="0.001"} 0
app_latency_seconds_bucket{outcome="miss",le="0.01"} 1
app_latency_seconds_bucket{outcome="miss",le="+Inf"} 1
app_latency_seconds_sum{outcome="miss"} 0.009
app_latency_seconds_count{outcome="miss"} 1
`

func TestParsePromTextScalars(t *testing.T) {
	vals, err := ParsePromText(validScalarBody)
	if err != nil {
		t.Fatal(err)
	}
	if vals["app_sessions"] != 3 {
		t.Fatalf("app_sessions = %v", vals["app_sessions"])
	}
	if got := vals[`app_requests_total{session="ev\"il\nid"}`]; got != 12 {
		t.Fatalf("escaped-label sample = %v, want 12 (keys: %v)", got, vals)
	}
}

func TestParsePromTextHistogram(t *testing.T) {
	vals, err := ParsePromText(validHistBody)
	if err != nil {
		t.Fatal(err)
	}
	if got := vals[`app_latency_seconds_bucket{outcome="hit",le="+Inf"}`]; got != 6 {
		t.Fatalf("+Inf bucket = %v, want 6", got)
	}
	if got := vals[`app_latency_seconds_count{outcome="hit"}`]; got != 6 {
		t.Fatalf("_count = %v, want 6", got)
	}
}

// TestParsePromTextRejects sweeps the strict-validator failure modes: the
// exact violations the server's /metrics contract must never produce.
func TestParsePromTextRejects(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // substring of the expected error
	}{
		{"empty line", "# HELP a b\n# TYPE a gauge\n\na 1\n", "empty line"},
		{"sample before TYPE", "a 1\n", "precedes its TYPE"},
		{"duplicate family", "# HELP a b\n# TYPE a gauge\na 1\n# HELP a b\n# TYPE a gauge\n", "declared twice"},
		{"TYPE without HELP", "# TYPE a gauge\na 1\n", "does not follow its HELP"},
		{"invalid type", "# HELP a b\n# TYPE a widget\na 1\n", "invalid type"},
		{"NaN", "# HELP a b\n# TYPE a gauge\na NaN\n", "NaN"},
		{"negative counter", "# HELP a b\n# TYPE a counter\na -1\n", "negative"},
		{"duplicate sample", "# HELP a b\n# TYPE a gauge\na 1\na 2\n", "duplicate sample"},
		{"unquoted label value", "# HELP a b\n# TYPE a gauge\na{k=v} 1\n", "unquoted label"},
		{"unterminated quote", "# HELP a b\n# TYPE a gauge\na{k=\"v} 1\n", "unparseable sample"},
		{"bad metric name", "# HELP a b\n# TYPE a gauge\n2a 1\n", "unparseable sample"},
		{"bare histogram sample", "# HELP h x\n# TYPE h histogram\nh 1\n", "bare sample"},
		{"bucket without le", "# HELP h x\n# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n", "without le"},
		{"missing +Inf", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "missing +Inf"},
		{"missing sum", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n", "missing _sum"},
		{"missing count", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n", "missing _count"},
		{"not cumulative", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", "not cumulative"},
		{"inf != count", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n", "!= _count"},
		{"unparseable le", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"wat\"} 1\nh_sum 1\nh_count 1\n", "unparseable le"},
		{"negative bucket", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} -1\nh_sum 1\nh_count -1\n", "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePromText(tc.body)
			if err == nil {
				t.Fatalf("validator accepted %q", tc.body)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParsePromTextNegativeSumAllowed: a histogram _sum may legitimately
// be negative (negative observations); only buckets/counts may not.
func TestParsePromTextNegativeSumAllowed(t *testing.T) {
	body := "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum -0.5\nh_count 1\n"
	if _, err := ParsePromText(body); err != nil {
		t.Fatalf("negative _sum rejected: %v", err)
	}
}

// TestParsePromTextRoundTrip: a snapshot rendered the way the server
// renders it must pass the validator — the two halves stay in sync.
func TestParsePromTextHostileLabels(t *testing.T) {
	hostile := "ev\"il\\ses\nsion`}"
	body := "# HELP a b\n# TYPE a gauge\na{s=" + quoteLabel(hostile) + "} 1\n"
	vals, err := ParsePromText(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 {
		t.Fatalf("got %d samples", len(vals))
	}
}

// quoteLabel quotes a label value the exposition way (escaping ", \ and
// newline).
func quoteLabel(s string) string {
	r := strings.NewReplacer("\\", `\\`, "\"", `\"`, "\n", `\n`)
	return `"` + r.Replace(s) + `"`
}
