// Package obs is the middleware's dependency-free observability layer:
// fixed log-bucketed latency histograms, per-request trace records with
// span breakdowns, a bounded ring buffer of completed traces, structured
// logging, and a strict Prometheus text-format parser/validator.
//
// The paper's entire value claim is a latency claim — prefetching exists
// to keep pan/zoom responses under the interactivity threshold — so the
// pipeline must be able to show WHERE a slow request spent its time:
// queue wait, backend fetch, cache insert, or lock contention. Every
// component of the request/prefetch pipeline (server, engine, cache,
// scheduler) reports into one shared *Pipeline; the server exports the
// histograms under GET /metrics and the slowest traces under
// GET /debug/traces.
//
// The package imports only the standard library, and everything is safe
// for concurrent use: histograms are lock-free (atomic counters), the
// trace buffer holds a short critical section, and all Pipeline observe
// methods are nil-receiver safe so instrumented call sites pay one nil
// check when observability is off.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-boundary latency histogram in seconds. Boundaries
// are upper bounds with Prometheus "le" semantics (a value v lands in the
// first bucket with v <= bound; values above every bound land in the
// implicit +Inf bucket). Observe is lock-free: one atomic add per bucket
// plus a CAS loop for the running sum, cheap enough to sit on the
// scheduler's submit/drain hot path.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    atomic.Uint64   // float64 bits
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds (seconds). An implicit +Inf bucket is always appended.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and multiplying by factor: the fixed log-bucketing every pipeline
// histogram uses (per-bucket resolution proportional to magnitude, which
// is how latency is read).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value (seconds).
func (h *Histogram) Observe(seconds float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + seconds)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records one duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time, exposition-ready view of a
// histogram: Bounds excludes +Inf; Cumulative has len(Bounds)+1 entries
// (Prometheus-style running totals, last = the +Inf bucket = Count). The
// +Inf-equals-Count invariant holds within a snapshot even while
// observations race it: Count is derived from the same bucket reads.
type HistogramSnapshot struct {
	Bounds     []float64
	Cumulative []uint64
	Sum        float64
	Count      uint64
}

// Snapshot reads the histogram. Concurrent Observes may or may not be
// included, but Cumulative is always non-decreasing and its last entry
// always equals Count.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]uint64, len(h.counts)),
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
		snap.Cumulative[i] = total
	}
	snap.Count = total
	snap.Sum = math.Float64frombits(h.sum.Load())
	return snap
}
