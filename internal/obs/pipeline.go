package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"time"
)

// Config sizes a Pipeline.
type Config struct {
	// TraceCapacity is the completed-trace ring size (the /debug/traces
	// working set). Default DefaultTraceCapacity; negative disables the
	// buffer entirely (histograms still work).
	TraceCapacity int
	// Logger, when set, makes every finished trace emit one structured
	// debug line carrying the trace id. Nil disables request logging.
	Logger *slog.Logger
}

// Pipeline is one deployment's shared observability hub: the fixed
// log-bucketed latency histograms every pipeline stage reports into, the
// completed-trace ring buffer, and the structured logger. One Pipeline is
// shared by the server, every session engine and cache, and the prefetch
// scheduler; all observe methods are nil-receiver safe so an
// uninstrumented deployment pays a single nil check per site.
type Pipeline struct {
	// RequestHit / RequestMiss / RequestShed split end-to-end /tile
	// latency by outcome (one histogram per outcome label value).
	RequestHit  *Histogram
	RequestMiss *Histogram
	RequestShed *Histogram
	// QueueWait is how long prefetch entries sat queued in the scheduler
	// before their DBMS fetch was issued (or joined another's).
	QueueWait *Histogram
	// BackendFetch is the DBMS fetch time, on the response path (sync
	// misses) and off it (prefetch fetches) alike.
	BackendFetch *Histogram
	// LeadTime is the prefetch lead time: cache insert of a prefetched
	// tile to its first consumption by a request. Long leads mean the
	// prefetcher ran usefully ahead; missing leads mean prefetches were
	// evicted unconsumed.
	LeadTime *Histogram
	// PushLead is the push-to-consume lead time: tile frame enqueued to a
	// session's push stream to that tile's request arriving. The push
	// analogue of LeadTime — a positive lead means the stream beat the pan.
	PushLead *Histogram
	// TileEncode is the wall time of tile payload encodings (JSON or
	// binary). With the encoded-payload cache on, only cache misses land
	// here — hits serve previously encoded bytes.
	TileEncode *Histogram
	// TileBytes is the size in bytes of /tile response payloads as written:
	// post content negotiation, post compression.
	TileBytes *Histogram

	// Traces is the bounded ring of completed request traces (nil when
	// disabled).
	Traces *TraceBuffer
	// Log is the deployment's structured logger (nil disables logging).
	Log *slog.Logger
}

// NewPipeline builds the shared observability hub. Bucket layouts are
// fixed log-scale ladders sized to each stage's expected range: request
// and backend latencies from 100µs to ~3.3s (the paper's 984 ms DBMS
// miss sits mid-ladder), queue waits from 10µs, lead times from 1 ms to
// ~33s (a prefetched tile may sit for many think-times before
// consumption), tile encodes from 1µs, and response payload sizes in
// byte-valued buckets from 64 B to ~1 GB.
func NewPipeline(cfg Config) *Pipeline {
	p := &Pipeline{
		RequestHit:   NewHistogram(ExpBuckets(100e-6, 2, 15)),
		RequestMiss:  NewHistogram(ExpBuckets(100e-6, 2, 15)),
		RequestShed:  NewHistogram(ExpBuckets(100e-6, 2, 15)),
		QueueWait:    NewHistogram(ExpBuckets(10e-6, 2, 15)),
		BackendFetch: NewHistogram(ExpBuckets(100e-6, 2, 15)),
		LeadTime:     NewHistogram(ExpBuckets(1e-3, 2, 15)),
		PushLead:     NewHistogram(ExpBuckets(1e-3, 2, 15)),
		TileEncode:   NewHistogram(ExpBuckets(1e-6, 2, 15)),
		TileBytes:    NewHistogram(ExpBuckets(64, 4, 12)),
		Log:          cfg.Logger,
	}
	if cfg.TraceCapacity >= 0 {
		p.Traces = NewTraceBuffer(cfg.TraceCapacity)
	}
	return p
}

// requestHistogram maps an outcome label to its histogram.
func (p *Pipeline) requestHistogram(outcome string) *Histogram {
	if p == nil {
		return nil
	}
	switch outcome {
	case OutcomeHit:
		return p.RequestHit
	case OutcomeMiss:
		return p.RequestMiss
	default:
		return p.RequestShed
	}
}

// ObserveQueueWait records one scheduler queue wait. Nil-safe.
func (p *Pipeline) ObserveQueueWait(d time.Duration) {
	if p == nil {
		return
	}
	p.QueueWait.ObserveDuration(d)
}

// ObserveBackendFetch records one DBMS fetch duration. Nil-safe.
func (p *Pipeline) ObserveBackendFetch(d time.Duration) {
	if p == nil {
		return
	}
	p.BackendFetch.ObserveDuration(d)
}

// ObserveLeadTime records one prefetch insert-to-consume lead. Nil-safe.
func (p *Pipeline) ObserveLeadTime(d time.Duration) {
	if p == nil {
		return
	}
	p.LeadTime.ObserveDuration(d)
}

// ObservePushLead records one push-to-consume lead. Nil-safe.
func (p *Pipeline) ObservePushLead(d time.Duration) {
	if p == nil {
		return
	}
	p.PushLead.ObserveDuration(d)
}

// ObserveTileEncode records one tile payload encode duration. Nil-safe.
func (p *Pipeline) ObserveTileEncode(d time.Duration) {
	if p == nil {
		return
	}
	p.TileEncode.ObserveDuration(d)
}

// ObserveTileBytes records the byte size of one written /tile response
// payload. Nil-safe.
func (p *Pipeline) ObserveTileBytes(n int) {
	if p == nil {
		return
	}
	p.TileBytes.Observe(float64(n))
}

// NewLogger builds a structured text logger at the named level (debug,
// info, warn, error). It is the -log-level flag's backing: requests log
// at debug, lifecycle events at info, failures at warn/error.
func NewLogger(w io.Writer, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: lv})), nil
}
