package prefetch

import (
	"math"
	"sync"
	"testing"
	"time"

	"forecache/internal/tile"
	"forecache/internal/trace"
)

func TestFeedbackColdStartIsStaticCurve(t *testing.T) {
	f := NewFeedbackCollector(5)
	for pos := 0; pos < 6; pos++ {
		want := math.Pow(positionBase, float64(pos))
		if got := f.Factor(pos); math.Abs(got-want) > 1e-12 {
			t.Errorf("cold Factor(%d) = %v, want static %v", pos, got, want)
		}
	}
}

func TestFeedbackLearnsObservedCurve(t *testing.T) {
	f := NewFeedbackCollector(3)
	// Position 0 consumed 100%, position 1 consumed ~50%, position 2 never.
	for i := 0; i < 200; i++ {
		f.Observe(trace.Foraging, "ab", 0, true)
		f.Observe(trace.Foraging, "ab", 1, i%2 == 0)
		f.Observe(trace.Foraging, "ab", 2, false)
	}
	if got := f.Factor(0); got != 1 {
		t.Errorf("Factor(0) = %v, want 1", got)
	}
	if got := f.Factor(1); math.Abs(got-0.5) > 0.1 {
		t.Errorf("Factor(1) = %v, want ~0.5 (observed half consumption)", got)
	}
	if got := f.Factor(2); got != minFactor {
		t.Errorf("Factor(2) = %v, want the floor %v (never consumed)", got, minFactor)
	}
	if n := f.Observations(); n != 600 {
		t.Errorf("Observations = %d, want 600", n)
	}
	rates := f.ModelRates()
	if v := rates["ab"]; v[0] != 300 || v[1] != 300 {
		t.Errorf("ModelRates[ab] = %v, want [300 300]", v)
	}
}

func TestFeedbackCurveMonotone(t *testing.T) {
	f := NewFeedbackCollector(4)
	// Consumption noise makes position 2 look BETTER than position 1; the
	// exported curve must still be non-increasing so utility order can
	// never invert the recommenders' rank order.
	for i := 0; i < 100; i++ {
		f.Observe(trace.Foraging, "ab", 0, true)
		f.Observe(trace.Foraging, "ab", 1, i%5 == 0) // 20%
		f.Observe(trace.Foraging, "ab", 2, i%2 == 0) // 50%
		f.Observe(trace.Foraging, "ab", 3, false)
	}
	curve := f.Curve()
	for p := 1; p < len(curve); p++ {
		if curve[p] > curve[p-1]+1e-12 {
			t.Fatalf("curve not monotone: %v", curve)
		}
	}
	if math.Abs(curve[1]-0.2) > 0.1 {
		t.Errorf("curve[1] = %v, want ~0.2", curve[1])
	}
	if curve[2] > curve[1] {
		t.Errorf("curve[2] = %v must be clamped to curve[1] = %v", curve[2], curve[1])
	}
}

func TestFeedbackDeepPositionsClampToLastBucket(t *testing.T) {
	f := NewFeedbackCollector(2)
	for i := 0; i < 100; i++ {
		f.Observe(trace.Foraging, "ab", 0, true)
		f.Observe(trace.Foraging, "ab", 7, i%4 == 0) // clamps into bucket 1
	}
	if got, want := f.Factor(9), f.Factor(1); got != want {
		t.Errorf("Factor(9) = %v, want last bucket's %v", got, want)
	}
}

func TestFeedbackConcurrentObserve(t *testing.T) {
	f := NewFeedbackCollector(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Observe(trace.Foraging, "m", i%4, (i+g)%3 == 0)
				_ = f.Factor(i % 6)
				if i%100 == 0 {
					_ = f.Curve()
					_ = f.ModelRates()
				}
			}
		}(g)
	}
	wg.Wait()
	if n := f.Observations(); n != 8*500 {
		t.Errorf("Observations = %d, want %d", n, 8*500)
	}
}

// TestSchedulerUsesLearnedCurve: once the collector has learned that
// position 1 is consumed as often as position 0, a same-score two-entry
// batch no longer loses its second entry to a positionally-discounted
// admission fight it would lose under the static curve.
func TestSchedulerUsesLearnedCurve(t *testing.T) {
	newCollector := func(flat bool) *FeedbackCollector {
		f := NewFeedbackCollector(4)
		for i := 0; i < 100; i++ {
			f.Observe(trace.Foraging, "ab", 0, true)
			f.Observe(trace.Foraging, "ab", 1, flat) // flat: consumed as often as pos 0
		}
		return f
	}
	run := func(f *FeedbackCollector) Stats {
		clk := newFakeClock()
		s, _ := parkedScheduler(t, clk, Config{GlobalQueue: 2, QueuePerSession: 8, Utility: f})
		// incumbent occupies both slots...
		s.Submit("old", []Request{{Coord: coordAt(0), Score: 1}, {Coord: coordAt(1), Score: 1}})
		// ...and the newcomer's two equal-score entries challenge them.
		s.Submit("new", []Request{{Coord: coordAt(2), Score: 1}, {Coord: coordAt(3), Score: 1}})
		return s.Stats()
	}
	// Learned-flat curve: every position ties, incumbents keep both slots.
	flat := run(newCollector(true))
	if flat.QueueDepths["new"] != 0 || flat.Shed != 0 {
		t.Errorf("flat curve: depths %v shed %d, want incumbents to hold both slots",
			flat.QueueDepths, flat.Shed)
	}
	// Learned-steep curve (position 1 never consumed): the newcomer's
	// front-runner displaces the incumbent's worthless tail.
	steep := run(newCollector(false))
	if steep.QueueDepths["new"] != 1 || steep.Shed != 1 {
		t.Errorf("steep curve: depths %v shed %d, want the tail displaced",
			steep.QueueDepths, steep.Shed)
	}
	// The stats snapshot exports the curve it decided with.
	if st := run(newCollector(false)); len(st.UtilityCurve) == 0 || st.UtilityObservations == 0 {
		t.Errorf("stats missing utility curve/observations: %+v", st)
	}
}

// TestSubmitShedPositionContract pins the position audit of the Submit
// shed-heap bookkeeping: an entry's admission utility and its competition
// utility in the same-batch shed heap price the same 0-indexed rank
// (sq.queued before the counter increments, sq.queued-1 after), and a
// later same-batch entry can therefore never displace an earlier one.
func TestSubmitShedPositionContract(t *testing.T) {
	cases := []struct {
		name       string
		incumbents []float64 // session "inc", submitted first
		batch      []float64 // session "new", submitted at saturation
		globalQ    int
		wantDepths map[string]int
		wantShed   int
		wantDrop   int
	}{
		{
			// Utilities (base 0.85): inc0 at rank 0 = 1.0, inc1 at rank 1
			// = 0.85*0.85 = 0.7225. new0 priced at its would-be rank 0 =
			// 0.9 > 0.7225, so inc1 is shed and new0 joins the heap at the
			// same rank it was admitted at; new1 priced at rank 1 =
			// 0.8*0.85 = 0.68 < the surviving minimum 0.9 -> dropped.
			name:       "newcomer priced at its would-be rank",
			incumbents: []float64{1.0, 0.85 + 1e-9},
			batch:      []float64{0.9, 0.8},
			globalQ:    2,
			wantDepths: map[string]int{"inc": 1, "new": 1},
			wantShed:   1,
			wantDrop:   1,
		},
		{
			// All three of the batch's entries outrank both incumbents at
			// their respective ranks; the third still drops because its own
			// batch-mates occupy the queue and same-batch entries never
			// shed each other (score-desc order x non-increasing factors).
			name:       "same-batch entries never shed each other",
			incumbents: []float64{0.1, 0.1},
			batch:      []float64{1.0, 1.0, 1.0},
			globalQ:    2,
			wantDepths: map[string]int{"inc": 0, "new": 2},
			wantShed:   2,
			wantDrop:   1,
		},
		{
			// Admission at rank r is priced with factor^r, not factor^(r-1):
			// at GlobalQueue=1 the second equal-score entry prices at
			// 1*0.85 < the first's competition utility 1.0 and drops. (An
			// off-by-one pricing it at rank 0 would tie at 1.0 and also
			// drop on the keep-incumbent rule, but an off-by-one in the
			// heap push pricing the first entry at rank 1 would let the
			// second shed it — pinned here.)
			name:       "equal scores keep the earlier entry",
			incumbents: []float64{},
			batch:      []float64{1.0, 1.0},
			globalQ:    1,
			wantDepths: map[string]int{"new": 1},
			wantShed:   0,
			wantDrop:   1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			s, _ := parkedScheduler(t, clk, Config{GlobalQueue: tc.globalQ, QueuePerSession: 8})
			next := 0
			mkBatch := func(scores []float64) []Request {
				reqs := make([]Request, len(scores))
				for i, sc := range scores {
					reqs[i] = Request{Coord: coordAt(next), Score: sc}
					next++
				}
				return reqs
			}
			if len(tc.incumbents) > 0 {
				s.Submit("inc", mkBatch(tc.incumbents))
			}
			s.Submit("new", mkBatch(tc.batch))
			st := s.Stats()
			for session, want := range tc.wantDepths {
				if got := st.QueueDepths[session]; got != want {
					t.Errorf("depth[%s] = %d, want %d (%+v)", session, got, want, st)
				}
			}
			if st.Shed != tc.wantShed {
				t.Errorf("Shed = %d, want %d", st.Shed, tc.wantShed)
			}
			if st.Dropped != tc.wantDrop {
				t.Errorf("Dropped = %d, want %d", st.Dropped, tc.wantDrop)
			}
		})
	}
}

// TestDecayedUtilityFactorMatchesStatic: the factor-threaded variant and
// the static helper agree everywhere the static curve applies.
func TestDecayedUtilityFactorMatchesStatic(t *testing.T) {
	hl := 50 * time.Millisecond
	for _, score := range []float64{2, 0, -1} {
		for _, age := range []time.Duration{0, hl, 3 * hl} {
			for pos := 0; pos < 5; pos++ {
				want := decayedUtility(score, age, hl, pos)
				got := decayedUtilityFactor(score, age, hl, math.Pow(positionBase, float64(pos)))
				if math.Abs(got-want) > 1e-12 && got != want {
					t.Fatalf("factor variant diverges at score=%v age=%v pos=%d: %v vs %v",
						score, age, pos, got, want)
				}
			}
		}
	}
	_ = tile.Coord{} // keep the tile import with the shared helpers
}

// TestAllocationEvidenceDecay is the half-life table test for the
// per-(phase, model) tallies: a bucket's effective rate halves for every
// half-life of phase outcomes it sits out, a steadily-observed bucket
// barely decays between its own observations, and a silent bucket's first
// new observation re-learns fast instead of crawling at the EWMA alpha.
func TestAllocationEvidenceDecay(t *testing.T) {
	const ph = trace.Foraging
	cases := []struct {
		name     string
		halfLife float64
		quiet    int     // outcomes other models produce after a's warm-up
		wantMax  float64 // a's effective rate must fall to/below this
		wantMin  float64 // ...but not below this
	}{
		{"one half-life", 50, 50, 0.51, 0.49},
		{"two half-lives", 50, 100, 0.26, 0.24},
		{"fresh bucket barely decays", 1000, 10, 1.01, 0.99},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := NewFeedbackCollector(5)
			f.SetAllocationHalfLife(tc.halfLife)
			// Warm a to rate 1.0 (first observation seeds the EWMA).
			for i := 0; i < 40; i++ {
				f.Observe(ph, "a", 0, true)
			}
			before, obs := f.AllocationRate(ph, "a")
			if before < 0.999 || obs != 40 {
				t.Fatalf("warm rate = %v obs %d, want ~1.0 / 40", before, obs)
			}
			// a goes silent while b produces the phase's outcomes.
			for i := 0; i < tc.quiet; i++ {
				f.Observe(ph, "b", 0, true)
			}
			got, obs := f.AllocationRate(ph, "a")
			if got > tc.wantMax || got < tc.wantMin {
				t.Errorf("after %d quiet outcomes rate = %v, want in [%v, %v]",
					tc.quiet, got, tc.wantMin, tc.wantMax)
			}
			// The lifetime observation count (the warmup gate) never decays.
			if obs != 40 {
				t.Errorf("obs decayed to %d, want 40", obs)
			}
			// Another phase's buckets are untouched by this phase's clock.
			f.Observe(trace.Sensemaking, "a", 0, true)
			if r, _ := f.AllocationRate(trace.Sensemaking, "a"); r != 1 {
				t.Errorf("other phase's fresh rate = %v, want 1", r)
			}
		})
	}

	// Fast re-learn: after a long silence, a's decayed evidence means the
	// next observations move the rate far faster than alpha alone would.
	f := NewFeedbackCollector(5)
	f.SetAllocationHalfLife(25)
	for i := 0; i < 40; i++ {
		f.Observe(ph, "a", 0, true) // rate 1.0
	}
	for i := 0; i < 200; i++ {
		f.Observe(ph, "b", 0, true) // 8 half-lives of silence for a
	}
	f.Observe(ph, "a", 0, false) // first post-shift outcome: a miss
	got, _ := f.AllocationRate(ph, "a")
	if got > 0.01 {
		t.Errorf("post-silence rate = %v, want near 0 (decayed evidence + miss)", got)
	}
}

// TestAllocationRatesBatchedMatchesSingle: the batched hot-path probe and
// the single-model probe must agree, including on decay.
func TestAllocationRatesBatchedMatchesSingle(t *testing.T) {
	f := NewFeedbackCollector(5)
	f.SetAllocationHalfLife(30)
	for i := 0; i < 50; i++ {
		f.Observe(trace.Navigation, "a", i%5, i%3 != 0)
		if i%4 == 0 {
			f.Observe(trace.Navigation, "b", i%5, i%2 == 0)
		}
	}
	rates, obs := f.AllocationRates(trace.Navigation, []string{"a", "b", "ghost"})
	for i, m := range []string{"a", "b", "ghost"} {
		r, o := f.AllocationRate(trace.Navigation, m)
		if math.Abs(rates[i]-r) > 1e-12 || obs[i] != o {
			t.Errorf("model %s: batched (%v, %d) != single (%v, %d)", m, rates[i], obs[i], r, o)
		}
	}
}
