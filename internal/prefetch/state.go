package prefetch

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"forecache/internal/trace"
)

// This file is the FeedbackCollector's snapshot surface (internal/persist):
// everything the collector learned online — the position-utility curve
// buckets, the per-(phase, model) allocation rate tables and the per-phase
// staleness clocks they decay against — serializes to a deterministic,
// versioned payload so a warm restart resumes learning exactly where the
// last process stopped instead of re-paying the warmup tax.

// FeedbackStateVersion is the snapshot section format version for
// FeedbackCollector state. Bump it when feedbackState changes shape;
// mismatched sections cold-start rather than misdecode.
const FeedbackStateVersion = 1

// feedbackState is the serialized collector. Field order (and the sorted
// alloc slice) is deterministic so export→import→export round-trips byte
// for byte.
type feedbackState struct {
	// Rate / Obs are the position-utility curve buckets (index = batch
	// position): EWMA consumption rate and lifetime observation count.
	Rate []float64 `json:"rate"`
	Obs  []int     `json:"obs"`
	// ModelHits / ModelMisses are the per-model consumption tallies.
	ModelHits   map[string]int `json:"model_hits"`
	ModelMisses map[string]int `json:"model_misses"`
	// PhaseN is the per-phase outcome total: the staleness clock the
	// allocation buckets decay against.
	PhaseN map[string]int `json:"phase_outcomes"`
	// Alloc is the per-(phase, model) allocation rate table, sorted by
	// (phase, model).
	Alloc []allocState `json:"alloc"`
}

// allocState is one serialized allocation bucket.
type allocState struct {
	Phase string  `json:"phase"`
	Model string  `json:"model"`
	Rate  float64 `json:"rate"`
	Obs   int     `json:"obs"`
	LastN int     `json:"last_n"`
}

// ExportState serializes the collector's learned state under one lock
// hold. The payload is self-contained and deterministic: re-exporting an
// unchanged collector yields identical bytes.
func (f *FeedbackCollector) ExportState() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := feedbackState{
		Rate:        append([]float64(nil), f.rate...),
		Obs:         append([]int(nil), f.obs...),
		ModelHits:   copyIntMap(f.modelHits),
		ModelMisses: copyIntMap(f.modelMisses),
		PhaseN:      make(map[string]int, len(f.phaseN)),
	}
	for ph, n := range f.phaseN {
		st.PhaseN[ph.String()] = n
	}
	for key, b := range f.phaseAlloc {
		st.Alloc = append(st.Alloc, allocState{
			Phase: key.ph.String(), Model: key.model,
			Rate: b.rate, Obs: b.obs, LastN: b.lastN,
		})
	}
	sort.Slice(st.Alloc, func(i, j int) bool {
		if st.Alloc[i].Phase != st.Alloc[j].Phase {
			return st.Alloc[i].Phase < st.Alloc[j].Phase
		}
		return st.Alloc[i].Model < st.Alloc[j].Model
	})
	return json.Marshal(st)
}

// ImportState validates a previously exported payload and replaces the
// collector's learned state with it. On any validation failure the
// collector is left untouched (cold start), never half-imported. A
// snapshot taken at a different prefetch budget K restores the
// overlapping curve prefix; deeper positions stay cold.
func (f *FeedbackCollector) ImportState(raw []byte) error {
	var st feedbackState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("prefetch: feedback state: %w", err)
	}
	if len(st.Rate) != len(st.Obs) {
		return fmt.Errorf("prefetch: feedback state: %d rates vs %d obs buckets", len(st.Rate), len(st.Obs))
	}
	for i, r := range st.Rate {
		if !validRate(r) {
			return fmt.Errorf("prefetch: feedback state: rate[%d] = %v outside [0, 1]", i, r)
		}
		if st.Obs[i] < 0 {
			return fmt.Errorf("prefetch: feedback state: obs[%d] = %d negative", i, st.Obs[i])
		}
	}
	for m, n := range st.ModelHits {
		if n < 0 {
			return fmt.Errorf("prefetch: feedback state: model %q hits %d negative", m, n)
		}
	}
	for m, n := range st.ModelMisses {
		if n < 0 {
			return fmt.Errorf("prefetch: feedback state: model %q misses %d negative", m, n)
		}
	}
	phaseN := make(map[trace.Phase]int, len(st.PhaseN))
	for name, n := range st.PhaseN {
		ph, err := trace.ParsePhase(name)
		if err != nil {
			return fmt.Errorf("prefetch: feedback state: %w", err)
		}
		if n < 0 {
			return fmt.Errorf("prefetch: feedback state: phase %s outcome total %d negative", name, n)
		}
		phaseN[ph] = n
	}
	alloc := make(map[phaseModel]*allocBucket, len(st.Alloc))
	for _, a := range st.Alloc {
		ph, err := trace.ParsePhase(a.Phase)
		if err != nil {
			return fmt.Errorf("prefetch: feedback state: %w", err)
		}
		key := phaseModel{ph: ph, model: a.Model}
		if _, dup := alloc[key]; dup {
			return fmt.Errorf("prefetch: feedback state: duplicate bucket (%s, %s)", a.Phase, a.Model)
		}
		if !validRate(a.Rate) {
			return fmt.Errorf("prefetch: feedback state: bucket (%s, %s) rate %v outside [0, 1]", a.Phase, a.Model, a.Rate)
		}
		if a.Obs <= 0 {
			return fmt.Errorf("prefetch: feedback state: bucket (%s, %s) has %d observations", a.Phase, a.Model, a.Obs)
		}
		if a.LastN < 0 || a.LastN > phaseN[ph] {
			return fmt.Errorf("prefetch: feedback state: bucket (%s, %s) clock %d outside [0, %d]", a.Phase, a.Model, a.LastN, phaseN[ph])
		}
		alloc[key] = &allocBucket{rate: a.Rate, obs: a.Obs, lastN: a.LastN}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	// The curve restores the overlapping prefix: the collector's bucket
	// count is sized by the CURRENT deployment's K, and observations the
	// old deployment made at deeper positions do not apply to it.
	n := copy(f.rate, st.Rate)
	copy(f.obs, st.Obs)
	for i := n; i < len(f.rate); i++ {
		f.rate[i], f.obs[i] = 0, 0
	}
	f.modelHits = copyIntMap(st.ModelHits)
	f.modelMisses = copyIntMap(st.ModelMisses)
	f.phaseN = phaseN
	f.phaseAlloc = alloc
	return nil
}

func validRate(r float64) bool {
	return !math.IsNaN(r) && r >= 0 && r <= 1
}

func copyIntMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
