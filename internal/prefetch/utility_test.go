package prefetch

import (
	"math"
	"sync"
	"testing"
	"time"

	"forecache/internal/tile"
)

// fakeClock is a hand-advanced clock: decay becomes testable without sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestDecayedUtilityTable(t *testing.T) {
	const hl = 100 * time.Millisecond
	cases := []struct {
		name     string
		score    float64
		age      time.Duration
		halfLife time.Duration
		pos      int
		want     float64
	}{
		{"fresh front-runner keeps its score", 2, 0, hl, 0, 2},
		{"one half-life halves", 2, hl, hl, 0, 1},
		{"two half-lives quarter", 2, 2 * hl, hl, 0, 0.5},
		{"zero half-life disables age decay", 2, time.Hour, 0, 0, 2},
		{"position 1 pays one base factor", 1, 0, hl, 1, positionBase},
		{"position 3 compounds", 1, 0, hl, 3, positionBase * positionBase * positionBase},
		{"age and position compose", 2, hl, hl, 1, positionBase},
		{"negative scores decay downward", -1, hl, hl, 0, -2},
		{"negative with position", -1, 0, hl, 1, -1 / positionBase},
		{"zero score is inert", 0, time.Hour, hl, 5, 0},
		{"negative infinity stays lowest", math.Inf(-1), 0, hl, 0, math.Inf(-1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := decayedUtility(tc.score, tc.age, tc.halfLife, tc.pos)
			if math.Abs(got-tc.want) > 1e-12 && got != tc.want {
				t.Errorf("decayedUtility(%v, %v, %v, %d) = %v, want %v",
					tc.score, tc.age, tc.halfLife, tc.pos, got, tc.want)
			}
		})
	}
}

// parkedScheduler builds a scheduler whose single worker is parked on a
// gated warmup fetch, so queue contents are fully deterministic until the
// gate opens.
func parkedScheduler(t *testing.T, clk *fakeClock, cfg Config) (*Scheduler, *fakeStore) {
	t.Helper()
	store := newFakeStore()
	store.gate = make(chan struct{})
	store.started = make(chan tile.Coord, 64)
	cfg.Workers = 1
	cfg.clock = clk.now
	s := NewScheduler(store, cfg)
	t.Cleanup(func() {
		select {
		case <-store.gate:
		default:
			close(store.gate)
		}
		s.Close()
	})
	s.Submit("warmup", []Request{{Coord: tile.Coord{Level: 1}, Score: 1}})
	<-store.started
	return s, store
}

// TestUtilityDecayOrdering: table-driven scenarios for the global admission
// control — which session's entries survive when the budget saturates.
func TestUtilityDecayOrdering(t *testing.T) {
	type batch struct {
		session string
		scores  []float64
		advance time.Duration // clock advance before this batch submits
	}
	cases := []struct {
		name       string
		cfg        Config
		batches    []batch
		wantDepths map[string]int
		wantShed   int
		wantDrop   int
	}{
		{
			name: "stale entries decay past fresher equals",
			cfg:  Config{GlobalQueue: 2, DecayHalfLife: 100 * time.Millisecond, QueuePerSession: 8},
			batches: []batch{
				{session: "stale", scores: []float64{1, 1}},
				{session: "fresh", scores: []float64{1, 1}, advance: time.Second},
			},
			wantDepths: map[string]int{"stale": 0, "fresh": 2},
			wantShed:   2,
		},
		{
			name: "without decay a front-runner tie keeps the incumbent",
			cfg:  Config{GlobalQueue: 1, QueuePerSession: 8},
			batches: []batch{
				{session: "stale", scores: []float64{1}},
				{session: "fresh", scores: []float64{1}, advance: time.Second},
			},
			wantDepths: map[string]int{"stale": 1, "fresh": 0},
			wantDrop:   1,
		},
		{
			name: "position decay lets a fresh front-runner displace an incumbent tail",
			cfg:  Config{GlobalQueue: 2, QueuePerSession: 8},
			batches: []batch{
				{session: "stale", scores: []float64{1, 1}},
				{session: "fresh", scores: []float64{1, 1}, advance: time.Second},
			},
			// fresh's position-0 entry (utility 1) evicts stale's position-1
			// entry (utility positionBase); fresh's own position-1 entry then
			// ties stale's surviving front-runner and is dropped.
			wantDepths: map[string]int{"stale": 1, "fresh": 1},
			wantShed:   1,
			wantDrop:   1,
		},
		{
			name: "higher confidence evicts regardless of age",
			cfg:  Config{GlobalQueue: 2, QueuePerSession: 8},
			batches: []batch{
				{session: "low", scores: []float64{1, 1}},
				{session: "high", scores: []float64{2, 2}},
			},
			wantDepths: map[string]int{"low": 0, "high": 2},
			wantShed:   2,
		},
		{
			name: "negative scores age toward minus infinity",
			cfg:  Config{GlobalQueue: 1, DecayHalfLife: 100 * time.Millisecond, QueuePerSession: 8},
			batches: []batch{
				{session: "stale", scores: []float64{-1}},
				{session: "fresh", scores: []float64{-1}, advance: time.Second},
			},
			wantDepths: map[string]int{"stale": 0, "fresh": 1},
			wantShed:   1,
		},
		{
			name: "position decay sheds a long batch's speculative tail",
			cfg:  Config{GlobalQueue: 4, QueuePerSession: 8},
			batches: []batch{
				{session: "greedy", scores: []float64{1, 1, 1, 1}},
				{session: "modest", scores: []float64{1, 1, 1}},
			},
			// modest's first two entries (positions 0, 1) outrank greedy's
			// tail (positions 2, 3); its third (position 2) ties greedy's
			// surviving position-2 utility and is dropped.
			wantDepths: map[string]int{"greedy": 2, "modest": 2},
			wantShed:   2,
			wantDrop:   1,
		},
		{
			name: "fresh high scores shed across several sessions",
			cfg:  Config{GlobalQueue: 3, DecayHalfLife: 100 * time.Millisecond, QueuePerSession: 8},
			batches: []batch{
				{session: "a", scores: []float64{0.3}},
				{session: "b", scores: []float64{0.5}},
				{session: "c", scores: []float64{0.4}},
				{session: "d", scores: []float64{2, 2}, advance: 300 * time.Millisecond},
			},
			// After 3 half-lives a/b/c hold 0.0375..0.0625; d's two entries
			// evict the weakest two (a then c).
			wantDepths: map[string]int{"a": 0, "b": 1, "c": 0, "d": 2},
			wantShed:   2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			s, _ := parkedScheduler(t, clk, tc.cfg)
			next := 0
			for _, b := range tc.batches {
				clk.advance(b.advance)
				reqs := make([]Request, len(b.scores))
				for i, sc := range b.scores {
					reqs[i] = Request{Coord: coordAt(next), Score: sc}
					next++
				}
				s.Submit(b.session, reqs)
			}
			st := s.Stats()
			for session, want := range tc.wantDepths {
				if got := st.QueueDepths[session]; got != want {
					t.Errorf("queue depth[%s] = %d, want %d (stats %+v)", session, got, want, st)
				}
			}
			if st.Shed != tc.wantShed {
				t.Errorf("Shed = %d, want %d", st.Shed, tc.wantShed)
			}
			if st.Dropped != tc.wantDrop {
				t.Errorf("Dropped = %d, want %d", st.Dropped, tc.wantDrop)
			}
			if st.Pending > tc.cfg.GlobalQueue {
				t.Errorf("Pending = %d exceeds global budget %d", st.Pending, tc.cfg.GlobalQueue)
			}
			if st.PeakPending > tc.cfg.GlobalQueue {
				t.Errorf("PeakPending = %d exceeds global budget %d", st.PeakPending, tc.cfg.GlobalQueue)
			}
		})
	}
}

// TestShedAccounting: shed entries are accounted exactly once — after a
// drain every accepted entry is cancelled, shed, completed, or errored.
func TestShedAccounting(t *testing.T) {
	clk := newFakeClock()
	s, store := parkedScheduler(t, clk, Config{GlobalQueue: 2, DecayHalfLife: time.Millisecond, QueuePerSession: 8})
	s.Submit("a", []Request{{Coord: coordAt(0), Score: 1}, {Coord: coordAt(1), Score: 1}})
	clk.advance(time.Second)
	s.Submit("b", []Request{{Coord: coordAt(2), Score: 1}, {Coord: coordAt(3), Score: 1}})
	close(store.gate)
	s.Drain()
	st := s.Stats()
	if got := st.Cancelled + st.Completed + st.Errors + st.Shed; got != st.Queued {
		t.Errorf("Cancelled+Completed+Errors+Shed = %d, want Queued = %d (%+v)", got, st.Queued, st)
	}
	if store.count(coordAt(0)) != 0 || store.count(coordAt(1)) != 0 {
		t.Error("shed entries must never reach the DBMS")
	}
	if store.count(coordAt(2)) != 1 || store.count(coordAt(3)) != 1 {
		t.Error("admitted entries should be fetched")
	}
}

// TestPressureSignal: pressure tracks global queue occupancy and returns to
// zero when the queue drains.
func TestPressureSignal(t *testing.T) {
	clk := newFakeClock()
	s, store := parkedScheduler(t, clk, Config{GlobalQueue: 8, QueuePerSession: 8})
	if p := s.Pressure(); p != 0 {
		t.Errorf("idle pressure = %v, want 0", p)
	}
	batch := func(n, from int) []Request {
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{Coord: coordAt(from + i), Score: 1}
		}
		return reqs
	}
	s.Submit("a", batch(4, 0))
	if p := s.Pressure(); p != 0.5 {
		t.Errorf("pressure at 4/8 = %v, want 0.5", p)
	}
	s.Submit("b", batch(4, 10))
	if p := s.Pressure(); p != 1 {
		t.Errorf("pressure at 8/8 = %v, want 1", p)
	}
	if st := s.Stats(); st.Pressure != 1 {
		t.Errorf("Stats().Pressure = %v, want 1", st.Pressure)
	}
	close(store.gate)
	s.Drain()
	if p := s.Pressure(); p != 0 {
		t.Errorf("drained pressure = %v, want 0", p)
	}
}

// TestPressureZeroWithoutGlobalBudget: no budget, no backpressure signal.
func TestPressureZeroWithoutGlobalBudget(t *testing.T) {
	clk := newFakeClock()
	s, _ := parkedScheduler(t, clk, Config{QueuePerSession: 64})
	s.Submit("a", []Request{{Coord: coordAt(0), Score: 1}, {Coord: coordAt(1), Score: 1}})
	if p := s.Pressure(); p != 0 {
		t.Errorf("pressure without global budget = %v, want 0", p)
	}
}

// TestGlobalBudgetStillPiggybacksInflight: at global saturation, duplicate
// requests still coalesce onto in-flight fetches at zero queue cost.
func TestGlobalBudgetStillPiggybacksInflight(t *testing.T) {
	clk := newFakeClock()
	s, store := parkedScheduler(t, clk, Config{GlobalQueue: 1, QueuePerSession: 8})
	// The warmup fetch for L1 is in flight; the global queue is filled by a.
	s.Submit("a", []Request{{Coord: coordAt(0), Score: 5}})
	delivered := make(chan tile.Coord, 1)
	accepted := s.Submit("b", []Request{
		{Coord: tile.Coord{Level: 1}, Score: 0.1, Deliver: func(tl *tile.Tile) { delivered <- tl.Coord }},
	})
	if accepted != 1 {
		t.Errorf("accepted = %d, want 1 (piggybacked on the in-flight fetch)", accepted)
	}
	close(store.gate)
	s.Drain()
	select {
	case got := <-delivered:
		if got != (tile.Coord{Level: 1}) {
			t.Errorf("delivered %v, want the in-flight tile", got)
		}
	default:
		t.Error("piggybacked request at global saturation was never delivered")
	}
	if st := s.Stats(); st.Shed != 0 {
		t.Errorf("Shed = %d, want 0 (coalescing costs no queue slot)", st.Shed)
	}
}

// TestQueueDepthsSnapshot: /stats-style per-session queue depths.
func TestQueueDepthsSnapshot(t *testing.T) {
	clk := newFakeClock()
	s, store := parkedScheduler(t, clk, Config{QueuePerSession: 8})
	s.Submit("a", []Request{{Coord: coordAt(0), Score: 1}, {Coord: coordAt(1), Score: 1}})
	s.Submit("b", []Request{{Coord: coordAt(2), Score: 1}})
	st := s.Stats()
	want := map[string]int{"warmup": 0, "a": 2, "b": 1}
	for id, depth := range want {
		if st.QueueDepths[id] != depth {
			t.Errorf("QueueDepths[%s] = %d, want %d", id, st.QueueDepths[id], depth)
		}
	}
	if len(st.QueueDepths) != len(want) {
		t.Errorf("QueueDepths = %v, want exactly %v", st.QueueDepths, want)
	}
	close(store.gate)
	s.Drain()
	if st := s.Stats(); st.QueueDepths["a"] != 0 || st.QueueDepths["b"] != 0 {
		t.Errorf("drained QueueDepths = %v, want zeros", st.QueueDepths)
	}
}

// TestDecayDoesNotReorderWithinBatch: decay is a cross-session admission
// currency; within one session's batch the dispatch order stays score-desc.
func TestDecayDoesNotReorderWithinBatch(t *testing.T) {
	clk := newFakeClock()
	s, store := parkedScheduler(t, clk, Config{GlobalQueue: 16, DecayHalfLife: time.Millisecond, QueuePerSession: 8})
	s.Submit("s1", []Request{
		{Coord: coordAt(0), Score: 0.1},
		{Coord: coordAt(1), Score: 0.9},
		{Coord: coordAt(2), Score: 0.5},
	})
	clk.advance(time.Hour) // ancient, but order within the session holds
	close(store.gate)
	s.Drain()
	order := store.fetchOrder()[1:]
	want := []tile.Coord{coordAt(1), coordAt(2), coordAt(0)}
	for i, c := range want {
		if order[i] != c {
			t.Fatalf("fetch order = %v, want %v", order, want)
		}
	}
}
