package prefetch

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"forecache/internal/backend"
	"forecache/internal/obs"
	"forecache/internal/tile"
)

// fakeStore is a controllable backend.Store: it records fetch order, can
// block fetches on a gate, and can announce fetch starts.
type fakeStore struct {
	mu      sync.Mutex
	order   []tile.Coord
	counts  map[tile.Coord]int
	gate    chan struct{}   // non-nil: each FetchQuiet waits for one receive
	started chan tile.Coord // non-nil: fetch starts are announced here
}

func newFakeStore() *fakeStore {
	return &fakeStore{counts: make(map[tile.Coord]int)}
}

func (f *fakeStore) FetchQuiet(c tile.Coord) (*tile.Tile, error) {
	f.mu.Lock()
	f.order = append(f.order, c)
	f.counts[c]++
	f.mu.Unlock()
	if f.started != nil {
		f.started <- c
	}
	if f.gate != nil {
		<-f.gate
	}
	return &tile.Tile{Coord: c, Size: 1}, nil
}

func (f *fakeStore) Fetch(c tile.Coord) (*tile.Tile, error) { return f.FetchQuiet(c) }
func (f *fakeStore) Latency() backend.LatencyModel          { return backend.LatencyModel{} }
func (f *fakeStore) Pyramid() *tile.Pyramid                 { return nil }

func (f *fakeStore) count(c tile.Coord) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[c]
}

func (f *fakeStore) fetchOrder() []tile.Coord {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]tile.Coord(nil), f.order...)
}

func coordAt(i int) tile.Coord { return tile.Coord{Level: 5, Y: i / 32, X: i % 32} }

// TestCoalescingSharedTile: N sessions wanting the same tile trigger one
// DBMS fetch, and every session's Deliver callback still runs.
func TestCoalescingSharedTile(t *testing.T) {
	store := newFakeStore()
	store.gate = make(chan struct{})
	s := NewScheduler(store, Config{Workers: 4})
	defer s.Close()

	shared := tile.Coord{Level: 3, Y: 1, X: 1}
	var deliveredMu sync.Mutex
	delivered := map[string]int{}
	const sessions = 6
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("s%d", i)
		s.Submit(id, []Request{{
			Coord: shared,
			Score: 1,
			Deliver: func(tl *tile.Tile) {
				deliveredMu.Lock()
				delivered[id]++
				deliveredMu.Unlock()
			},
		}})
	}
	close(store.gate)
	s.Drain()

	if got := store.count(shared); got != 1 {
		t.Errorf("shared tile fetched %d times, want exactly 1", got)
	}
	deliveredMu.Lock()
	defer deliveredMu.Unlock()
	if len(delivered) != sessions {
		t.Errorf("delivered to %d sessions, want %d (%v)", len(delivered), sessions, delivered)
	}
	st := s.Stats()
	if st.Completed != sessions {
		t.Errorf("Completed = %d, want %d", st.Completed, sessions)
	}
	if st.Coalesced != sessions-1 {
		t.Errorf("Coalesced = %d, want %d", st.Coalesced, sessions-1)
	}
}

// TestCoalescingStress hammers the scheduler from many goroutines over an
// overlapping coordinate set (run with -race) and checks the accounting
// invariant: every accepted entry ends cancelled, completed, or errored.
func TestCoalescingStress(t *testing.T) {
	store := newFakeStore()
	s := NewScheduler(store, Config{Workers: 8, QueuePerSession: 1024})
	defer s.Close()

	const goroutines = 8
	const rounds = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("sess-%d", g)
			for r := 0; r < rounds; r++ {
				batch := make([]Request, 0, 8)
				for i := 0; i < 8; i++ {
					batch = append(batch, Request{Coord: coordAt((r + i) % 16), Score: float64(i)})
				}
				s.Submit(id, batch)
			}
		}(g)
	}
	wg.Wait()
	s.Drain()

	st := s.Stats()
	if st.Pending != 0 {
		t.Errorf("Pending = %d after Drain, want 0", st.Pending)
	}
	if got := st.Cancelled + st.Completed + st.Errors; got != st.Queued {
		t.Errorf("Cancelled+Completed+Errors = %d, want Queued = %d (stats %+v)", got, st.Queued, st)
	}
	// Whether coalescing occurs here depends on timing (fetches are
	// instantaneous); TestCoalescingSharedTile asserts it deterministically.
	t.Logf("stress stats: %+v", st)
}

// TestSupersededBatchCancelled: a session's newer batch invalidates its
// still-queued entries; the entry already in flight completes.
func TestSupersededBatchCancelled(t *testing.T) {
	store := newFakeStore()
	store.gate = make(chan struct{})
	store.started = make(chan tile.Coord, 16)
	s := NewScheduler(store, Config{Workers: 1})
	defer s.Close()

	a, b, c := coordAt(0), coordAt(1), coordAt(2)
	d := coordAt(3)
	s.Submit("s1", []Request{
		{Coord: a, Score: 3}, // highest: the worker takes this one first
		{Coord: b, Score: 2},
		{Coord: c, Score: 1},
	})
	// Wait until a's fetch is actually in flight, so b and c are the only
	// queued entries when the new batch lands.
	if got := <-store.started; got != a {
		t.Fatalf("first fetch = %v, want %v", got, a)
	}
	s.Submit("s1", []Request{{Coord: d, Score: 1}})
	close(store.gate)
	s.Drain()

	if store.count(b) != 0 || store.count(c) != 0 {
		t.Errorf("superseded tiles fetched: b=%d c=%d, want 0", store.count(b), store.count(c))
	}
	if store.count(a) != 1 || store.count(d) != 1 {
		t.Errorf("a=%d d=%d, want both fetched once", store.count(a), store.count(d))
	}
	st := s.Stats()
	if st.Cancelled != 2 {
		t.Errorf("Cancelled = %d, want 2", st.Cancelled)
	}
}

// TestFairnessAcrossSessions: with one worker, two sessions' queues drain
// in strict alternation, regardless of submission order or scores.
func TestFairnessAcrossSessions(t *testing.T) {
	store := newFakeStore()
	store.gate = make(chan struct{})
	store.started = make(chan tile.Coord, 64)
	s := NewScheduler(store, Config{Workers: 1})
	defer s.Close()

	// Park the worker on a dummy fetch while both batches are queued.
	dummy := tile.Coord{Level: 1}
	s.Submit("warmup", []Request{{Coord: dummy, Score: 1}})
	<-store.started

	const perSession = 5
	alice := make(map[tile.Coord]bool)
	bob := make(map[tile.Coord]bool)
	var batchA, batchB []Request
	for i := 0; i < perSession; i++ {
		ca, cb := coordAt(10+i), coordAt(20+i)
		alice[ca], bob[cb] = true, true
		// Alice's scores all dominate Bob's: fairness, not priority, must
		// interleave the two sessions.
		batchA = append(batchA, Request{Coord: ca, Score: float64(100 + i)})
		batchB = append(batchB, Request{Coord: cb, Score: float64(i)})
	}
	s.Submit("alice", batchA)
	s.Submit("bob", batchB)
	close(store.gate)
	s.Drain()

	order := store.fetchOrder()[1:] // drop the warmup fetch
	if len(order) != 2*perSession {
		t.Fatalf("fetched %d tiles, want %d", len(order), 2*perSession)
	}
	for i := 0; i+1 < len(order); i += 2 {
		x, y := alice[order[i]], alice[order[i+1]]
		if x == y {
			t.Fatalf("fetches %d,%d both from the same session (order %v)", i, i+1, order)
		}
	}
}

// TestPriorityWithinSession: one session's entries come back highest score
// first.
func TestPriorityWithinSession(t *testing.T) {
	store := newFakeStore()
	store.gate = make(chan struct{})
	store.started = make(chan tile.Coord, 16)
	s := NewScheduler(store, Config{Workers: 1})
	defer s.Close()

	dummy := tile.Coord{Level: 1}
	s.Submit("warmup", []Request{{Coord: dummy, Score: 1}})
	<-store.started

	s.Submit("s1", []Request{
		{Coord: coordAt(0), Score: 0.1},
		{Coord: coordAt(1), Score: 0.9},
		{Coord: coordAt(2), Score: 0.5},
	})
	close(store.gate)
	s.Drain()

	want := []tile.Coord{coordAt(1), coordAt(2), coordAt(0)}
	order := store.fetchOrder()[1:]
	for i, c := range want {
		if order[i] != c {
			t.Fatalf("fetch order = %v, want %v", order, want)
		}
	}
}

// TestQueueBudget: submissions beyond QueuePerSession are dropped.
func TestQueueBudget(t *testing.T) {
	store := newFakeStore()
	store.gate = make(chan struct{})
	s := NewScheduler(store, Config{Workers: 1, QueuePerSession: 4})
	defer s.Close()

	var batch []Request
	for i := 0; i < 10; i++ {
		batch = append(batch, Request{Coord: coordAt(i), Score: float64(i)})
	}
	accepted := s.Submit("s1", batch)
	if accepted > 5 { // the worker may have dequeued one entry already
		t.Errorf("accepted %d entries with budget 4", accepted)
	}
	st := s.Stats()
	if st.Dropped < 5 {
		t.Errorf("Dropped = %d, want >= 5", st.Dropped)
	}
	close(store.gate)
}

// TestCancelSession drops a session's queued work and forgets its state.
func TestCancelSession(t *testing.T) {
	store := newFakeStore()
	store.gate = make(chan struct{})
	store.started = make(chan tile.Coord, 16)
	s := NewScheduler(store, Config{Workers: 1})
	defer s.Close()

	dummy := tile.Coord{Level: 1}
	s.Submit("warmup", []Request{{Coord: dummy, Score: 1}})
	<-store.started
	s.Submit("gone", []Request{{Coord: coordAt(0), Score: 1}, {Coord: coordAt(1), Score: 2}})
	s.CancelSession("gone")
	close(store.gate)
	s.Drain()

	if store.count(coordAt(0)) != 0 || store.count(coordAt(1)) != 0 {
		t.Error("cancelled session's tiles were fetched")
	}
	st := s.Stats()
	if st.Cancelled != 2 {
		t.Errorf("Cancelled = %d, want 2", st.Cancelled)
	}
	if st.Sessions != 1 { // only warmup remains
		t.Errorf("Sessions = %d, want 1", st.Sessions)
	}
}

// TestDrainWaitsForDelivery: after Drain, every completed entry's Deliver
// has run.
func TestDrainWaitsForDelivery(t *testing.T) {
	store := newFakeStore()
	s := NewScheduler(store, Config{Workers: 4})
	defer s.Close()

	var mu sync.Mutex
	got := 0
	const n = 32
	for i := 0; i < n; i++ {
		s.Submit(fmt.Sprintf("s%d", i%4), []Request{{
			Coord: coordAt(i),
			Deliver: func(tl *tile.Tile) {
				time.Sleep(time.Millisecond)
				mu.Lock()
				got++
				mu.Unlock()
			},
		}})
	}
	s.Drain()
	mu.Lock()
	defer mu.Unlock()
	st := s.Stats()
	if got != st.Completed {
		t.Errorf("delivered %d, completed %d — Drain returned early", got, st.Completed)
	}
}

// TestCloseIsIdempotentAndStopsSubmit.
func TestCloseIsIdempotentAndStopsSubmit(t *testing.T) {
	store := newFakeStore()
	s := NewScheduler(store, Config{Workers: 2})
	s.Submit("s1", []Request{{Coord: coordAt(0)}})
	s.Close()
	s.Close()
	if n := s.Submit("s1", []Request{{Coord: coordAt(1)}}); n != 0 {
		t.Errorf("Submit after Close accepted %d entries", n)
	}
}

func BenchmarkSchedulerSubmitDrain(b *testing.B) {
	store := newFakeStore()
	s := NewScheduler(store, Config{Workers: 8, QueuePerSession: 256})
	defer s.Close()
	batch := make([]Request, 16)
	for i := range batch {
		batch[i] = Request{Coord: coordAt(i), Score: float64(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit("s1", batch)
		s.Submit("s2", batch)
		s.Drain()
	}
}

// TestSchedulerFeedsObsHistograms: with a pipeline configured, every
// issued entry reports its queue wait and every DBMS fetch its duration.
func TestSchedulerFeedsObsHistograms(t *testing.T) {
	store := newFakeStore()
	p := obs.NewPipeline(obs.Config{})
	s := NewScheduler(store, Config{Workers: 2, Obs: p})
	defer s.Close()
	s.Submit("s1", []Request{{Coord: coordAt(0), Score: 2}, {Coord: coordAt(1), Score: 1}})
	s.Drain()
	if got := p.QueueWait.Snapshot().Count; got != 2 {
		t.Errorf("queue-wait observations = %d, want 2", got)
	}
	if got := p.BackendFetch.Snapshot().Count; got != 2 {
		t.Errorf("backend-fetch observations = %d, want 2", got)
	}
}

// BenchmarkSchedulerSubmitDrainInstrumented is BenchmarkSchedulerSubmitDrain
// with a live observability pipeline: the acceptance budget is staying
// within 5% of the uninstrumented baseline (BENCH_obs.json records both).
func BenchmarkSchedulerSubmitDrainInstrumented(b *testing.B) {
	store := newFakeStore()
	s := NewScheduler(store, Config{Workers: 8, QueuePerSession: 256, Obs: obs.NewPipeline(obs.Config{})})
	defer s.Close()
	batch := make([]Request, 16)
	for i := range batch {
		batch[i] = Request{Coord: coordAt(i), Score: float64(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit("s1", batch)
		s.Submit("s2", batch)
		s.Drain()
	}
}

// TestCloseWakesDrain: a goroutine blocked in Drain must return when Close
// cancels the remaining work.
func TestCloseWakesDrain(t *testing.T) {
	store := newFakeStore()
	store.gate = make(chan struct{})
	store.started = make(chan tile.Coord, 16)
	s := NewScheduler(store, Config{Workers: 1})
	s.Submit("s1", []Request{{Coord: coordAt(0), Score: 2}, {Coord: coordAt(1), Score: 1}})
	<-store.started // one fetch in flight, one entry queued

	done := make(chan struct{})
	go func() {
		s.Drain()
		close(done)
	}()
	go func() {
		close(store.gate) // let the in-flight fetch finish so Close returns
		s.Close()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after Close")
	}
}

// TestBudgetStillPiggybacksInflight: requests over the queue budget still
// coalesce onto in-flight fetches instead of being dropped.
func TestBudgetStillPiggybacksInflight(t *testing.T) {
	store := newFakeStore()
	store.gate = make(chan struct{})
	store.started = make(chan tile.Coord, 16)
	s := NewScheduler(store, Config{Workers: 1, QueuePerSession: 1})
	defer s.Close()

	x := coordAt(0)
	s.Submit("other", []Request{{Coord: x, Score: 1}})
	if got := <-store.started; got != x {
		t.Fatalf("first fetch = %v, want %v", got, x)
	}
	// Budget 1: coordAt(1) fills the queue, coordAt(2) is over budget, but
	// x piggybacks on the in-flight fetch despite coming after the break.
	delivered := make(chan tile.Coord, 1)
	accepted := s.Submit("s1", []Request{
		{Coord: coordAt(1), Score: 3},
		{Coord: coordAt(2), Score: 2},
		{Coord: x, Score: 1, Deliver: func(tl *tile.Tile) { delivered <- tl.Coord }},
	})
	if accepted != 2 {
		t.Errorf("accepted = %d, want 2 (one queued, one piggybacked)", accepted)
	}
	close(store.gate)
	s.Drain()
	select {
	case got := <-delivered:
		if got != x {
			t.Errorf("delivered %v, want %v", got, x)
		}
	default:
		t.Error("over-budget request sharing an in-flight fetch was never delivered")
	}
	st := s.Stats()
	if st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1 (only the unqueueable non-inflight entry)", st.Dropped)
	}
	if store.count(x) != 1 {
		t.Errorf("x fetched %d times, want 1", store.count(x))
	}
}

// TestBudgetDropsLowestScored: when a batch exceeds the per-session queue
// budget, it is the batch's lowest-scored entries that are dropped,
// regardless of the order the caller built the slice in.
func TestBudgetDropsLowestScored(t *testing.T) {
	store := newFakeStore()
	store.gate = make(chan struct{})
	store.started = make(chan tile.Coord, 16)
	s := NewScheduler(store, Config{Workers: 1, QueuePerSession: 2})
	defer s.Close()

	dummy := tile.Coord{Level: 1}
	s.Submit("warmup", []Request{{Coord: dummy, Score: 1}})
	<-store.started

	// Ascending-score batch: the worst order for a naive first-N cut.
	s.Submit("s1", []Request{
		{Coord: coordAt(0), Score: 1},
		{Coord: coordAt(1), Score: 2},
		{Coord: coordAt(2), Score: 3},
	})
	close(store.gate)
	s.Drain()

	if store.count(coordAt(0)) != 0 {
		t.Error("lowest-scored entry should have been dropped")
	}
	if store.count(coordAt(1)) != 1 || store.count(coordAt(2)) != 1 {
		t.Errorf("higher-scored entries should be fetched: got %d and %d",
			store.count(coordAt(1)), store.count(coordAt(2)))
	}
	if st := s.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
}
