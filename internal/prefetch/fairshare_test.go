package prefetch

import (
	"fmt"
	"sync"
	"testing"

	"forecache/internal/tile"
)

// TestSessionPressureFairShare: deterministic shares on a parked scheduler.
func TestSessionPressureFairShare(t *testing.T) {
	clk := newFakeClock()
	s, _ := parkedScheduler(t, clk, Config{GlobalQueue: 16, QueuePerSession: 16})
	batch := func(n, from int, score float64) []Request {
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{Coord: coordAt(from + i), Score: score}
		}
		return reqs
	}
	// Flooder holds 13/16 of the queue, three light sessions 1 each.
	s.Submit("flood", batch(13, 0, 2))
	s.Submit("l1", batch(1, 100, 1))
	s.Submit("l2", batch(1, 110, 1))
	s.Submit("l3", batch(1, 120, 1))

	if p := s.Pressure(); p != 1 {
		t.Fatalf("global pressure = %v, want 1 (16/16 queued)", p)
	}
	// share 13/16 vs fair 1/4: over = (13/16-1/4)/(3/4) = 0.75.
	if p := s.SessionPressure("flood"); p < 0.7 || p > 0.8 {
		t.Errorf("flooder pressure = %v, want ~0.75", p)
	}
	// Light sessions sit far under fair share: zero pressure, full K.
	for _, id := range []string{"l1", "l2", "l3"} {
		if p := s.SessionPressure(id); p != 0 {
			t.Errorf("light session %s pressure = %v, want 0", id, p)
		}
	}
	// Unknown and idle sessions are not crowding anyone either.
	if p := s.SessionPressure("nobody"); p != 0 {
		t.Errorf("unknown session pressure = %v, want 0", p)
	}
	if p := s.SessionPressure("warmup"); p != 0 {
		t.Errorf("idle session pressure = %v, want 0", p)
	}
	// The stats snapshot carries the same signals.
	st := s.Stats()
	if st.SessionPressures["flood"] == 0 || st.SessionPressures["l1"] != 0 {
		t.Errorf("Stats().SessionPressures = %v", st.SessionPressures)
	}
}

// TestSessionPressureSoleOccupant: one session owning a saturated queue is
// the flooder by definition and reads the full global pressure.
func TestSessionPressureSoleOccupant(t *testing.T) {
	clk := newFakeClock()
	s, _ := parkedScheduler(t, clk, Config{GlobalQueue: 4, QueuePerSession: 8})
	reqs := make([]Request, 4)
	for i := range reqs {
		reqs[i] = Request{Coord: coordAt(i), Score: 1}
	}
	s.Submit("only", reqs)
	if p := s.SessionPressure("only"); p != 1 {
		t.Errorf("sole occupant pressure = %v, want the global 1", p)
	}
}

// TestSessionPressureBalancedLoad: equal sharers all sit at fair share and
// read zero — under symmetric load, fair-share backpressure defers to
// shedding instead of collectively punishing every session.
func TestSessionPressureBalancedLoad(t *testing.T) {
	clk := newFakeClock()
	s, _ := parkedScheduler(t, clk, Config{GlobalQueue: 8, QueuePerSession: 8})
	for i := 0; i < 4; i++ {
		s.Submit(fmt.Sprintf("s%d", i), []Request{
			{Coord: coordAt(10 * i), Score: 1}, {Coord: coordAt(10*i + 1), Score: 1},
		})
	}
	for i := 0; i < 4; i++ {
		if p := s.SessionPressure(fmt.Sprintf("s%d", i)); p != 0 {
			t.Errorf("balanced session s%d pressure = %v, want 0", i, p)
		}
	}
}

func TestSessionPressureZeroWithoutGlobalBudget(t *testing.T) {
	clk := newFakeClock()
	s, _ := parkedScheduler(t, clk, Config{QueuePerSession: 8})
	s.Submit("a", []Request{{Coord: coordAt(0), Score: 1}})
	if p := s.SessionPressure("a"); p != 0 {
		t.Errorf("pressure without global budget = %v, want 0", p)
	}
}

// mirrorAdaptiveK mirrors core.adaptiveBudget (pinned by core's
// TestAdaptiveBudgetTable) so this package can assert the fair-share
// contract in terms of the prefetch budget K engines would actually use.
func mirrorAdaptiveK(k int, pressure float64) int {
	if pressure <= 0 || k <= 1 {
		return k
	}
	if pressure > 1 {
		pressure = 1
	}
	eff := k - int(pressure*float64(k-1)+0.5)
	if eff < 1 {
		eff = 1
	}
	return eff
}

// TestFairShareFloodersShrinkFirst is the backpressure ordering contract
// under -race: one flooder (whole-budget batches every round) and three
// light sessions (single-tile batches) submit concurrently. At every
// observation point the flooder's effective K must shrink to 1 before any
// light session's K drops below the configured value — the flooding
// session pays for saturation, its victims do not.
func TestFairShareFloodersShrinkFirst(t *testing.T) {
	const configuredK = 5
	store := newFakeStore()
	store.gate = make(chan struct{})
	store.started = make(chan tile.Coord, 1024)
	s := NewScheduler(store, Config{Workers: 1, QueuePerSession: 64, GlobalQueue: 32})
	defer func() {
		close(store.gate)
		s.Close()
	}()
	// Park the single worker so queue contents stay under our control, and
	// let the flooder saturate the queue before the race starts (the
	// ordering contract is about behavior DURING a flood; a light session
	// alone on an empty queue is its sole occupant and rightly owns the
	// whole budget).
	s.Submit("warmup", []Request{{Coord: tile.Coord{Level: 1}, Score: 1}})
	<-store.started
	flood := func(r int) []Request {
		reqs := make([]Request, 48) // wants 1.5x the whole global budget
		for i := range reqs {
			reqs[i] = Request{Coord: coordAt((r*48 + i) % 500), Score: 1}
		}
		return reqs
	}
	s.Submit("flood", flood(0))

	const rounds = 200
	var submitters sync.WaitGroup
	submit := func(id string, rnd func(r int) []Request) {
		defer submitters.Done()
		for r := 0; r < rounds; r++ {
			s.Submit(id, rnd(r))
		}
	}
	light := func(base int) func(int) []Request {
		return func(r int) []Request {
			return []Request{{Coord: coordAt(base + r%50), Score: 1}}
		}
	}
	submitters.Add(4)
	go submit("flood", flood)
	go submit("l1", light(1000))
	go submit("l2", light(2000))
	go submit("l3", light(3000))

	// Sample the backpressure signals while the submitters race.
	errCh := make(chan error, 1)
	done := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		fail := func(err error) {
			select {
			case errCh <- err:
			default:
			}
		}
		for {
			select {
			case <-done:
				return
			default:
			}
			kf := mirrorAdaptiveK(configuredK, s.SessionPressure("flood"))
			for _, id := range []string{"l1", "l2", "l3"} {
				if kl := mirrorAdaptiveK(configuredK, s.SessionPressure(id)); kl < configuredK && kf > 1 {
					fail(fmt.Errorf("light %s shrank to K=%d while the flooder still had K=%d", id, kl, kf))
					return
				}
			}
		}
	}()

	submitters.Wait()
	close(done)
	sampler.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// The settled end state is deterministic: the flooder holds 29 of the
	// 32 budget slots (3 went to the lights, which tie-keep their slots),
	// so its K is floored at 1 while every light keeps the configured K.
	if pf := s.SessionPressure("flood"); mirrorAdaptiveK(configuredK, pf) != 1 {
		t.Errorf("settled flooder pressure %v does not floor K (K=%d)", pf, mirrorAdaptiveK(configuredK, pf))
	}
	for _, id := range []string{"l1", "l2", "l3"} {
		if pl := s.SessionPressure(id); mirrorAdaptiveK(configuredK, pl) != configuredK {
			t.Errorf("settled light %s pressure %v shrinks K to %d, want %d",
				id, pl, mirrorAdaptiveK(configuredK, pl), configuredK)
		}
	}
	st := s.Stats()
	if st.QueueDepths["flood"] != 29 {
		t.Errorf("settled flooder depth = %d, want 29 (32 budget - 3 lights)", st.QueueDepths["flood"])
	}
}
