package prefetch

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"forecache/internal/tile"
)

// sessionsOnDistinctShards returns two session ids the sharded scheduler
// routes to different shards (they exist for any n >= 2: the ring is
// balanced enough that 64 candidate ids never all land on one shard).
func sessionsOnDistinctShards(t *testing.T, ss *ShardedScheduler) (string, string) {
	t.Helper()
	first := ""
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("fleet-user-%d", i)
		if first == "" {
			first = id
			continue
		}
		if ss.Shard(id) != ss.Shard(first) {
			return first, id
		}
	}
	t.Fatal("64 session ids all routed to one shard; ring is broken")
	return "", ""
}

// TestCrossShardSingleFlight: two sessions on DIFFERENT shards wanting
// the same tile still cost one DBMS fetch — the deployment-wide
// CoalescingStore joins the second shard's worker onto the first's
// in-flight round trip, and both sessions' Deliver callbacks run.
func TestCrossShardSingleFlight(t *testing.T) {
	store := newFakeStore()
	store.gate = make(chan struct{})
	store.started = make(chan tile.Coord, 16)
	ss := NewShardedScheduler(store, Config{Workers: 4}, 4)
	defer ss.Close()
	s1, s2 := sessionsOnDistinctShards(t, ss)

	shared := tile.Coord{Level: 3, Y: 2, X: 1}
	var mu sync.Mutex
	delivered := map[string]int{}
	deliver := func(id string) func(*tile.Tile) {
		return func(*tile.Tile) {
			mu.Lock()
			delivered[id]++
			mu.Unlock()
		}
	}

	// s1's shard starts the only real fetch and blocks on the gate.
	ss.Submit(s1, []Request{{Coord: shared, Score: 1, Deliver: deliver(s1)}})
	<-store.started

	// s2's shard must join it, not issue a second fetch: wait until the
	// store reports the join before releasing the gate.
	ss.Submit(s2, []Request{{Coord: shared, Score: 1, Deliver: deliver(s2)}})
	deadline := time.Now().Add(5 * time.Second)
	for ss.store.Joined() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second shard's fetch never joined the in-flight one")
		}
		time.Sleep(time.Millisecond)
	}
	close(store.gate)
	ss.Drain()

	if got := store.count(shared); got != 1 {
		t.Errorf("store fetched the shared tile %d times, want 1 (cross-shard single-flight)", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if delivered[s1] != 1 || delivered[s2] != 1 {
		t.Errorf("deliveries = %v, want one per session", delivered)
	}
	if st := ss.Stats(); st.CrossShardCoalesced != 1 {
		t.Errorf("CrossShardCoalesced = %d, want 1", st.CrossShardCoalesced)
	}
}

// TestShardedRoutingDisjoint: every session's scheduler state lives on
// exactly its ring-assigned shard, and CancelSession reaches it there.
func TestShardedRoutingDisjoint(t *testing.T) {
	store := newFakeStore()
	store.gate = make(chan struct{}) // hold fetches so queues stay visible
	ss := NewShardedScheduler(store, Config{Workers: 4, QueuePerSession: 8}, 4)
	// Release the gate before Close: Close waits for workers, and workers
	// wait on the gate — deferred in this order, gate opens first.
	defer ss.Close()
	defer close(store.gate)

	const sessions = 32
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("user-%d", i)
		reqs := make([]Request, 4)
		for j := range reqs {
			reqs[j] = Request{Coord: tile.Coord{Level: 6, Y: i, X: j}, Score: 1}
		}
		if got := ss.Submit(id, reqs); got != 4 {
			t.Fatalf("Submit(%s) accepted %d, want 4", id, got)
		}
	}

	perShard := ss.ShardStats()
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("user-%d", i)
		home := ss.ring.Locate(id)
		for sh, st := range perShard {
			_, present := st.QueueDepths[id]
			if present != (sh == home) {
				t.Errorf("session %s state on shard %d (present=%v), home shard is %d", id, sh, present, home)
			}
		}
	}

	victim := "user-7"
	ss.CancelSession(victim)
	if _, ok := ss.Shard(victim).Stats().QueueDepths[victim]; ok {
		t.Errorf("CancelSession(%s) left state on the home shard", victim)
	}
}

// TestShardedStatsAggregation: the deployment-wide snapshot is exactly
// the sum of the per-shard snapshots, the session maps merge disjointly,
// and repeated snapshots stay monotone on the counter fields.
func TestShardedStatsAggregation(t *testing.T) {
	store := newFakeStore()
	ss := NewShardedScheduler(store, Config{Workers: 8, QueuePerSession: 64}, 3)
	defer ss.Close()

	const sessions, batch = 48, 5
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("agg-user-%d", i)
		reqs := make([]Request, batch)
		for j := range reqs {
			// Distinct coords per session: no coalescing, so the expected
			// counter totals are exact.
			reqs[j] = Request{Coord: tile.Coord{Level: 7, Y: i, X: j}, Score: float64(batch - j)}
		}
		ss.Submit(id, reqs)
	}
	ss.Drain()

	agg := ss.Stats()
	if agg.Shards != 3 {
		t.Errorf("Shards = %d, want 3", agg.Shards)
	}
	if agg.Queued != sessions*batch || agg.Completed != sessions*batch {
		t.Errorf("Queued/Completed = %d/%d, want %d each", agg.Queued, agg.Completed, sessions*batch)
	}
	if agg.Sessions != sessions {
		t.Errorf("Sessions = %d, want %d", agg.Sessions, sessions)
	}

	var sumQueued, sumCompleted, sumSess, sumDepth int
	for _, st := range ss.ShardStats() {
		sumQueued += st.Queued
		sumCompleted += st.Completed
		sumSess += st.Sessions
		sumDepth += len(st.QueueDepths)
	}
	if sumQueued != agg.Queued || sumCompleted != agg.Completed || sumSess != agg.Sessions {
		t.Errorf("per-shard sums (%d, %d, %d) != aggregate (%d, %d, %d)",
			sumQueued, sumCompleted, sumSess, agg.Queued, agg.Completed, agg.Sessions)
	}
	if sumDepth != len(agg.QueueDepths) {
		t.Errorf("merged QueueDepths has %d sessions, per-shard total %d: overlap", len(agg.QueueDepths), sumDepth)
	}

	// More work can only grow the counters.
	ss.Submit("agg-user-0", []Request{{Coord: tile.Coord{Level: 7, Y: 99, X: 0}, Score: 1}})
	ss.Drain()
	again := ss.Stats()
	if again.Queued < agg.Queued || again.Completed < agg.Completed || again.Coalesced < agg.Coalesced {
		t.Errorf("counters decreased across snapshots: %+v then %+v", agg, again)
	}
}

// TestShardedBudgetDivision: the deployment-wide worker and global-queue
// budgets are divided across shards, so a sharded deployment does not
// silently multiply its fetch concurrency or admission budget.
func TestShardedBudgetDivision(t *testing.T) {
	store := newFakeStore()
	ss := NewShardedScheduler(store, Config{Workers: 8, GlobalQueue: 100}, 4)
	defer ss.Close()
	for _, sh := range ss.shards {
		if sh.cfg.Workers != 2 {
			t.Errorf("per-shard workers = %d, want 2 (8 over 4 shards)", sh.cfg.Workers)
		}
		if sh.cfg.GlobalQueue != 25 {
			t.Errorf("per-shard global queue = %d, want 25 (100 over 4 shards)", sh.cfg.GlobalQueue)
		}
	}
	// Ceiling division never starves a shard of its last worker.
	ss2 := NewShardedScheduler(store, Config{Workers: 2}, 4)
	defer ss2.Close()
	for _, sh := range ss2.shards {
		if sh.cfg.Workers != 1 {
			t.Errorf("per-shard workers = %d, want 1 minimum", sh.cfg.Workers)
		}
	}
}

// TestShardedCloseIdempotent: Close fans out to every shard and is safe
// to call twice; Submit after Close accepts nothing.
func TestShardedCloseIdempotent(t *testing.T) {
	store := newFakeStore()
	ss := NewShardedScheduler(store, Config{Workers: 4}, 2)
	ss.Submit("u", []Request{{Coord: tile.Coord{Level: 1}, Score: 1}})
	ss.Close()
	ss.Close()
	if got := ss.Submit("u", []Request{{Coord: tile.Coord{Level: 2}, Score: 1}}); got != 0 {
		t.Errorf("Submit after Close accepted %d, want 0", got)
	}
}
