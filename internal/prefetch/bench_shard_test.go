package prefetch

import (
	"fmt"
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"testing"

	"forecache/internal/backend"
	"forecache/internal/tile"
)

// nullStore is a contention-free backend for fleet benchmarks: no shared
// lock, no recorded order — so the measured scaling is the scheduler
// tier's, not the fixture's.
type nullStore struct{ fetches atomic.Int64 }

func (n *nullStore) FetchQuiet(c tile.Coord) (*tile.Tile, error) {
	n.fetches.Add(1)
	return &tile.Tile{Coord: c, Size: 1}, nil
}
func (n *nullStore) Fetch(c tile.Coord) (*tile.Tile, error) { return n.FetchQuiet(c) }
func (n *nullStore) Latency() backend.LatencyModel          { return backend.LatencyModel{} }
func (n *nullStore) Pyramid() *tile.Pyramid                 { return nil }

// mutexWaitSeconds reads the process-wide total time goroutines have
// spent blocked on sync.Mutex/RWMutex acquisition.
func mutexWaitSeconds() float64 {
	s := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	return s[0].Value.Float64()
}

// BenchmarkFleetSubmitDrain is the sharding proof benchmark: a
// 1024-session fleet submits 8-entry batches from every CPU at once, then
// the pipeline drains. Total fetch concurrency is held fixed (8 workers
// deployment-wide, so 4 shards run 2 workers each) — the only thing the
// shard axis changes is how many locks the submit path and worker pops
// are spread over. ns/op is one full fleet round (1024 submits + drain);
// mutex-wait-ms/op is the process-wide mutex contention each round added.
func BenchmarkFleetSubmitDrain(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchFleet(b, shards)
		})
	}
}

func benchFleet(b *testing.B, shards int) {
	store := &nullStore{}
	cfg := Config{Workers: 8, QueuePerSession: 16}
	var p Pipeline
	if shards > 1 {
		p = NewShardedScheduler(store, cfg, shards)
	} else {
		p = NewScheduler(store, cfg)
	}
	defer p.Close()

	const fleet = 1024
	const batch = 8
	ids := make([]string, fleet)
	batches := make([][]Request, fleet)
	for i := range ids {
		ids[i] = fmt.Sprintf("fleet-user-%d", i)
		reqs := make([]Request, batch)
		for j := range reqs {
			// Distinct coords per session: no coalescing, every entry is a
			// real queue insert + worker pop + fetch.
			reqs[j] = Request{Coord: tile.Coord{Level: 9, Y: i, X: j}, Score: float64(batch - j)}
		}
		batches[i] = reqs
	}
	submitters := runtime.GOMAXPROCS(0)

	b.ReportAllocs()
	waitBefore := mutexWaitSeconds()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var wg sync.WaitGroup
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < fleet; i += submitters {
					p.Submit(ids[i], batches[i])
				}
			}(w)
		}
		wg.Wait()
		p.Drain()
	}
	b.StopTimer()
	waitMS := (mutexWaitSeconds() - waitBefore) * 1000
	b.ReportMetric(waitMS/float64(b.N), "mutex-wait-ms/op")
}
