package prefetch

import (
	"container/heap"
	"math"
	"sort"
	"time"
)

// positionBase is the default per-position diminishing-returns factor: the
// entry ranked r within its session's batch keeps positionBase^r of its
// score. The front-runner of a short batch therefore outranks the
// speculative tail of a long one at equal model confidence (Khameleon's
// insight that a prefetch plan's later items are progressively less likely
// to be consumed before the user moves again). Deployments with utility
// learning replace this constant with the curve a FeedbackCollector fits
// from observed cache outcomes (Config.Utility).
const positionBase = 0.85

// positionFactor returns the position-decay factor the scheduler applies
// at batch rank pos: the learned curve when a FeedbackCollector is
// configured, positionBase^pos otherwise.
func (c Config) positionFactor(pos int) float64 {
	if pos <= 0 {
		return 1
	}
	if c.Utility != nil {
		return c.Utility.Factor(pos)
	}
	return math.Pow(positionBase, float64(pos))
}

// pushDelay returns session's estimated per-frame drain time when push
// delivery is configured, 0 otherwise. The bandwidth-aware admission term
// charges a queued entry ranked r an extra (r+1)×pushDelay of decay age —
// the time the session's connection needs to deliver it and everything
// ahead of it — so a slow stream's speculative tail loses admission fights
// it would have won on model confidence alone. (Like wall-clock decay, the
// term is active only with a nonzero DecayHalfLife.)
func (c Config) pushDelay(session string) time.Duration {
	if c.Push == nil {
		return 0
	}
	return c.Push.DrainDelay(session)
}

// decayedUtility is the admission-control currency with the static default
// curve; see decayedUtilityFactor.
func decayedUtility(score float64, age, halfLife time.Duration, pos int) float64 {
	f := 1.0
	if pos > 0 {
		f = math.Pow(positionBase, float64(pos))
	}
	return decayedUtilityFactor(score, age, halfLife, f)
}

// decayedUtilityFactor is the admission-control currency: score discounted
// exponentially by queue age (halving every halfLife) and by the entry's
// position factor (the static base^pos or the learned curve's value at its
// rank). Scores may be negative (the SB recommender ranks by negated
// distance), so the discount always pushes utility downward: positive
// scores shrink toward zero, negative scores grow more negative.
func decayedUtilityFactor(score float64, age, halfLife time.Duration, posFactor float64) float64 {
	f := posFactor
	if halfLife > 0 && age > 0 {
		f *= math.Exp2(-float64(age) / float64(halfLife))
	}
	if score < 0 {
		return score / f
	}
	return score * f
}

// shedCand pairs a live queued entry with its utility, frozen at the moment
// the shed queue was built (one Submit holds the scheduler lock throughout,
// so relative order cannot drift mid-batch).
type shedCand struct {
	e    *entry
	util float64
}

// shedHeap is a min-heap over utility: the root is the entry global
// admission control evicts first. Ties shed the oldest entry (then the
// earliest submitted) so churn is deterministic.
type shedHeap []shedCand

func (h shedHeap) Len() int { return len(h) }
func (h shedHeap) Less(i, j int) bool {
	if h[i].util != h[j].util {
		return h[i].util < h[j].util
	}
	if !h[i].e.enqueued.Equal(h[j].e.enqueued) {
		return h[i].e.enqueued.Before(h[j].e.enqueued)
	}
	return h[i].e.seq < h[j].e.seq
}
func (h shedHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *shedHeap) Push(x any)   { *h = append(*h, x.(shedCand)) }
func (h *shedHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = shedCand{}
	*h = old[:n-1]
	return c
}

// buildShedHeapLocked snapshots every live queued entry with its decayed
// utility at now. Within each session, entries are ranked by score (the
// dispatch order) to assign the position-decay exponent.
func (s *Scheduler) buildShedHeapLocked(now time.Time) *shedHeap {
	h := make(shedHeap, 0, s.stats.Pending)
	for _, sq := range s.sessions {
		live := make([]*entry, 0, sq.queued)
		for _, e := range sq.pending {
			if e.state == stateQueued {
				live = append(live, e)
			}
		}
		sort.Slice(live, func(a, b int) bool {
			if live[a].req.Score != live[b].req.Score {
				return live[a].req.Score > live[b].req.Score
			}
			return live[a].seq < live[b].seq
		})
		// With push delivery on, incumbents age by their session's drain
		// time too — rank pos waits behind pos frames plus its own.
		delay := s.cfg.pushDelay(sq.id)
		for pos, e := range live {
			h = append(h, shedCand{
				e:    e,
				util: decayedUtilityFactor(e.req.Score, now.Sub(e.enqueued)+time.Duration(pos+1)*delay, s.cfg.DecayHalfLife, s.cfg.positionFactor(pos)),
			})
		}
	}
	heap.Init(&h)
	return &h
}

// shedLowestBelowLocked evicts the lowest-utility queued entry if its
// utility is strictly below u, reporting whether a slot was freed. Keeping
// the incumbent on ties avoids churn when nothing has actually decayed.
func (s *Scheduler) shedLowestBelowLocked(h *shedHeap, u float64) bool {
	for h.Len() > 0 {
		if (*h)[0].e.state != stateQueued { // already popped or superseded
			heap.Pop(h)
			continue
		}
		if (*h)[0].util >= u {
			return false
		}
		victim := heap.Pop(h).(shedCand).e
		victim.state = stateDone
		s.detachLocked(victim)
		s.addQueuedLocked(s.sessions[victim.session], -1)
		s.stats.Shed++
		s.stats.Pending--
		return true
	}
	return false
}
