package prefetch

import (
	"math"
	"sync"

	"forecache/internal/trace"
)

// FeedbackCollector closes the loop from cache outcomes back into the
// scheduler: it fits the deployment's position-utility curve online from
// what clients actually consumed, replacing the hard-coded positionBase
// guess (Khameleon fits utility functions from observed client consumption
// logs in exactly this way).
//
// Every prefetched tile eventually produces one Outcome in the cache
// manager — consumed (hit) or evicted unconsumed (miss) — attributed to
// the batch position it was prefetched at. The collector keeps an
// exponentially-weighted moving average of the hit rate per position; the
// scheduler then discounts a queued entry ranked at position p by
// Factor(p), the learned consumption probability of position p relative to
// the front-runner, instead of the static positionBase^p.
//
// Until a position has warmupObs observations its factor falls back to the
// static curve, so a cold deployment behaves exactly like the unlearned
// one. Factors are clamped to (0, 1] and forced non-increasing in p
// (diminishing returns): consumption noise must never invert the batch
// order the recommenders chose, only reshape how steeply it discounts.
//
// Alongside the position curve, the collector keeps per-(phase, model)
// consumption tallies: an EWMA of how often each recommender's prefetches
// get consumed within each predicted analysis phase. That is the signal
// core.AdaptivePolicy re-splits the prefetch budget from — the paper's
// fixed per-phase allocation table (§5.4.3) becomes the prior, and budget
// share shifts toward the model whose predictions the phase's users
// actually consume. The tallies carry evidence decay: a bucket's rate
// halves for every allocHalfLife outcomes the phase produces without it,
// so when a dataset shift silences a once-strong model its stale rate
// fades and the split re-learns instead of being pinned by history.
//
// A FeedbackCollector is shared by every session engine of a deployment
// and by its scheduler; all methods are safe for concurrent use.
type FeedbackCollector struct {
	mu    sync.Mutex
	alpha float64   // EWMA weight of a new observation
	rate  []float64 // EWMA consumption rate by position
	obs   []int     // observations per position
	// per-model consumption tallies, for operability (/metrics): which
	// recommender's prefetches actually get consumed.
	modelHits   map[string]int
	modelMisses map[string]int
	// per-(phase, model) EWMA consumption rate and observation counts: the
	// allocation feedback signal. Buckets decay by staleness (see
	// allocBucket), so a dataset shift can re-learn the split.
	phaseAlloc map[phaseModel]*allocBucket
	// phaseN counts every outcome a phase has produced, across models: the
	// staleness clock allocation buckets decay against.
	phaseN map[trace.Phase]int
	// allocHalfLife is the number of phase outcomes a bucket can miss
	// before its rate halves.
	allocHalfLife float64
}

// phaseModel keys the allocation tallies.
type phaseModel struct {
	ph    trace.Phase
	model string
}

// allocBucket is one (phase, model) consumption tally with evidence
// decay: rate is the EWMA consumption rate, obs the lifetime observation
// count (the warmup gate), and lastN the phase outcome total at the
// bucket's last observation. A bucket that stops being observed — the
// model's prefetches stopped flowing in that phase, or the dataset
// shifted under it — halves its effective rate every allocHalfLife
// outcomes OTHER models produce in the phase, so stale evidence cannot
// pin the learned split forever and the consumption-proportional target
// drifts back toward the models the phase's users consume NOW. Buckets
// observed at a steady share of the phase's traffic (the exploration
// floor guarantees every model some) decay negligibly between their own
// observations.
type allocBucket struct {
	rate  float64
	obs   int
	lastN int
}

// staleFactor is the decay multiplier for a bucket last observed when the
// phase total was lastN, read at phase total n.
func (f *FeedbackCollector) staleFactor(b *allocBucket, n int) float64 {
	stale := n - b.lastN
	if stale <= 0 {
		return 1
	}
	return math.Pow(0.5, float64(stale)/f.allocHalfLife)
}

// Collector tuning. The EWMA weight trades adaptation speed against noise:
// at 0.02 the curve's memory is ~50 observations per position, a few
// minutes of one active session's browsing.
const (
	feedbackAlpha = 0.02
	warmupObs     = 30
	minFactor     = 0.01 // learned floor: a tail position never hits zero
	// defaultAllocHalfLife is the evidence half-life of the allocation
	// buckets, in phase outcomes: long enough that a model observed at the
	// 0.1 exploration floor of a busy phase decays by well under 4%
	// between its own observations, short enough that a few minutes of
	// shifted traffic rewrites a stale split.
	defaultAllocHalfLife = 2048
)

// NewFeedbackCollector returns a collector learning factors for positions
// 0..maxPos-1; observations at deeper positions clamp to the last bucket.
// maxPos is typically the deployment's prefetch budget K.
func NewFeedbackCollector(maxPos int) *FeedbackCollector {
	if maxPos < 2 {
		maxPos = 2
	}
	return &FeedbackCollector{
		alpha:         feedbackAlpha,
		rate:          make([]float64, maxPos),
		obs:           make([]int, maxPos),
		modelHits:     make(map[string]int),
		modelMisses:   make(map[string]int),
		phaseAlloc:    make(map[phaseModel]*allocBucket),
		phaseN:        make(map[trace.Phase]int),
		allocHalfLife: defaultAllocHalfLife,
	}
}

// SetAllocationHalfLife overrides the allocation buckets' evidence
// half-life (in phase outcomes). Values <= 0 restore the default. Tests
// use short half-lives to exercise shift-and-recover without replaying
// thousands of outcomes.
func (f *FeedbackCollector) SetAllocationHalfLife(n float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		n = defaultAllocHalfLife
	}
	f.allocHalfLife = n
}

// Observe records one cache outcome: the tile prefetched at batch position
// pos by model, under predicted analysis phase ph, was (hit) or was not
// (miss) consumed before eviction.
func (f *FeedbackCollector) Observe(ph trace.Phase, model string, pos int, hit bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if pos < 0 {
		pos = 0
	}
	if pos >= len(f.rate) {
		pos = len(f.rate) - 1
	}
	v := 0.0
	if hit {
		v = 1.0
	}
	if f.obs[pos] == 0 {
		f.rate[pos] = v
	} else {
		f.rate[pos] += f.alpha * (v - f.rate[pos])
	}
	f.obs[pos]++
	if hit {
		f.modelHits[model]++
	} else {
		f.modelMisses[model]++
	}
	n := f.phaseN[ph] + 1
	f.phaseN[ph] = n
	key := phaseModel{ph: ph, model: model}
	b := f.phaseAlloc[key]
	if b == nil {
		b = &allocBucket{rate: v}
	} else {
		// Fold the staleness decay in before the EWMA step: evidence the
		// bucket accumulated before going quiet counts for less, so the
		// first observations after a long silence move the rate fast.
		b.rate *= f.staleFactor(b, n-1)
		b.rate += f.alpha * (v - b.rate)
	}
	b.obs++
	b.lastN = n
	f.phaseAlloc[key] = b
}

// AllocationRate reports the EWMA consumption rate of model's prefetches
// under predicted phase ph, and how many outcomes it was fit from (0 obs =
// never prefetched in that phase, rate 0). It implements
// core.AllocationFeedback: the signal AdaptivePolicy re-splits the prefetch
// budget from.
func (f *FeedbackCollector) AllocationRate(ph trace.Phase, model string) (rate float64, obs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.allocationRateLocked(ph, model)
}

func (f *FeedbackCollector) allocationRateLocked(ph trace.Phase, model string) (rate float64, obs int) {
	b := f.phaseAlloc[phaseModel{ph: ph, model: model}]
	if b == nil {
		return 0, 0
	}
	return b.rate * f.staleFactor(b, f.phaseN[ph]), b.obs
}

// AllocationRates is the batched variant AdaptivePolicy uses on the
// per-request hot path: one lock hold returns every model's rate and
// observation count for the phase (ordered like models), instead of
// 2 x len(models) separate acquisitions of a mutex shared by all sessions.
func (f *FeedbackCollector) AllocationRates(ph trace.Phase, models []string) (rates []float64, obs []int) {
	rates = make([]float64, len(models))
	obs = make([]int, len(models))
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, m := range models {
		rates[i], obs[i] = f.allocationRateLocked(ph, m)
	}
	return rates, obs
}

// Factor returns the position-decay factor for batch position pos: the
// learned consumption rate of pos relative to position 0, or the static
// positionBase^pos while either bucket is still warming up. Factors are
// non-increasing in pos, so within a batch the utility order is always the
// recommenders' rank order.
func (f *FeedbackCollector) Factor(pos int) float64 {
	if pos <= 0 {
		return 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	factor := 1.0
	for p := 1; p <= pos; p++ {
		factor = math.Min(factor, f.factorAtLocked(p))
	}
	return factor
}

// Curve snapshots the effective factor per position (index = position)
// under one lock hold, so the exported curve is internally consistent —
// monotone even while Observe calls race the snapshot. It is exactly what
// Factor returns at each position: the learned, monotone curve once warmed
// up, the static one before. Exported under /metrics and /stats so
// operators can watch the fit converge.
func (f *FeedbackCollector) Curve() []float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]float64, len(f.rate))
	factor := 1.0
	for p := range out {
		if p > 0 {
			factor = math.Min(factor, f.factorAtLocked(p))
		}
		out[p] = factor
	}
	return out
}

// factorAtLocked is the raw learned (or fallback) factor at one position,
// before the monotone clamp.
func (f *FeedbackCollector) factorAtLocked(pos int) float64 {
	i := pos
	if i >= len(f.rate) {
		i = len(f.rate) - 1
	}
	if f.obs[i] < warmupObs || f.obs[0] < warmupObs || f.rate[0] <= 0 {
		return math.Pow(positionBase, float64(pos))
	}
	factor := f.rate[i] / f.rate[0]
	if factor > 1 {
		factor = 1
	}
	if factor < minFactor {
		factor = minFactor
	}
	return factor
}

// Observations returns the total outcome count the curve was fit from.
func (f *FeedbackCollector) Observations() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, c := range f.obs {
		n += c
	}
	return n
}

// ModelRates snapshots per-model consumption tallies: hits and misses of
// each recommender's prefetched tiles.
func (f *FeedbackCollector) ModelRates() map[string][2]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string][2]int, len(f.modelHits)+len(f.modelMisses))
	for m, h := range f.modelHits {
		v := out[m]
		v[0] = h
		out[m] = v
	}
	for m, miss := range f.modelMisses {
		v := out[m]
		v[1] = miss
		out[m] = v
	}
	return out
}
