package prefetch

import (
	"container/heap"
	"sort"
	"sync"
	"time"

	"forecache/internal/backend"
	"forecache/internal/tile"
)

// entry states.
const (
	stateQueued = iota
	stateDone   // cancelled, coalesced, or handed to a worker
)

// entry is one queued Request plus its scheduling bookkeeping.
type entry struct {
	req      Request
	session  string
	seq      uint64 // tiebreak: earlier submissions first at equal score
	enqueued time.Time
	state    int
}

// entryHeap orders a session's pending entries by score descending.
type entryHeap []*entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].req.Score != h[j].req.Score {
		return h[i].req.Score > h[j].req.Score
	}
	return h[i].seq < h[j].seq
}
func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)   { *h = append(*h, x.(*entry)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// sessionQueue holds one session's pending entries.
type sessionQueue struct {
	id      string
	pending entryHeap
	queued  int  // live (stateQueued) entries, for the budget
	inRing  bool // whether id is in the round-robin ring
}

// waiter is one Request waiting on a flight, tagged with its session so
// push dispatch (Config.Push) knows whose stream the tile belongs on.
type waiter struct {
	session string
	req     Request
}

// flight is one in-flight DBMS fetch and the requests waiting on it.
type flight struct {
	waiters []waiter
}

// Scheduler is the shared asynchronous prefetch pipeline. Construct with
// NewScheduler; it is safe for concurrent use by any number of sessions.
type Scheduler struct {
	store backend.Store
	cfg   Config

	mu         sync.Mutex
	work       *sync.Cond // signaled when queued work or shutdown arrives
	idle       *sync.Cond // signaled when queued+inflight may have drained
	sessions   map[string]*sessionQueue
	rr         []string // round-robin ring of session ids with pending work
	rrPos      int
	byCoord    map[tile.Coord]map[*entry]struct{} // queued entries by coordinate
	inflight   map[tile.Coord]*flight
	delivering int // completed fetches whose Deliver callbacks still run
	active     int // sessions with queued > 0, maintained on 0<->1 transitions
	seq        uint64
	closed     bool

	stats        Stats
	queueLatency time.Duration // summed over issued/coalesced entries
	measured     int

	wg sync.WaitGroup
}

// NewScheduler starts a scheduler fetching from store with cfg.Workers
// workers. Call Close to stop them.
func NewScheduler(store backend.Store, cfg Config) *Scheduler {
	s := &Scheduler{
		store:    store,
		cfg:      cfg.withDefaults(),
		sessions: make(map[string]*sessionQueue),
		byCoord:  make(map[tile.Coord]map[*entry]struct{}),
		inflight: make(map[tile.Coord]*flight),
	}
	s.work = sync.NewCond(&s.mu)
	s.idle = sync.NewCond(&s.mu)
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit replaces session's pending batch with reqs: entries still queued
// from earlier batches are cancelled (their predictions are stale), then
// reqs are enqueued in score order subject to the per-session budget and
// the global one. When the global budget is saturated, each admission sheds
// the lowest-utility queued entry across all sessions (utility = score
// decayed by queue age and batch position), or rejects the newcomer if
// everything queued outranks it. Returns the number of entries accepted.
// Fetches already in flight are not interrupted. Safe to call concurrently;
// a no-op after Close.
func (s *Scheduler) Submit(session string, reqs []Request) int {
	now := s.cfg.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	sq := s.sessions[session]
	if sq == nil {
		sq = &sessionQueue{id: session}
		s.sessions[session] = sq
	}
	s.cancelQueuedLocked(sq)
	// The bandwidth-aware admission term: with push delivery on, queued
	// entries age by the connection's measured per-frame drain time as well
	// as by wall clock, so tiles a slow stream cannot deliver before they
	// decay stale lose admission fights. 0 (pull mode, no stream, or no
	// measurement yet) prices exactly like the classic pull path.
	pushDelay := s.cfg.pushDelay(session)
	// Process the batch in descending score order: the queue was just
	// cleared, so when the budget truncates, it is exactly the batch's
	// lowest-scored entries that drop (the documented contract), whatever
	// order the caller built the slice in.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].Score > reqs[order[b]].Score
	})
	var shed *shedHeap // built lazily on the first saturated admission
	accepted, enqueued := 0, 0
	for _, i := range order {
		// A fetch for this tile is already in flight (another session's,
		// typically): piggyback on it instead of queueing a duplicate.
		if fl, ok := s.inflight[reqs[i].Coord]; ok {
			fl.waiters = append(fl.waiters, waiter{session: session, req: reqs[i]})
			s.stats.Coalesced++
			accepted++
			continue
		}
		if sq.queued >= s.cfg.QueuePerSession {
			// Over budget for queueing — but keep scanning: lower-scored
			// requests may still piggyback on in-flight fetches at zero
			// queue cost.
			s.stats.Dropped++
			continue
		}
		if s.cfg.GlobalQueue > 0 && s.stats.Pending >= s.cfg.GlobalQueue {
			if shed == nil {
				shed = s.buildShedHeapLocked(now)
			}
			// The newcomer's admission utility is priced at the position it
			// will occupy: sq.queued entries sit ahead of it, so its
			// 0-indexed rank is sq.queued. (After the heap.Push below the
			// same rank reads sq.queued-1 — the counter has incremented by
			// then; the two sites price the same position.) With push
			// delivery on, the rank also charges drain time: the connection
			// must deliver rank+1 frames before this one reaches the client.
			u := decayedUtilityFactor(reqs[i].Score, time.Duration(sq.queued+1)*pushDelay, s.cfg.DecayHalfLife, s.cfg.positionFactor(sq.queued))
			if !s.shedLowestBelowLocked(shed, u) {
				s.stats.Dropped++
				continue
			}
		}
		s.seq++
		e := &entry{req: reqs[i], session: session, seq: s.seq, enqueued: now}
		heap.Push(&sq.pending, e)
		s.addQueuedLocked(sq, 1)
		s.stats.Pending++
		if s.stats.Pending > s.stats.PeakPending {
			s.stats.PeakPending = s.stats.Pending
		}
		if shed != nil {
			// This batch's own entries compete too: a tiny global budget
			// must keep only the batch's best. sq.queued-1 is this entry's
			// 0-indexed rank (the counter was just incremented), the same
			// position the admission check above priced it at. Because the
			// batch is processed in descending score order and position
			// factors are non-increasing, a later same-batch entry can
			// never outrank an earlier one — these candidates only ever
			// lose fights, they are here so the accounting stays exact.
			heap.Push(shed, shedCand{e: e, util: decayedUtilityFactor(e.req.Score, time.Duration(sq.queued)*pushDelay, s.cfg.DecayHalfLife, s.cfg.positionFactor(sq.queued-1))})
		}
		set := s.byCoord[e.req.Coord]
		if set == nil {
			set = make(map[*entry]struct{})
			s.byCoord[e.req.Coord] = set
		}
		set[e] = struct{}{}
		accepted++
		enqueued++
	}
	s.stats.Queued += accepted
	if enqueued > 0 {
		if !sq.inRing {
			sq.inRing = true
			s.rr = append(s.rr, session)
		}
		s.work.Broadcast()
	}
	return accepted
}

// CancelSession drops session's queued entries and forgets its scheduler
// state (used when the server evicts an idle session). In-flight fetches
// complete normally.
func (s *Scheduler) CancelSession(session string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sq := s.sessions[session]
	if sq == nil {
		return
	}
	s.cancelQueuedLocked(sq)
	if sq.inRing {
		s.removeFromRingLocked(session)
	}
	delete(s.sessions, session)
	s.idle.Broadcast()
}

// removeFromRingLocked drops one session id from the round-robin ring,
// keeping the rotation position stable.
func (s *Scheduler) removeFromRingLocked(session string) {
	for i, id := range s.rr {
		if id != session {
			continue
		}
		s.rr = append(s.rr[:i], s.rr[i+1:]...)
		if s.rrPos > i {
			s.rrPos--
		}
		return
	}
}

// Drain blocks until no entries are queued and no fetches are in flight.
// Deliveries for completed fetches finish before Drain returns, so tests
// and examples can read caches deterministically afterwards.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.stats.Pending > 0 || len(s.inflight) > 0 || s.delivering > 0 {
		s.idle.Wait()
	}
}

// Close stops the workers after cancelling all queued entries and waits for
// in-flight fetches to finish delivering.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, sq := range s.sessions {
		s.cancelQueuedLocked(sq)
	}
	s.work.Broadcast()
	s.idle.Broadcast() // cancelling zeroed Pending: wake concurrent Drains
	s.mu.Unlock()
	s.wg.Wait()
	// Workers are gone; wait out the detached delivery goroutines too.
	s.mu.Lock()
	for s.delivering > 0 {
		s.idle.Wait()
	}
	s.mu.Unlock()
}

// Stats snapshots the scheduler counters. The snapshot is internally
// consistent: every field is read under one hold of the scheduler lock.
func (s *Scheduler) Stats() Stats {
	st, _, _ := s.statsDetail()
	return st
}

// statsDetail is Stats plus the raw queue-latency accumulators, so the
// sharded aggregator can compute an exactly-weighted deployment-wide mean
// instead of averaging per-shard averages.
func (s *Scheduler) statsDetail() (Stats, time.Duration, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Shards = 1
	st.Inflight = len(s.inflight)
	st.Sessions = len(s.sessions)
	st.Pressure = s.pressureLocked()
	st.QueueDepths = make(map[string]int, len(s.sessions))
	st.SessionPressures = make(map[string]float64, len(s.sessions))
	active := s.active
	for id, sq := range s.sessions {
		st.QueueDepths[id] = sq.queued
		st.SessionPressures[id] = s.sessionPressureLocked(id, active)
	}
	if s.measured > 0 {
		st.AvgQueueLatency = s.queueLatency / time.Duration(s.measured)
	}
	if s.cfg.Utility != nil {
		st.UtilityCurve = s.cfg.Utility.Curve()
		st.UtilityObservations = s.cfg.Utility.Observations()
	}
	return st, s.queueLatency, s.measured
}

// addQueuedLocked adjusts a session's live-entry count, maintaining the
// scheduler's count of sessions with queued work (the fair-share N) on
// 0<->1 transitions so SessionPressure never scans the session table on
// the request hot path.
func (s *Scheduler) addQueuedLocked(sq *sessionQueue, delta int) {
	before := sq.queued
	sq.queued += delta
	switch {
	case before == 0 && sq.queued > 0:
		s.active++
	case before > 0 && sq.queued == 0:
		s.active--
	}
}

// cancelQueuedLocked marks all of sq's queued entries cancelled. It wakes
// Drain waiters: cancellation may have emptied the queue for good (e.g. a
// Submit whose whole batch is dropped or piggybacked enqueues nothing).
func (s *Scheduler) cancelQueuedLocked(sq *sessionQueue) {
	cancelled := false
	for _, e := range sq.pending {
		if e.state == stateQueued {
			e.state = stateDone
			s.detachLocked(e)
			s.stats.Cancelled++
			s.stats.Pending--
			cancelled = true
		}
	}
	sq.pending = sq.pending[:0]
	s.addQueuedLocked(sq, -sq.queued)
	if cancelled {
		s.idle.Broadcast()
	}
}

// detachLocked removes a no-longer-queued entry from the coordinate index.
func (s *Scheduler) detachLocked(e *entry) {
	if set, ok := s.byCoord[e.req.Coord]; ok {
		delete(set, e)
		if len(set) == 0 {
			delete(s.byCoord, e.req.Coord)
		}
	}
}

// popNextLocked picks the next entry to fetch: sessions with pending work
// are visited round-robin, and within a session the highest-scored entry
// wins. Returns nil when nothing is queued.
func (s *Scheduler) popNextLocked() *entry {
	for len(s.rr) > 0 {
		if s.rrPos >= len(s.rr) {
			s.rrPos = 0
		}
		id := s.rr[s.rrPos]
		sq := s.sessions[id]
		var e *entry
		for sq != nil && sq.pending.Len() > 0 {
			top := heap.Pop(&sq.pending).(*entry)
			if top.state != stateQueued {
				continue // lazily discarded (cancelled or coalesced)
			}
			e = top
			break
		}
		if e == nil {
			// Session has no live work: drop it from the rotation.
			if sq != nil {
				sq.inRing = false
			}
			s.rr = append(s.rr[:s.rrPos], s.rr[s.rrPos+1:]...)
			continue
		}
		s.rrPos++
		e.state = stateDone
		s.addQueuedLocked(sq, -1)
		s.detachLocked(e)
		return e
	}
	return nil
}

// worker is one pool goroutine: it pops entries fairly, coalesces
// duplicates, and issues at most one DBMS fetch at a time.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var e *entry
		for {
			e = s.popNextLocked()
			if e != nil || s.closed {
				break
			}
			s.work.Wait()
		}
		if e == nil { // closed and drained
			s.mu.Unlock()
			return
		}
		now := s.cfg.clock()
		s.accountLatencyLocked(e, now)
		s.stats.Pending--
		coord := e.req.Coord
		if fl, ok := s.inflight[coord]; ok {
			// Another worker is already fetching this tile: piggyback.
			fl.waiters = append(fl.waiters, waiter{session: e.session, req: e.req})
			s.stats.Coalesced++
			s.mu.Unlock()
			continue
		}
		fl := &flight{waiters: []waiter{{session: e.session, req: e.req}}}
		// Absorb queued duplicates from every session: one DBMS round trip
		// serves them all.
		for dup := range s.byCoord[coord] {
			dup.state = stateDone
			s.addQueuedLocked(s.sessions[dup.session], -1)
			fl.waiters = append(fl.waiters, waiter{session: dup.session, req: dup.req})
			s.accountLatencyLocked(dup, now)
			s.stats.Coalesced++
			s.stats.Pending--
		}
		delete(s.byCoord, coord)
		s.inflight[coord] = fl
		s.mu.Unlock()

		// The fetch timer reuses the queue-wait timestamp taken above, so
		// instrumentation costs one clock read per fetch, not two. The
		// duplicate-absorption map work between the two points is charged
		// to the fetch; it is nanoseconds against a DBMS round trip.
		t, err := s.store.FetchQuiet(coord)
		if s.cfg.Obs != nil {
			s.cfg.Obs.ObserveBackendFetch(s.cfg.clock().Sub(now))
		}

		s.mu.Lock()
		delete(s.inflight, coord)
		// Late arrivals may have piggybacked while we fetched; deliver to
		// the final waiter set.
		waiters := fl.waiters
		if err != nil {
			s.stats.Errors += len(waiters)
			s.idle.Broadcast()
			s.mu.Unlock()
			continue
		}
		s.stats.Completed += len(waiters)
		s.delivering++
		s.mu.Unlock()
		// Deliver off the worker: a Deliver callback may block on a busy
		// engine's lock, and stalling the shared pool on one session would
		// be cross-session head-of-line blocking.
		go func() {
			for _, w := range waiters {
				if w.req.Deliver != nil {
					w.req.Deliver(t)
				}
			}
			// Push dispatch runs after the cache deliveries (the stream
			// frame must never beat its own cache insert) and before
			// delivering is released, so Drain returning guarantees every
			// completed fetch's frame has been enqueued.
			pushed := 0
			if sink := s.cfg.Push; sink != nil {
				for _, w := range waiters {
					if sink.Push(w.session, w.req.Model, coord, w.req.Score, t) {
						pushed++
					}
				}
			}
			s.mu.Lock()
			s.stats.Pushed += pushed
			s.delivering--
			s.idle.Broadcast()
			s.mu.Unlock()
		}()
	}
}

// accountLatencyLocked records how long e sat queued. The queue-wait
// histogram rides the same already-computed timestamp, so observability
// adds no clock read here.
func (s *Scheduler) accountLatencyLocked(e *entry, now time.Time) {
	wait := now.Sub(e.enqueued)
	s.queueLatency += wait
	s.measured++
	s.cfg.Obs.ObserveQueueWait(wait)
}
