package prefetch

import (
	"bytes"
	"encoding/json"
	"testing"

	"forecache/internal/trace"
)

// trainCollector feeds a deterministic mix of phases, models, positions
// and outcomes so every serialized table is non-trivially populated.
func trainCollector(f *FeedbackCollector) {
	phases := []trace.Phase{trace.Foraging, trace.Navigation, trace.Sensemaking}
	models := []string{"markov3", "sb:sift", "hotspot"}
	for i := 0; i < 400; i++ {
		ph := phases[i%len(phases)]
		model := models[i%len(models)]
		pos := i % 6
		hit := i%3 != 0
		f.Observe(ph, model, pos, hit)
	}
}

func TestFeedbackStateRoundTripBytes(t *testing.T) {
	f := NewFeedbackCollector(6)
	trainCollector(f)
	first, err := f.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	g := NewFeedbackCollector(6)
	if err := g.ImportState(first); err != nil {
		t.Fatal(err)
	}
	second, err := g.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("export -> import -> export not byte-identical:\n%s\nvs\n%s", first, second)
	}

	// The restored collector behaves like the original, not just
	// serializes like it.
	for pos := 0; pos < 6; pos++ {
		if got, want := g.Factor(pos), f.Factor(pos); got != want {
			t.Errorf("Factor(%d) = %v after restore, want %v", pos, got, want)
		}
	}
	for _, ph := range []trace.Phase{trace.Foraging, trace.Navigation, trace.Sensemaking} {
		for _, m := range []string{"markov3", "sb:sift", "hotspot"} {
			gr, gobs := g.AllocationRate(ph, m)
			wr, wobs := f.AllocationRate(ph, m)
			if gr != wr || gobs != wobs {
				t.Errorf("AllocationRate(%s, %s) = (%v, %d), want (%v, %d)", ph, m, gr, gobs, wr, wobs)
			}
		}
	}
	if g.Observations() != f.Observations() {
		t.Errorf("Observations = %d, want %d", g.Observations(), f.Observations())
	}
}

// TestFeedbackStateCurvePrefix: a snapshot taken at a different prefetch
// budget restores the overlapping curve prefix and cold-starts the rest.
func TestFeedbackStateCurvePrefix(t *testing.T) {
	wide := NewFeedbackCollector(8)
	trainCollector(wide)
	raw, err := wide.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	narrow := NewFeedbackCollector(4)
	if err := narrow.ImportState(raw); err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < 4; pos++ {
		if got, want := narrow.Factor(pos), wide.Factor(pos); got != want {
			t.Errorf("narrow Factor(%d) = %v, want wide's %v", pos, got, want)
		}
	}

	// And the other direction: a narrow snapshot leaves the wide
	// collector's deeper buckets at zero observations.
	narrowRaw, err := NewFeedbackCollector(3).ExportState()
	if err != nil {
		t.Fatal(err)
	}
	wide2 := NewFeedbackCollector(8)
	trainCollector(wide2)
	if err := wide2.ImportState(narrowRaw); err != nil {
		t.Fatal(err)
	}
	if wide2.Observations() != 0 {
		t.Errorf("curve observations after importing an empty snapshot = %d, want 0", wide2.Observations())
	}
}

func TestFeedbackImportRejectsBadState(t *testing.T) {
	valid := func() feedbackState {
		return feedbackState{
			Rate:        []float64{0.5, 0.2},
			Obs:         []int{10, 4},
			ModelHits:   map[string]int{"m": 3},
			ModelMisses: map[string]int{"m": 1},
			PhaseN:      map[string]int{"Foraging": 20},
			Alloc:       []allocState{{Phase: "Foraging", Model: "m", Rate: 0.4, Obs: 4, LastN: 18}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*feedbackState)
	}{
		{"length mismatch", func(s *feedbackState) { s.Obs = s.Obs[:1] }},
		{"rate above one", func(s *feedbackState) { s.Rate[0] = 1.5 }},
		{"negative obs", func(s *feedbackState) { s.Obs[0] = -1 }},
		{"negative model tally", func(s *feedbackState) { s.ModelHits["m"] = -2 }},
		{"unknown phase", func(s *feedbackState) { s.PhaseN["Dreaming"] = 1 }},
		{"unknown alloc phase", func(s *feedbackState) { s.Alloc[0].Phase = "Dreaming" }},
		{"bucket rate out of range", func(s *feedbackState) { s.Alloc[0].Rate = -0.1 }},
		{"bucket without observations", func(s *feedbackState) { s.Alloc[0].Obs = 0 }},
		{"bucket clock past phase total", func(s *feedbackState) { s.Alloc[0].LastN = 999 }},
		{"negative phase total", func(s *feedbackState) { s.PhaseN["Foraging"] = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := valid()
			tc.mutate(&st)
			raw, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			f := NewFeedbackCollector(4)
			trainCollector(f)
			before, _ := f.ExportState()
			if err := f.ImportState(raw); err == nil {
				t.Fatal("bad state imported without error")
			}
			after, _ := f.ExportState()
			if !bytes.Equal(before, after) {
				t.Error("rejected import still mutated the collector")
			}
		})
	}

	f := NewFeedbackCollector(4)
	if err := f.ImportState([]byte("{not json")); err == nil {
		t.Error("malformed JSON imported without error")
	}
}
