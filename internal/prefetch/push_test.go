package prefetch

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"forecache/internal/tile"
)

// fakeSink is a controllable PushSink: it records every offered push and
// serves per-session drain delays.
type fakeSink struct {
	mu     sync.Mutex
	pushes []sinkPush
	refuse bool
	delays map[string]time.Duration
}

type sinkPush struct {
	session, model string
	coord          tile.Coord
	score          float64
}

func (f *fakeSink) Push(session, model string, c tile.Coord, score float64, t *tile.Tile) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.refuse {
		return false
	}
	f.pushes = append(f.pushes, sinkPush{session: session, model: model, coord: c, score: score})
	return true
}

func (f *fakeSink) DrainDelay(session string) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delays[session]
}

func (f *fakeSink) all() []sinkPush {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]sinkPush(nil), f.pushes...)
}

// TestPushDispatch: with a sink configured, every completed fetch is
// offered to the waiter's session stream with its model/score attribution,
// after the cache delivery.
func TestPushDispatch(t *testing.T) {
	store := newFakeStore()
	sink := &fakeSink{}
	s := NewScheduler(store, Config{Workers: 2, Push: sink})
	defer s.Close()

	var deliveredMu sync.Mutex
	deliveredBeforePush := true
	c := tile.Coord{Level: 4, Y: 2, X: 3}
	s.Submit("viewer", []Request{{
		Coord: c, Score: 0.9, Model: "markov",
		Deliver: func(*tile.Tile) {
			deliveredMu.Lock()
			// If the sink already saw the push, ordering is broken.
			if len(sink.all()) != 0 {
				deliveredBeforePush = false
			}
			deliveredMu.Unlock()
		},
	}})
	s.Drain()

	got := sink.all()
	if len(got) != 1 {
		t.Fatalf("pushes = %v, want exactly 1", got)
	}
	p := got[0]
	if p.session != "viewer" || p.model != "markov" || p.coord != c || p.score != 0.9 {
		t.Fatalf("push attribution: %+v", p)
	}
	deliveredMu.Lock()
	ok := deliveredBeforePush
	deliveredMu.Unlock()
	if !ok {
		t.Fatal("push frame dispatched before the cache delivery")
	}
	if st := s.Stats(); st.Pushed != 1 {
		t.Fatalf("Stats.Pushed = %d, want 1", st.Pushed)
	}
}

// TestPushDispatchCoalesced: one coalesced fetch pushes to every waiting
// session under its own id, and refused pushes are not counted.
func TestPushDispatchCoalesced(t *testing.T) {
	store := newFakeStore()
	store.gate = make(chan struct{})
	sink := &fakeSink{}
	s := NewScheduler(store, Config{Workers: 4, Push: sink})
	defer s.Close()

	shared := tile.Coord{Level: 3, Y: 1, X: 1}
	for i := 0; i < 3; i++ {
		s.Submit(fmt.Sprintf("s%d", i), []Request{{Coord: shared, Score: 1, Model: "m"}})
	}
	close(store.gate)
	s.Drain()

	sessions := map[string]bool{}
	for _, p := range sink.all() {
		sessions[p.session] = true
	}
	if len(sessions) != 3 {
		t.Fatalf("pushed sessions = %v, want s0,s1,s2", sessions)
	}
	if st := s.Stats(); st.Pushed != 3 {
		t.Fatalf("Stats.Pushed = %d, want 3", st.Pushed)
	}

	// A refusing sink (no stream attached / buffer full) costs nothing.
	sink.mu.Lock()
	sink.refuse = true
	sink.mu.Unlock()
	other := tile.Coord{Level: 3, Y: 2, X: 2}
	s.Submit("s0", []Request{{Coord: other, Score: 1}})
	s.Drain()
	if st := s.Stats(); st.Pushed != 3 {
		t.Fatalf("refused push counted: Stats.Pushed = %d, want 3", st.Pushed)
	}
}

// TestPushBandwidthAdmission: at global saturation, an incumbent whose
// session drains slowly loses the admission fight against an equal-scored
// newcomer on a fast connection — and without drain-delay asymmetry the
// incumbent keeps its slot (ties keep the incumbent), proving the
// bandwidth term alone flipped the outcome.
func TestPushBandwidthAdmission(t *testing.T) {
	run := func(slowDelay time.Duration) (accepted int, st Stats) {
		store := newFakeStore()
		store.gate = make(chan struct{})
		store.started = make(chan tile.Coord, 4)
		sink := &fakeSink{delays: map[string]time.Duration{"slow": slowDelay}}
		now := time.Unix(1000, 0)
		s := NewScheduler(store, Config{
			Workers:       1,
			GlobalQueue:   1,
			DecayHalfLife: 50 * time.Millisecond,
			Push:          sink,
			clock:         func() time.Time { return now },
		})
		defer s.Close()

		// Park the lone worker on a decoy fetch so queued entries stay put.
		s.Submit("decoy", []Request{{Coord: tile.Coord{Level: 9}, Score: 2}})
		<-store.started

		// The slow session fills the only global slot...
		if n := s.Submit("slow", []Request{{Coord: tile.Coord{Level: 1, X: 1}, Score: 1}}); n != 1 {
			t.Fatalf("slow submit accepted %d, want 1", n)
		}
		// ...then an equal-scored entry from a fast session fights for it.
		accepted = s.Submit("fast", []Request{{Coord: tile.Coord{Level: 1, X: 2}, Score: 1}})
		st = s.Stats()
		close(store.gate)
		s.Drain()
		return accepted, st
	}

	// Symmetric drain rates: the tie keeps the incumbent.
	if accepted, st := run(0); accepted != 0 || st.Shed != 0 || st.Dropped != 1 {
		t.Fatalf("no-asymmetry control: accepted=%d stats=%+v, want newcomer dropped", accepted, st)
	}
	// The slow session's entry ages by its drain delay and is shed.
	if accepted, st := run(200 * time.Millisecond); accepted != 1 || st.Shed != 1 {
		t.Fatalf("bandwidth case: accepted=%d stats=%+v, want incumbent shed", accepted, st)
	}
}

// TestShardedPressureSaturation pins the aggregate-pressure bugfix: with a
// global budget that does not divide evenly across shards, deployment-wide
// pressure must read exactly 1.0 when exactly the configured budget is
// pending — not pending over the ceil-divided per-shard budgets times the
// shard count (10 over 3 shards gave 4×3 = 12 and a ceiling of 0.833).
func TestShardedPressureSaturation(t *testing.T) {
	store := newFakeStore()
	store.gate = make(chan struct{})
	// Buffer covers every fetch the test triggers (3 decoys + 10 fills):
	// fetch starts announced after the gate opens must never block.
	store.started = make(chan tile.Coord, 16)
	const shards, budget = 3, 10 // ceil(10/3) = 4 per shard: non-divisible
	ss := NewShardedScheduler(store, Config{Workers: shards, GlobalQueue: budget}, shards)
	defer ss.Close()

	// One shard-local session per shard, found by probing the ring.
	taken := map[string]bool{}
	local := make([]string, shards)
	for k := range local {
		for i := 0; ; i++ {
			id := fmt.Sprintf("sess-%d", i)
			if !taken[id] && ss.ring.Locate(id) == k {
				taken[id] = true
				local[k] = id
				break
			}
		}
	}

	// Park each shard's lone worker on a gated decoy fetch so everything
	// submitted afterwards stays pending.
	for k, id := range local {
		ss.Submit(id, []Request{{Coord: tile.Coord{Level: 9, X: k}, Score: 2}})
	}
	for range local {
		<-store.started
	}

	// Fill to exactly the configured deployment-wide budget: 4 + 4 + 2.
	// Shards cap at their ceil-divided share (4), so the split must respect
	// per-shard limits while the total hits the configured 10.
	fill := []int{4, 4, 2}
	pending := 0
	for k, n := range fill {
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{Coord: tile.Coord{Level: 5, Y: k, X: i}, Score: 1}
		}
		pending += ss.Submit(local[k], reqs)
	}
	if pending != budget {
		t.Fatalf("pending = %d, want the full budget %d", pending, budget)
	}
	if got := ss.Pressure(); got != 1.0 {
		t.Fatalf("Pressure at exact saturation = %v, want exactly 1.0", got)
	}
	if got := ss.Stats().Pressure; got != 1.0 {
		t.Fatalf("Stats().Pressure at exact saturation = %v, want exactly 1.0", got)
	}
	close(store.gate)
	ss.Drain()
}
