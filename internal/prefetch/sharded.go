package prefetch

import (
	"sync"
	"time"

	"forecache/internal/backend"
	"forecache/internal/shard"
	"forecache/internal/tile"
)

// This file is the horizontal scale-out of the prefetch pipeline: N
// independent Schedulers — each with its own mutex, per-session queues,
// worker pool and pressure signal — behind a consistent-hash router keyed
// on session id. One process-wide scheduler lock is the serving tier's
// submit-path choke point at fleet scale (every session's Submit, Cancel
// and worker pop serializes on it); sharding multiplies the locks while
// the consistent-hash ring keeps each session's whole scheduler life on
// one shard, so per-session semantics (batch superseding, fair-share
// pressure, queue budgets) are untouched.
//
// What must NOT shard is single-flight deduplication: two sessions on
// different shards wanting the same tile should still cost one DBMS
// fetch. Each shard's own inflight map coalesces within the shard exactly
// as before; CoalescingStore adds the deployment-wide layer underneath,
// joining concurrent FetchQuiet calls across shards on one backend round
// trip.

// Pipeline is the scheduler surface the serving tier consumes, satisfied
// by both the single-lock *Scheduler and the consistent-hash
// *ShardedScheduler. It is a superset of core.Submitter: the extra
// methods (Stats, Drain, Close) are the server's operational hooks.
type Pipeline interface {
	Submit(session string, reqs []Request) int
	CancelSession(session string)
	Pressure() float64
	SessionPressure(session string) float64
	Stats() Stats
	Drain()
	Close()
}

var (
	_ Pipeline = (*Scheduler)(nil)
	_ Pipeline = (*ShardedScheduler)(nil)
)

// storeFlight is one in-flight FetchQuiet and everyone waiting on it.
type storeFlight struct {
	done chan struct{}
	t    *tile.Tile
	err  error
}

// CoalescingStore wraps a backend.Store with deployment-wide single-flight
// on the prefetch path: concurrent FetchQuiet calls for one coordinate —
// typically scheduler workers on different shards — share one underlying
// fetch. The response path (Fetch) is not coalesced: it charges latency
// per the paper's model and stays the engine's own concern. Safe for
// concurrent use.
type CoalescingStore struct {
	backend.Store

	mu       sync.Mutex
	inflight map[tile.Coord]*storeFlight
	joined   int
}

// NewCoalescingStore wraps store. A nil store is a programming error and
// panics on first use, like handing the scheduler a nil store would.
func NewCoalescingStore(store backend.Store) *CoalescingStore {
	return &CoalescingStore{Store: store, inflight: make(map[tile.Coord]*storeFlight)}
}

// FetchQuiet fetches c, joining an identical in-flight fetch if one
// exists instead of issuing a duplicate.
func (cs *CoalescingStore) FetchQuiet(c tile.Coord) (*tile.Tile, error) {
	cs.mu.Lock()
	if fl, ok := cs.inflight[c]; ok {
		cs.joined++
		cs.mu.Unlock()
		<-fl.done
		return fl.t, fl.err
	}
	fl := &storeFlight{done: make(chan struct{})}
	cs.inflight[c] = fl
	cs.mu.Unlock()

	fl.t, fl.err = cs.Store.FetchQuiet(c)

	cs.mu.Lock()
	delete(cs.inflight, c)
	cs.mu.Unlock()
	close(fl.done)
	return fl.t, fl.err
}

// Joined reports how many fetches piggybacked on another's in-flight
// round trip since construction.
func (cs *CoalescingStore) Joined() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.joined
}

// ShardedScheduler fans the prefetch pipeline out over N independent
// Schedulers behind a consistent-hash ring keyed on session id. Every
// per-session operation routes to the session's home shard; Stats, Drain
// and Close fan out over all of them. Construct with NewShardedScheduler.
type ShardedScheduler struct {
	ring   *shard.Ring
	shards []*Scheduler
	store  *CoalescingStore
	// total is the *configured* deployment-wide GlobalQueue — the aggregate
	// pressure denominator. It must not be reconstructed as per-shard × n:
	// per-shard budgets are ceil-divided, so that product overshoots for
	// non-divisible splits (1024 over 3 shards → 342×3 = 1026) and pressure
	// would never read 1.0 at true saturation.
	total int
}

// NewShardedScheduler starts n scheduler shards over store. The
// deployment-wide sizing in cfg is divided across shards: each shard gets
// ceil(Workers/n) workers and ceil(GlobalQueue/n) global-queue slots, so
// the fleet's total fetch concurrency and queue budget match what a
// single scheduler with the same cfg would run (QueuePerSession is
// per-session and passes through unchanged). The store is wrapped in one
// shared CoalescingStore so cross-shard duplicates still cost one DBMS
// fetch. Shared learning state (cfg.Utility, cfg.Obs, cfg.Push) is
// deployment-wide by construction: every shard feeds the same collector,
// pipeline and push registry. Call Close to stop all worker pools.
func NewShardedScheduler(store backend.Store, cfg Config, n int) *ShardedScheduler {
	if n < 1 {
		n = 1
	}
	cfg = cfg.withDefaults()
	per := cfg
	per.Workers = (cfg.Workers + n - 1) / n
	if cfg.GlobalQueue > 0 {
		per.GlobalQueue = (cfg.GlobalQueue + n - 1) / n
	}
	ss := &ShardedScheduler{
		ring:   shard.NewRing(n),
		shards: make([]*Scheduler, n),
		store:  NewCoalescingStore(store),
		total:  cfg.GlobalQueue,
	}
	for i := range ss.shards {
		ss.shards[i] = NewScheduler(ss.store, per)
	}
	return ss
}

// NumShards returns the shard count.
func (ss *ShardedScheduler) NumShards() int { return len(ss.shards) }

// Shard returns the scheduler owning session. Engines are bound to their
// session's shard at construction (core.WithScheduler), so the routing
// hash is paid once per session, not once per request.
func (ss *ShardedScheduler) Shard(session string) *Scheduler {
	return ss.shards[ss.ring.Locate(session)]
}

// Submit routes the batch to the session's shard.
func (ss *ShardedScheduler) Submit(session string, reqs []Request) int {
	return ss.Shard(session).Submit(session, reqs)
}

// CancelSession drops the session's queued entries on its shard.
func (ss *ShardedScheduler) CancelSession(session string) {
	ss.Shard(session).CancelSession(session)
}

// Pressure reports the deployment-wide queue saturation: total pending
// entries over the total global budget. One slammed shard next to idle
// ones therefore reads as partial pressure — the per-shard signal engines
// actually shrink on comes from their own shard's Pressure.
func (ss *ShardedScheduler) Pressure() float64 {
	if ss.total <= 0 {
		return 0
	}
	pending := 0
	for _, sh := range ss.shards {
		st := sh.Stats()
		pending += st.Pending
	}
	p := float64(pending) / float64(ss.total)
	if p > 1 {
		p = 1
	}
	return p
}

// SessionPressure reports the fair-share backpressure signal from the
// session's home shard (fairness is scoped to the sessions actually
// contending on that shard's queue).
func (ss *ShardedScheduler) SessionPressure(session string) float64 {
	return ss.Shard(session).SessionPressure(session)
}

// Stats aggregates the per-shard snapshots into one deployment-wide view.
// Counters are sums of per-shard counters: each shard's are monotone and
// the shard set is fixed for the scheduler's lifetime, so the sums are
// monotone too. Session-keyed maps merge disjointly (a session lives on
// exactly one shard). AvgQueueLatency is weighted by each shard's
// measured entry count, PeakPending is the sum of per-shard peaks (an
// upper bound on the true simultaneous peak), and Pressure is the
// deployment-wide saturation.
func (ss *ShardedScheduler) Stats() Stats {
	var agg Stats
	agg.Shards = len(ss.shards)
	agg.QueueDepths = make(map[string]int)
	agg.SessionPressures = make(map[string]float64)
	var latency time.Duration
	measured := 0
	for _, sh := range ss.shards {
		st, lat, n := sh.statsDetail()
		agg.Queued += st.Queued
		agg.Dropped += st.Dropped
		agg.Shed += st.Shed
		agg.Cancelled += st.Cancelled
		agg.Coalesced += st.Coalesced
		agg.Completed += st.Completed
		agg.Pushed += st.Pushed
		agg.Errors += st.Errors
		agg.Pending += st.Pending
		agg.PeakPending += st.PeakPending
		agg.Inflight += st.Inflight
		agg.Sessions += st.Sessions
		for id, d := range st.QueueDepths {
			agg.QueueDepths[id] = d
		}
		for id, p := range st.SessionPressures {
			agg.SessionPressures[id] = p
		}
		latency += lat
		measured += n
		// The utility collector is shared: every shard reports the same
		// curve, so the first shard's copy is the deployment's.
		if agg.UtilityCurve == nil {
			agg.UtilityCurve = st.UtilityCurve
			agg.UtilityObservations = st.UtilityObservations
		}
	}
	if measured > 0 {
		agg.AvgQueueLatency = latency / time.Duration(measured)
	}
	if ss.total > 0 {
		p := float64(agg.Pending) / float64(ss.total)
		if p > 1 {
			p = 1
		}
		agg.Pressure = p
	}
	agg.CrossShardCoalesced = ss.store.Joined()
	return agg
}

// ShardStats snapshots every shard individually (index = shard id), for
// per-shard observability series.
func (ss *ShardedScheduler) ShardStats() []Stats {
	out := make([]Stats, len(ss.shards))
	for i, sh := range ss.shards {
		out[i] = sh.Stats()
	}
	return out
}

// Drain blocks until every shard's queue and inflight set are empty and
// all deliveries have run.
func (ss *ShardedScheduler) Drain() {
	for _, sh := range ss.shards {
		sh.Drain()
	}
}

// Close stops every shard's worker pool. Idempotent.
func (ss *ShardedScheduler) Close() {
	for _, sh := range ss.shards {
		sh.Close()
	}
}
