// Package prefetch is the middleware's asynchronous prefetch pipeline: a
// server-wide scheduler that decouples the prediction engine (which decides
// *which* tiles to prefetch) from the DBMS fetches that load them. Engines
// submit ranked candidate batches and return immediately; a bounded worker
// pool issues the fetches off the response path, in priority order, with
// per-session fairness.
//
// The design follows Khameleon's split of prediction from a utility-ordered,
// budget-bound fetch scheduler, and Kyrix's middleware-throughput argument
// for multi-user tile serving:
//
//   - each session keeps a priority queue of pending candidates ordered by
//     model confidence, and sessions with pending work are drained
//     round-robin so one aggressive session cannot starve the others;
//   - the worker pool bounds concurrent DBMS fetches (the inflight budget);
//   - duplicate requests coalesce: when N sessions want the same tile, one
//     DBMS fetch is issued and its result is delivered to all N waiters
//     (single-flight), both for queued duplicates and for requests arriving
//     while a fetch is already in flight;
//   - a session's newer batch supersedes its older one: queued entries from
//     previous batches are cancelled before they reach the DBMS, since the
//     predictions they came from are stale.
//
// On top of the per-session queues sits adaptive, utility-aware admission
// control (Khameleon-style diminishing returns):
//
//   - a queued entry's effective utility is its model confidence discounted
//     exponentially by how long it has sat in the queue (DecayHalfLife) and
//     by its rank within its session's batch — a prediction made for a view
//     the user has already left, or the tail of a long speculative batch, is
//     worth less than a fresh front-runner;
//   - GlobalQueue caps the total entries queued across *all* sessions; when
//     a submission would exceed it, the lowest-utility entry anywhere is
//     shed to admit a higher-utility newcomer (or the newcomer is rejected
//     if everything queued outranks it), so stale backlog cannot crowd out
//     fresh predictions;
//   - Pressure reports global queue saturation in [0, 1]; engines use it as
//     a backpressure signal to shrink their prefetch budget K under load
//     (core.WithAdaptiveK) and restore it when the queue drains;
//   - SessionPressure is the fair-share variant: global pressure scaled by
//     how far one session's queue share exceeds its fair share 1/N, so the
//     flooding session's budget collapses first while light sessions keep
//     prefetching at full K (core.WithFairShare);
//   - a FeedbackCollector (Config.Utility) closes the loop from cache
//     outcomes back into admission control: it fits the position-utility
//     curve online from which prefetched tiles clients actually consumed,
//     replacing the static positionBase guess once warmed up.
//
// The scheduler is shared by every session of one deployment and composes
// with backend.SharedPool: the pool deduplicates tiles across time (a tile
// fetched yesterday is still pooled), the scheduler deduplicates fetches in
// flight right now.
package prefetch

import (
	"time"

	"forecache/internal/obs"
	"forecache/internal/tile"
)

// Request is one candidate tile a session asks the scheduler to prefetch.
type Request struct {
	// Coord addresses the wanted tile.
	Coord tile.Coord
	// Score is the recommender's confidence; higher scores are fetched
	// first within the session.
	Score float64
	// Model names the recommender whose prediction asked for the tile; it
	// is attribution carried through to push frames (Config.Push) and may
	// be empty.
	Model string
	// Deliver is invoked with the fetched tile off the response path
	// (typically it inserts into the session's cache region). It must be
	// safe to call from a scheduler worker goroutine. May be nil.
	Deliver func(*tile.Tile)
}

// PushSink is the push-delivery hook the scheduler drives when a
// deployment runs with streaming on (satisfied by *push.Registry; the
// scheduler deliberately depends on this interface, not the push package).
// Both methods must be safe for concurrent use and must never block on a
// slow client, and neither may call back into the scheduler.
type PushSink interface {
	// Push offers one completed fetch to session's stream, reporting
	// whether a frame was enqueued (false: no stream attached or the
	// stream's buffer is full — the tile still lands in the cache either
	// way, so refusal costs nothing but the push).
	Push(session, model string, c tile.Coord, score float64, t *tile.Tile) bool
	// DrainDelay estimates how long session's connection takes to deliver
	// one more tile frame (0 when unknown or no stream is attached).
	// Admission control charges queued entries this much extra age per
	// rank: a tile the connection cannot drain before it decays stale is
	// not worth fetching ahead of fresher work.
	DrainDelay(session string) time.Duration
}

// Config sizes a scheduler.
type Config struct {
	// Workers is the bounded worker pool size: the maximum number of
	// concurrent DBMS fetches (the inflight budget). Default 4.
	Workers int
	// QueuePerSession caps how many entries one session may have queued;
	// submissions beyond the cap drop the lowest-scored entries. Default 64.
	QueuePerSession int
	// GlobalQueue caps the total entries queued across all sessions. When a
	// submission would exceed it, admission control sheds the queued entry
	// with the lowest decayed utility — whichever session owns it — to make
	// room, or rejects the incoming entry if everything queued outranks it.
	// 0 means unlimited (and Pressure always reports 0).
	GlobalQueue int
	// DecayHalfLife is the queue age at which an entry's utility halves.
	// Stale entries therefore lose admission-control fights against fresh
	// ones of equal model confidence. 0 disables age decay.
	DecayHalfLife time.Duration
	// Utility, when set, replaces the static position-decay base with the
	// collector's learned curve: admission control discounts a queued
	// entry ranked at position p by the observed consumption rate of
	// position p relative to the front-runner. The same collector is fed
	// cache outcomes by every session engine (core.WithFeedback). Nil
	// keeps the static curve.
	Utility *FeedbackCollector
	// Obs, when set, receives per-stage latency observations: how long
	// each entry waited queued before its fetch was issued (queue wait)
	// and how long each DBMS fetch took (backend fetch). Nil (the
	// default) costs the hot path nothing beyond a nil check.
	Obs *obs.Pipeline
	// Push, when set, turns on push delivery: every completed fetch is
	// offered to the waiter's session stream after the cache delivery, and
	// admission control discounts queued entries by the session's measured
	// drain rate (DrainDelay × rank of extra age). Nil (the default) is
	// the pure pull path, bit-identical to a scheduler without this field.
	Push PushSink

	// clock overrides time.Now; scheduler tests inject a deterministic
	// clock so decay is testable without sleeps.
	clock func() time.Time
}

// DefaultConfig returns the default scheduler sizing.
func DefaultConfig() Config { return Config{Workers: 4, QueuePerSession: 64} }

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.QueuePerSession <= 0 {
		c.QueuePerSession = d.QueuePerSession
	}
	if c.clock == nil {
		c.clock = time.Now
	}
	return c
}

// Stats snapshots scheduler activity since construction.
type Stats struct {
	// Queued counts entries accepted into the queue.
	Queued int
	// Dropped counts entries rejected at submission: over the per-session
	// queue budget, or refused by global admission control because every
	// queued entry had higher utility.
	Dropped int
	// Shed counts queued entries evicted by global admission control to
	// make room for higher-utility submissions.
	Shed int
	// Cancelled counts queued entries superseded by a newer batch (or a
	// session eviction) before their fetch was issued.
	Cancelled int
	// Coalesced counts entries that shared another entry's DBMS fetch
	// instead of issuing their own (single-flight).
	Coalesced int
	// CrossShardCoalesced counts worker fetches that joined another
	// shard's in-flight DBMS fetch through the deployment-wide
	// single-flight store (ShardedScheduler only; a lone Scheduler's own
	// inflight map already coalesces everything it sees, so this stays 0).
	CrossShardCoalesced int
	// Shards is how many independent scheduler shards the counters were
	// aggregated over (1 for a lone Scheduler).
	Shards int
	// Completed counts entries whose tile was fetched and delivered.
	Completed int
	// Pushed counts completed entries whose tile was also framed onto the
	// session's push stream (Config.Push; 0 on pull-only deployments).
	Pushed int
	// Errors counts entries whose fetch failed.
	Errors int
	// Pending is the number of entries queued right now.
	Pending int
	// PeakPending is the high-water mark of Pending: with a global budget
	// configured it never exceeds Config.GlobalQueue.
	PeakPending int
	// Inflight is the number of DBMS fetches running right now.
	Inflight int
	// Sessions is the number of sessions with scheduler state.
	Sessions int
	// Pressure is the current global queue saturation in [0, 1] (always 0
	// without a global budget); see Scheduler.Pressure.
	Pressure float64
	// QueueDepths maps each tracked session to its live queued entry count.
	QueueDepths map[string]int
	// SessionPressures maps each tracked session to its fair-share
	// backpressure signal (Scheduler.SessionPressure): 0 for sessions at
	// or under their fair share of the queue, ramping to Pressure for a
	// session that owns it.
	SessionPressures map[string]float64
	// AvgQueueLatency is the mean time entries spent queued before their
	// fetch was issued (or joined).
	AvgQueueLatency time.Duration
	// UtilityCurve is the effective position-decay curve when a
	// FeedbackCollector is configured (index = batch position): learned
	// once warmed up, the static base^pos before. Nil without learning.
	UtilityCurve []float64
	// UtilityObservations counts the cache outcomes the curve was fit
	// from (0 without learning).
	UtilityObservations int
}
