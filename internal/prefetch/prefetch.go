// Package prefetch is the middleware's asynchronous prefetch pipeline: a
// server-wide scheduler that decouples the prediction engine (which decides
// *which* tiles to prefetch) from the DBMS fetches that load them. Engines
// submit ranked candidate batches and return immediately; a bounded worker
// pool issues the fetches off the response path, in priority order, with
// per-session fairness.
//
// The design follows Khameleon's split of prediction from a utility-ordered,
// budget-bound fetch scheduler, and Kyrix's middleware-throughput argument
// for multi-user tile serving:
//
//   - each session keeps a priority queue of pending candidates ordered by
//     model confidence, and sessions with pending work are drained
//     round-robin so one aggressive session cannot starve the others;
//   - the worker pool bounds concurrent DBMS fetches (the inflight budget);
//   - duplicate requests coalesce: when N sessions want the same tile, one
//     DBMS fetch is issued and its result is delivered to all N waiters
//     (single-flight), both for queued duplicates and for requests arriving
//     while a fetch is already in flight;
//   - a session's newer batch supersedes its older one: queued entries from
//     previous batches are cancelled before they reach the DBMS, since the
//     predictions they came from are stale.
//
// The scheduler is shared by every session of one deployment and composes
// with backend.SharedPool: the pool deduplicates tiles across time (a tile
// fetched yesterday is still pooled), the scheduler deduplicates fetches in
// flight right now.
package prefetch

import (
	"time"

	"forecache/internal/tile"
)

// Request is one candidate tile a session asks the scheduler to prefetch.
type Request struct {
	// Coord addresses the wanted tile.
	Coord tile.Coord
	// Score is the recommender's confidence; higher scores are fetched
	// first within the session.
	Score float64
	// Deliver is invoked with the fetched tile off the response path
	// (typically it inserts into the session's cache region). It must be
	// safe to call from a scheduler worker goroutine. May be nil.
	Deliver func(*tile.Tile)
}

// Config sizes a scheduler.
type Config struct {
	// Workers is the bounded worker pool size: the maximum number of
	// concurrent DBMS fetches (the inflight budget). Default 4.
	Workers int
	// QueuePerSession caps how many entries one session may have queued;
	// submissions beyond the cap drop the lowest-scored entries. Default 64.
	QueuePerSession int
}

// DefaultConfig returns the default scheduler sizing.
func DefaultConfig() Config { return Config{Workers: 4, QueuePerSession: 64} }

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.QueuePerSession <= 0 {
		c.QueuePerSession = d.QueuePerSession
	}
	return c
}

// Stats snapshots scheduler activity since construction.
type Stats struct {
	// Queued counts entries accepted into the queue.
	Queued int
	// Dropped counts entries rejected by the per-session queue budget.
	Dropped int
	// Cancelled counts queued entries superseded by a newer batch (or a
	// session eviction) before their fetch was issued.
	Cancelled int
	// Coalesced counts entries that shared another entry's DBMS fetch
	// instead of issuing their own (single-flight).
	Coalesced int
	// Completed counts entries whose tile was fetched and delivered.
	Completed int
	// Errors counts entries whose fetch failed.
	Errors int
	// Pending is the number of entries queued right now.
	Pending int
	// Inflight is the number of DBMS fetches running right now.
	Inflight int
	// Sessions is the number of sessions with scheduler state.
	Sessions int
	// AvgQueueLatency is the mean time entries spent queued before their
	// fetch was issued (or joined).
	AvgQueueLatency time.Duration
}
