package prefetch

// This file is the scheduler's per-session backpressure signal. Global
// Pressure (below) reports how full the shared queue is, but treats every
// session alike: when one session floods the queue, AdaptiveK engines all
// shrink together and the flooder's victims pay for its burst. The
// fair-share signal scales the global pressure by how far a session sits
// ABOVE its fair share 1/N of the pending queue, so the flooding session's
// budget collapses first while sessions at or under their share keep
// prefetching at full K (they are not the reason the queue is full).

// Pressure reports the global queue's saturation in [0, 1]: how full the
// GlobalQueue budget is right now. It is the scheduler→engine backpressure
// signal: engines built with core.WithAdaptiveK shrink their prefetch
// budget K as pressure rises and restore it when the queue drains. Without
// a global budget the signal is always 0.
func (s *Scheduler) Pressure() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pressureLocked()
}

func (s *Scheduler) pressureLocked() float64 {
	if s.cfg.GlobalQueue <= 0 {
		return 0
	}
	p := float64(s.stats.Pending) / float64(s.cfg.GlobalQueue)
	if p > 1 {
		p = 1
	}
	return p
}

// SessionPressure reports backpressure scoped to one session: the global
// pressure scaled by how far the session's share of the pending queue
// exceeds its fair share 1/N (N = sessions with queued work). A session at
// or under fair share reads 0 — it keeps its full prefetch budget no
// matter how hard others flood — and the signal ramps linearly to the full
// global pressure as one session approaches owning the whole queue. A lone
// occupant is by definition the flooder and reads the global pressure
// unscaled. Engines opt in with core.WithFairShare.
func (s *Scheduler) SessionPressure(session string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessionPressureLocked(session, s.active)
}

func (s *Scheduler) sessionPressureLocked(session string, active int) float64 {
	p := s.pressureLocked()
	if p == 0 || s.stats.Pending <= 0 {
		return 0
	}
	sq := s.sessions[session]
	if sq == nil || sq.queued == 0 {
		return 0 // nothing queued: this session is not crowding anyone
	}
	if active <= 1 {
		return p // sole occupant: fair share is the whole queue
	}
	share := float64(sq.queued) / float64(s.stats.Pending)
	fair := 1 / float64(active)
	over := (share - fair) / (1 - fair)
	if over <= 0 {
		return 0
	}
	if over > 1 {
		over = 1
	}
	return p * over
}
