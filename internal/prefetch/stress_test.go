package prefetch

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"forecache/internal/backend"
	"forecache/internal/tile"
)

// slowStore models a slow DBMS: every fetch parks briefly, so queues
// actually back up and the global budget, decay and shedding paths run hot.
type slowStore struct {
	delay   time.Duration
	fetches atomic.Int64
}

func (s *slowStore) FetchQuiet(c tile.Coord) (*tile.Tile, error) {
	s.fetches.Add(1)
	time.Sleep(s.delay)
	return &tile.Tile{Coord: c, Size: 1}, nil
}

func (s *slowStore) Fetch(c tile.Coord) (*tile.Tile, error) { return s.FetchQuiet(c) }
func (s *slowStore) Latency() backend.LatencyModel          { return backend.LatencyModel{} }
func (s *slowStore) Pyramid() *tile.Pyramid                 { return nil }

// TestStressFiftySessions hammers the scheduler with 50 concurrent sessions
// submitting, cancelling and probing stats against a slow backend (run with
// -race). It asserts the three hard invariants of the adaptive pipeline:
//
//   - no deadlock: every submitter finishes and Drain returns;
//   - the global budget is never exceeded (PeakPending is the exact
//     lock-held high-water mark of the queue);
//   - no delivery after eviction: cancelled- or shed-while-queued entries
//     never deliver, so total Deliver invocations equal Completed exactly
//     and the per-entry accounting (queued = cancelled+shed+completed+
//     errors) balances.
func TestStressFiftySessions(t *testing.T) {
	const (
		sessions    = 50
		rounds      = 30
		batchSize   = 6
		globalQueue = 64
	)
	store := &slowStore{delay: 200 * time.Microsecond}
	s := NewScheduler(store, Config{
		Workers:         4,
		QueuePerSession: 8,
		GlobalQueue:     globalQueue,
		DecayHalfLife:   5 * time.Millisecond,
	})

	var delivered atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			id := fmt.Sprintf("sess-%02d", g)
			for r := 0; r < rounds; r++ {
				batch := make([]Request, batchSize)
				for i := range batch {
					// Overlapping coordinate space across sessions so the
					// single-flight path coalesces under contention.
					batch[i] = Request{
						Coord:   coordAt(rng.Intn(48)),
						Score:   rng.Float64()*2 - 0.5, // negatives included
						Deliver: func(*tile.Tile) { delivered.Add(1) },
					}
				}
				s.Submit(id, batch)
				switch {
				case r%11 == 10:
					s.CancelSession(id) // eviction mid-stream; state rebuilt on next Submit
				case r%7 == 3:
					if st := s.Stats(); st.Pending > globalQueue {
						t.Errorf("observed Pending %d over global budget %d", st.Pending, globalQueue)
					}
					if p := s.Pressure(); p < 0 || p > 1 {
						t.Errorf("pressure %v outside [0,1]", p)
					}
				}
			}
			if g%2 == 0 {
				s.CancelSession(id)
			}
		}(g)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		s.Drain()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("deadlock: stress run did not drain")
	}

	st := s.Stats()
	if st.Pending != 0 {
		t.Errorf("Pending = %d after Drain, want 0", st.Pending)
	}
	if st.PeakPending > globalQueue {
		t.Errorf("PeakPending = %d, global budget %d was exceeded", st.PeakPending, globalQueue)
	}
	if got := st.Cancelled + st.Completed + st.Errors + st.Shed; got != st.Queued {
		t.Errorf("Cancelled+Completed+Errors+Shed = %d, want Queued = %d (%+v)", got, st.Queued, st)
	}
	if got := delivered.Load(); got != int64(st.Completed) {
		t.Errorf("Deliver ran %d times, Completed = %d — an evicted or shed entry was delivered", got, st.Completed)
	}
	s.Close()
	if after := delivered.Load(); after != int64(st.Completed) {
		t.Errorf("deliveries continued after Close: %d -> %d", st.Completed, after)
	}
	t.Logf("stress stats: %+v, DBMS fetches: %d", st, store.fetches.Load())
}

// TestNoDeliveryAfterEviction is the deterministic core of the eviction
// guarantee: once CancelSession returns, entries that were still queued can
// never deliver. Both workers are parked on gated fetches, so the victim's
// whole batch is provably queued (not in flight) when the cancel lands.
func TestNoDeliveryAfterEviction(t *testing.T) {
	store := newFakeStore()
	store.gate = make(chan struct{})
	store.started = make(chan tile.Coord, 16)
	s := NewScheduler(store, Config{Workers: 2, GlobalQueue: 32})
	defer s.Close()

	s.Submit("parkA", []Request{{Coord: coordAt(100), Score: 1}})
	s.Submit("parkB", []Request{{Coord: coordAt(101), Score: 1}})
	<-store.started
	<-store.started

	var victimDelivered atomic.Int64
	s.Submit("victim", []Request{
		{Coord: coordAt(0), Score: 4, Deliver: func(*tile.Tile) { victimDelivered.Add(1) }},
		{Coord: coordAt(1), Score: 3, Deliver: func(*tile.Tile) { victimDelivered.Add(1) }},
		{Coord: coordAt(2), Score: 2, Deliver: func(*tile.Tile) { victimDelivered.Add(1) }},
		{Coord: coordAt(3), Score: 1, Deliver: func(*tile.Tile) { victimDelivered.Add(1) }},
	})
	s.CancelSession("victim")
	close(store.gate)
	s.Drain()

	if got := victimDelivered.Load(); got != 0 {
		t.Errorf("evicted session received %d deliveries, want 0", got)
	}
	st := s.Stats()
	if st.Cancelled != 4 {
		t.Errorf("Cancelled = %d, want 4", st.Cancelled)
	}
	if _, tracked := st.QueueDepths["victim"]; tracked {
		t.Error("cancelled session still tracked in QueueDepths")
	}
	for i := 0; i < 4; i++ {
		if store.count(coordAt(i)) != 0 {
			t.Errorf("evicted session's tile %d reached the DBMS", i)
		}
	}
}

// TestStressCancelDuringShedding interleaves CancelSession with saturated
// submissions so shedding, superseding and eviction race on the same
// sessions (run with -race; guards the shed-heap's lazy invalidation).
func TestStressCancelDuringShedding(t *testing.T) {
	store := &slowStore{delay: 50 * time.Microsecond}
	s := NewScheduler(store, Config{
		Workers:         2,
		QueuePerSession: 4,
		GlobalQueue:     8,
		DecayHalfLife:   time.Millisecond,
	})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", g%4) // 4 shared ids: heavy self-contention
			rng := rand.New(rand.NewSource(int64(g)))
			for r := 0; r < 50; r++ {
				batch := make([]Request, 4)
				for i := range batch {
					batch[i] = Request{Coord: coordAt(rng.Intn(12)), Score: rng.Float64()}
				}
				s.Submit(id, batch)
				if r%5 == 4 {
					s.CancelSession(id)
				}
			}
		}(g)
	}
	wg.Wait()
	s.Drain()
	st := s.Stats()
	if st.PeakPending > 8 {
		t.Errorf("PeakPending = %d over budget 8", st.PeakPending)
	}
	if got := st.Cancelled + st.Completed + st.Errors + st.Shed; got != st.Queued {
		t.Errorf("accounting: %d != Queued %d (%+v)", got, st.Queued, st)
	}
	s.Close()
}

// BenchmarkSchedulerSaturated measures Submit throughput with the global
// budget hit and decay active — the adaptive path's worst case: every
// admission builds or consults the shed heap. Compare with
// BenchmarkSchedulerSubmitDrain (the PR 1 unsaturated baseline).
func BenchmarkSchedulerSaturated(b *testing.B) {
	store := &slowStore{delay: 20 * time.Microsecond}
	s := NewScheduler(store, Config{
		Workers:         8,
		QueuePerSession: 64,
		GlobalQueue:     128,
		DecayHalfLife:   time.Millisecond,
	})
	defer s.Close()
	const sessions = 8
	batches := make([][]Request, sessions)
	for g := range batches {
		batch := make([]Request, 32)
		for i := range batch {
			batch[i] = Request{Coord: coordAt(g*32 + i), Score: float64(i % 16)}
		}
		batches[g] = batch
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for g := range batches {
			s.Submit(fmt.Sprintf("s%d", g), batches[g])
		}
	}
	b.StopTimer()
	s.Drain()
	st := s.Stats()
	if st.Shed == 0 && st.Dropped == 0 && b.N > 4 {
		b.Fatalf("benchmark never saturated: %+v", st)
	}
}
