package core

import (
	"testing"

	"forecache/internal/prefetch"
	"forecache/internal/trace"
)

// The Allocations hot path runs once (sometimes twice, under backpressure)
// per tile request in every session engine, so the adaptive wrapper's cost
// on top of the static table is a per-request tax. The three benchmarks
// bracket it: the static table alone, the cold wrapper (warmup check +
// base fallback), and the warmed wrapper (EWMA lookups + hysteresis step +
// largest-remainder rounding). Results recorded in BENCH_alloc.json.

func BenchmarkAllocationsStatic(b *testing.B) {
	p := NewHybridPolicy("markov3", "sb:sift")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Allocations(trace.Navigation, 5)
	}
}

func BenchmarkAllocationsAdaptiveCold(b *testing.B) {
	fc := prefetch.NewFeedbackCollector(5)
	base := NewHybridPolicy("markov3", "sb:sift")
	p, err := NewAdaptivePolicy(base, []string{"markov3", "sb:sift"}, fc, AdaptiveConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Allocations(trace.Navigation, 5)
	}
}

// Warmed steady state: the phase has converged and no new outcomes arrived
// since the last call — the common case (one batched rate probe, no step,
// exact-sum rounding).
func BenchmarkAllocationsAdaptiveWarmed(b *testing.B) {
	fc := prefetch.NewFeedbackCollector(5)
	base := NewHybridPolicy("markov3", "sb:sift")
	p, err := NewAdaptivePolicy(base, []string{"markov3", "sb:sift"}, fc, AdaptiveConfig{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		fc.Observe(trace.Navigation, "markov3", i%5, true)
		fc.Observe(trace.Navigation, "sb:sift", i%5, i%2 == 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Allocations(trace.Navigation, 5)
	}
}

// Warmed with fresh evidence every call: the upper bound, paying the
// hysteresis step (and the Observe that feeds it) on every reallocation.
func BenchmarkAllocationsAdaptiveStepping(b *testing.B) {
	fc := prefetch.NewFeedbackCollector(5)
	base := NewHybridPolicy("markov3", "sb:sift")
	p, err := NewAdaptivePolicy(base, []string{"markov3", "sb:sift"}, fc, AdaptiveConfig{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		fc.Observe(trace.Navigation, "markov3", i%5, true)
		fc.Observe(trace.Navigation, "sb:sift", i%5, i%2 == 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fc.Observe(trace.Navigation, "markov3", i%5, i%3 != 0)
		p.Allocations(trace.Navigation, 5)
	}
}
