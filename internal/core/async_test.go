package core

import (
	"sync"
	"testing"

	"forecache/internal/backend"
	"forecache/internal/prefetch"
	"forecache/internal/recommend"
	"forecache/internal/tile"
)

// gatedStore wraps a DBMS so prefetch (FetchQuiet) fetches block on a gate,
// letting tests hold several sessions' batches queued at once. User-facing
// Fetch passes through ungated.
type gatedStore struct {
	*backend.DBMS
	gate chan struct{}
}

func (g *gatedStore) FetchQuiet(c tile.Coord) (*tile.Tile, error) {
	<-g.gate
	return g.DBMS.FetchQuiet(c)
}

func newAsyncEngine(t *testing.T, store backend.Store, sched Submitter, session string) *Engine {
	t.Helper()
	m := recommend.NewMomentum()
	eng, err := NewEngine(store, nil, SinglePolicy{Model: m.Name()},
		[]recommend.Model{m}, Config{K: 4}, WithScheduler(sched, session))
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Async() {
		t.Fatal("engine should report async mode")
	}
	return eng
}

// TestTwoEnginesCoalesceSharedPrediction is the subsystem's headline
// guarantee: two engines sharing one scheduler and predicting the same
// tiles cause exactly one DBMS fetch per tile.
func TestTwoEnginesCoalesceSharedPrediction(t *testing.T) {
	db := testDBMS(t)
	store := &gatedStore{DBMS: db, gate: make(chan struct{})}
	sched := prefetch.NewScheduler(store, prefetch.Config{Workers: 2})
	defer sched.Close()

	alice := newAsyncEngine(t, store, sched, "alice")
	bob := newAsyncEngine(t, store, sched, "bob")

	// Both sessions request the root: each engine predicts the same 4
	// children (momentum from the root has exactly 4 candidates, K=4).
	// Prefetch fetches are gated, so bob's whole batch is queued or
	// piggybacked while alice's is still in flight.
	respA, err := alice.Request(tile.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	respB, err := bob.Request(tile.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	if len(respA.Prefetched) != 4 || len(respB.Prefetched) != 4 {
		t.Fatalf("submitted %d and %d candidates, want 4 and 4",
			len(respA.Prefetched), len(respB.Prefetched))
	}
	queriesBefore := db.Queries() // the two user-facing root fetches
	if queriesBefore != 2 {
		t.Fatalf("user-facing queries = %d, want 2", queriesBefore)
	}
	close(store.gate)
	sched.Drain()

	// 4 shared predictions, each fetched from the DBMS exactly once.
	if got := db.Queries() - queriesBefore; got != 4 {
		t.Errorf("prefetch DBMS queries = %d, want 4 (one per shared tile)", got)
	}
	st := sched.Stats()
	if st.Coalesced != 4 {
		t.Errorf("Coalesced = %d, want 4 (bob's whole batch)", st.Coalesced)
	}
	if st.Completed != 8 {
		t.Errorf("Completed = %d, want 8 (both sessions' entries delivered)", st.Completed)
	}

	// Both engines' caches were populated off the response path: the next
	// zoom-in hits for both sessions.
	child := tile.Coord{}.Child(tile.NW)
	for name, eng := range map[string]*Engine{"alice": alice, "bob": bob} {
		resp, err := eng.Request(child)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Hit {
			t.Errorf("%s: prefetched child should hit", name)
		}
	}
}

// TestAsyncResetCancelsQueuedPrefetch: Reset drops the session's queued
// scheduler entries.
func TestAsyncResetCancelsQueuedPrefetch(t *testing.T) {
	db := testDBMS(t)
	store := &gatedStore{DBMS: db, gate: make(chan struct{})}
	sched := prefetch.NewScheduler(store, prefetch.Config{Workers: 1})
	defer sched.Close()

	eng := newAsyncEngine(t, store, sched, "s1")
	if _, err := eng.Request(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	eng.Reset()
	close(store.gate)
	sched.Drain()
	st := sched.Stats()
	// With one worker, one entry was in flight when Reset ran; the other
	// three were still queued and must have been cancelled. (The worker may
	// not have popped yet, in which case all four are cancelled.)
	if st.Cancelled < 3 {
		t.Errorf("Cancelled = %d, want >= 3", st.Cancelled)
	}
	if st.Cancelled+st.Completed != st.Queued {
		t.Errorf("accounting: cancelled %d + completed %d != queued %d",
			st.Cancelled, st.Completed, st.Queued)
	}
}

// TestAsyncSupersedingBatches: a session's second request invalidates the
// first request's still-queued predictions.
func TestAsyncSupersedingBatches(t *testing.T) {
	db := testDBMS(t)
	store := &gatedStore{DBMS: db, gate: make(chan struct{})}
	sched := prefetch.NewScheduler(store, prefetch.Config{Workers: 1})
	defer sched.Close()

	eng := newAsyncEngine(t, store, sched, "s1")
	if _, err := eng.Request(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Request(tile.Coord{}.Child(tile.NW)); err != nil {
		t.Fatal(err)
	}
	close(store.gate)
	sched.Drain()
	st := sched.Stats()
	if st.Cancelled == 0 {
		t.Error("second batch should cancel the first batch's queued entries")
	}
	if st.Cancelled+st.Completed+st.Coalesced < st.Queued {
		t.Errorf("unaccounted entries: %+v", st)
	}
}

// TestSyncModeUnchanged: without a scheduler the engine still prefetches
// inline — the eval harness's deterministic path.
func TestSyncModeUnchanged(t *testing.T) {
	db := testDBMS(t)
	m := recommend.NewMomentum()
	eng, err := NewEngine(db, nil, SinglePolicy{Model: m.Name()},
		[]recommend.Model{m}, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Async() {
		t.Fatal("engine without scheduler must be synchronous")
	}
	resp, err := eng.Request(tile.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Prefetched) != 4 {
		t.Fatalf("prefetched = %v", resp.Prefetched)
	}
	// Inline mode: tiles are already cached when Request returns.
	resp2, err := eng.Request(tile.Coord{}.Child(tile.NW))
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Hit {
		t.Error("synchronously prefetched child should hit")
	}
}

// TestConcurrentAsyncEngines runs several async engines against one
// scheduler under -race.
func TestConcurrentAsyncEngines(t *testing.T) {
	db := testDBMS(t)
	sched := prefetch.NewScheduler(db, prefetch.Config{Workers: 4})
	defer sched.Close()

	var wg sync.WaitGroup
	for _, id := range []string{"a", "b", "c", "d"} {
		eng := newAsyncEngine(t, db, sched, id)
		wg.Add(1)
		go func(eng *Engine) {
			defer wg.Done()
			cur := tile.Coord{}
			if _, err := eng.Request(cur); err != nil {
				t.Error(err)
				return
			}
			for cur.Level < 2 {
				cur = cur.Child(tile.SE)
				if _, err := eng.Request(cur); err != nil {
					t.Error(err)
					return
				}
			}
		}(eng)
	}
	wg.Wait()
	sched.Drain()
	st := sched.Stats()
	if st.Pending != 0 || st.Inflight != 0 {
		t.Errorf("scheduler not drained: %+v", st)
	}
}

// TestResetDropsStaleDeliveries: tiles submitted before a Reset must not
// repopulate the freshly cleared cache when their fetches complete.
func TestResetDropsStaleDeliveries(t *testing.T) {
	db := testDBMS(t)
	store := &gatedStore{DBMS: db, gate: make(chan struct{})}
	sched := prefetch.NewScheduler(store, prefetch.Config{Workers: 2})
	defer sched.Close()

	eng := newAsyncEngine(t, store, sched, "s1")
	resp, err := eng.Request(tile.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Reset() // cancels queued entries; in-flight fetches still complete
	close(store.gate)
	sched.Drain()

	if st := eng.CacheStats(); st.Prefetched != 0 {
		t.Errorf("Prefetched = %d after Reset, want 0 (stale deliveries dropped)", st.Prefetched)
	}
	for _, c := range resp.Prefetched {
		if got, _ := eng.Request(c); got != nil && got.Hit {
			t.Errorf("stale prefetched tile %v hit after Reset", c)
		}
		break // one probe suffices (and keeps the move legal)
	}
}

// TestDetachSchedulerFallsBackToInline: a detached engine keeps serving,
// prefetching inline.
func TestDetachSchedulerFallsBackToInline(t *testing.T) {
	db := testDBMS(t)
	sched := prefetch.NewScheduler(db, prefetch.Config{Workers: 2})
	defer sched.Close()

	eng := newAsyncEngine(t, db, sched, "s1")
	eng.DetachScheduler()
	if eng.Async() {
		t.Fatal("engine should be synchronous after detach")
	}
	if _, err := eng.Request(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	// Inline prefetch: the child is cached by the time Request returns.
	resp, err := eng.Request(tile.Coord{}.Child(tile.NW))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Hit {
		t.Error("inline-prefetched child should hit after detach")
	}
}
