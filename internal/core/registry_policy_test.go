package core

import (
	"strings"
	"testing"

	"forecache/internal/prefetch"
	"forecache/internal/recommend"
	"forecache/internal/trace"
)

// twoWayColumns / threeWayColumns are the default registry prior tables,
// as a policy input.
func specColumns(t *testing.T, hotspot bool) []recommend.PriorColumn {
	t.Helper()
	var hs *recommend.HotspotConfig
	if hotspot {
		hs = &recommend.HotspotConfig{}
	}
	specs := recommend.DefaultSpecs(3, []string{"sift"}, hs)
	cols := make([]recommend.PriorColumn, len(specs))
	for i, s := range specs {
		cols[i] = recommend.PriorColumn{Model: s.Name, Claim: s.Prior}
	}
	return cols
}

// TestRegistryPolicyMatchesHybrid: the two-model registry table must
// reproduce the paper's §5.4.3 HybridPolicy exactly, for every phase and
// budget — the refactor may not change what deployments allocate.
func TestRegistryPolicyMatchesHybrid(t *testing.T) {
	rp, err := NewRegistryPolicy(specColumns(t, false))
	if err != nil {
		t.Fatal(err)
	}
	hybrid := NewHybridPolicy("markov3", "sb:sift")
	for _, ph := range append(trace.AllPhases(), trace.PhaseUnknown) {
		for k := 0; k <= 9; k++ {
			got := rp.Allocations(ph, k)
			want := hybrid.Allocations(ph, k)
			if len(got) != len(want) {
				t.Fatalf("phase %v k=%d: registry %v, hybrid %v", ph, k, got, want)
			}
			for m, n := range want {
				if got[m] != n {
					t.Fatalf("phase %v k=%d: registry %v, hybrid %v", ph, k, got, want)
				}
			}
		}
	}
	if models := rp.Models(); len(models) != 2 || models[0] != "markov3" || models[1] != "sb:sift" {
		t.Errorf("Models() = %v", models)
	}
}

// TestRegistryPolicyThreeWay pins the extended table at the headline k=5
// and asserts the invariants that must hold at every k: allocations sum to
// exactly k and never name an unregistered model.
func TestRegistryPolicyThreeWay(t *testing.T) {
	rp, err := NewRegistryPolicy(specColumns(t, true))
	if err != nil {
		t.Fatal(err)
	}
	want := map[trace.Phase]map[string]int{
		trace.Foraging:    {"markov3": 3, "hotspot": 1, "sb:sift": 1},
		trace.Navigation:  {"markov3": 3, "hotspot": 1, "sb:sift": 1},
		trace.Sensemaking: {"hotspot": 1, "sb:sift": 4},
	}
	for ph, exp := range want {
		got := rp.Allocations(ph, 5)
		if len(got) != len(exp) {
			t.Fatalf("phase %v: %v, want %v", ph, got, exp)
		}
		for m, n := range exp {
			if got[m] != n {
				t.Fatalf("phase %v: %v, want %v", ph, got, exp)
			}
		}
	}
	registered := map[string]bool{}
	for _, m := range rp.Models() {
		registered[m] = true
	}
	for _, ph := range trace.AllPhases() {
		for k := 0; k <= 9; k++ {
			got := rp.Allocations(ph, k)
			sum := 0
			for m, n := range got {
				if !registered[m] {
					t.Fatalf("phase %v k=%d allocated to unregistered %q", ph, k, m)
				}
				if n <= 0 {
					t.Fatalf("phase %v k=%d: non-positive slot count %d", ph, k, n)
				}
				sum += n
			}
			if sum != k {
				t.Errorf("phase %v k=%d: allocations sum to %d", ph, k, sum)
			}
		}
	}
}

func TestRegistryPolicyValidation(t *testing.T) {
	if _, err := NewRegistryPolicy(nil); err == nil {
		t.Error("no columns should fail")
	}
	cols := specColumns(t, false)
	if _, err := NewRegistryPolicy(append(cols, cols[0])); err == nil {
		t.Error("duplicate model should fail")
	}
	broken := specColumns(t, false)
	broken[0].Claim = nil
	if _, err := NewRegistryPolicy(broken); err == nil {
		t.Error("nil claim should fail")
	}
}

// TestAdaptiveConfigValidate: zero means default, in-range values pass,
// out-of-range values are construction errors (the facade surfaces them
// through MiddlewareConfig / the serve flags).
func TestAdaptiveConfigValidate(t *testing.T) {
	ok := []AdaptiveConfig{
		{},
		{Floor: 0.25, Warmup: 10, MaxStep: 0.5},
		{MaxStep: 1},
	}
	for _, cfg := range ok {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
	bad := []AdaptiveConfig{
		{Floor: -0.1},
		{Floor: 1},
		{Floor: 1.5},
		{Warmup: -1},
		{MaxStep: -0.5},
		{MaxStep: 1.01},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
	}
	// NewAdaptivePolicy rejects the same values.
	base := NewHybridPolicy("ab", "sb")
	if _, err := NewAdaptivePolicy(base, []string{"ab", "sb"}, nil, AdaptiveConfig{Floor: -1}); err == nil ||
		!strings.Contains(err.Error(), "floor") {
		t.Errorf("NewAdaptivePolicy with bad floor: %v", err)
	}
}

// TestAdaptiveShiftThenRecover is the dataset-shift regression for the
// allocation loop, over the REAL collector: model "a" dominates
// consumption, the learned split follows it; then the workload shifts and
// only "b" gets consumed — evidence decay (half-life on stale buckets)
// lets the split re-learn toward "b" instead of being pinned by a's
// historical rate.
func TestAdaptiveShiftThenRecover(t *testing.T) {
	fc := prefetch.NewFeedbackCollector(5)
	fc.SetAllocationHalfLife(60)
	base := OriginalPolicy{ABName: "a", SBName: "b"}
	p, err := NewAdaptivePolicy(base, []string{"a", "b"}, fc, AdaptiveConfig{
		Floor: 0.1, Warmup: 10, MaxStep: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	const ph = trace.Foraging
	share := func() (a, b float64) {
		shares := p.Shares()[ph]
		return shares["a"], shares["b"]
	}
	// Regime 1: a's prefetches get consumed, b's never do.
	for i := 0; i < 300; i++ {
		fc.Observe(ph, "a", i%5, true)
		fc.Observe(ph, "b", i%5, false)
		p.Allocations(ph, 5)
	}
	a1, b1 := share()
	if a1 < 0.8 || b1 > 0.2 {
		t.Fatalf("regime 1 shares a=%.3f b=%.3f, want a dominant", a1, b1)
	}
	alloc := p.Allocations(ph, 5)
	if alloc["a"] < 4 {
		t.Fatalf("regime 1 allocation %v, want a holding >= 4 slots", alloc)
	}

	// Regime 2 (the shift): a stops being consumed entirely — its
	// prefetches stop flowing, so its buckets go silent — while b's
	// consumption takes over. a's stale rate must decay, the target flip,
	// and the smoothed shares recover toward b.
	for i := 0; i < 600; i++ {
		fc.Observe(ph, "b", i%5, true)
		p.Allocations(ph, 5)
	}
	a2, b2 := share()
	if b2 < 0.8 || a2 > 0.2 {
		t.Errorf("after the shift shares a=%.3f b=%.3f, want b dominant (decay re-learned)", a2, b2)
	}
	alloc = p.Allocations(ph, 5)
	if alloc["b"] < 4 {
		t.Errorf("post-shift allocation %v, want b holding >= 4 slots", alloc)
	}
	// The floor held through both regimes: the losing model keeps its
	// exploration slot.
	if alloc["a"] < 1 {
		t.Errorf("post-shift allocation %v starved a below the floor slot", alloc)
	}
}
