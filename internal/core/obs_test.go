package core

import (
	"sync"
	"testing"

	"forecache/internal/obs"
	"forecache/internal/recommend"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

// consumptionRecorder is a fake ConsumptionObserver counting calls per
// coordinate.
type consumptionRecorder struct {
	mu    sync.Mutex
	seen  map[tile.Coord]int
	calls int
}

func newConsumptionRecorder() *consumptionRecorder {
	return &consumptionRecorder{seen: make(map[tile.Coord]int)}
}

func (r *consumptionRecorder) ObserveConsumption(c tile.Coord, _ trace.Phase) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen[c]++
	r.calls++
}

func (r *consumptionRecorder) count(c tile.Coord) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen[c]
}

func obsEngine(t testing.TB, k int, opts ...Option) *Engine {
	t.Helper()
	db := testDBMS(t)
	ab, err := recommend.NewAB(3, zoomTraces(4))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(db, nil, SinglePolicy{Model: ab.Name()},
		[]recommend.Model{ab}, Config{K: k}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestMissFeedsConsumption: a request-path miss is reported to the
// consumption sink exactly once — the hotspot table learns the tiles the
// prefetcher failed to anticipate, not only the ones it got right.
func TestMissFeedsConsumption(t *testing.T) {
	rec := newConsumptionRecorder()
	eng := obsEngine(t, 4, WithConsumption(rec))
	c := tile.Coord{}
	if _, err := eng.Request(c); err != nil {
		t.Fatal(err)
	}
	if got := rec.count(c); got != 1 {
		t.Fatalf("miss consumption reported %d times, want 1", got)
	}
}

// TestPrefetchHitNotDoubleCounted: a tile consumed out of a prediction
// region is reported once (via the outcome stream) — the request-path
// feed must not add a second observation for a cache hit.
func TestPrefetchHitNotDoubleCounted(t *testing.T) {
	rec := newConsumptionRecorder()
	eng := obsEngine(t, 8, WithConsumption(rec))
	// Walk the AB model's trained zoom path so the next tile is prefetched.
	c := tile.Coord{}
	if _, err := eng.Request(c); err != nil {
		t.Fatal(err)
	}
	next := trace.Apply(c, trace.ZoomInNW)
	resp, err := eng.Request(next)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Hit {
		t.Fatal("trained zoom step should be prefetched (test setup)")
	}
	if got := rec.count(next); got != 1 {
		t.Fatalf("prefetched-hit consumption reported %d times, want exactly 1", got)
	}
}

// TestRequestTracedSpans: the engine annotates a caller-owned trace with
// cache_lookup / backend_fetch / prefetch spans and the hit-miss outcome.
func TestRequestTracedSpans(t *testing.T) {
	p := obs.NewPipeline(obs.Config{})
	eng := obsEngine(t, 4, WithObs(p))

	rt := p.StartTrace("sess", "q")
	if _, err := eng.RequestTraced(tile.Coord{}, rt); err != nil {
		t.Fatal(err)
	}
	rt.Finish()

	traces := p.Traces.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("got %d traces", len(traces))
	}
	tr := traces[0]
	if tr.Outcome != obs.OutcomeMiss {
		t.Errorf("outcome = %q, want miss (cold cache)", tr.Outcome)
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"cache_lookup", "backend_fetch", "prefetch"} {
		if !names[want] {
			t.Errorf("missing span %q (spans: %v)", want, tr.Spans)
		}
	}
	// The sync miss also feeds the backend-fetch histogram (K prefetch
	// fetches feed it too).
	if got := p.BackendFetch.Snapshot().Count; got == 0 {
		t.Error("backend-fetch histogram never fed on the sync path")
	}
}

// TestRequestTracedNilTrace: a nil trace must be a usable no-op (the
// untraced path).
func TestRequestTracedNilTrace(t *testing.T) {
	eng := obsEngine(t, 4)
	if _, err := eng.RequestTraced(tile.Coord{}, nil); err != nil {
		t.Fatal(err)
	}
}
