package core

import (
	"testing"

	"forecache/internal/recommend"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

// Failure-injection tests: the middleware must degrade gracefully when
// pieces misbehave, not crash the session.

// flakyModel returns rankings that include coordinates outside the
// pyramid; the prefetcher must skip them without failing the request.
type flakyModel struct{}

func (flakyModel) Name() string          { return "flaky" }
func (flakyModel) Observe(trace.Request) {}
func (flakyModel) Reset()                {}
func (flakyModel) Predict(req trace.Request, cands []recommend.Candidate, h *trace.History) []recommend.Ranked {
	out := []recommend.Ranked{
		{Coord: tile.Coord{Level: 99, Y: 0, X: 0}, Score: 10}, // bogus
	}
	for _, c := range cands {
		out = append(out, recommend.Ranked{Coord: c.Coord, Score: 1})
	}
	return out
}

func TestEngineSurvivesBogusPredictions(t *testing.T) {
	db := testDBMS(t)
	eng, err := NewEngine(db, nil, SinglePolicy{Model: "flaky"},
		[]recommend.Model{flakyModel{}}, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Request(tile.Coord{})
	if err != nil {
		t.Fatalf("request with flaky model: %v", err)
	}
	for _, c := range resp.Prefetched {
		if c.Level == 99 {
			t.Error("bogus coordinate should not be prefetched")
		}
	}
	// Real candidates from the model's tail must still be fetched.
	if len(resp.Prefetched) == 0 {
		t.Error("valid predictions should survive the bogus one")
	}
}

// emptyModel never predicts anything.
type emptyModel struct{}

func (emptyModel) Name() string          { return "empty" }
func (emptyModel) Observe(trace.Request) {}
func (emptyModel) Reset()                {}
func (emptyModel) Predict(trace.Request, []recommend.Candidate, *trace.History) []recommend.Ranked {
	return nil
}

func TestEngineSurvivesEmptyPredictions(t *testing.T) {
	db := testDBMS(t)
	eng, err := NewEngine(db, nil, SinglePolicy{Model: "empty"},
		[]recommend.Model{emptyModel{}}, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Request(tile.Coord{}); err != nil {
		t.Fatalf("request with empty model: %v", err)
	}
	// Everything misses, but the session keeps working.
	if _, err := eng.Request(tile.Coord{Level: 1, Y: 0, X: 0}); err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Hits != 0 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineZeroPrefetchBudget(t *testing.T) {
	db := testDBMS(t)
	m := recommend.NewMomentum()
	// K is forced to at least the default by withDefaults, so emulate a
	// starved budget with a policy that allocates nothing.
	eng, err := NewEngine(db, nil, starvedPolicy{}, []recommend.Model{m}, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Request(tile.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Prefetched) != 0 {
		t.Errorf("starved policy should prefetch nothing, got %v", resp.Prefetched)
	}
}

type starvedPolicy struct{}

func (starvedPolicy) Name() string                                     { return "starved" }
func (starvedPolicy) Allocations(ph trace.Phase, k int) map[string]int { return nil }
