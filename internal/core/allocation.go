package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"forecache/internal/trace"
)

// AllocationFeedback is the consumption signal AdaptivePolicy learns from:
// the EWMA rate at which one model's prefetches get consumed under one
// predicted analysis phase, plus how many cache outcomes that rate was fit
// from. Implemented by *prefetch.FeedbackCollector, which every session
// engine of a deployment feeds via WithFeedback.
type AllocationFeedback interface {
	AllocationRate(ph trace.Phase, model string) (rate float64, obs int)
}

// AdaptiveConfig tunes an AdaptivePolicy.
type AdaptiveConfig struct {
	// Floor is the minimum budget share any model keeps in any phase once
	// shares move (exploration: a model allocated zero slots can never earn
	// consumption evidence, so it would stay at zero forever). Clamped to
	// 1/len(models). Default 0.1.
	Floor float64
	// Warmup is the per-(phase, model) observation count below which the
	// phase keeps the base policy's static split. A phase also warms when
	// its TOTAL observations reach Warmup x len(models): a model the prior
	// never allots slots to (e.g. the Actions-Based model in Sensemaking
	// under the §5.4.3 table) collects no outcomes of its own, and the
	// phase-wide evidence is what breaks that chicken-and-egg. Default 30.
	Warmup int
	// MaxStep bounds how far the fastest-moving model's share moves per
	// reallocation (hysteresis): shares drift smoothly toward the observed
	// consumption split instead of thrashing with every noisy outcome. A
	// reallocation only happens when the phase has NEW outcome evidence
	// since the last one, so share movement is proportional to observed
	// consumption, never to how often Allocations is called. Default 0.02.
	MaxStep float64
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Floor == 0 {
		c.Floor = 0.1
	}
	if c.Warmup == 0 {
		c.Warmup = 30
	}
	if c.MaxStep == 0 {
		c.MaxStep = 0.02
	}
	return c
}

// Validate rejects out-of-range tuning values. Zero means "use the
// default" everywhere, so only genuinely nonsensical settings fail:
// a negative or >= 1 floor (the floor is a share, and every model must
// keep one), a negative warmup, or a step outside (0, 1].
func (c AdaptiveConfig) Validate() error {
	if c.Floor < 0 || c.Floor >= 1 {
		return fmt.Errorf("core: allocation floor %v outside [0, 1)", c.Floor)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("core: allocation warmup %d is negative", c.Warmup)
	}
	if c.MaxStep < 0 || c.MaxStep > 1 {
		return fmt.Errorf("core: allocation max step %v outside (0, 1]", c.MaxStep)
	}
	return nil
}

// phaseShares is one phase's allocation state.
type phaseShares struct {
	shares  map[string]float64 // current smoothed share per model, sums to 1
	moved   bool               // shares have diverged from the prior at least once
	lastObs int                // phase outcome total at the last hysteresis step
}

// AdaptivePolicy wraps a base AllocationPolicy and re-splits the prefetch
// budget k per phase in proportion to observed per-(phase, model)
// consumption rates — the closed-loop version of the paper's fixed
// allocation table (§4.4, §5.4.3), in the spirit of Khameleon's
// utility-driven budget reallocation. The base policy is the prior: until a
// (phase, model) bucket has warmed up (AdaptiveConfig.Warmup) the base
// split is returned unchanged, so a cold deployment behaves exactly like
// the static one. Once warmed, each call moves the phase's shares at most
// MaxStep toward the consumption-proportional target (hysteresis), every
// model keeps at least the Floor share (exploration), and the fractional
// shares are rounded to integer slot counts that always sum to exactly k.
//
// One AdaptivePolicy is shared by every session engine of a deployment
// (WithAdaptiveAllocation) so the learned split reflects all traffic; all
// methods are safe for concurrent use.
type AdaptivePolicy struct {
	base   AllocationPolicy
	models []string
	fb     AllocationFeedback
	cfg    AdaptiveConfig

	mu     sync.Mutex
	phases map[trace.Phase]*phaseShares
}

// NewAdaptivePolicy wraps base with feedback-driven per-phase reallocation
// over the named models (the same names base allocates to). fb may be nil,
// in which case the policy never leaves the base split.
func NewAdaptivePolicy(base AllocationPolicy, models []string, fb AllocationFeedback, cfg AdaptiveConfig) (*AdaptivePolicy, error) {
	if base == nil {
		return nil, fmt.Errorf("core: adaptive policy needs a base policy")
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("core: adaptive policy needs at least one model")
	}
	seen := make(map[string]bool, len(models))
	for _, m := range models {
		if seen[m] {
			return nil, fmt.Errorf("core: duplicate model %q in adaptive policy", m)
		}
		seen[m] = true
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if max := 1 / float64(len(models)); cfg.Floor > max {
		cfg.Floor = max
	}
	return &AdaptivePolicy{
		base:   base,
		models: append([]string(nil), models...),
		fb:     fb,
		cfg:    cfg,
		phases: make(map[trace.Phase]*phaseShares),
	}, nil
}

// Name identifies the policy in experiment output.
func (p *AdaptivePolicy) Name() string { return "adaptive(" + p.base.Name() + ")" }

// Allocations returns the per-model slot split for phase ph and budget k.
// While the phase is still warming up this is exactly the base policy's
// split; afterwards it is the smoothed, floored, consumption-proportional
// split rounded so the returned counts sum to exactly k (models rounded to
// zero slots are omitted from the map, matching the base policies). Shares
// step toward the observed split only when the phase has new outcome
// evidence since the last step, so the two Allocations calls a
// backpressured request makes (full-K cache split, shrunk-k fetch split)
// see one consistent share state, and session churn alone never drifts the
// learned split.
func (p *AdaptivePolicy) Allocations(ph trace.Phase, k int) map[string]int {
	if k <= 0 {
		return map[string]int{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.phases[ph]
	if st == nil {
		st = &phaseShares{shares: p.priorShares(ph, k)}
		p.phases[ph] = st
	}
	if p.fb == nil {
		return p.base.Allocations(ph, k)
	}
	rates, obs := p.ratesFor(ph)
	if !warmed(obs, p.cfg.Warmup) {
		if !st.moved {
			return p.base.Allocations(ph, k)
		}
		// The phase warmed once and its shares moved; keep serving the
		// smoothed split rather than snapping back to the prior.
		return roundShares(st.shares, p.models, k)
	}
	total := 0
	for _, o := range obs {
		total += o
	}
	if total != st.lastObs {
		p.stepLocked(st, p.targetShares(rates))
		st.lastObs = total
	}
	return roundShares(st.shares, p.models, k)
}

// ratesFor probes the collector once per model — in a single lock hold
// when the feedback source supports batching (*prefetch.FeedbackCollector
// does) — and returns the per-model consumption rates and observation
// counts, ordered like p.models.
func (p *AdaptivePolicy) ratesFor(ph trace.Phase) ([]float64, []int) {
	if br, ok := p.fb.(interface {
		AllocationRates(ph trace.Phase, models []string) ([]float64, []int)
	}); ok {
		return br.AllocationRates(ph, p.models)
	}
	rates := make([]float64, len(p.models))
	obs := make([]int, len(p.models))
	for i, m := range p.models {
		rates[i], obs[i] = p.fb.AllocationRate(ph, m)
	}
	return rates, obs
}

// warmed reports whether every bucket has warmup observations — or,
// failing that, whether the phase total reaches warmup x len(models) (the
// starved-model escape hatch: a model the prior gives no slots can never
// warm its own bucket, but plenty of phase-wide evidence with none of it
// earned by that model IS evidence).
func warmed(obs []int, warmup int) bool {
	all, total := true, 0
	for _, o := range obs {
		if o < warmup {
			all = false
		}
		total += o
	}
	return all || total >= warmup*len(obs)
}

// Shares snapshots the current smoothed share per (phase, model) under one
// lock hold, so every phase's shares sum to 1 within the same snapshot even
// while reallocations race the scrape. Phases the policy has never been
// asked about are absent.
func (p *AdaptivePolicy) Shares() map[trace.Phase]map[string]float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[trace.Phase]map[string]float64, len(p.phases))
	for ph, st := range p.phases {
		shares := make(map[string]float64, len(st.shares))
		for m, s := range st.shares {
			shares[m] = s
		}
		out[ph] = shares
	}
	return out
}

// Warmed reports whether phase ph has enough consumption evidence for its
// shares to move away from the base policy's prior.
func (p *AdaptivePolicy) Warmed(ph trace.Phase) bool {
	if p.fb == nil {
		return false
	}
	_, obs := p.ratesFor(ph)
	return warmed(obs, p.cfg.Warmup)
}

// Models returns the model names the policy splits the budget across.
func (p *AdaptivePolicy) Models() []string { return append([]string(nil), p.models...) }

// priorShares converts the base policy's split at budget k into fractional
// shares (every model present, zero-allotted ones at 0).
func (p *AdaptivePolicy) priorShares(ph trace.Phase, k int) map[string]float64 {
	alloc := p.base.Allocations(ph, k)
	total := 0
	for _, n := range alloc {
		total += n
	}
	shares := make(map[string]float64, len(p.models))
	for _, m := range p.models {
		if total > 0 {
			shares[m] = float64(alloc[m]) / float64(total)
		} else {
			shares[m] = 1 / float64(len(p.models))
		}
	}
	return shares
}

// targetShares is the consumption-proportional split with the exploration
// floor applied: every model keeps Floor, the remainder is divided in
// proportion to the observed per-(phase, model) consumption rates (equally
// when nothing was consumed at all). rates is ordered like p.models.
func (p *AdaptivePolicy) targetShares(rates []float64) map[string]float64 {
	sum := 0.0
	for _, r := range rates {
		if r > 0 {
			sum += r
		}
	}
	n := float64(len(p.models))
	rest := 1 - p.cfg.Floor*n
	target := make(map[string]float64, len(p.models))
	for i, m := range p.models {
		r := rates[i]
		if r < 0 {
			r = 0
		}
		if sum > 0 {
			target[m] = p.cfg.Floor + rest*r/sum
		} else {
			target[m] = 1 / n
		}
	}
	return target
}

// stepLocked moves the share vector along the straight line toward target,
// scaled so the fastest-moving model moves at most MaxStep. Because both
// vectors sum to 1 the scaled deltas sum to 0 exactly: the shares stay
// normalized without a renormalization pass that would distort the
// slower-moving models' steps (or push a model below the floor) when more
// than two models move asymmetrically.
func (p *AdaptivePolicy) stepLocked(st *phaseShares, target map[string]float64) {
	maxAbs := 0.0
	for _, m := range p.models {
		if d := math.Abs(target[m] - st.shares[m]); d > maxAbs {
			maxAbs = d
		}
	}
	if maxAbs < 1e-12 {
		return
	}
	t := 1.0
	if maxAbs > p.cfg.MaxStep {
		t = p.cfg.MaxStep / maxAbs
	}
	for _, m := range p.models {
		st.shares[m] += t * (target[m] - st.shares[m])
	}
	st.moved = true
}

// roundShares converts fractional shares into integer slot counts summing
// to exactly k (largest-remainder rounding, ties broken by larger share
// then model name so the result is deterministic). When the budget covers
// every model, no model with a positive share is rounded down to zero: the
// exploration floor must survive integer rounding, so a starved model takes
// one slot from the largest allocation.
func roundShares(shares map[string]float64, models []string, k int) map[string]int {
	type slot struct {
		model string
		share float64
		count int
		rem   float64
	}
	slots := make([]*slot, len(models))
	assigned := 0
	for i, m := range models {
		q := shares[m] * float64(k)
		c := int(math.Floor(q + 1e-9))
		slots[i] = &slot{model: m, share: shares[m], count: c, rem: q - float64(c)}
		assigned += c
	}
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].rem != slots[j].rem {
			return slots[i].rem > slots[j].rem
		}
		if slots[i].share != slots[j].share {
			return slots[i].share > slots[j].share
		}
		return slots[i].model < slots[j].model
	})
	for i := 0; assigned < k; i = (i + 1) % len(slots) {
		slots[i].count++
		assigned++
	}
	if k >= len(models) {
		// Anti-starvation: give every positive-share model at least one
		// slot, funded by whichever model holds the most.
		for _, s := range slots {
			if s.count > 0 || s.share <= 0 {
				continue
			}
			donor := slots[0]
			for _, d := range slots[1:] {
				if d.count > donor.count {
					donor = d
				}
			}
			if donor.count > 1 {
				donor.count--
				s.count++
			}
		}
	}
	out := make(map[string]int, len(slots))
	for _, s := range slots {
		if s.count > 0 {
			out[s.model] = s.count
		}
	}
	return out
}
