package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"forecache/internal/trace"
)

// trainedAdaptive returns a policy whose Foraging and Navigation shares
// have moved off the prior, driven by a lopsided fake rater.
func trainedAdaptive(t *testing.T) *AdaptivePolicy {
	t.Helper()
	r := newFakeRater()
	r.set(trace.Foraging, "ab", 0.9, 1000)
	r.set(trace.Foraging, "sb", 0.1, 1000)
	r.set(trace.Navigation, "ab", 0.2, 1000)
	r.set(trace.Navigation, "sb", 0.8, 1000)
	p := mustAdaptive(t, NewHybridPolicy("ab", "sb"), []string{"ab", "sb"}, r, AdaptiveConfig{Floor: 0.1, MaxStep: 0.5})
	for i := 0; i < 8; i++ {
		p.Allocations(trace.Foraging, 8)
		p.Allocations(trace.Navigation, 8)
	}
	return p
}

func TestAllocationStateRoundTripBytes(t *testing.T) {
	p := trainedAdaptive(t)
	first, err := p.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	q := mustAdaptive(t, NewHybridPolicy("ab", "sb"), []string{"ab", "sb"}, newFakeRater(), AdaptiveConfig{Floor: 0.1, MaxStep: 0.5})
	if err := q.ImportState(first); err != nil {
		t.Fatal(err)
	}
	second, err := q.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("export -> import -> export not byte-identical:\n%s\nvs\n%s", first, second)
	}
	if !reflect.DeepEqual(q.Shares(), p.Shares()) {
		t.Errorf("restored shares %v, want %v", q.Shares(), p.Shares())
	}
}

// TestAllocationImportRejectsModelSetMismatch: shares learned over a
// different recommender registry must not restore — the cold-start prior
// is the correct state for a changed model set.
func TestAllocationImportRejectsModelSetMismatch(t *testing.T) {
	raw, err := trainedAdaptive(t).ExportState()
	if err != nil {
		t.Fatal(err)
	}
	renamed := mustAdaptive(t, NewHybridPolicy("ab", "sb"), []string{"ab", "hotspot"}, newFakeRater(), AdaptiveConfig{})
	if err := renamed.ImportState(raw); err == nil {
		t.Error("snapshot with model {ab, sb} imported into policy with {ab, hotspot}")
	}
	grown := mustAdaptive(t, NewHybridPolicy("ab", "sb"), []string{"ab", "sb", "hotspot"}, newFakeRater(), AdaptiveConfig{})
	if err := grown.ImportState(raw); err == nil {
		t.Error("two-model snapshot imported into three-model policy")
	}
}

func TestAllocationImportRejectsBadState(t *testing.T) {
	valid := func() allocationState {
		return allocationState{Phases: []phaseState{{
			Phase:   "Foraging",
			Shares:  map[string]float64{"ab": 0.7, "sb": 0.3},
			Moved:   true,
			LastObs: 40,
		}}}
	}
	cases := []struct {
		name   string
		mutate func(*allocationState)
	}{
		{"unknown phase", func(s *allocationState) { s.Phases[0].Phase = "Dreaming" }},
		{"duplicate phase", func(s *allocationState) { s.Phases = append(s.Phases, s.Phases[0]) }},
		{"share out of range", func(s *allocationState) { s.Phases[0].Shares = map[string]float64{"ab": 1.3, "sb": -0.3} }},
		{"shares do not sum to one", func(s *allocationState) { s.Phases[0].Shares = map[string]float64{"ab": 0.5, "sb": 0.3} }},
		{"negative clock", func(s *allocationState) { s.Phases[0].LastObs = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := valid()
			tc.mutate(&st)
			raw, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			p := trainedAdaptive(t)
			before, _ := p.ExportState()
			if err := p.ImportState(raw); err == nil {
				t.Fatal("bad state imported without error")
			}
			after, _ := p.ExportState()
			if !bytes.Equal(before, after) {
				t.Error("rejected import still mutated the policy")
			}
		})
	}

	p := trainedAdaptive(t)
	if err := p.ImportState([]byte("{not json")); err == nil {
		t.Error("malformed JSON imported without error")
	}
}
