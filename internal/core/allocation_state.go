package core

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"forecache/internal/trace"
)

// This file is the AdaptivePolicy's snapshot surface (internal/persist):
// the learned per-phase share vectors plus the warmup evidence marks
// (moved, lastObs) serialize so a restarted deployment resumes from the
// converged split instead of re-warming from the static prior.

// AllocationStateVersion is the snapshot section format version for
// AdaptivePolicy state.
const AllocationStateVersion = 1

// allocationState is the serialized policy, phases sorted by name so
// export→import→export round-trips byte for byte.
type allocationState struct {
	Phases []phaseState `json:"phases"`
}

// phaseState is one phase's serialized share vector and evidence marks.
type phaseState struct {
	Phase string `json:"phase"`
	// Shares is the smoothed share per model; within a phase they sum to 1.
	Shares map[string]float64 `json:"shares"`
	// Moved records that the shares diverged from the prior at least once
	// (the warmup-regression guard keyed on it survives restarts).
	Moved bool `json:"moved"`
	// LastObs is the phase outcome total at the last hysteresis step.
	LastObs int `json:"last_obs"`
}

// ExportState serializes the per-phase shares under one lock hold.
func (p *AdaptivePolicy) ExportState() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := allocationState{Phases: make([]phaseState, 0, len(p.phases))}
	for ph, ps := range p.phases {
		shares := make(map[string]float64, len(ps.shares))
		for m, v := range ps.shares {
			shares[m] = v
		}
		st.Phases = append(st.Phases, phaseState{
			Phase: ph.String(), Shares: shares, Moved: ps.moved, LastObs: ps.lastObs,
		})
	}
	sort.Slice(st.Phases, func(i, j int) bool { return st.Phases[i].Phase < st.Phases[j].Phase })
	return json.Marshal(st)
}

// ImportState validates a previously exported payload and replaces the
// policy's per-phase shares. A snapshot whose model set differs from the
// policy's (a recommender was added, removed or renamed since the
// snapshot) is rejected wholesale — shares over a different model set are
// meaningless, and the correct recovery is the cold-start prior. On any
// validation failure the policy is left untouched.
func (p *AdaptivePolicy) ImportState(raw []byte) error {
	var st allocationState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("core: allocation state: %w", err)
	}
	phases := make(map[trace.Phase]*phaseShares, len(st.Phases))
	for _, ps := range st.Phases {
		ph, err := trace.ParsePhase(ps.Phase)
		if err != nil {
			return fmt.Errorf("core: allocation state: %w", err)
		}
		if _, dup := phases[ph]; dup {
			return fmt.Errorf("core: allocation state: duplicate phase %s", ps.Phase)
		}
		if len(ps.Shares) != len(p.models) {
			return fmt.Errorf("core: allocation state: phase %s has %d models, policy has %d",
				ps.Phase, len(ps.Shares), len(p.models))
		}
		sum := 0.0
		shares := make(map[string]float64, len(p.models))
		for _, m := range p.models {
			v, ok := ps.Shares[m]
			if !ok {
				return fmt.Errorf("core: allocation state: phase %s is missing model %q", ps.Phase, m)
			}
			if math.IsNaN(v) || v < 0 || v > 1 {
				return fmt.Errorf("core: allocation state: phase %s model %q share %v outside [0, 1]", ps.Phase, m, v)
			}
			shares[m] = v
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("core: allocation state: phase %s shares sum to %v", ps.Phase, sum)
		}
		if ps.LastObs < 0 {
			return fmt.Errorf("core: allocation state: phase %s outcome clock %d negative", ps.Phase, ps.LastObs)
		}
		phases[ph] = &phaseShares{shares: shares, moved: ps.Moved, lastObs: ps.LastObs}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.phases = phases
	return nil
}
