// Package core implements ForeCache's two-level prediction engine, the
// paper's primary contribution (§4). The top level classifies the user's
// current analysis phase from her recent requests; the bottom level runs
// several tile recommendation models in parallel; an allocation policy
// converts the predicted phase into per-model shares of the prefetch
// budget, and the cache manager prefetches the models' top-ranked tiles
// before the user's next request arrives.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"forecache/internal/backend"
	"forecache/internal/cache"
	"forecache/internal/obs"
	"forecache/internal/phase"
	"forecache/internal/prefetch"
	"forecache/internal/recommend"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

// Config sizes one prediction engine / session.
type Config struct {
	// K is the prefetch budget in tiles (the paper sweeps k = 1..8).
	K int
	// D is the prediction distance in moves (paper default d = 1).
	D int
	// HistoryLen is the session history window n.
	HistoryLen int
	// RecentTiles is the LRU region capacity for the last requested tiles.
	RecentTiles int
}

// DefaultConfig mirrors the paper's experimental defaults.
func DefaultConfig() Config {
	return Config{K: 5, D: 1, HistoryLen: 3, RecentTiles: 4}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.K <= 0 {
		c.K = d.K
	}
	if c.D <= 0 {
		c.D = d.D
	}
	if c.HistoryLen <= 0 {
		c.HistoryLen = d.HistoryLen
	}
	if c.RecentTiles <= 0 {
		c.RecentTiles = d.RecentTiles
	}
	return c
}

// Response reports one served tile request.
type Response struct {
	Tile *tile.Tile
	// Hit reports whether the middleware cache already held the tile.
	Hit bool
	// Latency is the modeled service time for this request.
	Latency time.Duration
	// Phase is the classifier's prediction for the user's current phase
	// (PhaseUnknown when the engine runs without a classifier).
	Phase trace.Phase
	// Prefetched lists the tiles fetched ahead for the next request.
	Prefetched []tile.Coord
	// PrefetchBudget is the effective K this request prefetched with: the
	// configured K, shrunk by scheduler backpressure when the engine runs
	// with WithAdaptiveK.
	PrefetchBudget int
}

// Submitter is the asynchronous prefetch pipeline engines hand ranked
// candidate batches to (implemented by *prefetch.Scheduler). Submit
// enqueues a batch and returns immediately; CancelSession drops a
// session's still-queued entries; Pressure reports the pipeline's global
// queue saturation in [0, 1] — the backpressure signal WithAdaptiveK
// engines use to shrink their prefetch budget under load. SessionPressure
// is the fair-share variant of the same signal, scoped to one session:
// sessions at or under their fair share of the queue read 0 while the
// flooding session reads up to the full global pressure (WithFairShare
// engines shrink on it instead).
type Submitter interface {
	Submit(session string, reqs []prefetch.Request) int
	CancelSession(session string)
	Pressure() float64
	SessionPressure(session string) float64
}

// FeedbackObserver receives the cache's prefetch outcomes — "the tile
// prefetched by model at batch position pos, under predicted phase ph, was
// (or was not) consumed" — one call per outcome, drained after every
// request. Implemented by *prefetch.FeedbackCollector, which fits the
// scheduler's position-utility curve and the per-(phase, model)
// consumption rates (the AdaptivePolicy signal) from these observations.
type FeedbackObserver interface {
	Observe(ph trace.Phase, model string, pos int, hit bool)
}

// ConsumptionObserver receives the coordinates of consumed prefetched
// tiles, deduplicated per request: where FeedbackObserver judges each
// MODEL's prediction (so agreeing models all get credit), a
// ConsumptionObserver is told once that the TILE was consumed. It is fed
// from the same cache.Outcome stream, and is how the deployment-wide
// hotspot recommender (*recommend.Hotspot) learns cross-session
// consumption frequencies.
type ConsumptionObserver interface {
	ObserveConsumption(c tile.Coord, ph trace.Phase)
}

// Option customizes an Engine beyond Config.
type Option func(*Engine)

// WithScheduler switches the engine from inline (synchronous) prefetching
// to submit-and-return: after each request the ranked candidates are handed
// to the shared scheduler under the given session id, and the DBMS fetches
// happen off the response path, delivered into this engine's cache as they
// complete. The synchronous default is kept for the eval harness so paper
// experiments stay deterministic.
func WithScheduler(s Submitter, session string) Option {
	return func(e *Engine) {
		e.sched = s
		e.session = session
	}
}

// WithAdaptiveK makes the engine respond to scheduler backpressure: each
// request reads the scheduler's Pressure signal and shrinks the prefetch
// budget from the configured K down toward 1 as the shared queue saturates,
// restoring it as the queue drains. Only meaningful together with
// WithScheduler; a synchronous engine always prefetches with the full K.
func WithAdaptiveK() Option {
	return func(e *Engine) { e.adaptiveK = true }
}

// WithFairShare switches an adaptive engine from the global Pressure
// signal to the scheduler's per-session fair-share signal: the engine's
// budget shrinks only to the extent ITS session crowds the shared queue
// past its fair share, so a flooding session's K collapses first while
// light sessions keep prefetching at full budget. Only meaningful together
// with WithAdaptiveK.
func WithFairShare() Option {
	return func(e *Engine) { e.fairShare = true }
}

// WithFeedback closes the prediction-quality loop: the engine tracks each
// prefetched tile's fate in its cache (consumed vs evicted unconsumed,
// attributed to the model, batch position and predicted phase that
// prefetched it) and reports the outcomes to obs after every request.
// Sharing one *prefetch.FeedbackCollector across a deployment's engines
// and its scheduler lets admission control learn the position-utility
// curve — and the allocation policy the per-phase model split — from real
// consumption instead of the static guesses.
func WithFeedback(obs FeedbackObserver) Option {
	return func(e *Engine) {
		e.feedback = obs
		e.cache.TrackOutcomes(e.feedback != nil || e.consumption != nil)
	}
}

// WithConsumption routes the coordinates of consumed prefetched tiles
// (one call per tile per request, however many models predicted it) to
// obs. Sharing one *recommend.Hotspot across a deployment's engines this
// way is what turns per-session cache outcomes into the population-level
// hotspot signal. Independent of WithFeedback; either alone enables
// outcome tracking.
func WithConsumption(obs ConsumptionObserver) Option {
	return func(e *Engine) {
		e.consumption = obs
		e.cache.TrackOutcomes(e.feedback != nil || e.consumption != nil)
	}
}

// WithObs attaches the deployment's observability pipeline: synchronous
// backend fetches report their wall time, and the engine's cache reports
// each prefetched tile's lead time (insert to first consumption). The
// request-path span breakdown additionally requires the caller to pass a
// trace to RequestTraced. Nil is a no-op.
func WithObs(p *obs.Pipeline) Option {
	return func(e *Engine) {
		e.obs = p
		e.cache.SetObs(p)
	}
}

// WithAdaptiveAllocation replaces the engine's allocation policy with the
// deployment's shared feedback-driven policy: the per-phase budget split
// shifts toward the model whose prefetches actually get consumed (fed by
// the same FeedbackCollector passed to WithFeedback), with the engine's
// static policy table as the prior. Every session engine of a deployment
// shares one *AdaptivePolicy so the learned split reflects all traffic and
// is exported once under /stats and /metrics. The policy must allocate to
// models the engine actually has (NewEngine validates the effective policy
// after options are applied).
func WithAdaptiveAllocation(p *AdaptivePolicy) Option {
	return func(e *Engine) {
		if p != nil {
			e.policy = p
		}
	}
}

// adaptiveBudget maps backpressure to an effective prefetch budget: the
// full K at zero pressure, linearly down to a single tile at saturation.
// One tile is always kept — the top prediction stays worth submitting even
// on a saturated queue, since it may coalesce with another session's fetch.
func adaptiveBudget(k int, pressure float64) int {
	if pressure <= 0 || k <= 1 {
		return k
	}
	if pressure > 1 {
		pressure = 1
	}
	eff := k - int(pressure*float64(k-1)+0.5)
	if eff < 1 {
		eff = 1
	}
	return eff
}

// Engine is one user session's middleware: prediction engine + cache
// manager + DBMS adapter (Figure 5). It is safe for concurrent use, though
// a session's requests are inherently sequential.
type Engine struct {
	cfg         Config
	db          backend.Store
	classifier  *phase.Classifier // nil => phase always PhaseUnknown
	policy      AllocationPolicy
	models      map[string]recommend.Model
	sched       Submitter // nil => inline synchronous prefetch
	session     string
	adaptiveK   bool                // shrink K under scheduler backpressure
	fairShare   bool                // use the per-session fair-share signal
	feedback    FeedbackObserver    // per-(model, position, phase) outcome sink
	consumption ConsumptionObserver // per-tile consumption sink (hotspot)
	obs         *obs.Pipeline       // latency histograms; nil => uninstrumented

	mu      sync.Mutex
	cache   *cache.Manager
	history *trace.History
	last    trace.Request
	started bool
	// epoch increments on Reset so asynchronous deliveries submitted
	// before a Reset cannot repopulate the freshly cleared cache.
	epoch uint64
}

// NewEngine assembles an engine. classifier may be nil (single-model
// baselines); every model named by the policy must be present.
func NewEngine(db backend.Store, classifier *phase.Classifier, policy AllocationPolicy, models []recommend.Model, cfg Config, opts ...Option) (*Engine, error) {
	cfg = cfg.withDefaults()
	if db == nil {
		return nil, fmt.Errorf("core: nil DBMS")
	}
	if policy == nil {
		return nil, fmt.Errorf("core: nil allocation policy")
	}
	byName := make(map[string]recommend.Model, len(models))
	for _, m := range models {
		byName[m.Name()] = m
	}
	e := &Engine{
		cfg:        cfg,
		db:         db,
		classifier: classifier,
		policy:     policy,
		models:     byName,
		cache:      cache.NewManager(cfg.RecentTiles),
		history:    trace.NewHistory(cfg.HistoryLen),
	}
	for _, opt := range opts {
		opt(e)
	}
	// Validate the EFFECTIVE policy (options may have swapped it in, e.g.
	// WithAdaptiveAllocation): every model it can allocate to must exist.
	// A policy that names its models (AdaptivePolicy) is probed read-only —
	// calling Allocations on the deployment's shared learning policy would
	// mutate its state as a side effect of every session construction.
	var names []string
	if mp, ok := e.policy.(interface{ Models() []string }); ok {
		names = mp.Models()
	} else {
		for _, ph := range []trace.Phase{trace.Foraging, trace.Sensemaking} {
			for name := range e.policy.Allocations(ph, cfg.K) {
				names = append(names, name)
			}
		}
	}
	for _, name := range names {
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("core: policy references unknown model %q", name)
		}
	}
	return e, nil
}

// NewEngineFromSet assembles an engine whose model set AND allocation
// policy both come from a registry-built recommend.Set: the per-session
// models are stamped out of the set's shared artifacts and the policy is
// the set's prior-column table (optionally swapped for the deployment's
// shared AdaptivePolicy via WithAdaptiveAllocation). This is the
// registry-era construction path — adding a recommender to the set adds a
// model and a policy column here with no engine-side wiring.
func NewEngineFromSet(db backend.Store, classifier *phase.Classifier, set *recommend.Set, cfg Config, opts ...Option) (*Engine, error) {
	if set == nil {
		return nil, fmt.Errorf("core: nil recommender set")
	}
	policy, err := NewRegistryPolicy(set.Columns())
	if err != nil {
		return nil, err
	}
	return NewEngine(db, classifier, policy, set.Session(), cfg, opts...)
}

// Async reports whether prefetching is routed through a shared scheduler.
func (e *Engine) Async() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sched != nil
}

// CachedPredictions snapshots the live prediction entries in this
// session's cache regions without touching consumption marks, outcomes or
// statistics. The push layer uses it to backfill a re-attached stream from
// what prefetching already loaded; because the read is side-effect free,
// replaying it cannot double-count any feedback outcome.
func (e *Engine) CachedPredictions() []cache.Prediction {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cache.Predictions()
}

// DetachScheduler disconnects the engine from the shared scheduler; later
// requests prefetch inline and pending deliveries are discarded. The server
// calls this when evicting a session, before cancelling the session's
// scheduler state: acquiring the engine lock waits out any in-flight
// request, so no Submit can trail the detach and resurrect the session.
func (e *Engine) DetachScheduler() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sched = nil
	e.epoch++
}

// deliver installs an asynchronously fetched tile into the model's cache
// region at the batch position it was ranked at and the phase predicted
// when the batch was submitted — unless the engine was reset or detached
// after the tile was requested, in which case the stale delivery is
// dropped. Runs on a scheduler worker; it holds the engine lock so it
// serializes with Reset.
func (e *Engine) deliver(model string, epoch uint64, pos int, ph trace.Phase, t *tile.Tile) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.epoch != epoch || e.sched == nil {
		return
	}
	e.cache.InsertPrediction(model, t, pos, ph)
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Policy returns the engine's allocation policy.
func (e *Engine) Policy() AllocationPolicy { return e.policy }

// CacheStats snapshots the cache counters (hit rate = prediction accuracy,
// paper §5.2.2).
func (e *Engine) CacheStats() cache.Stats {
	return e.cache.Stats()
}

// Reset starts a fresh session: history, cache contents, model state and
// statistics are cleared.
func (e *Engine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.history.Reset()
	e.cache.Clear()
	e.cache.ResetStats()
	for _, m := range e.models {
		m.Reset()
	}
	e.last = trace.Request{Move: trace.None}
	e.started = false
	e.epoch++
	if e.sched != nil {
		e.sched.CancelSession(e.session)
	}
}

// Request serves a tile request addressed by coordinate, inferring the
// move from the previous request, then prefetches for the next one. This
// is the full per-request cycle of Figure 5: visualizer -> prediction
// engine -> cache manager -> (SciDB on a miss).
func (e *Engine) Request(c tile.Coord) (*Response, error) {
	return e.RequestTraced(c, nil)
}

// RequestTraced is Request with a span breakdown: the caller's trace (nil
// is fine — every span call is a no-op then) gets cache_lookup,
// backend_fetch (sync misses only; async fetches report to the histograms
// from the scheduler instead) and prefetch spans, plus the hit/miss
// outcome. The server's /tile handler owns the trace; the engine only
// annotates it.
func (e *Engine) RequestTraced(c tile.Coord, rt *obs.ReqTrace) (*Response, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	mv := trace.None
	if e.started {
		got, ok := trace.MoveBetween(e.last.Coord, c)
		if !ok {
			return nil, fmt.Errorf("core: request %v is not one move from %v (no jumping, paper §2.2)", c, e.last.Coord)
		}
		mv = got
	}
	req := trace.Request{Coord: c, Move: mv}

	// Serve the tile: middleware cache first, SciDB on a miss.
	resp := &Response{}
	endLookup := rt.StartSpan("cache_lookup")
	t, ok := e.cache.Lookup(c)
	endLookup()
	if ok {
		resp.Tile, resp.Hit = t, true
		resp.Latency = e.db.Latency().Hit
		rt.SetOutcome(obs.OutcomeHit)
	} else {
		endFetch := rt.StartSpan("backend_fetch")
		var fetchStart time.Time
		if e.obs != nil {
			fetchStart = time.Now()
		}
		t, err := e.db.Fetch(c) // charges the miss latency on the clock
		if e.obs != nil {
			e.obs.ObserveBackendFetch(time.Since(fetchStart))
		}
		endFetch()
		if err != nil {
			return nil, err
		}
		resp.Tile = t
		resp.Latency = e.db.Latency().Miss
		rt.SetOutcome(obs.OutcomeMiss)
	}
	e.cache.InsertRecent(resp.Tile)

	// Update session state and model observations.
	e.history.Push(req)
	for _, m := range e.models {
		m.Observe(req)
	}
	e.last = req
	e.started = true

	// Top level: predict the current analysis phase.
	if e.classifier != nil {
		resp.Phase = e.classifier.Predict(req)
	}

	// A request-path miss is a consumption the prefetcher failed to
	// anticipate — exactly the signal the population-level hotspot table
	// should learn from, not just the predictions that worked. Prefetched
	// consumptions are reported from the outcome stream below; a missed
	// tile by definition had no prediction entry to hit, so the two feeds
	// cannot double-count one consumption.
	if e.consumption != nil && !resp.Hit {
		e.consumption.ObserveConsumption(c, resp.Phase)
	}

	endPrefetch := rt.StartSpan("prefetch")
	// Bottom level: re-evaluate allocations, run the models in parallel,
	// and prefetch their top-ranked tiles for the next request — inline by
	// default, or submitted to the shared scheduler in async mode. Under
	// backpressure an adaptive engine spends a smaller budget: queueing the
	// full K onto a saturated scheduler only creates entries that decay or
	// get shed before their fetch is issued. Only the submitted batch
	// shrinks — the cache regions stay sized for the configured K, so
	// pressure never evicts tiles the scheduler already delivered.
	k := e.cfg.K
	if e.adaptiveK && e.sched != nil {
		p := e.sched.Pressure()
		if e.fairShare {
			p = e.sched.SessionPressure(e.session)
		}
		k = adaptiveBudget(k, p)
	}
	resp.PrefetchBudget = k
	allocs := e.policy.Allocations(resp.Phase, e.cfg.K)
	e.cache.SetAllocations(allocs)
	fetchAllocs := allocs
	if k != e.cfg.K {
		fetchAllocs = e.policy.Allocations(resp.Phase, k)
	}
	if e.sched != nil {
		resp.Prefetched = e.submitPrefetch(req, fetchAllocs, resp.Phase)
	} else {
		resp.Prefetched = e.prefetch(req, fetchAllocs, resp.Phase)
	}
	endPrefetch()

	// Close the loop: report this request's prefetch outcomes (hits at
	// consumption, misses at eviction — including evictions the allocation
	// change above just caused) to the deployment's feedback collector, so
	// the scheduler's position-utility curve and the adaptive policy's
	// per-(phase, model) split track real consumption — and the consumed
	// coordinates to the consumption sink (the cross-session hotspot
	// table), deduplicated so a tile several models predicted counts as
	// one consumption, not one per agreeing model.
	if e.feedback != nil || e.consumption != nil {
		var consumed map[tile.Coord]bool
		for _, o := range e.cache.TakeOutcomes() {
			if e.feedback != nil {
				e.feedback.Observe(o.Phase, o.Model, o.Position, o.Hit)
			}
			if e.consumption != nil && o.Hit && !consumed[o.Coord] {
				if consumed == nil {
					consumed = make(map[tile.Coord]bool, 4)
				}
				consumed[o.Coord] = true
				e.consumption.ObserveConsumption(o.Coord, o.Phase)
			}
		}
	}
	return resp, nil
}

// modelRanked pairs one model's name with its top-k ranked predictions.
type modelRanked struct {
	name   string
	ranked []recommend.Ranked
}

// rankModels runs every allotted model concurrently (the paper runs
// recommenders in parallel) and collects their top-ranked candidates.
func (e *Engine) rankModels(req trace.Request, allocs map[string]int) []modelRanked {
	cands := recommend.Candidates(e.db.Pyramid(), req.Coord, e.cfg.D)
	results := make(chan modelRanked, len(allocs))
	var wg sync.WaitGroup
	for name, k := range allocs {
		m := e.models[name]
		if m == nil || k <= 0 {
			continue
		}
		wg.Add(1)
		go func(name string, m recommend.Model, k int) {
			defer wg.Done()
			ranked := recommend.TopK(m.Predict(req, cands, e.history), k)
			results <- modelRanked{name: name, ranked: ranked}
		}(name, m, k)
	}
	wg.Wait()
	close(results)
	out := make([]modelRanked, 0, len(allocs))
	for r := range results {
		out = append(out, r)
	}
	return out
}

// prefetch is the synchronous path: it loads the models' winners into the
// cache via quiet DBMS fetches inline (prefetching happens while the user
// analyzes the current view, off the response path). The eval harness uses
// this mode so the paper's experiments stay deterministic.
func (e *Engine) prefetch(req trace.Request, allocs map[string]int, ph trace.Phase) []tile.Coord {
	var fetched []tile.Coord
	seen := map[tile.Coord]bool{}
	for _, r := range e.rankModels(req, allocs) {
		tiles := make([]*tile.Tile, 0, len(r.ranked))
		for _, pred := range r.ranked {
			var fetchStart time.Time
			if e.obs != nil {
				fetchStart = time.Now()
			}
			t, err := e.db.FetchQuiet(pred.Coord)
			if e.obs != nil {
				e.obs.ObserveBackendFetch(time.Since(fetchStart))
			}
			if err != nil {
				continue
			}
			tiles = append(tiles, t)
			if !seen[pred.Coord] {
				seen[pred.Coord] = true
				fetched = append(fetched, pred.Coord)
			}
		}
		e.cache.FillPredictions(r.name, tiles, ph)
	}
	return fetched
}

// submitPrefetch is the asynchronous path: the ranked candidates become one
// batch submitted to the shared scheduler, which fetches them off the
// response path (coalescing duplicates across sessions) and delivers each
// tile into this engine's cache as it completes. The returned coordinates
// are the ones submitted, not necessarily loaded yet.
func (e *Engine) submitPrefetch(req trace.Request, allocs map[string]int, ph trace.Phase) []tile.Coord {
	var reqs []prefetch.Request
	var submitted []tile.Coord
	seen := map[tile.Coord]bool{}
	epoch := e.epoch // caller holds e.mu
	for _, r := range e.rankModels(req, allocs) {
		name := r.name
		for pi, pred := range r.ranked {
			pos := pi // the model's rank: the position outcomes attribute to
			reqs = append(reqs, prefetch.Request{
				Coord: pred.Coord,
				Score: pred.Score,
				Model: name,
				Deliver: func(t *tile.Tile) {
					e.deliver(name, epoch, pos, ph, t)
				},
			})
			if !seen[pred.Coord] {
				seen[pred.Coord] = true
				submitted = append(submitted, pred.Coord)
			}
		}
	}
	// Model results arrive in goroutine-completion order; sort so the batch
	// the scheduler sees (and therefore its queue order) is deterministic.
	sort.SliceStable(reqs, func(i, j int) bool {
		if reqs[i].Score != reqs[j].Score {
			return reqs[i].Score > reqs[j].Score
		}
		return reqs[i].Coord.Less(reqs[j].Coord)
	})
	sort.Slice(submitted, func(i, j int) bool { return submitted[i].Less(submitted[j]) })
	e.sched.Submit(e.session, reqs)
	return submitted
}
