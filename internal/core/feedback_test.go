package core

import (
	"sync"
	"testing"

	"forecache/internal/prefetch"
	"forecache/internal/recommend"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

// recordingObserver collects Observe calls for assertions.
type recordingObserver struct {
	mu       sync.Mutex
	outcomes []struct {
		ph    trace.Phase
		model string
		pos   int
		hit   bool
	}
}

func (r *recordingObserver) Observe(ph trace.Phase, model string, pos int, hit bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.outcomes = append(r.outcomes, struct {
		ph    trace.Phase
		model string
		pos   int
		hit   bool
	}{ph, model, pos, hit})
}

func (r *recordingObserver) counts() (hits, misses int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, o := range r.outcomes {
		if o.hit {
			hits++
		} else {
			misses++
		}
	}
	return hits, misses
}

// TestFairShareEngineUsesSessionSignal: a WithFairShare engine budgets by
// its own session's pressure, not the global signal — a light session on a
// globally saturated queue keeps its full K, a flooding session collapses
// to 1 even while another session's signal reads 0.
func TestFairShareEngineUsesSessionSignal(t *testing.T) {
	db := testDBMS(t)
	fake := &fakeSubmitter{}
	fake.setPressure(1)                 // global queue saturated...
	fake.setSessionPressure("light", 0) // ...but not this session's doing
	fake.setSessionPressure("flood", 1) // this one owns the queue

	m := recommend.NewMomentum()
	light, err := NewEngine(db, nil, SinglePolicy{Model: m.Name()},
		[]recommend.Model{m}, Config{K: 4},
		WithScheduler(fake, "light"), WithAdaptiveK(), WithFairShare())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := light.Request(tile.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PrefetchBudget != 4 {
		t.Errorf("light session PrefetchBudget = %d under global saturation, want the full 4", resp.PrefetchBudget)
	}

	m2 := recommend.NewMomentum()
	flood, err := NewEngine(db, nil, SinglePolicy{Model: m2.Name()},
		[]recommend.Model{m2}, Config{K: 4},
		WithScheduler(fake, "flood"), WithAdaptiveK(), WithFairShare())
	if err != nil {
		t.Fatal(err)
	}
	resp, err = flood.Request(tile.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PrefetchBudget != 1 {
		t.Errorf("flooding session PrefetchBudget = %d, want 1", resp.PrefetchBudget)
	}

	// Without WithFairShare the same engine shape reads the global signal.
	m3 := recommend.NewMomentum()
	global, err := NewEngine(db, nil, SinglePolicy{Model: m3.Name()},
		[]recommend.Model{m3}, Config{K: 4},
		WithScheduler(fake, "light"), WithAdaptiveK())
	if err != nil {
		t.Fatal(err)
	}
	resp, err = global.Request(tile.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PrefetchBudget != 1 {
		t.Errorf("global-signal PrefetchBudget = %d at pressure 1, want 1", resp.PrefetchBudget)
	}
}

// TestEngineReportsOutcomes: a synchronous engine with WithFeedback drains
// its cache's prefetch outcomes to the observer after every request —
// consumed predictions as hits at their batch position, replaced
// unconsumed ones as misses.
func TestEngineReportsOutcomes(t *testing.T) {
	db := testDBMS(t)
	rec := &recordingObserver{}
	m := recommend.NewMomentum()
	eng, err := NewEngine(db, nil, SinglePolicy{Model: m.Name()},
		[]recommend.Model{m}, Config{K: 4}, WithFeedback(rec))
	if err != nil {
		t.Fatal(err)
	}
	// Walk: root -> NW child -> back out -> NE child. Each request consumes
	// or discards the previous request's prefetched batch.
	coords := []tile.Coord{
		{},
		tile.Coord{}.Child(tile.NW),
		{},
		tile.Coord{}.Child(tile.NE),
	}
	hitResponses := 0
	for _, c := range coords {
		resp, err := eng.Request(c)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Hit {
			hitResponses++
		}
	}
	hits, misses := rec.counts()
	if hits == 0 {
		t.Error("no hit outcomes reported despite cache hits on a prefetched walk")
	}
	if misses == 0 {
		t.Error("no miss outcomes reported despite whole batches being replaced")
	}
	if hitResponses == 0 {
		t.Fatal("walk produced no cache hits; the fixture no longer exercises the loop")
	}
	// Every reported hit corresponds to a prefetched-tile consumption: it
	// cannot exceed the responses served from cache, and attribution must
	// name the engine's one model with an in-budget position.
	if hits > hitResponses {
		t.Errorf("%d hit outcomes exceed %d cache-hit responses", hits, hitResponses)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, o := range rec.outcomes {
		if o.model != m.Name() {
			t.Errorf("outcome attributed to %q, want %q", o.model, m.Name())
		}
		if o.pos < 0 || o.pos >= 4 {
			t.Errorf("outcome position %d outside budget [0,4)", o.pos)
		}
	}
}

// TestEngineFeedbackFeedsCollector wires the real pieces end to end in
// async mode: engine -> scheduler (delivers at batch positions) -> cache
// outcomes -> FeedbackCollector observations.
func TestEngineFeedbackFeedsCollector(t *testing.T) {
	db := testDBMS(t)
	fc := prefetch.NewFeedbackCollector(4)
	sched := prefetch.NewScheduler(db, prefetch.Config{Workers: 2, QueuePerSession: 16, GlobalQueue: 16, Utility: fc})
	defer sched.Close()
	m := recommend.NewMomentum()
	eng, err := NewEngine(db, nil, SinglePolicy{Model: m.Name()},
		[]recommend.Model{m}, Config{K: 4},
		WithScheduler(sched, "s1"), WithFeedback(fc))
	if err != nil {
		t.Fatal(err)
	}
	walk := []tile.Coord{
		{},
		tile.Coord{}.Child(tile.NW),
		{},
		tile.Coord{}.Child(tile.SE),
		{},
	}
	for _, c := range walk {
		if _, err := eng.Request(c); err != nil {
			t.Fatal(err)
		}
		sched.Drain() // make deliveries deterministic before the next move
	}
	// One more request drains the outcomes the last deliveries produced.
	if _, err := eng.Request(tile.Coord{}.Child(tile.NW)); err != nil {
		t.Fatal(err)
	}
	if fc.Observations() == 0 {
		t.Error("collector received no observations from the async loop")
	}
	if rates := fc.ModelRates(); len(rates) == 0 {
		t.Error("collector has no per-model tallies")
	}
}
