package core

import (
	"math"
	"sync"
	"testing"

	"forecache/internal/prefetch"
	"forecache/internal/recommend"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

// fakeRater is a settable AllocationFeedback.
type fakeRater struct {
	mu    sync.Mutex
	rates map[trace.Phase]map[string]float64
	obs   map[trace.Phase]map[string]int
}

func newFakeRater() *fakeRater {
	return &fakeRater{
		rates: map[trace.Phase]map[string]float64{},
		obs:   map[trace.Phase]map[string]int{},
	}
}

func (f *fakeRater) set(ph trace.Phase, model string, rate float64, obs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rates[ph] == nil {
		f.rates[ph] = map[string]float64{}
		f.obs[ph] = map[string]int{}
	}
	f.rates[ph][model] = rate
	f.obs[ph][model] = obs
}

func (f *fakeRater) AllocationRate(ph trace.Phase, model string) (float64, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rates[ph][model], f.obs[ph][model]
}

func mustAdaptive(t testing.TB, base AllocationPolicy, models []string, fb AllocationFeedback, cfg AdaptiveConfig) *AdaptivePolicy {
	t.Helper()
	p, err := NewAdaptivePolicy(base, models, fb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewAdaptivePolicyValidation(t *testing.T) {
	base := NewHybridPolicy("ab", "sb")
	if _, err := NewAdaptivePolicy(nil, []string{"ab"}, nil, AdaptiveConfig{}); err == nil {
		t.Error("nil base should fail")
	}
	if _, err := NewAdaptivePolicy(base, nil, nil, AdaptiveConfig{}); err == nil {
		t.Error("no models should fail")
	}
	if _, err := NewAdaptivePolicy(base, []string{"ab", "ab"}, nil, AdaptiveConfig{}); err == nil {
		t.Error("duplicate models should fail")
	}
	p := mustAdaptive(t, base, []string{"ab", "sb"}, nil, AdaptiveConfig{})
	if p.Name() != "adaptive(hybrid)" {
		t.Errorf("Name = %q", p.Name())
	}
}

// TestAdaptiveWarmupFallsBackToBase: with a cold rater (or none at all)
// every allocation is exactly the base policy's, for every phase and k.
func TestAdaptiveWarmupFallsBackToBase(t *testing.T) {
	base := NewHybridPolicy("ab", "sb")
	cold := newFakeRater()
	cold.set(trace.Navigation, "ab", 0.9, 29) // one short of Warmup=30
	cold.set(trace.Navigation, "sb", 0.1, 29)
	for _, p := range []*AdaptivePolicy{
		mustAdaptive(t, base, []string{"ab", "sb"}, nil, AdaptiveConfig{}),
		mustAdaptive(t, base, []string{"ab", "sb"}, cold, AdaptiveConfig{}),
	} {
		for _, ph := range []trace.Phase{trace.Foraging, trace.Navigation, trace.Sensemaking} {
			for k := 0; k <= 8; k++ {
				want := base.Allocations(ph, k)
				got := p.Allocations(ph, k)
				if len(got) != len(want) {
					t.Fatalf("cold Allocations(%v, %d) = %v, want base %v", ph, k, got, want)
				}
				for m, n := range want {
					if got[m] != n {
						t.Fatalf("cold Allocations(%v, %d) = %v, want base %v", ph, k, got, want)
					}
				}
			}
		}
		if p.Warmed(trace.Navigation) {
			t.Error("policy should not report warmed")
		}
	}
}

// TestAdaptivePhaseTotalWarmsStarvedModel: a model the prior never allots
// slots to (AB in Sensemaking under the hybrid table) can never warm its
// own bucket; phase-wide evidence must unblock reallocation anyway, and the
// floor must then hand the starved model its exploration share.
func TestAdaptivePhaseTotalWarmsStarvedModel(t *testing.T) {
	base := NewHybridPolicy("ab", "sb")
	r := newFakeRater()
	r.set(trace.Sensemaking, "sb", 0.8, 60) // 2 models x Warmup(30) in total
	r.set(trace.Sensemaking, "ab", 0, 0)
	p := mustAdaptive(t, base, []string{"ab", "sb"}, r, AdaptiveConfig{Floor: 0.1, MaxStep: 0.5})
	if !p.Warmed(trace.Sensemaking) {
		t.Fatal("phase-total evidence should warm the phase")
	}
	alloc := p.Allocations(trace.Sensemaking, 5)
	if alloc["ab"] < 1 {
		t.Errorf("starved model got no exploration slot: %v", alloc)
	}
	shares := p.Shares()[trace.Sensemaking]
	if shares["ab"] < 0.1-1e-9 {
		t.Errorf("ab share %v below floor 0.1", shares["ab"])
	}
}

// TestAdaptiveFloorClamping: however lopsided the observed rates, the
// losing model's target never drops below the floor (and with a floor
// above 1/len(models), the floor clamps to an equal split).
func TestAdaptiveFloorClamping(t *testing.T) {
	base := NewHybridPolicy("ab", "sb")
	r := newFakeRater()
	r.set(trace.Navigation, "ab", 1.0, 100)
	r.set(trace.Navigation, "sb", 0.0, 100)
	p := mustAdaptive(t, base, []string{"ab", "sb"}, r, AdaptiveConfig{Floor: 0.2, MaxStep: 1})
	for i := 0; i < 50; i++ {
		p.Allocations(trace.Navigation, 5)
	}
	shares := p.Shares()[trace.Navigation]
	if math.Abs(shares["sb"]-0.2) > 1e-9 {
		t.Errorf("loser share = %v, want the floor 0.2", shares["sb"])
	}
	if math.Abs(shares["ab"]-0.8) > 1e-9 {
		t.Errorf("winner share = %v, want 0.8", shares["ab"])
	}
	// A floor past 1/n clamps to an equal split.
	p2 := mustAdaptive(t, base, []string{"ab", "sb"}, r, AdaptiveConfig{Floor: 0.9, MaxStep: 1})
	p2.Allocations(trace.Navigation, 4)
	shares = p2.Shares()[trace.Navigation]
	if math.Abs(shares["ab"]-0.5) > 1e-9 || math.Abs(shares["sb"]-0.5) > 1e-9 {
		t.Errorf("over-floor shares = %v, want 0.5/0.5", shares)
	}
}

// TestAdaptiveHysteresisBounds: one reallocation moves a share by at most
// MaxStep, whatever the target; repeated reallocations (each backed by new
// evidence) converge monotonically — and calls WITHOUT new evidence do not
// move shares at all, so call rate alone never drives drift.
func TestAdaptiveHysteresisBounds(t *testing.T) {
	base := NewHybridPolicy("ab", "sb")
	r := newFakeRater()
	r.set(trace.Navigation, "ab", 0.0, 100) // prior 0.8 -> target floor 0.1
	r.set(trace.Navigation, "sb", 1.0, 100)
	const step = 0.05
	p := mustAdaptive(t, base, []string{"ab", "sb"}, r, AdaptiveConfig{Floor: 0.1, MaxStep: step})
	prev := 0.8 // the hybrid prior at k=5: 4 of 5 slots to AB
	for i := 0; i < 20; i++ {
		r.set(trace.Navigation, "sb", 1.0, 101+i) // fresh evidence each round
		p.Allocations(trace.Navigation, 5)
		cur := p.Shares()[trace.Navigation]["ab"]
		if d := prev - cur; d < -1e-9 || d > step+1e-9 {
			t.Fatalf("step %d moved ab share by %v (from %v to %v), bound is %v", i, d, prev, cur, step)
		}
		prev = cur
	}
	if math.Abs(prev-0.1) > 1e-9 {
		t.Errorf("ab share = %v after convergence, want the floor 0.1", prev)
	}
	// No new evidence: however many times the engines re-allocate (the
	// backpressured double call, session churn), shares must not move.
	for i := 0; i < 10; i++ {
		p.Allocations(trace.Navigation, 5)
	}
	if got := p.Shares()[trace.Navigation]["ab"]; got != prev {
		t.Errorf("shares drifted from %v to %v with no new evidence", prev, got)
	}
}

// TestAdaptiveThreeModelStepInvariants: with more than two models the
// share movements are asymmetric; every model's per-step move must still
// respect MaxStep, the vector must stay normalized without distortion, and
// no model may dip below the floor on its way to a target at or above it.
func TestAdaptiveThreeModelStepInvariants(t *testing.T) {
	base := OriginalPolicy{ABName: "a", SBName: "b"} // model c: prior share 0
	r := newFakeRater()
	r.set(trace.Navigation, "a", 0.05, 100)
	r.set(trace.Navigation, "b", 0.9, 100)
	r.set(trace.Navigation, "c", 0.45, 100)
	const step = 0.02
	p := mustAdaptive(t, base, []string{"a", "b", "c"}, r, AdaptiveConfig{Floor: 0.1, MaxStep: step})
	p.Allocations(trace.Navigation, 6) // initializes the prior from the base table
	prev := p.Shares()[trace.Navigation]
	for i := 0; i < 100; i++ {
		r.set(trace.Navigation, "a", 0.05, 101+i)
		p.Allocations(trace.Navigation, 6)
		cur := p.Shares()[trace.Navigation]
		sum := 0.0
		for m, s := range cur {
			if d := math.Abs(s - prev[m]); d > step+1e-9 {
				t.Fatalf("round %d: model %s moved %v, bound %v (prev %v cur %v)", i, m, d, step, prev, cur)
			}
			// A model whose start and target are both >= floor must never
			// dip under it mid-flight (c ramps up from 0, so exempt it
			// until it first reaches the floor).
			if prevS := prev[m]; prevS >= 0.1-1e-9 && s < 0.1-1e-9 {
				t.Fatalf("round %d: model %s dipped below floor: %v -> %v", i, m, prevS, s)
			}
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("round %d: shares sum to %v: %v", i, sum, cur)
		}
		prev = cur
	}
	// Converged: proportional split of the 0.7 above-floor mass by rates
	// (0.05, 0.9, 0.45)/1.4 plus the 0.1 floor each.
	want := map[string]float64{"a": 0.1 + 0.7*0.05/1.4, "b": 0.1 + 0.7*0.9/1.4, "c": 0.1 + 0.7*0.45/1.4}
	for m, w := range want {
		if math.Abs(prev[m]-w) > 1e-6 {
			t.Errorf("converged share %s = %v, want %v", m, prev[m], w)
		}
	}
}

// TestAdaptiveRoundingSumsToK: for any share shape the integer allocations
// sum to exactly k, and when the budget covers every model no
// positive-share model is rounded to zero.
func TestAdaptiveRoundingSumsToK(t *testing.T) {
	cases := []struct {
		name   string
		shares map[string]float64
		models []string
	}{
		{"even pair", map[string]float64{"a": 0.5, "b": 0.5}, []string{"a", "b"}},
		{"lopsided pair", map[string]float64{"a": 0.9, "b": 0.1}, []string{"a", "b"}},
		{"extreme pair", map[string]float64{"a": 0.99, "b": 0.01}, []string{"a", "b"}},
		{"thirds", map[string]float64{"a": 1.0 / 3, "b": 1.0 / 3, "c": 1.0 / 3}, []string{"a", "b", "c"}},
		{"mixed trio", map[string]float64{"a": 0.55, "b": 0.35, "c": 0.1}, []string{"a", "b", "c"}},
		{"zero share", map[string]float64{"a": 1, "b": 0}, []string{"a", "b"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for k := 0; k <= 13; k++ {
				got := roundShares(tc.shares, tc.models, k)
				sum := 0
				for m, n := range got {
					if n <= 0 {
						t.Fatalf("k=%d: zero/negative count for %s in %v", k, m, got)
					}
					sum += n
				}
				if sum != k {
					t.Fatalf("k=%d: allocations %v sum to %d", k, got, sum)
				}
				if k >= len(tc.models) {
					for _, m := range tc.models {
						if tc.shares[m] > 0 && got[m] == 0 {
							t.Fatalf("k=%d: positive-share model %s starved in %v", k, m, got)
						}
					}
				}
			}
		})
	}
}

// TestAdaptiveEdgeBudgets: k=0 allocates nothing, k=1 routes the whole
// budget to the higher-share model.
func TestAdaptiveEdgeBudgets(t *testing.T) {
	base := NewHybridPolicy("ab", "sb")
	r := newFakeRater()
	r.set(trace.Navigation, "ab", 0.1, 100)
	r.set(trace.Navigation, "sb", 0.9, 100)
	p := mustAdaptive(t, base, []string{"ab", "sb"}, r, AdaptiveConfig{Floor: 0.1, MaxStep: 1})
	if got := p.Allocations(trace.Navigation, 0); len(got) != 0 {
		t.Errorf("k=0 should allocate nothing, got %v", got)
	}
	p.Allocations(trace.Navigation, 5) // move shares to the learned split
	got := p.Allocations(trace.Navigation, 1)
	if got["sb"] != 1 || len(got) != 1 {
		t.Errorf("k=1 = %v, want all to the higher-share model", got)
	}
}

// TestAdaptiveDeterministicRoundingTies: equal shares must break ties by
// model name, not map iteration order, so allocations are reproducible.
func TestAdaptiveDeterministicRoundingTies(t *testing.T) {
	shares := map[string]float64{"a": 0.5, "b": 0.5}
	first := roundShares(shares, []string{"a", "b"}, 3)
	for i := 0; i < 100; i++ {
		got := roundShares(shares, []string{"a", "b"}, 3)
		if got["a"] != first["a"] || got["b"] != first["b"] {
			t.Fatalf("rounding not deterministic: %v vs %v", got, first)
		}
	}
	if first["a"] != 2 || first["b"] != 1 {
		t.Errorf("tie at k=3 = %v, want a=2 b=1 (name order)", first)
	}
}

// TestEngineWithAdaptiveAllocation: the option swaps the shared policy in,
// NewEngine validates the effective policy's models, and a warmed policy
// reshapes what the engine actually prefetches.
func TestEngineWithAdaptiveAllocation(t *testing.T) {
	db := testDBMS(t)
	mom := recommend.NewMomentum()
	hot := recommend.NewTraceHotspot(zoomTraces(4), 4, 1)
	base := OriginalPolicy{ABName: mom.Name(), SBName: hot.Name()}
	r := newFakeRater()
	p := mustAdaptive(t, base, []string{mom.Name(), hot.Name()}, r, AdaptiveConfig{Floor: 0.1, MaxStep: 1})
	eng, err := NewEngine(db, nil, SinglePolicy{Model: mom.Name()},
		[]recommend.Model{mom, hot}, Config{K: 4}, WithAdaptiveAllocation(p))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Policy() != AllocationPolicy(p) {
		t.Fatal("option did not install the adaptive policy")
	}
	// A policy referencing models the engine lacks must fail validation
	// even when it arrives via the option.
	ghost := mustAdaptive(t, OriginalPolicy{ABName: "ghost", SBName: hot.Name()},
		[]string{"ghost", hot.Name()}, nil, AdaptiveConfig{})
	if _, err := NewEngine(db, nil, SinglePolicy{Model: mom.Name()},
		[]recommend.Model{mom, hot}, Config{K: 4}, WithAdaptiveAllocation(ghost)); err == nil {
		t.Error("unknown model via WithAdaptiveAllocation should fail")
	}
	if _, err := eng.Request(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	if len(eng.cache.Allocations()) == 0 {
		t.Error("engine never installed allocations from the adaptive policy")
	}
}

// TestAdaptiveAllocationConcurrent is the -race suite for the new loop:
// many engines drain outcomes into one collector and re-allocate through
// one shared policy while scrapers snapshot shares, rates and the curve —
// the exact concurrency shape of a deployment under /stats and /metrics
// scrapes (modeled on the PR 2 stress suite).
func TestAdaptiveAllocationConcurrent(t *testing.T) {
	fc := prefetch.NewFeedbackCollector(5)
	base := NewHybridPolicy("ab", "sb")
	p := mustAdaptive(t, base, []string{"ab", "sb"}, fc, AdaptiveConfig{Floor: 0.1, MaxStep: 0.02})
	phases := []trace.Phase{trace.Foraging, trace.Navigation, trace.Sensemaking}
	models := []string{"ab", "sb"}
	var wg sync.WaitGroup

	// Observers: the engines' outcome-drain loop.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				ph := phases[i%len(phases)]
				fc.Observe(ph, models[(i+g)%2], i%5, (i+g)%3 != 0)
			}
		}(g)
	}
	// Allocators: engines re-splitting the budget per request.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				ph := phases[(i+g)%len(phases)]
				k := i % 9
				alloc := p.Allocations(ph, k)
				sum := 0
				for _, n := range alloc {
					sum += n
				}
				if sum != k && k > 0 {
					t.Errorf("allocations %v sum to %d, want %d", alloc, sum, k)
					return
				}
			}
		}(g)
	}
	// Scrapers: /stats and /metrics snapshotting while everything churns.
	// Each Shares snapshot must be internally consistent (phase shares sum
	// to 1) no matter how the reallocations interleave.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				for ph, shares := range p.Shares() {
					sum := 0.0
					for _, s := range shares {
						sum += s
					}
					if math.Abs(sum-1) > 1e-6 {
						t.Errorf("phase %v share snapshot sums to %v", ph, sum)
						return
					}
				}
				_ = fc.Curve()
				_ = fc.ModelRates()
				for _, ph := range phases {
					_, _ = fc.AllocationRate(ph, "ab")
					_ = p.Warmed(ph)
				}
			}
		}()
	}
	wg.Wait()
	// After the churn the phases are long warmed; shares must have moved.
	for _, ph := range phases {
		if !p.Warmed(ph) {
			t.Errorf("phase %v never warmed (%d observations total)", ph, fc.Observations())
		}
	}
}
