package core

import (
	"testing"
	"time"

	"forecache/internal/array"
	"forecache/internal/backend"
	"forecache/internal/phase"
	"forecache/internal/recommend"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

func TestHybridPolicyAllocations(t *testing.T) {
	p := NewHybridPolicy("markov3", "sb:sift")
	if p.Name() != "hybrid" {
		t.Errorf("Name = %s", p.Name())
	}
	// Sensemaking: everything to SB (paper §5.4.3).
	a := p.Allocations(trace.Sensemaking, 5)
	if a["sb:sift"] != 5 || a["markov3"] != 0 {
		t.Errorf("sensemaking allocations = %v", a)
	}
	// Other phases: first 4 to AB, remainder to SB.
	a = p.Allocations(trace.Navigation, 6)
	if a["markov3"] != 4 || a["sb:sift"] != 2 {
		t.Errorf("navigation allocations = %v", a)
	}
	// k < 4: all to AB.
	a = p.Allocations(trace.Foraging, 3)
	if a["markov3"] != 3 {
		t.Errorf("small-k allocations = %v", a)
	}
	if len(p.Allocations(trace.Foraging, 0)) != 0 {
		t.Error("k=0 should allocate nothing")
	}
}

func TestOriginalPolicyAllocations(t *testing.T) {
	p := OriginalPolicy{ABName: "ab", SBName: "sb"}
	if a := p.Allocations(trace.Navigation, 4); a["ab"] != 4 {
		t.Errorf("navigation = %v", a)
	}
	if a := p.Allocations(trace.Sensemaking, 4); a["sb"] != 4 {
		t.Errorf("sensemaking = %v", a)
	}
	a := p.Allocations(trace.Foraging, 5)
	if a["ab"] != 3 || a["sb"] != 2 {
		t.Errorf("foraging = %v", a)
	}
}

func TestSinglePolicy(t *testing.T) {
	p := SinglePolicy{Model: "momentum"}
	if a := p.Allocations(trace.Sensemaking, 7); a["momentum"] != 7 {
		t.Errorf("single = %v", a)
	}
	if p.Name() != "single:momentum" {
		t.Errorf("Name = %s", p.Name())
	}
}

func testDBMS(t testing.TB) *backend.DBMS {
	t.Helper()
	a := array.NewZero(array.Schema{
		Name:  "RAW",
		Attrs: []string{"v"},
		Dims:  [2]array.Dim{{Name: "lat", Size: 64}, {Name: "lon", Size: 64}},
	})
	data, _ := a.AttrData("v")
	for i := range data {
		data[i] = float64(i % 13)
	}
	pyr, err := tile.Build(a, tile.Params{TileSize: 8, Agg: array.AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	return backend.NewDBMS(pyr, backend.DefaultLatency(), &backend.SimClock{})
}

func zoomTraces(n int) []*trace.Trace {
	var out []*trace.Trace
	for i := 0; i < n; i++ {
		tr := &trace.Trace{User: i, Task: 1}
		c := tile.Coord{}
		tr.Requests = append(tr.Requests, trace.Request{Coord: c, Move: trace.None})
		for j := 0; j < 3; j++ {
			c = trace.Apply(c, trace.ZoomInNW)
			tr.Requests = append(tr.Requests, trace.Request{Coord: c, Move: trace.ZoomInNW})
		}
		out = append(out, tr)
	}
	return out
}

func testEngine(t testing.TB, k int) *Engine {
	t.Helper()
	db := testDBMS(t)
	ab, err := recommend.NewAB(3, zoomTraces(4))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(db, nil, SinglePolicy{Model: ab.Name()},
		[]recommend.Model{ab}, Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestNewEngineValidation(t *testing.T) {
	db := testDBMS(t)
	if _, err := NewEngine(nil, nil, SinglePolicy{Model: "x"}, nil, Config{}); err == nil {
		t.Error("nil DBMS should fail")
	}
	if _, err := NewEngine(db, nil, nil, nil, Config{}); err == nil {
		t.Error("nil policy should fail")
	}
	if _, err := NewEngine(db, nil, SinglePolicy{Model: "ghost"}, nil, Config{}); err == nil {
		t.Error("policy referencing an absent model should fail")
	}
}

func TestFirstRequestIsMiss(t *testing.T) {
	eng := testEngine(t, 4)
	resp, err := eng.Request(tile.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Hit {
		t.Error("first request cannot hit an empty cache")
	}
	if resp.Latency != backend.DefaultLatency().Miss {
		t.Errorf("miss latency = %v", resp.Latency)
	}
	if resp.Tile == nil || resp.Tile.Coord != (tile.Coord{}) {
		t.Errorf("served tile = %+v", resp.Tile)
	}
}

func TestPrefetchedTileHits(t *testing.T) {
	eng := testEngine(t, 4)
	resp, err := eng.Request(tile.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Prefetched) == 0 {
		t.Fatal("engine should prefetch after the first request")
	}
	// The AB model was trained on repeated in-nw chains, so the NW child
	// must be among the prefetched tiles; requesting it must hit.
	nw := tile.Coord{Level: 1, Y: 0, X: 0}
	found := false
	for _, c := range resp.Prefetched {
		if c == nw {
			found = true
		}
	}
	if !found {
		t.Fatalf("prefetched %v does not include %v", resp.Prefetched, nw)
	}
	resp2, err := eng.Request(nw)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Hit {
		t.Error("prefetched tile should be a cache hit")
	}
	if resp2.Latency != backend.DefaultLatency().Hit {
		t.Errorf("hit latency = %v", resp2.Latency)
	}
	st := eng.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRecentLRUServesRevisits(t *testing.T) {
	eng := testEngine(t, 1)
	if _, err := eng.Request(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	// Zoom into SE (unpredicted by the NW-trained model is fine) and back.
	se := tile.Coord{Level: 1, Y: 1, X: 1}
	if _, err := eng.Request(se); err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Request(tile.Coord{}) // zoom out: root is in the LRU
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Hit {
		t.Error("revisited tile should be served from the recent-request LRU")
	}
}

func TestJumpRejected(t *testing.T) {
	eng := testEngine(t, 2)
	if _, err := eng.Request(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Request(tile.Coord{Level: 3, Y: 5, X: 5}); err == nil {
		t.Error("non-incremental request must be rejected (no jumping)")
	}
}

func TestRequestOutsidePyramid(t *testing.T) {
	eng := testEngine(t, 2)
	if _, err := eng.Request(tile.Coord{Level: -1}); err == nil {
		t.Error("request outside the pyramid should fail")
	}
}

func TestResetStartsFreshSession(t *testing.T) {
	eng := testEngine(t, 4)
	if _, err := eng.Request(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	eng.Reset()
	st := eng.CacheStats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
	// After reset the session restarts from any tile without move checks.
	resp, err := eng.Request(tile.Coord{Level: 1, Y: 0, X: 0})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Hit {
		t.Error("cache should be cold after reset")
	}
}

func TestEngineWithClassifierAndHybrid(t *testing.T) {
	db := testDBMS(t)
	levels := db.Pyramid().NumLevels()

	// Train a tiny classifier on rule-labeled synthetic requests.
	var reqs []trace.Request
	for l := 0; l < levels; l++ {
		for _, mv := range trace.AllMoves() {
			r := trace.Request{Coord: tile.Coord{Level: l, Y: 0, X: 0}, Move: mv}
			r.Phase = phase.Label(r, phase.LabelerConfig{Levels: levels})
			reqs = append(reqs, r)
		}
	}
	cls, err := phase.Train(reqs, phase.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ab, err := recommend.NewAB(3, zoomTraces(3))
	if err != nil {
		t.Fatal(err)
	}
	mom := recommend.NewMomentum()
	eng, err := NewEngine(db, cls, HybridPolicy{ABName: ab.Name(), SBName: mom.Name(), ABFirst: 4},
		[]recommend.Model{ab, mom}, Config{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Request(tile.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Phase == trace.PhaseUnknown {
		t.Error("classifier-equipped engine should predict a phase")
	}
	if len(resp.Prefetched) == 0 {
		t.Error("hybrid engine should prefetch")
	}
	// Prefetched coords must be unique.
	seen := map[tile.Coord]bool{}
	for _, c := range resp.Prefetched {
		if seen[c] {
			t.Errorf("duplicate prefetched coord %v", c)
		}
		seen[c] = true
	}
}

func TestLatencyAccumulatesOnSimClock(t *testing.T) {
	db := testDBMS(t)
	ab, err := recommend.NewAB(3, zoomTraces(3))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(db, nil, SinglePolicy{Model: ab.Name()},
		[]recommend.Model{ab}, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Request(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	nw := tile.Coord{Level: 1, Y: 0, X: 0}
	if _, err := eng.Request(nw); err != nil {
		t.Fatal(err)
	}
	// Exactly one miss should have charged the clock; prefetches are quiet
	// (the second request hit because the NW chain is AB's top prediction).
	if got := db.Clock().Elapsed(); got != 984*time.Millisecond {
		t.Errorf("simulated clock = %v, want exactly one miss (984ms)", got)
	}
}

func BenchmarkEngineRequest(b *testing.B) {
	eng := testEngine(b, 5)
	seq := []tile.Coord{
		{},
		{Level: 1, Y: 0, X: 0},
		{Level: 2, Y: 0, X: 0},
		{Level: 1, Y: 0, X: 0},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Reset()
		for _, c := range seq {
			if _, err := eng.Request(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}
