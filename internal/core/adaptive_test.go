package core

import (
	"sync"
	"testing"

	"forecache/internal/prefetch"
	"forecache/internal/recommend"
	"forecache/internal/tile"
	"forecache/internal/trace"
)

// fakeSubmitter records submitted batches and reports settable global and
// per-session pressures.
type fakeSubmitter struct {
	mu         sync.Mutex
	batches    [][]prefetch.Request
	pressure   float64
	perSession map[string]float64
}

func (f *fakeSubmitter) Submit(session string, reqs []prefetch.Request) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.batches = append(f.batches, reqs)
	return len(reqs)
}

func (f *fakeSubmitter) CancelSession(string) {}

func (f *fakeSubmitter) Pressure() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pressure
}

func (f *fakeSubmitter) SessionPressure(session string) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.perSession[session]
}

func (f *fakeSubmitter) setPressure(p float64) {
	f.mu.Lock()
	f.pressure = p
	f.mu.Unlock()
}

func (f *fakeSubmitter) setSessionPressure(session string, p float64) {
	f.mu.Lock()
	if f.perSession == nil {
		f.perSession = map[string]float64{}
	}
	f.perSession[session] = p
	f.mu.Unlock()
}

func (f *fakeSubmitter) lastBatch() []prefetch.Request {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.batches) == 0 {
		return nil
	}
	return f.batches[len(f.batches)-1]
}

func TestAdaptiveBudgetTable(t *testing.T) {
	cases := []struct {
		k        int
		pressure float64
		want     int
	}{
		{5, 0, 5},
		{5, -1, 5},    // clamped below
		{5, 0.25, 4},  // 5 - round(1)
		{5, 0.5, 3},   // 5 - round(2)
		{5, 0.75, 2},  // 5 - round(3)
		{5, 1, 1},     // floor: one tile always submitted
		{5, 2, 1},     // clamped above
		{4, 0.5, 2},   // 4 - round(1.5)
		{1, 1, 1},     // K=1 cannot shrink
		{8, 0.999, 1}, // near saturation
		{8, 0.001, 8}, // round(7*0.001 + 0.5) = 0: negligible pressure keeps K
	}
	for _, tc := range cases {
		if got := adaptiveBudget(tc.k, tc.pressure); got != tc.want {
			t.Errorf("adaptiveBudget(%d, %v) = %d, want %d", tc.k, tc.pressure, got, tc.want)
		}
	}
}

// TestAdaptiveKShrinksAndRestores: the engine reads the backpressure signal
// per request, shrinks its submitted batch under load and restores the full
// budget when the queue drains.
func TestAdaptiveKShrinksAndRestores(t *testing.T) {
	db := testDBMS(t)
	fake := &fakeSubmitter{}
	m := recommend.NewMomentum()
	eng, err := NewEngine(db, nil, SinglePolicy{Model: m.Name()},
		[]recommend.Model{m}, Config{K: 4}, WithScheduler(fake, "s1"), WithAdaptiveK())
	if err != nil {
		t.Fatal(err)
	}

	// No pressure: the root's 4 candidates all fit the full budget.
	resp, err := eng.Request(tile.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PrefetchBudget != 4 {
		t.Errorf("PrefetchBudget = %d at zero pressure, want 4", resp.PrefetchBudget)
	}
	if got := len(fake.lastBatch()); got != 4 {
		t.Errorf("submitted %d candidates at zero pressure, want 4", got)
	}

	// Saturated: the budget collapses to a single top candidate.
	fake.setPressure(1)
	resp, err = eng.Request(tile.Coord{}.Child(tile.NW))
	if err != nil {
		t.Fatal(err)
	}
	if resp.PrefetchBudget != 1 {
		t.Errorf("PrefetchBudget = %d at full pressure, want 1", resp.PrefetchBudget)
	}
	if got := len(fake.lastBatch()); got != 1 {
		t.Errorf("submitted %d candidates at full pressure, want 1", got)
	}

	// Drained: the full budget is restored.
	fake.setPressure(0)
	resp, err = eng.Request(tile.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PrefetchBudget != 4 {
		t.Errorf("PrefetchBudget = %d after drain, want 4", resp.PrefetchBudget)
	}
	if got := len(fake.lastBatch()); got != 4 {
		t.Errorf("submitted %d candidates after drain, want 4", got)
	}
}

// TestAdaptiveKKeepsCacheRegionsFull: backpressure shrinks only the
// submitted batch, never the cache allocations — tiles the scheduler
// already delivered must not be evicted just because pressure spiked.
func TestAdaptiveKKeepsCacheRegionsFull(t *testing.T) {
	db := testDBMS(t)
	fake := &fakeSubmitter{}
	m := recommend.NewMomentum()
	eng, err := NewEngine(db, nil, SinglePolicy{Model: m.Name()},
		[]recommend.Model{m}, Config{K: 4}, WithScheduler(fake, "s1"), WithAdaptiveK())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Request(tile.Coord{}); err != nil {
		t.Fatal(err)
	}
	// Simulate the scheduler delivering the whole predicted batch.
	children := []tile.Coord{
		tile.Coord{}.Child(tile.NW), tile.Coord{}.Child(tile.NE),
		tile.Coord{}.Child(tile.SW), tile.Coord{}.Child(tile.SE),
	}
	for _, c := range children {
		tl, err := db.FetchQuiet(c)
		if err != nil {
			t.Fatal(err)
		}
		eng.deliver(m.Name(), eng.epoch, 0, trace.PhaseUnknown, tl)
	}
	// A request under full pressure shrinks its submit batch to 1...
	fake.setPressure(1)
	resp, err := eng.Request(children[0])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Hit {
		t.Error("delivered child should hit")
	}
	if resp.PrefetchBudget != 1 {
		t.Fatalf("PrefetchBudget = %d at full pressure, want 1", resp.PrefetchBudget)
	}
	// ...but the other delivered tiles must survive in the cache.
	for _, c := range children[1:] {
		if _, ok := eng.cache.Lookup(c); !ok {
			t.Errorf("pressure evicted already-delivered tile %v", c)
		}
	}
}

// TestAdaptiveKOffByDefault: without the option the engine ignores pressure.
func TestAdaptiveKOffByDefault(t *testing.T) {
	db := testDBMS(t)
	fake := &fakeSubmitter{}
	fake.setPressure(1)
	eng := newAsyncEngine(t, db, fake, "s1")
	resp, err := eng.Request(tile.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PrefetchBudget != 4 {
		t.Errorf("PrefetchBudget = %d, want the configured 4", resp.PrefetchBudget)
	}
	if got := len(fake.lastBatch()); got != 4 {
		t.Errorf("submitted %d, want 4 (pressure must be ignored)", got)
	}
}

// TestAdaptiveKUnderRealSaturation drives a real scheduler into saturation
// with a gated store and watches the engine's budget shrink, then recover
// once the queue drains — the end-to-end backpressure loop.
func TestAdaptiveKUnderRealSaturation(t *testing.T) {
	db := testDBMS(t)
	store := &gatedStore{DBMS: db, gate: make(chan struct{})}
	sched := prefetch.NewScheduler(store, prefetch.Config{
		Workers: 1, QueuePerSession: 8, GlobalQueue: 4,
	})
	defer sched.Close()

	m := recommend.NewMomentum()
	eng, err := NewEngine(store, nil, SinglePolicy{Model: m.Name()},
		[]recommend.Model{m}, Config{K: 4}, WithScheduler(sched, "s1"), WithAdaptiveK())
	if err != nil {
		t.Fatal(err)
	}

	// First request goes out at zero pressure and fills the global queue
	// (4 candidates, budget 4; the lone gated worker may pop one).
	resp, err := eng.Request(tile.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PrefetchBudget != 4 {
		t.Fatalf("first PrefetchBudget = %d, want 4", resp.PrefetchBudget)
	}
	// Queue now holds 3 or 4 of the budget's 4: pressure >= 0.75, so the
	// next request must shrink its budget.
	resp, err = eng.Request(tile.Coord{}.Child(tile.NW))
	if err != nil {
		t.Fatal(err)
	}
	if resp.PrefetchBudget >= 4 {
		t.Errorf("PrefetchBudget = %d under saturation, want < 4", resp.PrefetchBudget)
	}
	close(store.gate)
	sched.Drain()
	// Drained: full budget restored.
	resp, err = eng.Request(tile.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PrefetchBudget != 4 {
		t.Errorf("PrefetchBudget = %d after drain, want 4", resp.PrefetchBudget)
	}
}
