package core

import (
	"forecache/internal/trace"
)

// AllocationPolicy decides, after every request, how many of the k
// prefetch slots each recommendation model receives given the user's
// predicted analysis phase — the cache manager's "allocation strategy"
// (paper §3, §4.4).
type AllocationPolicy interface {
	// Allocations returns tile slots per model name; values should sum to
	// at most k.
	Allocations(ph trace.Phase, k int) map[string]int
	// Name identifies the policy in experiment output.
	Name() string
}

// HybridPolicy is the final tuned strategy of §5.4.3: in Sensemaking all k
// slots go to the Signature-Based model; in every other phase the first
// min(k, ABFirst) slots go to the Actions-Based model and the remainder to
// the Signature-Based model. The paper uses ABFirst = 4.
type HybridPolicy struct {
	ABName  string
	SBName  string
	ABFirst int
}

// NewHybridPolicy returns the paper's final policy over the two model
// names (e.g. "markov3" and "sb:sift").
func NewHybridPolicy(abName, sbName string) HybridPolicy {
	return HybridPolicy{ABName: abName, SBName: sbName, ABFirst: 4}
}

// Name identifies the policy.
func (p HybridPolicy) Name() string { return "hybrid" }

// Allocations implements the §5.4.3 split.
func (p HybridPolicy) Allocations(ph trace.Phase, k int) map[string]int {
	if k <= 0 {
		return map[string]int{}
	}
	if ph == trace.Sensemaking {
		return map[string]int{p.SBName: k}
	}
	ab := p.ABFirst
	if k < ab {
		ab = k
	}
	out := map[string]int{p.ABName: ab}
	if rest := k - ab; rest > 0 {
		out[p.SBName] = rest
	}
	return out
}

// OriginalPolicy is the pre-tuning strategy of §4.4, kept for the ablation
// bench: Navigation gives everything to AB, Sensemaking everything to SB,
// and Foraging splits the space equally.
type OriginalPolicy struct {
	ABName string
	SBName string
}

// Name identifies the policy.
func (p OriginalPolicy) Name() string { return "original" }

// Allocations implements the §4.4 per-phase table.
func (p OriginalPolicy) Allocations(ph trace.Phase, k int) map[string]int {
	if k <= 0 {
		return map[string]int{}
	}
	switch ph {
	case trace.Navigation:
		return map[string]int{p.ABName: k}
	case trace.Sensemaking:
		return map[string]int{p.SBName: k}
	default: // Foraging (and unknown): equal split, AB gets the odd slot.
		half := k / 2
		out := map[string]int{p.ABName: k - half}
		if half > 0 {
			out[p.SBName] = half
		}
		return out
	}
}

// SinglePolicy routes every slot to one model regardless of phase; the
// baselines (Momentum, Hotspot, lone AB or SB models) run under it.
type SinglePolicy struct{ Model string }

// Name identifies the policy.
func (p SinglePolicy) Name() string { return "single:" + p.Model }

// Allocations gives all k slots to the single model.
func (p SinglePolicy) Allocations(ph trace.Phase, k int) map[string]int {
	if k <= 0 {
		return map[string]int{}
	}
	return map[string]int{p.Model: k}
}
