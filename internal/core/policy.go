package core

import (
	"fmt"

	"forecache/internal/recommend"
	"forecache/internal/trace"
)

// AllocationPolicy decides, after every request, how many of the k
// prefetch slots each recommendation model receives given the user's
// predicted analysis phase — the cache manager's "allocation strategy"
// (paper §3, §4.4).
type AllocationPolicy interface {
	// Allocations returns tile slots per model name; values should sum to
	// at most k.
	Allocations(ph trace.Phase, k int) map[string]int
	// Name identifies the policy in experiment output.
	Name() string
}

// HybridPolicy is the final tuned strategy of §5.4.3: in Sensemaking all k
// slots go to the Signature-Based model; in every other phase the first
// min(k, ABFirst) slots go to the Actions-Based model and the remainder to
// the Signature-Based model. The paper uses ABFirst = 4.
type HybridPolicy struct {
	ABName  string
	SBName  string
	ABFirst int
}

// NewHybridPolicy returns the paper's final policy over the two model
// names (e.g. "markov3" and "sb:sift").
func NewHybridPolicy(abName, sbName string) HybridPolicy {
	return HybridPolicy{ABName: abName, SBName: sbName, ABFirst: 4}
}

// Name identifies the policy.
func (p HybridPolicy) Name() string { return "hybrid" }

// Allocations implements the §5.4.3 split.
func (p HybridPolicy) Allocations(ph trace.Phase, k int) map[string]int {
	if k <= 0 {
		return map[string]int{}
	}
	if ph == trace.Sensemaking {
		return map[string]int{p.SBName: k}
	}
	ab := p.ABFirst
	if k < ab {
		ab = k
	}
	out := map[string]int{p.ABName: ab}
	if rest := k - ab; rest > 0 {
		out[p.SBName] = rest
	}
	return out
}

// OriginalPolicy is the pre-tuning strategy of §4.4, kept for the ablation
// bench: Navigation gives everything to AB, Sensemaking everything to SB,
// and Foraging splits the space equally.
type OriginalPolicy struct {
	ABName string
	SBName string
}

// Name identifies the policy.
func (p OriginalPolicy) Name() string { return "original" }

// Allocations implements the §4.4 per-phase table.
func (p OriginalPolicy) Allocations(ph trace.Phase, k int) map[string]int {
	if k <= 0 {
		return map[string]int{}
	}
	switch ph {
	case trace.Navigation:
		return map[string]int{p.ABName: k}
	case trace.Sensemaking:
		return map[string]int{p.SBName: k}
	default: // Foraging (and unknown): equal split, AB gets the odd slot.
		half := k / 2
		out := map[string]int{p.ABName: k - half}
		if half > 0 {
			out[p.SBName] = half
		}
		return out
	}
}

// RegistryPolicy is the allocation policy a recommender registry's prior
// columns compose to: for each phase the registered models' claims are
// resolved in registry order, every claim clamped to the budget still
// unclaimed, and a negative claim (recommend.Rest) takes the whole
// remainder. With the default two-model registry this reproduces the
// §5.4.3 hybrid table exactly (AB's first-4 claim, SB the rest and all of
// Sensemaking) for every k; a third registered model is simply one more
// column, never a new policy type.
type RegistryPolicy struct {
	columns []recommend.PriorColumn
	models  []string
}

// NewRegistryPolicy builds the policy over the registry's prior columns
// (recommend.Set.Columns()). Every column needs a distinct model name and
// a claim function.
func NewRegistryPolicy(columns []recommend.PriorColumn) (*RegistryPolicy, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("core: registry policy needs at least one prior column")
	}
	seen := make(map[string]bool, len(columns))
	models := make([]string, 0, len(columns))
	for _, col := range columns {
		if col.Model == "" || col.Claim == nil {
			return nil, fmt.Errorf("core: registry policy column %q is incomplete", col.Model)
		}
		if seen[col.Model] {
			return nil, fmt.Errorf("core: duplicate model %q in registry policy", col.Model)
		}
		seen[col.Model] = true
		models = append(models, col.Model)
	}
	return &RegistryPolicy{columns: append([]recommend.PriorColumn(nil), columns...), models: models}, nil
}

// Name identifies the policy.
func (p *RegistryPolicy) Name() string { return "registry" }

// Models returns the registered model names in column order — the
// read-only probe NewEngine validates the policy with.
func (p *RegistryPolicy) Models() []string { return append([]string(nil), p.models...) }

// Allocations resolves the prior columns against budget k.
func (p *RegistryPolicy) Allocations(ph trace.Phase, k int) map[string]int {
	out := make(map[string]int, len(p.columns))
	if k <= 0 {
		return out
	}
	remaining := k
	for _, col := range p.columns {
		if remaining == 0 {
			break
		}
		n := col.Claim(ph, k)
		if n < 0 || n > remaining {
			n = remaining
		}
		if n > 0 {
			out[col.Model] = n
			remaining -= n
		}
	}
	return out
}

// SinglePolicy routes every slot to one model regardless of phase; the
// baselines (Momentum, Hotspot, lone AB or SB models) run under it.
type SinglePolicy struct{ Model string }

// Name identifies the policy.
func (p SinglePolicy) Name() string { return "single:" + p.Model }

// Allocations gives all k slots to the single model.
func (p SinglePolicy) Allocations(ph trace.Phase, k int) map[string]int {
	if k <= 0 {
		return map[string]int{}
	}
	return map[string]int{p.Model: k}
}
