package tile

import (
	"fmt"
	"math"
	"sync"

	"forecache/internal/array"
)

// Params configures pyramid construction.
type Params struct {
	// TileSize is the per-side cell count of every tile (tiling interval,
	// identical across zoom levels per paper §2.3).
	TileSize int
	// Agg is the aggregation applied when building each coarser level from
	// the finer one with aggregation parameters (2, 2).
	Agg array.Agg
	// Metadata, when non-nil, computes per-tile signatures at build time.
	Metadata MetadataFunc
}

// MetadataFunc computes the signature metadata for a freshly built tile.
// The sig package supplies implementations; keeping it a function type here
// avoids a dependency cycle.
type MetadataFunc func(*Tile) map[string][]float64

// Pyramid is the complete set of zoom levels for one dataset, with every
// data tile materialized (the paper builds all tiles in advance and stores
// them in SciDB; we keep the level arrays plus a tile map).
type Pyramid struct {
	params Params
	attrs  []string
	levels []*array.Array // levels[0] is the coarsest (one tile)

	mu    sync.RWMutex
	tiles map[Coord]*Tile
}

// Build constructs a pyramid over the raw array. The raw data becomes the
// most detailed zoom level (no aggregation, paper §2.3); each coarser level
// is a separate materialized view built by aggregating 2x2 windows. The
// raw array is padded with empty cells to the next power-of-two multiple of
// TileSize so every level tiles exactly.
func Build(raw *array.Array, p Params) (*Pyramid, error) {
	if p.TileSize <= 0 {
		return nil, fmt.Errorf("tile: TileSize must be positive, got %d", p.TileSize)
	}
	maxDim := raw.Rows()
	if raw.Cols() > maxDim {
		maxDim = raw.Cols()
	}
	if maxDim == 0 {
		return nil, fmt.Errorf("tile: empty raw array")
	}
	// levels = 1 + ceil(log2(maxDim / TileSize)), at least 1.
	levels := 1
	for size := p.TileSize; size < maxDim; size *= 2 {
		levels++
	}
	target := p.TileSize << (levels - 1)
	base := raw
	if raw.Rows() != target || raw.Cols() != target {
		padded, err := raw.Subarray(0, 0, target, target)
		if err != nil {
			return nil, fmt.Errorf("tile: pad raw to %d: %w", target, err)
		}
		base = padded
	}

	pyr := &Pyramid{
		params: p,
		attrs:  append([]string(nil), raw.Schema().Attrs...),
		levels: make([]*array.Array, levels),
		tiles:  make(map[Coord]*Tile),
	}
	pyr.levels[levels-1] = base
	// Materialized views are computed bottom-up, doubling the aggregation
	// interval at each coarser level (paper §2.3).
	for l := levels - 2; l >= 0; l-- {
		coarser, err := pyr.levels[l+1].Regrid(2, 2, p.Agg)
		if err != nil {
			return nil, fmt.Errorf("tile: build level %d: %w", l, err)
		}
		pyr.levels[l] = coarser
	}
	// Partition every level into tiles and compute metadata.
	for l := 0; l < levels; l++ {
		side := 1 << l
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				c := Coord{Level: l, Y: y, X: x}
				t, err := pyr.cut(c)
				if err != nil {
					return nil, err
				}
				if p.Metadata != nil {
					t.Signatures = p.Metadata(t)
				}
				pyr.tiles[c] = t
			}
		}
	}
	return pyr, nil
}

// cut extracts the tile at c from its level's materialized view.
func (p *Pyramid) cut(c Coord) (*Tile, error) {
	level := p.levels[c.Level]
	ts := p.params.TileSize
	sub, err := level.Subarray(c.Y*ts, c.X*ts, (c.Y+1)*ts, (c.X+1)*ts)
	if err != nil {
		return nil, fmt.Errorf("tile: cut %s: %w", c, err)
	}
	t := &Tile{Coord: c, Size: ts, Attrs: p.attrs, Data: make([][]float64, len(p.attrs))}
	for i, attr := range p.attrs {
		g, err := sub.AttrData(attr)
		if err != nil {
			return nil, err
		}
		t.Data[i] = g
	}
	return t, nil
}

// NumLevels returns the number of zoom levels.
func (p *Pyramid) NumLevels() int { return len(p.levels) }

// TileSize returns the per-side cell count of every tile.
func (p *Pyramid) TileSize() int { return p.params.TileSize }

// Attrs returns the attribute names carried by every tile.
func (p *Pyramid) Attrs() []string { return append([]string(nil), p.attrs...) }

// Side returns the number of tiles per side at the given level (2^level).
func (p *Pyramid) Side(level int) int { return 1 << level }

// NumTiles returns the total number of materialized tiles.
func (p *Pyramid) NumTiles() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.tiles)
}

// Contains reports whether c addresses a tile inside the pyramid.
func (p *Pyramid) Contains(c Coord) bool {
	if c.Level < 0 || c.Level >= len(p.levels) {
		return false
	}
	side := p.Side(c.Level)
	return c.Y >= 0 && c.Y < side && c.X >= 0 && c.X < side
}

// Tile returns the materialized tile at c.
func (p *Pyramid) Tile(c Coord) (*Tile, error) {
	if !p.Contains(c) {
		return nil, fmt.Errorf("tile: %s outside pyramid (%d levels)", c, len(p.levels))
	}
	p.mu.RLock()
	t := p.tiles[c]
	p.mu.RUnlock()
	if t == nil {
		return nil, fmt.Errorf("tile: %s not materialized", c)
	}
	return t, nil
}

// Level exposes the materialized view array for a zoom level (coarsest = 0),
// mainly for inspection and tests.
func (p *Pyramid) Level(l int) (*array.Array, error) {
	if l < 0 || l >= len(p.levels) {
		return nil, fmt.Errorf("tile: level %d outside [0,%d)", l, len(p.levels))
	}
	return p.levels[l], nil
}

// EachTile calls fn for every materialized tile in deterministic order
// (level, then row-major), stopping early if fn returns false.
func (p *Pyramid) EachTile(fn func(*Tile) bool) {
	for l := 0; l < len(p.levels); l++ {
		side := p.Side(l)
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				p.mu.RLock()
				t := p.tiles[Coord{Level: l, Y: y, X: x}]
				p.mu.RUnlock()
				if t == nil {
					continue
				}
				if !fn(t) {
					return
				}
			}
		}
	}
}

// MemBytes estimates the heap footprint of all materialized tiles.
func (p *Pyramid) MemBytes() int {
	total := 0
	p.EachTile(func(t *Tile) bool {
		total += t.Bytes()
		return true
	})
	return total
}

// ComputeMetadata (re)computes every tile's signature metadata with fn.
// It exists for two-pass pipelines where the metadata computer itself must
// first be trained on the pyramid's tiles (e.g. the SIFT visual-word
// codebook) before signatures can be attached.
func (p *Pyramid) ComputeMetadata(fn MetadataFunc) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, t := range p.tiles {
		t.Signatures = fn(t)
	}
}

// SampleTiles returns up to n tiles in deterministic order (level-major),
// spread across zoom levels — the training set for signature codebooks.
func (p *Pyramid) SampleTiles(n int) []*Tile {
	if n <= 0 {
		return nil
	}
	total := p.NumTiles()
	stride := total / n
	if stride < 1 {
		stride = 1
	}
	var out []*Tile
	i := 0
	p.EachTile(func(t *Tile) bool {
		if i%stride == 0 && len(out) < n {
			out = append(out, t)
		}
		i++
		return len(out) < n
	})
	return out
}

// MaxAbs returns the maximum absolute non-empty cell value of attr across
// the whole pyramid, handy for clients normalizing color scales.
func (p *Pyramid) MaxAbs(attr string) float64 {
	best := 0.0
	p.EachTile(func(t *Tile) bool {
		g, err := t.Grid(attr)
		if err != nil {
			return false
		}
		for _, v := range g {
			if !math.IsNaN(v) && math.Abs(v) > best {
				best = math.Abs(v)
			}
		}
		return true
	})
	return best
}
