package tile

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// Tile is one data tile: a Size x Size cell grid per attribute, plus the
// metadata (tile signatures) computed when the pyramid was built (paper
// §2.3 "Computing Metadata"). Tiles are immutable after construction.
type Tile struct {
	Coord Coord    `json:"coord"`
	Size  int      `json:"size"`
	Attrs []string `json:"attrs"`
	// Data holds one row-major Size*Size grid per attribute, parallel to
	// Attrs. NaN cells are empty (e.g. padding past the dataset edge).
	Data [][]float64 `json:"data"`
	// Signatures holds the data characteristics computed for this tile at
	// build time, keyed by signature name ("normal", "histogram", "sift",
	// "densesift"). Each is a flat numeric vector (paper §4.3.3).
	Signatures map[string][]float64 `json:"signatures,omitempty"`
}

// Grid returns the row-major cell grid of the named attribute.
func (t *Tile) Grid(attr string) ([]float64, error) {
	for i, a := range t.Attrs {
		if a == attr {
			return t.Data[i], nil
		}
	}
	return nil, fmt.Errorf("tile %s: no attribute %q", t.Coord, attr)
}

// At returns the value of attr at (row, col) inside the tile.
func (t *Tile) At(attr string, row, col int) (float64, error) {
	g, err := t.Grid(attr)
	if err != nil {
		return 0, err
	}
	if row < 0 || row >= t.Size || col < 0 || col >= t.Size {
		return 0, fmt.Errorf("tile %s: cell (%d,%d) outside %dx%d", t.Coord, row, col, t.Size, t.Size)
	}
	return g[row*t.Size+col], nil
}

// Bytes estimates the main-memory footprint of the tile in bytes; the cache
// manager uses it for space accounting. The estimate covers the struct
// itself, the grid and signature values, and the per-slice, per-string and
// per-map-entry overhead Go charges for them — not just the raw float
// payload, which undercounts tiles whose footprint is dominated by
// signature vectors and attribute names.
func (t *Tile) Bytes() int {
	const (
		structBytes  = 96 // the Tile struct: coord + size + three slice/map headers
		sliceHeader  = 24 // ptr+len+cap per grid / signature vector
		stringHeader = 16 // ptr+len per attribute name / signature key
		mapEntry     = 48 // amortized per-entry share of the Signatures hash map
	)
	n := structBytes
	for _, a := range t.Attrs {
		n += stringHeader + len(a)
	}
	for _, g := range t.Data {
		n += sliceHeader + len(g)*8
	}
	for name, vec := range t.Signatures {
		n += mapEntry + stringHeader + len(name) + sliceHeader + len(vec)*8
	}
	return n
}

// Stats summarizes one attribute of the tile (used by the Normal signature
// and by clients rendering color scales).
func (t *Tile) Stats(attr string) (mean, stddev, minv, maxv float64, count int, err error) {
	g, err := t.Grid(attr)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	minv, maxv = math.Inf(1), math.Inf(-1)
	var sum, sq float64
	for _, v := range g {
		if math.IsNaN(v) {
			continue
		}
		count++
		sum += v
		sq += v * v
		if v < minv {
			minv = v
		}
		if v > maxv {
			maxv = v
		}
	}
	if count == 0 {
		nan := math.NaN()
		return nan, nan, nan, nan, 0, nil
	}
	mean = sum / float64(count)
	variance := sq/float64(count) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance), minv, maxv, count, nil
}

// jsonTile mirrors Tile but encodes NaN cells as null, since encoding/json
// rejects NaN float64 values.
type jsonTile struct {
	Coord      Coord                `json:"coord"`
	Size       int                  `json:"size"`
	Attrs      []string             `json:"attrs"`
	Data       [][]*float64         `json:"data"`
	Signatures map[string][]float64 `json:"signatures,omitempty"`
}

// MarshalJSON encodes the tile with NaN cells as null so the payload is
// valid JSON for the HTTP middleware. Cells stream directly into one
// append-grown buffer; the old shape built a [][]*float64 mirror — a
// pointer allocation per non-NaN cell on every response — just to express
// NaN as null. The output stays byte-identical to the encoding/json
// rendering of that mirror struct, so cached and legacy payloads agree.
func (t *Tile) MarshalJSON() ([]byte, error) {
	cells := 0
	for _, g := range t.Data {
		cells += len(g)
	}
	// ~24 bytes covers a formatted float64 plus its comma; the slack takes
	// the fixed fields, so the buffer almost never regrows.
	b := make([]byte, 0, 24*cells+512)
	b = append(b, `{"coord":{"level":`...)
	b = strconv.AppendInt(b, int64(t.Coord.Level), 10)
	b = append(b, `,"y":`...)
	b = strconv.AppendInt(b, int64(t.Coord.Y), 10)
	b = append(b, `,"x":`...)
	b = strconv.AppendInt(b, int64(t.Coord.X), 10)
	b = append(b, `},"size":`...)
	b = strconv.AppendInt(b, int64(t.Size), 10)
	b = append(b, `,"attrs":`...)
	attrs, err := json.Marshal(t.Attrs)
	if err != nil {
		return nil, err
	}
	b = append(b, attrs...)
	b = append(b, `,"data":[`...)
	for i, g := range t.Data {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '[')
		for j, v := range g {
			if j > 0 {
				b = append(b, ',')
			}
			switch {
			case math.IsNaN(v):
				b = append(b, "null"...)
			case math.IsInf(v, 0):
				return nil, fmt.Errorf("json: unsupported value: %g", v)
			default:
				b = appendJSONFloat(b, v)
			}
		}
		b = append(b, ']')
	}
	b = append(b, ']')
	if len(t.Signatures) > 0 {
		sigs, err := json.Marshal(t.Signatures)
		if err != nil {
			return nil, err
		}
		b = append(b, `,"signatures":`...)
		b = append(b, sigs...)
	}
	b = append(b, '}')
	return b, nil
}

// appendJSONFloat renders v exactly as encoding/json does: shortest
// round-trip form, switching to 'e' notation outside [1e-6, 1e21) and
// stripping the leading zero encoding/json strips from two-digit negative
// exponents ("e-09" → "e-9").
func appendJSONFloat(b []byte, v float64) []byte {
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, v, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// EncodeJSON returns the tile's canonical HTTP response body in the JSON
// wire format: MarshalJSON output plus the trailing newline json.Encoder
// has always appended to /tile responses. Every layer that memoizes JSON
// payloads (the serving tier's encoded cache, the push registry) caches
// exactly this body, so cached and uncached responses are byte-identical.
func (t *Tile) EncodeJSON() ([]byte, error) {
	b, err := t.MarshalJSON()
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// UnmarshalJSON decodes a tile written by MarshalJSON.
func (t *Tile) UnmarshalJSON(b []byte) error {
	var jt jsonTile
	if err := json.Unmarshal(b, &jt); err != nil {
		return err
	}
	t.Coord, t.Size, t.Attrs, t.Signatures = jt.Coord, jt.Size, jt.Attrs, jt.Signatures
	t.Data = make([][]float64, len(jt.Data))
	for i, row := range jt.Data {
		g := make([]float64, len(row))
		for j, p := range row {
			if p == nil {
				g[j] = math.NaN()
			} else {
				g[j] = *p
			}
		}
		t.Data[i] = g
	}
	return nil
}
