package tile

import (
	"encoding/json"
	"fmt"
	"math"
)

// Tile is one data tile: a Size x Size cell grid per attribute, plus the
// metadata (tile signatures) computed when the pyramid was built (paper
// §2.3 "Computing Metadata"). Tiles are immutable after construction.
type Tile struct {
	Coord Coord    `json:"coord"`
	Size  int      `json:"size"`
	Attrs []string `json:"attrs"`
	// Data holds one row-major Size*Size grid per attribute, parallel to
	// Attrs. NaN cells are empty (e.g. padding past the dataset edge).
	Data [][]float64 `json:"data"`
	// Signatures holds the data characteristics computed for this tile at
	// build time, keyed by signature name ("normal", "histogram", "sift",
	// "densesift"). Each is a flat numeric vector (paper §4.3.3).
	Signatures map[string][]float64 `json:"signatures,omitempty"`
}

// Grid returns the row-major cell grid of the named attribute.
func (t *Tile) Grid(attr string) ([]float64, error) {
	for i, a := range t.Attrs {
		if a == attr {
			return t.Data[i], nil
		}
	}
	return nil, fmt.Errorf("tile %s: no attribute %q", t.Coord, attr)
}

// At returns the value of attr at (row, col) inside the tile.
func (t *Tile) At(attr string, row, col int) (float64, error) {
	g, err := t.Grid(attr)
	if err != nil {
		return 0, err
	}
	if row < 0 || row >= t.Size || col < 0 || col >= t.Size {
		return 0, fmt.Errorf("tile %s: cell (%d,%d) outside %dx%d", t.Coord, row, col, t.Size, t.Size)
	}
	return g[row*t.Size+col], nil
}

// Bytes estimates the main-memory footprint of the tile in bytes; the cache
// manager uses it for space accounting.
func (t *Tile) Bytes() int {
	n := 0
	for _, g := range t.Data {
		n += len(g) * 8
	}
	for _, s := range t.Signatures {
		n += len(s) * 8
	}
	return n + 64
}

// Stats summarizes one attribute of the tile (used by the Normal signature
// and by clients rendering color scales).
func (t *Tile) Stats(attr string) (mean, stddev, minv, maxv float64, count int, err error) {
	g, err := t.Grid(attr)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	minv, maxv = math.Inf(1), math.Inf(-1)
	var sum, sq float64
	for _, v := range g {
		if math.IsNaN(v) {
			continue
		}
		count++
		sum += v
		sq += v * v
		if v < minv {
			minv = v
		}
		if v > maxv {
			maxv = v
		}
	}
	if count == 0 {
		nan := math.NaN()
		return nan, nan, nan, nan, 0, nil
	}
	mean = sum / float64(count)
	variance := sq/float64(count) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance), minv, maxv, count, nil
}

// jsonTile mirrors Tile but encodes NaN cells as null, since encoding/json
// rejects NaN float64 values.
type jsonTile struct {
	Coord      Coord                `json:"coord"`
	Size       int                  `json:"size"`
	Attrs      []string             `json:"attrs"`
	Data       [][]*float64         `json:"data"`
	Signatures map[string][]float64 `json:"signatures,omitempty"`
}

// MarshalJSON encodes the tile with NaN cells as null so the payload is
// valid JSON for the HTTP middleware.
func (t *Tile) MarshalJSON() ([]byte, error) {
	jt := jsonTile{Coord: t.Coord, Size: t.Size, Attrs: t.Attrs, Signatures: t.Signatures}
	jt.Data = make([][]*float64, len(t.Data))
	for i, g := range t.Data {
		row := make([]*float64, len(g))
		for j := range g {
			if !math.IsNaN(g[j]) {
				v := g[j]
				row[j] = &v
			}
		}
		jt.Data[i] = row
	}
	return json.Marshal(jt)
}

// UnmarshalJSON decodes a tile written by MarshalJSON.
func (t *Tile) UnmarshalJSON(b []byte) error {
	var jt jsonTile
	if err := json.Unmarshal(b, &jt); err != nil {
		return err
	}
	t.Coord, t.Size, t.Attrs, t.Signatures = jt.Coord, jt.Size, jt.Attrs, jt.Signatures
	t.Data = make([][]float64, len(jt.Data))
	for i, row := range jt.Data {
		g := make([]float64, len(row))
		for j, p := range row {
			if p == nil {
				g[j] = math.NaN()
			} else {
				g[j] = *p
			}
		}
		t.Data[i] = g
	}
	return nil
}
