package tile

import (
	"container/list"
	"sync"
	"time"
)

// Format names a tile wire encoding in the encoded-payload cache key.
type Format uint8

const (
	FormatJSON Format = iota
	FormatBinary
)

func (f Format) String() string {
	switch f {
	case FormatJSON:
		return "json"
	case FormatBinary:
		return "binary"
	default:
		return "unknown"
	}
}

// DefaultEncodedCacheBudget is the byte budget an EncodedCache falls back
// to when constructed with a non-positive budget.
const DefaultEncodedCacheBudget = 64 << 20

// encEntryOverhead approximates the bookkeeping cost per cached payload
// (entry struct, list element, index map entry) charged against the budget
// on top of the payload bytes.
const encEntryOverhead = 128

type encKey struct {
	coord  Coord
	format Format
	gzip   bool
}

type encEntry struct {
	key     encKey
	payload []byte
}

// encCall is one in-flight encode; concurrent requests for the same key
// wait on it instead of encoding again (single-flight).
type encCall struct {
	wg      sync.WaitGroup
	payload []byte
	err     error
}

// EncodedCacheStats is a point-in-time snapshot of an EncodedCache.
// Hits counts requests served from a cached payload or joined onto an
// in-flight encode; Misses counts encodes actually performed, so
// Misses is exactly the number of times an encoder ran.
type EncodedCacheStats struct {
	Hits    int64
	Misses  int64
	Evicted int64
	Entries int
	Bytes   int64
	Budget  int64
}

// EncodedCache memoizes encoded tile payloads per (coord, format,
// compression) under a byte-budgeted LRU, so an immutable tile is encoded
// once and served N times as a cached []byte — across the /tile pull path
// and every push stream. Concurrent first requests for one key coalesce
// into a single encode. Safe for concurrent use.
type EncodedCache struct {
	budget   int64
	onEncode func(time.Duration) // observability hook, called per performed encode

	mu       sync.Mutex
	lru      *list.List // *encEntry, most recently used at the front
	idx      map[encKey]*list.Element
	inflight map[encKey]*encCall
	bytes    int64
	hits     int64
	misses   int64
	evicted  int64
}

// NewEncodedCache returns a cache bounded to budget bytes of payload
// (DefaultEncodedCacheBudget when budget <= 0). onEncode, when non-nil,
// receives the wall time of every encode the cache performs — the facade
// wires it to the observability pipeline's encode-duration histogram.
func NewEncodedCache(budget int64, onEncode func(time.Duration)) *EncodedCache {
	if budget <= 0 {
		budget = DefaultEncodedCacheBudget
	}
	return &EncodedCache{
		budget:   budget,
		onEncode: onEncode,
		lru:      list.New(),
		idx:      make(map[encKey]*list.Element),
		inflight: make(map[encKey]*encCall),
	}
}

// Get returns the cached payload for (c, format, gzipped), running encode
// to produce it on a miss. The returned slice is shared and must not be
// mutated. Encode errors are returned to every coalesced waiter and
// nothing is cached, so a transient failure doesn't poison the key.
func (ec *EncodedCache) Get(c Coord, format Format, gzipped bool, encode func() ([]byte, error)) ([]byte, error) {
	key := encKey{coord: c, format: format, gzip: gzipped}
	ec.mu.Lock()
	if el, ok := ec.idx[key]; ok {
		ec.lru.MoveToFront(el)
		ec.hits++
		payload := el.Value.(*encEntry).payload
		ec.mu.Unlock()
		return payload, nil
	}
	if call, ok := ec.inflight[key]; ok {
		ec.hits++
		ec.mu.Unlock()
		call.wg.Wait()
		return call.payload, call.err
	}
	call := &encCall{}
	call.wg.Add(1)
	ec.inflight[key] = call
	ec.misses++
	ec.mu.Unlock()

	start := time.Now()
	payload, err := encode()
	if err == nil && ec.onEncode != nil {
		ec.onEncode(time.Since(start))
	}
	call.payload, call.err = payload, err

	ec.mu.Lock()
	delete(ec.inflight, key)
	if err == nil {
		el := ec.lru.PushFront(&encEntry{key: key, payload: payload})
		ec.idx[key] = el
		ec.bytes += entryBytes(payload)
		// Keep at least the entry just inserted, even when it alone blows
		// the budget — serving it is the point.
		for ec.bytes > ec.budget && ec.lru.Len() > 1 {
			oldest := ec.lru.Back()
			victim := oldest.Value.(*encEntry)
			ec.lru.Remove(oldest)
			delete(ec.idx, victim.key)
			ec.bytes -= entryBytes(victim.payload)
			ec.evicted++
		}
	}
	ec.mu.Unlock()
	call.wg.Done()
	return payload, err
}

// Invalidate drops every cached encoding of the tile at c (all formats and
// compression variants). It exists for future in-place tile refreshes — a
// fidelity-ladder upgrade re-encodes on the next request.
func (ec *EncodedCache) Invalidate(c Coord) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	for _, format := range []Format{FormatJSON, FormatBinary} {
		for _, gz := range []bool{false, true} {
			if el, ok := ec.idx[encKey{coord: c, format: format, gzip: gz}]; ok {
				victim := el.Value.(*encEntry)
				ec.lru.Remove(el)
				delete(ec.idx, victim.key)
				ec.bytes -= entryBytes(victim.payload)
			}
		}
	}
}

// Stats snapshots the cache counters.
func (ec *EncodedCache) Stats() EncodedCacheStats {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return EncodedCacheStats{
		Hits:    ec.hits,
		Misses:  ec.misses,
		Evicted: ec.evicted,
		Entries: ec.lru.Len(),
		Bytes:   ec.bytes,
		Budget:  ec.budget,
	}
}

func entryBytes(payload []byte) int64 {
	return int64(len(payload)) + encEntryOverhead
}
