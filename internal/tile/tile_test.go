package tile

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"forecache/internal/array"
)

func rawArray(t *testing.T, size int) *array.Array {
	t.Helper()
	a := array.NewZero(array.Schema{
		Name:  "RAW",
		Attrs: []string{"v"},
		Dims:  [2]array.Dim{{Name: "lat", Size: size}, {Name: "lon", Size: size}},
	})
	data, err := a.AttrData("v")
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = float64(i)
	}
	return a
}

func TestCoordChildren(t *testing.T) {
	c := Coord{Level: 2, Y: 1, X: 2}
	cases := []struct {
		q    Quadrant
		want Coord
	}{
		{NW, Coord{3, 2, 4}},
		{NE, Coord{3, 2, 5}},
		{SW, Coord{3, 3, 4}},
		{SE, Coord{3, 3, 5}},
	}
	for _, tc := range cases {
		if got := c.Child(tc.q); got != tc.want {
			t.Errorf("Child(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestCoordParentChildRoundTrip(t *testing.T) {
	f := func(level uint8, y, x uint16, q uint8) bool {
		l := int(level%8) + 1
		side := 1 << l
		c := Coord{Level: l, Y: int(y) % side, X: int(x) % side}
		child := c.Child(Quadrant(q % 4))
		return child.Parent() == c && child.QuadrantIn() == Quadrant(q%4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCoordParentOfRoot(t *testing.T) {
	root := Coord{Level: 0, Y: 0, X: 0}
	if root.Parent() != root {
		t.Errorf("Parent of root = %v", root.Parent())
	}
}

func TestManhattanTo(t *testing.T) {
	a := Coord{Level: 2, Y: 1, X: 1}
	b := Coord{Level: 2, Y: 3, X: 0}
	if d := a.ManhattanTo(b); d != 3 {
		t.Errorf("ManhattanTo = %d, want 3", d)
	}
	// Cross-level: one step per level difference plus the lateral distance
	// after projecting to the deeper level.
	p := Coord{Level: 1, Y: 0, X: 0}
	c := Coord{Level: 2, Y: 0, X: 1}
	if d := p.ManhattanTo(c); d != 2 {
		t.Errorf("cross-level ManhattanTo = %d, want 2 (1 zoom + 1 lateral)", d)
	}
	// A child in the projected corner is exactly one move (the zoom) away.
	if d := p.ManhattanTo(Coord{Level: 2, Y: 0, X: 0}); d != 1 {
		t.Errorf("parent-child ManhattanTo = %d, want 1", d)
	}
	if a.ManhattanTo(b) != b.ManhattanTo(a) {
		t.Error("ManhattanTo must be symmetric")
	}
}

func TestBuildLevelsAndTileCounts(t *testing.T) {
	// 64x64 raw with tile size 16 -> levels: 16(=L0),32,64 => 3 levels.
	pyr, err := Build(rawArray(t, 64), Params{TileSize: 16, Agg: array.AggAvg})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if pyr.NumLevels() != 3 {
		t.Fatalf("NumLevels = %d, want 3", pyr.NumLevels())
	}
	if pyr.NumTiles() != 1+4+16 {
		t.Errorf("NumTiles = %d, want 21", pyr.NumTiles())
	}
	for l := 0; l < 3; l++ {
		if pyr.Side(l) != 1<<l {
			t.Errorf("Side(%d) = %d", l, pyr.Side(l))
		}
	}
}

func TestBuildPadsNonPow2(t *testing.T) {
	pyr, err := Build(rawArray(t, 48), Params{TileSize: 16, Agg: array.AggAvg})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// 48 pads to 64 -> 3 levels; border tiles carry NaN padding.
	if pyr.NumLevels() != 3 {
		t.Fatalf("NumLevels = %d, want 3", pyr.NumLevels())
	}
	edge, err := pyr.Tile(Coord{Level: 2, Y: 3, X: 3})
	if err != nil {
		t.Fatal(err)
	}
	v, err := edge.At("v", 15, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(v) {
		t.Errorf("padded cell = %v, want NaN", v)
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	if _, err := Build(rawArray(t, 8), Params{TileSize: 0}); err == nil {
		t.Error("TileSize 0 should fail")
	}
}

func TestEveryTileSameSize(t *testing.T) {
	pyr, err := Build(rawArray(t, 64), Params{TileSize: 8, Agg: array.AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	pyr.EachTile(func(tl *Tile) bool {
		if tl.Size != 8 {
			t.Errorf("tile %s size = %d, want 8", tl.Coord, tl.Size)
			return false
		}
		g, err := tl.Grid("v")
		if err != nil || len(g) != 64 {
			t.Errorf("tile %s grid len = %d err=%v", tl.Coord, len(g), err)
			return false
		}
		return true
	})
}

func TestAggregationConsistencyAcrossLevels(t *testing.T) {
	// A parent cell must equal the average of its four children (AggAvg,
	// no NaN in this raw array).
	pyr, err := Build(rawArray(t, 32), Params{TileSize: 8, Agg: array.AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	parentLevel, _ := pyr.Level(1)
	childLevel, _ := pyr.Level(2)
	for r := 0; r < parentLevel.Rows(); r++ {
		for c := 0; c < parentLevel.Cols(); c++ {
			pv, _ := parentLevel.Get("v", r, c)
			sum := 0.0
			for dr := 0; dr < 2; dr++ {
				for dc := 0; dc < 2; dc++ {
					cv, _ := childLevel.Get("v", 2*r+dr, 2*c+dc)
					sum += cv
				}
			}
			if math.Abs(pv-sum/4) > 1e-9 {
				t.Fatalf("parent (%d,%d)=%v, children avg %v", r, c, pv, sum/4)
			}
		}
	}
}

func TestTileCoverageMatchesChildQuadrants(t *testing.T) {
	// One tile at level i must cover exactly its four child tiles' data.
	pyr, err := Build(rawArray(t, 32), Params{TileSize: 8, Agg: array.AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	parent, err := pyr.Tile(Coord{Level: 1, Y: 0, X: 1})
	if err != nil {
		t.Fatal(err)
	}
	child, err := pyr.Tile(Coord{Level: 1, Y: 0, X: 1}.Child(NW))
	if err != nil {
		t.Fatal(err)
	}
	// The parent's top-left cell aggregates the child's top-left 2x2 block.
	pv, _ := parent.At("v", 0, 0)
	var sum float64
	for dr := 0; dr < 2; dr++ {
		for dc := 0; dc < 2; dc++ {
			cv, _ := child.At("v", dr, dc)
			sum += cv
		}
	}
	if math.Abs(pv-sum/4) > 1e-9 {
		t.Errorf("parent cell %v != child quad avg %v", pv, sum/4)
	}
}

func TestContains(t *testing.T) {
	pyr, err := Build(rawArray(t, 32), Params{TileSize: 8, Agg: array.AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		c    Coord
		want bool
	}{
		{Coord{0, 0, 0}, true},
		{Coord{2, 3, 3}, true},
		{Coord{2, 4, 0}, false},
		{Coord{-1, 0, 0}, false},
		{Coord{3, 0, 0}, false},
		{Coord{1, -1, 0}, false},
	}
	for _, tc := range cases {
		if got := pyr.Contains(tc.c); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.c, got, tc.want)
		}
	}
	if _, err := pyr.Tile(Coord{Level: 9, Y: 0, X: 0}); err == nil {
		t.Error("Tile outside pyramid should fail")
	}
}

func TestMetadataHook(t *testing.T) {
	called := 0
	meta := func(tl *Tile) map[string][]float64 {
		called++
		mean, _, _, _, _, err := tl.Stats("v")
		if err != nil {
			t.Fatal(err)
		}
		return map[string][]float64{"mean": {mean}}
	}
	pyr, err := Build(rawArray(t, 16), Params{TileSize: 8, Agg: array.AggAvg, Metadata: meta})
	if err != nil {
		t.Fatal(err)
	}
	if called != pyr.NumTiles() {
		t.Errorf("metadata called %d times for %d tiles", called, pyr.NumTiles())
	}
	tl, _ := pyr.Tile(Coord{Level: 0, Y: 0, X: 0})
	if tl.Signatures == nil || len(tl.Signatures["mean"]) != 1 {
		t.Errorf("signatures not attached: %v", tl.Signatures)
	}
}

func TestTileStats(t *testing.T) {
	tl := &Tile{
		Coord: Coord{0, 0, 0}, Size: 2, Attrs: []string{"v"},
		Data: [][]float64{{1, 2, 3, math.NaN()}},
	}
	mean, std, mn, mx, n, err := tl.Stats("v")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || mean != 2 || mn != 1 || mx != 3 {
		t.Errorf("stats = mean %v std %v min %v max %v n %d", mean, std, mn, mx, n)
	}
	if _, _, _, _, _, err := tl.Stats("zzz"); err == nil {
		t.Error("Stats on missing attr should fail")
	}
}

func TestTileJSONRoundTrip(t *testing.T) {
	tl := &Tile{
		Coord: Coord{1, 0, 1}, Size: 2, Attrs: []string{"v"},
		Data:       [][]float64{{1.5, math.NaN(), -2, 0}},
		Signatures: map[string][]float64{"normal": {1.5, 0.2}},
	}
	b, err := json.Marshal(tl)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var got Tile
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Coord != tl.Coord || got.Size != tl.Size {
		t.Errorf("round trip coord/size: %+v", got)
	}
	g, err := got.Grid("v")
	if err != nil {
		t.Fatal(err)
	}
	if g[0] != 1.5 || !math.IsNaN(g[1]) || g[2] != -2 || g[3] != 0 {
		t.Errorf("round trip grid = %v", g)
	}
	if got.Signatures["normal"][0] != 1.5 {
		t.Errorf("round trip signatures = %v", got.Signatures)
	}
}

func TestTileBytesPositive(t *testing.T) {
	tl := &Tile{Size: 4, Attrs: []string{"v"}, Data: [][]float64{make([]float64, 16)}}
	if tl.Bytes() <= 16*8 {
		t.Errorf("Bytes = %d, want > 128", tl.Bytes())
	}
}

func TestMaxAbs(t *testing.T) {
	pyr, err := Build(rawArray(t, 16), Params{TileSize: 8, Agg: array.AggAvg})
	if err != nil {
		t.Fatal(err)
	}
	// Raw cells are 0..255, so MaxAbs of the finest level is 255.
	if got := pyr.MaxAbs("v"); got != 255 {
		t.Errorf("MaxAbs = %v, want 255", got)
	}
}

func BenchmarkBuildPyramid(b *testing.B) {
	a := array.NewZero(array.Schema{
		Name:  "RAW",
		Attrs: []string{"v"},
		Dims:  [2]array.Dim{{Name: "lat", Size: 256}, {Name: "lon", Size: 256}},
	})
	data, _ := a.AttrData("v")
	for i := range data {
		data[i] = float64(i % 251)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(a, Params{TileSize: 64, Agg: array.AggAvg}); err != nil {
			b.Fatal(err)
		}
	}
}
