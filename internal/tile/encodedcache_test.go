package tile

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEncodedCacheHitMiss(t *testing.T) {
	var encodes atomic.Int64
	ec := NewEncodedCache(1<<20, nil)
	c := Coord{Level: 1, Y: 0, X: 1}
	enc := func() ([]byte, error) {
		encodes.Add(1)
		return []byte("payload"), nil
	}
	for i := 0; i < 3; i++ {
		got, err := ec.Get(c, FormatJSON, false, enc)
		if err != nil || !bytes.Equal(got, []byte("payload")) {
			t.Fatalf("Get #%d = %q, %v", i, got, err)
		}
	}
	// A different format / compression variant is a distinct entry.
	if _, err := ec.Get(c, FormatBinary, false, enc); err != nil {
		t.Fatal(err)
	}
	if _, err := ec.Get(c, FormatJSON, true, enc); err != nil {
		t.Fatal(err)
	}
	if n := encodes.Load(); n != 3 {
		t.Errorf("encode ran %d times, want 3 (one per variant)", n)
	}
	st := ec.Stats()
	if st.Misses != 3 || st.Hits != 2 || st.Entries != 3 {
		t.Errorf("stats = %+v, want 3 misses / 2 hits / 3 entries", st)
	}
	if st.Bytes <= 0 || st.Budget != 1<<20 {
		t.Errorf("stats accounting = %+v", st)
	}
}

func TestEncodedCacheSingleFlight(t *testing.T) {
	var encodes atomic.Int64
	release := make(chan struct{})
	ec := NewEncodedCache(1<<20, nil)
	c := Coord{Level: 2, Y: 1, X: 1}
	const workers = 16
	var wg sync.WaitGroup
	results := make([][]byte, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := ec.Get(c, FormatBinary, false, func() ([]byte, error) {
				encodes.Add(1)
				<-release // hold every concurrent caller in the coalesced window
				return []byte("once"), nil
			})
			if err == nil {
				results[i] = got
			}
		}(i)
	}
	// Let the goroutines pile up on the in-flight call, then release it.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := encodes.Load(); n != 1 {
		t.Errorf("encode ran %d times under concurrency, want 1", n)
	}
	for i, got := range results {
		if !bytes.Equal(got, []byte("once")) {
			t.Errorf("worker %d got %q", i, got)
		}
	}
	if st := ec.Stats(); st.Misses != 1 || st.Hits != workers-1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits", st, workers-1)
	}
}

func TestEncodedCacheErrorNotCached(t *testing.T) {
	ec := NewEncodedCache(1<<20, nil)
	c := Coord{}
	boom := errors.New("encode failed")
	if _, err := ec.Get(c, FormatJSON, false, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("Get error = %v, want %v", err, boom)
	}
	// The failure must not poison the key: the next Get encodes again.
	got, err := ec.Get(c, FormatJSON, false, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || !bytes.Equal(got, []byte("ok")) {
		t.Fatalf("Get after error = %q, %v", got, err)
	}
	if st := ec.Stats(); st.Entries != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 1 entry / 2 misses", st)
	}
}

func TestEncodedCacheEvictsLRU(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 1024)
	// Room for ~4 entries of 1024+overhead bytes.
	ec := NewEncodedCache(4*(1024+encEntryOverhead), nil)
	enc := func() ([]byte, error) { return payload, nil }
	for i := 0; i < 8; i++ {
		if _, err := ec.Get(Coord{Level: 10, Y: i, X: 0}, FormatJSON, false, enc); err != nil {
			t.Fatal(err)
		}
	}
	st := ec.Stats()
	if st.Evicted != 4 || st.Entries != 4 {
		t.Errorf("stats = %+v, want 4 evicted / 4 resident", st)
	}
	if st.Bytes > st.Budget {
		t.Errorf("resident bytes %d over budget %d", st.Bytes, st.Budget)
	}
	// The most recently inserted coords are the survivors.
	var encodes atomic.Int64
	counting := func() ([]byte, error) { encodes.Add(1); return payload, nil }
	for i := 4; i < 8; i++ {
		if _, err := ec.Get(Coord{Level: 10, Y: i, X: 0}, FormatJSON, false, counting); err != nil {
			t.Fatal(err)
		}
	}
	if n := encodes.Load(); n != 0 {
		t.Errorf("recent entries were evicted: %d re-encodes", n)
	}
}

func TestEncodedCacheOversizeEntryStays(t *testing.T) {
	ec := NewEncodedCache(64, nil)
	big := bytes.Repeat([]byte("y"), 4096)
	if _, err := ec.Get(Coord{}, FormatBinary, false, func() ([]byte, error) { return big, nil }); err != nil {
		t.Fatal(err)
	}
	// The over-budget entry is kept (serving it is the point), and the next
	// insert evicts it rather than growing without bound.
	if st := ec.Stats(); st.Entries != 1 {
		t.Errorf("oversize entry dropped: %+v", st)
	}
	if _, err := ec.Get(Coord{Level: 1, Y: 1, X: 1}, FormatBinary, false, func() ([]byte, error) { return big, nil }); err != nil {
		t.Fatal(err)
	}
	if st := ec.Stats(); st.Entries != 1 || st.Evicted != 1 {
		t.Errorf("stats after second oversize insert = %+v", st)
	}
}

func TestEncodedCacheInvalidate(t *testing.T) {
	ec := NewEncodedCache(1<<20, nil)
	c := Coord{Level: 1, Y: 1, X: 0}
	for _, gz := range []bool{false, true} {
		for _, f := range []Format{FormatJSON, FormatBinary} {
			if _, err := ec.Get(c, f, gz, func() ([]byte, error) { return []byte("v1"), nil }); err != nil {
				t.Fatal(err)
			}
		}
	}
	ec.Invalidate(c)
	st := ec.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats after invalidate = %+v, want empty", st)
	}
	got, err := ec.Get(c, FormatJSON, false, func() ([]byte, error) { return []byte("v2"), nil })
	if err != nil || !bytes.Equal(got, []byte("v2")) {
		t.Errorf("Get after invalidate = %q, %v", got, err)
	}
}

func TestEncodedCacheOnEncodeHook(t *testing.T) {
	var calls atomic.Int64
	ec := NewEncodedCache(1<<20, func(d time.Duration) {
		if d < 0 {
			panic(fmt.Sprintf("negative duration %v", d))
		}
		calls.Add(1)
	})
	enc := func() ([]byte, error) { return []byte("z"), nil }
	for i := 0; i < 3; i++ {
		if _, err := ec.Get(Coord{}, FormatJSON, false, enc); err != nil {
			t.Fatal(err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("onEncode fired %d times, want 1 (misses only)", n)
	}
}
