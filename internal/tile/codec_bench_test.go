package tile

import (
	"fmt"
	"math"
	"testing"
)

func benchTile(size int) *Tile {
	g := make([]float64, size*size)
	for i := range g {
		if i%37 == 0 {
			g[i] = math.NaN() // padding cells, as real edge tiles have
		} else {
			g[i] = float64(i%977) / 977 * 2.5
		}
	}
	return &Tile{
		Coord: Coord{Level: 4, Y: 3, X: 7},
		Size:  size,
		Attrs: []string{"ndsi"},
		Data:  [][]float64{g},
		Signatures: map[string][]float64{
			"normal": {0.5, 0.25},
			"hist":   {1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		},
	}
}

// BenchmarkTileServeEncoding compares the per-response cost of each tile
// serving path: the legacy reflection marshal (a *float64 per cell), the
// streamed JSON rewrite, the binary codec, and a warm encoded-cache hit —
// the steady state of a deployed server, where an immutable tile is
// encoded once and then served as cached bytes. Results are recorded in
// BENCH_codec.json at the repo root.
func BenchmarkTileServeEncoding(b *testing.B) {
	for _, size := range []int{16, 64} {
		tl := benchTile(size)
		b.Run(fmt.Sprintf("json-naive/size=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := legacyMarshalJSONBench(tl)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(len(out)))
			}
		})
		b.Run(fmt.Sprintf("json-streamed/size=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := tl.MarshalJSON()
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(len(out)))
			}
		})
		b.Run(fmt.Sprintf("binary/size=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := EncodeBinary(tl)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(len(out)))
			}
		})
		b.Run(fmt.Sprintf("binary-cached/size=%d", size), func(b *testing.B) {
			ec := NewEncodedCache(1<<24, nil)
			encode := func() ([]byte, error) { return EncodeBinary(tl) }
			warm, err := ec.Get(tl.Coord, FormatBinary, false, encode)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(warm)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ec.Get(tl.Coord, FormatBinary, false, encode); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// legacyMarshalJSONBench aliases the compatibility oracle so the benchmark
// reads as the old serving path.
func legacyMarshalJSONBench(t *Tile) ([]byte, error) { return legacyMarshalJSON(t) }
