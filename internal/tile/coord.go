// Package tile implements ForeCache's tile data model: zoom levels built as
// materialized aggregations of a raw array, partitioned into fixed-size data
// tiles, with per-tile metadata computed at build time (paper §2).
//
// Zoom level 0 is the coarsest view (a single tile); each tile at level i
// covers exactly four tiles at level i+1, because aggregation intervals are
// doubled for each coarser level while the tiling intervals stay fixed
// (paper §2.3). All tiles therefore have identical pixel dimensions
// regardless of level.
package tile

import "fmt"

// Quadrant identifies one of the four children of a tile, i.e. the quadrant
// the user clicks when zooming in.
type Quadrant int

// The four zoom-in quadrants.
const (
	NW Quadrant = iota // north-west: top-left
	NE                 // north-east: top-right
	SW                 // south-west: bottom-left
	SE                 // south-east: bottom-right
)

// String returns the compass name of the quadrant.
func (q Quadrant) String() string {
	switch q {
	case NW:
		return "NW"
	case NE:
		return "NE"
	case SW:
		return "SW"
	case SE:
		return "SE"
	}
	return fmt.Sprintf("Quadrant(%d)", int(q))
}

// Offsets returns the (row, col) child offsets of the quadrant, each 0 or 1.
func (q Quadrant) Offsets() (dy, dx int) {
	switch q {
	case NW:
		return 0, 0
	case NE:
		return 0, 1
	case SW:
		return 1, 0
	default:
		return 1, 1
	}
}

// Coord addresses one data tile: zoom level (0 = coarsest) and the tile's
// integer position within that level's grid, row-major from the top-left.
type Coord struct {
	Level int `json:"level"`
	Y     int `json:"y"`
	X     int `json:"x"`
}

// String renders the coordinate as "L{level}/{y}/{x}".
func (c Coord) String() string { return fmt.Sprintf("L%d/%d/%d", c.Level, c.Y, c.X) }

// Less orders coordinates by (level, y, x): the deterministic tiebreak used
// wherever equal-scored tiles must sort stably.
func (c Coord) Less(o Coord) bool {
	if c.Level != o.Level {
		return c.Level < o.Level
	}
	if c.Y != o.Y {
		return c.Y < o.Y
	}
	return c.X < o.X
}

// Pan returns the coordinate dy rows down and dx columns right at the same
// zoom level. Callers validate bounds against a Pyramid.
func (c Coord) Pan(dy, dx int) Coord { return Coord{Level: c.Level, Y: c.Y + dy, X: c.X + dx} }

// Child returns the coordinate of the quadrant child one level deeper.
func (c Coord) Child(q Quadrant) Coord {
	dy, dx := q.Offsets()
	return Coord{Level: c.Level + 1, Y: 2*c.Y + dy, X: 2*c.X + dx}
}

// Parent returns the coordinate one zoom level coarser. The parent of the
// root is the root itself.
func (c Coord) Parent() Coord {
	if c.Level == 0 {
		return c
	}
	return Coord{Level: c.Level - 1, Y: c.Y / 2, X: c.X / 2}
}

// QuadrantIn reports which quadrant of its parent this coordinate occupies.
func (c Coord) QuadrantIn() Quadrant {
	dy, dx := c.Y&1, c.X&1
	switch {
	case dy == 0 && dx == 0:
		return NW
	case dy == 0 && dx == 1:
		return NE
	case dy == 1 && dx == 0:
		return SW
	default:
		return SE
	}
}

// ManhattanTo returns the physical tile distance used by the signature
// recommender's distance penalty (Algorithm 3): the lateral Manhattan
// distance after projecting both coordinates to the deeper level, plus one
// step per zoom-level difference — a zoom is one interface move, so a
// child tile is *not* at distance zero from its parent.
func (c Coord) ManhattanTo(o Coord) int {
	a, b := c, o
	levelDiff := abs(a.Level - b.Level)
	for a.Level < b.Level {
		a = Coord{Level: a.Level + 1, Y: a.Y * 2, X: a.X * 2}
	}
	for b.Level < a.Level {
		b = Coord{Level: b.Level + 1, Y: b.Y * 2, X: b.X * 2}
	}
	return levelDiff + abs(a.Y-b.Y) + abs(a.X-b.X)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
